// Command kernbench measures the adaptive intersection engine: kernel-by-
// kernel microbenchmarks across operand skews, hub-row cases on the RHG/RGG
// stand-ins, steady-state allocation counts for the queue flush/receive
// path, and end-to-end p=8 wall times for DITRIC/CETRIC/TriC. BENCH_pr3.json
// in the repo root is a recorded run:
//
//	go run ./cmd/kernbench > BENCH_pr3.json
package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/graph"
)

type kernelRow struct {
	Kernel      string  `json:"kernel"`
	Skew        string  `json:"skew"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	SpeedupVsMg float64 `json:"speedup_vs_merge"`
}

type hubRow struct {
	Graph       string  `json:"graph"`
	HubOutDeg   int     `json:"hub_out_degree"`
	Probes      int     `json:"probes"`
	MergeNs     float64 `json:"merge_ns_per_op"`
	AdaptiveNs  float64 `json:"adaptive_ns_per_op"`
	Speedup     float64 `json:"speedup"`
	NumHubs     int     `json:"num_hubs"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type e2eRow struct {
	Graph     string  `json:"graph"`
	Algo      string  `json:"algo"`
	LCC       bool    `json:"lcc,omitempty"`
	Triangles uint64  `json:"triangles"`
	BestWallS float64 `json:"best_wall_seconds"`
	Hubs      string  `json:"hub_bitmaps"`
}

type report struct {
	Note        string      `json:"note"`
	Go          string      `json:"go"`
	PEs         int         `json:"pes"`
	HubDefault  int         `json:"default_hub_min_degree"`
	Kernels     []kernelRow `json:"kernels"`
	HubRows     []hubRow    `json:"hub_rows"`
	QueueAllocs int64       `json:"queue_flush_recv_allocs_per_op"`
	EndToEnd    []e2eRow    `json:"end_to_end"`
}

func bench(f func(b *testing.B)) testing.BenchmarkResult { return testing.Benchmark(f) }

var sink uint64

func kernelMatrix() []kernelRow {
	mk := func(n int, stride uint64) []graph.Vertex {
		out := make([]graph.Vertex, n)
		for i := range out {
			out[i] = uint64(i) * stride
		}
		return out
	}
	const large = 4096
	big := mk(large, 3)
	bits := graph.NewBitset(large*3 + 1)
	bits.SetList(big)
	kernels := []struct {
		name string
		run  func(s []graph.Vertex) uint64
	}{
		{"merge", func(s []graph.Vertex) uint64 { return graph.CountMerge(s, big) }},
		{"branchless", func(s []graph.Vertex) uint64 { return graph.CountMergeBranchless(s, big) }},
		{"gallop", func(s []graph.Vertex) uint64 { return graph.CountGallop(s, big) }},
		{"bitmap", func(s []graph.Vertex) uint64 { return bits.CountList(s) }},
		{"adaptive", func(s []graph.Vertex) uint64 { return graph.CountIntersect(s, big) }},
	}
	var rows []kernelRow
	for _, skew := range []int{1, 4, 16, 64, 256, 1024} {
		small := mk(large/skew, 3*uint64(skew))
		var mergeNs float64
		for _, k := range kernels {
			res := bench(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sink += k.run(small)
				}
			})
			ns := float64(res.NsPerOp())
			if k.name == "merge" {
				mergeNs = ns
			}
			rows = append(rows, kernelRow{
				Kernel: k.name, Skew: fmt.Sprintf("1:%d", skew),
				NsPerOp: ns, AllocsPerOp: res.AllocsPerOp(),
				SpeedupVsMg: mergeNs / ns,
			})
		}
	}
	return rows
}

func hubRows() []hubRow {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"rhg-2^12", benchutil.ByName("rhg-2^12").Build()},
		{"rgg2d-2^12", benchutil.ByName("rgg2d-2^12").Build()},
	}
	var rows []hubRow
	for _, spec := range graphs {
		o := graph.OrientByID(spec.g)
		hub := graph.Vertex(0)
		for v := 0; v < spec.g.NumVertices(); v++ {
			if o.OutDegree(graph.Vertex(v)) > o.OutDegree(hub) {
				hub = graph.Vertex(v)
			}
		}
		probes := spec.g.Neighbors(hub)
		merge := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, u := range probes {
					sink += graph.CountMerge(o.Out(u), o.Out(hub))
				}
			}
		})
		o.BuildHubs(graph.DefaultHubMinDegree)
		adaptive := bench(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, u := range probes {
					sink += o.CountPair(u, hub)
				}
			}
		})
		rows = append(rows, hubRow{
			Graph: spec.name, HubOutDeg: o.OutDegree(hub), Probes: len(probes),
			MergeNs: float64(merge.NsPerOp()), AdaptiveNs: float64(adaptive.NsPerOp()),
			Speedup: float64(merge.NsPerOp()) / float64(adaptive.NsPerOp()),
			NumHubs: o.NumHubs(), AllocsPerOp: adaptive.AllocsPerOp(),
		})
	}
	return rows
}

func endToEnd() []e2eRow {
	var graphs []struct {
		name string
		g    *graph.Graph
	}
	for _, s := range benchutil.Standins() {
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{s.Name, s.Build()})
	}
	var rows []e2eRow
	for _, spec := range graphs {
		for _, run := range []struct {
			algo core.Algorithm
			lcc  bool
		}{
			{core.AlgoDiTric, false}, {core.AlgoCetric, false}, {core.AlgoTriC, false},
			{core.AlgoDiTric, true}, {core.AlgoCetric, true},
		} {
			best := time.Hour
			var tri uint64
			for i := 0; i < 7; i++ {
				res, err := core.Run(run.algo, spec.g, core.Config{P: 8, LCC: run.lcc})
				if err != nil {
					fmt.Fprintf(os.Stderr, "kernbench: %s/%s: %v\n", spec.name, run.algo, err)
					os.Exit(1)
				}
				if res.Wall < best {
					best = res.Wall
				}
				tri = res.Count
			}
			rows = append(rows, e2eRow{
				Graph: spec.name, Algo: string(run.algo), LCC: run.lcc,
				Triangles: tri, BestWallS: best.Seconds(), Hubs: "default",
			})
		}
	}
	return rows
}

func main() {
	rep := report{
		Note: "Adaptive intersection engine: kernel matrix (ns/op per |small∩big| with |big|=4096), " +
			"hub-row cases (heaviest by-ID-oriented row of the stand-ins, one intersection per in-edge), " +
			"steady-state queue flush+receive allocs/op (must be 0), and end-to-end p=8 best-of-7 wall " +
			"times. Wall times are machine-dependent; kernel ratios and alloc counts are the stable signal.",
		Go:         runtime.Version(),
		PEs:        8,
		HubDefault: graph.DefaultHubMinDegree,
		Kernels:    kernelMatrix(),
		HubRows:    hubRows(),
	}
	rep.QueueAllocs = benchutil.QueueSteadyStateAllocs()
	rep.EndToEnd = endToEnd()
	benchutil.WriteJSON("kernbench", rep)
}

package main

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/comm"
	"repro/internal/transport"
)

// queueSteadyStateAllocs measures allocs/op of the aggregated flush +
// receive path between two PEs after warmup (the same shape as
// comm.BenchmarkQueueFlushSteadyState): per-destination word buffers, byte
// frames, and decode arenas are all pooled, so the steady state must report
// zero.
func queueSteadyStateAllocs() int64 {
	net := transport.NewChanNetwork(2)
	defer net.Close()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)
	sender := comm.NewQueue(comm.New(ep0), 1<<20, nil)
	sender.SetCodec(0, comm.DeltaVarint)
	recvQ := comm.NewQueue(comm.New(ep1), 1<<20, nil)
	recvQ.SetCodec(0, comm.DeltaVarint)
	var processed atomic.Int64
	recvQ.Handle(0, func(int, []uint64) { processed.Add(1) })

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			if !recvQ.Poll() {
				runtime.Gosched()
			}
		}
		recvQ.Poll()
	}()

	payload := []uint64{100, 103, 104, 110, 117, 125, 126, 140}
	const burst = 64
	var sent int64
	round := func() {
		for k := 0; k < burst; k++ {
			sender.Send(0, 1, payload)
		}
		sender.Flush()
		sent += burst
		for processed.Load() < sent {
			runtime.Gosched()
		}
	}
	for i := 0; i < 16; i++ {
		round()
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			round()
		}
	})
	stop.Store(true)
	<-done
	return res.AllocsPerOp()
}

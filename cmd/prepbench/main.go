// Command prepbench measures the preprocessing pipeline (scatter → local
// CSR build → ghost degrees → orientation → contraction) before and after
// the PR 4 rework: the "seed" columns time faithful replicas of the
// pre-rework sequential implementations (append-based scatter with two
// binary searches per edge, map-based ghost discovery and row resolution),
// the threads columns time the fused two-pass parallel pipeline. It also
// records the end-to-end Result.Phases sub-phase breakdown for DITRIC and
// CETRIC at Threads ∈ {1, N} and checks that every configuration counts
// the same triangles. BENCH_pr4.json in the repo root is a recorded run:
//
//	go run ./cmd/prepbench > BENCH_pr4.json
//
// Stage walls are per-rank maxima (the phase-wall convention of Result),
// measured with ranks run back to back, best of -reps. On a 1-core host
// (GOMAXPROCS=1, recorded in the report) the threadsN columns cannot show
// parallel speedup; the stable cross-machine signal there is the
// seed-vs-new algorithmic ratio and the absence of a Threads=1 regression.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/part"
)

type stageRow struct {
	Graph           string  `json:"graph"`
	Stage           string  `json:"stage"`
	SeedMs          float64 `json:"seed_ms"`
	Threads1Ms      float64 `json:"threads1_ms"`
	ThreadsNMs      float64 `json:"threadsN_ms"`
	SpeedupNVsSeed  float64 `json:"speedup_threadsN_vs_seed"`
	Speedup1VsSeed  float64 `json:"speedup_threads1_vs_seed"`
	SeedIsReplica   bool    `json:"seed_is_replica"`
	PerRankMaxOverP bool    `json:"per_rank_max"`
}

type e2eRow struct {
	Graph        string             `json:"graph"`
	Algo         string             `json:"algo"`
	Threads      int                `json:"threads"`
	Triangles    uint64             `json:"triangles"`
	PreprocessMs float64            `json:"preprocess_ms"`
	PhasesMs     map[string]float64 `json:"phases_ms"`
}

type report struct {
	Note       string     `json:"note"`
	Go         string     `json:"go"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	PEs        int        `json:"pes"`
	Threads    int        `json:"threads"`
	Stages     []stageRow `json:"stages"`
	EndToEnd   []e2eRow   `json:"end_to_end"`
}

func main() {
	var (
		p       = flag.Int("p", 8, "number of PEs")
		threads = flag.Int("threads", 8, "worker threads for the threadsN columns")
		reps    = flag.Int("reps", 5, "repetitions per measurement (best-of)")
		quick   = flag.Bool("quick", false, "single repetition (CI smoke)")
	)
	flag.Parse()
	if *quick {
		*reps = 1
	}
	rep := report{
		Note: "Preprocessing pipeline walls: seed columns replay the pre-PR sequential " +
			"implementations (append scatter, map-based BuildLocal); threads columns run the " +
			"fused two-pass parallel pipeline. Stage walls are max over ranks, best of reps; " +
			"orientation/contraction are algorithmically unchanged at Threads=1, so their seed " +
			"column equals threads1. End-to-end rows record Result.Phases (ms, max over PEs) " +
			"with the preprocess/* sub-phase breakdown; triangle counts must agree everywhere.",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PEs:        *p,
		Threads:    *threads,
	}
	for _, spec := range benchutil.Standins() {
		g := spec.Build()
		rep.Stages = append(rep.Stages, stages(spec.Name, g, *p, *threads, *reps)...)
		rep.EndToEnd = append(rep.EndToEnd, endToEnd(spec.Name, g, *p, *threads)...)
	}
	benchutil.WriteJSON("prepbench", rep)
}

// bestOf returns the minimum wall of reps runs of f in milliseconds.
func bestOf(reps int, f func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e6
}

// maxRankMs times f once per rank and returns the slowest rank, best of
// reps rounds (the per-PE phase-wall convention).
func maxRankMs(reps, p int, f func(rank int)) float64 {
	best := 1e300
	for i := 0; i < reps; i++ {
		worst := 0.0
		for rank := 0; rank < p; rank++ {
			t0 := time.Now()
			f(rank)
			if d := float64(time.Since(t0).Nanoseconds()) / 1e6; d > worst {
				worst = d
			}
		}
		if worst < best {
			best = worst
		}
	}
	return best
}

func stages(name string, g *graph.Graph, p, threads, reps int) []stageRow {
	pt := part.Uniform(uint64(g.NumVertices()), p)
	edges := g.Edges()

	row := func(stage string, seed, t1, tn float64, replica bool) stageRow {
		return stageRow{
			Graph: name, Stage: stage,
			SeedMs: seed, Threads1Ms: t1, ThreadsNMs: tn,
			SpeedupNVsSeed: seed / tn, Speedup1VsSeed: seed / t1,
			// "total" mixes the whole-run scatter wall with per-rank maxima,
			// so only the pure per-rank stages claim the max-over-ranks label.
			SeedIsReplica: replica, PerRankMaxOverP: stage != "scatter" && stage != "total",
		}
	}

	scSeed := bestOf(reps, func() { seedScatter(pt, edges) })
	sc1 := bestOf(reps, func() { graph.ScatterEdgesPar(pt, edges, 1) })
	scN := bestOf(reps, func() { graph.ScatterEdgesPar(pt, edges, threads) })
	per := graph.ScatterEdgesPar(pt, edges, threads)

	bSeed := maxRankMs(reps, p, func(r int) { seedBuildWalk(pt, r, per[r]) })
	b1 := maxRankMs(reps, p, func(r int) { graph.BuildLocalPar(pt, r, per[r], 1) })
	bN := maxRankMs(reps, p, func(r int) { graph.BuildLocalPar(pt, r, per[r], threads) })

	// Orientation + contraction on degree-complete local views (ghost
	// degrees come straight from the global graph; the exchange itself is
	// communication, measured by the end-to-end runs).
	locals := make([]*graph.LocalGraph, p)
	for r := 0; r < p; r++ {
		locals[r] = graph.BuildLocalPar(pt, r, per[r], threads)
		for i, gid := range locals[r].Ghosts() {
			locals[r].SetGhostDegree(int32(locals[r].NLocal()+i), g.Degree(gid))
		}
	}
	o1 := maxRankMs(reps, p, func(r int) { graph.OrientLocalPar(locals[r], 1) })
	oN := maxRankMs(reps, p, func(r int) { graph.OrientLocalPar(locals[r], threads) })
	oris := make([]*graph.LocalOriented, p)
	for r := 0; r < p; r++ {
		oris[r] = graph.OrientLocalPar(locals[r], threads)
	}
	c1 := maxRankMs(reps, p, func(r int) { oris[r].ContractPar(1) })
	cN := maxRankMs(reps, p, func(r int) { oris[r].ContractPar(threads) })

	total := row("total", scSeed+bSeed+o1+c1, sc1+b1+o1+c1, scN+bN+oN+cN, true)
	return []stageRow{
		row("scatter", scSeed, sc1, scN, true),
		row("build", bSeed, b1, bN, true),
		row("orient", o1, o1, oN, false),
		row("contract", c1, c1, cN, false),
		total,
	}
}

func endToEnd(name string, g *graph.Graph, p, threads int) []e2eRow {
	var rows []e2eRow
	var want uint64
	first := true
	for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
		for _, th := range []int{1, threads} {
			res, err := core.Run(algo, g, core.Config{P: p, Threads: th})
			if err != nil {
				fmt.Fprintf(os.Stderr, "prepbench: %s/%s: %v\n", name, algo, err)
				os.Exit(1)
			}
			if first {
				want, first = res.Count, false
			} else if res.Count != want {
				fmt.Fprintf(os.Stderr, "prepbench: %s/%s threads=%d counted %d, want %d\n",
					name, algo, th, res.Count, want)
				os.Exit(1)
			}
			phases := make(map[string]float64, len(res.Phases))
			for ph, d := range res.Phases {
				phases[ph] = float64(d.Nanoseconds()) / 1e6
			}
			rows = append(rows, e2eRow{
				Graph: name, Algo: string(algo), Threads: th, Triangles: res.Count,
				PreprocessMs: phases[core.PhasePreprocess], PhasesMs: phases,
			})
		}
	}
	return rows
}

// seedScatter replays the pre-PR ScatterEdges: append with two binary
// searches per edge.
func seedScatter(pt *part.Partition, edges []graph.Edge) [][]graph.Edge {
	out := make([][]graph.Edge, pt.P())
	for _, e := range edges {
		ru, rv := pt.Rank(e.U), pt.Rank(e.V)
		out[ru] = append(out[ru], e)
		if rv != ru {
			out[rv] = append(out[rv], e)
		}
	}
	return out
}

// seedBuildWalk replays the work of the pre-PR BuildLocal byte for byte —
// map-based ghost discovery, map-resolved rows in the count and placement
// passes, then the per-row sort + dedup + row-translate sweep — without
// constructing the package-private LocalGraph, so the timing is an honest
// "before" for the build stage.
func seedBuildWalk(pt *part.Partition, rank int, edges []graph.Edge) int {
	first, last := pt.Range(rank)
	nLocal := int(last - first)
	isLocal := func(v graph.Vertex) bool { return v >= first && v < last }
	ghostRow := make(map[graph.Vertex]int32)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if !isLocal(e.U) {
			ghostRow[e.U] = 0
		}
		if !isLocal(e.V) {
			ghostRow[e.V] = 0
		}
	}
	ghostID := make([]graph.Vertex, 0, len(ghostRow))
	for gv := range ghostRow {
		ghostID = append(ghostID, gv)
	}
	slices.Sort(ghostID)
	for i, gv := range ghostID {
		ghostRow[gv] = int32(nLocal + i)
	}
	rowOf := func(v graph.Vertex) int32 {
		if isLocal(v) {
			return int32(v - first)
		}
		return ghostRow[v]
	}
	rows := nLocal + len(ghostID)
	cnt := make([]int64, rows+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		cnt[rowOf(e.U)+1]++
		cnt[rowOf(e.V)+1]++
	}
	off := make([]int64, rows+1)
	for i := 1; i <= rows; i++ {
		off[i] = off[i-1] + cnt[i]
	}
	adj := make([]graph.Vertex, off[rows])
	pos := make([]int64, rows)
	copy(pos, off[:rows])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		ru, rv := rowOf(e.U), rowOf(e.V)
		adj[pos[ru]] = e.V
		pos[ru]++
		adj[pos[rv]] = e.U
		pos[rv]++
	}
	w := int64(0)
	newOff := make([]int64, rows+1)
	adjRow := make([]int32, len(adj))
	for r := 0; r < rows; r++ {
		row := adj[off[r]:off[r+1]]
		slices.Sort(row)
		start := w
		var last graph.Vertex
		fst := true
		lo := 0
		for _, x := range row {
			if !fst && x == last {
				continue
			}
			adj[w] = x
			if isLocal(x) {
				adjRow[w] = int32(x - first)
			} else {
				// Forward exponential + binary search, as the seed did.
				g := ghostSearchFrom(ghostID, x, lo)
				adjRow[w] = int32(nLocal + g)
				lo = g + 1
			}
			w++
			last, fst = x, false
		}
		newOff[r] = start
	}
	newOff[rows] = w
	deg := make([]int, rows)
	for r := 0; r < nLocal; r++ {
		deg[r] = int(newOff[r+1] - newOff[r])
	}
	return int(w) + len(deg)
}

func ghostSearchFrom(gid []graph.Vertex, x graph.Vertex, from int) int {
	lo, hi := from, from
	step := 1
	for hi < len(gid) && gid[hi] < x {
		lo = hi + 1
		hi += step
		step *= 2
	}
	if hi > len(gid) {
		hi = len(gid)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if gid[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

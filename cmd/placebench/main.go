// Command placebench measures the cost-model-driven hub placement overlay
// (PR 9): for each benchmark stand-in it runs the global phase with
// Placement off and auto and records the max-PE and total receive-side
// intersection work (comm.Metrics.RecvWorkWords — the deterministic,
// schedule-independent "global-phase work" placement balances), the
// activity-skew summary, and the α+β BottleneckWire model. Triangle counts
// must be identical between the two placements everywhere — the tool exits
// nonzero otherwise. It also validates the measured-α/β calibration against
// a direct transport probe over loopback TCP: the run-fitted parameters
// must land within 10× of a raw timed-send fit on the same transport.
// BENCH_pr9.json in the repo root is a recorded run:
//
//	go run ./cmd/placebench > BENCH_pr9.json
//
// The acceptance signal is max_recv_work_off_over_auto on the skewed
// instances (rhg/rmat) at p=8: the hubs' receive-side work is concentrated
// on their owners, and the LPT overlay spreads it across surrogates, so the
// worst PE's work must drop by ≥1.3×. The sparse control (rgg2d) is
// reported honestly: with no hubs worth moving the ratio sits near 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/benchutil"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/transport"
)

type row struct {
	Graph         string             `json:"graph"`
	Algo          string             `json:"algo"`
	P             int                `json:"p"`
	Placement     string             `json:"placement"`
	Triangles     uint64             `json:"triangles"`
	WallMs        float64            `json:"wall_ms"`
	MaxRecvWork   int64              `json:"max_recv_work_words"`
	TotalRecvWork int64              `json:"total_recv_work_words"`
	SkewRatio     float64            `json:"recv_work_max_over_mean"`
	PlaceMs       float64            `json:"place_phase_ms"` // 0 when the overlay did not engage
	WireMs        map[string]float64 `json:"bottleneck_wire_ms"`
}

type comparison struct {
	Graph            string  `json:"graph"`
	Algo             string  `json:"algo"`
	P                int     `json:"p"`
	Skewed           bool    `json:"skewed"`
	MaxRecvWorkRatio float64 `json:"max_recv_work_off_over_auto"`
	SkewRatioOff     float64 `json:"skew_off"`
	SkewRatioAuto    float64 `json:"skew_auto"`
	WireRatioCloud   float64 `json:"bottleneck_wire_cloud_off_over_auto"`
}

type calibration struct {
	Transport        string  `json:"transport"`
	Samples          int64   `json:"samples"`
	RunAlphaUs       float64 `json:"run_fit_alpha_us"`
	RunBetaNsPerWord float64 `json:"run_fit_beta_ns_per_word"`
	ProbeAlphaUs     float64 `json:"probe_alpha_us"`
	ProbeBetaNs      float64 `json:"probe_beta_ns_per_word"`
	AlphaRatio       float64 `json:"alpha_run_over_probe"`
	BetaRatio        float64 `json:"beta_run_over_probe"`
	Within10x        bool    `json:"within_10x"`
	Attempts         int     `json:"attempts"`
}

type report struct {
	Note        string       `json:"note"`
	Go          string       `json:"go"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Rows        []row        `json:"rows"`
	Comparisons []comparison `json:"comparisons"`
	Calibration *calibration `json:"calibration,omitempty"`
}

func main() {
	var (
		quick = flag.Bool("quick", false, "p=8 only, single rep (CI smoke)")
		reps  = flag.Int("reps", 3, "repetitions per configuration (best wall wins)")
	)
	flag.Parse()
	pes := []int{4, 8, 16}
	if *quick {
		pes = []int{8}
		*reps = 1
	}
	rep := report{
		Note: "Hub placement off vs auto: max/total_recv_work_words is receive-side intersection " +
			"work (Σ |list|+|partner| per intersection; deterministic and schedule-independent), " +
			"the quantity the LPT overlay balances. place_phase_ms > 0 marks runs where hubs " +
			"actually moved. bottleneck_wire_ms is costmodel.BottleneckWire per profile. " +
			"Counts are verified identical between placements. The acceptance signal is " +
			"max_recv_work_off_over_auto >= 1.3 on the skewed instances (rhg/rmat) at p=8; " +
			"the sparse rgg2d control is expected to sit near 1 (no hubs worth moving). " +
			"calibration compares the run-fitted measured alpha/beta over loopback TCP with a " +
			"direct timed-send probe on the same transport (within_10x is the acceptance bound).",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	failed := false
	for _, spec := range benchutil.Standins() {
		g := spec.Build()
		for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
			for _, p := range pes {
				var rows [2]row
				for i, placement := range []string{core.PlacementOff, core.PlacementAuto} {
					rows[i] = measure(spec.Name, g, algo, p, placement, *reps)
				}
				if rows[0].Triangles != rows[1].Triangles {
					fmt.Fprintf(os.Stderr, "placebench: %s/%s p=%d: off counted %d, auto %d\n",
						spec.Name, algo, p, rows[0].Triangles, rows[1].Triangles)
					failed = true
				}
				rep.Rows = append(rep.Rows, rows[:]...)
				rep.Comparisons = append(rep.Comparisons, compare(spec, algo, p, rows[0], rows[1]))
			}
		}
	}
	if cal, err := calibrate(); err != nil {
		fmt.Fprintf(os.Stderr, "placebench: calibration: %v\n", err)
		failed = true
	} else {
		rep.Calibration = cal
		if !cal.Within10x {
			fmt.Fprintf(os.Stderr, "placebench: run fit (α=%.2fµs β=%.3fns/w) outside 10x of probe (α=%.2fµs β=%.3fns/w)\n",
				cal.RunAlphaUs, cal.RunBetaNsPerWord, cal.ProbeAlphaUs, cal.ProbeBetaNs)
			failed = true
		}
	}
	benchutil.WriteJSON("placebench", rep)
	if failed {
		os.Exit(1)
	}
}

func measure(name string, g *graph.Graph, algo core.Algorithm, p int, placement string, reps int) row {
	var best *core.Result
	for i := 0; i < reps; i++ {
		res, err := core.Run(algo, g, core.Config{P: p, Placement: placement})
		if err != nil {
			fmt.Fprintf(os.Stderr, "placebench: %s/%s p=%d %s: %v\n", name, algo, p, placement, err)
			os.Exit(1)
		}
		if best == nil || res.Wall < best.Wall {
			best = res
		}
	}
	skew := dist.ActivitySkew(best.PerPE)
	wire := make(map[string]float64, len(costmodel.Profiles()))
	for _, prof := range costmodel.Profiles() {
		wire[prof.Name] = ms(costmodel.BottleneckWire(best.PerPE, prof))
	}
	return row{
		Graph: name, Algo: string(algo), P: p, Placement: placement,
		Triangles:     best.Count,
		WallMs:        ms(best.Wall),
		MaxRecvWork:   best.Agg.MaxRecvWork,
		TotalRecvWork: best.Agg.TotalRecvWork,
		SkewRatio:     skew.Ratio,
		PlaceMs:       ms(best.Phases[core.PhasePlace]),
		WireMs:        wire,
	}
}

func compare(spec benchutil.Standin, algo core.Algorithm, p int, off, auto row) comparison {
	ratio := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	return comparison{
		Graph: spec.Name, Algo: string(algo), P: p,
		Skewed:           spec.Skewed,
		MaxRecvWorkRatio: ratio(float64(off.MaxRecvWork), float64(auto.MaxRecvWork)),
		SkewRatioOff:     off.SkewRatio,
		SkewRatioAuto:    auto.SkewRatio,
		WireRatioCloud:   ratio(off.WireMs[costmodel.Cloud.Name], auto.WireMs[costmodel.Cloud.Name]),
	}
}

// calibrate fits α+β two ways on the same loopback TCP transport: from a
// counting run's own frame-latency samples (the measured profile the
// placement solver consumes) and from a direct probe that times raw
// endpoint sends across a spread of frame sizes — the exact operation
// comm's meter wraps. The two must agree within an order of magnitude.
// Loopback timing under a busy scheduler is noisy enough that either fit
// can occasionally degenerate (the run fit to the pure-latency fallback,
// the probe intercept to the clamp floor), so the comparison takes up to
// three fresh attempts and records the first agreeing pair plus how many
// tries it took — a run/probe disagreement has to be reproducible to fail.
func calibrate() (*calibration, error) {
	const attempts = 3
	var last *calibration
	for a := 1; a <= attempts; a++ {
		cal, err := calibrateOnce()
		if err != nil {
			return nil, err
		}
		cal.Attempts = a
		if cal.Within10x {
			return cal, nil
		}
		last = cal
	}
	return last, nil
}

func calibrateOnce() (*calibration, error) {
	// Pool the frame-latency accumulators over several counting runs: one
	// run meters only ~50 frames, few enough that scheduling noise can flip
	// the fitted slope's sign.
	const (
		p    = 4
		reps = 3
	)
	g := benchutil.ByName("rmat-2^13").Build()
	var pooled []comm.Metrics
	for i := 0; i < reps; i++ {
		net, err := transport.NewLoopbackTCPNetwork(p)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.AlgoDiTric, g, core.Config{P: p, Network: net, Profile: costmodel.MeasuredName})
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, res.PerPE...)
	}
	runFit, ok := costmodel.MeasuredProfile(pooled)
	if !ok {
		return nil, fmt.Errorf("runs produced too few latency samples to fit")
	}
	var samples int64
	for _, m := range pooled {
		samples += m.LatSamples
	}

	probeFit, err := probeTCP()
	if err != nil {
		return nil, err
	}
	alphaRatio := runFit.Alpha / probeFit.Alpha
	betaRatio := runFit.Beta / probeFit.Beta
	within := func(r float64) bool { return r >= 0.1 && r <= 10 }
	// A pure-latency run fit says β was unidentifiable on this transport
	// (frame latency did not grow with size); comparing the β floor against
	// the probe's slope would then measure the floor constant, not the
	// transport, so the agreement check is α-only in that case.
	betaOK := within(betaRatio) || runFit.Beta == costmodel.BetaFloor
	return &calibration{
		Transport:        "loopback-tcp",
		Samples:          samples,
		RunAlphaUs:       runFit.Alpha * 1e6,
		RunBetaNsPerWord: runFit.Beta * 1e9,
		ProbeAlphaUs:     probeFit.Alpha * 1e6,
		ProbeBetaNs:      probeFit.Beta * 1e9,
		AlphaRatio:       alphaRatio,
		BetaRatio:        betaRatio,
		Within10x:        within(alphaRatio) && betaOK,
	}, nil
}

// probeTCP runs a dedicated timing pass over a fresh loopback TCP pair:
// frames across a spread of sizes go through the comm layer's own metered
// send path (exactly the code whose latency samples the run-side fit
// consumes), and the probe fits the resulting accumulators with the same
// closed-form least squares. Each frame is timed in isolation — the sender
// waits for the receiver to drain before the next send — so a frame's
// latency is the write cost at its size, not the residue of earlier frames
// filling the socket buffer (bursting makes big frames block on buffer
// space, which steepens the fitted slope until the intercept goes
// negative). The probe differs from the run fit only in its traffic — pure
// timing frames instead of a counting workload — so it is the honest
// "direct measurement" baseline.
func probeTCP() (costmodel.Profile, error) {
	net, err := transport.NewLoopbackTCPNetwork(2)
	if err != nil {
		return costmodel.Profile{}, err
	}
	defer net.Close()
	ep0, err := net.Endpoint(0)
	if err != nil {
		return costmodel.Profile{}, err
	}
	ep1, err := net.Endpoint(1)
	if err != nil {
		return costmodel.Profile{}, err
	}
	c0 := comm.New(ep0)
	sender := comm.NewQueue(c0, 1<<22, nil)
	recvQ := comm.NewQueue(comm.New(ep1), 1<<22, nil)
	var received atomic.Int64
	recvQ.Handle(0, func(int, []uint64) { received.Add(1) })
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !recvQ.Poll() {
				runtime.Gosched()
			}
		}
	}()
	// Word counts per frame, interleaved so queue state is comparable across
	// sizes; two passes, the first only warms buffers and the TCP window.
	sizes := []int{8, 32, 128, 512, 2048, 8192}
	const repsPerSize = 16
	var sent int64
	var m comm.Metrics
	for pass := 0; pass < 2; pass++ {
		start := c0.M
		for i := 0; i < repsPerSize; i++ {
			for _, words := range sizes {
				payload := make([]uint64, words)
				sender.Send(0, 1, payload)
				sender.Flush()
				sent++
				for received.Load() < sent {
					runtime.Gosched()
				}
			}
		}
		if pass == 1 {
			m = c0.M.Sub(start)
		}
	}
	close(stop)
	<-done
	fit, ok := costmodel.Calibrate(m)
	if !ok {
		return costmodel.Profile{}, fmt.Errorf("probe samples could not support a fit")
	}
	return fit, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

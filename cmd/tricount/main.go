// Command tricount counts triangles (and optionally local clustering
// coefficients) on generated or file-based graphs with any of the
// implemented algorithms.
//
// Examples:
//
//	tricount -gen rmat -n 65536 -algo cetric -p 16
//	tricount -instance friendster -algo ditric2 -p 32 -lcc
//	tricount -input graph.txt -algo cetric2 -p 8 -threads 4
//	tricount -gen rhg -n 16384 -algo cetric -p 4 -approx -bits 8
//	tricount -gen rgg2d -n 4096 -algo ditric -p 8 -codec raw   # vs default auto
//
// Multi-process TCP mode (run once per rank, same -peers list):
//
//	tricount -gen rmat -n 65536 -algo cetric -tcp-rank 0 -peers :9000,:9001
//	tricount -gen rmat -n 65536 -algo cetric -tcp-rank 1 -peers :9000,:9001
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	tricount "repro"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tricount: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		genFamily  = flag.String("gen", "", "generator family: gnm|rmat|rgg2d|rhg")
		instance   = flag.String("instance", "", "real-world stand-in instance (see -list)")
		input      = flag.String("input", "", "edge list file (text: 'u v' per line)")
		n          = flag.Int("n", 1<<14, "vertices for -gen")
		edgeFactor = flag.Int("ef", 16, "edge factor m/n for -gen")
		seed       = flag.Uint64("seed", 42, "generator seed")
		scale      = flag.Int("scale", 0, "instance size shift (powers of two)")

		algoName  = flag.String("algo", "cetric", "algorithm: seq|ditric|ditric2|cetric|cetric2|tk2d|tric|havoq|noagg (tk2d factors any -p into an r×c grid)")
		p         = flag.Int("p", 8, "number of PEs")
		threshold = flag.Int("delta", 0, "aggregation threshold δ in words (0 = O(|E_i|))")
		threads   = flag.Int("threads", 1, "threads per PE (hybrid counting + parallel preprocessing)")
		overlap   = flag.Bool("overlap", false, "overlapped work-stealing pipeline (DITRIC/CETRIC): eager shipments + steal deque instead of barrier-separated phases")
		lcc       = flag.Bool("lcc", false, "compute local clustering coefficients")
		sparse    = flag.Bool("sparse-degree", false, "sparse ghost degree exchange")
		partBy    = flag.String("partition", "uniform", "1D partitioner: uniform|degree|wedges")
		codec     = flag.String("codec", "auto", "wire codec policy: auto|raw|varint|deltavarint")
		profile   = flag.String("profile", "", "costmodel network profile (supercomputer|cloud|wan|measured): derives the overlapped pipeline's flush watermark and prices placement; 'measured' calibrates α/β live from the run's own frame latencies (falls back to cloud until enough samples); empty keeps the fixed default")
		placement = flag.String("placement", "off", "hub placement overlay (DITRIC/CETRIC): off|static|auto — move heavy hub rows to surrogate PEs by greedy LPT over the modeled load (static: profile-table α/β, auto: live-calibrated); counts are identical")
		hub       = flag.Int("hub", 0, "hub-bitmap threshold: min |A(v)| for a packed bitmap (0 = default, <0 = off)")

		approx  = flag.Bool("approx", false, "AMQ-approximate type-3 counting (CETRIC)")
		bits    = flag.Float64("bits", 8, "Bloom filter bits per key for -approx")
		doulion = flag.Float64("doulion", 0, "DOULION edge-sampling probability q ∈ (0,1] (0 = off)")
		colors  = flag.Int("colors", 0, "colorful-sparsification color count (0 = off)")

		stream = flag.Bool("stream", false, "streaming ingestion + incremental delta-counting (DITRIC/CETRIC)")
		batch  = flag.Int("batch", 0, "edge batch size for -stream (0 = max(1024, m/8))")

		tcpRank = flag.Int("tcp-rank", -1, "run as one rank of a TCP cluster (multi-process mode)")
		peers   = flag.String("peers", "", "comma-separated listen addresses of all ranks")

		list    = flag.Bool("list", false, "list instances and exit")
		verbose = flag.Bool("v", false, "print per-phase and per-PE details")
	)
	flag.Parse()

	if *list {
		for _, inst := range gen.Instances {
			fmt.Printf("%-14s %-7s %s\n", inst.Name, inst.Class, inst.Notes)
		}
		return nil
	}

	g, err := buildGraph(*genFamily, *instance, *input, *n, *edgeFactor, *scale, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// Flag validation up front: a NaN or out-of-range probability must die
	// here, not as a scaled-by-1/NaN³ estimate 20 minutes into a run. The
	// !(q > 0 && q ≤ 1) form rejects NaN too (both comparisons are false).
	// It also runs before the seq fast path, which would otherwise silently
	// ignore the flag and print an exact count dressed as an estimate run.
	if q := *doulion; q != 0 && !(q > 0 && q <= 1) {
		return fmt.Errorf("-doulion probability %v out of (0,1]", q)
	}
	if *colors < 0 {
		return fmt.Errorf("-colors needs a positive color count, got %d", *colors)
	}
	if *doulion != 0 && *colors != 0 {
		return fmt.Errorf("-doulion and -colors are mutually exclusive")
	}

	if *algoName == "seq" {
		if *doulion != 0 || *colors != 0 || *approx || *stream {
			return fmt.Errorf("-doulion, -colors, -approx, and -stream need a distributed algorithm, not seq")
		}
		start := time.Now()
		count := core.SeqCount(g)
		fmt.Printf("triangles: %d (sequential, %v)\n", count, time.Since(start).Round(time.Microsecond))
		if *lcc {
			printLCCSummary(core.SeqLCC(g))
		}
		return nil
	}

	cfg := core.Config{
		P: *p, Threshold: *threshold, Threads: *threads, Overlap: *overlap,
		LCC: *lcc, SparseDegreeExchange: *sparse, Codec: *codec,
		HubThreshold: *hub, Profile: *profile, Placement: *placement,
	}
	switch *partBy {
	case "uniform":
	case "degree", "wedges":
		cost := tricount.CostDegree
		if *partBy == "wedges" {
			cost = tricount.CostWedges
		}
		cfg.Partition = tricount.PartitionByCost(g, *p, cost)
	default:
		return fmt.Errorf("unknown partitioner %q", *partBy)
	}

	if *tcpRank >= 0 {
		return runTCPRank(g, core.Algorithm(*algoName), cfg, *tcpRank, *peers)
	}

	if *stream {
		if *lcc || *approx || *doulion != 0 || *colors != 0 {
			return fmt.Errorf("-stream is incompatible with -lcc, -approx, -doulion, and -colors")
		}
		return runStream(g, core.Algorithm(*algoName), cfg, *batch, *verbose)
	}

	if *doulion != 0 {
		est, res, err := core.RunDoulion(core.Algorithm(*algoName), g, cfg, *doulion, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("estimate: %.0f (DOULION q=%g, sparse count %d) in %v\n",
			est, *doulion, res.Count, res.Wall.Round(time.Microsecond))
		printComm(res.Agg, res.PerPE)
		return nil
	}
	if *colors != 0 {
		est, res, err := core.RunColorful(core.Algorithm(*algoName), g, cfg, *colors, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("estimate: %.0f (colorful ncolors=%d, monochrome count %d) in %v\n",
			est, *colors, res.Count, res.Wall.Round(time.Microsecond))
		printComm(res.Agg, res.PerPE)
		return nil
	}

	if *approx {
		res, err := core.RunApproxCetric(g, cfg, core.AMQConfig{BitsPerKey: *bits, Truthful: true})
		if err != nil {
			return err
		}
		fmt.Printf("estimate: %.0f (exact type-1/2: %d, corrected type-3: %.0f) in %v\n",
			res.Estimate, res.Exact12, res.Type3Estimate, res.Wall.Round(time.Microsecond))
		printComm(res.Agg, res.PerPE)
		return nil
	}

	res, err := core.Run(core.Algorithm(*algoName), g, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("triangles: %d in %v (p=%d, algo=%s)\n", res.Count, res.Wall.Round(time.Microsecond), *p, *algoName)
	if res.TypeCounts != [3]uint64{} {
		fmt.Printf("types: local=%d two-PE=%d three-PE=%d\n", res.TypeCounts[0], res.TypeCounts[1], res.TypeCounts[2])
	}
	printComm(res.Agg, res.PerPE)
	if core.Algorithm(*algoName) == core.AlgoTK2D {
		if g2, err := part.NewGrid2D(uint64(g.NumVertices()), *p); err == nil {
			fmt.Printf("grid: %d×%d (%d rounds)\n", g2.R(), g2.C(), g2.Rounds())
		}
		// The collective exchange blocks on receives, so the 2D completion
		// proxy charges both directions — comparable against the 1D runs'
		// wire column above.
		for _, prof := range costmodel.Profiles() {
			fmt.Printf("  t_model2d(%s): wire %v\n", prof.Name,
				costmodel.BottleneckWire2D(res.PerPE, prof).Round(time.Microsecond))
		}
	}
	if *profile == costmodel.MeasuredName {
		if _, ok := costmodel.MeasuredProfile(res.PerPE); !ok && *verbose {
			fmt.Printf("measured: too few latency samples (< %d per fit); watermark and placement fell back to the %s profile\n",
				costmodel.MinCalibrationSamples, costmodel.Cloud.Name)
		}
	}
	if *verbose {
		printPhases(res)
		printActivity(res.PerPE)
	}
	if *lcc {
		printLCCSummary(res.LCC)
	}
	return nil
}

// runStream feeds the graph's edges through the streaming driver: the first
// batch seeds the incrementally built initial graph, the rest are inserted
// and delta-counted. The final count matches the one-shot run exactly.
func runStream(g *graph.Graph, algo core.Algorithm, cfg core.Config, batch int, verbose bool) error {
	edges := g.Edges()
	if batch <= 0 {
		batch = max(1024, len(edges)/8)
	}
	split := min(batch, len(edges))
	start := time.Now()
	sres, err := core.RunStream(algo, uint64(g.NumVertices()),
		core.SliceBatches(edges[:split], batch), core.SliceBatches(edges[split:], batch), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("triangles: %d in %v (streamed: initial %d + %d batches of ≤%d edges, algo=%s)\n",
		sres.Count, time.Since(start).Round(time.Microsecond), sres.Initial, len(sres.Deltas), batch, algo)
	printComm(sres.Res.Agg, sres.Res.PerPE)
	if verbose {
		for b, d := range sres.Deltas {
			fmt.Printf("  batch %-4d Δtriangles=%d\n", b, d)
		}
		printPhases(sres.Res)
	}
	return nil
}

func buildGraph(family, instance, input string, n, ef, scale int, seed uint64) (*graph.Graph, error) {
	switch {
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeListText(f)
	case instance != "":
		return gen.ByInstance(instance, scale, seed)
	case family != "":
		return gen.ByFamily(family, n, ef, seed)
	default:
		return nil, fmt.Errorf("need one of -gen, -instance, or -input")
	}
}

func printComm(agg comm.Aggregate, per []comm.Metrics) {
	fmt.Printf("comm: frames(max/total)=%s/%s volume(max/total words)=%s/%s peak-buffer(max)=%s\n",
		human(agg.MaxSentFrames), human(agg.TotalFrames),
		human(agg.MaxPayloadWords), human(agg.TotalPayload), human(agg.MaxPeakBuffered))
	fmt.Printf("wire: bytes(raw/encoded)=%s/%s compression=%.2fx\n",
		human(agg.TotalRawBytes), human(agg.TotalEncodedBytes), agg.CompressionRatio())
	for _, prof := range costmodel.Profiles() {
		fmt.Printf("  t_model(%s): words %v, wire %v\n", prof.Name,
			costmodel.Bottleneck(per, prof).Round(time.Microsecond),
			costmodel.BottleneckWire(per, prof).Round(time.Microsecond))
	}
	// The live-calibrated lens: α/β least-squares fitted to this very run's
	// pooled frame-latency samples (costmodel.Calibrate), next to the static
	// tables. Absent when the run produced too few samples for a fit.
	if mp, ok := costmodel.MeasuredProfile(per); ok {
		fmt.Printf("  t_model(measured): words %v, wire %v (fitted α=%.1fµs, β=%.2fns/word)\n",
			costmodel.Bottleneck(per, mp).Round(time.Microsecond),
			costmodel.BottleneckWire(per, mp).Round(time.Microsecond),
			mp.Alpha*1e6, mp.Beta*1e9)
	}
}

func human(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// printPhases lists phase walls in stable sorted order; sub-phases (keys
// like "preprocess/scatter") sort directly after their parent phase and
// print indented beneath it.
func printPhases(res *core.Result) {
	names := make([]string, 0, len(res.Phases))
	for name := range res.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, sub, isSub := strings.Cut(name, "/"); isSub {
			fmt.Printf("    · %-14s %v\n", sub, res.Phases[name].Round(time.Microsecond))
		} else {
			fmt.Printf("  phase %-12s %v\n", name, res.Phases[name].Round(time.Microsecond))
		}
	}
}

// printActivity leads with the activity-skew summary — the max/mean ratio
// of per-rank receive-side intersection work (the deterministic load the
// placement overlay balances) plus the worst idle wait — then lists each
// rank's realized overlap (receive work done while still emitting — CPU
// time summed over the rank's workers, so it can exceed wall time) and idle
// wait (termination-detector wall time with nothing to steal).
func printActivity(per []comm.Metrics) {
	if sk := dist.ActivitySkew(per); sk.Ratio > 0 {
		fmt.Printf("  recv-work skew: max/mean=%.2fx (max=%s mean=%s words), max-idle=%v\n",
			sk.Ratio, human(sk.MaxRecvWork), human(int64(sk.MeanRecvWork)),
			sk.MaxIdle.Round(time.Microsecond))
	}
	for _, a := range dist.Activity(per) {
		if a.Overlap == 0 && a.Idle == 0 {
			continue
		}
		fmt.Printf("  rank %-3d overlap(cpu)=%-10v idle=%v\n",
			a.Rank, a.Overlap.Round(time.Microsecond), a.Idle.Round(time.Microsecond))
	}
}

func printLCCSummary(lcc []float64) {
	if len(lcc) == 0 {
		return
	}
	var sum float64
	for _, v := range lcc {
		sum += v
	}
	fmt.Printf("lcc: mean=%.4f over %d vertices\n", sum/float64(len(lcc)), len(lcc))
}

// runTCPRank executes a single rank of a multi-process TCP cluster. Every
// process generates the same deterministic graph and keeps only its part, so
// no input distribution is needed.
func runTCPRank(g *graph.Graph, algo core.Algorithm, cfg core.Config, rank int, peerList string) error {
	addrs := strings.Split(peerList, ",")
	if len(addrs) < 2 {
		return fmt.Errorf("-peers needs at least two comma-separated addresses")
	}
	if rank >= len(addrs) {
		return fmt.Errorf("-tcp-rank %d out of range for %d peers", rank, len(addrs))
	}
	cfg.P = len(addrs)
	ep, err := transport.ListenTCP(rank, addrs, transport.TCPOptions{})
	if err != nil {
		return err
	}
	defer ep.Close()
	start := time.Now()
	count, m, err := core.RunRank(algo, g, cfg, ep)
	if err != nil {
		return err
	}
	fmt.Printf("rank %d/%d: global triangles = %d in %v (this rank sent %d frames, %d payload words)\n",
		rank, len(addrs), count, time.Since(start).Round(time.Millisecond), m.SentFrames, m.PayloadWords)
	return nil
}

// Command streambench measures what the streaming driver (PR 6) buys:
//
//  1. Driver-side peak memory. The one-shot driver materializes the full
//     edge list plus a complete p-way scatter before any PE starts
//     building — O(|E|) words on top of the input CSR. The streaming
//     driver pulls batches straight out of the CSR and scatters one batch
//     at a time, so its transient peak is O(|E_i| + batch). Both paths are
//     run under a heap sampler and the tool FAILS (exit 1) if streaming
//     does not come in under the one-shot peak.
//  2. Incremental delta-counting cost. After the initial graph is counted,
//     each inserted batch costs one delta pass (new-edge intersections +
//     cut shipments) instead of a full recount; the report compares the
//     mean per-batch delta wall against a from-scratch Run of the same
//     final graph.
//
// Counts are cross-checked everywhere: every streamed count must equal the
// one-shot count of the same edges. BENCH_pr6.json in the repo root is a
// recorded run:
//
//	go run ./cmd/streambench > BENCH_pr6.json
//
// -quick runs a small correctness smoke for CI (no JSON, exit status only).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

type memRow struct {
	Graph           string  `json:"graph"`
	Edges           int     `json:"edges"`
	Algo            string  `json:"algo"`
	P               int     `json:"p"`
	Batch           int     `json:"batch"`
	Triangles       uint64  `json:"triangles"`
	OneShotPeakMB   float64 `json:"oneshot_driver_peak_mb"`
	StreamPeakMB    float64 `json:"stream_driver_peak_mb"`
	PeakRatio       float64 `json:"oneshot_over_stream_peak"`
	OneShotWallMs   float64 `json:"oneshot_wall_ms"`
	StreamWallMs    float64 `json:"stream_wall_ms"`
	EdgeListBoundMB float64 `json:"edge_list_bound_mb"` // 16·m bytes: what Edges() alone costs
}

type deltaRow struct {
	Graph            string  `json:"graph"`
	Algo             string  `json:"algo"`
	P                int     `json:"p"`
	Batch            int     `json:"batch"`
	Batches          int     `json:"insert_batches"`
	Triangles        uint64  `json:"triangles"`
	MeanDeltaMs      float64 `json:"mean_delta_batch_ms"`
	FullRecountMs    float64 `json:"full_recount_ms"`
	RecountOverDelta float64 `json:"recount_over_delta"`
}

type report struct {
	GOMAXPROCS int        `json:"gomaxprocs"`
	Memory     []memRow   `json:"memory"`
	Delta      []deltaRow `json:"delta"`
}

func main() {
	quick := flag.Bool("quick", false, "small correctness smoke (CI): streamed count must equal one-shot count")
	p := flag.Int("p", 4, "PEs")
	flag.Parse()

	if *quick {
		runQuick(*p)
		return
	}

	rep := report{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Memory experiment: big enough that the one-shot driver's O(|E|)
	// transients (the full edge list plus a like-sized p-way scatter,
	// ~32 B/edge ⇒ 128 MiB at m=2^22) dominate allocator noise, batch small
	// enough to show the O(batch) side.
	memG := gen.GNM(1<<19, 1<<22, 42)
	rep.Memory = append(rep.Memory, memExperiment("gnm-2^22", memG, core.AlgoCetric, *p, 1<<16))

	// Delta experiment: per-batch insert cost vs a from-scratch recount on
	// the stand-in catalog.
	for _, s := range benchutil.Standins() {
		g := s.Build()
		for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
			rep.Delta = append(rep.Delta, deltaExperiment(s.Name, g, algo, *p, 1<<12))
		}
	}

	benchutil.WriteJSON("streambench", rep)
	for _, m := range rep.Memory {
		if m.StreamPeakMB >= m.OneShotPeakMB {
			fmt.Fprintf(os.Stderr, "streambench: FAIL %s: streaming driver peak %.1f MB not below one-shot %.1f MB\n",
				m.Graph, m.StreamPeakMB, m.OneShotPeakMB)
			os.Exit(1)
		}
	}
}

// peakHeap runs f while a sampler goroutine tracks HeapInuse and returns
// the peak growth over the pre-f baseline in bytes. GC pacing is tightened
// for the duration (GOGC would otherwise let the heap float to ~2× live
// under allocation churn, drowning the driver-side signal in collector
// slack), and the 20 ms cadence keeps the stop-the-world cost of
// ReadMemStats negligible while still catching the build-phase transients.
func peakHeap(f func()) uint64 {
	defer debug.SetGCPercent(debug.SetGCPercent(20))
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak atomic.Uint64
	peak.Store(base.HeapInuse)
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > peak.Load() {
				peak.Store(ms.HeapInuse)
			}
			select {
			case <-done:
				return
			case <-time.After(20 * time.Millisecond):
			}
		}
	}()
	f()
	close(done)
	<-sampled
	if p := peak.Load(); p > base.HeapInuse {
		return p - base.HeapInuse
	}
	return 0
}

// graphBatches is a pull source that walks g's CSR rows directly: the
// driver never materializes the full edge list, the defining condition of
// the streaming memory experiment. Each undirected edge is emitted once,
// from its lower endpoint.
func graphBatches(g *graph.Graph, batch int) core.BatchSource {
	v := graph.Vertex(0)
	n := graph.Vertex(g.NumVertices())
	buf := make([]graph.Edge, 0, batch)
	return func() []graph.Edge {
		buf = buf[:0]
		for ; v < n && len(buf) < batch; v++ {
			for _, w := range g.Neighbors(v) {
				if w > v {
					buf = append(buf, graph.Edge{U: v, V: w})
				}
			}
		}
		return buf
	}
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }

func memExperiment(name string, g *graph.Graph, algo core.Algorithm, p, batch int) memRow {
	// Identical explicit δ for both paths: at the default δ ∈ O(|E_i|) the
	// aggregation buffers grow to ~δ words per destination in BOTH modes,
	// and their timing-dependent high-water (~100+ MB here) would drown the
	// driver-side difference this experiment isolates.
	cfg := core.Config{P: p, Threshold: 1 << 15}
	var oneShot *core.Result
	var err error
	oneShotStart := time.Now()
	oneShotPeak := peakHeap(func() { oneShot, err = core.Run(algo, g, cfg) })
	oneShotWall := time.Since(oneShotStart)
	fatalIf(err)

	var sres *core.StreamResult
	streamStart := time.Now()
	streamPeak := peakHeap(func() {
		sres, err = core.RunStream(algo, uint64(g.NumVertices()), graphBatches(g, batch), nil, cfg)
	})
	streamWall := time.Since(streamStart)
	fatalIf(err)
	if sres.Count != oneShot.Count {
		fatalIf(fmt.Errorf("%s: streamed %d != one-shot %d", name, sres.Count, oneShot.Count))
	}

	return memRow{
		Graph: name, Edges: g.NumEdges(), Algo: string(algo), P: p, Batch: batch,
		Triangles:     sres.Count,
		OneShotPeakMB: mb(oneShotPeak), StreamPeakMB: mb(streamPeak),
		PeakRatio:       float64(oneShotPeak) / float64(streamPeak),
		OneShotWallMs:   float64(oneShotWall.Microseconds()) / 1e3,
		StreamWallMs:    float64(streamWall.Microseconds()) / 1e3,
		EdgeListBoundMB: mb(uint64(g.NumEdges()) * 16),
	}
}

func deltaExperiment(name string, g *graph.Graph, algo core.Algorithm, p, batch int) deltaRow {
	cfg := core.Config{P: p}
	edges := g.Edges()
	split := len(edges) / 2
	sres, err := core.RunStream(algo, uint64(g.NumVertices()),
		core.SliceBatches(edges[:split], batch), core.SliceBatches(edges[split:], batch), cfg)
	fatalIf(err)

	recountStart := time.Now()
	full, err := core.Run(algo, g, cfg)
	fatalIf(err)
	recountWall := time.Since(recountStart)
	if sres.Count != full.Count {
		fatalIf(fmt.Errorf("%s/%s: streamed %d != one-shot %d", name, algo, sres.Count, full.Count))
	}

	nb := len(sres.Deltas)
	meanDelta := 0.0
	if nb > 0 {
		// PhaseStream folds the stage/delta/commit sub-phases, i.e. the full
		// per-batch insert cost without the initial build/count.
		meanDelta = float64(sres.Res.Phases[core.PhaseStream].Microseconds()) / 1e3 / float64(nb)
	}
	row := deltaRow{
		Graph: name, Algo: string(algo), P: p, Batch: batch, Batches: nb,
		Triangles: sres.Count, MeanDeltaMs: meanDelta,
		FullRecountMs: float64(recountWall.Microseconds()) / 1e3,
	}
	if meanDelta > 0 {
		row.RecountOverDelta = row.FullRecountMs / meanDelta
	}
	return row
}

// runQuick is the CI smoke: streamed count must equal the one-shot count
// on a small stand-in for both streaming-capable algorithm families.
func runQuick(p int) {
	g := benchutil.Standins()[0].Build()
	want, err := core.Run(core.AlgoCetric, g, core.Config{P: p})
	fatalIf(err)
	for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
		sres, err := core.RunStream(algo, uint64(g.NumVertices()), graphBatches(g, 1<<12), nil, core.Config{P: p})
		fatalIf(err)
		if sres.Count != want.Count {
			fatalIf(fmt.Errorf("quick: %s streamed %d, want %d", algo, sres.Count, want.Count))
		}
		edges := g.Edges()
		split := len(edges) / 2
		sres, err = core.RunStream(algo, uint64(g.NumVertices()),
			core.SliceBatches(edges[:split], 1<<12), core.SliceBatches(edges[split:], 1<<12), core.Config{P: p})
		fatalIf(err)
		if sres.Count != want.Count {
			fatalIf(fmt.Errorf("quick: %s insert-streamed %d, want %d", algo, sres.Count, want.Count))
		}
	}
	fmt.Println("streambench quick: ok")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "streambench: %v\n", err)
		os.Exit(1)
	}
}

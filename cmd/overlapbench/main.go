// Command overlapbench compares the barriered and overlapped execution
// pipelines (PR 5): for each benchmark stand-in it runs DITRIC and CETRIC
// at p PEs in both modes and records the wall, the per-phase breakdown, the
// worst PE's idle-wait time inside the termination detector (the
// straggler-skew signal, Metrics.IdleNs), the realized overlap — receive
// work done during emission rather than in the drain (Metrics.OverlapNs) —
// and the α+β overlapped-completion model
// (costmodel.BottleneckOverlapped with per-rank busy = wall − idle).
// Triangle counts must agree between the modes everywhere — the tool exits
// nonzero otherwise. BENCH_pr5.json in the repo root is a recorded run:
//
//	go run ./cmd/overlapbench > BENCH_pr5.json
//
// The acceptance signal is the idle column on the skewed instances
// (rmat/RHG): receive-side intersection work there is concentrated on the
// PEs owning hub neighborhoods, and the overlapped pipeline starts that
// work while the local phase still runs and steals it across the worker
// pool, so the max-PE idle time must drop against the barriered mode. On a
// 1-core CI host (GOMAXPROCS recorded in the report) wall-clock gains
// cannot show; idle time and the modeled overlapped completion are the
// cross-machine signals.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/graph"
)

type modeRow struct {
	Graph        string             `json:"graph"`
	Algo         string             `json:"algo"`
	Mode         string             `json:"mode"` // barriered | overlapped
	Threads      int                `json:"threads"`
	Triangles    uint64             `json:"triangles"`
	WallMs       float64            `json:"wall_ms"`
	MaxIdleMs    float64            `json:"max_idle_ms"`
	TotalIdleMs  float64            `json:"total_idle_ms"`
	OverlapCPUMs float64            `json:"overlap_cpu_ms"` // summed over workers; not a wall quantity
	PhasesMs     map[string]float64 `json:"phases_ms"`
	ModeledMs    map[string]float64 `json:"modeled_overlapped_ms"`
}

type comparison struct {
	Graph          string  `json:"graph"`
	Algo           string  `json:"algo"`
	Skewed         bool    `json:"skewed"` // power-law instance (the acceptance target)
	WallRatio      float64 `json:"wall_barriered_over_overlapped"`
	MaxIdleRatio   float64 `json:"max_idle_barriered_over_overlapped"`
	MaxIdleDeltaMs float64 `json:"max_idle_reduction_ms"`
}

type report struct {
	Note        string       `json:"note"`
	Go          string       `json:"go"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	PEs         int          `json:"pes"`
	Threads     int          `json:"threads"`
	Rows        []modeRow    `json:"rows"`
	Comparisons []comparison `json:"comparisons"`
}

func main() {
	var (
		p       = flag.Int("p", 8, "number of PEs")
		threads = flag.Int("threads", 4, "worker threads per PE")
		reps    = flag.Int("reps", 5, "repetitions per configuration (best wall wins)")
		quick   = flag.Bool("quick", false, "single repetition (CI smoke)")
	)
	flag.Parse()
	if *quick {
		*reps = 1
	}
	rep := report{
		Note: "Barriered vs overlapped pipeline at fixed p: wall and phase walls are ms, best " +
			"wall of reps; max_idle is the worst PE's termination-detector wait (Metrics.IdleNs), " +
			"overlap_cpu the receive work done during emission, before the final drain " +
			"(Metrics.OverlapNs: DITRIC overlaps its local phase, CETRIC its cut send sweep; " +
			"summed across each PE's workers, so it is CPU time, not wall). " +
			"modeled_overlapped_ms is costmodel.BottleneckOverlapped with " +
			"per-rank busy = wall - idle. Counts are verified identical between modes. The " +
			"acceptance signal is max_idle shrinking on the skewed (rmat/rhg) instances; on a " +
			"1-core host wall gains cannot show and are not claimed.",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PEs:        *p,
		Threads:    *threads,
	}
	for _, spec := range benchutil.Standins() {
		g := spec.Build()
		for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
			var rows [2]modeRow
			for i, overlap := range []bool{false, true} {
				rows[i] = measure(spec.Name, g, algo, *p, *threads, *reps, overlap)
			}
			if rows[0].Triangles != rows[1].Triangles {
				fmt.Fprintf(os.Stderr, "overlapbench: %s/%s: barriered counted %d, overlapped %d\n",
					spec.Name, algo, rows[0].Triangles, rows[1].Triangles)
				os.Exit(1)
			}
			rep.Rows = append(rep.Rows, rows[:]...)
			rep.Comparisons = append(rep.Comparisons, compare(spec, algo, rows[0], rows[1]))
		}
	}
	benchutil.WriteJSON("overlapbench", rep)
}

func measure(name string, g *graph.Graph, algo core.Algorithm, p, threads, reps int, overlap bool) modeRow {
	mode := "barriered"
	if overlap {
		mode = "overlapped"
	}
	var best *core.Result
	for i := 0; i < reps; i++ {
		res, err := core.Run(algo, g, core.Config{P: p, Threads: threads, Overlap: overlap})
		if err != nil {
			fmt.Fprintf(os.Stderr, "overlapbench: %s/%s %s: %v\n", name, algo, mode, err)
			os.Exit(1)
		}
		if best == nil || res.Wall < best.Wall {
			best = res
		}
	}
	phases := make(map[string]float64, len(best.Phases))
	for ph, d := range best.Phases {
		phases[ph] = ms(d)
	}
	// Per-rank busy estimate for the overlapped completion model: the run
	// wall minus the rank's measured idle wait.
	busy := make([]time.Duration, len(best.PerPE))
	for r, m := range best.PerPE {
		busy[r] = best.Wall - time.Duration(m.IdleNs)
	}
	modeled := make(map[string]float64, len(costmodel.Profiles()))
	for _, prof := range costmodel.Profiles() {
		modeled[prof.Name] = ms(costmodel.BottleneckOverlapped(best.PerPE, busy, prof))
	}
	return modeRow{
		Graph: name, Algo: string(algo), Mode: mode, Threads: threads,
		Triangles:    best.Count,
		WallMs:       ms(best.Wall),
		MaxIdleMs:    float64(best.Agg.MaxIdleNs) / 1e6,
		TotalIdleMs:  float64(best.Agg.TotalIdleNs) / 1e6,
		OverlapCPUMs: float64(best.Agg.TotalOverlapNs) / 1e6,
		PhasesMs:     phases,
		ModeledMs:    modeled,
	}
}

func compare(spec benchutil.Standin, algo core.Algorithm, barriered, overlapped modeRow) comparison {
	ratio := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	return comparison{
		Graph: spec.Name, Algo: string(algo),
		Skewed:         spec.Skewed,
		WallRatio:      ratio(barriered.WallMs, overlapped.WallMs),
		MaxIdleRatio:   ratio(barriered.MaxIdleMs, overlapped.MaxIdleMs),
		MaxIdleDeltaMs: barriered.MaxIdleMs - overlapped.MaxIdleMs,
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Command gengraph generates instances from the synthetic families or the
// real-world stand-in catalog and writes them to disk (text or binary edge
// lists), printing Table-I-style statistics. Saved instances can be fed back
// to `tricount -input`.
//
//	gengraph -gen rgg2d -n 65536 -o rgg.bin -format binary
//	gengraph -instance uk-2007-05 -scale -2 -o uk.txt
//	gengraph -instance orkut -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family     = flag.String("gen", "", "generator family: gnm|rmat|rgg2d|rhg")
		instance   = flag.String("instance", "", "stand-in instance name")
		n          = flag.Int("n", 1<<14, "vertices for -gen")
		edgeFactor = flag.Int("ef", 16, "edge factor for -gen")
		seed       = flag.Uint64("seed", 42, "generator seed")
		scale      = flag.Int("scale", 0, "instance size shift")
		out        = flag.String("o", "", "output file (omit to only print stats)")
		format     = flag.String("format", "text", "output format: text|binary")
		stats      = flag.Bool("stats", true, "print instance statistics")
		triangles  = flag.Bool("triangles", false, "also count triangles (can be slow)")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *instance != "":
		g, err = gen.ByInstance(*instance, *scale, *seed)
	case *family != "":
		g, err = gen.ByFamily(*family, *n, *edgeFactor, *seed)
	default:
		return fmt.Errorf("need -gen or -instance")
	}
	if err != nil {
		return err
	}

	if *stats {
		s := graph.ComputeStats(g)
		fmt.Printf("n=%d m=%d avgdeg=%.2f maxdeg=%d wedges=%d\n",
			s.N, s.M, s.AvgDegree, s.MaxDegree, s.Wedges)
		if *triangles {
			fmt.Printf("triangles=%d\n", core.SharedCount(g, core.SharedConfig{}).Count)
		}
	}

	if *out == "" {
		return nil
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "text":
		err = graph.WriteEdgeListText(f, g)
	case "binary":
		err = graph.WriteBinary(f, g)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s)\n", *out, *format)
	return nil
}

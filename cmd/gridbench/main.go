// Command gridbench compares the 2D grid-partitioned backend (TK2D) against
// the 1D counters (DITRIC/CETRIC) across a PE sweep — communication volume
// (PR 7) and, since the pipelined exchange (PR 10), receive-side comm-wait.
// For each benchmark stand-in and each swept p it runs TK2D twice — the
// blocking round schedule and the pipelined one (split-phase IBcast, one
// round ahead) — plus the 1D counters, records the measured bytes that
// crossed the wire (codec-encoded, total and worst-PE), the worst PE's
// receive-wait (max_idle_ms, comm.Metrics.IdleNs), and evaluates the α+β
// wire lenses on every built-in network profile:
// costmodel.BottleneckWire for the asynchronous 1D queue,
// costmodel.BottleneckWire2D for the blocking collective exchange, and
// costmodel.BottleneckOverlapped2D for the pipelined per-round
// max(comm, compute) schedule. The crossover table reports, per graph and
// profile, the smallest swept p at which the modeled 2D exchange beats the
// modeled 1D shipping.
//
// Acceptance gates (exit nonzero on violation):
//   - triangle counts agree across all algorithms and modes everywhere,
//     including the rectangular sweep p ∈ {2, 6, 8, 12} cross-checked
//     against DITRIC;
//   - TK2D's measured wire bytes undercut DITRIC's on the skewed (rmat/rhg)
//     stand-ins at p ≥ 16 (the PR-7 condition);
//   - the pipelined schedule's worst-PE receive-wait undercuts the blocking
//     schedule's by ≥ 1.3× on the gate stand-ins at p ≥ 9 (the PR-10
//     condition; under -quick it only warns — single-rep timing on a smoke
//     host is too noisy to gate on).
//
// Producing the checked-in report:
//
//	go run ./cmd/gridbench > BENCH_pr10.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

type row struct {
	Graph string `json:"graph"`
	Algo  string `json:"algo"`
	// Mode is "blocking" or "pipelined" for tk2d rows, empty for the 1D
	// counters (their overlap knob is a different mechanism, not swept here).
	Mode string `json:"mode,omitempty"`
	P    int    `json:"p"`
	// Grid names the r×c factorization and round count of tk2d rows.
	Grid         string             `json:"grid,omitempty"`
	Triangles    uint64             `json:"triangles"`
	WallMs       float64            `json:"wall_ms"`
	Frames       int64              `json:"frames"`
	WireBytes    int64              `json:"wire_bytes"`        // total encoded bytes sent, all PEs
	MaxWireBytes int64              `json:"max_wire_bytes_pe"` // worst PE's sent encoded bytes
	MaxIdleMs    float64            `json:"max_idle_ms"`       // worst PE's receive-wait (best over reps)
	ModeledMs    map[string]float64 `json:"modeled_wire_ms"`   // BottleneckWire (1D) / BottleneckWire2D (tk2d blocking) / BottleneckOverlapped2D (tk2d pipelined)
}

type crossover struct {
	Graph   string `json:"graph"`
	Profile string `json:"profile"`
	// CrossoverP is the smallest swept p where the modeled 2D exchange beats
	// the modeled 1D (DITRIC) shipping; 0 when no swept p crosses.
	CrossoverP int `json:"crossover_p"`
	// Ratio2Dover1D maps p to modeled tk2d / modeled ditric time (< 1 means
	// the 2D exchange wins at that p).
	Ratio2Dover1D map[string]float64 `json:"ratio_2d_over_1d"`
}

// idleGate is one blocking-vs-pipelined comparison on a gate instance.
type idleGate struct {
	Graph          string  `json:"graph"`
	P              int     `json:"p"`
	BlockingIdleMs float64 `json:"blocking_max_idle_ms"`
	PipelineIdleMs float64 `json:"pipelined_max_idle_ms"`
	// Ratio is blocking / pipelined worst-PE receive-wait; the full-run gate
	// requires ≥ 1.3 at p ≥ 9. 0 means the pipelined run measured no
	// receive-wait at all — every broadcast was fully hidden.
	Ratio float64 `json:"ratio"`
}

type report struct {
	Note       string      `json:"note"`
	Go         string      `json:"go"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	PEs        []int       `json:"pes"`
	RectPEs    []int       `json:"rect_pes"`
	Threads    int         `json:"threads"`
	Rows       []row       `json:"rows"`
	IdleGates  []idleGate  `json:"idle_gates"`
	Crossovers []crossover `json:"crossovers"`
}

// instance is one swept graph: the shared benchutil stand-ins (sparse
// controls) plus the dense/skewed operating points. Gate marks the instances
// whose TK2D-vs-DITRIC wire bytes at p ≥ 16 and blocking-vs-pipelined idle
// at p ≥ 9 are acceptance conditions.
type instance struct {
	benchutil.Standin
	Gate bool
}

func instances() []instance {
	var out []instance
	for _, s := range benchutil.Standins() {
		// rmat-2^13 is the catalog's dense/skewed case; the two 16-average-
		// degree geometric instances are sparse controls.
		out = append(out, instance{s, s.Name == "rmat-2^13"})
	}
	out = append(out, instance{benchutil.Standin{
		Name: "rhg-dense-2^12", Skewed: true,
		Build: func() *graph.Graph {
			return gen.RHG(gen.RHGConfig{N: 1 << 12, AvgDegree: 128, Gamma: 2.2, Seed: 42})
		},
	}, true})
	return out
}

// gridString names p's factorization, e.g. "3×4 (12 rounds)".
func gridString(n uint64, p int) string {
	g2, err := part.NewGrid2D(n, p)
	if err != nil {
		panic(err)
	}
	return fmt.Sprintf("%d×%d (%d rounds)", g2.R(), g2.C(), g2.Rounds())
}

func main() {
	var (
		threads = flag.Int("threads", 2, "worker threads per PE")
		reps    = flag.Int("reps", 3, "repetitions per configuration (best wall wins)")
		quick   = flag.Bool("quick", false, "single repetition, reduced sweeps, idle gate warns only (CI smoke)")
	)
	flag.Parse()
	ps := []int{4, 9, 16, 25}
	rectPs := []int{2, 6, 8, 12}
	if *quick {
		*reps = 1
		// Keep one point past each gate threshold in the smoke sweep, and
		// one rectangular grid in each fast-path class (1×2 row-fast,
		// 2×3 neither-fast).
		ps = []int{4, 16}
		rectPs = []int{2, 6}
	}
	rep := report{
		Note: "2D grid (tk2d, blocking vs pipelined exchange) vs 1D (ditric/cetric) across a PE sweep. " +
			"wire_bytes are measured codec-encoded bytes sent (total across PEs; max_wire_bytes_pe " +
			"the worst PE), frames the total sent frames, max_idle_ms the worst PE's receive-wait " +
			"(best over reps). modeled_wire_ms evaluates the wire-byte α+β lens per profile: " +
			"BottleneckWire for the asynchronous 1D queue, BottleneckWire2D for the blocking 2D " +
			"collective exchange, BottleneckOverlapped2D (per-round max(comm, compute)) for the " +
			"pipelined rows. rect_pes sweeps non-square PE counts through the rectangular r×c " +
			"factorization, counts cross-checked against ditric. idle_gates compares worst-PE " +
			"receive-wait blocking vs pipelined on the gate stand-ins; full runs require ratio " +
			">= 1.3 at p >= 9. Counts are verified identical across all algorithms and modes, and " +
			"tk2d's measured wire bytes must undercut ditric's on the skewed (rmat/rhg) stand-ins " +
			"at p >= 16.",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PEs:        ps,
		RectPEs:    rectPs,
		Threads:    *threads,
	}
	ok := true
	for _, spec := range instances() {
		g := spec.Build()
		n := uint64(g.NumVertices())
		// Square sweep: tk2d both modes + both 1D counters, crossover scan.
		type cell struct{ ditric, cetric, blocking, pipelined row }
		byP := make(map[int]cell)
		for _, p := range ps {
			c := cell{
				ditric:    measure(spec.Name, g, core.AlgoDiTric, p, *threads, *reps, false),
				cetric:    measure(spec.Name, g, core.AlgoCetric, p, *threads, *reps, false),
				blocking:  measure(spec.Name, g, core.AlgoTK2D, p, *threads, *reps, false),
				pipelined: measure(spec.Name, g, core.AlgoTK2D, p, *threads, *reps, true),
			}
			c.blocking.Grid, c.pipelined.Grid = gridString(n, p), gridString(n, p)
			byP[p] = c
			rep.Rows = append(rep.Rows, c.ditric, c.cetric, c.blocking, c.pipelined)
			if c.ditric.Triangles != c.blocking.Triangles ||
				c.cetric.Triangles != c.blocking.Triangles ||
				c.pipelined.Triangles != c.blocking.Triangles {
				fmt.Fprintf(os.Stderr,
					"gridbench: %s p=%d: counts disagree (tk2d=%d tk2d-pipelined=%d ditric=%d cetric=%d)\n",
					spec.Name, p, c.blocking.Triangles, c.pipelined.Triangles,
					c.ditric.Triangles, c.cetric.Triangles)
				os.Exit(1)
			}
			if spec.Gate && p >= 16 && c.blocking.WireBytes >= c.ditric.WireBytes {
				fmt.Fprintf(os.Stderr, "gridbench: %s p=%d: tk2d wire bytes %d not below ditric %d\n",
					spec.Name, p, c.blocking.WireBytes, c.ditric.WireBytes)
				ok = false
			}
			if spec.Gate && p >= 9 {
				gate := idleGate{
					Graph: spec.Name, P: p,
					BlockingIdleMs: c.blocking.MaxIdleMs,
					PipelineIdleMs: c.pipelined.MaxIdleMs,
				}
				if gate.PipelineIdleMs > 0 {
					gate.Ratio = gate.BlockingIdleMs / gate.PipelineIdleMs
				}
				rep.IdleGates = append(rep.IdleGates, gate)
				if gate.BlockingIdleMs < 1.3*gate.PipelineIdleMs {
					msg := fmt.Sprintf(
						"gridbench: %s p=%d: pipelined idle %.3fms not 1.3x below blocking %.3fms",
						spec.Name, p, gate.PipelineIdleMs, gate.BlockingIdleMs)
					if *quick {
						fmt.Fprintf(os.Stderr, "%s (warning: -quick)\n", msg)
					} else {
						fmt.Fprintln(os.Stderr, msg)
						ok = false
					}
				}
			}
		}
		for _, prof := range costmodel.Profiles() {
			c := crossover{Graph: spec.Name, Profile: prof.Name, Ratio2Dover1D: map[string]float64{}}
			for _, p := range ps {
				d := byP[p].ditric.ModeledMs[prof.Name]
				t := byP[p].blocking.ModeledMs[prof.Name]
				if d > 0 {
					c.Ratio2Dover1D[fmt.Sprintf("p=%d", p)] = t / d
				}
				if c.CrossoverP == 0 && d > 0 && t < d {
					c.CrossoverP = p
				}
			}
			rep.Crossovers = append(rep.Crossovers, c)
		}
		// Rectangular sweep: every non-square p factors; counts must match
		// the 1D oracle in both exchange modes.
		for _, p := range rectPs {
			oracle := measure(spec.Name, g, core.AlgoDiTric, p, *threads, 1, false)
			for _, overlap := range []bool{false, true} {
				r := measure(spec.Name, g, core.AlgoTK2D, p, *threads, *reps, overlap)
				r.Grid = gridString(n, p)
				rep.Rows = append(rep.Rows, r)
				if r.Triangles != oracle.Triangles {
					fmt.Fprintf(os.Stderr, "gridbench: %s p=%d (%s, %s): count %d, ditric %d\n",
						spec.Name, p, r.Grid, r.Mode, r.Triangles, oracle.Triangles)
					os.Exit(1)
				}
			}
		}
	}
	benchutil.WriteJSON("gridbench", rep)
	if !ok {
		os.Exit(1)
	}
}

func measure(name string, g *graph.Graph, algo core.Algorithm, p, threads, reps int, overlap bool) row {
	var best *core.Result
	minMaxIdle := int64(-1)
	for i := 0; i < reps; i++ {
		res, err := core.Run(algo, g, core.Config{P: p, Threads: threads, Overlap: overlap})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %s/%s p=%d: %v\n", name, algo, p, err)
			os.Exit(1)
		}
		if best == nil || res.Wall < best.Wall {
			best = res
		}
		// The idle gate compares the best (least noisy) rep per mode: a
		// single descheduled goroutine inflates one rep's waits by
		// milliseconds on a loaded host.
		if minMaxIdle < 0 || res.Agg.MaxIdleNs < minMaxIdle {
			minMaxIdle = res.Agg.MaxIdleNs
		}
	}
	var maxSent int64
	for _, m := range best.PerPE {
		maxSent = max(maxSent, m.EncodedBytes)
	}
	mode := ""
	var rounds int
	if algo == core.AlgoTK2D {
		if overlap {
			mode = "pipelined"
		} else {
			mode = "blocking"
		}
		g2, err := part.NewGrid2D(uint64(g.NumVertices()), p)
		if err != nil {
			panic(err)
		}
		rounds = g2.Rounds()
	}
	modeled := make(map[string]float64, len(costmodel.Profiles()))
	for _, prof := range costmodel.Profiles() {
		switch {
		case algo != core.AlgoTK2D:
			modeled[prof.Name] = ms(costmodel.BottleneckWire(best.PerPE, prof))
		case overlap:
			// Per-PE counting wall is not metered; the worst PE's local-phase
			// wall is the bottleneck-appropriate uniform compute proxy.
			compute := make([]time.Duration, len(best.PerPE))
			for i := range compute {
				compute[i] = best.Phases[core.PhaseLocal]
			}
			modeled[prof.Name] = ms(costmodel.BottleneckOverlapped2D(best.PerPE, compute, rounds, prof))
		default:
			modeled[prof.Name] = ms(costmodel.BottleneckWire2D(best.PerPE, prof))
		}
	}
	return row{
		Graph: name, Algo: string(algo), Mode: mode, P: p,
		Triangles:    best.Count,
		WallMs:       ms(best.Wall),
		Frames:       best.Agg.TotalFrames,
		WireBytes:    best.Agg.TotalEncodedBytes,
		MaxWireBytes: maxSent,
		MaxIdleMs:    float64(minMaxIdle) / 1e6,
		ModeledMs:    modeled,
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Command gridbench compares the communication volume of the 2D
// grid-partitioned backend (TK2D, PR 7) against the 1D counters
// (DITRIC/CETRIC) across a PE sweep: for each benchmark stand-in and each
// square p it runs all three algorithms, records the measured bytes that
// crossed the wire (codec-encoded, total and worst-PE), and evaluates the
// α+β wire lenses — costmodel.BottleneckWire for the asynchronous 1D queue
// and costmodel.BottleneckWire2D for the blocking 2D collective exchange —
// on every built-in network profile. The crossover table reports, per graph
// and profile, the smallest swept p at which the modeled 2D exchange beats
// the modeled 1D shipping. Triangle counts must agree across all three
// algorithms everywhere — the tool exits nonzero otherwise, and it also
// fails if TK2D's measured wire bytes do not undercut DITRIC's on the
// skewed (rmat/rhg) stand-ins at p ≥ 16, the acceptance condition behind
// BENCH_pr7.json:
//
//	go run ./cmd/gridbench > BENCH_pr7.json
//
// The volume logic: a TK2D PE ships its ~|E|/p-edge block 2(√p−1) times —
// O(|E|/√p) total per PE no matter how the graph is cut — while the 1D
// counters ship cut neighborhoods, whose volume tracks how many PEs each
// vertex's neighborhood spans and approaches O(|E|) per PE on dense or
// skewed graphs at large p. The sweep therefore runs the shared sparse
// stand-ins as controls (1D wins there: neighborhoods span few PEs, the
// broadcast factor has nothing to amortize against) alongside the
// dense/skewed operating points (rmat-2^13 and a dense heavy-tailed RHG)
// where cut shipping explodes and the block geometry pays off — only the
// latter carry the wire-byte acceptance gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchutil"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/graph"
)

type row struct {
	Graph        string             `json:"graph"`
	Algo         string             `json:"algo"`
	P            int                `json:"p"`
	Triangles    uint64             `json:"triangles"`
	WallMs       float64            `json:"wall_ms"`
	Frames       int64              `json:"frames"`
	WireBytes    int64              `json:"wire_bytes"`        // total encoded bytes sent, all PEs
	MaxWireBytes int64              `json:"max_wire_bytes_pe"` // worst PE's sent encoded bytes
	ModeledMs    map[string]float64 `json:"modeled_wire_ms"`   // BottleneckWire (1D) / BottleneckWire2D (tk2d)
}

type crossover struct {
	Graph   string `json:"graph"`
	Profile string `json:"profile"`
	// CrossoverP is the smallest swept p where the modeled 2D exchange beats
	// the modeled 1D (DITRIC) shipping; 0 when no swept p crosses.
	CrossoverP int `json:"crossover_p"`
	// Ratio2Dover1D maps p to modeled tk2d / modeled ditric time (< 1 means
	// the 2D exchange wins at that p).
	Ratio2Dover1D map[string]float64 `json:"ratio_2d_over_1d"`
}

type report struct {
	Note       string      `json:"note"`
	Go         string      `json:"go"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	PEs        []int       `json:"pes"`
	Threads    int         `json:"threads"`
	Rows       []row       `json:"rows"`
	Crossovers []crossover `json:"crossovers"`
}

var algos = []core.Algorithm{core.AlgoTK2D, core.AlgoDiTric, core.AlgoCetric}

// instance is one swept graph: the shared benchutil stand-ins (sparse
// controls) plus the dense/skewed operating points. Gate marks the instances
// whose TK2D-vs-DITRIC wire bytes at p ≥ 16 are an acceptance condition.
type instance struct {
	benchutil.Standin
	Gate bool
}

func instances() []instance {
	var out []instance
	for _, s := range benchutil.Standins() {
		// rmat-2^13 is the catalog's dense/skewed case; the two 16-average-
		// degree geometric instances are sparse controls.
		out = append(out, instance{s, s.Name == "rmat-2^13"})
	}
	out = append(out, instance{benchutil.Standin{
		Name: "rhg-dense-2^12", Skewed: true,
		Build: func() *graph.Graph {
			return gen.RHG(gen.RHGConfig{N: 1 << 12, AvgDegree: 128, Gamma: 2.2, Seed: 42})
		},
	}, true})
	return out
}

func main() {
	var (
		threads = flag.Int("threads", 2, "worker threads per PE")
		reps    = flag.Int("reps", 3, "repetitions per configuration (best wall wins)")
		quick   = flag.Bool("quick", false, "single repetition, reduced PE sweep (CI smoke)")
	)
	flag.Parse()
	ps := []int{4, 9, 16, 25}
	if *quick {
		*reps = 1
		// Keep the p≥16 acceptance point in the smoke sweep.
		ps = []int{4, 16}
	}
	rep := report{
		Note: "2D grid (tk2d) vs 1D (ditric/cetric) communication volume across a square-p sweep. " +
			"wire_bytes are measured codec-encoded bytes sent (total across PEs; max_wire_bytes_pe " +
			"the worst PE), frames the total sent frames. modeled_wire_ms evaluates the wire-byte " +
			"α+β lens per profile: BottleneckWire for the asynchronous 1D queue (send side on the " +
			"critical path), BottleneckWire2D for the blocking 2D collective exchange (both " +
			"directions). crossover_p is the smallest swept p where modeled tk2d beats modeled " +
			"ditric on that graph and profile; ratio_2d_over_1d < 1 means tk2d wins at that p. " +
			"Counts are verified identical across all three algorithms; the tool fails unless " +
			"tk2d's measured wire bytes undercut ditric's on the skewed (rmat/rhg) stand-ins at " +
			"p >= 16.",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PEs:        ps,
		Threads:    *threads,
	}
	ok := true
	for _, spec := range instances() {
		g := spec.Build()
		// rows[p][algo] for the crossover scan below.
		byP := make(map[int]map[core.Algorithm]row)
		for _, p := range ps {
			byP[p] = make(map[core.Algorithm]row)
			for _, algo := range algos {
				r := measure(spec.Name, g, algo, p, *threads, *reps)
				byP[p][algo] = r
				rep.Rows = append(rep.Rows, r)
			}
			if d, t := byP[p][core.AlgoDiTric], byP[p][core.AlgoTK2D]; d.Triangles != t.Triangles ||
				byP[p][core.AlgoCetric].Triangles != t.Triangles {
				fmt.Fprintf(os.Stderr, "gridbench: %s p=%d: counts disagree (tk2d=%d ditric=%d cetric=%d)\n",
					spec.Name, p, t.Triangles, d.Triangles, byP[p][core.AlgoCetric].Triangles)
				os.Exit(1)
			}
			if spec.Gate && p >= 16 {
				d, t := byP[p][core.AlgoDiTric], byP[p][core.AlgoTK2D]
				if t.WireBytes >= d.WireBytes {
					fmt.Fprintf(os.Stderr, "gridbench: %s p=%d: tk2d wire bytes %d not below ditric %d\n",
						spec.Name, p, t.WireBytes, d.WireBytes)
					ok = false
				}
			}
		}
		for _, prof := range costmodel.Profiles() {
			c := crossover{Graph: spec.Name, Profile: prof.Name, Ratio2Dover1D: map[string]float64{}}
			for _, p := range ps {
				d := byP[p][core.AlgoDiTric].ModeledMs[prof.Name]
				t := byP[p][core.AlgoTK2D].ModeledMs[prof.Name]
				if d > 0 {
					c.Ratio2Dover1D[fmt.Sprintf("p=%d", p)] = t / d
				}
				if c.CrossoverP == 0 && d > 0 && t < d {
					c.CrossoverP = p
				}
			}
			rep.Crossovers = append(rep.Crossovers, c)
		}
	}
	benchutil.WriteJSON("gridbench", rep)
	if !ok {
		os.Exit(1)
	}
}

func measure(name string, g *graph.Graph, algo core.Algorithm, p, threads, reps int) row {
	var best *core.Result
	for i := 0; i < reps; i++ {
		res, err := core.Run(algo, g, core.Config{P: p, Threads: threads})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridbench: %s/%s p=%d: %v\n", name, algo, p, err)
			os.Exit(1)
		}
		if best == nil || res.Wall < best.Wall {
			best = res
		}
	}
	var maxSent int64
	for _, m := range best.PerPE {
		maxSent = max(maxSent, m.EncodedBytes)
	}
	modeled := make(map[string]float64, len(costmodel.Profiles()))
	for _, prof := range costmodel.Profiles() {
		if algo == core.AlgoTK2D {
			modeled[prof.Name] = ms(costmodel.BottleneckWire2D(best.PerPE, prof))
		} else {
			modeled[prof.Name] = ms(costmodel.BottleneckWire(best.PerPE, prof))
		}
	}
	return row{
		Graph: name, Algo: string(algo), P: p,
		Triangles:    best.Count,
		WallMs:       ms(best.Wall),
		Frames:       best.Agg.TotalFrames,
		WireBytes:    best.Agg.TotalEncodedBytes,
		MaxWireBytes: maxSent,
		ModeledMs:    modeled,
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

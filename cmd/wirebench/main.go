// Command wirebench measures words-on-wire vs bytes-on-wire for DITRIC and
// CETRIC across codec policies on the RGG2D and RHG benchmark fixtures, and
// prints the result as JSON. BENCH_pr2.json in the repo root is a recorded
// run:
//
//	go run ./cmd/wirebench > BENCH_pr2.json
package main

import (
	"fmt"
	"os"
	"runtime"

	"repro/internal/benchutil"
	"repro/internal/comm"
	"repro/internal/core"
)

type row struct {
	Graph        string  `json:"graph"`
	Algo         string  `json:"algo"`
	Codec        string  `json:"codec"`
	Triangles    uint64  `json:"triangles"`
	SentFrames   int64   `json:"sent_frames"`
	WordsOnWire  int64   `json:"words_on_wire"`
	RawBytes     int64   `json:"raw_bytes"`
	BytesOnWire  int64   `json:"bytes_on_wire"`
	Compression  float64 `json:"compression"`
	PayloadWords int64   `json:"payload_words"`
}

type report struct {
	Note   string `json:"note"`
	Go     string `json:"go"`
	PEs    int    `json:"pes"`
	Runs   []row  `json:"runs"`
	Policy string `json:"default_policy"`
}

func main() {
	const p = 8
	// The wire benchmarks use the RGG2D and RHG stand-ins (by name, so
	// catalog reordering cannot silently change what BENCH_pr2.json
	// measures); RMAT's traffic is covered by kernbench end-to-end.
	graphs := []benchutil.Standin{benchutil.ByName("rgg2d-2^12"), benchutil.ByName("rhg-2^12")}
	rep := report{
		Note: "Wire traffic per codec policy: words are pre-encoding (the paper's volume, " +
			"codec-independent), bytes are what crossed the transport. Single deterministic " +
			"runs; traffic metrics are exact, not timings.",
		Go:     runtime.Version(),
		PEs:    p,
		Policy: core.CodecAuto,
	}
	for _, gspec := range graphs {
		g := gspec.Build()
		for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
			for _, policy := range []string{core.CodecRaw, core.CodecVarint, core.CodecDeltaVarint, core.CodecAuto} {
				res, err := core.Run(algo, g, core.Config{P: p, Codec: policy})
				if err != nil {
					fmt.Fprintf(os.Stderr, "wirebench: %s/%s/%s: %v\n", gspec.Name, algo, policy, err)
					os.Exit(1)
				}
				agg := comm.AggregateOf(res.PerPE)
				rep.Runs = append(rep.Runs, row{
					Graph:        gspec.Name,
					Algo:         string(algo),
					Codec:        policy,
					Triangles:    res.Count,
					SentFrames:   agg.TotalFrames,
					WordsOnWire:  agg.TotalWords,
					RawBytes:     agg.TotalRawBytes,
					BytesOnWire:  agg.TotalEncodedBytes,
					Compression:  agg.CompressionRatio(),
					PayloadWords: agg.TotalPayload,
				})
			}
		}
	}
	benchutil.WriteJSON("wirebench", rep)
}

// Command wirebench measures words-on-wire vs bytes-on-wire for DITRIC and
// CETRIC across codec policies on the RGG2D and RHG benchmark fixtures, and
// prints the result as JSON. BENCH_pr2.json in the repo root is a recorded
// run:
//
//	go run ./cmd/wirebench > BENCH_pr2.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

type row struct {
	Graph        string  `json:"graph"`
	Algo         string  `json:"algo"`
	Codec        string  `json:"codec"`
	Triangles    uint64  `json:"triangles"`
	SentFrames   int64   `json:"sent_frames"`
	WordsOnWire  int64   `json:"words_on_wire"`
	RawBytes     int64   `json:"raw_bytes"`
	BytesOnWire  int64   `json:"bytes_on_wire"`
	Compression  float64 `json:"compression"`
	PayloadWords int64   `json:"payload_words"`
}

type report struct {
	Note   string `json:"note"`
	Go     string `json:"go"`
	PEs    int    `json:"pes"`
	Runs   []row  `json:"runs"`
	Policy string `json:"default_policy"`
}

func main() {
	const p = 8
	graphs := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"rgg2d-2^12", func() *graph.Graph { return gen.RGG2D(1<<12, 16, 42) }},
		{"rhg-2^12", func() *graph.Graph {
			return gen.RHG(gen.RHGConfig{N: 1 << 12, AvgDegree: 16, Gamma: 2.8, Seed: 42})
		}},
	}
	rep := report{
		Note: "Wire traffic per codec policy: words are pre-encoding (the paper's volume, " +
			"codec-independent), bytes are what crossed the transport. Single deterministic " +
			"runs; traffic metrics are exact, not timings.",
		Go:     runtime.Version(),
		PEs:    p,
		Policy: core.CodecAuto,
	}
	for _, gspec := range graphs {
		g := gspec.build()
		for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
			for _, policy := range []string{core.CodecRaw, core.CodecVarint, core.CodecDeltaVarint, core.CodecAuto} {
				res, err := core.Run(algo, g, core.Config{P: p, Codec: policy})
				if err != nil {
					fmt.Fprintf(os.Stderr, "wirebench: %s/%s/%s: %v\n", gspec.name, algo, policy, err)
					os.Exit(1)
				}
				agg := comm.AggregateOf(res.PerPE)
				rep.Runs = append(rep.Runs, row{
					Graph:        gspec.name,
					Algo:         string(algo),
					Codec:        policy,
					Triangles:    res.Count,
					SentFrames:   agg.TotalFrames,
					WordsOnWire:  agg.TotalWords,
					RawBytes:     agg.TotalRawBytes,
					BytesOnWire:  agg.TotalEncodedBytes,
					Compression:  agg.CompressionRatio(),
					PayloadWords: agg.TotalPayload,
				})
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "wirebench:", err)
		os.Exit(1)
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation section on scaled-down stand-in inputs. Output is markdown
// tables on stdout; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	experiments [-maxp N] [-scale S] [-seed S] table1|fig2|fig5|fig6|fig7|fig8|ablate|all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	maxP := flag.Int("maxp", 32, "largest PE count in the sweeps")
	scale := flag.Int("scale", 0, "shift every instance size by 2^scale (negative = smaller)")
	seed := flag.Uint64("seed", 42, "base RNG seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] table1|fig2|fig5|fig6|fig7|fig8|ablate|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opt := exp.Options{ScaleShift: *scale, MaxP: *maxP, Seed: *seed}

	runners := map[string]func() error{
		"table1": func() error { return exp.Table1(os.Stdout, opt) },
		"fig2":   func() error { return exp.Fig2(os.Stdout, opt) },
		"fig5":   func() error { return exp.Fig5(os.Stdout, opt) },
		"fig6":   func() error { return exp.Fig6(os.Stdout, opt) },
		"fig7":   func() error { return exp.Fig7(os.Stdout, opt) },
		"fig8":   func() error { return exp.Fig8(os.Stdout, opt) },
		"ablate": func() error { return exp.Ablate(os.Stdout, opt) },
	}
	order := []string{"table1", "fig2", "fig5", "fig6", "fig7", "fig8", "ablate"}

	what := flag.Arg(0)
	start := time.Now()
	if what == "all" {
		for _, name := range order {
			fmt.Printf("# %s\n\n", name)
			if err := runners[name](); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	} else if run, ok := runners[what]; ok {
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	} else {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "experiments: %s done in %v\n", what, time.Since(start).Round(time.Millisecond))
}

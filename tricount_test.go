package tricount

import (
	"math"
	"testing"
)

// Facade tests: exercise the public API end to end the way a downstream user
// would.

func TestCountFacade(t *testing.T) {
	g := GenerateRMAT(10, 16, 42)
	want := CountSeq(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoDiTric2, AlgoCetric, AlgoCetric2, AlgoTriC, AlgoHavoq} {
		res, err := Count(g, algo, Options{PEs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("%s: %d, want %d", algo, res.Count, want)
		}
	}
}

func TestCountRejectsZeroPEs(t *testing.T) {
	g := GenerateGNM(100, 300, 1)
	if _, err := Count(g, AlgoCetric, Options{}); err == nil {
		t.Fatal("want error for zero PEs")
	}
}

func TestLCCFacade(t *testing.T) {
	g := GenerateRHG(1<<10, 16, 2.8, 7)
	want := LCCSeq(g)
	lcc, res, err := LCC(g, AlgoCetric2, Options{PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != CountSeq(g) {
		t.Fatal("count mismatch")
	}
	for v := range want {
		if lcc[v] != want[v] {
			t.Fatalf("LCC(%d) = %v, want %v", v, lcc[v], want[v])
		}
	}
}

func TestEnumerateFacade(t *testing.T) {
	g := GenerateGNM(60, 300, 5)
	count := uint64(0)
	Enumerate(g, func(a, b, c Vertex) {
		if !(a < b && b < c) {
			t.Fatalf("corners not ascending: %d %d %d", a, b, c)
		}
		if !g.HasEdge(a, b) || !g.HasEdge(b, c) || !g.HasEdge(a, c) {
			t.Fatal("non-triangle enumerated")
		}
		count++
	})
	if count != CountSeq(g) {
		t.Fatalf("enumerated %d, want %d", count, CountSeq(g))
	}
}

func TestApproxFacade(t *testing.T) {
	g := GenerateGNM(1<<10, 16<<10, 9)
	exact := CountSeq(g)
	res, err := CountApprox(g, Options{PEs: 4}, ApproxOptions{BitsPerKey: 16, Truthful: true})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(res.Estimate-float64(exact)) / float64(exact)
	if rel > 0.05 {
		t.Fatalf("estimate %f too far from %d (rel %f)", res.Estimate, exact, rel)
	}
}

func TestDoulionColorfulFacades(t *testing.T) {
	g := GenerateRMAT(9, 16, 3)
	exact := float64(CountSeq(g))
	est, err := CountDoulion(g, AlgoCetric, Options{PEs: 4}, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est != exact {
		t.Fatalf("doulion q=1: %f, want %f", est, exact)
	}
	est, err = CountColorful(g, AlgoCetric, Options{PEs: 4}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est != exact {
		t.Fatalf("colorful N=1: %f, want %f", est, exact)
	}
}

func TestInstanceFacade(t *testing.T) {
	g, err := Instance("orkut", -4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 256 {
		t.Fatalf("orkut at shift -4: n=%d, want 256", g.NumVertices())
	}
	if _, err := Instance("bogus", 0, 1); err == nil {
		t.Fatal("want error for unknown instance")
	}
}

func TestGeneratorFacades(t *testing.T) {
	if g := GenerateGNM(100, 400, 1); g.NumEdges() != 400 {
		t.Fatal("GNM size wrong")
	}
	if g := GenerateRMAT(8, 8, 1); g.NumVertices() != 256 {
		t.Fatal("RMAT size wrong")
	}
	if g := GenerateRGG2D(512, 8, 1); g.NumVertices() != 512 {
		t.Fatal("RGG size wrong")
	}
	if g := GenerateRHG(512, 16, 2.8, 1); g.NumVertices() != 512 {
		t.Fatal("RHG size wrong")
	}
}

func TestOptionsThreadsAndThreshold(t *testing.T) {
	g := GenerateRMAT(9, 16, 11)
	want := CountSeq(g)
	res, err := Count(g, AlgoCetric, Options{PEs: 3, Threads: 4, Threshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("hybrid with tiny threshold: %d, want %d", res.Count, want)
	}
	// Indirect option forces grid routing on the plain algorithm name.
	res2, err := Count(g, AlgoDiTric, Options{PEs: 9, Indirect: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != want {
		t.Fatal("indirect option broke counting")
	}
}

func TestPartitionByCost(t *testing.T) {
	g := GenerateRMAT(9, 16, 11)
	want := CountSeq(g)
	for _, cost := range []CostFunc{CostDegree, CostDegreeSq, CostWedges, CostUnit} {
		pt := PartitionByCost(g, 4, cost)
		if pt.P() != 4 || pt.N() != uint64(g.NumVertices()) {
			t.Fatalf("partition shape (p=%d, n=%d) wrong", pt.P(), pt.N())
		}
		res, err := Count(g, AlgoCetric, Options{PEs: 4, Partition: pt})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("cost partition changed the count: %d, want %d", res.Count, want)
		}
	}
	// CostUnit reduces to the uniform split.
	pt := PartitionByCost(g, 4, CostUnit)
	for i := 0; i < 4; i++ {
		if pt.Size(i) != g.NumVertices()/4 {
			t.Fatalf("unit cost should split uniformly, PE %d owns %d", i, pt.Size(i))
		}
	}
}

func TestStreamFacade(t *testing.T) {
	g := GenerateRMAT(9, 8, 3)
	want := CountSeq(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		sres, err := Stream(g, algo, Options{PEs: 4, BatchSize: 500})
		if err != nil {
			t.Fatal(err)
		}
		if sres.Count != want {
			t.Fatalf("%s: streamed %d, want %d", algo, sres.Count, want)
		}
		var sum uint64
		for _, d := range sres.Deltas {
			sum += d
		}
		if sres.Initial+sum != sres.Count {
			t.Fatalf("%s: Initial %d + deltas %d != Count %d", algo, sres.Initial, sum, sres.Count)
		}
	}
}

func TestStreamEdgesFacade(t *testing.T) {
	g := GenerateGNM(256, 2048, 9)
	edges := g.Edges()
	want := CountSeq(g)
	i := 0
	pull := func() []Edge { // hand-rolled pull source, 100 edges at a time
		if i >= len(edges) {
			return nil
		}
		j := min(i+100, len(edges))
		b := edges[i:j]
		i = j
		return b
	}
	sres, err := StreamEdges(g.NumVertices(), AlgoCetric, nil, pull, Options{PEs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Count != want || sres.Initial != 0 {
		t.Fatalf("streamed %d (initial %d), want %d (initial 0)", sres.Count, sres.Initial, want)
	}
	if rebuilt := FromEdges(g.NumVertices(), edges); CountSeq(rebuilt) != want {
		t.Fatalf("FromEdges round trip lost triangles")
	}
}

// Package graph provides undirected graphs in adjacency-array (CSR) form,
// the degree-based total order used by COMPACT-FORWARD style triangle
// counting, and the per-PE local graph view (locals, ghosts, interface
// vertices, cut edges) used by the distributed algorithms.
//
// Vertices are dense integers 0..n-1. Neighborhoods are stored sorted by
// vertex ID so that set intersections can use a merge, exactly as the paper
// assumes.
package graph

import (
	"fmt"
	"slices"
)

// Vertex is a global vertex identifier. It is an alias (not a defined type)
// so that neighborhood slices can be sent as message payloads of machine
// words without copying.
type Vertex = uint64

// Edge is an undirected edge. Canonical form has U < V.
type Edge struct {
	U, V Vertex
}

// Canon returns e with endpoints ordered so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Graph is an immutable undirected graph in compressed adjacency-array form.
// Every edge {u,v} appears in both Neighbors(u) and Neighbors(v), and each
// neighborhood is sorted ascending by vertex ID.
type Graph struct {
	off []int64
	adj []Vertex
}

// NumVertices returns n.
func (g *Graph) NumVertices() int { return len(g.off) - 1 }

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighborhood of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v Vertex) []Vertex { return g.adj[g.off[v]:g.off[v+1]] }

// HasEdge reports whether {u,v} is an edge, by binary search in the smaller
// neighborhood.
func (g *Graph) HasEdge(u, v Vertex) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	_, ok := slices.BinarySearch(g.Neighbors(u), v)
	return ok
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v Vertex)) {
	for u := Vertex(0); u < Vertex(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				fn(u, v)
			}
		}
	}
}

// Edges returns all undirected edges in canonical (u < v) order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.NumEdges())
	g.ForEachEdge(func(u, v Vertex) { es = append(es, Edge{u, v}) })
	return es
}

// FromEdges builds an undirected graph on n vertices from an edge list.
// Self-loops are dropped and duplicate edges are merged; the input slice is
// not modified. Edges referencing vertices >= n cause a panic, since that is
// always a programming error in this codebase.
func FromEdges(n int, edges []Edge) *Graph {
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if e.U >= Vertex(n) || e.V >= Vertex(n) {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", e.U, e.V, n))
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	off := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		off[i] = off[i-1] + deg[i]
	}
	adj := make([]Vertex, off[n])
	pos := make([]int64, n)
	copy(pos, off[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[pos[e.U]] = e.V
		pos[e.U]++
		adj[pos[e.V]] = e.U
		pos[e.V]++
	}
	// Sort each neighborhood and remove duplicate edges in place.
	w := int64(0)
	newOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		row := adj[off[v]:off[v+1]]
		slices.Sort(row)
		start := w
		var last Vertex
		first := true
		for _, x := range row {
			if first || x != last {
				adj[w] = x
				w++
				last, first = x, false
			}
		}
		newOff[v] = start
	}
	newOff[n] = w
	return &Graph{off: newOff, adj: adj[:w]}
}

// FromSortedAdjacency builds a graph directly from prebuilt CSR arrays.
// The caller guarantees rows are sorted, deduplicated, and symmetric.
func FromSortedAdjacency(off []int64, adj []Vertex) *Graph {
	return &Graph{off: off, adj: adj}
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(Vertex(v)); d > best {
			best = d
		}
	}
	return best
}

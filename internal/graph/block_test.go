package graph

import (
	"encoding/binary"
	"slices"
	"testing"

	"repro/internal/part"
)

func block2DEdges(t *testing.T, n uint64, seed uint64) []Edge {
	t.Helper()
	// Deterministic scramble: a mix of loops, duplicates, and both
	// orientations, covering every band pair for small n.
	var edges []Edge
	x := seed
	for i := 0; i < int(n)*8; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		u := (x >> 16) % n
		v := (x >> 40) % n
		edges = append(edges, Edge{U: u, V: v})
		if i%7 == 0 {
			edges = append(edges, Edge{U: v, V: u}) // duplicate, flipped
		}
		if i%11 == 0 {
			edges = append(edges, Edge{U: u, V: u}) // self-loop
		}
	}
	return edges
}

// TestScatterEdges2DPartition: every non-loop edge lands in exactly one
// slice — its owner's — canon-oriented; loops are dropped; the layout is
// byte-identical across thread counts.
func TestScatterEdges2DPartition(t *testing.T) {
	for _, p := range []int{9, 6} {
		g2, err := part.NewGrid2D(37, p)
		if err != nil {
			t.Fatal(err)
		}
		edges := block2DEdges(t, 37, 12345)
		ref := ScatterEdges2D(g2, edges, 1)
		nonLoops := 0
		for _, e := range edges {
			if e.U != e.V {
				nonLoops++
			}
		}
		placed := 0
		for rank, slice := range ref {
			for _, e := range slice {
				if e.U >= e.V {
					t.Fatalf("rank %d holds non-canon edge (%d,%d)", rank, e.U, e.V)
				}
				if got := g2.Owner(e.U, e.V); got != rank {
					t.Fatalf("edge (%d,%d) in slice %d, owner is %d", e.U, e.V, rank, got)
				}
			}
			placed += len(slice)
		}
		if placed != nonLoops {
			t.Fatalf("placed %d edges, want %d non-loops", placed, nonLoops)
		}
		for _, threads := range []int{2, 4, 7} {
			got := ScatterEdges2D(g2, edges, threads)
			for rank := range ref {
				if !slices.Equal(got[rank], ref[rank]) {
					t.Fatalf("threads=%d: slice %d differs from single-thread layout", threads, rank)
				}
			}
		}
		for rank := range ref {
			if got := ScatterEdges2DRank(g2, edges, rank, 3); !slices.Equal(got, ref[rank]) {
				t.Fatalf("ScatterEdges2DRank(%d) differs from ScatterEdges2D slice", rank)
			}
		}
	}
}

// blockOracle builds the expected per-row entry sets with a map.
func blockOracle(g2 *part.Grid2D, rank int, edges []Edge) map[int][]Vertex {
	a, c := g2.RowCol(rank)
	rows := make(map[int]map[Vertex]bool)
	for _, e := range edges {
		if g2.BandRow(e.U) != a || g2.BandCol(e.V) != c {
			continue
		}
		row := int(g2.RelRow(e.U))
		if rows[row] == nil {
			rows[row] = make(map[Vertex]bool)
		}
		rows[row][g2.RelCol(e.V)] = true
	}
	out := make(map[int][]Vertex, len(rows))
	for row, set := range rows {
		for v := range set {
			out[row] = append(out[row], v)
		}
		slices.Sort(out[row])
	}
	return out
}

func checkBlockAgainstOracle(t *testing.T, b *Block, oracle map[int][]Vertex, label string) {
	t.Helper()
	nnz := 0
	for row := 0; row < b.NRows(); row++ {
		want := oracle[row]
		if got := b.Row(row); !slices.Equal(got, want) {
			t.Fatalf("%s row %d: got %v, want %v", label, row, got, want)
		}
		nnz += len(want)
	}
	if b.NNZ() != nnz {
		t.Fatalf("%s: NNZ=%d, oracle %d", label, b.NNZ(), nnz)
	}
}

// TestBuildBlock2D pins the CSR against a map oracle, across thread counts,
// with duplicates in the input — on square and rectangular grids.
func TestBuildBlock2D(t *testing.T) {
	for _, p := range []int{4, 6, 8} {
		g2, err := part.NewGrid2D(29, p)
		if err != nil {
			t.Fatal(err)
		}
		per := ScatterEdges2D(g2, block2DEdges(t, 29, 777), 2)
		for rank := 0; rank < g2.P(); rank++ {
			// Inject duplicates: BuildBlock2D must merge them.
			in := append(slices.Clone(per[rank]), per[rank]...)
			oracle := blockOracle(g2, rank, in)
			for _, threads := range []int{1, 3} {
				b := BuildBlock2D(g2, rank, in, threads)
				a, c := g2.RowCol(rank)
				if b.BandRow() != a || b.BandCol() != c ||
					b.NRows() != g2.BandSizeRow(a) || b.Domain() != g2.BandSizeCol(c) {
					t.Fatalf("p=%d rank %d: block shape (%d,%d,%d,%d)", p, rank, b.BandRow(), b.BandCol(), b.NRows(), b.Domain())
				}
				checkBlockAgainstOracle(t, b, oracle, "block")
			}
		}
	}
}

// TestBlockTranspose: the transpose holds exactly the flipped entries, rows
// ascending, bands and dimensions swapped.
func TestBlockTranspose(t *testing.T) {
	for _, p := range []int{9, 6} {
		g2, err := part.NewGrid2D(23, p)
		if err != nil {
			t.Fatal(err)
		}
		per := ScatterEdges2D(g2, block2DEdges(t, 23, 999), 1)
		for rank := 0; rank < g2.P(); rank++ {
			b := BuildBlock2D(g2, rank, per[rank], 2)
			for _, threads := range []int{1, 4} {
				bt := b.Transpose(threads)
				if bt.BandRow() != b.BandCol() || bt.BandCol() != b.BandRow() ||
					bt.NRows() != b.Domain() || bt.Domain() != b.NRows() {
					t.Fatalf("p=%d rank %d: transpose shape (%d,%d,%d,%d)", p, rank, bt.BandRow(), bt.BandCol(), bt.NRows(), bt.Domain())
				}
				oracle := make(map[int][]Vertex)
				for row := 0; row < b.NRows(); row++ {
					for _, v := range b.Row(row) {
						oracle[int(v)] = append(oracle[int(v)], Vertex(row))
					}
				}
				checkBlockAgainstOracle(t, bt, oracle, "transpose")
			}
		}
	}
}

// TestBlockStripe: StripeInto selects exactly the entries in the round's
// residue class, order-preserved and translated to round space, and the
// stripes across all rounds tile the block.
func TestBlockStripe(t *testing.T) {
	g2, err := part.NewGrid2DRect(41, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	per := ScatterEdges2D(g2, block2DEdges(t, 41, 2024), 1)
	for rank := 0; rank < g2.P(); rank++ {
		b := BuildBlock2D(g2, rank, per[rank], 1)
		_, bc := g2.RowCol(rank)
		var stripe Block // reused across rounds: extraction must fully overwrite
		covered := 0
		for k := 0; k < g2.Rounds(); k++ {
			if g2.RootRow(k) != bc {
				continue // block (a, k mod c) is some other PE's this round
			}
			res, stride := g2.StripeRow(k)
			domain := g2.BandSizeRound(k)
			b.StripeInto(&stripe, k, res, stride, domain)
			if stripe.BandRow() != b.BandRow() || stripe.BandCol() != k ||
				stripe.NRows() != b.NRows() || stripe.Domain() != domain {
				t.Fatalf("rank %d round %d: stripe shape (%d,%d,%d,%d)", rank, k, stripe.BandRow(), stripe.BandCol(), stripe.NRows(), stripe.Domain())
			}
			for row := 0; row < b.NRows(); row++ {
				var want []Vertex
				for _, v := range b.Row(row) {
					if int(v)%stride == res {
						want = append(want, (v-Vertex(res))/Vertex(stride))
					}
				}
				if !slices.Equal(stripe.Row(row), want) {
					t.Fatalf("rank %d round %d row %d: stripe %v, want %v", rank, k, row, stripe.Row(row), want)
				}
				for _, tt := range stripe.Row(row) {
					// Translation is consistent: round + t reconstructs a vertex of
					// the block's entry band in residue class k mod L.
					v := g2.GIDRound(k, uint64(tt))
					if g2.BandCol(v) != bc {
						t.Fatalf("rank %d round %d: t=%d maps to %d outside column band %d", rank, k, tt, v, bc)
					}
				}
				covered += len(want)
			}
		}
		if covered != b.NNZ() {
			t.Fatalf("rank %d: stripes cover %d entries, block has %d", rank, covered, b.NNZ())
		}
	}
}

// TestBlockWireRoundTrip: AppendWire → DecodeBlockInto reproduces the block,
// including through reuse of a previously-populated scratch block.
func TestBlockWireRoundTrip(t *testing.T) {
	for _, p := range []int{9, 6} {
		g2, err := part.NewGrid2D(41, p)
		if err != nil {
			t.Fatal(err)
		}
		per := ScatterEdges2D(g2, block2DEdges(t, 41, 4242), 2)
		var scratch Block // reused across ranks: decode must fully overwrite
		for rank := 0; rank < g2.P(); rank++ {
			b := BuildBlock2D(g2, rank, per[rank], 1)
			wire := b.AppendWire(nil)
			if err := DecodeBlockInto(wire, b.BandRow(), b.BandCol(), b.NRows(), b.Domain(), &scratch); err != nil {
				t.Fatalf("rank %d: decode: %v", rank, err)
			}
			if scratch.BandRow() != b.BandRow() || scratch.BandCol() != b.BandCol() ||
				scratch.NRows() != b.NRows() || scratch.NNZ() != b.NNZ() || scratch.Domain() != b.Domain() {
				t.Fatalf("rank %d: decoded shape differs", rank)
			}
			for row := 0; row < b.NRows(); row++ {
				if !slices.Equal(scratch.Row(row), b.Row(row)) {
					t.Fatalf("rank %d row %d: decoded %v, want %v", rank, row, scratch.Row(row), b.Row(row))
				}
			}
		}
	}
}

// TestDecodeBlockIntoRejectsMalformed: truncation, band mismatches,
// descending rows, out-of-range and out-of-order entries, trailing garbage.
// Expected dims mirror block (0,1) of a 2×2 grid over n=20: 10 rows,
// domain 10.
func TestDecodeBlockIntoRejectsMalformed(t *testing.T) {
	for name, wire := range map[string][]uint64{
		"truncated header":                 {0, 1},
		"wrong row band":                   {5, 1, 0},
		"wrong col band":                   {0, 2, 0},
		"truncated record":                 {0, 1, 1, 0},
		"zero-length row":                  {0, 1, 1, 0, 0},
		"row out of range":                 {0, 1, 1, 99, 1, 0},
		"row gap zero (dup)":               {0, 1, 2, 3, 1, 0, 0, 1, 0},
		"row gap past range":               {0, 1, 2, 3, 1, 0, 96, 1, 0},
		"entry past domain":                {0, 1, 1, 0, 1, 99},
		"entries not ascending (zero gap)": {0, 1, 1, 0, 2, 3, 0},
		"trailing words":                   {0, 1, 1, 0, 1, 0, 7},
	} {
		var b Block
		if err := DecodeBlockInto(wire, 0, 1, 10, 10, &b); err == nil {
			t.Errorf("%s: decode accepted %v", name, wire)
		}
	}
}

// FuzzBlockMapping is the satellite fuzz target: for arbitrary edge streams
// and any r×c grid, every non-loop edge belongs to exactly one block, that
// block round-trips to the owning rank, and the built block survives a wire
// round trip bit-exactly.
func FuzzBlockMapping(f *testing.F) {
	f.Add([]byte{}, uint16(7), uint8(2), uint8(2))
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0}, uint16(9), uint8(3), uint8(3))
	f.Add([]byte{9, 0, 3, 0, 3, 0, 9, 0, 5, 0, 5, 0}, uint16(50), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint16, rRaw, cRaw uint8) {
		n := uint64(nRaw%300) + 1
		r := int(rRaw%5) + 1
		c := int(cRaw%5) + 1
		g2, err := part.NewGrid2DRect(n, r, c)
		if err != nil {
			t.Fatal(err)
		}
		var edges []Edge
		for i := 0; i+3 < len(data); i += 4 {
			u := uint64(binary.LittleEndian.Uint16(data[i:])) % n
			v := uint64(binary.LittleEndian.Uint16(data[i+2:])) % n
			edges = append(edges, Edge{U: u, V: v})
		}
		per := ScatterEdges2D(g2, edges, 2)
		seen := make(map[Edge]int)
		for rank, slice := range per {
			for _, e := range slice {
				if prev, dup := seen[e]; dup && prev != rank {
					t.Fatalf("edge (%d,%d) in blocks %d and %d", e.U, e.V, prev, rank)
				}
				seen[e] = rank
				if g2.Owner(e.U, e.V) != rank {
					t.Fatalf("edge (%d,%d) misrouted to %d", e.U, e.V, rank)
				}
				a, b := g2.RowCol(rank)
				if g2.BandRow(e.U) != a || g2.BandCol(e.V) != b {
					t.Fatalf("edge (%d,%d) bands disagree with block (%d,%d)", e.U, e.V, a, b)
				}
			}
		}
		for _, e := range edges {
			if e.U == e.V {
				continue
			}
			if _, ok := seen[e.Canon()]; !ok {
				t.Fatalf("edge (%d,%d) landed in no block", e.U, e.V)
			}
		}
		// Wire round trip of a populated block (pick the fullest).
		best := 0
		for rank := range per {
			if len(per[rank]) > len(per[best]) {
				best = rank
			}
		}
		b := BuildBlock2D(g2, best, per[best], 1)
		var rt Block
		if err := DecodeBlockInto(b.AppendWire(nil), b.BandRow(), b.BandCol(), b.NRows(), b.Domain(), &rt); err != nil {
			t.Fatalf("wire round trip: %v", err)
		}
		if rt.NNZ() != b.NNZ() || rt.NRows() != b.NRows() {
			t.Fatalf("wire round trip changed shape")
		}
		for row := 0; row < b.NRows(); row++ {
			if !slices.Equal(rt.Row(row), b.Row(row)) {
				t.Fatalf("wire round trip changed row %d", row)
			}
		}
	})
}

package graph

import (
	"slices"
	"testing"

	"repro/internal/part"
)

// buildScattered builds every PE's local view of g under a uniform
// partition.
func buildScattered(g *Graph, p int) (*part.Partition, []*LocalGraph) {
	pt := part.Uniform(uint64(g.NumVertices()), p)
	per := ScatterEdges(pt, g.Edges())
	locals := make([]*LocalGraph, p)
	for i := 0; i < p; i++ {
		locals[i] = BuildLocal(pt, i, per[i])
	}
	return pt, locals
}

func TestLocalGraphCoversAllEdges(t *testing.T) {
	g := randomGraph(5, 64, 400)
	for _, p := range []int{1, 2, 3, 5, 8} {
		_, locals := buildScattered(g, p)
		// Every local vertex must see its full neighborhood.
		for _, lg := range locals {
			for r := 0; r < lg.NLocal(); r++ {
				v := lg.GID(int32(r))
				if !slices.Equal(lg.RowNeighbors(int32(r)), g.Neighbors(v)) {
					t.Fatalf("p=%d: neighborhood of %d differs on PE %d", p, v, lg.Rank)
				}
			}
		}
	}
}

func TestLocalGraphGhosts(t *testing.T) {
	g := randomGraph(9, 60, 300)
	pt, locals := buildScattered(g, 4)
	for _, lg := range locals {
		// Ghosts are exactly the remote endpoints of cut edges.
		want := make(map[Vertex]bool)
		lo, hi := pt.Range(lg.Rank)
		for v := lo; v < hi; v++ {
			for _, u := range g.Neighbors(v) {
				if u < lo || u >= hi {
					want[u] = true
				}
			}
		}
		if len(want) != lg.NGhost() {
			t.Fatalf("PE %d: %d ghosts, want %d", lg.Rank, lg.NGhost(), len(want))
		}
		for _, gid := range lg.Ghosts() {
			if !want[gid] {
				t.Fatalf("PE %d: unexpected ghost %d", lg.Rank, gid)
			}
		}
		// Ghost rows hold exactly the local neighbors.
		for _, gid := range lg.Ghosts() {
			row, ok := lg.GhostRow(gid)
			if !ok {
				t.Fatal("ghost row lookup failed")
			}
			for _, u := range lg.RowNeighbors(row) {
				if !lg.IsLocal(u) {
					t.Fatalf("ghost row of %d contains non-local %d", gid, u)
				}
				if !g.HasEdge(gid, u) {
					t.Fatalf("ghost row of %d contains non-edge %d", gid, u)
				}
			}
		}
	}
}

func TestLocalGraphRowGIDRoundTrip(t *testing.T) {
	g := randomGraph(13, 48, 200)
	_, locals := buildScattered(g, 3)
	for _, lg := range locals {
		for r := 0; r < lg.Rows(); r++ {
			if lg.Row(lg.GID(int32(r))) != int32(r) {
				t.Fatalf("row/GID round trip failed at row %d", r)
			}
		}
	}
}

func TestCutEdgesSymmetric(t *testing.T) {
	g := randomGraph(21, 80, 500)
	pt, locals := buildScattered(g, 5)
	total := 0
	for _, lg := range locals {
		total += lg.CutEdges()
	}
	// Each cut edge is counted once per side.
	want := 0
	for _, e := range g.Edges() {
		if pt.Rank(e.U) != pt.Rank(e.V) {
			want += 2
		}
	}
	if total != want {
		t.Fatalf("cut edges = %d, want %d", total, want)
	}
}

func TestInterfaceVerticesBound(t *testing.T) {
	g := randomGraph(31, 50, 250)
	_, locals := buildScattered(g, 4)
	for _, lg := range locals {
		iv := lg.InterfaceVertices()
		if iv > lg.NLocal() {
			t.Fatalf("interface %d > locals %d", iv, lg.NLocal())
		}
		if lg.NGhost() > 0 && iv == 0 {
			t.Fatal("ghosts exist but no interface vertices")
		}
	}
}

func TestGhostDegreesAndOrientation(t *testing.T) {
	g := randomGraph(17, 64, 320)
	_, locals := buildScattered(g, 4)
	// Fill ghost degrees from the global graph (tests the structural code
	// without the exchange).
	for _, lg := range locals {
		for _, gid := range lg.Ghosts() {
			row, _ := lg.GhostRow(gid)
			lg.SetGhostDegree(row, g.Degree(gid))
		}
	}
	globalOri := Orient(g)
	for _, lg := range locals {
		ori := OrientLocal(lg)
		// Local rows must match the global orientation exactly.
		for r := 0; r < lg.NLocal(); r++ {
			v := lg.GID(int32(r))
			if !slices.Equal(ori.Out(int32(r)), globalOri.Out(v)) {
				t.Fatalf("PE %d: A(%d) = %v, want %v", lg.Rank, v, ori.Out(int32(r)), globalOri.Out(v))
			}
		}
		// Ghost rows must be the local restriction of the global A-list.
		for _, gid := range lg.Ghosts() {
			row, _ := lg.GhostRow(gid)
			var want []Vertex
			for _, x := range globalOri.Out(gid) {
				if lg.IsLocal(x) {
					want = append(want, x)
				}
			}
			got := ori.Out(row)
			if len(got) != len(want) || (len(want) > 0 && !slices.Equal(got, want)) {
				t.Fatalf("PE %d: ghost A(%d) = %v, want %v", lg.Rank, gid, got, want)
			}
		}
		// Contraction keeps exactly the ghost out-neighbors of local rows.
		cut := ori.Contract()
		for r := 0; r < lg.NLocal(); r++ {
			for _, x := range cut.Out(int32(r)) {
				if lg.IsLocal(x) {
					t.Fatal("contracted list contains a local vertex")
				}
			}
			var want int
			for _, x := range ori.Out(int32(r)) {
				if !lg.IsLocal(x) {
					want++
				}
			}
			if cut.OutDegree(int32(r)) != want {
				t.Fatalf("contracted degree %d, want %d", cut.OutDegree(int32(r)), want)
			}
		}
		for r := lg.NLocal(); r < lg.Rows(); r++ {
			if cut.OutDegree(int32(r)) != 0 {
				t.Fatal("ghost row survived contraction")
			}
		}
	}
}

func TestOrientLocalPanicsWithoutGhostDegrees(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 3}})
	pt := part.Uniform(4, 2)
	per := ScatterEdges(pt, g.Edges())
	lg := BuildLocal(pt, 0, per[0])
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: ghost degrees unknown")
		}
	}()
	OrientLocal(lg)
}

func TestScatterEdgesGivesEdgeToBothOwners(t *testing.T) {
	g := randomGraph(41, 30, 90)
	pt := part.Uniform(uint64(g.NumVertices()), 3)
	per := ScatterEdges(pt, g.Edges())
	for _, e := range g.Edges() {
		ru, rv := pt.Rank(e.U), pt.Rank(e.V)
		if !slices.Contains(per[ru], e) {
			t.Fatalf("edge %v missing on owner of U", e)
		}
		if !slices.Contains(per[rv], e) {
			t.Fatalf("edge %v missing on owner of V", e)
		}
	}
}

func TestBuildLocalRejectsForeignEdge(t *testing.T) {
	pt := part.Uniform(10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign edge")
		}
	}()
	BuildLocal(pt, 0, []Edge{{7, 8}}) // both endpoints on PE 1
}

package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz targets for the parsing paths. Under plain `go test` they run
// their seed corpus; `go test -fuzz=FuzzX` explores further.

func FuzzReadEdgeListText(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% comment\n3 4 extra\n")
	f.Add("")
	f.Add("999999999999 1\n")
	f.Add("a b\n")
	f.Add("5\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Cap vertex IDs so malicious inputs cannot allocate unboundedly.
		for _, line := range strings.Split(input, "\n") {
			fields := strings.Fields(line)
			if len(fields) >= 1 && len(fields[0]) > 6 {
				t.Skip("IDs too large for the fuzz harness")
			}
			if len(fields) >= 2 && len(fields[1]) > 6 {
				t.Skip("IDs too large for the fuzz harness")
			}
		}
		g, err := ReadEdgeListText(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; crashing is not
		}
		// Whatever parsed must round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteEdgeListText(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeListText(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed m: %d vs %d", g2.NumEdges(), g.NumEdges())
		}
	})
}

func FuzzBinaryGraphFormat(f *testing.F) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Reject absurd headers cheaply to keep the harness fast.
		if len(data) > 1<<16 {
			t.Skip()
		}
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.NumVertices() > 1<<20 {
			t.Skip() // header said huge n; FromEdges already validated edges
		}
		// A successfully parsed graph must be internally consistent.
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(Vertex(v)) {
				if int(u) >= g.NumVertices() {
					t.Fatalf("neighbor %d out of range", u)
				}
			}
		}
	})
}

func FuzzVarint(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(127))
	f.Add(uint64(128))
	f.Add(uint64(1) << 63)
	f.Fuzz(func(t *testing.T, x uint64) {
		buf := appendUvarint(nil, x)
		nc := neighborCursor{buf: buf}
		got, ok := nc.next()
		if !ok || got != x {
			t.Fatalf("varint round trip: %d -> %d (%v)", x, got, ok)
		}
		if _, ok := nc.next(); ok {
			t.Fatal("cursor should be exhausted")
		}
	})
}

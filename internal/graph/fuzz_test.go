package graph

import (
	"bytes"
	"encoding/binary"
	"slices"
	"strings"
	"testing"
)

// Native fuzz targets for the parsing paths. Under plain `go test` they run
// their seed corpus; `go test -fuzz=FuzzX` explores further.

func FuzzReadEdgeListText(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% comment\n3 4 extra\n")
	f.Add("")
	f.Add("999999999999 1\n")
	f.Add("a b\n")
	f.Add("5\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Cap vertex IDs so malicious inputs cannot allocate unboundedly.
		for _, line := range strings.Split(input, "\n") {
			fields := strings.Fields(line)
			if len(fields) >= 1 && len(fields[0]) > 6 {
				t.Skip("IDs too large for the fuzz harness")
			}
			if len(fields) >= 2 && len(fields[1]) > 6 {
				t.Skip("IDs too large for the fuzz harness")
			}
		}
		g, err := ReadEdgeListText(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; crashing is not
		}
		// Whatever parsed must round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteEdgeListText(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeListText(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed m: %d vs %d", g2.NumEdges(), g.NumEdges())
		}
	})
}

func FuzzBinaryGraphFormat(f *testing.F) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Reject absurd headers cheaply to keep the harness fast.
		if len(data) > 1<<16 {
			t.Skip()
		}
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.NumVertices() > 1<<20 {
			t.Skip() // header said huge n; FromEdges already validated edges
		}
		// A successfully parsed graph must be internally consistent.
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(Vertex(v)) {
				if int(u) >= g.NumVertices() {
					t.Fatalf("neighbor %d out of range", u)
				}
			}
		}
	})
}

// FuzzIntersectKernels feeds arbitrary byte strings, turned into sorted
// deduplicated vertex slices, through every intersection kernel; all must
// agree with the CountMerge oracle, in both argument orders.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{255, 0, 255}, []byte{1})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 9}, []byte{7})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := sortedFromBytes(rawA)
		b := sortedFromBytes(rawB)
		want := CountMerge(a, b)
		if got := CountMergeBranchless(a, b); got != want {
			t.Fatalf("branchless = %d, merge = %d (a=%v b=%v)", got, want, a, b)
		}
		if got := CountGallop(a, b); got != want {
			t.Fatalf("gallop = %d, merge = %d (a=%v b=%v)", got, want, a, b)
		}
		if got := CountIntersect(a, b); got != want {
			t.Fatalf("adaptive = %d, merge = %d (a=%v b=%v)", got, want, a, b)
		}
		if got := CountIntersect(b, a); got != want {
			t.Fatalf("adaptive reversed = %d, merge = %d (a=%v b=%v)", got, want, a, b)
		}
		var each uint64
		ForEachCommon(a, b, func(Vertex) { each++ })
		if each != want {
			t.Fatalf("ForEachCommon = %d, merge = %d", each, want)
		}
		// Bitmap kernel: index b, probe with a (domain = max value + 1).
		var domain Vertex = 1
		for _, x := range b {
			if x >= domain {
				domain = x + 1
			}
		}
		for _, x := range a {
			if x >= domain {
				domain = x + 1
			}
		}
		bs := NewBitset(int(domain))
		bs.SetList(b)
		if got := bs.CountList(a); got != want {
			t.Fatalf("bitmap = %d, merge = %d (a=%v b=%v)", got, want, a, b)
		}
		var bits uint64
		bs.ForEachCommonList(a, func(Vertex) { bits++ })
		if bits != want {
			t.Fatalf("bitmap ForEach = %d, merge = %d", bits, want)
		}
		// Bitset ∩ Bitset via AND + popcount.
		ba := NewBitset(int(domain))
		ba.SetList(a)
		if got := ba.CountAnd(bs); got != want {
			t.Fatalf("bitmap AND = %d, merge = %d (a=%v b=%v)", got, want, a, b)
		}
		var and uint64
		ba.ForEachAnd(bs, func(Vertex) { and++ })
		if and != want {
			t.Fatalf("bitmap ForEachAnd = %d, merge = %d", and, want)
		}
	})
}

// sortedFromBytes maps fuzz bytes to a strictly ascending vertex slice
// (cumulative gaps, so adjacent duplicates become distinct values).
func sortedFromBytes(raw []byte) []Vertex {
	out := make([]Vertex, 0, len(raw))
	cur := Vertex(0)
	for _, b := range raw {
		cur += Vertex(b) + 1
		out = append(out, cur-1)
	}
	return out
}

func FuzzVarint(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(127))
	f.Add(uint64(128))
	f.Add(uint64(1) << 63)
	f.Fuzz(func(t *testing.T, x uint64) {
		buf := appendUvarint(nil, x)
		nc := neighborCursor{buf: buf}
		got, ok := nc.next()
		if !ok || got != x {
			t.Fatalf("varint round trip: %d -> %d (%v)", x, got, ok)
		}
		if _, ok := nc.next(); ok {
			t.Fatal("cursor should be exhausted")
		}
	})
}

// FuzzGhostDiscovery drives the sort-based ghost discovery (chunked
// collect, per-chunk sort + dedup, k-way merge) against a map-based oracle
// over arbitrary edge streams, at one and several workers. Edge endpoints
// are decoded from the fuzz payload as 16-bit pairs and edges with no
// endpoint in the local range are skipped (those panic by contract, which
// FuzzGhostDiscovery is not probing).
func FuzzGhostDiscovery(f *testing.F) {
	f.Add([]byte{}, uint16(8))
	f.Add([]byte{0, 0, 1, 0, 1, 0, 2, 0, 7, 0, 9, 0}, uint16(10))
	f.Add([]byte{3, 0, 3, 0, 5, 0, 200, 0, 5, 0, 201, 0}, uint16(16))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint16) {
		n := uint64(nRaw%253) + 3
		first, last := uint64(0), n/2+1 // PE 0 of a 2-ish split
		var edges []Edge
		for i := 0; i+3 < len(data); i += 4 {
			u := uint64(binary.LittleEndian.Uint16(data[i:])) % n
			v := uint64(binary.LittleEndian.Uint16(data[i+2:])) % n
			uLoc := u >= first && u < last
			vLoc := v >= first && v < last
			if !uLoc && !vLoc {
				continue
			}
			edges = append(edges, Edge{U: u, V: v})
		}
		oracle := make(map[Vertex]bool)
		for _, e := range edges {
			if e.U == e.V {
				continue
			}
			if e.U >= last {
				oracle[e.U] = true
			}
			if e.V >= last {
				oracle[e.V] = true
			}
		}
		want := make([]Vertex, 0, len(oracle))
		for g := range oracle {
			want = append(want, g)
		}
		slices.Sort(want)
		for _, threads := range []int{1, 3} {
			got := discoverGhosts(first, last, 0, edges, threads)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !slices.Equal(got, want) {
				t.Fatalf("threads=%d: ghosts %v, oracle %v", threads, got, want)
			}
		}
	})
}

package graph_test

import (
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/testgraph"
)

// Equivalence property tests pinning the parallel preprocessing builders
// against the sequential seed semantics, across every shared fixture and
// Threads ∈ {1, 2, 3, 8}. The oracles are deliberately implementation-free:
// the append-based scatter and the map-based ghost discovery replicate the
// seed algorithms, and local neighborhoods are checked against the global
// graph itself. Run under -race (CI does), these also exercise the
// chunk-stealing workers for data races.

var equivThreads = []int{1, 2, 3, 8}

// scatterOracle is the seed ScatterEdges: append with two rank searches.
func scatterOracle(pt *part.Partition, edges []graph.Edge) [][]graph.Edge {
	out := make([][]graph.Edge, pt.P())
	for _, e := range edges {
		ru, rv := pt.Rank(e.U), pt.Rank(e.V)
		out[ru] = append(out[ru], e)
		if rv != ru {
			out[rv] = append(out[rv], e)
		}
	}
	return out
}

// ghostOracle is the seed map-based ghost discovery.
func ghostOracle(pt *part.Partition, rank int, edges []graph.Edge) []graph.Vertex {
	lo, hi := pt.Range(rank)
	seen := make(map[graph.Vertex]bool)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if e.U < lo || e.U >= hi {
			seen[e.U] = true
		}
		if e.V < lo || e.V >= hi {
			seen[e.V] = true
		}
	}
	out := make([]graph.Vertex, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	slices.Sort(out)
	return out
}

func setGhostDegrees(lg *graph.LocalGraph, g *graph.Graph) {
	for i, gid := range lg.Ghosts() {
		lg.SetGhostDegree(int32(lg.NLocal()+i), g.Degree(gid))
	}
}

func equalLocal(t *testing.T, want, got *graph.LocalGraph) {
	t.Helper()
	if want.NLocal() != got.NLocal() || want.NGhost() != got.NGhost() {
		t.Fatalf("shape mismatch: locals %d/%d ghosts %d/%d",
			want.NLocal(), got.NLocal(), want.NGhost(), got.NGhost())
	}
	if !slices.Equal(want.Ghosts(), got.Ghosts()) {
		t.Fatalf("ghost IDs differ")
	}
	for r := 0; r < want.Rows(); r++ {
		if !slices.Equal(want.RowNeighbors(int32(r)), got.RowNeighbors(int32(r))) {
			t.Fatalf("row %d adjacency differs", r)
		}
		if !slices.Equal(want.RowNeighborRows(int32(r)), got.RowNeighborRows(int32(r))) {
			t.Fatalf("row %d row-translated adjacency differs", r)
		}
		if want.Degree(int32(r)) != got.Degree(int32(r)) {
			t.Fatalf("row %d degree differs: %d vs %d", r, want.Degree(int32(r)), got.Degree(int32(r)))
		}
	}
}

func equalOriented(t *testing.T, name string, want, got *graph.LocalOriented) {
	t.Helper()
	for r := 0; r < want.L.Rows(); r++ {
		if !slices.Equal(want.Out(int32(r)), got.Out(int32(r))) {
			t.Fatalf("%s: row %d A-list differs", name, r)
		}
		if !slices.Equal(want.OutRows(int32(r)), got.OutRows(int32(r))) {
			t.Fatalf("%s: row %d row-space A-list differs", name, r)
		}
	}
}

func TestParallelPreprocessEquivalence(t *testing.T) {
	for _, fix := range testgraph.All {
		t.Run(fix.Name, func(t *testing.T) {
			g := fix.Build()
			edges := g.Edges()
			for _, p := range []int{1, 4} {
				pt := part.Uniform(uint64(g.NumVertices()), p)
				want := scatterOracle(pt, edges)
				for _, th := range equivThreads {
					got := graph.ScatterEdgesPar(pt, edges, th)
					if len(got) != len(want) {
						t.Fatalf("p=%d threads=%d: scatter length %d, want %d", p, th, len(got), len(want))
					}
					for pe := range want {
						if !slices.Equal(got[pe], want[pe]) {
							t.Fatalf("p=%d threads=%d: scatter differs on PE %d", p, th, pe)
						}
					}
				}
				for rank := 0; rank < p; rank++ {
					base := graph.BuildLocal(pt, rank, want[rank])
					if !slices.Equal(base.Ghosts(), ghostOracle(pt, rank, want[rank])) {
						t.Fatalf("p=%d rank=%d: sort-based ghost discovery differs from map oracle", p, rank)
					}
					// Ground truth: local rows see their full neighborhoods.
					for r := 0; r < base.NLocal(); r++ {
						if !slices.Equal(base.RowNeighbors(int32(r)), g.Neighbors(base.GID(int32(r)))) {
							t.Fatalf("p=%d rank=%d row %d: neighborhood differs from global graph", p, rank, r)
						}
					}
					setGhostDegrees(base, g)
					baseOri := graph.OrientLocal(base)
					baseOnly := graph.OrientLocalOnly(base)
					baseID := graph.OrientLocalByID(base)
					baseCut := baseOri.Contract()
					baseOri.BuildHubs(1) // force bitmaps everywhere they fit
					for _, th := range equivThreads[1:] {
						lg := graph.BuildLocalPar(pt, rank, want[rank], th)
						setGhostDegrees(lg, g) // base already has its ghost degrees
						equalLocal(t, base, lg)
						ori := graph.OrientLocalPar(lg, th)
						equalOriented(t, "orient", baseOri, ori)
						equalOriented(t, "orient-local-only", baseOnly, graph.OrientLocalOnlyPar(lg, th))
						equalOriented(t, "orient-by-id", baseID, graph.OrientLocalByIDPar(lg, th))
						cut := ori.ContractPar(th)
						equalOriented(t, "contract", baseCut, cut)
						ori.BuildHubsPar(1, th)
						if ori.NumHubs() != baseOri.NumHubs() {
							t.Fatalf("threads=%d: hub count %d, want %d", th, ori.NumHubs(), baseOri.NumHubs())
						}
						for r := 0; r < lg.Rows(); r++ {
							if !slices.Equal(baseOri.HubBitset(int32(r)), ori.HubBitset(int32(r))) {
								t.Fatalf("threads=%d: hub bitmap of row %d differs", th, r)
							}
						}
					}
				}
			}
		})
	}
}

// TestBuildLocalParForeignEdgePanics pins the panic contract on the
// parallel path: a worker detecting an edge with no local endpoint must
// re-raise on the caller, not crash the process.
func TestBuildLocalParForeignEdgePanics(t *testing.T) {
	pt := part.Uniform(16, 2)
	edges := make([]graph.Edge, 2048)
	for i := range edges {
		edges[i] = graph.Edge{U: uint64(i % 8), V: uint64((i + 1) % 8)}
	}
	edges[1500] = graph.Edge{U: 9, V: 10} // both endpoints on PE 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign edge")
		}
	}()
	graph.BuildLocalPar(pt, 0, edges, 4)
}

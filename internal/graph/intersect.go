package graph

import "math/bits"

// Set intersection of sorted vertex slices — the inner loop of every EDGE
// ITERATOR variant. Four kernels are provided, plus an adaptive dispatcher:
//
//   - CountMerge: the textbook two-pointer merge (branchy; fast when the
//     comparison outcome is predictable, i.e. very clustered inputs).
//   - CountMergeBranchless: the same merge with conditional-move advances
//     instead of branches, so random interleavings pay no mispredictions.
//   - CountGallop: exponential + binary search of each element of the
//     smaller slice in the larger one — wins on skewed operand sizes.
//   - Bitset.CountList / Bitset.CountAnd: the packed hub-bitmap kernel —
//     membership tests (or word-AND + popcount) against a precomputed
//     bitset; see the hub index in oriented.go / order.go.
//
// CountIntersect dispatches per pair between the branchless merge and
// galloping; the bitmap kernel needs a build-time index and is dispatched by
// the hub-aware methods of LocalOriented and OutGraph.

// gallopRatio is the size skew |b|/|a| beyond which galloping beats merging:
// merge is O(|a|+|b|), galloping O(|a|·log|b|).
const gallopRatio = 32

// CountIntersect returns |a ∩ b| for ascending-sorted slices, dispatching
// between the merge and the galloping kernel by operand skew.
//
// The balanced case uses the branchy merge, not the branchless one: the
// branchless loop trades branch mispredictions for a serial
// load→compare→setcc→add dependency chain, and on current x86 speculative
// execution of the predictable-enough branchy loop is ~2–3x faster even on
// random interleavings (see BenchmarkIntersect). The branchless kernel stays
// available for targets where the trade goes the other way.
func CountIntersect(a, b []Vertex) uint64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a)*gallopRatio < len(b) || len(b)*gallopRatio < len(a) {
		return CountGallop(a, b)
	}
	return CountMerge(a, b)
}

// ForEachCommon calls fn for every element of a ∩ b, in ascending order.
func ForEachCommon(a, b []Vertex, fn func(Vertex)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x < y {
			i++
		} else if y < x {
			j++
		} else {
			fn(x)
			i++
			j++
		}
	}
}

// CountGallop intersects by exponential + binary search of each element of
// the smaller slice in the larger one.
func CountGallop(a, b []Vertex) uint64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var cnt uint64
	lo := 0
	for _, x := range a {
		// Exponential search for x in b[lo:].
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi
			hi += step
			step *= 2
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search in b[lo:hi].
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(b) && b[lo] == x {
			cnt++
			lo++
		}
	}
	return cnt
}

// CountMerge is the plain branchy two-pointer merge intersection, the oracle
// kernel every other kernel is tested and benchmarked against.
func CountMerge(a, b []Vertex) uint64 {
	var cnt uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x < y {
			i++
		} else if y < x {
			j++
		} else {
			cnt++
			i++
			j++
		}
	}
	return cnt
}

// b2u converts a comparison result to 0/1; the compiler lowers this to a
// flag-set instruction, keeping the merge loop free of data-dependent
// branches.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// CountMergeBranchless is the two-pointer merge with conditional advances
// instead of data-dependent branches: every iteration executes the same
// instruction sequence, so random interleavings cost no branch
// mispredictions.
func CountMergeBranchless(a, b []Vertex) uint64 {
	var cnt uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		cnt += b2u(x == y)
		i += int(b2u(x <= y))
		j += int(b2u(y <= x))
	}
	return cnt
}

// Bitset is a packed membership index over a dense integer domain [0, n).
// It backs the hub-bitmap kernel: testing one element is a shift-and-mask,
// intersecting two bitsets is word-AND + popcount.
type Bitset []uint64

// BitsetWords returns the number of words a Bitset over [0, n) occupies.
func BitsetWords(n int) int { return (n + 63) / 64 }

// NewBitset returns an empty bitset over [0, n).
func NewBitset(n int) Bitset { return make(Bitset, BitsetWords(n)) }

// Set marks x as a member. x must be inside the domain.
func (bs Bitset) Set(x Vertex) { bs[x>>6] |= 1 << (x & 63) }

// Clear resets every bit.
func (bs Bitset) Clear() {
	for i := range bs {
		bs[i] = 0
	}
}

// Has reports membership of x.
func (bs Bitset) Has(x Vertex) bool { return bs[x>>6]>>(x&63)&1 != 0 }

// SetList marks every element of list (elements must be inside the domain).
func (bs Bitset) SetList(list []Vertex) {
	for _, x := range list {
		bs.Set(x)
	}
}

// CountList returns |list ∩ bs| by one branchless membership test per list
// element: O(len(list)) independent of the indexed set's size. Every list
// element must lie inside the bitset's domain.
func (bs Bitset) CountList(list []Vertex) uint64 {
	var cnt uint64
	for _, x := range list {
		cnt += bs[x>>6] >> (x & 63) & 1
	}
	return cnt
}

// CountAnd returns |bs ∩ other| by word-AND + popcount. Both bitsets must
// cover the same domain.
func (bs Bitset) CountAnd(other Bitset) uint64 {
	var cnt int
	for i, w := range bs {
		cnt += bits.OnesCount64(w & other[i])
	}
	return uint64(cnt)
}

// ForEachCommonList calls fn for every element of list that is a member, in
// list order (ascending for sorted lists).
func (bs Bitset) ForEachCommonList(list []Vertex, fn func(Vertex)) {
	for _, x := range list {
		if bs[x>>6]>>(x&63)&1 != 0 {
			fn(x)
		}
	}
}

// ForEachAnd calls fn for every common member of bs and other, ascending.
func (bs Bitset) ForEachAnd(other Bitset, fn func(Vertex)) {
	for i, w := range bs {
		w &= other[i]
		base := Vertex(i) << 6
		for w != 0 {
			fn(base + Vertex(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

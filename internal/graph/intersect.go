package graph

// Set intersection of sorted vertex slices. This is the inner loop of every
// EDGE ITERATOR variant, implemented like the merge phase of merge sort, plus
// a galloping variant for very skewed operand sizes (the approach GPU codes
// favor; exposed here so benchmarks can compare).

// CountIntersect returns |a ∩ b| for ascending-sorted slices.
func CountIntersect(a, b []Vertex) uint64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Gallop when one side is much smaller; merge otherwise.
	if len(a)*32 < len(b) || len(b)*32 < len(a) {
		return countGallop(a, b)
	}
	var cnt uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x < y {
			i++
		} else if y < x {
			j++
		} else {
			cnt++
			i++
			j++
		}
	}
	return cnt
}

// ForEachCommon calls fn for every element of a ∩ b, in ascending order.
func ForEachCommon(a, b []Vertex, fn func(Vertex)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x < y {
			i++
		} else if y < x {
			j++
		} else {
			fn(x)
			i++
			j++
		}
	}
}

// countGallop intersects by exponential + binary search of each element of
// the smaller slice in the larger one.
func countGallop(a, b []Vertex) uint64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var cnt uint64
	lo := 0
	for _, x := range a {
		// Exponential search for x in b[lo:].
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi
			hi += step
			step *= 2
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search in b[lo:hi].
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(b) && b[lo] == x {
			cnt++
			lo++
		}
	}
	return cnt
}

// CountMerge is the plain two-pointer merge intersection, exported for
// benchmarking against the adaptive CountIntersect.
func CountMerge(a, b []Vertex) uint64 {
	var cnt uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x < y {
			i++
		} else if y < x {
			j++
		} else {
			cnt++
			i++
			j++
		}
	}
	return cnt
}

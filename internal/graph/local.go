package graph

import (
	"fmt"
	"slices"

	"repro/internal/part"
)

// LocalGraph is one PE's view of a 1D-partitioned graph (Fig. 1 of the
// paper): the PE's own vertices with complete neighborhoods, plus ghost
// vertices — remote endpoints of cut edges — whose visible neighborhoods
// contain only local vertices ("rewired incoming cut edges").
//
// Rows are indexed by a compact local index: rows 0..NLocal-1 are the local
// vertices in ID order (global ID = First + row), rows NLocal.. are ghosts
// sorted ascending by global ID. Adjacency entries store global IDs, sorted
// ascending, so neighborhoods can be merged and shipped as message payloads
// without translation.
type LocalGraph struct {
	Part  *part.Partition
	Rank  int
	First Vertex // first local global ID
	Last  Vertex // one past the last local global ID

	nLocal   int
	ghostID  []Vertex         // row NLocal+i has global ID ghostID[i]
	ghostRow map[Vertex]int32 // global ID -> row index for ghosts
	off      []int64          // CSR offsets, len = rows+1
	adj      []Vertex         // global IDs, each row sorted ascending
	adjRow   []int32          // adj translated to row indices (same layout)
	deg      []int            // global degree per row; ghost entries -1 until set
}

// BuildLocal constructs the local view for one PE from the edges incident to
// at least one of its vertices. Edges with neither endpoint local are
// rejected; self loops are dropped; duplicates are merged.
func BuildLocal(pt *part.Partition, rank int, edges []Edge) *LocalGraph {
	lo, hi := pt.Range(rank)
	l := &LocalGraph{
		Part:     pt,
		Rank:     rank,
		First:    lo,
		Last:     hi,
		nLocal:   int(hi - lo),
		ghostRow: make(map[Vertex]int32),
	}
	// Discover ghosts.
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		uLoc, vLoc := l.isLocal(e.U), l.isLocal(e.V)
		if !uLoc && !vLoc {
			panic(fmt.Sprintf("graph: edge (%d,%d) has no endpoint on PE %d [%d,%d)", e.U, e.V, rank, lo, hi))
		}
		if !uLoc {
			l.ghostRow[e.U] = 0
		}
		if !vLoc {
			l.ghostRow[e.V] = 0
		}
	}
	l.ghostID = make([]Vertex, 0, len(l.ghostRow))
	for g := range l.ghostRow {
		l.ghostID = append(l.ghostID, g)
	}
	slices.Sort(l.ghostID)
	for i, g := range l.ghostID {
		l.ghostRow[g] = int32(l.nLocal + i)
	}

	rows := l.nLocal + len(l.ghostID)
	cnt := make([]int64, rows+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		cnt[l.Row(e.U)+1]++
		cnt[l.Row(e.V)+1]++
	}
	off := make([]int64, rows+1)
	for i := 1; i <= rows; i++ {
		off[i] = off[i-1] + cnt[i]
	}
	adj := make([]Vertex, off[rows])
	pos := make([]int64, rows)
	copy(pos, off[:rows])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		ru, rv := l.Row(e.U), l.Row(e.V)
		adj[pos[ru]] = e.V
		pos[ru]++
		adj[pos[rv]] = e.U
		pos[rv]++
	}
	// Sort + dedup rows, row-translating in the same pass: every entry is a
	// local vertex or a known ghost, sorted within its row, so ghosts resolve
	// by forward galloping through the sorted ghost-ID array (no hashing) and
	// never need resolution again — orientation, local phases, and
	// receive-side intersections all work on the translated row indices.
	w := int64(0)
	newOff := make([]int64, rows+1)
	adjRow := make([]int32, len(adj))
	for r := 0; r < rows; r++ {
		row := adj[off[r]:off[r+1]]
		slices.Sort(row)
		start := w
		var last Vertex
		first := true
		lo := 0
		for _, x := range row {
			if !first && x == last {
				continue
			}
			adj[w] = x
			if l.isLocal(x) {
				adjRow[w] = int32(x - l.First)
			} else {
				g, ok := l.ghostSearch(x, lo)
				if !ok {
					panic(fmt.Sprintf("graph: adjacency entry %d is neither local nor ghost on PE %d", x, rank))
				}
				adjRow[w] = int32(l.nLocal + g)
				lo = g + 1
			}
			w++
			last, first = x, false
		}
		newOff[r] = start
	}
	newOff[rows] = w
	l.off, l.adj, l.adjRow = newOff, adj[:w], adjRow[:w]

	// Local degrees are exact (1D partition: every incident edge is visible);
	// ghost degrees are unknown until the degree exchange.
	l.deg = make([]int, rows)
	for r := 0; r < l.nLocal; r++ {
		l.deg[r] = int(l.off[r+1] - l.off[r])
	}
	for r := l.nLocal; r < rows; r++ {
		l.deg[r] = -1
	}
	return l
}

func (l *LocalGraph) isLocal(v Vertex) bool { return v >= l.First && v < l.Last }

// ghostSearch finds x in ghostID[from:] by exponential + binary search,
// returning its index. Callers scanning an ascending sequence pass the
// previous hit + 1 as from, so a whole scan costs O(k log gap) array probes
// with no hashing.
func (l *LocalGraph) ghostSearch(x Vertex, from int) (int, bool) {
	gid := l.ghostID
	lo, hi := from, from
	step := 1
	for hi < len(gid) && gid[hi] < x {
		lo = hi + 1
		hi += step
		step *= 2
	}
	if hi > len(gid) {
		hi = len(gid)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if gid[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(gid) && gid[lo] == x {
		return lo, true
	}
	return lo, false
}

// RowTranslator is reusable scratch for TranslateRows; the zero value is
// ready to use. It grows to the largest list translated through it and then
// allocates nothing.
type RowTranslator struct {
	loc []uint64
	gho []uint64
}

// TranslateRows maps a sorted global-ID list to ascending row indices using
// tr's scratch. Vertices that are neither local nor ghost here are dropped
// (they cannot appear in any local A-list). Locals come first — their rows
// precede all ghost rows — and both subsequences arrive in ID order, so the
// result is sorted with no comparison sort; ghosts resolve by forward
// galloping through the sorted ghost-ID array, not by hashing. The returned
// slice aliases tr's scratch and is valid until the next call; nLocal is the
// length of the local-row prefix.
func (l *LocalGraph) TranslateRows(tr *RowTranslator, list []Vertex) (rows []uint64, nLocal int) {
	loc, gho := tr.loc[:0], tr.gho[:0]
	first := l.First
	lo := 0
	for _, x := range list {
		if l.isLocal(x) {
			loc = append(loc, x-first)
			continue
		}
		if g, ok := l.ghostSearch(x, lo); ok {
			gho = append(gho, uint64(l.nLocal+g))
			lo = g + 1
		}
	}
	nLocal = len(loc)
	loc = append(loc, gho...)
	tr.loc, tr.gho = loc, gho
	return loc, nLocal
}

// IsLocal reports whether v is owned by this PE.
func (l *LocalGraph) IsLocal(v Vertex) bool { return l.isLocal(v) }

// NLocal returns the number of local vertices.
func (l *LocalGraph) NLocal() int { return l.nLocal }

// NGhost returns the number of ghost vertices.
func (l *LocalGraph) NGhost() int { return len(l.ghostID) }

// Rows returns the total number of rows (locals + ghosts).
func (l *LocalGraph) Rows() int { return l.nLocal + len(l.ghostID) }

// Row maps a global ID (local vertex or known ghost) to its row index.
func (l *LocalGraph) Row(v Vertex) int32 {
	if l.isLocal(v) {
		return int32(v - l.First)
	}
	r, ok := l.ghostRow[v]
	if !ok {
		panic(fmt.Sprintf("graph: vertex %d is neither local nor ghost on PE %d", v, l.Rank))
	}
	return r
}

// GhostRow returns the row of a ghost vertex and whether it is known.
func (l *LocalGraph) GhostRow(v Vertex) (int32, bool) {
	r, ok := l.ghostRow[v]
	return r, ok
}

// GID returns the global ID of a row.
func (l *LocalGraph) GID(row int32) Vertex {
	if int(row) < l.nLocal {
		return l.First + Vertex(row)
	}
	return l.ghostID[int(row)-l.nLocal]
}

// Ghosts returns the global IDs of all ghost vertices, ascending.
func (l *LocalGraph) Ghosts() []Vertex { return l.ghostID }

// RowNeighbors returns the visible neighborhood of a row (global IDs,
// ascending). For ghost rows this contains only local vertices.
func (l *LocalGraph) RowNeighbors(row int32) []Vertex { return l.adj[l.off[row]:l.off[row+1]] }

// RowNeighborRows returns the same neighborhood as RowNeighbors but
// translated to row indices (aligned element-for-element with the global-ID
// slice, i.e. ordered by global ID, not by row).
func (l *LocalGraph) RowNeighborRows(row int32) []int32 { return l.adjRow[l.off[row]:l.off[row+1]] }

// Degree returns the global degree of a row; -1 for ghosts before the
// ghost-degree exchange has run.
func (l *LocalGraph) Degree(row int32) int { return l.deg[row] }

// SetGhostDegree records the exchanged global degree of a ghost row.
func (l *LocalGraph) SetGhostDegree(row int32, d int) { l.deg[row] = d }

// LocalEdges returns the number of visible adjacency entries |E_i| (each
// local-local edge counted twice, cut edges once per side plus once in the
// ghost row). This is the quantity the buffering threshold δ = O(|E_i|) is
// tied to.
func (l *LocalGraph) LocalEdges() int { return len(l.adj) }

// CutEdges returns the number of cut edges incident to this PE.
func (l *LocalGraph) CutEdges() int {
	cut := 0
	for r := 0; r < l.nLocal; r++ {
		for _, u := range l.RowNeighbors(int32(r)) {
			if !l.isLocal(u) {
				cut++
			}
		}
	}
	return cut
}

// InterfaceVertices returns the number of local vertices adjacent to at
// least one ghost.
func (l *LocalGraph) InterfaceVertices() int {
	cnt := 0
	for r := 0; r < l.nLocal; r++ {
		for _, u := range l.RowNeighbors(int32(r)) {
			if !l.isLocal(u) {
				cnt++
				break
			}
		}
	}
	return cnt
}

// ScatterEdges splits a global edge list into one slice per PE, giving each
// edge to the owners of both endpoints (once if they coincide). It mirrors
// how a distributed loader or communication-free generator would materialize
// per-PE inputs.
func ScatterEdges(pt *part.Partition, edges []Edge) [][]Edge {
	out := make([][]Edge, pt.P())
	for _, e := range edges {
		ru, rv := pt.Rank(e.U), pt.Rank(e.V)
		out[ru] = append(out[ru], e)
		if rv != ru {
			out[rv] = append(out[rv], e)
		}
	}
	return out
}

package graph

import (
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/part"
)

// LocalGraph is one PE's view of a 1D-partitioned graph (Fig. 1 of the
// paper): the PE's own vertices with complete neighborhoods, plus ghost
// vertices — remote endpoints of cut edges — whose visible neighborhoods
// contain only local vertices ("rewired incoming cut edges").
//
// Rows are indexed by a compact local index: rows 0..NLocal-1 are the local
// vertices in ID order (global ID = First + row), rows NLocal.. are ghosts
// sorted ascending by global ID. Adjacency entries store global IDs, sorted
// ascending, so neighborhoods can be merged and shipped as message payloads
// without translation.
type LocalGraph struct {
	Part  *part.Partition
	Rank  int
	First Vertex // first local global ID
	Last  Vertex // one past the last local global ID

	nLocal   int
	ghostID  []Vertex         // row NLocal+i has global ID ghostID[i]
	ghostRow map[Vertex]int32 // global ID -> row index for ghosts
	off      []int64          // CSR offsets, len = rows+1
	adj      []Vertex         // global IDs, each row sorted ascending
	adjRow   []int32          // adj translated to row indices (same layout)
	deg      []int            // global degree per row; ghost entries -1 until set
}

// BuildLocal constructs the local view for one PE from the edges incident to
// at least one of its vertices. Edges with neither endpoint local are
// rejected; self loops are dropped; duplicates are merged. Sequential;
// BuildLocalPar is the threaded variant.
func BuildLocal(pt *part.Partition, rank int, edges []Edge) *LocalGraph {
	return BuildLocalPar(pt, rank, edges, 1)
}

// BuildLocalPar is BuildLocal parallelized over threads workers as a fused
// multi-pass pipeline:
//
//  1. Ghost discovery is sort-based, not map-based: workers collect the
//     non-local endpoints of their edge chunks, sort and dedup each chunk,
//     and a k-way merge yields the ascending ghost-ID array.
//  2. Each edge endpoint is resolved to its row index once (locals by
//     offset, ghosts by binary search) and memoized, so the count and
//     placement passes are array reads instead of repeated map lookups.
//  3. Row counting and placement are parallel (atomic per-row counters and
//     cursors when threads > 1); placement order within a row is
//     thread-dependent but irrelevant, because
//  4. every row is sorted, deduplicated, and row-translated independently —
//     rows are disjoint, so the final compaction into exact-size arrays
//     fans out over rows.
//
// The result is byte-identical for every thread count.
func BuildLocalPar(pt *part.Partition, rank int, edges []Edge, threads int) *LocalGraph {
	lo, hi := pt.Range(rank)
	l := &LocalGraph{
		Part:   pt,
		Rank:   rank,
		First:  lo,
		Last:   hi,
		nLocal: int(hi - lo),
	}
	// Pass 1: sort-based ghost discovery (also validates edge locality).
	l.ghostID = discoverGhosts(lo, hi, rank, edges, threads)
	l.ghostRow = make(map[Vertex]int32, len(l.ghostID))
	for i, g := range l.ghostID {
		l.ghostRow[g] = int32(l.nLocal + i)
	}
	rows := l.nLocal + len(l.ghostID)

	// Pass 2 (fused memo + count): resolve the row of every edge endpoint
	// once (self loops become -1) and count entries per row in the same
	// sweep. With one worker the plain loop runs; with several, per-row
	// atomic counters keep the pass lock-free (rows are hit randomly, so
	// contention is negligible, and the per-row sort below erases placement
	// order anyway).
	rowOf := make([]int32, 2*len(edges))
	cnt := make([]int64, rows+1)
	// Resolution goes through the ghost map built from the discovery result
	// (reads from many goroutines are safe): for ghost-heavy inputs a map
	// probe beats a log|ghosts| binary search per endpoint.
	rowLookup := func(x Vertex) int32 {
		if l.isLocal(x) {
			return int32(x - l.First)
		}
		return l.ghostRow[x] // discovery guarantees membership
	}
	w := workersFor(threads, len(edges), parallelChunk)
	if w == 1 {
		for i, e := range edges {
			if e.U == e.V {
				rowOf[2*i] = -1
				continue
			}
			ru, rv := rowLookup(e.U), rowLookup(e.V)
			rowOf[2*i], rowOf[2*i+1] = ru, rv
			cnt[ru+1]++
			cnt[rv+1]++
		}
	} else {
		parallelFor(threads, len(edges), parallelChunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := edges[i]
				if e.U == e.V {
					rowOf[2*i] = -1
					continue
				}
				ru, rv := rowLookup(e.U), rowLookup(e.V)
				rowOf[2*i], rowOf[2*i+1] = ru, rv
				atomic.AddInt64(&cnt[ru+1], 1)
				atomic.AddInt64(&cnt[rv+1], 1)
			}
		})
	}
	off := make([]int64, rows+1)
	for i := 1; i <= rows; i++ {
		off[i] = off[i-1] + cnt[i]
	}
	adj := make([]Vertex, off[rows])
	pos := make([]int64, rows)
	copy(pos, off[:rows])
	if w == 1 {
		for i := 0; i < len(edges); i++ {
			ru, rv := rowOf[2*i], rowOf[2*i+1]
			if ru < 0 {
				continue
			}
			adj[pos[ru]] = edges[i].V
			pos[ru]++
			adj[pos[rv]] = edges[i].U
			pos[rv]++
		}
	} else {
		parallelFor(threads, len(edges), parallelChunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				ru, rv := rowOf[2*i], rowOf[2*i+1]
				if ru < 0 {
					continue
				}
				adj[atomic.AddInt64(&pos[ru], 1)-1] = edges[i].V
				adj[atomic.AddInt64(&pos[rv], 1)-1] = edges[i].U
			}
		})
	}

	// Pass 3: sort + dedup + row-translate every row. Entries are sorted
	// within their row, so ghosts resolve by forward galloping through the
	// sorted ghost-ID array (no hashing) and never need resolution again —
	// orientation, local phases, and receive-side intersections all work on
	// the translated row indices.
	//
	// With one worker the sweep is fully fused: rows compact in place
	// behind a running write cursor. With several, compaction is split —
	// rows sort + dedup in place (disjoint slices of adj fan out over
	// workers), a sequential prefix sum over the surviving lengths fixes
	// the final offsets, and a second parallel sweep copies into exact-size
	// arrays while translating. The result is identical either way.
	nLoc := l.nLocal
	if w == 1 {
		wr := int64(0)
		newOff := make([]int64, rows+1)
		adjRow := make([]int32, len(adj))
		for r := 0; r < rows; r++ {
			row := adj[off[r]:off[r+1]]
			slices.Sort(row)
			start := wr
			var last Vertex
			first := true
			gpos := 0
			for _, x := range row {
				if !first && x == last {
					continue
				}
				adj[wr] = x
				if l.isLocal(x) {
					adjRow[wr] = int32(x - l.First)
				} else {
					g, ok := l.ghostSearch(x, gpos)
					if !ok {
						panic(fmt.Sprintf("graph: adjacency entry %d is neither local nor ghost on PE %d", x, rank))
					}
					adjRow[wr] = int32(nLoc + g)
					gpos = g + 1
				}
				wr++
				last, first = x, false
			}
			newOff[r] = start
		}
		newOff[rows] = wr
		l.off, l.adj, l.adjRow = newOff, adj[:wr], adjRow[:wr]
	} else {
		uniq := make([]int64, rows)
		parallelFor(threads, rows, 64, func(_, rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				row := adj[off[r]:off[r+1]]
				slices.Sort(row)
				u := 0
				for k, x := range row {
					if k > 0 && x == row[u-1] {
						continue
					}
					row[u] = x
					u++
				}
				uniq[r] = int64(u)
			}
		})
		newOff := make([]int64, rows+1)
		for r := 0; r < rows; r++ {
			newOff[r+1] = newOff[r] + uniq[r]
		}
		outAdj := make([]Vertex, newOff[rows])
		adjRow := make([]int32, newOff[rows])
		parallelFor(threads, rows, 64, func(_, rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				src := adj[off[r] : off[r]+uniq[r]]
				dst := outAdj[newOff[r]:newOff[r+1]]
				dstR := adjRow[newOff[r]:newOff[r+1]]
				gpos := 0
				for k, x := range src {
					dst[k] = x
					if l.isLocal(x) {
						dstR[k] = int32(x - l.First)
					} else {
						g, ok := l.ghostSearch(x, gpos)
						if !ok {
							panic(fmt.Sprintf("graph: adjacency entry %d is neither local nor ghost on PE %d", x, rank))
						}
						dstR[k] = int32(nLoc + g)
						gpos = g + 1
					}
				}
			}
		})
		l.off, l.adj, l.adjRow = newOff, outAdj, adjRow
	}

	// Local degrees are exact (1D partition: every incident edge is visible);
	// ghost degrees are unknown until the degree exchange.
	l.deg = make([]int, rows)
	for r := 0; r < l.nLocal; r++ {
		l.deg[r] = int(l.off[r+1] - l.off[r])
	}
	for r := l.nLocal; r < rows; r++ {
		l.deg[r] = -1
	}
	return l
}

// discoverGhosts returns the ascending, deduplicated non-local endpoints of
// edges for the PE owning [first, last): workers collect the non-local
// endpoints of their chunks, sort + dedup each chunk in parallel, and a
// k-way merge (k = workers, so tiny) folds them together. Edges with no
// endpoint in [first, last) panic, self loops are ignored — the same
// contract as the map-based discovery it replaces.
func discoverGhosts(first, last Vertex, rank int, edges []Edge, threads int) []Vertex {
	w := workersFor(threads, len(edges), parallelChunk)
	chunks := make([][]Vertex, w)
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		// U- and V-side ghosts are collected separately, dropping
		// immediately repeated endpoints: edge lists arrive grouped by
		// ascending U, so the U-side stream is typically already sorted
		// (skipping its comparison sort entirely — an O(n) check guards
		// arbitrary inputs) and a ghost U with several local neighbors
		// repeats back to back, so most duplicates never reach a sort.
		bufU := make([]Vertex, 0, 64)
		bufV := make([]Vertex, 0, 64)
		lastU, lastV := ^Vertex(0), ^Vertex(0)
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				continue
			}
			uLoc := e.U >= first && e.U < last
			vLoc := e.V >= first && e.V < last
			if !uLoc && !vLoc {
				panic(fmt.Sprintf("graph: edge (%d,%d) has no endpoint on PE %d [%d,%d)", e.U, e.V, rank, first, last))
			}
			if !uLoc && e.U != lastU {
				bufU = append(bufU, e.U)
				lastU = e.U
			}
			if !vLoc && e.V != lastV {
				bufV = append(bufV, e.V)
				lastV = e.V
			}
		}
		chunks[worker] = mergeSortedDedup(sortedDedup(bufU), sortedDedup(bufV))
	})
	if w == 1 {
		return chunks[0]
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]Vertex, 0, total)
	idx := make([]int, w)
	for {
		best := -1
		var bv Vertex
		for k := 0; k < w; k++ {
			if idx[k] < len(chunks[k]) && (best < 0 || chunks[k][idx[k]] < bv) {
				best, bv = k, chunks[k][idx[k]]
			}
		}
		if best < 0 {
			return out
		}
		idx[best]++
		if len(out) == 0 || out[len(out)-1] != bv {
			out = append(out, bv)
		}
	}
}

// sortedDedup sorts s unless it is already ascending (an O(n) check — the
// common case for U-side ghost streams) and removes duplicates in place.
func sortedDedup(s []Vertex) []Vertex {
	if !slices.IsSorted(s) {
		slices.Sort(s)
	}
	u := 0
	for k, x := range s {
		if k > 0 && x == s[u-1] {
			continue
		}
		s[u] = x
		u++
	}
	return s[:u]
}

// mergeSortedDedup merges two ascending deduplicated lists into one.
func mergeSortedDedup(a, b []Vertex) []Vertex {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Vertex, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func (l *LocalGraph) isLocal(v Vertex) bool { return v >= l.First && v < l.Last }

// ghostSearch finds x in ghostID[from:] by exponential + binary search,
// returning its index. Callers scanning an ascending sequence pass the
// previous hit + 1 as from, so a whole scan costs O(k log gap) array probes
// with no hashing.
func (l *LocalGraph) ghostSearch(x Vertex, from int) (int, bool) {
	return searchFrom(l.ghostID, x, from)
}

// searchFrom finds x in the ascending slice s at or after index from by
// exponential + binary search, returning the insertion index and whether x
// is present. Callers scanning an ascending probe sequence pass the
// previous hit + 1 as from, so a whole scan costs O(k log gap) array
// probes. Shared by the ghost machinery and the streaming builder's
// staged-batch subtraction.
func searchFrom(s []Vertex, x Vertex, from int) (int, bool) {
	lo, hi := from, from
	step := 1
	for hi < len(s) && s[hi] < x {
		lo = hi + 1
		hi += step
		step *= 2
	}
	if hi > len(s) {
		hi = len(s)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == x {
		return lo, true
	}
	return lo, false
}

// RowTranslator is reusable scratch for TranslateRows; the zero value is
// ready to use. It grows to the largest list translated through it and then
// allocates nothing.
type RowTranslator struct {
	loc []uint64
	gho []uint64
}

// TranslateRows maps a sorted global-ID list to ascending row indices using
// tr's scratch. Vertices that are neither local nor ghost here are dropped
// (they cannot appear in any local A-list). Locals come first — their rows
// precede all ghost rows — and both subsequences arrive in ID order, so the
// result is sorted with no comparison sort; ghosts resolve by forward
// galloping through the sorted ghost-ID array, not by hashing. The returned
// slice aliases tr's scratch and is valid until the next call; nLocal is the
// length of the local-row prefix.
func (l *LocalGraph) TranslateRows(tr *RowTranslator, list []Vertex) (rows []uint64, nLocal int) {
	loc, gho := tr.loc[:0], tr.gho[:0]
	first := l.First
	lo := 0
	for _, x := range list {
		if l.isLocal(x) {
			loc = append(loc, x-first)
			continue
		}
		if g, ok := l.ghostSearch(x, lo); ok {
			gho = append(gho, uint64(l.nLocal+g))
			lo = g + 1
		}
	}
	nLocal = len(loc)
	loc = append(loc, gho...)
	tr.loc, tr.gho = loc, gho
	return loc, nLocal
}

// IsLocal reports whether v is owned by this PE.
func (l *LocalGraph) IsLocal(v Vertex) bool { return l.isLocal(v) }

// NLocal returns the number of local vertices.
func (l *LocalGraph) NLocal() int { return l.nLocal }

// NGhost returns the number of ghost vertices.
func (l *LocalGraph) NGhost() int { return len(l.ghostID) }

// Rows returns the total number of rows (locals + ghosts).
func (l *LocalGraph) Rows() int { return l.nLocal + len(l.ghostID) }

// Row maps a global ID (local vertex or known ghost) to its row index.
func (l *LocalGraph) Row(v Vertex) int32 {
	if l.isLocal(v) {
		return int32(v - l.First)
	}
	r, ok := l.ghostRow[v]
	if !ok {
		panic(fmt.Sprintf("graph: vertex %d is neither local nor ghost on PE %d", v, l.Rank))
	}
	return r
}

// GhostRow returns the row of a ghost vertex and whether it is known.
func (l *LocalGraph) GhostRow(v Vertex) (int32, bool) {
	r, ok := l.ghostRow[v]
	return r, ok
}

// GID returns the global ID of a row.
func (l *LocalGraph) GID(row int32) Vertex {
	if int(row) < l.nLocal {
		return l.First + Vertex(row)
	}
	return l.ghostID[int(row)-l.nLocal]
}

// Ghosts returns the global IDs of all ghost vertices, ascending.
func (l *LocalGraph) Ghosts() []Vertex { return l.ghostID }

// RowNeighbors returns the visible neighborhood of a row (global IDs,
// ascending). For ghost rows this contains only local vertices.
func (l *LocalGraph) RowNeighbors(row int32) []Vertex { return l.adj[l.off[row]:l.off[row+1]] }

// RowNeighborRows returns the same neighborhood as RowNeighbors but
// translated to row indices (aligned element-for-element with the global-ID
// slice, i.e. ordered by global ID, not by row).
func (l *LocalGraph) RowNeighborRows(row int32) []int32 { return l.adjRow[l.off[row]:l.off[row+1]] }

// Degree returns the global degree of a row; -1 for ghosts before the
// ghost-degree exchange has run.
func (l *LocalGraph) Degree(row int32) int { return l.deg[row] }

// SetGhostDegree records the exchanged global degree of a ghost row.
func (l *LocalGraph) SetGhostDegree(row int32, d int) { l.deg[row] = d }

// LocalEdges returns the number of visible adjacency entries |E_i| (each
// local-local edge counted twice, cut edges once per side plus once in the
// ghost row). This is the quantity the buffering threshold δ = O(|E_i|) is
// tied to.
func (l *LocalGraph) LocalEdges() int { return len(l.adj) }

// CutEdges returns the number of cut edges incident to this PE.
func (l *LocalGraph) CutEdges() int {
	cut := 0
	for r := 0; r < l.nLocal; r++ {
		for _, u := range l.RowNeighbors(int32(r)) {
			if !l.isLocal(u) {
				cut++
			}
		}
	}
	return cut
}

// InterfaceVertices returns the number of local vertices adjacent to at
// least one ghost.
func (l *LocalGraph) InterfaceVertices() int {
	cnt := 0
	for r := 0; r < l.nLocal; r++ {
		for _, u := range l.RowNeighbors(int32(r)) {
			if !l.isLocal(u) {
				cnt++
				break
			}
		}
	}
	return cnt
}

// ScatterEdges splits a global edge list into one slice per PE, giving each
// edge to the owners of both endpoints (once if they coincide). It mirrors
// how a distributed loader or communication-free generator would materialize
// per-PE inputs. Sequential; ScatterEdgesPar is the threaded variant.
func ScatterEdges(pt *part.Partition, edges []Edge) [][]Edge {
	return ScatterEdgesPar(pt, edges, 1)
}

// ScatterEdgesPar is ScatterEdges as a two-pass counting layout instead of
// append-with-growth: a count pass builds per-worker rank histograms (and
// memoizes both endpoint ranks, so the binary searches run once per edge,
// not twice), prefix sums over (rank, worker) turn them into exact
// placement offsets, and a placement pass writes each edge directly into
// its destination slices. Workers own static contiguous blocks of the edge
// list, so worker-major placement preserves the input order per PE — the
// output is byte-identical to the sequential path for every thread count.
func ScatterEdgesPar(pt *part.Partition, edges []Edge, threads int) [][]Edge {
	p := pt.P()
	out := make([][]Edge, p)
	if len(edges) == 0 {
		return out
	}
	if p == 1 {
		// Single owner: the histograms would be vacuous, but the range
		// validation the Rank calls perform on every other path must not be
		// skipped — a bad ID caught here panics at load time, not deep
		// inside a later phase.
		n := pt.N()
		parallelFor(threads, len(edges), parallelChunk, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if e := edges[i]; e.U >= n || e.V >= n {
					panic(fmt.Sprintf("part: vertex %d out of range n=%d", max(e.U, e.V), n))
				}
			}
		})
		out[0] = slices.Clone(edges)
		return out
	}
	w := workersFor(threads, len(edges), parallelChunk)
	ranks := make([]int32, 2*len(edges))
	cnt := make([]int64, w*p) // per-worker rank histograms
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		c := cnt[worker*p : (worker+1)*p]
		for i := lo; i < hi; i++ {
			e := edges[i]
			ru := int32(pt.Rank(e.U))
			rv := int32(pt.Rank(e.V))
			ranks[2*i], ranks[2*i+1] = ru, rv
			c[ru]++
			if rv != ru {
				c[rv]++
			}
		}
	})
	// Prefix sums: pos[worker*p+pe] is worker's first write index in out[pe].
	pos := make([]int64, w*p)
	for pe := 0; pe < p; pe++ {
		total := int64(0)
		for worker := 0; worker < w; worker++ {
			pos[worker*p+pe] = total
			total += cnt[worker*p+pe]
		}
		if total > 0 {
			out[pe] = make([]Edge, total)
		}
	}
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		cur := pos[worker*p : (worker+1)*p]
		for i := lo; i < hi; i++ {
			e := edges[i]
			ru, rv := ranks[2*i], ranks[2*i+1]
			out[ru][cur[ru]] = e
			cur[ru]++
			if rv != ru {
				out[rv][cur[rv]] = e
				cur[rv]++
			}
		}
	})
	return out
}

package graph

import (
	"testing"
)

func benchGraph() *Graph {
	return randomGraph(42, 4096, 65536)
}

func BenchmarkFromEdges(b *testing.B) {
	g := benchGraph()
	edges := g.Edges()
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(n, edges)
	}
}

func BenchmarkOrient(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Orient(g)
	}
}

func BenchmarkBuildLocal(b *testing.B) {
	g := benchGraph()
	pt, _ := buildScattered(g, 8)
	per := ScatterEdges(pt, g.Edges())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildLocal(pt, 3, per[3])
	}
}

func BenchmarkCompress(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(g)
	}
}

// BenchmarkCompressedVsRawCount compares triangle counting on the raw CSR
// against the delta-varint compressed form (space/time trade-off of
// Dhulipala et al.).
func BenchmarkCompressedVsRawCount(b *testing.B) {
	g := benchGraph()
	b.Run("raw", func(b *testing.B) {
		o := Orient(g)
		b.ResetTimer()
		var count uint64
		for i := 0; i < b.N; i++ {
			count = 0
			for v := 0; v < g.NumVertices(); v++ {
				nv := o.Out(Vertex(v))
				for _, u := range nv {
					count += CountIntersect(nv, o.Out(u))
				}
			}
		}
		b.ReportMetric(float64(count), "triangles")
		b.ReportMetric(float64(8*len(o.out)), "bytes")
	})
	b.Run("compressed", func(b *testing.B) {
		co := CompressOriented(g)
		b.ResetTimer()
		var count uint64
		for i := 0; i < b.N; i++ {
			count = co.CountTriangles()
		}
		b.ReportMetric(float64(count), "triangles")
		b.ReportMetric(float64(co.SizeBytes()), "bytes")
	})
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(Vertex(i%1000), Vertex((i*7)%4096))
	}
}

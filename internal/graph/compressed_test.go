package graph

import (
	"slices"
	"testing"
	"testing/quick"
)

func TestCompressRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 80, 400)
		c := Compress(g)
		if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			want := g.Neighbors(Vertex(v))
			got := c.Neighbors(Vertex(v))
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !slices.Equal(got, want) {
				return false
			}
			if c.Degree(Vertex(v)) != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCompressedSmallerThanRaw(t *testing.T) {
	// With sorted gap encoding, dense-ish graphs with ID locality compress
	// far below 8 bytes/entry.
	g := randomGraph(7, 2000, 30000)
	c := Compress(g)
	raw := 8 * 2 * g.NumEdges()
	if c.SizeBytes() >= raw/2 {
		t.Fatalf("compressed %d bytes, raw %d bytes: expected >2x compression", c.SizeBytes(), raw)
	}
}

func TestCompressedIntersection(t *testing.T) {
	g := randomGraph(13, 120, 900)
	c := Compress(g)
	for v := 0; v < 40; v++ {
		for u := v + 1; u < 40; u++ {
			want := CountIntersect(g.Neighbors(Vertex(v)), g.Neighbors(Vertex(u)))
			got := c.CountIntersectCompressed(Vertex(v), Vertex(u))
			if got != want {
				t.Fatalf("intersect(%d,%d) = %d, want %d", v, u, got, want)
			}
		}
	}
}

func TestCompressedTriangleCount(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		g := randomGraph(seed, 150, 1200)
		co := CompressOriented(g)
		// Reference: plain oriented count.
		o := Orient(g)
		var want uint64
		for v := 0; v < g.NumVertices(); v++ {
			nv := o.Out(Vertex(v))
			for _, u := range nv {
				want += CountIntersect(nv, o.Out(u))
			}
		}
		if got := co.CountTriangles(); got != want {
			t.Fatalf("seed %d: compressed count %d, want %d", seed, got, want)
		}
	}
}

func TestVarintBoundaryGaps(t *testing.T) {
	// Exercise multi-byte varints: neighbors around the 1- and 2-byte
	// encoding boundaries and a wide gap.
	n := 20000
	edges := []Edge{{0, 1}, {0, 127}, {0, 128}, {0, 129}, {0, 16383}, {0, 16385}, {5, 19999}}
	g := FromEdges(n, edges)
	c := Compress(g)
	if !slices.Equal(c.Neighbors(0), g.Neighbors(0)) {
		t.Fatalf("boundary gaps decoded wrong: %v", c.Neighbors(0))
	}
	if !slices.Equal(c.Neighbors(5), g.Neighbors(5)) {
		t.Fatal("wide gap decoded wrong")
	}
}

func TestVarintEncoding(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 16383, 16384, 1 << 35, 1<<63 - 1}
	for _, x := range cases {
		buf := appendUvarint(nil, x)
		nc := neighborCursor{buf: buf}
		got, ok := nc.next()
		if !ok || got != x {
			t.Fatalf("varint round trip failed for %d: got %d", x, got)
		}
	}
}

package graph

import "repro/internal/part"

// Induced subgraphs and the cut graph ∂G from the paper's preliminaries.

// InducedSubgraph returns G(V′) relabeled to 0..|V′|−1 (in ascending order
// of the selected IDs) plus the ID mapping old→new (−1 if dropped).
func InducedSubgraph(g *Graph, vertices []Vertex) (*Graph, []int64) {
	remap := make([]int64, g.NumVertices())
	for i := range remap {
		remap[i] = -1
	}
	sorted := append([]Vertex(nil), vertices...)
	// Insertion sort: selections are small in practice and may be unsorted.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	next := int64(0)
	for _, v := range sorted {
		if remap[v] == -1 {
			remap[v] = next
			next++
		}
	}
	var edges []Edge
	g.ForEachEdge(func(u, v Vertex) {
		if remap[u] >= 0 && remap[v] >= 0 {
			edges = append(edges, Edge{Vertex(remap[u]), Vertex(remap[v])})
		}
	})
	return FromEdges(int(next), edges), remap
}

// CutGraph returns ∂G: the graph on the same vertex set containing exactly
// the cut edges of the given 1D partition. By Lemma 1 of the paper, the
// triangles of ∂G are exactly the type-3 triangles of G.
func CutGraph(g *Graph, pt *part.Partition) *Graph {
	var edges []Edge
	g.ForEachEdge(func(u, v Vertex) {
		if pt.Rank(u) != pt.Rank(v) {
			edges = append(edges, Edge{u, v})
		}
	})
	return FromEdges(g.NumVertices(), edges)
}

package graph

// Compressed adjacency arrays: delta-gap varint encoding of the sorted
// neighborhoods, the representation Dhulipala, Shun and Blelloch use to run
// triangle counting on large compressed graphs (§III-A1 of the paper). The
// decoder streams, so set intersections run directly on the compressed form
// without materializing neighborhoods.

// CompressedGraph stores each sorted neighborhood as varint-encoded deltas:
// the first neighbor is encoded as-is, subsequent ones as gaps (≥ 1 after
// dedup).
type CompressedGraph struct {
	off []int64 // byte offsets per vertex
	buf []byte
	n   int
	m   int
}

// Compress encodes g.
func Compress(g *Graph) *CompressedGraph {
	n := g.NumVertices()
	c := &CompressedGraph{off: make([]int64, n+1), n: n, m: g.NumEdges()}
	var buf []byte
	for v := 0; v < n; v++ {
		c.off[v] = int64(len(buf))
		prev := uint64(0)
		first := true
		for _, u := range g.Neighbors(Vertex(v)) {
			var delta uint64
			if first {
				delta = u
				first = false
			} else {
				delta = u - prev
			}
			prev = u
			buf = appendUvarint(buf, delta)
		}
	}
	c.off[n] = int64(len(buf))
	c.buf = buf
	return c
}

func appendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

// NumVertices returns n.
func (c *CompressedGraph) NumVertices() int { return c.n }

// NumEdges returns m.
func (c *CompressedGraph) NumEdges() int { return c.m }

// SizeBytes returns the compressed adjacency payload size.
func (c *CompressedGraph) SizeBytes() int { return len(c.buf) }

// neighborCursor streams one neighborhood.
type neighborCursor struct {
	buf  []byte
	pos  int
	last uint64
	init bool
}

func (c *CompressedGraph) cursor(v Vertex) neighborCursor {
	return neighborCursor{buf: c.buf[c.off[v]:c.off[v+1]]}
}

// next returns the next neighbor; ok is false at the end.
func (nc *neighborCursor) next() (Vertex, bool) {
	if nc.pos >= len(nc.buf) {
		return 0, false
	}
	var x uint64
	var shift uint
	for {
		b := nc.buf[nc.pos]
		nc.pos++
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	if nc.init {
		nc.last += x
	} else {
		nc.last = x
		nc.init = true
	}
	return nc.last, true
}

// Neighbors decodes the full neighborhood of v (for tests and callers that
// need random access).
func (c *CompressedGraph) Neighbors(v Vertex) []Vertex {
	var out []Vertex
	cur := c.cursor(v)
	for {
		u, ok := cur.next()
		if !ok {
			return out
		}
		out = append(out, u)
	}
}

// Degree returns the degree of v (a full decode; compressed graphs that need
// cheap degrees should cache them).
func (c *CompressedGraph) Degree(v Vertex) int {
	d := 0
	cur := c.cursor(v)
	for {
		if _, ok := cur.next(); !ok {
			return d
		}
		d++
	}
}

// CountIntersectCompressed merges two compressed neighborhoods without
// materializing either.
func (c *CompressedGraph) CountIntersectCompressed(a, b Vertex) uint64 {
	ca, cb := c.cursor(a), c.cursor(b)
	x, okx := ca.next()
	y, oky := cb.next()
	var cnt uint64
	for okx && oky {
		switch {
		case x < y:
			x, okx = ca.next()
		case y < x:
			y, oky = cb.next()
		default:
			cnt++
			x, okx = ca.next()
			y, oky = cb.next()
		}
	}
	return cnt
}

// CompressedOut is a compressed degree-oriented out-adjacency (A-lists).
type CompressedOut struct {
	c *CompressedGraph
}

// CompressOriented encodes the COMPACT-FORWARD orientation of g.
func CompressOriented(g *Graph) *CompressedOut {
	o := Orient(g)
	n := g.NumVertices()
	cg := &CompressedGraph{off: make([]int64, n+1), n: n, m: g.NumEdges()}
	var buf []byte
	for v := 0; v < n; v++ {
		cg.off[v] = int64(len(buf))
		prev := uint64(0)
		first := true
		for _, u := range o.Out(Vertex(v)) {
			var delta uint64
			if first {
				delta = u
				first = false
			} else {
				delta = u - prev
			}
			prev = u
			buf = appendUvarint(buf, delta)
		}
	}
	cg.off[n] = int64(len(buf))
	cg.buf = buf
	return &CompressedOut{c: cg}
}

// SizeBytes returns the compressed out-adjacency payload size.
func (co *CompressedOut) SizeBytes() int { return co.c.SizeBytes() }

// CountTriangles runs EDGE ITERATOR entirely on the compressed form.
func (co *CompressedOut) CountTriangles() uint64 {
	var count uint64
	for v := 0; v < co.c.n; v++ {
		cur := co.c.cursor(Vertex(v))
		for {
			u, ok := cur.next()
			if !ok {
				break
			}
			count += co.c.CountIntersectCompressed(Vertex(v), u)
		}
	}
	return count
}

package graph_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/testgraph"
)

// Streaming-build equivalence: folding a rank's scattered edges batch by
// batch and sealing must reproduce BuildLocalPar of the same edges exactly,
// and the rank-filtered scatter must reproduce the rank's slice of the full
// scatter exactly.

var streamPs = []int{1, 2, 4, 8}
var streamBatches = []int{1, 7, 97, 1 << 20}

func TestScatterEdgesRankMatchesPar(t *testing.T) {
	for _, fx := range testgraph.All {
		g := fx.Build()
		edges := g.Edges()
		for _, p := range streamPs {
			pt := part.Uniform(uint64(g.NumVertices()), p)
			for _, threads := range []int{1, 3} {
				full := graph.ScatterEdgesPar(pt, edges, threads)
				for rank := 0; rank < p; rank++ {
					got := graph.ScatterEdgesRank(pt, edges, rank, threads)
					want := full[rank]
					if len(got) != len(want) {
						t.Fatalf("%s p=%d rank=%d threads=%d: %d edges, want %d",
							fx.Name, p, rank, threads, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s p=%d rank=%d: edge %d = %v, want %v",
								fx.Name, p, rank, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// requireLocalGraphsEqual compares two local views through the accessor
// surface the counting phases use.
func requireLocalGraphsEqual(t *testing.T, tag string, got, want *graph.LocalGraph) {
	t.Helper()
	if got.NLocal() != want.NLocal() || got.NGhost() != want.NGhost() {
		t.Fatalf("%s: shape (%d,%d), want (%d,%d)",
			tag, got.NLocal(), got.NGhost(), want.NLocal(), want.NGhost())
	}
	gg, wg := got.Ghosts(), want.Ghosts()
	for i := range wg {
		if gg[i] != wg[i] {
			t.Fatalf("%s: ghost %d = %d, want %d", tag, i, gg[i], wg[i])
		}
	}
	for r := 0; r < want.Rows(); r++ {
		gr, wr := got.RowNeighbors(int32(r)), want.RowNeighbors(int32(r))
		if len(gr) != len(wr) {
			t.Fatalf("%s: row %d has %d entries, want %d", tag, r, len(gr), len(wr))
		}
		for i := range wr {
			if gr[i] != wr[i] {
				t.Fatalf("%s: row %d entry %d = %d, want %d", tag, r, i, gr[i], wr[i])
			}
		}
		grr, wrr := got.RowNeighborRows(int32(r)), want.RowNeighborRows(int32(r))
		for i := range wrr {
			if grr[i] != wrr[i] {
				t.Fatalf("%s: row %d row-entry %d = %d, want %d", tag, r, i, grr[i], wrr[i])
			}
		}
		if got.Degree(int32(r)) != want.Degree(int32(r)) {
			t.Fatalf("%s: row %d degree %d, want %d", tag, r, got.Degree(int32(r)), want.Degree(int32(r)))
		}
	}
}

func TestStreamBuilderSealMatchesBuildLocalPar(t *testing.T) {
	for _, fx := range testgraph.All {
		g := fx.Build()
		edges := g.Edges()
		for _, p := range streamPs {
			pt := part.Uniform(uint64(g.NumVertices()), p)
			slices := graph.ScatterEdgesPar(pt, edges, 1)
			for rank := 0; rank < p; rank++ {
				want := graph.BuildLocalPar(pt, rank, slices[rank], 1)
				for _, batch := range streamBatches {
					for _, threads := range []int{1, 3} {
						sb := graph.NewStreamBuilder(pt, rank)
						mine := slices[rank]
						for lo := 0; lo < len(mine); lo += batch {
							sb.Fold(mine[lo:min(lo+batch, len(mine))], threads)
						}
						got := sb.Seal(threads)
						requireLocalGraphsEqual(t, fx.Name, got, want)
					}
				}
			}
		}
	}
}

// TestStreamBuilderSealShuffled checks that arrival order does not matter:
// the sealed view of a shuffled, duplicated edge stream equals the ordered
// build.
func TestStreamBuilderSealShuffled(t *testing.T) {
	g := testgraph.All[0].Build()
	edges := g.Edges()
	pt := part.Uniform(uint64(g.NumVertices()), 4)
	want := graph.BuildLocalPar(pt, 1, graph.ScatterEdgesPar(pt, edges, 1)[1], 1)

	rng := rand.New(rand.NewSource(7))
	stream := append(append([]graph.Edge{}, edges...), edges[:len(edges)/2]...) // re-sent edges
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	sb := graph.NewStreamBuilder(pt, 1)
	for lo := 0; lo < len(stream); lo += 13 {
		batch := stream[lo:min(lo+13, len(stream))]
		sb.Fold(graph.ScatterEdgesRank(pt, batch, 1, 1), 1)
	}
	requireLocalGraphsEqual(t, "shuffled", sb.Seal(1), want)
}

// TestStreamBuilderSealRelease checks the releasing variant produces the
// identical view and leaves the builder spent.
func TestStreamBuilderSealRelease(t *testing.T) {
	for _, fx := range testgraph.All[:4] {
		g := fx.Build()
		edges := g.Edges()
		pt := part.Uniform(uint64(g.NumVertices()), 4)
		slices := graph.ScatterEdgesPar(pt, edges, 1)
		for rank := 0; rank < 4; rank++ {
			want := graph.BuildLocalPar(pt, rank, slices[rank], 1)
			for _, threads := range []int{1, 3} {
				sb := graph.NewStreamBuilder(pt, rank)
				mine := slices[rank]
				for lo := 0; lo < len(mine); lo += 29 {
					sb.Fold(mine[lo:min(lo+29, len(mine))], 1)
				}
				requireLocalGraphsEqual(t, fx.Name+"/release", sb.SealRelease(threads), want)
			}
		}
	}
	// A released builder is spent: staging into it must panic.
	pt := part.Uniform(8, 2)
	sb := graph.NewStreamBuilder(pt, 0)
	sb.Fold([]graph.Edge{{U: 0, V: 5}}, 1)
	sb.SealRelease(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic staging into a released builder")
		}
	}()
	sb.Stage([]graph.Edge{{U: 1, V: 2}}, 1)
}

func TestStreamBuilderStageSemantics(t *testing.T) {
	pt := part.Uniform(8, 2) // rank 0 owns [0,4)
	sb := graph.NewStreamBuilder(pt, 0)
	sb.Fold([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 5}}, 1)
	if sb.Entries() != 3 { // 0-1 twice, 1-5 once
		t.Fatalf("resident entries = %d, want 3", sb.Entries())
	}

	// Batch: a self-loop (dropped), a duplicate of a resident edge
	// (subtracted), an intra-batch duplicate (deduplicated), and new edges.
	sb.Stage([]graph.Edge{
		{U: 2, V: 2},         // self-loop
		{U: 0, V: 1},         // resident duplicate
		{U: 1, V: 6}, {6, 1}, // intra-batch duplicate
		{U: 0, V: 7}, // new cut edge
	}, 1)
	if got := sb.StagedEntries(); got != 2 {
		t.Fatalf("staged entries = %d, want 2", got)
	}
	if d := sb.StagedRowOf(1); len(d) != 1 || d[0] != 6 {
		t.Fatalf("Δ(1) = %v, want [6]", d)
	}
	if d := sb.StagedRowOf(0); len(d) != 1 || d[0] != 7 {
		t.Fatalf("Δ(0) = %v, want [7]", d)
	}
	// Resident rows unchanged until Commit.
	if r := sb.Row(1); len(r) != 2 {
		t.Fatalf("pre-commit row 1 = %v, want 2 entries", r)
	}
	sb.Commit(1)
	if r := sb.Row(1); len(r) != 3 || r[0] != 0 || r[1] != 5 || r[2] != 6 {
		t.Fatalf("post-commit row 1 = %v, want [0 5 6]", r)
	}
	if sb.Entries() != 5 {
		t.Fatalf("post-commit entries = %d, want 5", sb.Entries())
	}
	if len(sb.Staged()) != 0 {
		t.Fatalf("staged rows not cleared: %v", sb.Staged())
	}
}

func TestStreamBuilderMisuse(t *testing.T) {
	requirePanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	pt := part.Uniform(8, 2)
	sb := graph.NewStreamBuilder(pt, 0)
	sb.Stage([]graph.Edge{{U: 0, V: 1}}, 1)
	requirePanic("double stage", func() { sb.Stage(nil, 1) })
	requirePanic("seal with staged", func() { sb.Seal(1) })
	sb.Commit(1)
	requirePanic("commit without stage", func() { sb.Commit(1) })
	requirePanic("foreign edge", func() { sb.Stage([]graph.Edge{{U: 5, V: 6}}, 1) })
}

// BenchmarkStreamInsertSteadyState pins the per-batch insert path: staging
// and committing a batch whose edges are already resident must not allocate
// once the retained scratch has warmed up (CI allocation gate).
func BenchmarkStreamInsertSteadyState(b *testing.B) {
	g := gen.GNM(1<<10, 1<<13, 1)
	pt := part.Uniform(uint64(g.NumVertices()), 2)
	mine := graph.ScatterEdgesRank(pt, g.Edges(), 0, 1)
	sb := graph.NewStreamBuilder(pt, 0)
	sb.Fold(mine, 1)
	batch := mine[:min(256, len(mine))]
	// Warm the retained scratch.
	sb.Stage(batch, 1)
	sb.Commit(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Stage(batch, 1)
		sb.Commit(1)
	}
}

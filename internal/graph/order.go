package graph

// The degree-based total order ≺ from COMPACT-FORWARD (Latapy):
//
//	u ≺ v  ⇔  d(u) < d(v), or d(u) == d(v) and u < v.
//
// Orienting every edge from its ≺-smaller to its ≺-larger endpoint makes the
// out-degree of high-degree vertices small and lets EDGE ITERATOR count every
// triangle exactly once.

// Less reports whether u ≺ v given their degrees.
func Less(du int, u Vertex, dv int, v Vertex) bool {
	if du != dv {
		return du < dv
	}
	return u < v
}

// OutGraph is a degree-oriented view of an undirected graph: Out(v) holds the
// outgoing neighborhood N⁺(v) = {u : v ≺ u}, sorted ascending by vertex ID so
// two out-neighborhoods can be intersected by a merge.
type OutGraph struct {
	off []int64
	out []Vertex
}

// Orient builds the COMPACT-FORWARD orientation of g.
func Orient(g *Graph) *OutGraph {
	n := g.NumVertices()
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		dv := g.Degree(Vertex(v))
		cnt := int64(0)
		for _, u := range g.Neighbors(Vertex(v)) {
			if Less(dv, Vertex(v), g.Degree(u), u) {
				cnt++
			}
		}
		off[v+1] = off[v] + cnt
	}
	out := make([]Vertex, off[n])
	for v := 0; v < n; v++ {
		dv := g.Degree(Vertex(v))
		w := off[v]
		for _, u := range g.Neighbors(Vertex(v)) {
			if Less(dv, Vertex(v), g.Degree(u), u) {
				out[w] = u
				w++
			}
		}
	}
	return &OutGraph{off: off, out: out}
}

// OrientByID orients edges from lower to higher vertex ID, ignoring degrees.
// TriC-style algorithms that skip the degree orientation use this.
func OrientByID(g *Graph) *OutGraph {
	n := g.NumVertices()
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		cnt := int64(0)
		for _, u := range g.Neighbors(Vertex(v)) {
			if u > Vertex(v) {
				cnt++
			}
		}
		off[v+1] = off[v] + cnt
	}
	out := make([]Vertex, off[n])
	for v := 0; v < n; v++ {
		w := off[v]
		for _, u := range g.Neighbors(Vertex(v)) {
			if u > Vertex(v) {
				out[w] = u
				w++
			}
		}
	}
	return &OutGraph{off: off, out: out}
}

// NumVertices returns n.
func (o *OutGraph) NumVertices() int { return len(o.off) - 1 }

// Out returns N⁺(v), sorted ascending. The slice aliases internal storage.
func (o *OutGraph) Out(v Vertex) []Vertex { return o.out[o.off[v]:o.off[v+1]] }

// OutDegree returns |N⁺(v)|.
func (o *OutGraph) OutDegree(v Vertex) int { return int(o.off[v+1] - o.off[v]) }

// Wedges returns the number of ordered open wedges Σ_v C(d⁺(v), 2) on the
// oriented graph — the quantity reported in Table I of the paper.
func (o *OutGraph) Wedges() uint64 {
	var total uint64
	for v := 0; v < o.NumVertices(); v++ {
		d := uint64(o.OutDegree(Vertex(v)))
		total += d * (d - 1) / 2
	}
	return total
}

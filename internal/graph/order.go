package graph

// The degree-based total order ≺ from COMPACT-FORWARD (Latapy):
//
//	u ≺ v  ⇔  d(u) < d(v), or d(u) == d(v) and u < v.
//
// Orienting every edge from its ≺-smaller to its ≺-larger endpoint makes the
// out-degree of high-degree vertices small and lets EDGE ITERATOR count every
// triangle exactly once.

// Less reports whether u ≺ v given their degrees.
func Less(du int, u Vertex, dv int, v Vertex) bool {
	if du != dv {
		return du < dv
	}
	return u < v
}

// OutGraph is a degree-oriented view of an undirected graph: Out(v) holds the
// outgoing neighborhood N⁺(v) = {u : v ≺ u}, sorted ascending by vertex ID so
// two out-neighborhoods can be intersected by a merge. BuildHubs additionally
// indexes heavy out-lists as packed bitmaps (the vertex domain is already
// dense), turning hub intersections into bit tests / word-AND + popcount.
type OutGraph struct {
	off  []int64
	out  []Vertex
	hubs hubIndex
}

// BuildHubs builds the packed hub-bitmap index: vertices with |N⁺(v)| ≥
// minDeg get a bitset over the vertex domain, memory-capped at the size of
// the out-lists themselves (largest rows first). minDeg ≤ 0 disables it.
func (o *OutGraph) BuildHubs(minDeg int) { o.BuildHubsPar(minDeg, 1) }

// BuildHubsPar is BuildHubs with the bitmap fills fanned out over threads
// workers.
func (o *OutGraph) BuildHubsPar(minDeg, threads int) {
	o.hubs = buildHubs(o.NumVertices(), o.NumVertices(), o.off, o.out, minDeg, threads)
}

// NumHubs returns the number of vertices carrying a hub bitmap.
func (o *OutGraph) NumHubs() int { return o.hubs.hubs }

// HubBitset returns the packed bitmap of a hub vertex, or nil.
func (o *OutGraph) HubBitset(v Vertex) Bitset { return o.hubs.bitset(int(v)) }

// CountListWith returns |list ∩ N⁺(u)| for an ascending vertex list — the
// hoisted-first-operand hot path: callers slice N⁺(v) once per row and pay
// one hub lookup per pair.
func (o *OutGraph) CountListWith(list []Vertex, u Vertex) uint64 {
	if bu := o.hubs.bitset(int(u)); bu != nil {
		return bu.CountList(list)
	}
	return CountIntersect(list, o.Out(u))
}

// ForEachCommonListWith calls fn for every element of list ∩ N⁺(u),
// ascending.
func (o *OutGraph) ForEachCommonListWith(list []Vertex, u Vertex, fn func(Vertex)) {
	if bu := o.hubs.bitset(int(u)); bu != nil {
		bu.ForEachCommonList(list, fn)
		return
	}
	ForEachCommon(list, o.Out(u), fn)
}

// CountPair returns |N⁺(v) ∩ N⁺(u)|, dispatching between the hub-bitmap,
// galloping, and branchless-merge kernels per pair.
func (o *OutGraph) CountPair(v, u Vertex) uint64 {
	bv, bu := o.hubs.bitset(int(v)), o.hubs.bitset(int(u))
	switch {
	case bv != nil && bu != nil:
		lv, lu := o.OutDegree(v), o.OutDegree(u)
		if min(lv, lu) < o.hubs.stride {
			if lv <= lu {
				return bu.CountList(o.Out(v))
			}
			return bv.CountList(o.Out(u))
		}
		return bv.CountAnd(bu)
	case bu != nil:
		return bu.CountList(o.Out(v))
	case bv != nil:
		return bv.CountList(o.Out(u))
	default:
		return CountIntersect(o.Out(v), o.Out(u))
	}
}

// Orient builds the COMPACT-FORWARD orientation of g.
func Orient(g *Graph) *OutGraph {
	n := g.NumVertices()
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		dv := g.Degree(Vertex(v))
		cnt := int64(0)
		for _, u := range g.Neighbors(Vertex(v)) {
			if Less(dv, Vertex(v), g.Degree(u), u) {
				cnt++
			}
		}
		off[v+1] = off[v] + cnt
	}
	out := make([]Vertex, off[n])
	for v := 0; v < n; v++ {
		dv := g.Degree(Vertex(v))
		w := off[v]
		for _, u := range g.Neighbors(Vertex(v)) {
			if Less(dv, Vertex(v), g.Degree(u), u) {
				out[w] = u
				w++
			}
		}
	}
	return &OutGraph{off: off, out: out}
}

// OrientByID orients edges from lower to higher vertex ID, ignoring degrees.
// TriC-style algorithms that skip the degree orientation use this.
func OrientByID(g *Graph) *OutGraph {
	n := g.NumVertices()
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		cnt := int64(0)
		for _, u := range g.Neighbors(Vertex(v)) {
			if u > Vertex(v) {
				cnt++
			}
		}
		off[v+1] = off[v] + cnt
	}
	out := make([]Vertex, off[n])
	for v := 0; v < n; v++ {
		w := off[v]
		for _, u := range g.Neighbors(Vertex(v)) {
			if u > Vertex(v) {
				out[w] = u
				w++
			}
		}
	}
	return &OutGraph{off: off, out: out}
}

// NumVertices returns n.
func (o *OutGraph) NumVertices() int { return len(o.off) - 1 }

// Out returns N⁺(v), sorted ascending. The slice aliases internal storage.
func (o *OutGraph) Out(v Vertex) []Vertex { return o.out[o.off[v]:o.off[v+1]] }

// OutDegree returns |N⁺(v)|.
func (o *OutGraph) OutDegree(v Vertex) int { return int(o.off[v+1] - o.off[v]) }

// Wedges returns the number of ordered open wedges Σ_v C(d⁺(v), 2) on the
// oriented graph — the quantity reported in Table I of the paper.
func (o *OutGraph) Wedges() uint64 {
	var total uint64
	for v := 0; v < o.NumVertices(); v++ {
		d := uint64(o.OutDegree(Vertex(v)))
		total += d * (d - 1) / 2
	}
	return total
}

package graph

import (
	"slices"
	"testing"
	"testing/quick"
)

func triangleEdges() []Edge {
	return []Edge{{0, 1}, {1, 2}, {0, 2}}
}

func TestFromEdgesBasics(t *testing.T) {
	g := FromEdges(3, triangleEdges())
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got n=%d m=%d, want 3/3", g.NumVertices(), g.NumEdges())
	}
	for v := Vertex(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}}
	g := FromEdges(3, edges)
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 (dedup + self-loop removal)", g.NumEdges())
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self loop survived")
	}
}

func TestFromEdgesPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	FromEdges(2, []Edge{{0, 5}})
}

func TestNeighborhoodsSortedAndSymmetric(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 50, 200)
		for v := 0; v < g.NumVertices(); v++ {
			nv := g.Neighbors(Vertex(v))
			if !slices.IsSorted(nv) {
				return false
			}
			for _, u := range nv {
				if !slices.Contains(g.Neighbors(u), Vertex(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHasEdge(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	cases := []struct {
		u, v Vertex
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {0, 2, false}, {3, 0, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestForEachEdgeCanonical(t *testing.T) {
	g := randomGraph(3, 40, 160)
	count := 0
	g.ForEachEdge(func(u, v Vertex) {
		if u >= v {
			t.Fatalf("non-canonical edge (%d,%d)", u, v)
		}
		count++
	})
	if count != g.NumEdges() {
		t.Fatalf("visited %d edges, want %d", count, g.NumEdges())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := randomGraph(7, 60, 300)
	g2 := FromEdges(g.NumVertices(), g.Edges())
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed m: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !slices.Equal(g.Neighbors(Vertex(v)), g2.Neighbors(Vertex(v))) {
			t.Fatalf("neighborhood of %d differs", v)
		}
	}
}

func TestOrientationPartitionsEdges(t *testing.T) {
	// Every undirected edge appears in exactly one of the two out-lists.
	check := func(seed uint64) bool {
		g := randomGraph(seed, 60, 240)
		o := Orient(g)
		total := 0
		for v := 0; v < g.NumVertices(); v++ {
			total += o.OutDegree(Vertex(v))
			for _, u := range o.Out(Vertex(v)) {
				// Antisymmetry: u must not also list v.
				if slices.Contains(o.Out(u), Vertex(v)) {
					return false
				}
				// Orientation property: v ≺ u.
				if !Less(g.Degree(Vertex(v)), Vertex(v), g.Degree(u), u) {
					return false
				}
			}
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLessIsTotalOrder(t *testing.T) {
	type vd struct {
		v Vertex
		d int
	}
	vs := []vd{{0, 3}, {1, 3}, {2, 1}, {3, 7}, {4, 3}}
	for _, a := range vs {
		for _, b := range vs {
			la := Less(a.d, a.v, b.d, b.v)
			lb := Less(b.d, b.v, a.d, a.v)
			if a.v == b.v {
				if la || lb {
					t.Fatal("irreflexivity violated")
				}
				continue
			}
			if la == lb {
				t.Fatalf("totality/antisymmetry violated for %v %v", a, b)
			}
		}
	}
}

func TestOrientReducesMaxOutDegree(t *testing.T) {
	// A star: the hub has degree n but out-degree 0 under degree orientation.
	var edges []Edge
	for v := 1; v <= 50; v++ {
		edges = append(edges, Edge{0, Vertex(v)})
	}
	g := FromEdges(51, edges)
	o := Orient(g)
	if d := o.OutDegree(0); d != 0 {
		t.Fatalf("hub out-degree %d, want 0", d)
	}
}

func TestOrientedWedgesCompleteGraph(t *testing.T) {
	// For K_n the degree orientation is a total order, so out-degrees are
	// 0..n-1 and Σ C(d⁺,2) = C(n,3).
	n := 10
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{Vertex(u), Vertex(v)})
		}
	}
	g := FromEdges(n, edges)
	want := uint64(n * (n - 1) * (n - 2) / 6)
	if w := Orient(g).Wedges(); w != want {
		t.Fatalf("wedges = %d, want %d", w, want)
	}
}

func TestOrientByID(t *testing.T) {
	g := randomGraph(11, 40, 200)
	o := OrientByID(g)
	total := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range o.Out(Vertex(v)) {
			if u <= Vertex(v) {
				t.Fatalf("ID orientation violated: %d -> %d", v, u)
			}
			total++
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("oriented %d edges, want %d", total, g.NumEdges())
	}
}

func TestRemoveIsolated(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 2}, {2, 4}})
	g2, remap := RemoveIsolated(g)
	if g2.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3", g2.NumVertices())
	}
	if g2.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g2.NumEdges())
	}
	for _, iso := range []int{1, 3, 5} {
		if remap[iso] != -1 {
			t.Fatalf("isolated vertex %d not removed", iso)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := FromEdges(3, triangleEdges())
	s := ComputeStats(g)
	if s.N != 3 || s.M != 3 || s.MaxDegree != 2 || s.Wedges != 1 {
		t.Fatalf("unexpected stats %+v", s)
	}
	if s.AvgDegree != 2 {
		t.Fatalf("avg degree %v, want 2", s.AvgDegree)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	h := DegreeHistogram(g)
	if h[1] != 3 || h[3] != 1 {
		t.Fatalf("unexpected histogram %v", h)
	}
}

// randomGraph builds a deterministic pseudo-random multigraph input (with
// intentional duplicates and self loops to exercise cleaning).
func randomGraph(seed uint64, n, m int) *Graph {
	s := seed
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{next() % uint64(n), next() % uint64(n)}
	}
	return FromEdges(n, edges)
}

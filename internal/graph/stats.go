package graph

// Stats summarizes an instance the way Table I of the paper does.
type Stats struct {
	N         int // vertices
	M         int // undirected edges
	MaxDegree int
	Wedges    uint64 // Σ_v C(d⁺(v),2) on the degree-oriented graph
	AvgDegree float64
}

// ComputeStats gathers instance statistics (triangles are counted by the
// algorithms in internal/core, not here, to avoid an import cycle).
func ComputeStats(g *Graph) Stats {
	o := Orient(g)
	s := Stats{
		N:         g.NumVertices(),
		M:         g.NumEdges(),
		MaxDegree: g.MaxDegree(),
		Wedges:    o.Wedges(),
	}
	if s.N > 0 {
		s.AvgDegree = 2 * float64(s.M) / float64(s.N)
	}
	return s
}

// DegreeHistogram returns counts of vertices per degree, up to the maximum
// degree.
func DegreeHistogram(g *Graph) []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.Degree(Vertex(v))]++
	}
	return h
}

// RemoveIsolated relabels the graph without degree-0 vertices, as the paper
// does for its inputs ("we remove vertices with no neighbors"). It returns
// the new graph and the mapping old ID -> new ID (or -1 if removed).
func RemoveIsolated(g *Graph) (*Graph, []int64) {
	n := g.NumVertices()
	remap := make([]int64, n)
	next := int64(0)
	for v := 0; v < n; v++ {
		if g.Degree(Vertex(v)) > 0 {
			remap[v] = next
			next++
		} else {
			remap[v] = -1
		}
	}
	edges := make([]Edge, 0, g.NumEdges())
	g.ForEachEdge(func(u, v Vertex) {
		edges = append(edges, Edge{Vertex(remap[u]), Vertex(remap[v])})
	})
	return FromEdges(int(next), edges), remap
}

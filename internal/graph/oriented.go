package graph

import "fmt"

// LocalOriented holds the degree-oriented out-neighborhoods A(v) of a PE's
// expanded local graph (Algorithm 3, lines 3–4):
//
//	local v: A(v) = {x ∈ N(v) | v ≺ x}
//	ghost v: A(v) = {x ∈ N(v) | v ≺ x ∧ x local}   (only local edges visible)
//
// Entries are global IDs sorted ascending. Building it requires ghost
// degrees, i.e. exchange_ghost_degree must have run.
type LocalOriented struct {
	L   *LocalGraph
	off []int64
	out []Vertex
}

// OrientLocal computes the A-lists for every row (locals and ghosts).
func OrientLocal(l *LocalGraph) *LocalOriented {
	rows := l.Rows()
	off := make([]int64, rows+1)
	for r := 0; r < rows; r++ {
		if l.Degree(int32(r)) < 0 {
			panic(fmt.Sprintf("graph: ghost degree of row %d unknown on PE %d; run the degree exchange first", r, l.Rank))
		}
	}
	for r := 0; r < rows; r++ {
		v := l.GID(int32(r))
		dv := l.Degree(int32(r))
		cnt := int64(0)
		for _, x := range l.RowNeighbors(int32(r)) {
			if Less(dv, v, l.Degree(l.Row(x)), x) {
				cnt++
			}
		}
		off[r+1] = off[r] + cnt
	}
	out := make([]Vertex, off[rows])
	for r := 0; r < rows; r++ {
		v := l.GID(int32(r))
		dv := l.Degree(int32(r))
		w := off[r]
		for _, x := range l.RowNeighbors(int32(r)) {
			if Less(dv, v, l.Degree(l.Row(x)), x) {
				out[w] = x
				w++
			}
		}
	}
	return &LocalOriented{L: l, off: off, out: out}
}

// Out returns A(row), global IDs sorted ascending. Aliases internal storage.
func (o *LocalOriented) Out(row int32) []Vertex { return o.out[o.off[row]:o.off[row+1]] }

// OutDegree returns |A(row)|.
func (o *LocalOriented) OutDegree(row int32) int { return int(o.off[row+1] - o.off[row]) }

// TotalOut returns the total number of A-list entries across all rows.
func (o *LocalOriented) TotalOut() int { return len(o.out) }

// Contract applies the contraction step (Algorithm 3, line 8): for every
// local vertex, keep only the out-neighbors that are ghosts (cut out-edges);
// ghost rows become empty. The result is the PE's part of the cut graph ∂G,
// restricted to outgoing edges.
func (o *LocalOriented) Contract() *LocalOriented {
	l := o.L
	rows := l.Rows()
	off := make([]int64, rows+1)
	for r := 0; r < l.NLocal(); r++ {
		cnt := int64(0)
		for _, x := range o.Out(int32(r)) {
			if !l.IsLocal(x) {
				cnt++
			}
		}
		off[r+1] = off[r] + cnt
	}
	for r := l.NLocal(); r < rows; r++ {
		off[r+1] = off[r]
	}
	out := make([]Vertex, off[rows])
	for r := 0; r < l.NLocal(); r++ {
		w := off[r]
		for _, x := range o.Out(int32(r)) {
			if !l.IsLocal(x) {
				out[w] = x
				w++
			}
		}
	}
	return &LocalOriented{L: l, off: off, out: out}
}

// OrientLocalOnly computes A-lists for local rows only, leaving ghost rows
// empty. DITRIC uses this: it never expands ghost neighborhoods, which is
// exactly the preprocessing work it saves compared to CETRIC.
func OrientLocalOnly(l *LocalGraph) *LocalOriented {
	rows := l.Rows()
	off := make([]int64, rows+1)
	for r := 0; r < l.NLocal(); r++ {
		v := l.GID(int32(r))
		dv := l.Degree(int32(r))
		cnt := int64(0)
		for _, x := range l.RowNeighbors(int32(r)) {
			if Less(dv, v, l.Degree(l.Row(x)), x) {
				cnt++
			}
		}
		off[r+1] = off[r] + cnt
	}
	for r := l.NLocal(); r < rows; r++ {
		off[r+1] = off[r]
	}
	out := make([]Vertex, off[rows])
	for r := 0; r < l.NLocal(); r++ {
		v := l.GID(int32(r))
		dv := l.Degree(int32(r))
		w := off[r]
		for _, x := range l.RowNeighbors(int32(r)) {
			if Less(dv, v, l.Degree(l.Row(x)), x) {
				out[w] = x
				w++
			}
		}
	}
	return &LocalOriented{L: l, off: off, out: out}
}

// OrientLocalByID orients the expanded local graph by vertex ID only (no
// degrees), used by the TriC baseline which skips the degree orientation.
// It needs no ghost-degree exchange.
func OrientLocalByID(l *LocalGraph) *LocalOriented {
	rows := l.Rows()
	off := make([]int64, rows+1)
	for r := 0; r < rows; r++ {
		v := l.GID(int32(r))
		cnt := int64(0)
		for _, x := range l.RowNeighbors(int32(r)) {
			if x > v {
				cnt++
			}
		}
		off[r+1] = off[r] + cnt
	}
	out := make([]Vertex, off[rows])
	for r := 0; r < rows; r++ {
		v := l.GID(int32(r))
		w := off[r]
		for _, x := range l.RowNeighbors(int32(r)) {
			if x > v {
				out[w] = x
				w++
			}
		}
	}
	return &LocalOriented{L: l, off: off, out: out}
}

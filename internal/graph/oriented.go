package graph

import (
	"fmt"
	"slices"
)

// LocalOriented holds the degree-oriented out-neighborhoods A(v) of a PE's
// expanded local graph (Algorithm 3, lines 3–4):
//
//	local v: A(v) = {x ∈ N(v) | v ≺ x}
//	ghost v: A(v) = {x ∈ N(v) | v ≺ x ∧ x local}   (only local edges visible)
//
// Two aligned layouts are kept per row:
//
//   - Out(row): global IDs sorted ascending — the shape neighborhoods are
//     shipped in (message payloads need no translation, and the sorted IDs
//     are what the delta-varint wire codec compresses).
//   - OutRows(row): the same set translated to row indices, sorted ascending
//     by row — the shape every local intersection runs on, so the hot loops
//     never touch the ghost map and can use the packed hub bitmaps.
//
// Building either requires ghost degrees, i.e. exchange_ghost_degree must
// have run (except for the by-ID orientation).
type LocalOriented struct {
	L      *LocalGraph
	off    []int64
	out    []Vertex // global IDs, ascending per row
	rowOut []Vertex // row indices, ascending per row
	hubs   hubIndex
}

// DefaultHubMinDegree is the out-degree above which a row gets a packed
// bitmap in BuildHubs when the caller does not tune the threshold. Degree
// orientation keeps out-lists short (the top A-lists of the RGG/RHG
// fixtures are in the tens, not hundreds), so the default is deliberately
// low: the bitmap kernel already beats the merge at equal operand sizes
// (BenchmarkIntersect), rows this heavy are intersected once per in-edge so
// the O(stride) build cost amortizes, and the memory cap in BuildHubs
// bounds the total bitmap footprint to the size of the A-lists themselves
// regardless of the threshold.
const DefaultHubMinDegree = 32

// hubIndex maps heavy rows to packed bitsets over the row domain, so
// hub ∩ anything becomes bit tests (or word-AND + popcount for hub ∩ hub).
// perRow holds one slice header per row (nil for non-hubs): a single load
// on the per-pair hot path, which matters more than the pointer overhead.
type hubIndex struct {
	stride int
	perRow []Bitset
	hubs   int
	bits   []uint64
}

func (h *hubIndex) bitset(row int) Bitset {
	if h.perRow == nil {
		return nil
	}
	return h.perRow[row]
}

// buildHubs indexes rows with list length ≥ minDeg, capping total bitmap
// memory at the memory of the lists themselves (one word per entry): with
// stride words per bitmap, at most len(entries)/stride rows get one, largest
// rows first. minDeg ≤ 0 disables the index. The bitset domain is the entry
// value range — for the row-translated 1D layouts that equals the row
// count, while 2D blocks index one band's rows with entries from another
// band. Candidate selection is sequential (cheap); the bitmap fills fan out
// over threads workers — each hub owns a disjoint stride of the backing
// word array.
func buildHubs(rows, domain int, off []int64, entries []Vertex, minDeg, threads int) hubIndex {
	var h hubIndex
	if minDeg <= 0 || rows == 0 || domain == 0 || len(entries) == 0 {
		return h
	}
	h.stride = BitsetWords(domain)
	maxHubs := len(entries) / h.stride
	if maxHubs == 0 {
		return h
	}
	var cand []int32
	for r := 0; r < rows; r++ {
		if int(off[r+1]-off[r]) >= minDeg {
			cand = append(cand, int32(r))
		}
	}
	if len(cand) == 0 {
		return h
	}
	if len(cand) > maxHubs {
		// Keep the heaviest rows; ties broken by row for determinism.
		slices.SortFunc(cand, func(a, b int32) int {
			da, db := off[a+1]-off[a], off[b+1]-off[b]
			if da != db {
				return int(db - da)
			}
			return int(a - b)
		})
		cand = cand[:maxHubs]
	}
	h.perRow = make([]Bitset, rows)
	h.hubs = len(cand)
	h.bits = make([]uint64, len(cand)*h.stride)
	parallelFor(threads, len(cand), 4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := cand[i]
			bs := Bitset(h.bits[i*h.stride : (i+1)*h.stride])
			for _, x := range entries[off[r]:off[r+1]] {
				bs.Set(x)
			}
			h.perRow[r] = bs
		}
	})
	return h
}

// BuildHubs builds the packed hub-bitmap index over the row-translated
// A-lists: rows with |A(v)| ≥ minDeg get a bitset over the row domain
// (memory-capped; see buildHubs). minDeg ≤ 0 disables the index, leaving
// every intersection on the merge/gallop kernels. Sequential; BuildHubsPar
// is the threaded variant.
func (o *LocalOriented) BuildHubs(minDeg int) { o.BuildHubsPar(minDeg, 1) }

// BuildHubsPar is BuildHubs with the bitmap fills fanned out over threads
// workers (hubs own disjoint strides of the backing array).
func (o *LocalOriented) BuildHubsPar(minDeg, threads int) {
	o.hubs = buildHubs(o.L.Rows(), o.L.Rows(), o.off, o.rowOut, minDeg, threads)
}

// NumHubs returns the number of rows carrying a hub bitmap.
func (o *LocalOriented) NumHubs() int { return o.hubs.hubs }

// orientDegree builds both layouts for the degree orientation over rows
// [0,hi); rows [hi,Rows) stay empty. The ≺ test runs on the row-translated
// adjacency (l.deg[xr], no ghost-map lookups) and is written out, not passed
// as a closure — an indirect call per adjacency entry is measurable here.
//
// Two-pass counting layout, both passes parallel over rows (rows are
// independent): a count pass fills the per-row out-degrees, a sequential
// prefix sum turns them into offsets, and a placement pass fills both
// layouts in one sweep per row — the adjacency is sorted by global ID, local
// rows translate in place, ghost rows (which sort after all locals and are
// in ID order already) are buffered per worker and appended, so no
// comparison sort is needed.
func orientDegree(l *LocalGraph, hi, threads int) *LocalOriented {
	rows := l.Rows()
	off := make([]int64, rows+1)
	parallelFor(threads, hi, orientChunk, func(_, rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			v, dv := l.GID(int32(r)), l.Degree(int32(r))
			adj := l.RowNeighbors(int32(r))
			adjR := l.RowNeighborRows(int32(r))
			cnt := int64(0)
			for i, x := range adj {
				if Less(dv, v, l.deg[adjR[i]], x) {
					cnt++
				}
			}
			off[r+1] = cnt
		}
	})
	for r := 0; r < rows; r++ {
		off[r+1] += off[r]
	}
	o := &LocalOriented{L: l, off: off,
		out: make([]Vertex, off[rows]), rowOut: make([]Vertex, off[rows])}
	scratch := make([][]Vertex, workersFor(threads, hi, orientChunk))
	nLoc := int32(l.NLocal())
	parallelFor(threads, hi, orientChunk, func(worker, rlo, rhi int) {
		ghosts := scratch[worker] // per-worker scratch for ghost row indices
		for r := rlo; r < rhi; r++ {
			v, dv := l.GID(int32(r)), l.Degree(int32(r))
			adj := l.RowNeighbors(int32(r))
			adjR := l.RowNeighborRows(int32(r))
			w, rw := off[r], off[r]
			ghosts = ghosts[:0]
			for i, x := range adj {
				xr := adjR[i]
				if !Less(dv, v, l.deg[xr], x) {
					continue
				}
				o.out[w] = x
				w++
				if xr < nLoc {
					o.rowOut[rw] = Vertex(xr)
					rw++
				} else {
					ghosts = append(ghosts, Vertex(xr))
				}
			}
			copy(o.rowOut[rw:off[r+1]], ghosts)
		}
		scratch[worker] = ghosts
	})
	return o
}

// orientChunk is the number of rows per stolen chunk in the orientation,
// contraction, and row sort/dedup passes.
const orientChunk = 128

// requireDegrees panics unless every ghost degree is known: degree
// orientation compares against the degrees of neighbors, which may be ghosts
// even when only local rows are oriented.
func requireDegrees(l *LocalGraph) {
	for r := 0; r < l.Rows(); r++ {
		if l.Degree(int32(r)) < 0 {
			panic(fmt.Sprintf("graph: ghost degree of row %d unknown on PE %d; run the degree exchange first", r, l.Rank))
		}
	}
}

// OrientLocal computes the A-lists for every row (locals and ghosts).
func OrientLocal(l *LocalGraph) *LocalOriented { return OrientLocalPar(l, 1) }

// OrientLocalPar is OrientLocal over threads workers.
func OrientLocalPar(l *LocalGraph, threads int) *LocalOriented {
	requireDegrees(l)
	return orientDegree(l, l.Rows(), threads)
}

// OrientLocalOnly computes A-lists for local rows only, leaving ghost rows
// empty. DITRIC uses this: it never expands ghost neighborhoods, which is
// exactly the preprocessing work it saves compared to CETRIC.
func OrientLocalOnly(l *LocalGraph) *LocalOriented { return OrientLocalOnlyPar(l, 1) }

// OrientLocalOnlyPar is OrientLocalOnly over threads workers.
func OrientLocalOnlyPar(l *LocalGraph, threads int) *LocalOriented {
	requireDegrees(l)
	return orientDegree(l, l.NLocal(), threads)
}

// OrientLocalByID orients the expanded local graph by vertex ID only (no
// degrees), used by the TriC baseline which skips the degree orientation.
// It needs no ghost-degree exchange.
func OrientLocalByID(l *LocalGraph) *LocalOriented { return OrientLocalByIDPar(l, 1) }

// OrientLocalByIDPar is OrientLocalByID over threads workers — the same
// two-pass parallel structure as orientDegree, specialized for the x > v
// test.
func OrientLocalByIDPar(l *LocalGraph, threads int) *LocalOriented {
	rows := l.Rows()
	off := make([]int64, rows+1)
	parallelFor(threads, rows, orientChunk, func(_, rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			v := l.GID(int32(r))
			cnt := int64(0)
			for _, x := range l.RowNeighbors(int32(r)) {
				if x > v {
					cnt++
				}
			}
			off[r+1] = cnt
		}
	})
	for r := 0; r < rows; r++ {
		off[r+1] += off[r]
	}
	o := &LocalOriented{L: l, off: off,
		out: make([]Vertex, off[rows]), rowOut: make([]Vertex, off[rows])}
	scratch := make([][]Vertex, workersFor(threads, rows, orientChunk))
	nLoc := int32(l.NLocal())
	parallelFor(threads, rows, orientChunk, func(worker, rlo, rhi int) {
		ghosts := scratch[worker]
		for r := rlo; r < rhi; r++ {
			v := l.GID(int32(r))
			adj := l.RowNeighbors(int32(r))
			adjR := l.RowNeighborRows(int32(r))
			w, rw := off[r], off[r]
			ghosts = ghosts[:0]
			for i, x := range adj {
				if x <= v {
					continue
				}
				o.out[w] = x
				w++
				if xr := adjR[i]; xr < nLoc {
					o.rowOut[rw] = Vertex(xr)
					rw++
				} else {
					ghosts = append(ghosts, Vertex(xr))
				}
			}
			copy(o.rowOut[rw:off[r+1]], ghosts)
		}
		scratch[worker] = ghosts
	})
	return o
}

// Out returns A(row), global IDs sorted ascending. Aliases internal storage.
func (o *LocalOriented) Out(row int32) []Vertex { return o.out[o.off[row]:o.off[row+1]] }

// OutRows returns A(row) translated to row indices, sorted ascending by row.
// Aliases internal storage.
func (o *LocalOriented) OutRows(row int32) []Vertex { return o.rowOut[o.off[row]:o.off[row+1]] }

// OutDegree returns |A(row)|.
func (o *LocalOriented) OutDegree(row int32) int { return int(o.off[row+1] - o.off[row]) }

// TotalOut returns the total number of A-list entries across all rows.
func (o *LocalOriented) TotalOut() int { return len(o.out) }

// HubBitset returns the packed bitmap of a hub row, or nil.
func (o *LocalOriented) HubBitset(row int32) Bitset { return o.hubs.bitset(int(row)) }

// CountRowsWith returns |list ∩ A(row)| where list is an ascending slice of
// row indices, dispatching to the hub bitmap when row carries one and to the
// adaptive merge/gallop kernels otherwise.
func (o *LocalOriented) CountRowsWith(list []Vertex, row int32) uint64 {
	if bs := o.hubs.bitset(int(row)); bs != nil {
		return bs.CountList(list)
	}
	return CountIntersect(list, o.OutRows(row))
}

// ForEachCommonRowsWith calls fn for every row index in list ∩ A(row),
// ascending (the enumeration twin of CountRowsWith, for the Δ/collect path).
func (o *LocalOriented) ForEachCommonRowsWith(list []Vertex, row int32, fn func(Vertex)) {
	if bs := o.hubs.bitset(int(row)); bs != nil {
		bs.ForEachCommonList(list, fn)
		return
	}
	ForEachCommon(list, o.OutRows(row), fn)
}

// CountRowPair returns |A(a) ∩ A(b)| in row space. Hub pairs use word-AND +
// popcount when both lists are longer than the bitmap stride (otherwise bit
// tests over the shorter list win); single hubs use bit tests; the rest goes
// to the adaptive merge/gallop kernels.
func (o *LocalOriented) CountRowPair(a, b int32) uint64 {
	ba, bb := o.hubs.bitset(int(a)), o.hubs.bitset(int(b))
	switch {
	case ba != nil && bb != nil:
		la, lb := o.OutDegree(a), o.OutDegree(b)
		if min(la, lb) < o.hubs.stride {
			if la <= lb {
				return bb.CountList(o.OutRows(a))
			}
			return ba.CountList(o.OutRows(b))
		}
		return ba.CountAnd(bb)
	case bb != nil:
		return bb.CountList(o.OutRows(a))
	case ba != nil:
		return ba.CountList(o.OutRows(b))
	default:
		return CountIntersect(o.OutRows(a), o.OutRows(b))
	}
}

// Contract applies the contraction step (Algorithm 3, line 8): for every
// local vertex, keep only the out-neighbors that are ghosts (cut out-edges);
// ghost rows become empty. The result is the PE's part of the cut graph ∂G,
// restricted to outgoing edges. Hub bitmaps are not carried over; call
// BuildHubs on the result if the cut lists warrant them. Sequential;
// ContractPar is the threaded variant.
func (o *LocalOriented) Contract() *LocalOriented { return o.ContractPar(1) }

// ContractPar is Contract with the count and placement passes fanned out
// over threads workers (rows are independent).
func (o *LocalOriented) ContractPar(threads int) *LocalOriented {
	l := o.L
	rows := l.Rows()
	nLocal := l.NLocal()
	nLoc := Vertex(nLocal)
	off := make([]int64, rows+1)
	parallelFor(threads, nLocal, orientChunk, func(_, rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			cnt := int64(0)
			for _, x := range o.Out(int32(r)) {
				if !l.IsLocal(x) {
					cnt++
				}
			}
			off[r+1] = cnt
		}
	})
	for r := 0; r < rows; r++ {
		off[r+1] += off[r]
	}
	out := make([]Vertex, off[rows])
	rowOut := make([]Vertex, off[rows])
	parallelFor(threads, nLocal, orientChunk, func(_, rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			w := off[r]
			for _, x := range o.Out(int32(r)) {
				if !l.IsLocal(x) {
					out[w] = x
					w++
				}
			}
			// In row space the ghost entries are exactly the suffix ≥ NLocal
			// of the ascending row list.
			src := o.OutRows(int32(r))
			i := len(src)
			for i > 0 && src[i-1] >= nLoc {
				i--
			}
			copy(rowOut[off[r]:off[r+1]], src[i:])
		}
	})
	return &LocalOriented{L: l, off: off, out: out, rowOut: rowOut}
}

package graph

import (
	"sync"
	"sync/atomic"
)

// Hybrid-threaded preprocessing support: the builders in this package
// (ScatterEdgesPar, BuildLocalPar, the orientations, Contract, BuildHubs)
// are all structured as fused two-pass counting layouts — a parallel count
// pass, a sequential prefix sum over the counts, and a parallel placement
// pass into the exact-size output. The passes run over the same
// chunk-stealing worker model as core's hybrid local phase, so a rank's
// preprocessing uses the same thread budget as its counting phases.
//
// Every builder is deterministic in its result regardless of the thread
// count: placement order within a row may vary, but each row is sorted and
// deduplicated afterwards, so Threads > 1 produces byte-identical graphs to
// the sequential path.

// parallelChunk is the default number of items per stolen chunk; coarse
// enough that the atomic chunk counter never becomes the bottleneck.
const parallelChunk = 1024

// ParallelFor exposes the chunk-stealing worker loop to the packages above
// (core's ghost-degree reply construction reuses it): fn runs over [0, n)
// in dynamically stolen chunks of the default size, receiving the worker
// index for per-worker scratch and a half-open item range. One worker (or
// n small enough for one chunk) runs inline on the caller's goroutine; a
// panic in any worker is re-raised on the caller.
func ParallelFor(threads, n int, fn func(worker, lo, hi int)) {
	parallelFor(threads, n, parallelChunk, fn)
}

// workersFor returns the number of workers parallelFor will actually use:
// never more than one per chunk, never less than one. Callers allocating
// per-worker scratch size it with this.
func workersFor(threads, n, chunk int) int {
	if threads < 1 {
		threads = 1
	}
	if chunks := (n + chunk - 1) / chunk; threads > chunks {
		threads = chunks
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// parallelFor runs fn over [0, n) in dynamically stolen chunks. fn receives
// the worker index (for per-worker scratch) and a half-open item range.
// With one worker the single call fn(0, 0, n) runs inline on the caller's
// goroutine — the sequential path pays no goroutine, channel, or atomic
// cost. A panic in any worker is re-raised on the caller.
func parallelFor(threads, n, chunk int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := workersFor(threads, n, chunk)
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	for t := 0; t < w; t++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && panicked.CompareAndSwap(false, true) {
					panicVal = r
				}
			}()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(t)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// parallelBlocks splits [0, n) into one contiguous block per worker
// (static partitioning). Used where the output order must be a
// deterministic function of the input order — per-worker histograms plus
// worker-major placement reproduce the sequential layout exactly, which
// chunk stealing cannot guarantee. workers must come from workersFor.
func parallelBlocks(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var (
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	for t := 0; t < workers; t++ {
		lo, hi := blockRange(t, workers, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && panicked.CompareAndSwap(false, true) {
					panicVal = r
				}
			}()
			fn(worker, lo, hi)
		}(t, lo, hi)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// blockRange returns worker w's contiguous share of [0, n) when split over
// `workers` near-equal blocks (the first n mod workers blocks get one extra).
func blockRange(w, workers, n int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list I/O ("u v" per line, '#'/'%' comments) plus a compact
// binary format, so instances can be saved once and re-used across
// experiment runs.

// WriteEdgeListText writes one "u v" line per undirected edge.
func WriteEdgeListText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.ForEachEdge(func(u, v Vertex) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeListText parses a whitespace-separated edge list. Vertex IDs may be
// sparse; they are compacted to 0..n-1 in first-appearance order of the
// sorted ID set. Directed inputs are interpreted as undirected, as the paper
// does.
func ReadEdgeListText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var raw []Edge
	maxID := Vertex(0)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || s[0] == '#' || s[0] == '%' {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least two fields, got %q", line, s)
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		raw = append(raw, Edge{u, v})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return FromEdges(0, nil), nil
	}
	return FromEdges(int(maxID)+1, raw), nil
}

const binMagic = uint64(0x5452494752503031) // "TRIGRP01"

// WriteBinary writes the graph in a fixed little-endian format:
// magic, n, m, then m canonical (u,v) pairs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binMagic, uint64(g.NumVertices()), uint64(g.NumEdges())}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	var err error
	g.ForEachEdge(func(u, v Vertex) {
		if err == nil {
			err = binary.Write(bw, binary.LittleEndian, [2]uint64{u, v})
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Sanity bounds for ReadBinary headers, so corrupt or hostile files cannot
// trigger absurd allocations before the stream runs dry.
const (
	maxBinaryVertices = 1 << 34
	maxBinaryEdges    = 1 << 36
)

// ReadBinary reads the format written by WriteBinary. Header fields are
// bounds-checked and the edge array grows incrementally, so truncated or
// corrupt inputs fail with an error instead of attempting giant allocations.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if hdr[0] != binMagic {
		return nil, fmt.Errorf("graph: bad magic %x", hdr[0])
	}
	if hdr[1] > maxBinaryVertices || hdr[2] > maxBinaryEdges {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", hdr[1], hdr[2])
	}
	// The vertex allocation must be backed by actual stream content (the m
	// edges are read and validated below, before FromEdges allocates), so a
	// crafted header cannot cause a giant allocation from a tiny input.
	if hdr[1] > 2*hdr[2]+1<<16 {
		return nil, fmt.Errorf("graph: implausible header: n=%d with only m=%d edges", hdr[1], hdr[2])
	}
	n, m := int(hdr[1]), int(hdr[2])
	edges := make([]Edge, 0, min(m, 1<<20))
	for i := 0; i < m; i++ {
		var pair [2]uint64
		if err := binary.Read(br, binary.LittleEndian, &pair); err != nil {
			return nil, fmt.Errorf("graph: truncated edge list at %d/%d: %w", i, m, err)
		}
		if pair[0] >= uint64(n) || pair[1] >= uint64(n) {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", pair[0], pair[1], n)
		}
		edges = append(edges, Edge{pair[0], pair[1]})
	}
	return FromEdges(n, edges), nil
}

package graph

import (
	"fmt"
	"slices"

	"repro/internal/part"
)

// 2D block views of the oriented adjacency matrix. ScatterEdges2D deals the
// edge list into the r×c block grid of part.Grid2D (one slice per owning
// PE), and Block is the per-PE CSR over band-relative indices that the TK2D
// counting rounds broadcast and intersect. Rows are row-band-relative
// (rel(u) = u div r) and entries column-band-relative (rel(v) = v div c),
// which keeps the wire varints and the hub-bitmap domains r× resp. c×
// denser than global IDs. On rectangular grids each counting round ships a
// stripe of a block — the entries in one middle-vertex band mod
// L = lcm(r, c) — extracted and translated to round space by StripeInto.

// ScatterEdges2D deals edges into the block grid: each non-loop edge {u,v}
// is canon-oriented (U < V) and lands in exactly one slice, its block
// owner's. Self-loops are dropped (they belong to no block). Two-pass
// counting layout like ScatterEdgesPar: per-worker owner histograms, prefix
// sums, direct placement; the output is byte-identical for every thread
// count.
func ScatterEdges2D(g2 *part.Grid2D, edges []Edge, threads int) [][]Edge {
	p := g2.P()
	out := make([][]Edge, p)
	if len(edges) == 0 {
		return out
	}
	w := workersFor(threads, len(edges), parallelChunk)
	owners := make([]int32, len(edges))
	cnt := make([]int64, w*p)
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		c := cnt[worker*p : (worker+1)*p]
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				owners[i] = -1
				continue
			}
			o := int32(g2.Owner(e.U, e.V))
			owners[i] = o
			c[o]++
		}
	})
	pos := make([]int64, w*p)
	for pe := 0; pe < p; pe++ {
		total := int64(0)
		for worker := 0; worker < w; worker++ {
			pos[worker*p+pe] = total
			total += cnt[worker*p+pe]
		}
		if total > 0 {
			out[pe] = make([]Edge, total)
		}
	}
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		cur := pos[worker*p : (worker+1)*p]
		for i := lo; i < hi; i++ {
			o := owners[i]
			if o < 0 {
				continue
			}
			out[o][cur[o]] = edges[i].Canon()
			cur[o]++
		}
	})
	return out
}

// ScatterEdges2DRank keeps only the edges owned by one block — what each
// process of a multi-process cluster runs so no process materializes all p
// slices.
func ScatterEdges2DRank(g2 *part.Grid2D, edges []Edge, rank, threads int) []Edge {
	w := workersFor(threads, len(edges), parallelChunk)
	cnt := make([]int64, w)
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		n := int64(0)
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U != e.V && g2.Owner(e.U, e.V) == rank {
				n++
			}
		}
		cnt[worker] = n
	})
	total := int64(0)
	for worker := 0; worker < w; worker++ {
		cnt[worker], total = total, total+cnt[worker]
	}
	out := make([]Edge, total)
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		cur := cnt[worker]
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U != e.V && g2.Owner(e.U, e.V) == rank {
				out[cur] = e.Canon()
				cur++
			}
		}
	})
	return out
}

// Block is one block of the oriented upper-triangular adjacency matrix in
// CSR form: row i (relative index within band bandRow) lists the relative
// indices, within band bandCol, of the larger endpoints v of edges (u, v)
// with rel(u) = i — ascending, deduplicated, each below domain (the entry
// band's size). A transposed block (built by Transpose, broadcast down grid
// columns) has the same shape with the roles swapped; a stripe (built by
// StripeInto, the rectangular-grid round operand) carries the counting
// round as bandCol and round-space entries. Blocks carry their dimensions
// explicitly rather than a grid pointer, since on rectangular grids row and
// entry indices live in different bandings (row/column/round).
type Block struct {
	bandRow, bandCol int
	domain           int      // entry band size: every col value is < domain
	off              []int64  // len NRows+1
	col              []Vertex // band-relative entries, ascending per row
	hubs             hubIndex
}

// BuildBlock2D assembles PE rank's block from its slice of the 2D scatter.
// Edges must be canon-oriented with bands matching the block (what
// ScatterEdges2D delivers); duplicates are merged. The two-pass layout plus
// per-row sort/dedup makes the result independent of the thread count.
func BuildBlock2D(g2 *part.Grid2D, rank int, edges []Edge, threads int) *Block {
	a, bc := g2.RowCol(rank)
	b := &Block{bandRow: a, bandCol: bc, domain: g2.BandSizeCol(bc)}
	nRows := g2.BandSizeRow(a)
	b.off = make([]int64, nRows+1)
	if len(edges) == 0 {
		return b
	}
	w := workersFor(threads, len(edges), parallelChunk)
	cnt := make([]int64, w*nRows)
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		h := cnt[worker*nRows : (worker+1)*nRows]
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U >= e.V || g2.BandRow(e.U) != a || g2.BandCol(e.V) != bc {
				panic(fmt.Sprintf("graph: edge (%d,%d) does not belong to block (%d,%d)", e.U, e.V, a, bc))
			}
			h[g2.RelRow(e.U)]++
		}
	})
	pos := make([]int64, w*nRows)
	total := int64(0)
	for row := 0; row < nRows; row++ {
		for worker := 0; worker < w; worker++ {
			pos[worker*nRows+row] = total
			total += cnt[worker*nRows+row]
		}
		b.off[row+1] = total
	}
	b.col = make([]Vertex, total)
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		cur := pos[worker*nRows : (worker+1)*nRows]
		for i := lo; i < hi; i++ {
			e := edges[i]
			row := g2.RelRow(e.U)
			b.col[cur[row]] = g2.RelCol(e.V)
			cur[row]++
		}
	})
	// Sort and dedup each row, recording the surviving length.
	kept := make([]int64, nRows)
	ParallelFor(threads, nRows, func(_, lo, hi int) {
		for row := lo; row < hi; row++ {
			seg := b.col[b.off[row]:b.off[row+1]]
			slices.Sort(seg)
			kept[row] = int64(len(slices.Compact(seg)))
		}
	})
	// Compact the deduplicated rows (sequential: rows move down in order).
	wpos := int64(0)
	for row := 0; row < nRows; row++ {
		start := b.off[row]
		b.off[row] = wpos
		wpos += int64(copy(b.col[wpos:], b.col[start:start+kept[row]]))
	}
	b.off[nRows] = wpos
	b.col = b.col[:wpos]
	return b
}

// BandRow returns the band indexing this block's rows.
func (b *Block) BandRow() int { return b.bandRow }

// BandCol returns the band its entries index.
func (b *Block) BandCol() int { return b.bandCol }

// Domain returns the entry band's size (every entry is < Domain).
func (b *Block) Domain() int { return b.domain }

// NRows returns the number of rows (the row band's size).
func (b *Block) NRows() int { return len(b.off) - 1 }

// NNZ returns the number of stored edges.
func (b *Block) NNZ() int { return len(b.col) }

// Row returns row rel's entries (band-relative, ascending).
func (b *Block) Row(rel int) []Vertex { return b.col[b.off[rel]:b.off[rel+1]] }

// Transpose returns the CSC view as a Block with the bands swapped: row j
// of the result lists the rel(u) of edges (u, v) with rel(v) = j. Entry
// order per row follows source row order, so rows come out ascending with
// no further sort.
func (b *Block) Transpose(threads int) *Block {
	t := &Block{bandRow: b.bandCol, bandCol: b.bandRow, domain: b.NRows()}
	nRowsT := b.domain
	t.off = make([]int64, nRowsT+1)
	nRows := b.NRows()
	w := workersFor(threads, nRows, 64)
	cnt := make([]int64, w*nRowsT)
	parallelBlocks(w, nRows, func(worker, lo, hi int) {
		h := cnt[worker*nRowsT : (worker+1)*nRowsT]
		for row := lo; row < hi; row++ {
			for _, v := range b.Row(row) {
				h[v]++
			}
		}
	})
	pos := make([]int64, w*nRowsT)
	total := int64(0)
	for row := 0; row < nRowsT; row++ {
		for worker := 0; worker < w; worker++ {
			pos[worker*nRowsT+row] = total
			total += cnt[worker*nRowsT+row]
		}
		t.off[row+1] = total
	}
	t.col = make([]Vertex, total)
	parallelBlocks(w, nRows, func(worker, lo, hi int) {
		cur := pos[worker*nRowsT : (worker+1)*nRowsT]
		for row := lo; row < hi; row++ {
			for _, v := range b.Row(row) {
				t.col[cur[v]] = Vertex(row)
				cur[v]++
			}
		}
	})
	return t
}

// StripeInto extracts into dst the entries congruent to residue modulo
// stride, translated to round space ((e − residue) / stride — an affine,
// order-preserving map), dropping rows that come up empty. round becomes
// dst's entry band and domain its entry domain (the round band's size).
// dst's off/col capacity is reused, so the steady-state exchange extracts
// without allocating. For stride 1 the stripe equals the whole block;
// callers skip the copy and use the block directly.
func (b *Block) StripeInto(dst *Block, round, residue, stride, domain int) {
	nRows := b.NRows()
	dst.bandRow, dst.bandCol, dst.domain = b.bandRow, round, domain
	if cap(dst.off) < nRows+1 {
		dst.off = make([]int64, nRows+1)
	}
	dst.off = dst.off[:nRows+1]
	dst.col = dst.col[:0]
	dst.hubs = hubIndex{}
	res, str := Vertex(residue), Vertex(stride)
	w := int64(0)
	for row := 0; row < nRows; row++ {
		dst.off[row] = w
		for _, v := range b.Row(row) {
			if v%str == res {
				dst.col = append(dst.col, (v-res)/str)
				w++
			}
		}
	}
	dst.off[nRows] = w
}

// BuildHubs indexes heavy rows with packed bitmaps over the entry band's
// domain (see buildHubs for the memory cap); minDeg ≤ 0 disables. Queries
// against a hub row become branchless bit tests, hub ∩ hub word-AND +
// popcount — the same kernels the 1D counters dispatch to.
func (b *Block) BuildHubs(minDeg, threads int) {
	b.hubs = buildHubs(b.NRows(), b.domain, b.off, b.col, minDeg, threads)
}

// Hub returns row rel's bitmap, nil when the row is not indexed.
func (b *Block) Hub(rel int) Bitset { return b.hubs.bitset(rel) }

// Wire serialization: only non-empty rows are shipped, each as
// (relGap, len, first, gap, gap, ...). Rows leave in ascending order, so
// the row index travels as a gap off the previous row (the first row
// absolute), and the entries within a row are gap-differenced too — under
// the varint wire codec both become delta-varint compression, without the
// codec needing to know record boundaries.

// AppendWire appends the block's wire words to dst and returns it.
func (b *Block) AppendWire(dst []uint64) []uint64 {
	used := uint64(0)
	for row := 0; row < b.NRows(); row++ {
		if b.off[row+1] > b.off[row] {
			used++
		}
	}
	dst = append(dst, uint64(b.bandRow), uint64(b.bandCol), used)
	prevRow := 0
	first := true
	for row := 0; row < b.NRows(); row++ {
		seg := b.Row(row)
		if len(seg) == 0 {
			continue
		}
		if first {
			dst = append(dst, uint64(row))
			first = false
		} else {
			dst = append(dst, uint64(row-prevRow))
		}
		prevRow = row
		dst = append(dst, uint64(len(seg)))
		prev := Vertex(0)
		for i, v := range seg {
			if i == 0 {
				dst = append(dst, v)
			} else {
				dst = append(dst, v-prev)
			}
			prev = v
		}
	}
	return dst
}

// DecodeBlockInto rebuilds a Block from wire words, validating the header
// against the bands the receiver expects for this round and sizing rows and
// entries by the caller-supplied dimensions (nRows rows, entries < domain).
// b's off and col capacity is reused, so the steady-state exchange decodes
// without allocating. The rows arrive ascending (AppendWire's order), so
// the CSR assembles in one pass.
func DecodeBlockInto(wire []uint64, bandRow, bandCol, nRows, domain int, b *Block) error {
	if len(wire) < 3 {
		return fmt.Errorf("graph: block wire truncated (%d words)", len(wire))
	}
	if int(wire[0]) != bandRow || int(wire[1]) != bandCol {
		return fmt.Errorf("graph: block wire names bands (%d,%d), expected (%d,%d)", wire[0], wire[1], bandRow, bandCol)
	}
	b.bandRow, b.bandCol, b.domain = bandRow, bandCol, domain
	used := int(wire[2])
	wire = wire[3:]
	if cap(b.off) < nRows+1 {
		b.off = make([]int64, nRows+1)
	}
	b.off = b.off[:nRows+1]
	b.col = b.col[:0]
	b.hubs = hubIndex{}
	w := int64(0)
	nextRow := 0
	for rec := 0; rec < used; rec++ {
		if len(wire) < 2 {
			return fmt.Errorf("graph: block wire truncated in record %d", rec)
		}
		// The first record carries its row absolute, later ones a gap off the
		// previous row (≥ 1: rows are strictly ascending on the wire).
		rel, ln := int(wire[0]), int(wire[1])
		if rec > 0 {
			rel += nextRow - 1 // nextRow is the previous record's row + 1
		}
		wire = wire[2:]
		if rel < nextRow || rel >= nRows || ln < 1 || ln > len(wire) {
			return fmt.Errorf("graph: block wire record %d malformed (rel=%d len=%d)", rec, rel, ln)
		}
		for ; nextRow <= rel; nextRow++ {
			b.off[nextRow] = w
		}
		prev := Vertex(0)
		for i := 0; i < ln; i++ {
			v := wire[i]
			if i > 0 {
				v += prev
			}
			if v >= Vertex(domain) || (i > 0 && v <= prev) {
				return fmt.Errorf("graph: block wire record %d entry %d out of order or range", rec, i)
			}
			b.col = append(b.col, v)
			prev = v
		}
		wire = wire[ln:]
		w += int64(ln)
	}
	if len(wire) != 0 {
		return fmt.Errorf("graph: %d trailing words after block wire", len(wire))
	}
	for ; nextRow <= nRows; nextRow++ {
		b.off[nextRow] = w
	}
	return nil
}

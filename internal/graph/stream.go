package graph

import (
	"fmt"

	"repro/internal/part"
)

// Streaming ingestion: the chunked counterpart of ScatterEdgesPar +
// BuildLocalPar. A one-shot run materializes the full global edge list and
// a complete p-way scatter before any PE starts building — O(|E|) words on
// the driver, the one place the reproduction still exceeded the paper's
// O(|E_i|) memory model. The streaming path instead scatters one batch at a
// time (ScatterEdgesRank keeps a single rank's slice) and folds each batch
// into a per-PE resident adjacency held by StreamBuilder, so peak driver
// memory drops to O(|E_i| + batch).
//
// StreamBuilder separates ingestion into two steps so the incremental
// counting driver (core.RunStream) can compute tri(G+Δ) − tri(G) between
// them:
//
//	Stage(batch)  — dedup the batch against itself and the resident rows,
//	                leaving per-row sorted lists of strictly-new neighbors Δ
//	Commit()      — merge Δ into the resident rows in place
//
// Fold = Stage + Commit is the plain loading path, and Seal materializes
// the resident adjacency through BuildLocalPar, so a sealed streamed build
// is byte-identical to the one-shot two-pass build of the same edges.

// ScatterEdgesRank returns only rank's slice of ScatterEdges(pt, edges):
// the edges incident to rank's vertex range, in input order —
// element-for-element identical to ScatterEdgesPar(pt, edges, threads)[rank]
// — without materializing the other p−1 slices. A multi-process rank driver
// (core.RunRank) and the streaming feeder use it to keep O(|E_rank|) per
// process instead of O(|E|). Endpoint ranks are recomputed in the placement
// pass rather than memoized: the memo array is itself an O(|E|) allocation,
// which is exactly what this variant exists to avoid.
func ScatterEdgesRank(pt *part.Partition, edges []Edge, rank, threads int) []Edge {
	if len(edges) == 0 {
		return nil
	}
	w := workersFor(threads, len(edges), parallelChunk)
	cnt := make([]int64, w)
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		c := int64(0)
		for i := lo; i < hi; i++ {
			e := edges[i]
			if pt.Rank(e.U) == rank || pt.Rank(e.V) == rank {
				c++
			}
		}
		cnt[worker] = c
	})
	total := int64(0)
	for worker := 0; worker < w; worker++ {
		cnt[worker], total = total, total+cnt[worker]
	}
	if total == 0 {
		return nil
	}
	out := make([]Edge, total)
	parallelBlocks(w, len(edges), func(worker, lo, hi int) {
		cur := cnt[worker]
		for i := lo; i < hi; i++ {
			e := edges[i]
			if pt.Rank(e.U) == rank || pt.Rank(e.V) == rank {
				out[cur] = e
				cur++
			}
		}
	})
	return out
}

// StreamBuilder accumulates one PE's scattered edge batches into a resident
// per-local-row adjacency (sorted global IDs, duplicates removed). Ghost
// rows and row translation are deliberately absent: they are derived state,
// rebuilt by Seal when counting starts. All per-batch scratch is retained
// across batches, so steady-state staging of a batch that brings nothing
// new allocates nothing (BenchmarkStreamInsertSteadyState pins this).
type StreamBuilder struct {
	pt          *part.Partition
	rank        int
	first, last Vertex
	rows        [][]Vertex // per local row: sorted, deduplicated global IDs
	entries     int        // total resident adjacency entries

	// Staged batch (valid between Stage and Commit).
	staged      bool
	touched     []int32  // staged rows, in first-appearance order
	stagedOff   []int32  // per touched row: segment start in stagedAdj
	stagedLen   []int32  // per touched row: surviving Δ length
	stagedAdj   []Vertex // segment storage (gaps where duplicates died)
	stagedIdx   []int32  // dense row → touched index + 1; 0 = untouched
	stagedTotal int

	// Batch scratch, retained across batches.
	candR []int32
	candV []Vertex
}

// NewStreamBuilder creates an empty builder for rank's rows of pt.
func NewStreamBuilder(pt *part.Partition, rank int) *StreamBuilder {
	first, last := pt.Range(rank)
	n := int(last - first)
	return &StreamBuilder{
		pt:    pt,
		rank:  rank,
		first: first,
		last:  last,
		rows:  make([][]Vertex, n),
		// stagedIdx is the only dense array: O(n_i), the same order as the
		// resident row headers themselves.
		stagedIdx: make([]int32, n),
	}
}

// First returns the first owned global ID.
func (b *StreamBuilder) First() Vertex { return b.first }

// Last returns one past the last owned global ID.
func (b *StreamBuilder) Last() Vertex { return b.last }

// NLocal returns the number of owned rows.
func (b *StreamBuilder) NLocal() int { return len(b.rows) }

// Entries returns the number of resident adjacency entries (each
// local-local edge counted twice, each cut edge once — the streamed
// counterpart of LocalGraph.LocalEdges before ghost rows exist).
func (b *StreamBuilder) Entries() int { return b.entries }

// Row returns the resident sorted neighborhood of local row r. During a
// staged batch this is still the pre-batch state ("old" in the delta
// counting identities); Commit folds the staged Δ in.
func (b *StreamBuilder) Row(r int32) []Vertex { return b.rows[r] }

// Staged returns the rows touched by the staged batch (first-appearance
// order; some may have an empty Δ if every candidate was a duplicate).
func (b *StreamBuilder) Staged() []int32 { return b.touched }

// StagedRowOf returns the staged Δ of local row r: the sorted strictly-new
// neighbors this batch adds, disjoint from Row(r). Nil when r is untouched.
func (b *StreamBuilder) StagedRowOf(r int32) []Vertex {
	idx := b.stagedIdx[r]
	if idx == 0 {
		return nil
	}
	off := b.stagedOff[idx-1]
	return b.stagedAdj[off : off+b.stagedLen[idx-1]]
}

// StagedEntries returns the number of effective-new adjacency entries in
// the staged batch.
func (b *StreamBuilder) StagedEntries() int { return b.stagedTotal }

// Stage ingests one scattered batch without committing it. Candidates are
// bucketed per local row with a two-pass counting layout (the batch-scale
// analogue of the count + placement passes of BuildLocalPar), then every
// touched row is sorted, deduplicated, and subtracted against its resident
// row — forward-galloping through the resident list, the same exponential
// search the ghost machinery uses — leaving the strictly-new Δ. The per-row
// pass fans out over threads; the O(batch) bucketing stays sequential.
//
// Self-loops are dropped. An edge with neither endpoint in this PE's range
// is a scatter bug and panics.
func (b *StreamBuilder) Stage(edges []Edge, threads int) {
	if b.staged {
		panic("graph: Stage called with a batch already staged (missing Commit)")
	}
	b.staged = true
	first, last := b.first, b.last
	candR, candV := b.candR[:0], b.candV[:0]
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		uLoc := e.U >= first && e.U < last
		vLoc := e.V >= first && e.V < last
		if !uLoc && !vLoc {
			panic(fmt.Sprintf("graph: edge (%d,%d) has no endpoint on PE %d [%d,%d)",
				e.U, e.V, b.rank, first, last))
		}
		if uLoc {
			candR = append(candR, int32(e.U-first))
			candV = append(candV, e.V)
		}
		if vLoc {
			candR = append(candR, int32(e.V-first))
			candV = append(candV, e.U)
		}
	}
	b.candR, b.candV = candR, candV

	// Count pass: discover touched rows and their candidate counts.
	touched, cnt := b.touched[:0], b.stagedLen[:0]
	for _, r := range candR {
		if b.stagedIdx[r] == 0 {
			touched = append(touched, r)
			cnt = append(cnt, 0)
			b.stagedIdx[r] = int32(len(touched))
		}
		cnt[b.stagedIdx[r]-1]++
	}
	b.touched = touched

	// Prefix sums + placement into exact-size segments.
	off := growInt32(b.stagedOff, len(touched)+1)
	off[0] = 0
	for i, c := range cnt {
		off[i+1] = off[i] + c
	}
	b.stagedOff = off
	adj := growVertex(b.stagedAdj, int(off[len(touched)]))
	b.stagedAdj = adj
	cur := cnt // reuse counts as write cursors: cursor = off[i] + consumed
	for i := range cur {
		cur[i] = off[i]
	}
	for i, r := range candR {
		idx := b.stagedIdx[r] - 1
		adj[cur[idx]] = candV[i]
		cur[idx]++
	}

	b.stagedLen = cnt

	// Per-row: sort, dedup, subtract the resident row in place. Segment
	// writes are disjoint per touched row, so this parallelizes freely; the
	// single-worker path calls the method directly so the steady state stays
	// closure-free (and so allocation-free).
	if workersFor(threads, len(touched), streamRowChunk) == 1 {
		b.stageSubtract(0, len(touched))
	} else {
		parallelFor(threads, len(touched), streamRowChunk, func(_, lo, hi int) {
			b.stageSubtract(lo, hi)
		})
	}
	total := 0
	for _, c := range cnt {
		total += int(c)
	}
	b.stagedTotal = total
}

// streamRowChunk is the per-worker chunk of touched rows for the staged
// subtraction and commit-merge passes.
const streamRowChunk = 16

// stageSubtract sorts, dedups, and resident-subtracts touched rows
// [lo, hi), recording surviving Δ lengths in stagedLen.
func (b *StreamBuilder) stageSubtract(lo, hi int) {
	adj, off := b.stagedAdj, b.stagedOff
	for ti := lo; ti < hi; ti++ {
		seg := sortedDedup(adj[off[ti]:off[ti+1]])
		res := b.rows[b.touched[ti]]
		u, ri := 0, 0
		for _, x := range seg {
			pos, found := searchFrom(res, x, ri)
			ri = pos
			if found {
				ri++
				continue
			}
			seg[u] = x
			u++
		}
		b.stagedLen[ti] = int32(u)
	}
}

// Commit merges the staged Δ into the resident rows and clears the staged
// state. Each touched row grows once and merges backward in place (write
// cursor always ahead of both read cursors), parallelized over rows.
func (b *StreamBuilder) Commit(threads int) {
	if !b.staged {
		panic("graph: Commit without a staged batch")
	}
	if workersFor(threads, len(b.touched), streamRowChunk) == 1 {
		b.commitMerge(0, len(b.touched))
	} else {
		parallelFor(threads, len(b.touched), streamRowChunk, func(_, lo, hi int) {
			b.commitMerge(lo, hi)
		})
	}
	for _, r := range b.touched {
		b.stagedIdx[r] = 0
	}
	b.entries += b.stagedTotal
	b.touched = b.touched[:0]
	b.stagedTotal = 0
	b.staged = false
}

// commitMerge folds the staged Δ of touched rows [lo, hi) into their
// resident rows: each row grows once and merges backward in place (the
// write cursor always stays ahead of both read cursors).
func (b *StreamBuilder) commitMerge(lo, hi int) {
	for ti := lo; ti < hi; ti++ {
		k := int(b.stagedLen[ti])
		if k == 0 {
			continue
		}
		o := int(b.stagedOff[ti])
		s := b.stagedAdj[o : o+k]
		r := b.touched[ti]
		old := b.rows[r]
		d := len(old)
		merged := append(old, s...) // tail values are placeholders
		i, j := d-1, k-1
		for w := d + k - 1; j >= 0; w-- {
			if i >= 0 && merged[i] > s[j] {
				merged[w] = merged[i]
				i--
			} else {
				merged[w] = s[j]
				j--
			}
		}
		b.rows[r] = merged
	}
}

// Fold stages and immediately commits one batch — the plain loading path
// used while no counts are being maintained.
func (b *StreamBuilder) Fold(edges []Edge, threads int) {
	b.Stage(edges, threads)
	b.Commit(threads)
}

// Seal materializes the resident adjacency as a LocalGraph identical to
// BuildLocalPar over the same edges — but without re-materializing an edge
// list or re-running the sort pipeline. The resident rows already are the
// final local rows (sorted, deduplicated, global IDs); ghost rows are their
// transpose: walking local rows in ascending order and appending each row's
// global ID to the ghost rows of its cut entries yields ghost rows sorted
// for free. The only transients beyond the output arrays are the cut-entry
// collection for ghost discovery (≤ |E_i| words, vs the 2·|E_i|-word edge
// list plus the build pipeline's endpoint memo the old path paid). The
// builder stays usable: further batches can be staged after sealing.
func (b *StreamBuilder) Seal(threads int) *LocalGraph {
	return b.seal(threads, false)
}

// SealRelease is Seal for a builder that will take no further batches: each
// resident row is freed the moment it has been copied into the local view,
// and the row-index translation reads the view itself instead of the rows.
// The construction peak therefore holds roughly ONE copy of the adjacency
// (max of shrinking rows + growing view) rather than two — the difference
// between a streaming loader beating the one-shot driver's peak and merely
// matching it. The builder is spent afterwards; any further use panics.
func (b *StreamBuilder) SealRelease(threads int) *LocalGraph {
	return b.seal(threads, true)
}

func (b *StreamBuilder) seal(threads int, release bool) *LocalGraph {
	if b.staged {
		panic("graph: Seal with a staged batch pending")
	}
	l := &LocalGraph{
		Part:   b.pt,
		Rank:   b.rank,
		First:  b.first,
		Last:   b.last,
		nLocal: len(b.rows),
	}
	// Ghost discovery: collect every cut entry, sort, dedup.
	var cut []Vertex
	for _, row := range b.rows {
		for _, w := range row {
			if w < b.first || w >= b.last {
				cut = append(cut, w)
			}
		}
	}
	nCut := len(cut)
	l.ghostID = append([]Vertex(nil), sortedDedup(cut)...)
	cut = nil
	l.ghostRow = make(map[Vertex]int32, len(l.ghostID))
	for i, g := range l.ghostID {
		l.ghostRow[g] = int32(l.nLocal + i)
	}
	rows := l.nLocal + len(l.ghostID)

	// Offsets: local row lengths are known; each ghost row's length is its
	// incidence count among the cut entries, recovered per row by forward
	// galloping (rows are sorted, so the ghost cursor only moves right).
	off := make([]int64, rows+1)
	for r, row := range b.rows {
		off[r+1] = int64(len(row))
	}
	for _, row := range b.rows {
		gpos := 0
		for _, w := range row {
			if w < b.first || w >= b.last {
				g, _ := searchFrom(l.ghostID, w, gpos)
				off[l.nLocal+g+1]++
				gpos = g + 1
			}
		}
	}
	for r := 0; r < rows; r++ {
		off[r+1] += off[r]
	}

	// Fill adj: copy each local row and transpose its cut entries into the
	// ghost rows in the same ascending sweep — sequential by design, the
	// ascending order is what leaves each ghost row sorted. In release mode
	// each row is dropped as soon as it has been consumed, so the shrinking
	// rows and the growing view never both hold the full adjacency.
	adj := make([]Vertex, off[rows])
	var pos []int64
	if nCut > 0 {
		pos = make([]int64, len(l.ghostID))
		for i := range l.ghostID {
			pos[i] = off[l.nLocal+i]
		}
	}
	for r, row := range b.rows {
		copy(adj[off[r]:off[r+1]], row)
		v := b.first + Vertex(r)
		gpos := 0
		for _, w := range row {
			if w < b.first || w >= b.last {
				g, _ := searchFrom(l.ghostID, w, gpos)
				adj[pos[g]] = v
				pos[g]++
				gpos = g + 1
			}
		}
		if release {
			b.rows[r] = nil
		}
	}
	if release {
		b.rows, b.stagedIdx, b.stagedAdj, b.touched = nil, nil, nil, nil
		b.candR, b.candV, b.stagedOff, b.stagedLen = nil, nil, nil, nil
	}

	// Row-index translation reads adj itself (rows are no longer needed):
	// ghost rows hold only local IDs, local rows gallop the ghost table.
	adjRow := make([]int32, off[rows])
	parallelFor(threads, rows, 64, func(_, rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			src := adj[off[r]:off[r+1]]
			dst := adjRow[off[r]:off[r+1]]
			gpos := 0
			for k, w := range src {
				if w >= b.first && w < b.last {
					dst[k] = int32(w - b.first)
				} else {
					g, _ := searchFrom(l.ghostID, w, gpos)
					dst[k] = int32(l.nLocal + g)
					gpos = g + 1
				}
			}
		}
	})
	l.off, l.adj, l.adjRow = off, adj, adjRow

	l.deg = make([]int, rows)
	for r := 0; r < l.nLocal; r++ {
		l.deg[r] = int(l.off[r+1] - l.off[r])
	}
	for r := l.nLocal; r < rows; r++ {
		l.deg[r] = -1
	}
	return l
}

// growInt32 returns s resized to n, reallocating only when capacity is
// short (with headroom, so repeated batches converge to zero allocations).
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n, n+n/2)
	}
	return s[:n]
}

func growVertex(s []Vertex, n int) []Vertex {
	if cap(s) < n {
		return make([]Vertex, n, n+n/2)
	}
	return s[:n]
}

package graph

import (
	"bytes"
	"slices"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	g := randomGraph(3, 50, 300)
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeListText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("m = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(Vertex(v)) > 0 && !slices.Equal(g.Neighbors(Vertex(v)), g2.Neighbors(Vertex(v))) {
			t.Fatalf("neighborhood of %d differs", v)
		}
	}
}

func TestReadEdgeListTextCommentsAndDirected(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 0
2 3 extra-ignored
`
	g, err := ReadEdgeListText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("expected edges missing")
	}
}

func TestReadEdgeListTextErrors(t *testing.T) {
	if _, err := ReadEdgeListText(strings.NewReader("0\n")); err == nil {
		t.Fatal("want error for one field")
	}
	if _, err := ReadEdgeListText(strings.NewReader("a b\n")); err == nil {
		t.Fatal("want error for non-numeric field")
	}
	g, err := ReadEdgeListText(strings.NewReader("\n"))
	if err != nil || g.NumVertices() != 0 {
		t.Fatalf("empty input should give empty graph, got %v %v", g, err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(5, 40, 220)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !slices.Equal(g.Neighbors(Vertex(v)), g2.Neighbors(Vertex(v))) {
			t.Fatalf("neighborhood of %d differs", v)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("want error for bad magic")
	}
}

package graph_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

// Hub-row benchmarks on the RHG/RGG stand-ins: intersections against the
// heaviest real rows, adaptive engine (hub bitmaps built) vs the plain merge
// oracle. The by-ID orientation is the hub-preserving case (TriC-style rows
// and ghost rows keep large lists); the degree orientation is the
// everything-small case the dispatcher must not regress.
func hubBenchGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"rhg-2^12", gen.RHG(gen.RHGConfig{N: 1 << 12, AvgDegree: 16, Gamma: 2.8, Seed: 42})},
		{"rgg2d-2^12", gen.RGG2D(1<<12, 16, 42)},
	}
}

var hubSink uint64

// BenchmarkHubRows measures Σ_u |N⁺(hub) ∩ N⁺(u)| over every in-pair of the
// heaviest by-ID-oriented row — exactly the work a hub row generates, once
// per in-edge.
func BenchmarkHubRows(b *testing.B) {
	for _, spec := range hubBenchGraphs() {
		o := graph.OrientByID(spec.g)
		hub := graph.Vertex(0)
		for v := 0; v < spec.g.NumVertices(); v++ {
			if o.OutDegree(graph.Vertex(v)) > o.OutDegree(hub) {
				hub = graph.Vertex(v)
			}
		}
		probes := spec.g.Neighbors(hub)
		b.Run(spec.name+"/merge", func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				for _, u := range probes {
					sink += graph.CountMerge(o.Out(u), o.Out(hub))
				}
			}
			hubSink = sink
		})
		b.Run(spec.name+"/adaptive", func(b *testing.B) {
			o.BuildHubs(graph.DefaultHubMinDegree)
			b.ResetTimer()
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				for _, u := range probes {
					sink += o.CountPair(u, hub)
				}
			}
			hubSink = sink
		})
	}
}

// BenchmarkAdaptiveIntersectSteadyState is the allocation-regression gate
// for the compute side: a full adaptive EDGE ITERATOR pass (hub bitmaps,
// galloping, merge) over a degree-oriented graph must report 0 allocs/op.
// The index is built before the timer starts; the counting loop itself owns
// no memory.
func BenchmarkAdaptiveIntersectSteadyState(b *testing.B) {
	for _, spec := range hubBenchGraphs() {
		o := graph.Orient(spec.g)
		o.BuildHubs(graph.DefaultHubMinDegree)
		n := spec.g.NumVertices()
		b.Run(spec.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				for v := 0; v < n; v++ {
					for _, u := range o.Out(graph.Vertex(v)) {
						sink += o.CountPair(graph.Vertex(v), u)
					}
				}
			}
			hubSink = sink
		})
	}
}

// BenchmarkLocalOrientedCount compares the row-translated local phase
// (CountRowPair over OutRows) against the global-ID layout it replaced
// (CountMerge over Out with a Row lookup per element) on one PE of a p=8
// partition — the hot loop of CETRIC's local phase.
func BenchmarkLocalOrientedCount(b *testing.B) {
	for _, spec := range hubBenchGraphs() {
		pt, lg := buildLocalForBench(spec.g, 8, 3)
		_ = pt
		ori := graph.OrientLocal(lg)
		rows := lg.Rows()
		b.Run(spec.name+"/global-ids", func(b *testing.B) {
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				for r := 0; r < rows; r++ {
					av := ori.Out(int32(r))
					for _, u := range av {
						sink += graph.CountMerge(av, ori.Out(lg.Row(u)))
					}
				}
			}
			hubSink = sink
		})
		b.Run(spec.name+"/row-space", func(b *testing.B) {
			ori.BuildHubs(graph.DefaultHubMinDegree)
			b.ResetTimer()
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				for r := 0; r < rows; r++ {
					av := ori.OutRows(int32(r))
					for _, ur := range av {
						sink += ori.CountRowsWith(av, int32(ur))
					}
				}
			}
			hubSink = sink
		})
	}
}

// buildLocalForBench builds one PE's local view of g under a uniform p-way
// partition, with ghost degrees filled from the global graph (standing in
// for the degree exchange).
func buildLocalForBench(g *graph.Graph, p, rank int) (*part.Partition, *graph.LocalGraph) {
	pt := part.Uniform(uint64(g.NumVertices()), p)
	per := graph.ScatterEdges(pt, g.Edges())
	lg := graph.BuildLocal(pt, rank, per[rank])
	for i, gid := range lg.Ghosts() {
		lg.SetGhostDegree(int32(lg.NLocal()+i), g.Degree(gid))
	}
	return pt, lg
}

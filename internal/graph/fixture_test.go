package graph_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/testgraph"
)

// orient returns the ID-oriented out-lists A(v) = {u ∈ N(v) | u > v},
// sorted ascending (Neighbors is sorted, so the suffix is too).
func orient(g *graph.Graph) [][]graph.Vertex {
	out := make([][]graph.Vertex, g.NumVertices())
	for v := range out {
		nv := g.Neighbors(graph.Vertex(v))
		i := 0
		for i < len(nv) && nv[i] <= graph.Vertex(v) {
			i++
		}
		out[v] = nv[i:]
	}
	return out
}

// TestIntersectionCountsMatchFixtures drives the intersection primitives
// through a whole-graph triangle count on every shared fixture: each
// oriented edge (v,u) contributes |A(v) ∩ A(u)| triangles, and the total
// must equal the fixture's precomputed count. This pins CountIntersect,
// CountMerge, and ForEachCommon against an external ground truth instead of
// only against each other.
func TestIntersectionCountsMatchFixtures(t *testing.T) {
	for _, fix := range testgraph.All {
		g := fix.Build()
		out := orient(g)
		var viaGallop, viaMerge, viaBranchless, viaCommon uint64
		for _, av := range out {
			for _, u := range av {
				au := out[u]
				viaGallop += graph.CountIntersect(av, au)
				viaMerge += graph.CountMerge(av, au)
				viaBranchless += graph.CountMergeBranchless(av, au)
				graph.ForEachCommon(av, au, func(graph.Vertex) { viaCommon++ })
			}
		}
		if viaGallop != fix.Triangles || viaMerge != fix.Triangles ||
			viaBranchless != fix.Triangles || viaCommon != fix.Triangles {
			t.Errorf("%s: gallop=%d merge=%d branchless=%d common=%d, want %d",
				fix.Name, viaGallop, viaMerge, viaBranchless, viaCommon, fix.Triangles)
		}
	}
}

// TestHubBitmapCountsMatchFixtures drives the packed hub-bitmap engine
// through a whole-graph count on every fixture: with the hub threshold
// forced to 1 every vertex carries a bitmap (pure bitmap kernel), with the
// default threshold the dispatcher mixes kernels — both totals must equal
// the fixture's precomputed count.
func TestHubBitmapCountsMatchFixtures(t *testing.T) {
	for _, fix := range testgraph.All {
		g := fix.Build()
		for _, minDeg := range []int{1, graph.DefaultHubMinDegree, -1} {
			o := graph.Orient(g)
			if minDeg >= 0 {
				o.BuildHubs(minDeg)
			}
			var viaCount, viaEach uint64
			for v := 0; v < g.NumVertices(); v++ {
				nv := o.Out(graph.Vertex(v))
				for _, u := range nv {
					viaCount += o.CountListWith(nv, u)
					viaEach += o.CountPair(graph.Vertex(v), u)
				}
			}
			if viaCount != fix.Triangles || viaEach != fix.Triangles {
				t.Errorf("%s minDeg=%d: CountListWith=%d CountPair=%d, want %d",
					fix.Name, minDeg, viaCount, viaEach, fix.Triangles)
			}
		}
	}
}

// TestRowSpaceCountsMatchFixtures distributes every fixture over 4 PEs and
// recounts type-1/2 triangles per PE through the row-translated layout
// (OutRows + CountRowsWith + ForEachCommonRowsWith), checking it against the
// global-ID layout pair by pair — the translation must be an exact
// relabeling of every A-list.
func TestRowSpaceCountsMatchFixtures(t *testing.T) {
	for _, fix := range testgraph.All {
		g := fix.Build()
		if g.NumVertices() < 4 {
			continue
		}
		pt := part.Uniform(uint64(g.NumVertices()), 4)
		per := graph.ScatterEdges(pt, g.Edges())
		for rank := 0; rank < 4; rank++ {
			lg := graph.BuildLocal(pt, rank, per[rank])
			for i, gid := range lg.Ghosts() {
				lg.SetGhostDegree(int32(lg.NLocal()+i), g.Degree(gid))
			}
			ori := graph.OrientLocal(lg)
			ori.BuildHubs(1) // force bitmaps everywhere they fit
			for r := 0; r < lg.Rows(); r++ {
				rv := int32(r)
				// Row-space lists must be exact relabelings of the global ones.
				av, avRows := ori.Out(rv), ori.OutRows(rv)
				if len(av) != len(avRows) {
					t.Fatalf("%s rank %d row %d: |Out|=%d |OutRows|=%d", fix.Name, rank, r, len(av), len(avRows))
				}
				back := make(map[graph.Vertex]bool, len(avRows))
				for i, ur := range avRows {
					if i > 0 && avRows[i-1] >= ur {
						t.Fatalf("%s rank %d row %d: OutRows not strictly ascending", fix.Name, rank, r)
					}
					back[lg.GID(int32(ur))] = true
				}
				for _, u := range av {
					if !back[u] {
						t.Fatalf("%s rank %d row %d: %d missing from row translation", fix.Name, rank, r, u)
					}
				}
				for _, ur := range avRows {
					ru := int32(ur)
					want := graph.CountMerge(av, ori.Out(ru))
					if got := ori.CountRowsWith(avRows, ru); got != want {
						t.Fatalf("%s rank %d (%d,%d): CountRowsWith=%d, want %d", fix.Name, rank, r, ru, got, want)
					}
					var each uint64
					ori.ForEachCommonRowsWith(avRows, ru, func(graph.Vertex) { each++ })
					if each != want {
						t.Fatalf("%s rank %d (%d,%d): ForEachCommonRowsWith=%d, want %d", fix.Name, rank, r, ru, each, want)
					}
					if got := ori.CountRowPair(rv, ru); got != want {
						t.Fatalf("%s rank %d (%d,%d): CountRowPair=%d, want %d", fix.Name, rank, r, ru, got, want)
					}
				}
			}
		}
	}
}

// TestTranslateRowsMatchesGhostMap checks the sorted-gallop translation
// against the ghost map row by row on every fixture.
func TestTranslateRowsMatchesGhostMap(t *testing.T) {
	for _, fix := range testgraph.All {
		g := fix.Build()
		if g.NumVertices() < 4 {
			continue
		}
		pt := part.Uniform(uint64(g.NumVertices()), 4)
		per := graph.ScatterEdges(pt, g.Edges())
		for rank := 0; rank < 4; rank++ {
			lg := graph.BuildLocal(pt, rank, per[rank])
			var tr graph.RowTranslator
			for r := 0; r < lg.Rows(); r++ {
				list := lg.RowNeighbors(int32(r))
				rows, nLoc := lg.TranslateRows(&tr, list)
				if len(rows) != len(list) {
					t.Fatalf("%s rank %d row %d: translation dropped known rows (%d vs %d)",
						fix.Name, rank, r, len(rows), len(list))
				}
				locals := 0
				seen := make(map[uint64]bool, len(rows))
				for i, ur := range rows {
					if i > 0 && rows[i-1] >= ur {
						t.Fatalf("%s rank %d row %d: translated rows not ascending", fix.Name, rank, r)
					}
					if int(ur) < lg.NLocal() {
						locals++
					}
					seen[ur] = true
				}
				if locals != nLoc {
					t.Fatalf("%s rank %d row %d: nLocal=%d, counted %d", fix.Name, rank, r, nLoc, locals)
				}
				for _, x := range list {
					if !seen[uint64(lg.Row(x))] {
						t.Fatalf("%s rank %d row %d: %d (row %d) missing", fix.Name, rank, r, x, lg.Row(x))
					}
				}
			}
		}
	}
}

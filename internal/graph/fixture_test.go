package graph_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/testgraph"
)

// orient returns the ID-oriented out-lists A(v) = {u ∈ N(v) | u > v},
// sorted ascending (Neighbors is sorted, so the suffix is too).
func orient(g *graph.Graph) [][]graph.Vertex {
	out := make([][]graph.Vertex, g.NumVertices())
	for v := range out {
		nv := g.Neighbors(graph.Vertex(v))
		i := 0
		for i < len(nv) && nv[i] <= graph.Vertex(v) {
			i++
		}
		out[v] = nv[i:]
	}
	return out
}

// TestIntersectionCountsMatchFixtures drives the intersection primitives
// through a whole-graph triangle count on every shared fixture: each
// oriented edge (v,u) contributes |A(v) ∩ A(u)| triangles, and the total
// must equal the fixture's precomputed count. This pins CountIntersect,
// CountMerge, and ForEachCommon against an external ground truth instead of
// only against each other.
func TestIntersectionCountsMatchFixtures(t *testing.T) {
	for _, fix := range testgraph.All {
		g := fix.Build()
		out := orient(g)
		var viaGallop, viaMerge, viaCommon uint64
		for _, av := range out {
			for _, u := range av {
				au := out[u]
				viaGallop += graph.CountIntersect(av, au)
				viaMerge += graph.CountMerge(av, au)
				graph.ForEachCommon(av, au, func(graph.Vertex) { viaCommon++ })
			}
		}
		if viaGallop != fix.Triangles || viaMerge != fix.Triangles || viaCommon != fix.Triangles {
			t.Errorf("%s: gallop=%d merge=%d common=%d, want %d",
				fix.Name, viaGallop, viaMerge, viaCommon, fix.Triangles)
		}
	}
}

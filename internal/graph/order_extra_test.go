package graph

import (
	"slices"
	"testing"
	"testing/quick"
)

func TestEdgeCanon(t *testing.T) {
	if (Edge{5, 2}).Canon() != (Edge{2, 5}) {
		t.Fatal("Canon should order endpoints")
	}
	if (Edge{2, 5}).Canon() != (Edge{2, 5}) {
		t.Fatal("Canon should keep ordered endpoints")
	}
}

func TestFromSortedAdjacency(t *testing.T) {
	// Triangle 0-1-2 as prebuilt CSR.
	off := []int64{0, 2, 4, 6}
	adj := []Vertex{1, 2, 0, 2, 0, 1}
	g := FromSortedAdjacency(off, adj)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("shape %d/%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("edge missing")
	}
}

func TestOrientLocalOnlyGhostRowsEmpty(t *testing.T) {
	g := randomGraph(19, 60, 280)
	_, locals := buildScattered(g, 4)
	for _, lg := range locals {
		for _, gid := range lg.Ghosts() {
			row, _ := lg.GhostRow(gid)
			lg.SetGhostDegree(row, g.Degree(gid))
		}
		ori := OrientLocalOnly(lg)
		for r := lg.NLocal(); r < lg.Rows(); r++ {
			if ori.OutDegree(int32(r)) != 0 {
				t.Fatal("OrientLocalOnly must leave ghost rows empty")
			}
		}
		// Local rows must match the full orientation.
		full := OrientLocal(lg)
		for r := 0; r < lg.NLocal(); r++ {
			if !slices.Equal(ori.Out(int32(r)), full.Out(int32(r))) {
				t.Fatal("local rows differ between OrientLocalOnly and OrientLocal")
			}
		}
	}
}

func TestOrientLocalByIDNoDegreesNeeded(t *testing.T) {
	// ID orientation must work without the ghost degree exchange.
	g := randomGraph(23, 40, 200)
	_, locals := buildScattered(g, 3)
	for _, lg := range locals {
		ori := OrientLocalByID(lg) // no SetGhostDegree calls
		for r := 0; r < lg.Rows(); r++ {
			v := lg.GID(int32(r))
			for _, u := range ori.Out(int32(r)) {
				if u <= v {
					t.Fatalf("ID orientation violated: %d -> %d", v, u)
				}
			}
		}
	}
}

func TestLocalOrientedTotalOut(t *testing.T) {
	g := randomGraph(29, 50, 240)
	_, locals := buildScattered(g, 2)
	total := 0
	for _, lg := range locals {
		for _, gid := range lg.Ghosts() {
			row, _ := lg.GhostRow(gid)
			lg.SetGhostDegree(row, g.Degree(gid))
		}
		ori := OrientLocalOnly(lg)
		total += ori.TotalOut()
	}
	// Each undirected edge is oriented exactly once from its ≺-smaller
	// endpoint, which lives on exactly one PE's local rows — except cut
	// edges, which appear once on the ≺-smaller endpoint's PE only.
	if total != g.NumEdges() {
		t.Fatalf("Σ local out-degrees = %d, want m = %d", total, g.NumEdges())
	}
}

func TestIntersectionPropertiesQuick(t *testing.T) {
	// |A∩B| symmetric, bounded by min lengths, and |A∩A| = |A|.
	check := func(seed uint64) bool {
		s := seed
		next := func() uint64 {
			s += 0x9E3779B97F4A7C15
			z := s
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			return z ^ (z >> 31)
		}
		mk := func(n int) []Vertex {
			set := map[uint64]struct{}{}
			for len(set) < n {
				set[next()%512] = struct{}{}
			}
			out := make([]Vertex, 0, n)
			for v := range set {
				out = append(out, v)
			}
			slices.Sort(out)
			return out
		}
		a := mk(1 + int(next()%100))
		b := mk(1 + int(next()%100))
		ab := CountIntersect(a, b)
		ba := CountIntersect(b, a)
		if ab != ba {
			return false
		}
		if ab > uint64(len(a)) || ab > uint64(len(b)) {
			return false
		}
		return CountIntersect(a, a) == uint64(len(a))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package part

import "testing"

// TestNewPlacementValidation pins the broadcast-rebuild constructor: shape
// mismatches and non-ascending gids are rejected, while Drop surrogates —
// dead endpoints riding in the same broadcast as moved hubs — are legal.
func TestNewPlacementValidation(t *testing.T) {
	if _, err := NewPlacement([]uint64{1, 2}, []int32{0}); err == nil {
		t.Fatal("accepted mismatched slice lengths")
	}
	if _, err := NewPlacement([]uint64{5, 5}, []int32{0, 1}); err == nil {
		t.Fatal("accepted duplicate gids")
	}
	if _, err := NewPlacement([]uint64{7, 3}, []int32{0, 1}); err == nil {
		t.Fatal("accepted descending gids")
	}
	pl, err := NewPlacement([]uint64{3, 9, 40}, []int32{2, Drop, 1})
	if err != nil {
		t.Fatal(err)
	}
	if dst, ok := pl.Of(9); !ok || dst != Drop {
		t.Fatalf("Of(9) = (%d,%v), want (Drop,true)", dst, ok)
	}
	if dst, ok := pl.Of(40); !ok || dst != 1 {
		t.Fatalf("Of(40) = (%d,%v), want (1,true)", dst, ok)
	}
	if _, ok := pl.Of(10); ok {
		t.Fatal("Of(10) redirected a vertex that was never placed")
	}
}

// TestComputePlacementNeverDrops separates the two overlay populations: the
// LPT solves only over live hubs (nonzero shipped lists), so it must never
// emit the Drop sentinel — dead endpoints enter a Placement exclusively via
// their owner's announcement through NewPlacement.
func TestComputePlacementNeverDrops(t *testing.T) {
	base := []float64{5000, 1, 1, 1}
	var hubs []HubLoad
	for i := 0; i < 16; i++ {
		hubs = append(hubs, HubLoad{GID: uint64(i), Owner: 0, Requests: 100, AListLen: 30})
	}
	pl := ComputePlacement(4, base, hubs, 1e-6, 1e-9, 1e-9)
	if pl.Len() == 0 {
		t.Fatal("nothing moved off the overloaded PE")
	}
	for i := 0; i < pl.Len(); i++ {
		if gid, dst := pl.At(i); dst < 0 {
			t.Fatalf("solver emitted Drop for hub %d", gid)
		}
	}
}

package part

import (
	"testing"
	"testing/quick"
)

func TestUniformCoversDisjointly(t *testing.T) {
	check := func(nRaw, pRaw uint16) bool {
		n := uint64(nRaw)
		p := int(pRaw%64) + 1
		pt := Uniform(n, p)
		if pt.P() != p || pt.N() != n {
			return false
		}
		var total uint64
		prevHi := uint64(0)
		for i := 0; i < p; i++ {
			lo, hi := pt.Range(i)
			if lo != prevHi || hi < lo {
				return false
			}
			total += hi - lo
			prevHi = hi
		}
		return total == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUniformBalance(t *testing.T) {
	pt := Uniform(10, 3)
	sizes := []int{pt.Size(0), pt.Size(1), pt.Size(2)}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes = %v, want [4 3 3]", sizes)
	}
}

func TestRankConsistentWithRanges(t *testing.T) {
	check := func(nRaw uint16, pRaw uint8) bool {
		n := uint64(nRaw) + 1
		p := int(pRaw%32) + 1
		pt := Uniform(n, p)
		for v := uint64(0); v < n; v++ {
			r := pt.Rank(v)
			if !pt.Owns(r, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMoreRanksThanVertices(t *testing.T) {
	pt := Uniform(3, 8)
	total := 0
	for i := 0; i < 8; i++ {
		total += pt.Size(i)
	}
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	for v := uint64(0); v < 3; v++ {
		if !pt.Owns(pt.Rank(v), v) {
			t.Fatalf("rank lookup broken for %d", v)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]uint64{0, 5, 3}); err == nil {
		t.Fatal("want error for non-monotone boundaries")
	}
	if _, err := New([]uint64{1, 5}); err == nil {
		t.Fatal("want error for nonzero first boundary")
	}
	if _, err := New([]uint64{0}); err == nil {
		t.Fatal("want error for single boundary")
	}
	pt, err := New([]uint64{0, 2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Size(1) != 0 {
		t.Fatal("empty range mishandled")
	}
	if pt.Rank(2) != 2 {
		t.Fatalf("vertex 2 should skip the empty PE, got %d", pt.Rank(2))
	}
}

func TestByCostBalancesSkewedDegrees(t *testing.T) {
	// One hub with huge cost, many unit vertices: with CostDegree the hub's
	// PE should receive few other vertices.
	degrees := make([]int, 101)
	degrees[0] = 1000
	for i := 1; i <= 100; i++ {
		degrees[i] = 1
	}
	pt := ByCost(degrees, 4, CostDegree)
	if pt.Size(0) > 20 {
		t.Fatalf("hub PE got %d vertices, want few", pt.Size(0))
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += pt.Size(i)
	}
	if total != 101 {
		t.Fatalf("total %d, want 101", total)
	}
}

func TestByCostUniformDegrees(t *testing.T) {
	degrees := make([]int, 100)
	for i := range degrees {
		degrees[i] = 5
	}
	pt := ByCost(degrees, 4, CostDegree)
	for i := 0; i < 4; i++ {
		if pt.Size(i) != 25 {
			t.Fatalf("size(%d) = %d, want 25", i, pt.Size(i))
		}
	}
}

func TestByCostZeroTotal(t *testing.T) {
	degrees := make([]int, 10)
	pt := ByCost(degrees, 3, CostDegree)
	if pt.N() != 10 || pt.P() != 3 {
		t.Fatal("zero-cost fallback broken")
	}
}

func TestCostFunctions(t *testing.T) {
	if CostDegree(4) != 4 || CostDegreeSq(4) != 16 || CostWedges(4) != 6 || CostUnit(4) != 1 {
		t.Fatal("cost function values wrong")
	}
}

func TestByCostMonotoneBoundaries(t *testing.T) {
	check := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%16) + 1
		degrees := make([]int, 200)
		s := seed
		for i := range degrees {
			s = s*6364136223846793005 + 1442695040888963407
			degrees[i] = int(s % 50)
		}
		pt := ByCost(degrees, p, CostWedges)
		prev := uint64(0)
		for i := 0; i < p; i++ {
			lo, hi := pt.Range(i)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == 200
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package part

import "fmt"

// 2D block partitioning à la Tom & Karypis ("A 2-D Parallel Triangle
// Counting Algorithm", 2019), generalized to rectangular grids: the
// upper-triangular oriented adjacency matrix U (U[u][v] = 1 iff {u,v} ∈ E
// and u < v) is cut into an r×c grid of blocks over p = r·c PEs, and PE
// a·c+b owns block (a,b) — the edges whose smaller endpoint falls in row
// band a and larger endpoint in column band b.
//
// Bands are CYCLIC per dimension, not contiguous: rowBand(v) = v mod r,
// colBand(v) = v mod c. With contiguous bands the upper-triangular
// structure would leave every block below the grid diagonal empty (u < v
// forces band(u) ≤ band(v)), idling nearly half the PEs; dealing vertices
// round-robin scatters each band across the whole ID range, so all r·c
// blocks carry ≈|E|/p edges — the same trick dense LU solvers use against
// triangular imbalance. Within a band, a vertex is addressed by its
// relative index (v div r resp. v div c), which is monotone in v, so
// ID-sorted adjacency stays sorted after translation.
//
// The counting schedule runs over a third, finer banding: the MIDDLE
// vertex of a wedge i→v→j appears as a column of the A-side block (band
// v mod c) and as a row of the B-side block (band v mod r), so rounds
// iterate k = 0..L−1 over v mod L with L = lcm(r, c) — the only modulus
// that pins both residues at once. Round k's A-operand is then the stripe
// {entries v ≡ k (mod L)} of block (a, k mod c), a single row-broadcast
// root per row group, and the B-operand the matching stripe of the
// transposed block (k mod r, b), a single column-broadcast root — exactly
// the square schedule when r = c = q (L = q, every stripe is the whole
// block). Stripe entries translate to the round-relative index
// t = v div L by the affine maps of StripeRow/StripeCol below.
type Grid2D struct {
	n    uint64
	r, c int // grid rows × columns
	l    int // lcm(r, c): middle-vertex modulus = number of counting rounds
}

// SquareSide returns q with q² = p, or ok=false when p is not a perfect
// square.
func SquareSide(p int) (int, bool) {
	if p < 1 {
		return 0, false
	}
	q := 0
	for q*q < p {
		q++
	}
	return q, q*q == p
}

// FactorGrid factors a PE count into the closest rectangular grid r×c with
// r ≤ c (r the largest divisor of p not exceeding √p). Squares factor to
// √p×√p; primes degrade to the 1×p row grid.
func FactorGrid(p int) (r, c int) {
	if p < 1 {
		return 0, 0
	}
	r = 1
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			r = d
		}
	}
	if q, ok := SquareSide(p); ok {
		r = q
	}
	return r, p / r
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// NewGrid2D builds the block partitioning of vertices 0..n-1 over p PEs on
// the FactorGrid r×c grid. Any p ≥ 1 is accepted; square p yields the
// classic √p×√p grid.
func NewGrid2D(n uint64, p int) (*Grid2D, error) {
	if p < 1 {
		return nil, fmt.Errorf("part: 2D grid needs p >= 1, got p=%d", p)
	}
	r, c := FactorGrid(p)
	return NewGrid2DRect(n, r, c)
}

// NewGrid2DRect builds an explicit r×c block partitioning of vertices
// 0..n-1 over p = r·c PEs.
func NewGrid2DRect(n uint64, r, c int) (*Grid2D, error) {
	if r < 1 || c < 1 {
		return nil, fmt.Errorf("part: 2D grid needs positive dimensions, got %d×%d", r, c)
	}
	return &Grid2D{n: n, r: r, c: c, l: r / gcd(r, c) * c}, nil
}

// N returns the number of vertices.
func (g *Grid2D) N() uint64 { return g.n }

// P returns the number of PEs (r·c).
func (g *Grid2D) P() int { return g.r * g.c }

// R returns the number of grid rows.
func (g *Grid2D) R() int { return g.r }

// C returns the number of grid columns.
func (g *Grid2D) C() int { return g.c }

// Rounds returns the number of counting rounds L = lcm(r, c): the middle
// vertex bands the broadcast schedule iterates over. √p for square grids.
func (g *Grid2D) Rounds() int { return g.l }

// Square reports whether the grid is square (r = c), in which case every
// round's stripe is a whole block and the schedule is Tom & Karypis's
// original √p×√p one.
func (g *Grid2D) Square() bool { return g.r == g.c }

// bandSize counts the vertices v < n with v ≡ b (mod m).
func (g *Grid2D) bandSize(m, b int) int {
	if uint64(b) >= g.n {
		return 0
	}
	return int((g.n - uint64(b) + uint64(m) - 1) / uint64(m))
}

// BandRow returns the row band (residue mod r) of vertex v.
func (g *Grid2D) BandRow(v uint64) int {
	g.check(v)
	return int(v % uint64(g.r))
}

// BandCol returns the column band (residue mod c) of vertex v.
func (g *Grid2D) BandCol(v uint64) int {
	g.check(v)
	return int(v % uint64(g.c))
}

// RelRow returns v's relative index within its row band.
func (g *Grid2D) RelRow(v uint64) uint64 {
	g.check(v)
	return v / uint64(g.r)
}

// RelCol returns v's relative index within its column band.
func (g *Grid2D) RelCol(v uint64) uint64 {
	g.check(v)
	return v / uint64(g.c)
}

// GIDRow reconstructs the global vertex ID from a row band and a relative
// index.
func (g *Grid2D) GIDRow(band int, rel uint64) uint64 {
	return rel*uint64(g.r) + uint64(band)
}

// GIDCol reconstructs the global vertex ID from a column band and a
// relative index.
func (g *Grid2D) GIDCol(band int, rel uint64) uint64 {
	return rel*uint64(g.c) + uint64(band)
}

// GIDRound reconstructs the global vertex ID from a round (middle-vertex
// band mod L) and the round-relative index t = v div L.
func (g *Grid2D) GIDRound(k int, t uint64) uint64 {
	return t*uint64(g.l) + uint64(k)
}

// BandSizeRow returns the number of vertices in row band a.
func (g *Grid2D) BandSizeRow(a int) int { return g.bandSize(g.r, a) }

// BandSizeCol returns the number of vertices in column band b.
func (g *Grid2D) BandSizeCol(b int) int { return g.bandSize(g.c, b) }

// BandSizeRound returns the number of middle vertices of round k: the
// vertices v with v ≡ k (mod L) — the entry domain of round k's stripe
// operands in t-space.
func (g *Grid2D) BandSizeRound(k int) int { return g.bandSize(g.l, k) }

// Rank returns the PE owning block (a, b).
func (g *Grid2D) Rank(a, b int) int { return a*g.c + b }

// RowCol returns the block coordinates of a PE.
func (g *Grid2D) RowCol(rank int) (a, b int) { return rank / g.c, rank % g.c }

// Owner returns the PE owning the undirected edge {u, v}: the block indexed
// by the row band of the smaller and the column band of the larger
// endpoint. u must differ from v (self-loops belong to no block).
func (g *Grid2D) Owner(u, v uint64) int {
	if u == v {
		panic(fmt.Sprintf("part: self-loop %d has no block owner", u))
	}
	if u > v {
		u, v = v, u
	}
	return g.Rank(g.BandRow(u), g.BandCol(v))
}

// RowRanks returns the ranks of grid row a in column order — the row
// sub-communicator's member list (c members).
func (g *Grid2D) RowRanks(a int) []int {
	out := make([]int, g.c)
	for b := range out {
		out[b] = g.Rank(a, b)
	}
	return out
}

// ColRanks returns the ranks of grid column b in row order — the column
// sub-communicator's member list (r members).
func (g *Grid2D) ColRanks(b int) []int {
	out := make([]int, g.r)
	for a := range out {
		out[a] = g.Rank(a, b)
	}
	return out
}

// RootRow returns the member index (= grid column) of round k's A-side
// broadcast root within every row group: the owner of block (a, k mod c).
func (g *Grid2D) RootRow(k int) int { return k % g.c }

// RootCol returns the member index (= grid row) of round k's B-side
// broadcast root within every column group: the owner of block (k mod r, b).
func (g *Grid2D) RootCol(k int) int { return k % g.r }

// StripeRow describes round k's A-side stripe of block (a, k mod c): the
// block entries rel with rel ≡ res (mod stride) are the middle vertices
// v ≡ k (mod L), and map to round space as t = (rel − res) / stride. For
// square grids stride is 1 and the stripe is the whole block. Derivation:
// v = (k mod c) + c·rel ≡ k (mod L) ⟺ rel ≡ ⌊k/c⌋ (mod L/c).
func (g *Grid2D) StripeRow(k int) (res, stride int) { return k / g.c, g.l / g.c }

// StripeCol describes round k's B-side stripe of the TRANSPOSED block
// (k mod r, b), whose entries are row-band relative indices:
// rel ≡ ⌊k/r⌋ (mod L/r) selects v ≡ k (mod L), t = (rel − res) / stride.
func (g *Grid2D) StripeCol(k int) (res, stride int) { return k / g.r, g.l / g.r }

func (g *Grid2D) check(v uint64) {
	if v >= g.n {
		panic(fmt.Sprintf("part: vertex %d out of range n=%d", v, g.n))
	}
}

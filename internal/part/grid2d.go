package part

import "fmt"

// 2D block partitioning à la Tom & Karypis ("A 2-D Parallel Triangle
// Counting Algorithm", 2019): the upper-triangular oriented adjacency
// matrix U (U[u][v] = 1 iff {u,v} ∈ E and u < v) is cut into a q×q grid of
// blocks over p = q² PEs, and PE r·q+c owns block (r,c) — the edges whose
// smaller endpoint falls in row band r and larger endpoint in column band c.
//
// Bands are CYCLIC, not contiguous: band(v) = v mod q. With contiguous
// bands the upper-triangular structure would leave every block below the
// grid diagonal empty (u < v forces band(u) ≤ band(v)), idling nearly half
// the PEs; dealing vertices round-robin scatters each band across the whole
// ID range, so all q² blocks carry ≈|E|/p edges — the same trick dense LU
// solvers use against triangular imbalance. Within a band, a vertex is
// addressed by its relative index rel(v) = v div q, which is monotone in v,
// so ID-sorted adjacency stays sorted after translation.
type Grid2D struct {
	n uint64
	q int
}

// SquareSide returns q with q² = p, or ok=false when p is not a perfect
// square (the 2D grid needs one PE per block).
func SquareSide(p int) (int, bool) {
	if p < 1 {
		return 0, false
	}
	q := 0
	for q*q < p {
		q++
	}
	return q, q*q == p
}

// NewGrid2D builds the q×q block partitioning of vertices 0..n-1 over
// p = q² PEs.
func NewGrid2D(n uint64, p int) (*Grid2D, error) {
	q, ok := SquareSide(p)
	if !ok {
		return nil, fmt.Errorf("part: 2D grid needs a square PE count, got p=%d", p)
	}
	return &Grid2D{n: n, q: q}, nil
}

// N returns the number of vertices.
func (g *Grid2D) N() uint64 { return g.n }

// P returns the number of PEs (q²).
func (g *Grid2D) P() int { return g.q * g.q }

// Q returns the grid side length q = √p.
func (g *Grid2D) Q() int { return g.q }

// Band returns the band (residue class) of vertex v.
func (g *Grid2D) Band(v uint64) int {
	g.check(v)
	return int(v % uint64(g.q))
}

// Rel returns v's relative index within its band.
func (g *Grid2D) Rel(v uint64) uint64 {
	g.check(v)
	return v / uint64(g.q)
}

// GID reconstructs the global vertex ID from a band and a relative index.
func (g *Grid2D) GID(band int, rel uint64) uint64 {
	return rel*uint64(g.q) + uint64(band)
}

// BandSize returns the number of vertices in band b: the count of
// v < n with v ≡ b (mod q).
func (g *Grid2D) BandSize(b int) int {
	if uint64(b) >= g.n {
		return 0
	}
	return int((g.n - uint64(b) + uint64(g.q) - 1) / uint64(g.q))
}

// Rank returns the PE owning block (r, c).
func (g *Grid2D) Rank(r, c int) int { return r*g.q + c }

// RowCol returns the block coordinates of a PE.
func (g *Grid2D) RowCol(rank int) (r, c int) { return rank / g.q, rank % g.q }

// Owner returns the PE owning the undirected edge {u, v}: the block indexed
// by the bands of the smaller and larger endpoint. u must differ from v
// (self-loops belong to no block).
func (g *Grid2D) Owner(u, v uint64) int {
	if u == v {
		panic(fmt.Sprintf("part: self-loop %d has no block owner", u))
	}
	if u > v {
		u, v = v, u
	}
	return g.Rank(g.Band(u), g.Band(v))
}

// RowRanks returns the ranks of grid row r in column order — the row
// sub-communicator's member list.
func (g *Grid2D) RowRanks(r int) []int {
	out := make([]int, g.q)
	for c := range out {
		out[c] = g.Rank(r, c)
	}
	return out
}

// ColRanks returns the ranks of grid column c in row order — the column
// sub-communicator's member list.
func (g *Grid2D) ColRanks(c int) []int {
	out := make([]int, g.q)
	for r := range out {
		out[r] = g.Rank(r, c)
	}
	return out
}

func (g *Grid2D) check(v uint64) {
	if v >= g.n {
		panic(fmt.Sprintf("part: vertex %d out of range n=%d", v, g.n))
	}
}

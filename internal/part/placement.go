package part

import (
	"fmt"
	"sort"
)

// Hub placement (Arifuzzaman-style surrogate rebalancing, driven by the α+β
// cost model). The 1D partition fixes which PE *owns* a vertex; on skewed
// graphs the owners of a handful of hub rows also receive and intersect
// almost all shipped neighborhoods, so the max-PE global phase is decided
// by where the hubs happen to land. A Placement overlays the partition with
// a per-hub surrogate: the hub's oriented neighborhood ships once to the
// surrogate, which intersects on behalf of every requester, moving the
// hub's receive-side work without changing any count.

// HubLoad describes one nominated hub row for the placement solver. All
// quantities are modeling inputs, not guarantees: Requests counts the
// records the hub attracts (its remote in-edges under the compact-forward
// orientation — each is exactly one shipment), AListLen is both the
// intersection partner size and the one-time ship volume, and Work is the
// nominator's estimate of the hub's total receive-side intersection work in
// words (each attracted record costs its list length plus AListLen, so
// Requests·(mean shipped list + AListLen)). Work is what the solver
// balances; when zero it falls back to Requests·AListLen.
type HubLoad struct {
	GID      uint64
	Owner    int
	Requests uint64
	AListLen uint64
	Work     uint64
}

// Drop is the sentinel surrogate marking a dead endpoint: a row whose
// shipped adjacency list is empty attracts records that cannot produce a
// single triangle (anything intersected with the empty list is empty), so
// senders skip the endpoint instead of shipping anywhere. Dead rows are
// detected by their owner after orientation/contraction and travel in the
// same broadcast as moved hubs.
const Drop = -1

// Placement maps moved hub vertices to their surrogate PEs. It contains
// only hubs whose surrogate differs from their owner — a hub placed "home"
// behaves exactly like a non-hub and is omitted, so Of doubles as the
// "is this vertex redirected?" test. A surrogate of Drop marks a dead
// endpoint senders suppress outright. Immutable after construction;
// lookups are binary searches over the (small, sorted) moved-hub set.
type Placement struct {
	gids      []uint64
	surrogate []int32
}

// NewPlacement builds a Placement from parallel slices (gids strictly
// ascending). Used to rebuild the solver's result after a broadcast.
func NewPlacement(gids []uint64, surrogates []int32) (*Placement, error) {
	if len(gids) != len(surrogates) {
		return nil, fmt.Errorf("part: placement shape mismatch (%d gids, %d surrogates)", len(gids), len(surrogates))
	}
	for i := 1; i < len(gids); i++ {
		if gids[i-1] >= gids[i] {
			return nil, fmt.Errorf("part: placement gids not strictly ascending at %d", i)
		}
	}
	return &Placement{gids: gids, surrogate: surrogates}, nil
}

// Len returns the number of moved hubs.
func (pl *Placement) Len() int {
	if pl == nil {
		return 0
	}
	return len(pl.gids)
}

// At returns the i-th moved hub and its surrogate, ascending by vertex ID.
func (pl *Placement) At(i int) (gid uint64, surrogate int) {
	return pl.gids[i], int(pl.surrogate[i])
}

// Of returns v's surrogate PE, or ok=false when v is not a moved hub (it is
// then served by its owner like every other vertex). The binary search is
// hand-rolled: Of sits on the per-cut-edge send path, and sort.Search's
// closure would cost an allocation per call there.
func (pl *Placement) Of(v uint64) (int, bool) {
	if pl == nil || len(pl.gids) == 0 {
		return 0, false
	}
	lo, hi := 0, len(pl.gids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pl.gids[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(pl.gids) && pl.gids[lo] == v {
		return int(pl.surrogate[lo]), true
	}
	return 0, false
}

// ComputePlacement assigns each nominated hub a surrogate PE with a greedy
// LPT (longest processing time first) pass over the modeled per-PE load.
// base is each PE's non-hub receive-side work estimate in words; a hub's
// own work is its Work estimate (Requests·AListLen when unset), and moving
// it off its owner additionally costs the one-time neighborhood shipment,
// priced by the α+β model and converted into work words through gamma, the
// modeled seconds one intersection word costs: (α + β·AListLen)/γ. The
// conversion goes through compute time, not through β — on a fast
// transport (small β) shipping a hub is nearly free, which α/β-style word
// conversion would invert. Hubs are placed heaviest first
// onto the PE minimizing the resulting load (ties to the lowest rank), so
// the result is a pure deterministic function of its inputs — every PE that
// evaluates it (or rank 0 alone, broadcasting) gets the identical overlay.
//
// The returned Placement contains only the hubs whose chosen surrogate
// differs from their owner; nil when nothing moves (then owner-driven
// delivery is already balanced and the counting paths skip all placement
// work).
func ComputePlacement(p int, base []float64, hubs []HubLoad, alpha, beta, gamma float64) *Placement {
	if p <= 1 || len(hubs) == 0 || gamma <= 0 {
		return nil
	}
	load := make([]float64, p)
	copy(load, base)
	order := make([]int, len(hubs))
	for i := range order {
		order[i] = i
	}
	weight := func(h HubLoad) float64 {
		if h.Work > 0 {
			return float64(h.Work)
		}
		return float64(h.Requests) * float64(h.AListLen)
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := weight(hubs[order[a]]), weight(hubs[order[b]])
		if wa != wb {
			return wa > wb
		}
		return hubs[order[a]].GID < hubs[order[b]].GID
	})
	type moved struct {
		gid  uint64
		dst  int32
	}
	var moves []moved
	for _, i := range order {
		h := hubs[i]
		w := weight(h)
		if w <= 0 {
			continue // attracts or does no work: leave home
		}
		moveCost := (alpha + beta*float64(h.AListLen)) / gamma
		best, bestLoad := -1, 0.0
		for j := 0; j < p; j++ {
			cand := load[j] + w
			if j != h.Owner {
				cand += moveCost
			}
			if best == -1 || cand < bestLoad {
				best, bestLoad = j, cand
			}
		}
		load[best] = bestLoad
		if best != h.Owner {
			moves = append(moves, moved{gid: h.GID, dst: int32(best)})
		}
	}
	if len(moves) == 0 {
		return nil
	}
	sort.Slice(moves, func(a, b int) bool { return moves[a].gid < moves[b].gid })
	pl := &Placement{
		gids:      make([]uint64, len(moves)),
		surrogate: make([]int32, len(moves)),
	}
	for i, m := range moves {
		pl.gids[i] = m.gid
		pl.surrogate[i] = m.dst
	}
	return pl
}

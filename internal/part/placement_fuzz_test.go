package part

import (
	"encoding/binary"
	"testing"
)

// FuzzPlacement pins the LPT solver's structural invariants on arbitrary
// nomination sets: every moved hub appears exactly once (strictly ascending
// GIDs), its surrogate is a valid rank that differs from its owner, vertices
// that were never nominated are never redirected, and the solve is a pure
// deterministic function of its inputs.
func FuzzPlacement(f *testing.F) {
	mk := func(vals ...uint32) []byte {
		b := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(b[4*i:], v)
		}
		return b
	}
	f.Add(uint8(4), mk(7, 0, 500, 40, 9, 1, 800, 60, 12, 0, 300, 20))
	f.Add(uint8(2), mk(1, 0, 1, 1))
	f.Add(uint8(13), mk(100, 5, 1<<18, 1<<12, 101, 5, 1<<18, 1<<12, 102, 5, 9, 3))
	f.Add(uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, pRaw uint8, data []byte) {
		p := int(pRaw%16) + 1
		var hubs []HubLoad
		seen := make(map[uint64]bool)
		for len(data) >= 16 {
			gid := uint64(binary.LittleEndian.Uint32(data))
			owner := int(binary.LittleEndian.Uint32(data[4:])) % p
			req := uint64(binary.LittleEndian.Uint32(data[8:])) % (1 << 20)
			alen := uint64(binary.LittleEndian.Uint32(data[12:])) % (1 << 16)
			data = data[16:]
			if seen[gid] {
				continue // nominations come from disjoint owners: GIDs are unique
			}
			seen[gid] = true
			hubs = append(hubs, HubLoad{GID: gid, Owner: owner, Requests: req, AListLen: alen})
		}
		base := make([]float64, p)
		for i := range base {
			base[i] = float64((i * 37) % 101)
		}
		owner := make(map[uint64]int, len(hubs))
		for _, h := range hubs {
			owner[h.GID] = h.Owner
		}
		pl := ComputePlacement(p, base, hubs, 1e-6, 1e-9, 1e-9)
		var prev uint64
		for i := 0; i < pl.Len(); i++ {
			gid, dst := pl.At(i)
			if i > 0 && gid <= prev {
				t.Fatalf("moved-hub GIDs not strictly ascending: %d after %d", gid, prev)
			}
			prev = gid
			own, ok := owner[gid]
			if !ok {
				t.Fatalf("moved hub %d was never nominated", gid)
			}
			if dst == own {
				t.Fatalf("hub %d placed on its own owner %d (home placements must be omitted)", gid, dst)
			}
			if dst < 0 || dst >= p {
				t.Fatalf("hub %d placed on out-of-range PE %d (p=%d)", gid, dst, p)
			}
			if got, redirected := pl.Of(gid); !redirected || got != dst {
				t.Fatalf("Of(%d) = (%d,%v), want (%d,true)", gid, got, redirected, dst)
			}
		}
		// Non-nominated vertices are untouched.
		for _, probe := range []uint64{0, 1 << 32, ^uint64(0)} {
			if _, redirected := pl.Of(probe); redirected && !seen[probe] {
				t.Fatalf("non-nominated vertex %d is redirected", probe)
			}
		}
		// Purity: the identical inputs must reproduce the identical overlay.
		again := ComputePlacement(p, base, hubs, 1e-6, 1e-9, 1e-9)
		if again.Len() != pl.Len() {
			t.Fatalf("solver not deterministic: %d vs %d moves", again.Len(), pl.Len())
		}
		for i := 0; i < pl.Len(); i++ {
			g1, d1 := pl.At(i)
			g2, d2 := again.At(i)
			if g1 != g2 || d1 != d2 {
				t.Fatalf("solver not deterministic at %d: (%d,%d) vs (%d,%d)", i, g1, d1, g2, d2)
			}
		}
	})
}

// Package part implements the 1D vertex partitioning the paper assumes: each
// PE owns a contiguous range of vertex IDs, ranges are ordered by rank, and
// every vertex belongs to exactly one PE. It also provides the degree-based
// cost-function partitioners evaluated by Arifuzzaman et al. for load
// balancing.
package part

import (
	"fmt"
)

// Partition describes a 1D partition of vertices 0..n-1 over p PEs into
// contiguous, globally ordered ranges. starts has length p+1 with
// starts[0] == 0 and starts[p] == n; PE i owns [starts[i], starts[i+1]).
type Partition struct {
	starts []uint64
}

// New builds a partition from range boundaries. It validates monotonicity.
func New(starts []uint64) (*Partition, error) {
	if len(starts) < 2 {
		return nil, fmt.Errorf("part: need at least one range, got %d boundaries", len(starts))
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("part: first boundary must be 0, got %d", starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return nil, fmt.Errorf("part: boundaries not monotone at %d: %d < %d", i, starts[i], starts[i-1])
		}
	}
	return &Partition{starts: starts}, nil
}

// Uniform splits n vertices over p PEs as evenly as possible (the first
// n mod p PEs get one extra vertex).
func Uniform(n uint64, p int) *Partition {
	starts := make([]uint64, p+1)
	q, r := n/uint64(p), n%uint64(p)
	for i := 0; i < p; i++ {
		starts[i+1] = starts[i] + q
		if uint64(i) < r {
			starts[i+1]++
		}
	}
	return &Partition{starts: starts}
}

// CostFunc estimates the work charged to a vertex of degree d. The classic
// choices from Arifuzzaman et al. are provided as predefined functions.
type CostFunc func(d int) float64

// Predefined cost functions for ByCost.
var (
	// CostDegree charges d, balancing edges.
	CostDegree CostFunc = func(d int) float64 { return float64(d) }
	// CostDegreeSq charges d², a proxy for intersection work at hubs.
	CostDegreeSq CostFunc = func(d int) float64 { return float64(d) * float64(d) }
	// CostWedges charges C(d,2), the open wedge count of the vertex.
	CostWedges CostFunc = func(d int) float64 { return float64(d) * float64(d-1) / 2 }
	// CostUnit charges 1, reducing ByCost to Uniform.
	CostUnit CostFunc = func(d int) float64 { return 1 }
)

// ByCost partitions by the prefix-sum method: vertex v goes to PE
// floor(p * prefix(v) / total) where prefix is the running cost sum. Ranges
// stay contiguous and ordered, which the distributed algorithms require.
func ByCost(degrees []int, p int, cost CostFunc) *Partition {
	n := len(degrees)
	starts := make([]uint64, p+1)
	total := 0.0
	for _, d := range degrees {
		total += cost(d)
	}
	if total == 0 {
		return Uniform(uint64(n), p)
	}
	prefix := 0.0
	next := 1 // next boundary to place
	for v := 0; v < n; v++ {
		prefix += cost(degrees[v])
		for next < p && prefix >= total*float64(next)/float64(p) {
			starts[next] = uint64(v + 1)
			next++
		}
	}
	for ; next <= p; next++ {
		starts[next] = uint64(n)
	}
	// Boundaries can only move forward, keep monotone.
	for i := 1; i <= p; i++ {
		if starts[i] < starts[i-1] {
			starts[i] = starts[i-1]
		}
	}
	starts[p] = uint64(n)
	return &Partition{starts: starts}
}

// P returns the number of PEs.
func (pt *Partition) P() int { return len(pt.starts) - 1 }

// N returns the total number of vertices.
func (pt *Partition) N() uint64 { return pt.starts[len(pt.starts)-1] }

// Range returns the vertex range [lo, hi) owned by PE i.
func (pt *Partition) Range(i int) (lo, hi uint64) { return pt.starts[i], pt.starts[i+1] }

// Size returns the number of vertices owned by PE i.
func (pt *Partition) Size(i int) int { return int(pt.starts[i+1] - pt.starts[i]) }

// Rank returns the PE owning vertex v. Because ranges are contiguous and
// ordered, this is a binary search over the boundaries — hand-rolled rather
// than sort.Search, since the scatter pass calls it twice per edge and the
// closure indirection is measurable there.
func (pt *Partition) Rank(v uint64) int {
	// Find the first boundary index i in [1, p] with starts[i] > v; the
	// owner is i-1. Out-of-range vertices panic (the binary search would
	// otherwise silently clamp them to the last PE).
	s := pt.starts
	if v >= s[len(s)-1] {
		panic(fmt.Sprintf("part: vertex %d out of range n=%d", v, s[len(s)-1]))
	}
	lo, hi := 1, len(s)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Owns reports whether PE i owns vertex v.
func (pt *Partition) Owns(i int, v uint64) bool {
	return v >= pt.starts[i] && v < pt.starts[i+1]
}

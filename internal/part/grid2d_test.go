package part

import "testing"

func TestSquareSide(t *testing.T) {
	for p, want := range map[int]int{1: 1, 4: 2, 9: 3, 16: 4, 25: 5, 64: 8} {
		q, ok := SquareSide(p)
		if !ok || q != want {
			t.Errorf("SquareSide(%d) = %d,%v, want %d,true", p, q, ok, want)
		}
	}
	for _, p := range []int{0, -4, 2, 3, 5, 8, 10, 15, 24, 63} {
		if _, ok := SquareSide(p); ok {
			t.Errorf("SquareSide(%d) should not be square", p)
		}
	}
}

func TestNewGrid2DRejectsNonSquare(t *testing.T) {
	if _, err := NewGrid2D(100, 6); err == nil {
		t.Fatal("want error for p=6")
	}
}

// TestGrid2DBandRoundTrip: Band/Rel/GID are a bijection, bands partition
// the vertex set with the advertised sizes, and rel is monotone in v within
// a band (so ID-sorted adjacency stays sorted after translation).
func TestGrid2DBandRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n uint64
		p int
	}{{10, 9}, {100, 16}, {1, 4}, {7, 4}, {64, 64}, {33, 1}} {
		g, err := NewGrid2D(tc.n, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		sizes := make([]int, g.Q())
		for v := uint64(0); v < tc.n; v++ {
			b, rel := g.Band(v), g.Rel(v)
			if got := g.GID(b, rel); got != v {
				t.Fatalf("n=%d p=%d: GID(Band,Rel) of %d = %d", tc.n, tc.p, v, got)
			}
			if int(rel) != sizes[b] {
				t.Fatalf("n=%d p=%d: band %d rel not dense/monotone at v=%d", tc.n, tc.p, b, v)
			}
			sizes[b]++
		}
		total := 0
		for b := 0; b < g.Q(); b++ {
			if g.BandSize(b) != sizes[b] {
				t.Fatalf("n=%d p=%d: BandSize(%d)=%d, counted %d", tc.n, tc.p, b, g.BandSize(b), sizes[b])
			}
			total += g.BandSize(b)
		}
		if total != int(tc.n) {
			t.Fatalf("n=%d p=%d: band sizes sum to %d", tc.n, tc.p, total)
		}
	}
}

// TestGrid2DOwner: the owner of every pair is a valid rank, symmetric in
// its arguments, and equals the block named by the endpoint bands.
func TestGrid2DOwner(t *testing.T) {
	g, err := NewGrid2D(40, 9)
	if err != nil {
		t.Fatal(err)
	}
	for u := uint64(0); u < 40; u++ {
		for v := uint64(0); v < 40; v++ {
			if u == v {
				continue
			}
			o := g.Owner(u, v)
			if o != g.Owner(v, u) {
				t.Fatalf("Owner(%d,%d) not symmetric", u, v)
			}
			lo, hi := min(u, v), max(u, v)
			if want := g.Rank(g.Band(lo), g.Band(hi)); o != want {
				t.Fatalf("Owner(%d,%d)=%d, want block rank %d", u, v, o, want)
			}
			r, c := g.RowCol(o)
			if g.Rank(r, c) != o || r >= g.Q() || c >= g.Q() {
				t.Fatalf("RowCol/Rank mismatch for %d", o)
			}
		}
	}
}

func TestGrid2DRowColRanks(t *testing.T) {
	g, err := NewGrid2D(50, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for r := 0; r < g.Q(); r++ {
		for i, rank := range g.RowRanks(r) {
			rr, cc := g.RowCol(rank)
			if rr != r || cc != i {
				t.Fatalf("RowRanks(%d)[%d] = %d at (%d,%d)", r, i, rank, rr, cc)
			}
			seen[rank]++
		}
	}
	for c := 0; c < g.Q(); c++ {
		for i, rank := range g.ColRanks(c) {
			rr, cc := g.RowCol(rank)
			if cc != c || rr != i {
				t.Fatalf("ColRanks(%d)[%d] = %d at (%d,%d)", c, i, rank, rr, cc)
			}
			seen[rank]++
		}
	}
	// Every rank appears in exactly one row and one column group.
	for rank := 0; rank < g.P(); rank++ {
		if seen[rank] != 2 {
			t.Fatalf("rank %d appears %d times across groups", rank, seen[rank])
		}
	}
}

func TestGrid2DPanicsOutOfRange(t *testing.T) {
	g, _ := NewGrid2D(10, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range vertex")
		}
	}()
	g.Band(10)
}

package part

import "testing"

func TestSquareSide(t *testing.T) {
	for p, want := range map[int]int{1: 1, 4: 2, 9: 3, 16: 4, 25: 5, 64: 8} {
		q, ok := SquareSide(p)
		if !ok || q != want {
			t.Errorf("SquareSide(%d) = %d,%v, want %d,true", p, q, ok, want)
		}
	}
	for _, p := range []int{0, -4, 2, 3, 5, 8, 10, 15, 24, 63} {
		if _, ok := SquareSide(p); ok {
			t.Errorf("SquareSide(%d) should not be square", p)
		}
	}
}

func TestFactorGrid(t *testing.T) {
	for _, tc := range []struct{ p, r, c int }{
		{1, 1, 1}, {2, 1, 2}, {3, 1, 3}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4},
		{9, 3, 3}, {12, 3, 4}, {16, 4, 4}, {18, 3, 6}, {24, 4, 6}, {30, 5, 6},
		{7, 1, 7}, {25, 5, 5},
	} {
		r, c := FactorGrid(tc.p)
		if r != tc.r || c != tc.c {
			t.Errorf("FactorGrid(%d) = %d×%d, want %d×%d", tc.p, r, c, tc.r, tc.c)
		}
		if r*c != tc.p || r > c {
			t.Errorf("FactorGrid(%d) = %d×%d not a factorization with r <= c", tc.p, r, c)
		}
	}
}

func TestNewGrid2DAcceptsAnyP(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 6, 8, 12} {
		g, err := NewGrid2D(100, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if g.P() != p {
			t.Fatalf("p=%d: grid is %d×%d", p, g.R(), g.C())
		}
	}
	if _, err := NewGrid2D(100, 0); err == nil {
		t.Fatal("want error for p=0")
	}
	if _, err := NewGrid2DRect(100, 2, 0); err == nil {
		t.Fatal("want error for 2×0")
	}
}

func TestGrid2DRounds(t *testing.T) {
	for _, tc := range []struct{ r, c, l int }{
		{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {1, 4, 4}, {2, 3, 6}, {2, 4, 4}, {3, 4, 12}, {4, 6, 12},
	} {
		g, err := NewGrid2DRect(50, tc.r, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		if g.Rounds() != tc.l {
			t.Errorf("%d×%d: Rounds()=%d, want lcm=%d", tc.r, tc.c, g.Rounds(), tc.l)
		}
		if g.Square() != (tc.r == tc.c) {
			t.Errorf("%d×%d: Square()=%v", tc.r, tc.c, g.Square())
		}
	}
}

// bandRoundTrip checks one banding dimension: band/rel/gid are a bijection,
// bands partition the vertex set with the advertised sizes, and rel is
// dense and monotone in v within a band (so ID-sorted adjacency stays
// sorted after translation).
func bandRoundTrip(t *testing.T, n uint64, m int, band func(uint64) int,
	rel func(uint64) uint64, gid func(int, uint64) uint64, size func(int) int) {
	t.Helper()
	sizes := make([]int, m)
	for v := uint64(0); v < n; v++ {
		b, r := band(v), rel(v)
		if got := gid(b, r); got != v {
			t.Fatalf("n=%d m=%d: gid(band,rel) of %d = %d", n, m, v, got)
		}
		if int(r) != sizes[b] {
			t.Fatalf("n=%d m=%d: band %d rel not dense/monotone at v=%d", n, m, b, v)
		}
		sizes[b]++
	}
	total := 0
	for b := 0; b < m; b++ {
		if size(b) != sizes[b] {
			t.Fatalf("n=%d m=%d: size(%d)=%d, counted %d", n, m, b, size(b), sizes[b])
		}
		total += size(b)
	}
	if total != int(n) {
		t.Fatalf("n=%d m=%d: band sizes sum to %d", n, m, total)
	}
}

func TestGrid2DBandRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n    uint64
		r, c int
	}{{10, 3, 3}, {100, 4, 4}, {1, 2, 2}, {7, 2, 2}, {64, 8, 8}, {33, 1, 1},
		{50, 2, 3}, {50, 2, 4}, {17, 3, 4}, {29, 1, 5}, {64, 4, 6}} {
		g, err := NewGrid2DRect(tc.n, tc.r, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		bandRoundTrip(t, tc.n, g.R(), g.BandRow, g.RelRow, g.GIDRow, g.BandSizeRow)
		bandRoundTrip(t, tc.n, g.C(), g.BandCol, g.RelCol, g.GIDCol, g.BandSizeCol)
		bandRoundTrip(t, tc.n, g.Rounds(),
			func(v uint64) int { return int(v % uint64(g.Rounds())) },
			func(v uint64) uint64 { return v / uint64(g.Rounds()) },
			g.GIDRound, g.BandSizeRound)
	}
}

// TestGrid2DOwner: the owner of every pair is a valid rank, symmetric in
// its arguments, and equals the block named by the endpoint bands — on
// square and rectangular grids.
func TestGrid2DOwner(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{3, 3}, {2, 3}, {2, 4}, {1, 5}} {
		g, err := NewGrid2DRect(40, tc.r, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		for u := uint64(0); u < 40; u++ {
			for v := uint64(0); v < 40; v++ {
				if u == v {
					continue
				}
				o := g.Owner(u, v)
				if o != g.Owner(v, u) {
					t.Fatalf("%d×%d: Owner(%d,%d) not symmetric", tc.r, tc.c, u, v)
				}
				lo, hi := min(u, v), max(u, v)
				if want := g.Rank(g.BandRow(lo), g.BandCol(hi)); o != want {
					t.Fatalf("%d×%d: Owner(%d,%d)=%d, want block rank %d", tc.r, tc.c, u, v, o, want)
				}
				a, b := g.RowCol(o)
				if g.Rank(a, b) != o || a >= g.R() || b >= g.C() {
					t.Fatalf("%d×%d: RowCol/Rank mismatch for %d", tc.r, tc.c, o)
				}
			}
		}
	}
}

func TestGrid2DRowColRanks(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{4, 4}, {2, 3}, {3, 2}, {1, 6}} {
		g, err := NewGrid2DRect(50, tc.r, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]int)
		for a := 0; a < g.R(); a++ {
			ranks := g.RowRanks(a)
			if len(ranks) != g.C() {
				t.Fatalf("%d×%d: RowRanks(%d) has %d members", tc.r, tc.c, a, len(ranks))
			}
			for i, rank := range ranks {
				rr, cc := g.RowCol(rank)
				if rr != a || cc != i {
					t.Fatalf("%d×%d: RowRanks(%d)[%d] = %d at (%d,%d)", tc.r, tc.c, a, i, rank, rr, cc)
				}
				seen[rank]++
			}
		}
		for b := 0; b < g.C(); b++ {
			ranks := g.ColRanks(b)
			if len(ranks) != g.R() {
				t.Fatalf("%d×%d: ColRanks(%d) has %d members", tc.r, tc.c, b, len(ranks))
			}
			for i, rank := range ranks {
				rr, cc := g.RowCol(rank)
				if cc != b || rr != i {
					t.Fatalf("%d×%d: ColRanks(%d)[%d] = %d at (%d,%d)", tc.r, tc.c, b, i, rank, rr, cc)
				}
				seen[rank]++
			}
		}
		// Every rank appears in exactly one row and one column group.
		for rank := 0; rank < g.P(); rank++ {
			if seen[rank] != 2 {
				t.Fatalf("%d×%d: rank %d appears %d times across groups", tc.r, tc.c, rank, seen[rank])
			}
		}
	}
}

// TestGrid2DStripes: round k's row- and column-side stripe parameters
// select exactly the middle vertices v ≡ k (mod L) from the operand bands,
// and the affine translation to round space round-trips through GIDRound.
func TestGrid2DStripes(t *testing.T) {
	for _, tc := range []struct{ r, c int }{{3, 3}, {2, 3}, {2, 4}, {3, 4}, {1, 5}, {4, 6}} {
		const n = 97
		g, err := NewGrid2DRect(n, tc.r, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < g.Rounds(); k++ {
			if g.RootRow(k) != k%g.C() || g.RootCol(k) != k%g.R() {
				t.Fatalf("%d×%d round %d: roots (%d,%d)", tc.r, tc.c, k, g.RootRow(k), g.RootCol(k))
			}
			resA, strideA := g.StripeRow(k)
			resB, strideB := g.StripeCol(k)
			// Walk every vertex of the operand bands and check membership +
			// translation against the direct v mod L test.
			seenA, seenB := 0, 0
			for v := uint64(0); v < n; v++ {
				inRound := int(v%uint64(g.Rounds())) == k
				if g.BandCol(v) == k%g.C() {
					rel := int(g.RelCol(v))
					member := rel%strideA == resA%strideA && rel >= resA
					// rel ≡ resA (mod strideA) always implies rel ≥ resA? resA < strideA
					// is not guaranteed (resA = k/c < L/c = strideA, so it is).
					if member != inRound {
						t.Fatalf("%d×%d round %d: A-side v=%d membership %v, want %v", tc.r, tc.c, k, v, member, inRound)
					}
					if member {
						tt := uint64((rel - resA) / strideA)
						if g.GIDRound(k, tt) != v {
							t.Fatalf("%d×%d round %d: A-side v=%d maps to t=%d → %d", tc.r, tc.c, k, v, tt, g.GIDRound(k, tt))
						}
						seenA++
					}
				}
				if g.BandRow(v) == k%g.R() {
					rel := int(g.RelRow(v))
					member := rel%strideB == resB%strideB && rel >= resB
					if member != inRound {
						t.Fatalf("%d×%d round %d: B-side v=%d membership %v, want %v", tc.r, tc.c, k, v, member, inRound)
					}
					if member {
						tt := uint64((rel - resB) / strideB)
						if g.GIDRound(k, tt) != v {
							t.Fatalf("%d×%d round %d: B-side v=%d maps to t=%d → %d", tc.r, tc.c, k, v, tt, g.GIDRound(k, tt))
						}
						seenB++
					}
				}
			}
			if seenA != g.BandSizeRound(k) || seenB != g.BandSizeRound(k) {
				t.Fatalf("%d×%d round %d: stripe sizes %d/%d, want %d", tc.r, tc.c, k, seenA, seenB, g.BandSizeRound(k))
			}
		}
	}
}

func TestGrid2DPanicsOutOfRange(t *testing.T) {
	g, _ := NewGrid2D(10, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range vertex")
		}
	}()
	g.BandRow(10)
}

// FuzzRectGrid: for arbitrary n, r, c — every unordered non-loop pair has
// exactly one owner, consistent with the band coordinates; every vertex
// lands in exactly one round stripe on each side with a round-tripping
// translation; band sizes tile n.
func FuzzRectGrid(f *testing.F) {
	f.Add(uint64(20), 2, 3)
	f.Add(uint64(7), 3, 3)
	f.Add(uint64(50), 1, 5)
	f.Add(uint64(33), 4, 6)
	f.Fuzz(func(t *testing.T, nRaw uint64, rRaw, cRaw int) {
		n := nRaw%200 + 1
		r := ((rRaw%6)+6)%6 + 1
		c := ((cRaw%6)+6)%6 + 1
		g, err := NewGrid2DRect(n, r, c)
		if err != nil {
			t.Fatal(err)
		}
		if g.Rounds()%r != 0 || g.Rounds()%c != 0 || g.Rounds() > r*c {
			t.Fatalf("Rounds()=%d not a common multiple of %d,%d", g.Rounds(), r, c)
		}
		for v := uint64(0); v < n; v++ {
			if g.GIDRow(g.BandRow(v), g.RelRow(v)) != v || g.GIDCol(g.BandCol(v), g.RelCol(v)) != v {
				t.Fatalf("band round-trip failed for v=%d", v)
			}
			k := int(v % uint64(g.Rounds()))
			resA, strideA := g.StripeRow(k)
			resB, strideB := g.StripeCol(k)
			if g.BandCol(v) != g.RootRow(k) || g.BandRow(v) != g.RootCol(k) {
				t.Fatalf("v=%d: operand bands (%d,%d) disagree with roots of round %d", v, g.BandCol(v), g.BandRow(v), k)
			}
			relA, relB := int(g.RelCol(v)), int(g.RelRow(v))
			if relA%strideA != resA || relB%strideB != resB {
				t.Fatalf("v=%d: not in round-%d stripes (relA=%d relB=%d)", v, k, relA, relB)
			}
			if g.GIDRound(k, uint64((relA-resA)/strideA)) != v || g.GIDRound(k, uint64((relB-resB)/strideB)) != v {
				t.Fatalf("v=%d: stripe translation does not round-trip", v)
			}
		}
		for u := uint64(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				o := g.Owner(u, v)
				if o < 0 || o >= g.P() || o != g.Owner(v, u) {
					t.Fatalf("Owner(%d,%d)=%d invalid", u, v, o)
				}
				a, b := g.RowCol(o)
				if a != g.BandRow(u) || b != g.BandCol(v) {
					t.Fatalf("Owner(%d,%d)=%d at (%d,%d), want (%d,%d)", u, v, o, a, b, g.BandRow(u), g.BandCol(v))
				}
			}
		}
	})
}

// Package leakcheck fails tests that leak goroutines. It is the repo's
// dependency-free stand-in for goleak, scoped to what the failure-handling
// work must guarantee: no transport writer/reader/heartbeat loop, chaos
// injector, or runtime PE goroutine survives the run that spawned it.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// ownedPrefixes mark goroutines this repo is responsible for joining: any
// goroutine created by one of these packages that outlives the test is a
// leak, no matter what it is currently blocked on.
var ownedPrefixes = []string{
	"repro/internal/transport",
	"repro/internal/chaos",
	"repro/internal/dist",
	"repro/internal/comm",
	"repro/internal/core",
}

// Check registers a cleanup that fails t if, after a settling window,
// goroutines created by the repo's transport/runtime packages are still
// alive. Call it first in the test body.
func Check(t testing.TB) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = owned()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// owned returns the stacks of currently live goroutines created by one of
// the owned packages.
func owned() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		idx := strings.LastIndex(g, "created by ")
		if idx < 0 {
			continue // main/test goroutines
		}
		creator := g[idx+len("created by "):]
		for _, p := range ownedPrefixes {
			if strings.HasPrefix(creator, p) {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSeqCountClosedForms(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"K4", gen.Complete(4), 4},
		{"K5", gen.Complete(5), 10},
		{"K10", gen.Complete(10), 120},
		{"K25", gen.Complete(25), 2300},
		{"K_3_4", gen.CompleteBipartite(3, 4), 0},
		{"K_10_10", gen.CompleteBipartite(10, 10), 0},
		{"C3", gen.Cycle(3), 1},
		{"C4", gen.Cycle(4), 0},
		{"C100", gen.Cycle(100), 0},
		{"P10", gen.Path(10), 0},
		{"Star20", gen.Star(20), 0},
		{"Wheel3", gen.Wheel(3), 4}, // K4
		{"Wheel5", gen.Wheel(5), 5},
		{"Wheel50", gen.Wheel(50), 50},
		{"Friendship7", gen.Friendship(7), 7},
		{"Grid8x5", gen.Grid2D(8, 5), 0},
		{"TriGrid6x4", gen.TriangularGrid(6, 4), 2 * 5 * 3},
		{"Petersen", gen.Petersen(), 0},
		{"CliqueChain4x6", gen.CliqueChain(4, 6), 4 * 20},
		{"Empty", graph.FromEdges(0, nil), 0},
		{"Singleton", graph.FromEdges(1, nil), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := SeqCount(tc.g); got != tc.want {
				t.Errorf("SeqCount = %d, want %d", got, tc.want)
			}
			if got := NaiveCount(tc.g); got != tc.want {
				t.Errorf("NaiveCount = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestSeqCountMatchesNaiveOnRandomGraphs(t *testing.T) {
	check := func(seed uint64) bool {
		g := gen.GNM(60, 240, seed)
		return SeqCount(g) == NaiveCount(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSeqDeltasSumsToThreeTimesCount(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42} {
		g := gen.RMAT(gen.DefaultRMAT(8, seed))
		count, deltas := SeqDeltas(g)
		if count != SeqCount(g) {
			t.Fatalf("seed %d: SeqDeltas count %d != SeqCount %d", seed, count, SeqCount(g))
		}
		var sum uint64
		for _, d := range deltas {
			sum += d
		}
		if sum != 3*count {
			t.Fatalf("seed %d: Σdeltas = %d, want 3*%d", seed, sum, count)
		}
	}
}

func TestSeqEnumerateEmitsEachTriangleOnce(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(7, 9))
	seen := make(map[[3]graph.Vertex]int)
	SeqEnumerate(g, func(v, u, w graph.Vertex) {
		seen[CanonTriangle(v, u, w)]++
	})
	want := SeqCount(g)
	if uint64(len(seen)) != want {
		t.Fatalf("enumerated %d distinct triangles, want %d", len(seen), want)
	}
	for tri, n := range seen {
		if n != 1 {
			t.Fatalf("triangle %v emitted %d times", tri, n)
		}
		if !g.HasEdge(tri[0], tri[1]) || !g.HasEdge(tri[1], tri[2]) || !g.HasEdge(tri[0], tri[2]) {
			t.Fatalf("enumerated non-triangle %v", tri)
		}
	}
}

func TestSeqLCC(t *testing.T) {
	// Every vertex of a complete graph has LCC 1.
	for _, lcc := range SeqLCC(gen.Complete(6)) {
		if lcc != 1 {
			t.Fatalf("K6 LCC = %v, want all 1", lcc)
		}
	}
	// Friendship graph: hub sees k triangles among C(2k,2) pairs, leaves 1.
	k := 5
	lcc := SeqLCC(gen.Friendship(k))
	hubWant := 2 * float64(k) / (float64(2*k) * float64(2*k-1))
	if diff := lcc[0] - hubWant; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("friendship hub LCC = %v, want %v", lcc[0], hubWant)
	}
	for v := 1; v < 2*k+1; v++ {
		if lcc[v] != 1 {
			t.Fatalf("friendship leaf %d LCC = %v, want 1", v, lcc[v])
		}
	}
	// Triangle-free graphs have all-zero LCC.
	for _, l := range SeqLCC(gen.Petersen()) {
		if l != 0 {
			t.Fatal("Petersen should have zero LCC everywhere")
		}
	}
}

// TestIntersectKernelsAgreeWithMerge drives every kernel of the adaptive
// engine over random sorted slices at skew ratios from balanced to 1:200,
// with CountMerge as the oracle; each kernel must agree in both argument
// orders.
func TestIntersectKernelsAgreeWithMerge(t *testing.T) {
	kernels := []struct {
		name string
		run  func(a, b []graph.Vertex) uint64
	}{
		{"adaptive", graph.CountIntersect},
		{"branchless", graph.CountMergeBranchless},
		{"gallop", graph.CountGallop},
		{"bitmap", func(a, b []graph.Vertex) uint64 {
			bs := graph.NewBitset(1000)
			bs.SetList(b)
			return bs.CountList(a)
		}},
		{"foreach", func(a, b []graph.Vertex) uint64 {
			var n uint64
			graph.ForEachCommon(a, b, func(graph.Vertex) { n++ })
			return n
		}},
	}
	sizes := []struct {
		name   string
		na, nb uint64
	}{
		{"balanced", 200, 200},
		{"mild-skew", 200, 25},
		{"heavy-skew", 200, 8}, // triggers galloping inside adaptive
		{"singleton", 200, 1},
	}
	for _, k := range kernels {
		for _, sz := range sizes {
			t.Run(k.name+"/"+sz.name, func(t *testing.T) {
				check := func(seed uint64) bool {
					rng := gen.NewRNG(seed)
					a := randomSorted(rng, 1+int(rng.Uint64n(sz.na)), 1000)
					b := randomSorted(rng, 1+int(rng.Uint64n(sz.nb)), 1000)
					want := graph.CountMerge(a, b)
					return k.run(a, b) == want && k.run(b, a) == want
				}
				if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

func randomSorted(rng *gen.SplitMix64, n int, max uint64) []graph.Vertex {
	set := make(map[uint64]struct{})
	for len(set) < n {
		set[rng.Uint64n(max)] = struct{}{}
	}
	out := make([]graph.Vertex, 0, n)
	for v := range set {
		out = append(out, v)
	}
	sortVertices(out)
	return out
}

func sortVertices(vs []graph.Vertex) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/gen"
)

func TestGlobalClusteringCoefficient(t *testing.T) {
	// K_n: transitivity 1.
	g := gen.Complete(8)
	if gcc := GlobalClusteringCoefficient(g, SeqCount(g)); math.Abs(gcc-1) > 1e-12 {
		t.Fatalf("K8 transitivity = %v, want 1", gcc)
	}
	// Star: no triangles.
	s := gen.Star(10)
	if gcc := GlobalClusteringCoefficient(s, 0); gcc != 0 {
		t.Fatalf("star transitivity = %v, want 0", gcc)
	}
	// Empty graph: guarded division.
	if gcc := GlobalClusteringCoefficient(gen.Path(1), 0); gcc != 0 {
		t.Fatal("degenerate graph should give 0")
	}
}

func TestAverageLCC(t *testing.T) {
	if AverageLCC(nil) != 0 {
		t.Fatal("empty vector should average to 0")
	}
	if got := AverageLCC([]float64{0.5, 1.0, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("average = %v, want 0.5", got)
	}
}

func TestLCCHistogram(t *testing.T) {
	h := LCCHistogram([]float64{0, 0.05, 0.5, 0.99, 1.0}, 10)
	if h[0] != 2 {
		t.Fatalf("bin 0 = %d, want 2", h[0])
	}
	if h[5] != 1 {
		t.Fatalf("bin 5 = %d, want 1", h[5])
	}
	if h[9] != 2 { // 0.99 and the clamped 1.0
		t.Fatalf("bin 9 = %d, want 2", h[9])
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 {
		t.Fatalf("histogram total %d, want 5", total)
	}
}

func TestLCCErrorMetrics(t *testing.T) {
	a := []float64{0.1, 0.5, 0.9}
	b := []float64{0.2, 0.5, 0.6}
	if got := LCCMaxAbsError(a, b); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("max abs err = %v, want 0.3", got)
	}
	if got := LCCMeanAbsError(a, b); math.Abs(got-(0.1+0+0.3)/3) > 1e-12 {
		t.Fatalf("mean abs err = %v", got)
	}
	if LCCMeanAbsError(nil, nil) != 0 {
		t.Fatal("empty vectors should give 0")
	}
}

func TestTransitivityConsistentAcrossAlgorithms(t *testing.T) {
	g := gen.RHG(gen.RHGConfig{N: 512, AvgDegree: 16, Gamma: 2.8, Seed: 5})
	want := GlobalClusteringCoefficient(g, SeqCount(g))
	res, err := Run(AlgoCetric2, g, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := GlobalClusteringCoefficient(g, res.Count); got != want {
		t.Fatalf("transitivity %v != %v", got, want)
	}
	if want < 0.3 {
		t.Fatalf("RHG should be strongly clustered, transitivity %v", want)
	}
}

package core

import (
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// cetricBody is CETRIC (Algorithm 3): the contraction-based two-phase
// algorithm. The local phase runs EDGE ITERATOR on the expanded local graph
// (locals + ghosts) and finds every type-1 and type-2 triangle without any
// communication; the contraction step removes all non-cut edges; the global
// phase runs the DITRIC machinery on the remaining cut graph, which by
// Lemma 1 contains exactly the type-3 triangles.
func cetricBody(pe *dist.PE, pt *part.Partition, edges []graph.Edge, cfg Config, out *peOutcome) error {
	sw := newStopwatch(pe.C, out)
	sw.phase(PhaseBuild)
	lg := graph.BuildLocalPar(pt, pe.Rank, edges, cfg.Threads)
	return cetricFrom(pe, pt, lg, cfg, out, sw)
}

// cetricFrom runs CETRIC's phases on an already-built local view — the
// entry point shared by the one-shot body above and the streaming driver.
func cetricFrom(pe *dist.PE, pt *part.Partition, lg *graph.LocalGraph, cfg Config, out *peOutcome, sw *stopwatch) error {
	sw.phase(PhaseDegrees)
	exchangeGhostDegrees(pe, lg, cfg.SparseDegreeExchange, cfg.Threads)
	sw.phase(PhaseOrient)
	// Expansion: orient every row, including ghosts (their visible
	// neighborhoods are the rewired incoming cut edges).
	ori := graph.OrientLocalPar(lg, cfg.Threads)
	ori.BuildHubsPar(cfg.hubMinDegree(), cfg.Threads)
	sw.phase(PhasePreprocess) // residual: handler setup + the barrier
	state := newCountState(lg, cfg)

	// Overlapped pipeline (pipeline.go): incoming cut neighborhoods wait
	// encoded in the transport until contraction builds the cut graph,
	// then the send sweep overlaps emission with receive-side
	// intersections drained by the same chunk-stealing worker pool.
	if cfg.Overlap {
		cetricOverlap(pe, pt, lg, ori, state, cfg, sw)
		finishBody(pe, sw, state, cfg, out)
		return nil
	}

	// The global-phase receive handler intersects with the *contracted*
	// A-lists. cut is assigned in the contraction phase, strictly before any
	// chNeigh record can be dispatched: dispatch only happens inside this
	// PE's Poll/Drain calls, the first of which is in its own global phase.
	// plc follows the same ordering argument (assigned right after cut,
	// before the first possible dispatch — the hub-ship drain).
	var cut *graph.LocalOriented
	var plc *placeRun
	// Hybrid mode funnels receive-side intersections to a worker pool; the
	// pool resolves cut lazily (it is assigned in the contraction phase,
	// strictly before the first task can be dispatched).
	var pool *recvPool
	if cfg.Threads > 1 {
		pool = newRecvPool(cfg.Threads, lg, cfg, func() *graph.LocalOriented { return cut }, func() *placeRun { return plc })
	}
	pe.Q.Handle(chNeigh, func(src int, words []uint64) {
		v := words[0]
		list := words[1:]
		if pool != nil {
			pool.submit(src, v, list, pe.Q.PinPayload())
			return
		}
		state.t3 += state.recvNeighAt(src, v, list, cut, plc)
	})
	pe.Q.Handle(chNeighEdge, func(src int, words []uint64) {
		state.t3 += state.recvNeighEdge(words[0], words[1], words[2:], cut)
	})
	pe.Q.Handle(chDelta, state.handleDelta)
	pe.C.Barrier()

	sw.phase(PhaseLocal)
	if cfg.Threads > 1 {
		hybridCetricLocal(lg, ori, state, cfg)
	} else {
		cetricLocalPhase(lg, ori, state, 0, lg.Rows())
	}

	out.partialCount = state.count // coherent local-phase snapshot for degraded merges
	sw.phase(PhaseContraction)
	cut = ori.ContractPar(cfg.Threads)
	cut.BuildHubsPar(cfg.hubMinDegree(), cfg.Threads)

	// Placement over the cut graph: the global phase ships and intersects
	// contracted A-lists, so nomination weights and stored tables model
	// exactly those. The Gather inside synchronizes all PEs past their
	// contraction before any hub ships.
	plc = computePlacement(pe, lg, cut, cfg)
	if plc != nil {
		pe.Q.Handle(chHubShip, plc.handleShip)
		sw.phase(PhasePlace)
		plc.ship(pe, cut)
	}

	sw.phase(PhaseGlobal)
	// Cut neighborhoods go out as (v, A(v)...) records with A(v) ID-sorted —
	// the shape the chNeigh delta-varint codec compresses best.
	cetricGlobalRows(pe, pt, lg, cut, state, 0, lg.NLocal(), nil, cfg.NoSurrogate, plc)
	pe.Q.Drain()
	if pool != nil {
		poolState := newCountState(lg, cfg)
		pool.drain(poolState)
		state.t3 += poolState.count
		state.merge(poolState)
	}

	finishBody(pe, sw, state, cfg, out)
	return nil
}

// cetricLocalPhase runs EDGE ITERATOR over rows [lo,hi) of the expanded
// local graph, counting and classifying type-1/type-2 triangles. It works
// entirely in row space: A-lists are iterated as row indices (so ghost
// endpoints cost no map lookup) and every wedge closes through the adaptive
// pair kernels.
func cetricLocalPhase(lg *graph.LocalGraph, ori *graph.LocalOriented, state *countState, lo, hi int) {
	nLoc := int32(lg.NLocal())
	for r := lo; r < hi; r++ {
		rv := int32(r)
		vLocal := rv < nLoc
		av := ori.OutRows(rv)
		for _, ur := range av {
			ru := int32(ur)
			if !vLocal || ru >= nLoc {
				// At most one corner of a local-phase triangle is remote, and
				// here it is v or u: everything found is type 2.
				c := state.countWedgeRows(av, rv, ru, ori)
				state.t2 += c
				continue
			}
			// Both wedge endpoints local: the closing vertex decides the type.
			ori.ForEachCommonRowsWith(av, ru, func(w graph.Vertex) {
				state.addRows(rv, ru, int32(w))
				if int32(w) < nLoc {
					state.t1++
				} else {
					state.t2++
				}
			})
		}
	}
}

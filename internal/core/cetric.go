package core

import (
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// cetricBody is CETRIC (Algorithm 3): the contraction-based two-phase
// algorithm. The local phase runs EDGE ITERATOR on the expanded local graph
// (locals + ghosts) and finds every type-1 and type-2 triangle without any
// communication; the contraction step removes all non-cut edges; the global
// phase runs the DITRIC machinery on the remaining cut graph, which by
// Lemma 1 contains exactly the type-3 triangles.
func cetricBody(pe *dist.PE, pt *part.Partition, edges []graph.Edge, cfg Config, out *peOutcome) error {
	sw := newStopwatch(pe.C, out)
	sw.phase(PhasePreprocess)

	lg := graph.BuildLocal(pt, pe.Rank, edges)
	exchangeGhostDegrees(pe, lg, cfg.SparseDegreeExchange)
	// Expansion: orient every row, including ghosts (their visible
	// neighborhoods are the rewired incoming cut edges).
	ori := graph.OrientLocal(lg)
	state := newCountState(lg, cfg)

	// The global-phase receive handler intersects with the *contracted*
	// A-lists. cut is assigned in the contraction phase, strictly before any
	// chNeigh record can be dispatched: dispatch only happens inside this
	// PE's Poll/Drain calls, the first of which is in its own global phase.
	var cut *graph.LocalOriented
	// Hybrid mode funnels receive-side intersections to a worker pool; the
	// pool resolves cut lazily (it is assigned in the contraction phase,
	// strictly before the first task can be dispatched).
	var pool *recvPool
	if cfg.Threads > 1 {
		pool = newRecvPool(cfg.Threads, lg, cfg, func() *graph.LocalOriented { return cut })
	}
	pe.Q.Handle(chNeigh, func(src int, words []uint64) {
		v := words[0]
		list := words[1:]
		if pool != nil {
			pool.submit(v, list)
			return
		}
		for _, u := range list {
			if !lg.IsLocal(u) {
				continue
			}
			c := state.countEdge(v, u, list, cut.Out(lg.Row(u)))
			state.t3 += c
		}
	})
	pe.Q.Handle(chNeighEdge, func(src int, words []uint64) {
		v, u := words[0], words[1]
		list := words[2:]
		if lg.IsLocal(u) {
			c := state.countEdge(v, u, list, cut.Out(lg.Row(u)))
			state.t3 += c
		}
	})
	pe.Q.Handle(chDelta, state.handleDelta)
	pe.C.Barrier()

	sw.phase(PhaseLocal)
	if cfg.Threads > 1 {
		hybridCetricLocal(lg, ori, state, cfg)
	} else {
		cetricLocalPhase(lg, ori, state, 0, lg.Rows())
	}

	sw.phase(PhaseContraction)
	cut = ori.Contract()

	sw.phase(PhaseGlobal)
	// Cut neighborhoods go out as (v, A(v)...) records with A(v) ID-sorted —
	// the shape the chNeigh delta-varint codec compresses best.
	buf := make([]uint64, 0, 256)
	for r := 0; r < lg.NLocal(); r++ {
		v := lg.GID(int32(r))
		av := cut.Out(int32(r))
		if len(av) < 2 {
			continue
		}
		lastRank := -1
		for _, u := range av {
			if cfg.NoSurrogate {
				buf = append(buf[:0], v, u)
				buf = append(buf, av...)
				pe.Q.Send(chNeighEdge, pt.Rank(u), buf)
				continue
			}
			// Surrogate dedup: av is ID-sorted, ranks are contiguous.
			if j := pt.Rank(u); j != lastRank {
				buf = append(buf[:0], v)
				buf = append(buf, av...)
				pe.Q.Send(chNeigh, j, buf)
				lastRank = j
			}
		}
	}
	pe.Q.Drain()
	if pool != nil {
		poolState := newCountState(lg, cfg)
		pool.drain(poolState)
		state.t3 += poolState.count
		state.merge(poolState)
	}

	if cfg.LCC {
		sw.phase(PhasePostprocess)
		state.flushGhostDeltas(pe)
		pe.Q.Drain()
	}
	sw.stop()
	state.finish(out)
	return nil
}

// cetricLocalPhase runs EDGE ITERATOR over rows [lo,hi) of the expanded
// local graph, counting and classifying type-1/type-2 triangles.
func cetricLocalPhase(lg *graph.LocalGraph, ori *graph.LocalOriented, state *countState, lo, hi int) {
	for r := lo; r < hi; r++ {
		v := lg.GID(int32(r))
		av := ori.Out(int32(r))
		vLocal := r < lg.NLocal()
		for _, u := range av {
			row := lg.Row(u)
			au := ori.Out(row)
			uLocal := lg.IsLocal(u)
			if !vLocal || !uLocal {
				// At most one corner of a local-phase triangle is remote, and
				// here it is v or u: everything found is type 2.
				c := state.countEdge(v, u, av, au)
				state.t2 += c
				continue
			}
			// Both wedge endpoints local: the closing vertex decides the type.
			graph.ForEachCommon(av, au, func(w graph.Vertex) {
				state.add(v, u, w)
				if lg.IsLocal(w) {
					state.t1++
				} else {
					state.t2++
				}
			})
		}
	}
}

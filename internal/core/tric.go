package core

import (
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// tricBody reimplements the TriC baseline (Ghosh & Halappanavar) from its
// published description: no degree orientation (edges are oriented by vertex
// ID only, so high-degree hubs keep large out-neighborhoods), and *static*
// message aggregation — every shipment is buffered in full and exchanged in
// one single irregular all-to-all. The static buffers make its peak memory
// proportional to the total communication volume, which is superlinear in
// the input; that is the paper's explanation for TriC's out-of-memory
// crashes, and it shows up here as Metrics.PeakBuffered.
func tricBody(pe *dist.PE, pt *part.Partition, edges []graph.Edge, cfg Config, out *peOutcome) error {
	sw := newStopwatch(pe.C, out)
	sw.phase(PhaseBuild)
	lg := graph.BuildLocalPar(pt, pe.Rank, edges, cfg.Threads)
	sw.phase(PhaseOrient)
	// No ghost degree exchange: ID orientation needs no remote information.
	ori := graph.OrientLocalByIDPar(lg, cfg.Threads)
	// Without the degree orientation, hub rows keep their full
	// out-neighborhoods — exactly what the packed hub bitmaps are for.
	ori.BuildHubsPar(cfg.hubMinDegree(), cfg.Threads)
	sw.phase(PhasePreprocess) // residual: state setup, matching the other bodies
	state := newCountState(lg, cfg)

	sw.phase(PhaseLocal)
	// Count local wedges and build the complete static send buffers.
	sendBufs := make([][]uint64, pe.P)
	for r := 0; r < lg.NLocal(); r++ {
		rv := int32(r)
		v := lg.GID(rv)
		av := ori.Out(rv)
		avRows := ori.OutRows(rv)
		lastRank := -1
		for _, u := range av {
			if lg.IsLocal(u) {
				state.countWedgeRows(avRows, rv, int32(u-lg.First), ori)
				continue
			}
			if len(av) < 2 {
				continue
			}
			if j := pt.Rank(u); j != lastRank {
				sendBufs[j] = append(sendBufs[j], v, uint64(len(av)))
				sendBufs[j] = append(sendBufs[j], av...)
				lastRank = j
			}
		}
	}
	// Record the static buffer footprint (TriC's downfall).
	var buffered int64
	for _, b := range sendBufs {
		buffered += int64(len(b))
	}
	if buffered > pe.C.M.PeakBuffered {
		pe.C.M.PeakBuffered = buffered
	}

	out.partialCount = state.count // coherent local-phase snapshot for degraded merges
	sw.phase(PhaseGlobal)
	received := pe.C.DenseExchange(sendBufs)
	for src, words := range received {
		if src == pe.Rank {
			continue
		}
		for i := 0; i < len(words); {
			v := words[i]
			n := int(words[i+1])
			list := words[i+2 : i+2+n]
			i += 2 + n
			state.recvNeigh(v, list, ori)
		}
	}
	sw.stop()
	state.finish(out)
	return nil
}

package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

// BenchmarkPlacedRecvSteadyState measures allocs/op of the placed receive
// path: pass 1 (local-endpoint intersections minus redirected-away hubs)
// plus the surrogate scan over the stored-hub table, per received record.
// The translation scratch, the redirect binary searches, and the merge scan
// are all allocation-free once warm, so the steady state must report zero
// allocations — this joins the CI allocation-regression gate next to the
// owner-driven hybrid receive path.
func BenchmarkPlacedRecvSteadyState(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(10, 42))
	const p = 4
	pt := part.Uniform(uint64(g.NumVertices()), p)
	per := graph.ScatterEdges(pt, g.Edges())
	lg := graph.BuildLocal(pt, 1, per[1])
	for i, gid := range lg.Ghosts() {
		lg.SetGhostDegree(int32(lg.NLocal()+i), g.Degree(gid))
	}
	ori := graph.OrientLocalOnly(lg)
	ori.BuildHubs(graph.DefaultHubMinDegree)

	// Records replay local rows' neighborhoods, exactly the wire shape the
	// placed path sees. The sender rank is fixed to 3; stored hubs get owner
	// 2, so the co-location skip never fires and every scan does real work.
	type rec struct {
		v    graph.Vertex
		list []uint64
	}
	var recs []rec
	for r := 0; r < lg.NLocal() && len(recs) < 64; r++ {
		if row := lg.RowNeighbors(int32(r)); len(row) >= 4 {
			recs = append(recs, rec{v: lg.Ghosts()[0], list: row})
		}
	}
	if len(recs) == 0 {
		b.Fatal("no records to replay")
	}

	// Build the overlay by replaying hub shipments: pick remote vertices
	// that actually occur in the replayed lists so the merge scan hits, and
	// redirect a few local rows so pass 1 exercises its skip filter.
	pr := &placeRun{}
	stored := 0
	for _, rc := range recs {
		for _, x := range rc.list {
			if !lg.IsLocal(x) && stored < 8 {
				pr.handleShip(2, append([]uint64{x}, rc.list...))
				stored++
				break
			}
		}
	}
	if stored == 0 {
		b.Fatal("no remote vertices to store as hubs")
	}
	for r := 0; r < lg.NLocal() && len(pr.redirRows) < 4; r += 7 {
		pr.redirRows = append(pr.redirRows, int32(r))
		pr.redirGIDs = append(pr.redirGIDs, lg.GID(int32(r)))
		pr.redirDst = append(pr.redirDst, 2)
	}
	pr.ensureTable()

	state := newCountState(lg, Config{P: p})
	for i := 0; i < 16; i++ {
		for _, rc := range recs {
			state.recvNeighAt(3, rc.v, rc.list, ori, pr) // warm the translation scratch
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rc := range recs {
			state.recvNeighAt(3, rc.v, rc.list, ori, pr)
		}
	}
	b.StopTimer()
	if state.count == 0 {
		b.Fatal("placed receive path found no triangles; the benchmark is vacuous")
	}
}

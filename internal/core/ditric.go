package core

import (
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// ditricBody is DITRIC (Algorithm 2 plus the engineering of §IV-A/B): the
// distributed EDGE ITERATOR with degree orientation, dynamic message
// aggregation, the surrogate dedup of Arifuzzaman et al. (each A(v) sent at
// most once per destination PE), and — when the queue routes through the
// grid — indirect delivery (DITRIC2). The chNeigh/chNeighEdge records ship
// ID-sorted A-lists, which the channel's delta-varint wire codec compresses
// at flush time (codec.go); the body itself is codec-agnostic.
func ditricBody(pe *dist.PE, pt *part.Partition, edges []graph.Edge, cfg Config, out *peOutcome) error {
	sw := newStopwatch(pe.C, out)
	sw.phase(PhaseBuild)
	lg := graph.BuildLocalPar(pt, pe.Rank, edges, cfg.Threads)
	return ditricFrom(pe, pt, lg, cfg, out, sw)
}

// ditricFrom runs DITRIC's phases on an already-built local view — the
// entry point shared by the one-shot body above and the streaming driver
// (which builds lg incrementally through graph.StreamBuilder before any
// counting starts).
func ditricFrom(pe *dist.PE, pt *part.Partition, lg *graph.LocalGraph, cfg Config, out *peOutcome, sw *stopwatch) error {
	sw.phase(PhaseDegrees)
	exchangeGhostDegrees(pe, lg, cfg.SparseDegreeExchange, cfg.Threads)
	sw.phase(PhaseOrient)
	ori := graph.OrientLocalOnlyPar(lg, cfg.Threads)
	ori.BuildHubsPar(cfg.hubMinDegree(), cfg.Threads)
	sw.phase(PhasePreprocess) // residual: handler setup + the barrier
	// Cost-driven hub placement: nominate heavy local rows, solve the LPT at
	// rank 0, broadcast. The Gather inside synchronizes the cluster past the
	// degree exchange, so the hub shipment below can never race a PE still
	// draining degree traffic. nil when disabled or nothing moves.
	plc := computePlacement(pe, lg, ori, cfg)
	state := newCountState(lg, cfg)

	// Overlapped pipeline (pipeline.go): no barrier between local and
	// global — shipments flush eagerly as row chunks complete and the
	// chunk-stealing workers drain received records concurrently with
	// residual local rows.
	if cfg.Overlap {
		ditricOverlap(pe, pt, lg, ori, state, cfg, sw, plc)
		finishBody(pe, sw, state, cfg, out)
		return nil
	}

	// Hybrid mode funnels receive-side intersections to a worker pool
	// (§IV-D); single-threaded mode intersects inline. Received lists are
	// row-translated once per record (recvNeigh), then intersected with the
	// adaptive kernels; pooled tasks pin the decode arena until the worker
	// has consumed the list.
	var pool *recvPool
	if cfg.Threads > 1 {
		pool = newRecvPool(cfg.Threads, lg, cfg, func() *graph.LocalOriented { return ori }, func() *placeRun { return plc })
	}
	pe.Q.Handle(chNeigh, func(src int, words []uint64) {
		v := words[0]
		list := words[1:]
		if pool != nil {
			pool.submit(src, v, list, pe.Q.PinPayload())
			return
		}
		state.recvNeighAt(src, v, list, ori, plc)
	})
	pe.Q.Handle(chNeighEdge, func(src int, words []uint64) {
		state.recvNeighEdge(words[0], words[1], words[2:], ori)
	})
	pe.Q.Handle(chDelta, state.handleDelta)
	if plc != nil {
		// Ship moved hubs' neighborhoods to their surrogates; the collective
		// drain inside guarantees every stored-hub table is complete before
		// any counting record flows.
		pe.Q.Handle(chHubShip, plc.handleShip)
		sw.phase(PhasePlace)
		plc.ship(pe, ori)
		sw.phase(PhasePreprocess)
	}
	pe.C.Barrier() // everyone finished preprocessing; handlers are live

	sw.phase(PhaseLocal)
	if cfg.Threads > 1 {
		hybridDitricLocal(pe, lg, ori, state, cfg, plc)
	} else {
		ditricLocalRows(pe, pt, lg, ori, state, 0, lg.NLocal(), nil, cfg.NoSurrogate, plc)
	}

	out.partialCount = state.count // coherent local-phase snapshot for degraded merges
	sw.phase(PhaseGlobal)
	pe.Q.Drain()
	if pool != nil {
		pool.drain(state)
	}

	finishBody(pe, sw, state, cfg, out)
	return nil
}

// finishBody is the shared tail of the DITRIC/CETRIC bodies: the optional
// LCC ghost-Δ postprocess exchange, closing the stopwatch, and exporting
// the per-PE outcome.
func finishBody(pe *dist.PE, sw *stopwatch, state *countState, cfg Config, out *peOutcome) {
	if cfg.LCC {
		sw.phase(PhasePostprocess)
		state.flushGhostDeltas(pe)
		pe.Q.Drain()
	}
	sw.stop()
	// Export the deterministic receive-side work meter (the per-PE load the
	// placement overlay balances) through the rank's Metrics.
	pe.C.M.RecvWorkWords += int64(state.recvWork)
	state.finish(out)
}

package core

import (
	"math"
	"testing"

	"repro/internal/gen"
)

func TestApproxCetricExact12MatchesCetric(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 41))
	for _, p := range []int{2, 4, 7} {
		exact, err := Run(AlgoCetric, g, Config{P: p})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := RunApproxCetric(g, Config{P: p}, AMQConfig{BitsPerKey: 8})
		if err != nil {
			t.Fatal(err)
		}
		want12 := exact.TypeCounts[0] + exact.TypeCounts[1]
		if approx.Exact12 != want12 {
			t.Fatalf("p=%d: exact12 = %d, want %d", p, approx.Exact12, want12)
		}
	}
}

func TestApproxCetricOverestimatesBeforeCorrection(t *testing.T) {
	// Bloom filters can only produce false positives, so the raw type-3
	// count must be >= the true type-3 count.
	g := gen.GNM(600, 7200, 3) // GNM: many type-3 triangles
	p := 6
	exact, err := Run(AlgoCetric, g, Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := RunApproxCetric(g, Config{P: p}, AMQConfig{BitsPerKey: 4})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Type3Raw < exact.TypeCounts[2] {
		t.Fatalf("raw type-3 %d below true %d: false negatives?", approx.Type3Raw, exact.TypeCounts[2])
	}
}

func TestApproxCetricAccuracyImprovesWithBits(t *testing.T) {
	g := gen.GNM(500, 6000, 11)
	p := 5
	exact, err := Run(AlgoCetric, g, Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(exact.Count)
	var prevErr float64 = math.Inf(1)
	improved := 0
	for _, bits := range []float64{2, 6, 16} {
		approx, err := RunApproxCetric(g, Config{P: p}, AMQConfig{BitsPerKey: bits, Truthful: true})
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(approx.Estimate-truth) / truth
		if relErr < prevErr {
			improved++
		}
		prevErr = relErr
		if bits >= 16 && relErr > 0.05 {
			t.Fatalf("16 bits/key should be near exact, rel err %.4f", relErr)
		}
	}
	if improved == 0 {
		t.Fatal("accuracy never improved with more bits")
	}
}

func TestApproxCetricTruthfulCorrectionHelps(t *testing.T) {
	g := gen.GNM(500, 6000, 13)
	p := 5
	exact, err := Run(AlgoCetric, g, Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(exact.Count)
	raw, err := RunApproxCetric(g, Config{P: p}, AMQConfig{BitsPerKey: 3, Truthful: false})
	if err != nil {
		t.Fatal(err)
	}
	corr, err := RunApproxCetric(g, Config{P: p}, AMQConfig{BitsPerKey: 3, Truthful: true})
	if err != nil {
		t.Fatal(err)
	}
	errRaw := math.Abs(raw.Estimate - truth)
	errCorr := math.Abs(corr.Estimate - truth)
	if errCorr > errRaw {
		t.Fatalf("truthful correction made it worse: |%f-%f| vs |%f-%f|",
			corr.Estimate, truth, raw.Estimate, truth)
	}
}

func TestApproxCetricBlockedFilter(t *testing.T) {
	g := gen.GNM(400, 4000, 17)
	approx, err := RunApproxCetric(g, Config{P: 4}, AMQConfig{BitsPerKey: 12, Blocked: true, Truthful: true})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(AlgoCetric, g, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(approx.Estimate-float64(exact.Count)) / float64(exact.Count)
	if relErr > 0.1 {
		t.Fatalf("blocked filter estimate off by %.2f%%", relErr*100)
	}
}

func TestApproxVolumeBelowExactOnWideNeighborhoods(t *testing.T) {
	// With few bits per key the AMQ payload must undercut shipping the
	// plain neighborhoods.
	g := gen.GNM(800, 12800, 19)
	p := 8
	exact, err := Run(AlgoCetric, g, Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := RunApproxCetric(g, Config{P: p}, AMQConfig{BitsPerKey: 4})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Agg.TotalPayload >= exact.Agg.TotalPayload {
		t.Fatalf("AMQ payload %d not below exact global payload %d",
			approx.Agg.TotalPayload, exact.Agg.TotalPayload)
	}
}

func TestApproxLCCTracksExact(t *testing.T) {
	g := gen.WebGraph(gen.WebConfig{N: 512, HostSize: 16, IntraP: 0.5, LongFactor: 3, Seed: 7})
	exactLCC := SeqLCC(g)
	res, err := RunApproxCetric(g, Config{P: 6, LCC: true}, AMQConfig{BitsPerKey: 12, Truthful: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LCCEstimates) != g.NumVertices() {
		t.Fatalf("LCC estimates length %d", len(res.LCCEstimates))
	}
	var mae float64
	for v := range exactLCC {
		mae += math.Abs(res.LCCEstimates[v] - exactLCC[v])
	}
	mae /= float64(len(exactLCC))
	if mae > 0.05 {
		t.Fatalf("approximate LCC mean abs error %.4f too high", mae)
	}
	// Delta estimates must total ~3 triangles each.
	var sumD float64
	for _, d := range res.DeltaEstimates {
		sumD += d
	}
	if math.Abs(sumD-3*res.Estimate)/(3*res.Estimate) > 0.01 {
		t.Fatalf("Δ estimates sum %.1f, want ≈ 3×%.1f", sumD, res.Estimate)
	}
}

func TestApproxLCCExactWhenNoType3(t *testing.T) {
	// A clique chain partitioned so that all triangles stay within one or
	// two PEs: the estimate must be exact.
	g := gen.CliqueChain(8, 6)
	_, wantDeltas := SeqDeltas(g)
	res, err := RunApproxCetric(g, Config{P: 4, LCC: true}, AMQConfig{BitsPerKey: 8, Truthful: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range wantDeltas {
		if math.Abs(res.DeltaEstimates[v]-float64(want)) > 1e-9 {
			t.Fatalf("Δ̂(%d) = %f, want %d", v, res.DeltaEstimates[v], want)
		}
	}
}

func TestDoulionUnbiasedish(t *testing.T) {
	g := gen.GNM(300, 3000, 23)
	truth := float64(SeqCount(g))
	var sum float64
	const trials = 30
	for i := 0; i < trials; i++ {
		est, _, err := RunDoulion(AlgoDiTric, g, Config{P: 3}, 0.6, uint64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.25 {
		t.Fatalf("DOULION mean %f too far from truth %f", mean, truth)
	}
}

func TestDoulionQ1IsExact(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 29))
	est, res, err := RunDoulion(AlgoCetric, g, Config{P: 4}, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(est) != SeqCount(g) || res.Count != SeqCount(g) {
		t.Fatalf("q=1 must be exact: est %f, want %d", est, SeqCount(g))
	}
}

func TestDoulionRejectsBadQ(t *testing.T) {
	g := gen.Complete(5)
	if _, _, err := RunDoulion(AlgoDiTric, g, Config{P: 2}, 0, 1); err == nil {
		t.Fatal("want error for q=0")
	}
	if _, _, err := RunDoulion(AlgoDiTric, g, Config{P: 2}, 1.5, 1); err == nil {
		t.Fatal("want error for q>1")
	}
}

func TestColorfulUnbiasedish(t *testing.T) {
	g := gen.GNM(300, 3000, 31)
	truth := float64(SeqCount(g))
	var sum float64
	const trials = 40
	for i := 0; i < trials; i++ {
		est, _, err := RunColorful(AlgoDiTric, g, Config{P: 3}, 2, uint64(2000+i))
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.3 {
		t.Fatalf("colorful mean %f too far from truth %f", mean, truth)
	}
}

func TestColorfulOneColorIsExact(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 37))
	est, _, err := RunColorful(AlgoCetric, g, Config{P: 4}, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(est) != SeqCount(g) {
		t.Fatalf("1 color must be exact: %f vs %d", est, SeqCount(g))
	}
	if _, _, err := RunColorful(AlgoDiTric, g, Config{P: 2}, 0, 1); err == nil {
		t.Fatal("want error for 0 colors")
	}
}

func TestColorfulSparsifierKeepsMonochromaticEdgesOnly(t *testing.T) {
	g := gen.GNM(200, 2000, 41)
	mono := SparsifyColorful(g, 3, 5)
	if mono.NumEdges() >= g.NumEdges() {
		t.Fatal("sparsifier did not remove edges")
	}
	color := func(v uint64) uint64 { return gen.Hash64(5, v) % 3 }
	mono.ForEachEdge(func(u, v uint64) {
		if color(u) != color(v) {
			t.Fatalf("non-monochromatic edge (%d,%d) kept", u, v)
		}
	})
}

func TestExpectedAMQWords(t *testing.T) {
	if w := ExpectedAMQWords(64, 8); w != 2+2+8 {
		t.Fatalf("ExpectedAMQWords = %d", w)
	}
}

package core

import (
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/graph"
)

// Queue channels used by the distributed algorithms. Each channel's record
// shape determines its tuned wire codec under the "auto" policy — see
// channelCodecs in codec.go for the assignment and rationale.
const (
	chNeigh  = 0 // (v, A(v)) neighborhood shipments
	chDelta  = 1 // (gid, Δ) ghost triangle-count aggregation (LCC)
	chDegReq = 2 // ghost degree requests: [gid...]
	chDegRep = 3 // ghost degree replies: [gid, deg, ...]
	chWedge  = 4 // HavoqGT-style wedge-check visitors: [a, b, ...]
	chAMQ    = 5 // (v, |A(v)|, bloom words) approximate shipments
	chDeltaF = 6 // (gid, Float64bits(Δ̂)) approximate ghost Δ aggregation
	// chNeighEdge carries per-edge records (v, u, A(v)...) used when the
	// surrogate dedup is disabled: the receiver intersects only for the named
	// u, exactly Algorithm 2's semantics (otherwise repeated shipments of the
	// same neighborhood would double count).
	chNeighEdge = 7
	// chHubShip carries placement shipments (hub, A(hub)...): a moved hub's
	// oriented neighborhood, sent once by its owner to the surrogate PE the
	// cost-driven placement chose, before any counting traffic flows.
	chHubShip = 8
)

// countState accumulates one PE's triangles, per-row Δ counts and optional
// triangle collection. Rows cover locals and ghosts, so every increment from
// both the local and the receive side lands in deltaRows (see the type
// analysis in DESIGN.md §5); ghost rows are shipped to their owners in the
// postprocessing exchange.
type countState struct {
	lg         *graph.LocalGraph
	lcc        bool
	collect    bool
	count      uint64
	t1, t2, t3 uint64
	deltaRows  []uint64
	triangles  [][3]graph.Vertex

	// recvWork meters receive-side intersection work in words scanned
	// (list + partner lengths per intersection). Deterministic and
	// schedule-independent, unlike wall-clock: it is the per-PE global-phase
	// load the placement overlay balances, exported via
	// comm.Metrics.RecvWorkWords.
	recvWork uint64

	// side accumulates LCC Δ increments for triangle corners that are not
	// rows on this PE — only surrogate-side intersections can produce those
	// (the stored hub and the shipped list live in global-ID space). Merged
	// into deltaRows or shipped to owners by flushGhostDeltas.
	side map[graph.Vertex]uint64

	// Receive-side translation scratch (see graph.RowTranslator). Reused
	// across records so steady-state receive processing allocates nothing.
	tr graph.RowTranslator
}

func newCountState(lg *graph.LocalGraph, cfg Config) *countState {
	s := &countState{lg: lg, lcc: cfg.LCC, collect: cfg.Collect}
	if s.lcc {
		s.deltaRows = make([]uint64, lg.Rows())
	}
	return s
}

// add records one triangle (corners as global IDs, all must be rows).
func (s *countState) add(v, u, w graph.Vertex) {
	s.count++
	if s.lcc {
		s.deltaRows[s.lg.Row(v)]++
		s.deltaRows[s.lg.Row(u)]++
		s.deltaRows[s.lg.Row(w)]++
	}
	if s.collect {
		s.triangles = append(s.triangles, CanonTriangle(v, u, w))
	}
}

// addRows records one triangle given as row indices — the hot-path twin of
// add with no global-ID lookups.
func (s *countState) addRows(rv, ru, rw int32) {
	s.count++
	if s.lcc {
		s.deltaRows[rv]++
		s.deltaRows[ru]++
		s.deltaRows[rw]++
	}
	if s.collect {
		lg := s.lg
		s.triangles = append(s.triangles, CanonTriangle(lg.GID(rv), lg.GID(ru), lg.GID(rw)))
	}
}

// countEdge intersects av = A(v) with au = A(u) for the directed edge (v,u),
// recording every triangle. Fast path without LCC/collection. This is the
// global-ID path kept for the baselines (TriC); DITRIC/CETRIC run the
// row-space path below.
func (s *countState) countEdge(v, u graph.Vertex, av, au []graph.Vertex) uint64 {
	if !s.lcc && !s.collect {
		c := graph.CountIntersect(av, au)
		s.count += c
		return c
	}
	var c uint64
	graph.ForEachCommon(av, au, func(w graph.Vertex) {
		s.add(v, u, w)
		c++
	})
	return c
}

// recvNeigh processes one received (v, A(v)) record. The list is intersected
// once per local endpoint it contains, so the row translation (which must
// resolve the list's ghosts) only pays off when there are at least two: a
// cheap range-check scan picks the strategy first — drop the record, run one
// global-ID intersection, or translate once and run every intersection in
// row space with the adaptive kernels. Zero map lookups and zero allocations
// per record either way. Returns the number of triangles found.
func (s *countState) recvNeigh(v graph.Vertex, list []uint64, o *graph.LocalOriented) uint64 {
	lg := s.lg
	nLoc := 0
	first := int32(-1)
	for _, x := range list {
		if lg.IsLocal(x) {
			if nLoc == 0 {
				first = int32(x - lg.First)
			}
			nLoc++
		}
	}
	fast := !s.lcc && !s.collect
	switch {
	case nLoc == 0:
		return 0
	case nLoc == 1 && fast:
		partner := o.Out(first)
		s.recvWork += uint64(len(list) + len(partner))
		c := graph.CountIntersect(list, partner)
		s.count += c
		return c
	}
	rows, _ := lg.TranslateRows(&s.tr, list)
	if fast {
		var c uint64
		for _, ur := range rows[:nLoc] {
			s.recvWork += uint64(len(rows) + o.OutDegree(int32(ur)))
			c += o.CountRowsWith(rows, int32(ur))
		}
		s.count += c
		return c
	}
	// v is adjacent to a local vertex, so it is a row (ghost) here.
	rv := lg.Row(v)
	var c uint64
	for _, ur := range rows[:nLoc] {
		ru := int32(ur)
		s.recvWork += uint64(len(rows) + o.OutDegree(ru))
		o.ForEachCommonRowsWith(rows, ru, func(w graph.Vertex) {
			s.addRows(rv, ru, int32(w))
			c++
		})
	}
	return c
}

// recvNeighEdge processes one received (v, u, A(v)) record (the per-edge
// shipment of the no-surrogate ablation): intersect only for the named u —
// a single intersection, so the fast path stays on global IDs and skips the
// row translation entirely.
func (s *countState) recvNeighEdge(v, u graph.Vertex, list []uint64, o *graph.LocalOriented) uint64 {
	if !s.lg.IsLocal(u) {
		return 0
	}
	ru := int32(u - s.lg.First)
	if !s.lcc && !s.collect {
		partner := o.Out(ru)
		s.recvWork += uint64(len(list) + len(partner))
		c := graph.CountIntersect(list, partner)
		s.count += c
		return c
	}
	rows, _ := s.lg.TranslateRows(&s.tr, list)
	rv := s.lg.Row(v)
	var c uint64
	s.recvWork += uint64(len(rows) + o.OutDegree(ru))
	o.ForEachCommonRowsWith(rows, ru, func(w graph.Vertex) {
		s.addRows(rv, ru, int32(w))
		c++
	})
	return c
}

// countWedgeRows records the triangles closing the wedge rooted at the
// oriented edge (rv, ru): av is A(rv) in row space, hoisted by the caller
// once per row, so each pair pays exactly one hub lookup plus the adaptive
// kernel (bitmap tests, gallop, branchy merge).
func (s *countState) countWedgeRows(av []uint64, rv, ru int32, o *graph.LocalOriented) uint64 {
	if !s.lcc && !s.collect {
		c := o.CountRowsWith(av, ru)
		s.count += c
		return c
	}
	var c uint64
	o.ForEachCommonRowsWith(av, ru, func(w graph.Vertex) {
		s.addRows(rv, ru, int32(w))
		c++
	})
	return c
}

// sideAdd records one LCC Δ increment for a vertex that may not be a row
// here (surrogate-side triangle corners). Lazy: only placed runs with LCC
// enabled ever allocate the map.
func (s *countState) sideAdd(v graph.Vertex) {
	if s.side == nil {
		s.side = make(map[graph.Vertex]uint64)
	}
	s.side[v]++
}

// handleDelta processes ghost Δ aggregation records [gid, Δ, gid, Δ, ...].
func (s *countState) handleDelta(_ int, words []uint64) {
	for i := 0; i+1 < len(words); i += 2 {
		s.deltaRows[s.lg.Row(words[i])] += words[i+1]
	}
}

// flushGhostDeltas ships accumulated ghost Δ values to their owners
// (batched per destination) and merges replies; callers must Drain after.
func (s *countState) flushGhostDeltas(pe *dist.PE) {
	if !s.lcc {
		return
	}
	lg := s.lg
	batch := make(map[int][]uint64)
	for i, gid := range lg.Ghosts() {
		row := lg.NLocal() + i
		if d := s.deltaRows[row]; d > 0 {
			dst := lg.Part.Rank(gid)
			batch[dst] = append(batch[dst], gid, d)
		}
	}
	// Surrogate-side increments: corners of triangles found on behalf of
	// other PEs need not be rows here, so they bypassed deltaRows. Locals
	// fold in directly; the rest join the owner-addressed batches.
	for gid, d := range s.side {
		if lg.IsLocal(gid) {
			s.deltaRows[gid-lg.First] += d
		} else {
			dst := lg.Part.Rank(gid)
			batch[dst] = append(batch[dst], gid, d)
		}
	}
	for dst, words := range batch {
		pe.Q.Send(chDelta, dst, words)
	}
}

// finish copies the per-PE result into out. Local Δ values (now complete
// after the postprocess exchange) are exported keyed by global ID.
func (s *countState) finish(out *peOutcome) {
	out.count = s.count
	out.finished = true
	out.typeCounts = [3]uint64{s.t1, s.t2, s.t3}
	out.triangles = s.triangles
	if s.lcc {
		out.deltas = make(map[graph.Vertex]uint64, s.lg.NLocal())
		for r := 0; r < s.lg.NLocal(); r++ {
			out.deltas[s.lg.GID(int32(r))] = s.deltaRows[r]
		}
	}
}

// exchangeGhostDegrees implements exchange_ghost_degree (Algorithm 3 line 1)
// either with the dense all-to-all the paper defaults to, or with the
// asynchronous sparse all-to-all (NBX style: direct messages to actual
// communication partners + termination detection). Reply construction — the
// degree lookup per requested ghost, previously the last single-threaded
// per-PE preprocess sub-phase — fans out over the same chunk-stealing
// workers as the rest of the pipeline (graph.ParallelFor), flattened across
// the per-source request lists so a few large requesters cannot serialize
// the stage.
func exchangeGhostDegrees(pe *dist.PE, lg *graph.LocalGraph, sparse bool, threads int) {
	if sparse {
		exchangeGhostDegreesSparse(pe, lg)
		return
	}
	p := pe.P
	reqs := make([][]uint64, p)
	for _, g := range lg.Ghosts() {
		owner := lg.Part.Rank(g)
		reqs[owner] = append(reqs[owner], g)
	}
	gotReqs := pe.C.DenseExchange(reqs)
	replies := make([][]uint64, p)
	var srcs []int // sources with a non-empty request list
	var offs []int // prefix offsets of their lists in the flattened index
	total := 0
	for src, list := range gotReqs {
		if src == pe.Rank || len(list) == 0 {
			continue
		}
		replies[src] = make([]uint64, len(list))
		srcs = append(srcs, src)
		offs = append(offs, total)
		total += len(list)
	}
	graph.ParallelFor(threads, total, func(_, lo, hi int) {
		// Locate the source span containing lo, then walk forward; a chunk
		// crossing span boundaries continues into the next source.
		si := sort.Search(len(offs), func(i int) bool { return offs[i] > lo }) - 1
		for i := lo; i < hi; si++ {
			src, base := srcs[si], offs[si]
			list, rep := gotReqs[src], replies[src]
			end := min(hi, base+len(list))
			for ; i < end; i++ {
				rep[i-base] = uint64(lg.Degree(lg.Row(list[i-base])))
			}
		}
	})
	gotReps := pe.C.DenseExchange(replies)
	for owner, list := range gotReps {
		for k, d := range list {
			gid := reqs[owner][k]
			row, _ := lg.GhostRow(gid)
			lg.SetGhostDegree(row, int(d))
		}
	}
}

func exchangeGhostDegreesSparse(pe *dist.PE, lg *graph.LocalGraph) {
	pe.Q.Handle(chDegReq, func(src int, words []uint64) {
		rep := make([]uint64, 0, 2*len(words))
		for _, gid := range words {
			rep = append(rep, gid, uint64(lg.Degree(lg.Row(gid))))
		}
		pe.Q.Send(chDegRep, src, rep)
	})
	pe.Q.Handle(chDegRep, func(_ int, words []uint64) {
		for i := 0; i+1 < len(words); i += 2 {
			row, ok := lg.GhostRow(words[i])
			if !ok {
				panic("core: degree reply for unknown ghost")
			}
			lg.SetGhostDegree(row, int(words[i+1]))
		}
	})
	reqs := make(map[int][]uint64)
	for _, g := range lg.Ghosts() {
		owner := lg.Part.Rank(g)
		reqs[owner] = append(reqs[owner], g)
	}
	for owner, gids := range reqs {
		pe.Q.Send(chDegReq, owner, gids)
	}
	pe.Q.Drain()
}

// mergeOutcomes folds per-PE outcomes into a Result.
func mergeOutcomes(outcomes []*peOutcome, metrics []comm.Metrics, g *graph.Graph, cfg Config) *Result {
	res := &Result{
		PerPE:     metrics,
		Agg:       comm.AggregateOf(metrics),
		Phases:    make(map[string]time.Duration),
		PhaseComm: make(map[string]comm.Aggregate),
	}
	phaseMetrics := make(map[string][]comm.Metrics)
	for _, out := range outcomes {
		if out == nil {
			continue // PE aborted before its body allocated an outcome
		}
		if !out.finished {
			// Degraded merge: the body aborted mid-run, count what its last
			// phase-boundary snapshot had.
			res.Count += out.partialCount
			continue
		}
		res.Count += out.count
		for i := 0; i < 3; i++ {
			res.TypeCounts[i] += out.typeCounts[i]
		}
		res.Triangles = append(res.Triangles, out.triangles...)
		for name, d := range out.phases {
			if d > res.Phases[name] {
				res.Phases[name] = d
			}
		}
		for name, m := range out.phaseComm {
			phaseMetrics[name] = append(phaseMetrics[name], m)
		}
	}
	for name, ms := range phaseMetrics {
		res.PhaseComm[name] = comm.AggregateOf(ms)
	}
	if cfg.LCC {
		res.Deltas = make([]uint64, g.NumVertices())
		for _, out := range outcomes {
			if out == nil {
				continue
			}
			for gid, d := range out.deltas {
				res.Deltas[gid] = d
			}
		}
		res.LCC = LCCFromDeltas(g, res.Deltas)
	}
	return res
}

package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/testgraph"
)

// Equivalence suite for the streaming driver: RunStream must agree with the
// one-shot Run oracle for every fixture × algorithm × PE count × batch
// size, under arrival-order shuffles, duplicate re-sends, and any split
// between initial build and inserted batches. Run under -race (CI does).

var streamAlgos = []Algorithm{AlgoDiTric, AlgoCetric}

// runStreamSplit streams edges[:split] as the initial build and the rest as
// inserted batches of the given size.
func runStreamSplit(t *testing.T, algo Algorithm, n int, edges []graph.Edge, split, batch int, cfg Config) *StreamResult {
	t.Helper()
	sres, err := RunStream(algo, uint64(n),
		SliceBatches(edges[:split], batch), SliceBatches(edges[split:], batch), cfg)
	if err != nil {
		t.Fatalf("RunStream(%s): %v", algo, err)
	}
	return sres
}

func TestRunStreamMatchesRun(t *testing.T) {
	for _, fx := range testgraph.All {
		g := fx.Build()
		edges := g.Edges()
		for _, algo := range streamAlgos {
			for _, p := range []int{1, 2, 4, 8} {
				cfg := Config{P: p}
				batch := len(edges)/3 + 1
				split := len(edges) / 2
				sres := runStreamSplit(t, algo, g.NumVertices(), edges, split, batch, cfg)
				if sres.Count != fx.Triangles {
					t.Errorf("%s %s p=%d: streamed count %d, want %d (initial %d, deltas %v)",
						fx.Name, algo, p, sres.Count, fx.Triangles, sres.Initial, sres.Deltas)
				}
				if sres.Res.Count != sres.Count {
					t.Errorf("%s %s p=%d: Res.Count %d != Count %d", fx.Name, algo, p, sres.Res.Count, sres.Count)
				}
			}
		}
	}
}

// TestRunStreamBatchSizes sweeps batch-size and split permutations on one
// non-trivial fixture, including single-edge batches and everything-inserted
// (empty initial graph) / everything-initial (no inserts) extremes.
func TestRunStreamBatchSizes(t *testing.T) {
	fx := testgraph.All[2%len(testgraph.All)]
	g := fx.Build()
	edges := g.Edges()
	for _, algo := range streamAlgos {
		for _, batch := range []int{1, 2, 7, len(edges)} {
			for _, split := range []int{0, 1, len(edges) / 2, len(edges)} {
				sres := runStreamSplit(t, algo, g.NumVertices(), edges, split, batch, Config{P: 4})
				if sres.Count != fx.Triangles {
					t.Errorf("%s %s batch=%d split=%d: count %d, want %d",
						fx.Name, algo, batch, split, sres.Count, fx.Triangles)
				}
			}
		}
	}
}

// TestRunStreamShuffledDuplicates feeds a shuffled stream with re-sent
// edges and self-loops: arrival order, duplicates (within and across
// batches), and loops must not change any count.
func TestRunStreamShuffledDuplicates(t *testing.T) {
	for _, fx := range testgraph.All[:4] {
		g := fx.Build()
		edges := g.Edges()
		rng := rand.New(rand.NewSource(42))
		stream := append(append([]graph.Edge{}, edges...), edges[:len(edges)/3]...)
		stream = append(stream, graph.Edge{U: 0, V: 0}) // self-loop
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
		for _, algo := range streamAlgos {
			sres := runStreamSplit(t, algo, g.NumVertices(), stream, len(stream)/4, 11, Config{P: 4, Threads: 2})
			if sres.Count != fx.Triangles {
				t.Errorf("%s %s shuffled: count %d, want %d", fx.Name, algo, sres.Count, fx.Triangles)
			}
		}
	}
}

// TestRunStreamDuplicateInsertBatch re-inserts already-resident edges: every
// delta must be zero and the count unchanged.
func TestRunStreamDuplicateInsertBatch(t *testing.T) {
	fx := testgraph.All[0]
	g := fx.Build()
	edges := g.Edges()
	stream := append(append([]graph.Edge{}, edges...), edges...) // full re-send
	sres := runStreamSplit(t, AlgoDiTric, g.NumVertices(), stream, len(edges), 17, Config{P: 4})
	if sres.Count != fx.Triangles || sres.Initial != fx.Triangles {
		t.Fatalf("count %d initial %d, want both %d", sres.Count, sres.Initial, fx.Triangles)
	}
	for b, d := range sres.Deltas {
		if d != 0 {
			t.Errorf("duplicate batch %d produced delta %d", b, d)
		}
	}
}

// TestRunStreamVariants covers indirection, explicit δ, threads, and codec
// policies on the streamed path.
func TestRunStreamVariants(t *testing.T) {
	fx := testgraph.All[1%len(testgraph.All)]
	g := fx.Build()
	edges := g.Edges()
	for _, cfg := range []Config{
		{P: 4, Threads: 3},
		{P: 4, Threshold: 1},
		{P: 4, Threshold: 64, Codec: CodecRaw},
		{P: 4, Codec: CodecDeltaVarint},
		{P: 3, Indirect: true},
	} {
		for _, algo := range []Algorithm{AlgoDiTric2, AlgoCetric2, AlgoDiTric, AlgoCetric} {
			sres := runStreamSplit(t, algo, g.NumVertices(), edges, len(edges)/2, 5, cfg)
			if sres.Count != fx.Triangles {
				t.Errorf("%s %+v: count %d, want %d", algo, cfg, sres.Count, fx.Triangles)
			}
		}
	}
}

func TestRunStreamValidation(t *testing.T) {
	if _, err := RunStream(AlgoTriC, 8, nil, nil, Config{P: 2}); err == nil {
		t.Error("expected error for non-DITRIC/CETRIC algorithm")
	}
	if _, err := RunStream(AlgoDiTric, 8, nil, nil, Config{P: 2, LCC: true}); err == nil {
		t.Error("expected error for LCC while streaming")
	}
	if _, err := RunStream(AlgoDiTric, 8, nil, nil, Config{}); err == nil {
		t.Error("expected error for P = 0")
	}
	// Empty stream: zero triangles, no deltas.
	sres, err := RunStream(AlgoCetric, 8, nil, nil, Config{P: 2})
	if err != nil || sres.Count != 0 || len(sres.Deltas) != 0 {
		t.Errorf("empty stream: %v %+v", err, sres)
	}
}

// TestRunStreamPhases checks the stream phase accounting: ingest folds into
// preprocess, the per-batch sub-phases fold into the stream parent.
func TestRunStreamPhases(t *testing.T) {
	g := testgraph.All[0].Build()
	edges := g.Edges()
	sres := runStreamSplit(t, AlgoDiTric, g.NumVertices(), edges, len(edges)/2, 7, Config{P: 2})
	ph := sres.Res.Phases
	if _, ok := ph[PhaseIngest]; !ok {
		t.Errorf("missing %s phase: %v", PhaseIngest, ph)
	}
	if _, ok := ph[PhaseStreamDelta]; !ok {
		t.Errorf("missing %s phase: %v", PhaseStreamDelta, ph)
	}
	for name := range ph {
		if strings.HasPrefix(name, PhaseStream+"/") && ph[PhaseStream] < ph[name] {
			t.Errorf("sub-phase %s (%v) not folded into %s (%v)", name, ph[name], PhaseStream, ph[PhaseStream])
		}
	}
}

// FuzzStreamBatches drives RunStream with fuzzer-chosen fixture, batch
// size, initial/insert split, arrival order, and algorithm, against the
// precomputed fixture counts (the same oracle as the one-shot suite).
func FuzzStreamBatches(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint16(100), int64(1))
	f.Add(uint8(5), uint8(1), uint16(0), int64(7))
	f.Add(uint8(11), uint8(64), uint16(65535), int64(-3))
	f.Fuzz(func(t *testing.T, fxSel, batchSel uint8, splitSel uint16, seed int64) {
		fx := testgraph.All[int(fxSel)%len(testgraph.All)]
		g := fx.Build()
		edges := g.Edges()
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		batch := int(batchSel)%64 + 1
		split := int(splitSel) % (len(edges) + 1)
		algo := streamAlgos[int(seed&1)]
		p := []int{1, 2, 4}[int(uint16(seed>>1))%3]
		sres, err := RunStream(algo, uint64(g.NumVertices()),
			SliceBatches(edges[:split], batch), SliceBatches(edges[split:], batch), Config{P: p})
		if err != nil {
			t.Fatalf("%s %s p=%d batch=%d split=%d: %v", fx.Name, algo, p, batch, split, err)
		}
		if sres.Count != fx.Triangles {
			t.Fatalf("%s %s p=%d batch=%d split=%d: count %d, want %d",
				fx.Name, algo, p, batch, split, sres.Count, fx.Triangles)
		}
	})
}

// TestOverlapWatermarkClamp pins the eager-flush watermark for every δ in
// 1..1024 (DefaultThreshold's floor region): the watermark must stay at
// least 1 and strictly below δ for all δ > 1, so eager flushing keeps
// firing before the overflow flush — the bug was overlapFlushWords ≥ δ
// silently disabling it.
func TestOverlapWatermarkClamp(t *testing.T) {
	for delta := 1; delta <= 1024; delta++ {
		wm := overlapWatermark(delta, "")
		if wm < 1 {
			t.Fatalf("δ=%d: watermark %d < 1", delta, wm)
		}
		if delta > 1 && wm >= delta {
			t.Fatalf("δ=%d: watermark %d not below δ", delta, wm)
		}
		if wm > overlapFlushWords {
			t.Fatalf("δ=%d: watermark %d above overlapFlushWords", delta, wm)
		}
	}
	if wm := overlapWatermark(1<<20, ""); wm != overlapFlushWords {
		t.Fatalf("large δ: watermark %d, want %d", wm, overlapFlushWords)
	}
}

// TestOverlapWatermarkProfileTable pins wm = min(profileWatermark, δ/2)
// with floor 1 across the δ×profile grid: the profile watermark is the α/β
// break-even frame size (supercomputer 1563, cloud 7813, WAN 31250 words),
// the empty or unknown profile keeps the historical 1024-word constant, and
// the δ/2 clamp always wins below it.
func TestOverlapWatermarkProfileTable(t *testing.T) {
	for _, tc := range []struct {
		delta   int
		profile string
		want    int
	}{
		// No profile: the historical constant, δ/2-clamped.
		{1, "", 1}, {2, "", 1}, {100, "", 50}, {1024, "", 512},
		{2048, "", 1024}, {1 << 20, "", 1024},
		// Unknown profile names behave like no profile (counts never depend
		// on the profile string, so a typo must not change the schedule
		// beyond the documented default).
		{1 << 20, "nope", 1024},
		// Supercomputer: ⌈1µs/(64B/100Gbit)⌉ = 1563.
		{2000, "supercomputer", 1000}, {4096, "supercomputer", 1563},
		{1 << 20, "supercomputer", 1563},
		// Cloud: ⌈50µs/(64B/10Gbit)⌉ = 7813.
		{4096, "cloud", 2048}, {20000, "cloud", 7813}, {1 << 20, "cloud", 7813},
		// WAN: 2ms/(64B/1Gbit) = 31250 exactly.
		{20000, "wan", 10000}, {70000, "wan", 31250}, {1 << 20, "wan", 31250},
		// The floor survives every profile.
		{1, "wan", 1}, {1, "cloud", 1},
	} {
		if got := overlapWatermark(tc.delta, tc.profile); got != tc.want {
			t.Errorf("δ=%d profile=%q: watermark %d, want %d", tc.delta, tc.profile, got, tc.want)
		}
	}
}

// TestOverlapProfileWatermarkCountsUnchanged: configuring a profile moves
// flush timing only — counts stay exact on every overlapped algorithm.
func TestOverlapProfileWatermarkCountsUnchanged(t *testing.T) {
	fx := testgraph.All[0]
	g := fx.Build()
	for _, profile := range []string{"supercomputer", "cloud", "wan"} {
		for _, algo := range streamAlgos {
			res, err := Run(algo, g, Config{P: 4, Overlap: true, Profile: profile, Threads: 2})
			if err != nil {
				t.Fatalf("%s %s: %v", algo, profile, err)
			}
			if res.Count != fx.Triangles {
				t.Errorf("%s %s: count %d, want %d", algo, profile, res.Count, fx.Triangles)
			}
		}
	}
}

// TestOverlapTinyThresholds runs the overlapped pipeline across tiny δ
// values (the clamped-watermark regime) and checks counts stay exact.
func TestOverlapTinyThresholds(t *testing.T) {
	fx := testgraph.All[0]
	g := fx.Build()
	for _, delta := range []int{1, 2, 3, 8, 100, 1023, 1024} {
		for _, algo := range streamAlgos {
			res, err := Run(algo, g, Config{P: 4, Threshold: delta, Overlap: true})
			if err != nil {
				t.Fatalf("%s δ=%d: %v", algo, delta, err)
			}
			if res.Count != fx.Triangles {
				t.Errorf("%s δ=%d: count %d, want %d", algo, delta, res.Count, fx.Triangles)
			}
		}
	}
}

// TestRunDoulionRejectsNaN pins the NaN-proof validation: NaN compares
// false against every bound, so the old two-clause check accepted it.
func TestRunDoulionRejectsNaN(t *testing.T) {
	g := testgraph.All[0].Build()
	for _, q := range []float64{math.NaN(), 0, -0.5, 1.5, math.Inf(1), math.Inf(-1)} {
		if _, _, err := RunDoulion(AlgoDiTric, g, Config{P: 2}, q, 1); err == nil {
			t.Errorf("q=%v: expected error", q)
		}
	}
	if _, _, err := RunDoulion(AlgoDiTric, g, Config{P: 2}, 1, 1); err != nil {
		t.Errorf("q=1: %v", err)
	}
}

func TestSparsifyColorfulRejectsZeroColors(t *testing.T) {
	g := testgraph.All[0].Build()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ncolors=0")
		}
	}()
	SparsifyColorful(g, 0, 1)
}

package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// Hybrid (threads-per-rank) execution, §IV-D. The local phase is
// parallelized edge-centrically: workers steal small row chunks (dynamic
// chunking plays the role of TBB work stealing, so no cost-model
// prepartitioning is needed, as Green et al. observed). Communication stays
// funneled through the PE's main goroutine — MPI's funneled mode — which the
// paper identifies as the hybrid variant's bottleneck.

const hybridChunk = 128 // rows per stolen chunk

// hybridCetricLocal runs CETRIC's communication-free local phase with
// cfg.Threads workers and merges their private counters into state.
func hybridCetricLocal(lg *graph.LocalGraph, ori *graph.LocalOriented, state *countState, cfg Config) {
	rows := lg.Rows()
	var next atomic.Int64
	workers := make([]*countState, cfg.Threads)
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		ws := newCountState(lg, cfg)
		workers[t] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(hybridChunk)) - hybridChunk
				if lo >= rows {
					return
				}
				hi := lo + hybridChunk
				if hi > rows {
					hi = rows
				}
				cetricLocalPhase(lg, ori, ws, lo, hi)
			}
		}()
	}
	wg.Wait()
	for _, ws := range workers {
		state.merge(ws)
	}
}

// hybridSend is a deferred neighborhood shipment produced by a worker and
// executed by the funneled communication goroutine. payload points into a
// pooled buffer: Queue.Send copies it, so the funnel returns the buffer to
// payloadPool right after the send.
type hybridSend struct {
	dst     int
	ch      int
	payload *[]uint64
}

// payloadPool recycles the worker → funnel shipment buffers (the free-list
// counterpart of the queue's retained per-destination flush buffers): a
// worker checks a buffer out and fills it, the funnel goroutine checks it
// back in once Queue.Send has copied the record, so the steady-state local
// phase allocates no payload memory per shipment.
var payloadPool = sync.Pool{New: func() any { return new([]uint64) }}

func getPayload(capHint int) *[]uint64 {
	bp := payloadPool.Get().(*[]uint64)
	if cap(*bp) < capHint {
		*bp = make([]uint64, 0, capHint)
	} else {
		*bp = (*bp)[:0]
	}
	return bp
}

// hybridDitricLocal runs DITRIC's combined local/send phase with
// cfg.Threads workers. Workers count local-local edges into private states
// and forward remote shipments to the main goroutine, which owns the queue
// (and therefore also executes all receive-side intersections — the
// funneled-communication bottleneck of Fig. 8).
func hybridDitricLocal(pe *dist.PE, lg *graph.LocalGraph, ori *graph.LocalOriented, state *countState, cfg Config, plc *placeRun) {
	pt := lg.Part
	nLocal := lg.NLocal()
	var next atomic.Int64
	workers := make([]*countState, cfg.Threads)
	sends := make(chan hybridSend, 4*cfg.Threads)
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		ws := newCountState(lg, cfg)
		workers[t] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(hybridChunk)) - hybridChunk
				if lo >= nLocal {
					return
				}
				hi := lo + hybridChunk
				if hi > nLocal {
					hi = nLocal
				}
				ditricLocalRows(pe, pt, lg, ori, ws, lo, hi, sends, cfg.NoSurrogate, plc)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(sends)
	}()
	for s := range sends {
		pe.Q.Send(s.ch, s.dst, *s.payload)
		payloadPool.Put(s.payload)
	}
	for _, ws := range workers {
		state.merge(ws)
	}
}

// shipper emits the row sweeps' shipments (ditricLocalRows,
// cetricGlobalRows): with a funnel (sends != nil) each record checks a
// buffer out of payloadPool and the funnel returns it after Queue.Send has
// copied; without one, a buffer owned by the shipper is reused directly
// because Queue.Send copies synchronously. It also owns the per-row
// destination-dedup scratch: owner-driven delivery visits destinations in
// ascending order (av is ID-sorted, ranks own contiguous ranges) so a
// last-rank check suffices, but the placement overlay makes effective
// destinations non-monotone, so placed sweeps dedup with an epoch-stamped
// per-PE array instead. Shippers recycle through shipperPool so the
// steady-state sweep allocates nothing.
type shipper struct {
	pe    *dist.PE
	sends chan<- hybridSend
	buf   []uint64 // reused across shipments on the sends == nil path
	stamp []int64  // stamp[dst] == epoch ⇔ dst already shipped this row
	epoch int64
}

var shipperPool = sync.Pool{New: func() any { return new(shipper) }}

func getShipper(pe *dist.PE, sends chan<- hybridSend) *shipper {
	sh := shipperPool.Get().(*shipper)
	sh.pe, sh.sends = pe, sends
	if len(sh.stamp) < pe.P {
		sh.stamp = make([]int64, pe.P)
		sh.epoch = 0
	}
	return sh
}

func (sh *shipper) put() {
	sh.pe, sh.sends = nil, nil
	shipperPool.Put(sh)
}

func (sh *shipper) ship(ch, dst int, head, av []uint64) {
	if sh.sends != nil {
		bp := getPayload(len(head) + len(av))
		*bp = append(append(*bp, head...), av...)
		sh.sends <- hybridSend{dst: dst, payload: bp, ch: ch}
		return
	}
	sh.buf = append(append(sh.buf[:0], head...), av...)
	sh.pe.Q.Send(ch, dst, sh.buf)
}

// nextRow opens a new row's dedup epoch (epochs start at 1, so zeroed
// stamps never spuriously match).
func (sh *shipper) nextRow() { sh.epoch++ }

// firstVisit reports whether dst has not been shipped to yet this row, and
// marks it.
func (sh *shipper) firstVisit(dst int) bool {
	if sh.stamp[dst] == sh.epoch {
		return false
	}
	sh.stamp[dst] = sh.epoch
	return true
}

// ditricLocalRows processes local rows [lo,hi): local-local wedges are
// intersected in place through the adaptive row-space pair kernels, remote
// shipments go through the shipper (funneled or direct). With a placement
// overlay, each cut edge resolves to its effective destination (the hub's
// surrogate when moved, the owner otherwise); a surrogate that turns out to
// be this very PE gets its stored-table intersection inline instead of a
// self-send — the locals in av were already counted above, so the full
// receive path would double count them.
func ditricLocalRows(pe *dist.PE, pt *part.Partition, lg *graph.LocalGraph, ori *graph.LocalOriented,
	state *countState, lo, hi int, sends chan<- hybridSend, noSurrogate bool, plc *placeRun) {
	first := lg.First
	var hdr [2]uint64 // record header scratch, reused across shipments
	sh := getShipper(pe, sends)
	defer sh.put()
	for r := lo; r < hi; r++ {
		rv := int32(r)
		v := lg.GID(rv)
		av := ori.Out(rv)
		avRows := ori.OutRows(rv)
		if plc != nil && !noSurrogate {
			sh.nextRow()
			for _, u := range av {
				if lg.IsLocal(u) {
					state.countWedgeRows(avRows, rv, int32(u-first), ori)
					continue
				}
				if len(av) < 2 {
					continue
				}
				j := plc.redirect(pt.Rank(u), u)
				if j < 0 {
					continue // dead endpoint: empty list can't complete a triangle
				}
				if !sh.firstVisit(j) {
					continue
				}
				if j == pe.Rank {
					state.surrogateScan(pe.Rank, v, av, plc)
					continue
				}
				hdr[0] = v
				sh.ship(chNeigh, j, hdr[:1], av)
			}
			continue
		}
		lastRank := -1
		for _, u := range av {
			if lg.IsLocal(u) {
				state.countWedgeRows(avRows, rv, int32(u-first), ori)
				continue
			}
			if len(av) < 2 {
				continue // a single out-neighbor cannot close a triangle
			}
			if noSurrogate {
				// Ablation: one per-edge record per cut edge (Algorithm 2
				// without Arifuzzaman's dedup).
				hdr[0], hdr[1] = v, u
				sh.ship(chNeighEdge, pt.Rank(u), hdr[:2], av)
				continue
			}
			// Surrogate dedup: av is ID-sorted and ranks own contiguous
			// ranges, so equal destinations are adjacent.
			if j := pt.Rank(u); j != lastRank {
				hdr[0] = v
				sh.ship(chNeigh, j, hdr[:1], av)
				lastRank = j
			}
		}
	}
}

// merge folds a worker's private counters into s.
func (s *countState) merge(w *countState) {
	s.count += w.count
	s.t1 += w.t1
	s.t2 += w.t2
	s.t3 += w.t3
	s.recvWork += w.recvWork
	if s.lcc {
		for i, d := range w.deltaRows {
			s.deltaRows[i] += d
		}
		for gid, d := range w.side {
			if s.side == nil {
				s.side = make(map[graph.Vertex]uint64)
			}
			s.side[gid] += d
		}
	}
	s.triangles = append(s.triangles, w.triangles...)
}

// recvPool implements the paper's hybrid global phase: the communication
// goroutine (MPI funneled mode) polls messages and turns received
// neighborhoods into intersection tasks, which a pool of workers consumes
// into private counters. The funneled dispatcher is the bottleneck the paper
// measures in Fig. 8.
type recvPool struct {
	tasks   chan recvTask
	wg      sync.WaitGroup
	workers []*countState
}

type recvTask struct {
	v       graph.Vertex
	list    []uint64
	src     int    // sender rank (placement: skips its co-located stored hubs)
	release func() // unpins the decode arena the list aliases; may be nil
}

// newRecvPool starts threads workers that intersect shipped neighborhoods
// against out() (the receiver-side A-lists: full for DITRIC, contracted for
// CETRIC; resolved lazily because contraction happens after handler
// registration). Task payload slices alias pooled decode-arena memory; the
// submitting handler pins the arena (Queue.PinPayload) and the worker
// releases it once the list has been row-translated and counted, so no
// copies are needed and the arena recycles without allocation.
func newRecvPool(threads int, lg *graph.LocalGraph, cfg Config, out func() *graph.LocalOriented, place func() *placeRun) *recvPool {
	rp := &recvPool{tasks: make(chan recvTask, 8*threads)}
	for t := 0; t < threads; t++ {
		ws := newCountState(lg, cfg)
		rp.workers = append(rp.workers, ws)
		rp.wg.Add(1)
		go func() {
			defer rp.wg.Done()
			for task := range rp.tasks {
				ws.recvNeighAt(task.src, task.v, task.list, out(), place())
				if task.release != nil {
					task.release()
				}
			}
		}()
	}
	return rp
}

// submit enqueues one received neighborhood (blocks when workers lag —
// exactly the backpressure a funneled comm thread experiences). release is
// called once the worker is done with list.
func (rp *recvPool) submit(src int, v graph.Vertex, list []uint64, release func()) {
	rp.tasks <- recvTask{v: v, list: list, src: src, release: release}
}

// drain closes the pool, waits for the workers, and merges their counters.
func (rp *recvPool) drain(into *countState) {
	close(rp.tasks)
	rp.wg.Wait()
	for _, ws := range rp.workers {
		into.merge(ws)
	}
}

package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// Hybrid (threads-per-rank) execution, §IV-D. The local phase is
// parallelized edge-centrically: workers steal small row chunks (dynamic
// chunking plays the role of TBB work stealing, so no cost-model
// prepartitioning is needed, as Green et al. observed). Communication stays
// funneled through the PE's main goroutine — MPI's funneled mode — which the
// paper identifies as the hybrid variant's bottleneck.

const hybridChunk = 128 // rows per stolen chunk

// hybridCetricLocal runs CETRIC's communication-free local phase with
// cfg.Threads workers and merges their private counters into state.
func hybridCetricLocal(lg *graph.LocalGraph, ori *graph.LocalOriented, state *countState, cfg Config) {
	rows := lg.Rows()
	var next atomic.Int64
	workers := make([]*countState, cfg.Threads)
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		ws := newCountState(lg, cfg)
		workers[t] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(hybridChunk)) - hybridChunk
				if lo >= rows {
					return
				}
				hi := lo + hybridChunk
				if hi > rows {
					hi = rows
				}
				cetricLocalPhase(lg, ori, ws, lo, hi)
			}
		}()
	}
	wg.Wait()
	for _, ws := range workers {
		state.merge(ws)
	}
}

// hybridSend is a deferred neighborhood shipment produced by a worker and
// executed by the funneled communication goroutine. payload points into a
// pooled buffer: Queue.Send copies it, so the funnel returns the buffer to
// payloadPool right after the send.
type hybridSend struct {
	dst     int
	ch      int
	payload *[]uint64
}

// payloadPool recycles the worker → funnel shipment buffers (the free-list
// counterpart of the queue's retained per-destination flush buffers): a
// worker checks a buffer out and fills it, the funnel goroutine checks it
// back in once Queue.Send has copied the record, so the steady-state local
// phase allocates no payload memory per shipment.
var payloadPool = sync.Pool{New: func() any { return new([]uint64) }}

func getPayload(capHint int) *[]uint64 {
	bp := payloadPool.Get().(*[]uint64)
	if cap(*bp) < capHint {
		*bp = make([]uint64, 0, capHint)
	} else {
		*bp = (*bp)[:0]
	}
	return bp
}

// hybridDitricLocal runs DITRIC's combined local/send phase with
// cfg.Threads workers. Workers count local-local edges into private states
// and forward remote shipments to the main goroutine, which owns the queue
// (and therefore also executes all receive-side intersections — the
// funneled-communication bottleneck of Fig. 8).
func hybridDitricLocal(pe *dist.PE, lg *graph.LocalGraph, ori *graph.LocalOriented, state *countState, cfg Config) {
	pt := lg.Part
	nLocal := lg.NLocal()
	var next atomic.Int64
	workers := make([]*countState, cfg.Threads)
	sends := make(chan hybridSend, 4*cfg.Threads)
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		ws := newCountState(lg, cfg)
		workers[t] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(hybridChunk)) - hybridChunk
				if lo >= nLocal {
					return
				}
				hi := lo + hybridChunk
				if hi > nLocal {
					hi = nLocal
				}
				ditricLocalRows(pe, pt, lg, ori, ws, lo, hi, sends, cfg.NoSurrogate)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(sends)
	}()
	for s := range sends {
		pe.Q.Send(s.ch, s.dst, *s.payload)
		payloadPool.Put(s.payload)
	}
	for _, ws := range workers {
		state.merge(ws)
	}
}

// newShipper returns the shipment emitter shared by the row sweeps
// (ditricLocalRows, cetricGlobalRows): with a funnel (sends != nil) each
// record checks a buffer out of payloadPool and the funnel returns it after
// Queue.Send has copied; without one, a single buffer captured in the
// closure is reused directly because Queue.Send copies synchronously.
func newShipper(pe *dist.PE, sends chan<- hybridSend) func(ch, dst int, head, av []uint64) {
	var buf []uint64 // reused across shipments on the sends == nil path
	return func(ch, dst int, head, av []uint64) {
		if sends != nil {
			bp := getPayload(len(head) + len(av))
			*bp = append(append(*bp, head...), av...)
			sends <- hybridSend{dst: dst, payload: bp, ch: ch}
			return
		}
		buf = append(append(buf[:0], head...), av...)
		pe.Q.Send(ch, dst, buf)
	}
}

// ditricLocalRows processes local rows [lo,hi): local-local wedges are
// intersected in place through the adaptive row-space pair kernels, remote
// shipments go through the shipper (funneled or direct, see newShipper).
func ditricLocalRows(pe *dist.PE, pt *part.Partition, lg *graph.LocalGraph, ori *graph.LocalOriented,
	state *countState, lo, hi int, sends chan<- hybridSend, noSurrogate bool) {
	first := lg.First
	var hdr [2]uint64 // record header scratch, reused across shipments
	ship := newShipper(pe, sends)
	for r := lo; r < hi; r++ {
		rv := int32(r)
		v := lg.GID(rv)
		av := ori.Out(rv)
		avRows := ori.OutRows(rv)
		lastRank := -1
		for _, u := range av {
			if lg.IsLocal(u) {
				state.countWedgeRows(avRows, rv, int32(u-first), ori)
				continue
			}
			if len(av) < 2 {
				continue // a single out-neighbor cannot close a triangle
			}
			if noSurrogate {
				// Ablation: one per-edge record per cut edge (Algorithm 2
				// without Arifuzzaman's dedup).
				hdr[0], hdr[1] = v, u
				ship(chNeighEdge, pt.Rank(u), hdr[:2], av)
				continue
			}
			// Surrogate dedup: av is ID-sorted and ranks own contiguous
			// ranges, so equal destinations are adjacent.
			if j := pt.Rank(u); j != lastRank {
				hdr[0] = v
				ship(chNeigh, j, hdr[:1], av)
				lastRank = j
			}
		}
	}
}

// merge folds a worker's private counters into s.
func (s *countState) merge(w *countState) {
	s.count += w.count
	s.t1 += w.t1
	s.t2 += w.t2
	s.t3 += w.t3
	if s.lcc {
		for i, d := range w.deltaRows {
			s.deltaRows[i] += d
		}
	}
	s.triangles = append(s.triangles, w.triangles...)
}

// recvPool implements the paper's hybrid global phase: the communication
// goroutine (MPI funneled mode) polls messages and turns received
// neighborhoods into intersection tasks, which a pool of workers consumes
// into private counters. The funneled dispatcher is the bottleneck the paper
// measures in Fig. 8.
type recvPool struct {
	tasks   chan recvTask
	wg      sync.WaitGroup
	workers []*countState
}

type recvTask struct {
	v       graph.Vertex
	list    []uint64
	release func() // unpins the decode arena the list aliases; may be nil
}

// newRecvPool starts threads workers that intersect shipped neighborhoods
// against out() (the receiver-side A-lists: full for DITRIC, contracted for
// CETRIC; resolved lazily because contraction happens after handler
// registration). Task payload slices alias pooled decode-arena memory; the
// submitting handler pins the arena (Queue.PinPayload) and the worker
// releases it once the list has been row-translated and counted, so no
// copies are needed and the arena recycles without allocation.
func newRecvPool(threads int, lg *graph.LocalGraph, cfg Config, out func() *graph.LocalOriented) *recvPool {
	rp := &recvPool{tasks: make(chan recvTask, 8*threads)}
	for t := 0; t < threads; t++ {
		ws := newCountState(lg, cfg)
		rp.workers = append(rp.workers, ws)
		rp.wg.Add(1)
		go func() {
			defer rp.wg.Done()
			for task := range rp.tasks {
				ws.recvNeigh(task.v, task.list, out())
				if task.release != nil {
					task.release()
				}
			}
		}()
	}
	return rp
}

// submit enqueues one received neighborhood (blocks when workers lag —
// exactly the backpressure a funneled comm thread experiences). release is
// called once the worker is done with list.
func (rp *recvPool) submit(v graph.Vertex, list []uint64, release func()) {
	rp.tasks <- recvTask{v: v, list: list, release: release}
}

// drain closes the pool, waits for the workers, and merges their counters.
func (rp *recvPool) drain(into *countState) {
	close(rp.tasks)
	rp.wg.Wait()
	for _, ws := range rp.workers {
		into.merge(ws)
	}
}

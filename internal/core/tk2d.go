package core

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/transport"
)

// TK2D — the 2D grid-partitioned counter of Tom & Karypis ("A 2-D Parallel
// Triangle Counting Algorithm", 2019) — as an alternative geometry to the
// paper's 1D counters. The ID-oriented upper-triangular adjacency matrix U
// is cut into an r×c grid of blocks (cyclic bands per dimension; see
// part.Grid2D — any p ≥ 1 factors, square p giving the classic √p×√p
// grid), PE (a,b) owns block U_ab, and the count is the masked SpGEMM
// trace Σ_ab ⟨(U·U)_ab, U_ab⟩: in round k = 0..L−1 (L = lcm(r,c), the
// middle-vertex banding both dimensions agree on) the PE at grid position
// (a, k mod c) broadcasts its round-k stripe along row a, the PE at
// (k mod r, b) broadcasts its TRANSPOSED stripe down column b, and every
// PE (a,b) closes the wedges i→v→j with v ≡ k (mod L) against its own
// edges (i,j) using the same adaptive merge/gallop/hub-bitmap kernels as
// the 1D counters. On square grids every stripe is a whole block and the
// schedule (and wire) reduces to the original √p-round one.
//
// The communication trade is the point: a PE ships its ~|E|/p-edge block
// (c−1)+(r−1) block-equivalents — O(|E|/√p) volume to O(√p) neighbors —
// instead of the 1D counters' cut-neighborhood shipping, whose volume
// grows with how many PEs each vertex's neighborhood spans and approaches
// O(|E|) per PE on dense or skewed graphs at large p. No ghost-degree
// exchange, no termination detection: the broadcast rounds are
// self-synchronizing.
//
// With cfg.Overlap the exchange is pipelined: round k+1's row/column
// broadcasts are posted split-phase (comm.Group.IBcast) before round k's
// block-local counting drains, so the per-round critical path is
// max(comm, compute) instead of comm + compute. Receive waits are metered
// into Metrics.IdleNs in both modes, and counting wall spent with the next
// round in flight into Metrics.OverlapNs. Counts are identical to the
// blocking schedule.
func runTK2D(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.P <= 0 {
		return nil, fmt.Errorf("core: config needs P > 0")
	}
	if cfg.LCC {
		return nil, fmt.Errorf("core: LCC is only supported by DITRIC/CETRIC, not %s", AlgoTK2D)
	}
	if cfg.Partition != nil {
		return nil, fmt.Errorf("core: %s uses the 2D block partition; a 1D Partition cannot be applied", AlgoTK2D)
	}
	g2, err := part.NewGrid2D(uint64(g.NumVertices()), cfg.P)
	if err != nil {
		return nil, err
	}
	if _, err := channelCodecs(cfg.Codec); err != nil {
		return nil, err
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold(g.NumEdges(), cfg.P)
	}
	scatterStart := time.Now()
	perEdges := graph.ScatterEdges2D(g2, g.Edges(), cfg.Threads)
	scatterWall := time.Since(scatterStart)
	outcomes := make([]*peOutcome, cfg.P)
	start := time.Now()
	metrics, err := dist.Run(dist.Config{
		P: cfg.P, Threshold: threshold, Network: cfg.Network,
		CommDeadline: cfg.CommDeadline, RunTimeout: cfg.RunTimeout,
	}, func(pe *dist.PE) error {
		out := newPEOutcome()
		outcomes[pe.Rank] = out
		return tk2dBody(pe, g2, perEdges[pe.Rank], cfg, out)
	})
	var res *Result
	if err != nil {
		if res = maybePartial(err, cfg, outcomes, metrics, g); res == nil {
			return nil, err
		}
	} else {
		res = mergeOutcomes(outcomes, metrics, g, cfg)
	}
	res.Wall = time.Since(start)
	res.Phases[PhaseScatter] += scatterWall
	res.Phases[PhasePreprocess] += scatterWall
	return res, nil
}

// runRankTK2D is the multi-process (one rank per process) variant, the 2D
// analogue of RunRank's 1D path: every process rebuilds the input
// deterministically and keeps only its block.
func runRankTK2D(g *graph.Graph, cfg Config, ep transport.Endpoint) (uint64, comm.Metrics, error) {
	cfg = cfg.withDefaults()
	cfg.P = ep.Size()
	g2, err := part.NewGrid2D(uint64(g.NumVertices()), cfg.P)
	if err != nil {
		return 0, comm.Metrics{}, err
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold(g.NumEdges(), cfg.P)
	}
	pe := dist.Attach(ep, threshold, false)
	edges := graph.ScatterEdges2DRank(g2, g.Edges(), pe.Rank, cfg.Threads)
	out := newPEOutcome()
	if err := tk2dBody(pe, g2, edges, cfg, out); err != nil {
		return 0, pe.C.M, err
	}
	global := pe.C.AllreduceSum([]uint64{out.count})
	return global[0], pe.C.M, nil
}

// groupCodec maps the run's codec policy to the block-broadcast codec. Raw
// stays raw; every other policy uses varint: block wire words are already
// gap-differenced per adjacency row (graph.Block.AppendWire), so varint on
// top yields delta-varint compression without a stateful codec
// re-differencing across record boundaries.
func groupCodec(policy string) comm.Codec {
	if policy == CodecRaw {
		return comm.Raw
	}
	return comm.Varint
}

// tk2dRound is the double-buffered per-round exchange state: each of the
// two in-flight rounds owns a posting slot — root-side stripe + wire
// scratch and the split-phase handles — and a decode slot. Blocking runs
// only ever populate slot k&1 right before draining it; pipelined runs
// keep slot (k+1)&1 posted while slot k&1 counts.
type tk2dRound struct {
	rowOp, colOp         comm.BcastOp
	rowRoot, colRoot     *graph.Block // operand the PE roots itself this round (own block, transpose, or stripe)
	rowStripe, colStripe graph.Block  // root-side stripe scratch (rect grids)
	rowWire, colWire     []uint64     // root-side wire scratch
	aScr, bScr           graph.Block  // receiver-side decode scratch
}

// tk2dBody is one PE's TK2D run: build the owned block and its transpose,
// then L broadcast rounds of exchange + block-local counting — blocking, or
// pipelined one round ahead under cfg.Overlap.
func tk2dBody(pe *dist.PE, g2 *part.Grid2D, edges []graph.Edge, cfg Config, out *peOutcome) error {
	sw := newStopwatch(pe.C, out)
	rounds := g2.Rounds()
	a, b := g2.RowCol(pe.Rank)

	sw.phase(PhaseBuild)
	own := graph.BuildBlock2D(g2, pe.Rank, edges, cfg.Threads)
	ownT := own.Transpose(cfg.Threads)
	// When a dimension's stride is 1 (L = c resp. L = r — always on square
	// grids) every round's stripe is the whole block, so the wire form is
	// serialized once here instead of per round.
	fastRow, fastCol := rounds == g2.C(), rounds == g2.R()
	var ownWire, ownTWire []uint64
	if fastRow {
		ownWire = own.AppendWire(nil)
	}
	if fastCol {
		ownTWire = ownT.AppendWire(nil)
	}

	sw.phase(PhasePreprocess)
	codec := groupCodec(cfg.Codec)
	// Group IDs: rows take 0..r-1, columns r..r+c-1 — unique per run, so
	// interleaved row/column broadcasts never share a tag.
	rowGrp, err := pe.C.NewGroup(uint64(a), g2.RowRanks(a))
	if err != nil {
		return err
	}
	colGrp, err := pe.C.NewGroup(uint64(g2.R()+b), g2.ColRanks(b))
	if err != nil {
		return err
	}
	// Line up the rounds so build skew lands here, not in the first round's
	// exchange wait (control traffic, like the 1D bodies' pre-count barrier).
	pe.C.Barrier()

	var slots [2]tk2dRound
	// post ships round k's stripes split-phase from this PE's posting slot.
	// Root frames leave here; receivers only advance the tag sequence.
	post := func(k int) {
		s := &slots[k&1]
		rowRoot, colRoot := g2.RootRow(k), g2.RootCol(k)
		var rowWords, colWords []uint64
		if b == rowRoot {
			if fastRow {
				s.rowRoot, rowWords = own, ownWire
			} else {
				res, stride := g2.StripeRow(k)
				own.StripeInto(&s.rowStripe, k, res, stride, g2.BandSizeRound(k))
				s.rowRoot = &s.rowStripe
				s.rowWire = s.rowStripe.AppendWire(s.rowWire[:0])
				rowWords = s.rowWire
			}
		}
		if a == colRoot {
			if fastCol {
				s.colRoot, colWords = ownT, ownTWire
			} else {
				res, stride := g2.StripeCol(k)
				ownT.StripeInto(&s.colStripe, k, res, stride, g2.BandSizeRound(k))
				s.colRoot = &s.colStripe
				s.colWire = s.colStripe.AppendWire(s.colWire[:0])
				colWords = s.colWire
			}
		}
		s.rowOp = rowGrp.IBcast(rowRoot, rowWords, codec)
		s.colOp = colGrp.IBcast(colRoot, colWords, codec)
	}
	// acquire completes round k's exchange and returns the counting
	// operands: A = round-k stripe of block (a, k mod c), B = transposed
	// round-k stripe of block (k mod r, b), both with round-space entries.
	acquire := func(k int) (*graph.Block, *graph.Block, error) {
		s := &slots[k&1]
		A, B := s.rowRoot, s.colRoot
		if b != g2.RootRow(k) {
			buf := s.rowOp.Wait()
			err := graph.DecodeBlockInto(buf, a, k, own.NRows(), g2.BandSizeRound(k), &s.aScr)
			rowGrp.Recycle(buf)
			if err != nil {
				return nil, nil, err
			}
			A = &s.aScr
		} else {
			s.rowOp.Wait()
		}
		if a != g2.RootCol(k) {
			buf := s.colOp.Wait()
			err := graph.DecodeBlockInto(buf, b, k, ownT.NRows(), g2.BandSizeRound(k), &s.bScr)
			colGrp.Recycle(buf)
			if err != nil {
				return nil, nil, err
			}
			B = &s.bScr
		} else {
			s.colOp.Wait()
		}
		return A, B, nil
	}

	hubMin := cfg.hubMinDegree()
	type tk2dWorker struct {
		count uint64
		tris  [][3]graph.Vertex
	}
	workers := make([]tk2dWorker, cfg.Threads)
	count := func(k int, A, B *graph.Block) {
		graph.ParallelFor(cfg.Threads, own.NRows(), func(w, lo, hi int) {
			ws := &workers[w]
			for rel := lo; rel < hi; rel++ {
				js := own.Row(rel)
				if len(js) == 0 {
					continue
				}
				ai := A.Row(rel)
				if len(ai) == 0 {
					continue
				}
				ha := A.Hub(rel)
				for _, relJ := range js {
					bj := B.Row(int(relJ))
					if len(bj) == 0 {
						continue
					}
					if cfg.Collect {
						i := g2.GIDRow(a, uint64(rel))
						j := g2.GIDCol(b, relJ)
						graph.ForEachCommon(ai, bj, func(v graph.Vertex) {
							ws.count++
							ws.tris = append(ws.tris, [3]graph.Vertex{i, g2.GIDRound(k, v), j})
						})
						continue
					}
					switch {
					case ha != nil:
						if hb := B.Hub(int(relJ)); hb != nil {
							ws.count += ha.CountAnd(hb)
						} else {
							ws.count += ha.CountList(bj)
						}
					default:
						if hb := B.Hub(int(relJ)); hb != nil {
							ws.count += hb.CountList(ai)
						} else {
							ws.count += graph.CountIntersect(ai, bj)
						}
					}
				}
			}
		})
	}

	pipelined := cfg.Overlap && rounds > 1
	sw.phase(PhaseGlobalExchange)
	if pipelined {
		post(0)
	}
	for k := 0; k < rounds; k++ {
		sw.phase(PhaseGlobalExchange)
		if pipelined {
			// Round k+1 goes on the wire before round k's payload is touched:
			// its frames land in the inbox (or stash) while the counting below
			// runs, so the next acquire's wait collapses to a decode.
			if k+1 < rounds {
				post(k + 1)
			}
		} else {
			post(k)
		}
		A, B, err := acquire(k)
		if err != nil {
			return err
		}
		A.BuildHubs(hubMin, cfg.Threads)
		B.BuildHubs(hubMin, cfg.Threads)

		sw.phase(PhaseLocal)
		t0 := time.Now()
		count(k, A, B)
		if pipelined && k+1 < rounds {
			// Counting wall with the next round's broadcasts in flight: the
			// compute that hides communication, same meaning as the 1D
			// pipeline's OverlapNs.
			pe.C.M.OverlapNs += time.Since(t0).Nanoseconds()
		}
	}
	sw.stop()
	for i := range workers {
		out.count += workers[i].count
		out.triangles = append(out.triangles, workers[i].tris...)
	}
	out.partialCount = out.count
	out.finished = true
	return nil
}

package core

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/transport"
)

// TK2D — the 2D grid-partitioned counter of Tom & Karypis ("A 2-D Parallel
// Triangle Counting Algorithm", 2019) — as an alternative geometry to the
// paper's 1D counters. The ID-oriented upper-triangular adjacency matrix U
// is cut into a √p×√p grid of blocks (cyclic bands; see part.Grid2D), PE
// (r,c) owns block U_rc, and the count is the masked SpGEMM trace
// Σ_rc ⟨(U·U)_rc, U_rc⟩: in round k = 0..√p−1 the PE at grid position
// (r,k) broadcasts its block along row r, the PE at (k,c) broadcasts its
// TRANSPOSED block down column c, and every PE (r,c) closes the wedges
// i→v→j with v in band k against its own edges (i,j) using the same
// adaptive merge/gallop/hub-bitmap kernels as the 1D counters.
//
// The communication trade is the point: a PE ships its ~|E|/p-edge block
// 2(√p−1) times — O(|E|/√p) volume to O(√p) neighbors — instead of the 1D
// counters' cut-neighborhood shipping, whose volume grows with how many
// PEs each vertex's neighborhood spans and approaches O(|E|) per PE on
// dense or skewed graphs at large p. No ghost-degree exchange, no
// termination detection: the broadcast rounds are self-synchronizing.
func runTK2D(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.P <= 0 {
		return nil, fmt.Errorf("core: config needs P > 0")
	}
	if cfg.LCC {
		return nil, fmt.Errorf("core: LCC is only supported by DITRIC/CETRIC, not %s", AlgoTK2D)
	}
	if cfg.Partition != nil {
		return nil, fmt.Errorf("core: %s uses the 2D block partition; a 1D Partition cannot be applied", AlgoTK2D)
	}
	g2, err := part.NewGrid2D(uint64(g.NumVertices()), cfg.P)
	if err != nil {
		return nil, err
	}
	if _, err := channelCodecs(cfg.Codec); err != nil {
		return nil, err
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold(g.NumEdges(), cfg.P)
	}
	scatterStart := time.Now()
	perEdges := graph.ScatterEdges2D(g2, g.Edges(), cfg.Threads)
	scatterWall := time.Since(scatterStart)
	outcomes := make([]*peOutcome, cfg.P)
	start := time.Now()
	metrics, err := dist.Run(dist.Config{
		P: cfg.P, Threshold: threshold, Network: cfg.Network,
		CommDeadline: cfg.CommDeadline, RunTimeout: cfg.RunTimeout,
	}, func(pe *dist.PE) error {
		out := newPEOutcome()
		outcomes[pe.Rank] = out
		return tk2dBody(pe, g2, perEdges[pe.Rank], cfg, out)
	})
	var res *Result
	if err != nil {
		if res = maybePartial(err, cfg, outcomes, metrics, g); res == nil {
			return nil, err
		}
	} else {
		res = mergeOutcomes(outcomes, metrics, g, cfg)
	}
	res.Wall = time.Since(start)
	res.Phases[PhaseScatter] += scatterWall
	res.Phases[PhasePreprocess] += scatterWall
	return res, nil
}

// runRankTK2D is the multi-process (one rank per process) variant, the 2D
// analogue of RunRank's 1D path: every process rebuilds the input
// deterministically and keeps only its block.
func runRankTK2D(g *graph.Graph, cfg Config, ep transport.Endpoint) (uint64, comm.Metrics, error) {
	cfg = cfg.withDefaults()
	cfg.P = ep.Size()
	g2, err := part.NewGrid2D(uint64(g.NumVertices()), cfg.P)
	if err != nil {
		return 0, comm.Metrics{}, err
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold(g.NumEdges(), cfg.P)
	}
	pe := dist.Attach(ep, threshold, false)
	edges := graph.ScatterEdges2DRank(g2, g.Edges(), pe.Rank, cfg.Threads)
	out := newPEOutcome()
	if err := tk2dBody(pe, g2, edges, cfg, out); err != nil {
		return 0, pe.C.M, err
	}
	global := pe.C.AllreduceSum([]uint64{out.count})
	return global[0], pe.C.M, nil
}

// groupCodec maps the run's codec policy to the block-broadcast codec. Raw
// stays raw; every other policy uses varint: block wire words are already
// gap-differenced per adjacency row (graph.Block.AppendWire), so varint on
// top yields delta-varint compression without a stateful codec
// re-differencing across record boundaries.
func groupCodec(policy string) comm.Codec {
	if policy == CodecRaw {
		return comm.Raw
	}
	return comm.Varint
}

// tk2dBody is one PE's TK2D run: build the owned block and its transpose,
// then √p broadcast rounds of exchange + block-local counting.
func tk2dBody(pe *dist.PE, g2 *part.Grid2D, edges []graph.Edge, cfg Config, out *peOutcome) error {
	sw := newStopwatch(pe.C, out)
	q := g2.Q()
	r, c := g2.RowCol(pe.Rank)

	sw.phase(PhaseBuild)
	own := graph.BuildBlock2D(g2, pe.Rank, edges, cfg.Threads)
	ownT := own.Transpose(cfg.Threads)
	rowWire := own.AppendWire(nil)
	colWire := ownT.AppendWire(nil)

	sw.phase(PhasePreprocess)
	codec := groupCodec(cfg.Codec)
	// Group IDs: rows take 0..q-1, columns q..2q-1 — unique per run, so
	// interleaved row/column broadcasts never share a tag.
	rowGrp, err := pe.C.NewGroup(uint64(r), g2.RowRanks(r))
	if err != nil {
		return err
	}
	colGrp, err := pe.C.NewGroup(uint64(q+c), g2.ColRanks(c))
	if err != nil {
		return err
	}
	// Line up the rounds so build skew lands here, not in the first round's
	// exchange wait (control traffic, like the 1D bodies' pre-count barrier).
	pe.C.Barrier()

	hubMin := cfg.hubMinDegree()
	type tk2dWorker struct {
		count uint64
		tris  [][3]graph.Vertex
	}
	workers := make([]tk2dWorker, cfg.Threads)
	var (
		aScr, bScr graph.Block // decode scratch, reused across rounds
		aBuf, bBuf []uint64    // receive buffers, reused across rounds
	)
	for k := 0; k < q; k++ {
		sw.phase(PhaseGlobalExchange)
		// Round k's operands: A = block (r,k) from the row broadcast,
		// B = block (k,c) transposed from the column broadcast. The roots
		// ship their pre-serialized wire form; everyone else decodes into
		// the round-reused scratch blocks.
		A, B := own, ownT
		if c == k {
			rowGrp.Bcast(k, rowWire, codec, nil)
		} else {
			aBuf = rowGrp.Bcast(k, nil, codec, aBuf)
			if err := graph.DecodeBlockInto(g2, aBuf, &aScr); err != nil {
				return err
			}
			A = &aScr
		}
		if r == k {
			colGrp.Bcast(k, colWire, codec, nil)
		} else {
			bBuf = colGrp.Bcast(k, nil, codec, bBuf)
			if err := graph.DecodeBlockInto(g2, bBuf, &bScr); err != nil {
				return err
			}
			B = &bScr
		}
		A.BuildHubs(hubMin, cfg.Threads)
		B.BuildHubs(hubMin, cfg.Threads)

		sw.phase(PhaseLocal)
		graph.ParallelFor(cfg.Threads, own.NRows(), func(w, lo, hi int) {
			ws := &workers[w]
			for rel := lo; rel < hi; rel++ {
				js := own.Row(rel)
				if len(js) == 0 {
					continue
				}
				ai := A.Row(rel)
				if len(ai) == 0 {
					continue
				}
				ha := A.Hub(rel)
				for _, relJ := range js {
					bj := B.Row(int(relJ))
					if len(bj) == 0 {
						continue
					}
					if cfg.Collect {
						i := g2.GID(r, uint64(rel))
						j := g2.GID(c, relJ)
						graph.ForEachCommon(ai, bj, func(v graph.Vertex) {
							ws.count++
							ws.tris = append(ws.tris, [3]graph.Vertex{i, g2.GID(k, v), j})
						})
						continue
					}
					switch {
					case ha != nil:
						if hb := B.Hub(int(relJ)); hb != nil {
							ws.count += ha.CountAnd(hb)
						} else {
							ws.count += ha.CountList(bj)
						}
					default:
						if hb := B.Hub(int(relJ)); hb != nil {
							ws.count += hb.CountList(ai)
						} else {
							ws.count += graph.CountIntersect(ai, bj)
						}
					}
				}
			}
		})
	}
	sw.stop()
	for i := range workers {
		out.count += workers[i].count
		out.triangles = append(out.triangles, workers[i].tris...)
	}
	out.partialCount = out.count
	out.finished = true
	return nil
}

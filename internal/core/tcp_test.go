package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/transport"
)

// TestAlgorithmsOverTCP runs the full algorithms over the real TCP wire path
// (loopback, one endpoint per PE) and checks counts and LCC against the
// sequential oracle — the end-to-end integration test for the
// multi-process-capable transport.
func TestAlgorithmsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration")
	}
	g := gen.RMAT(gen.DefaultRMAT(8, 51))
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoDiTric2, AlgoCetric, AlgoCetric2, AlgoHavoq, AlgoTriC} {
		net, err := transport.NewLoopbackTCPNetwork(4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(algo, g, Config{P: 4, Network: net})
		net.Close()
		if err != nil {
			t.Fatalf("%s over TCP: %v", algo, err)
		}
		if res.Count != want {
			t.Fatalf("%s over TCP: count %d, want %d", algo, res.Count, want)
		}
	}
}

func TestLCCOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration")
	}
	g := gen.WebGraph(gen.WebConfig{N: 256, HostSize: 16, IntraP: 0.5, LongFactor: 2, Seed: 3})
	_, wantDeltas := SeqDeltas(g)
	net, err := transport.NewLoopbackTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res, err := Run(AlgoCetric2, g, Config{P: 3, Network: net, LCC: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range wantDeltas {
		if res.Deltas[v] != want {
			t.Fatalf("TCP LCC: Δ(%d) = %d, want %d", v, res.Deltas[v], want)
		}
	}
}

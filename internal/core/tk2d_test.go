package core

import (
	"slices"
	"testing"

	"repro/internal/gen"
	"repro/internal/part"
	"repro/internal/testgraph"
)

// TestTK2DEquivalence pins TK2D to the sequential oracle on every fixture
// across the full p × Threads grid — square and rectangular PE counts, both
// the blocking and the pipelined (Overlap) exchange schedule.
func TestTK2DEquivalence(t *testing.T) {
	for _, tg := range testgraph.All {
		for _, p := range []int{1, 4, 6, 8, 9, 16} {
			for _, threads := range []int{1, 4} {
				for _, overlap := range []bool{false, true} {
					res, err := Run(AlgoTK2D, tg.Build(),
						Config{P: p, Threads: threads, Overlap: overlap})
					if err != nil {
						t.Fatalf("%s p=%d threads=%d overlap=%v: %v",
							tg.Name, p, threads, overlap, err)
					}
					if res.Count != tg.Triangles {
						t.Errorf("%s p=%d threads=%d overlap=%v: count %d, want %d",
							tg.Name, p, threads, overlap, res.Count, tg.Triangles)
					}
				}
			}
		}
	}
}

// TestTK2DMatches1DCounters cross-validates the two geometries directly:
// identical counts from TK2D, DITRIC, and CETRIC on every fixture.
func TestTK2DMatches1DCounters(t *testing.T) {
	for _, tg := range testgraph.All {
		tk, err := Run(AlgoTK2D, tg.Build(), Config{P: 9, Threads: 2})
		if err != nil {
			t.Fatalf("%s tk2d: %v", tg.Name, err)
		}
		for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
			res, err := Run(algo, tg.Build(), Config{P: 9, Threads: 2})
			if err != nil {
				t.Fatalf("%s %s: %v", tg.Name, algo, err)
			}
			if res.Count != tk.Count {
				t.Errorf("%s: tk2d=%d %s=%d", tg.Name, tk.Count, algo, res.Count)
			}
		}
	}
}

// TestTK2DHubKernels drives the block hub-bitmap path explicitly: a
// threshold of 1 turns every non-empty row into a hub (all intersections go
// through CountAnd/CountList), and a negative threshold disables bitmaps
// entirely (all merge/gallop). Counts must not move.
func TestTK2DHubKernels(t *testing.T) {
	for _, tg := range testgraph.All {
		for _, hub := range []int{-1, 1} {
			res, err := Run(AlgoTK2D, tg.Build(), Config{P: 4, HubThreshold: hub})
			if err != nil {
				t.Fatalf("%s hub=%d: %v", tg.Name, hub, err)
			}
			if res.Count != tg.Triangles {
				t.Errorf("%s hub=%d: count %d, want %d", tg.Name, hub, res.Count, tg.Triangles)
			}
		}
	}
}

// TestTK2DCollect checks the collected triangle set equals the oracle's —
// on a square and a rectangular grid, blocking and pipelined.
func TestTK2DCollect(t *testing.T) {
	tg, ok := testgraph.ByName("cliques")
	if !ok {
		t.Fatal("cliques fixture missing")
	}
	fix := tg.Build()
	want, err := Run(AlgoDiTric, fix, Config{P: 4, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	norm := func(tris [][3]uint64) [][3]uint64 {
		out := slices.Clone(tris)
		slices.SortFunc(out, func(a, b [3]uint64) int {
			for i := range a {
				if a[i] != b[i] {
					return int(int64(a[i]) - int64(b[i]))
				}
			}
			return 0
		})
		return out
	}
	exp := norm(want.Triangles)
	for _, p := range []int{4, 6} {
		for _, overlap := range []bool{false, true} {
			res, err := Run(AlgoTK2D, fix,
				Config{P: p, Collect: true, Threads: 2, Overlap: overlap})
			if err != nil {
				t.Fatalf("p=%d overlap=%v: %v", p, overlap, err)
			}
			got := norm(res.Triangles)
			if !slices.Equal(got, exp) {
				t.Fatalf("p=%d overlap=%v: triangle sets differ: got %d, want %d",
					p, overlap, len(got), len(exp))
			}
		}
	}
}

// TestTK2DConfigValidation pins what is accepted and what is rejected:
// every P ≥ 1 now factors into a rectangular grid (non-square counts
// included), while LCC, 1D partition overrides, and unknown codecs error.
func TestTK2DConfigValidation(t *testing.T) {
	g := gen.Complete(10)
	const wantTris = 120 // C(10,3)
	for _, p := range []int{2, 3, 5, 8, 12} {
		res, err := Run(AlgoTK2D, g, Config{P: p})
		if err != nil {
			t.Errorf("p=%d: rectangular grid rejected: %v", p, err)
			continue
		}
		if res.Count != wantTris {
			t.Errorf("p=%d: count %d, want %d", p, res.Count, wantTris)
		}
	}
	if _, err := Run(AlgoTK2D, g, Config{P: 4, LCC: true}); err == nil {
		t.Error("want error for LCC under tk2d")
	}
	if _, err := Run(AlgoTK2D, g, Config{P: 4, Partition: part.Uniform(10, 4)}); err == nil {
		t.Error("want error for 1D partition override under tk2d")
	}
	if _, err := Run(AlgoTK2D, g, Config{P: 4, Codec: "nope"}); err == nil {
		t.Error("want error for unknown codec policy")
	}
}

// TestTK2DExchangeFoldsIntoGlobal pins the stopwatch attribution the 2D
// body relies on: the collective exchange reports under global/exchange AND
// folds into the parent global phase — wall time and communication both —
// so cmd/tricount -v shows 1D and 2D runs under the same top-level keys.
func TestTK2DExchangeFoldsIntoGlobal(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 41))
	res, err := Run(AlgoTK2D, g, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := res.Phases[PhaseGlobalExchange]
	if !ok || sub <= 0 {
		t.Fatalf("global/exchange phase missing or empty: %v", res.Phases)
	}
	if parent := res.Phases[PhaseGlobal]; parent < sub {
		t.Fatalf("global (%v) does not cover its exchange sub-phase (%v)", parent, sub)
	}
	if res.PhaseComm[PhaseGlobalExchange].TotalEncodedBytes == 0 {
		t.Fatal("exchange sub-phase carries no traffic")
	}
	if res.PhaseComm[PhaseGlobal].TotalEncodedBytes < res.PhaseComm[PhaseGlobalExchange].TotalEncodedBytes {
		t.Fatal("exchange traffic did not fold into the global phase")
	}
	// The counting side of a round must stay communication-free.
	if res.PhaseComm[PhaseLocal].TotalPayload != 0 {
		t.Fatalf("tk2d local counting shipped %d payload words",
			res.PhaseComm[PhaseLocal].TotalPayload)
	}
}

// TestTK2DPipelinedMetersOverlap pins the pipelined schedule's metering:
// with Overlap set and more than one round, counting wall spent while the
// next round's broadcasts are in flight lands in Metrics.OverlapNs.
func TestTK2DPipelinedMetersOverlap(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 7))
	res, err := Run(AlgoTK2D, g, Config{P: 9, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.TotalOverlapNs == 0 {
		t.Fatal("pipelined tk2d metered no overlap")
	}
	blocking, err := Run(AlgoTK2D, g, Config{P: 9})
	if err != nil {
		t.Fatal(err)
	}
	if blocking.Agg.TotalOverlapNs != 0 {
		t.Fatalf("blocking tk2d metered overlap: %d ns", blocking.Agg.TotalOverlapNs)
	}
	if res.Count != blocking.Count {
		t.Fatalf("pipelined count %d != blocking count %d", res.Count, blocking.Count)
	}
}

// TestTK2DSinglePEHasNoCommunication: the 1×1 grid runs entirely locally.
func TestTK2DSinglePEHasNoCommunication(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 97))
	res, err := Run(AlgoTK2D, g, Config{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.TotalPayload != 0 || res.Agg.TotalFrames != 0 {
		t.Fatalf("tk2d at p=1 communicated: %+v", res.Agg)
	}
	if res.Count == 0 {
		t.Fatal("no triangles counted")
	}
}

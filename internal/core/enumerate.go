package core

import (
	"repro/internal/graph"
)

// Triangle enumeration (§IV-E: "since each triangle is found exactly once,
// this can be easily generalized to the case of triangle enumeration").

// TriangleFunc receives one triangle; corners are ordered ascending by
// vertex ID. In distributed enumeration it is invoked concurrently from
// multiple PE goroutines and must be safe for concurrent use.
type TriangleFunc func(a, b, c graph.Vertex)

// EnumerateDist enumerates every triangle exactly once with a distributed
// algorithm; fn runs on the PE that finds the triangle. Only DITRIC/CETRIC
// variants support enumeration.
func EnumerateDist(algo Algorithm, g *graph.Graph, cfg Config, fn TriangleFunc) (*Result, error) {
	cfg.Collect = true
	res, err := Run(algo, g, cfg)
	if err != nil {
		return nil, err
	}
	for _, tri := range res.Triangles {
		fn(tri[0], tri[1], tri[2])
	}
	return res, nil
}

// compressedCount counts triangles on the compressed out-adjacency; exposed
// for tests and the memory-footprint benchmark.
func compressedCount(g *graph.Graph) uint64 {
	return graph.CompressOriented(g).CountTriangles()
}

// CompressedSeqCount counts triangles entirely on delta-varint compressed
// adjacency arrays (the representation of Dhulipala et al.); it trades
// decode work for a much smaller memory footprint.
func CompressedSeqCount(g *graph.Graph) uint64 { return compressedCount(g) }

package core

import (
	"testing"

	"repro/internal/graph"
)

// BenchmarkStealDequeSteadyState measures allocs/op of the overlap deque's
// steady state: records parked by the funnel, stolen in batches, processed
// via drainBatch with their release pins invoked. The ring grows to the
// peak backlog once and is reused forever after, and batch scratch lives
// with the worker — so the steady state must report zero allocations. This
// is the fourth leg of CI's allocation-regression gate, next to the queue
// flush/receive path, the adaptive kernels, and the hybrid recvPool.
func BenchmarkStealDequeSteadyState(b *testing.B) {
	dq := newStealDeque()
	scratch := make([]recvRecord, dequeBatch)
	list := []uint64{100, 103, 104, 110, 117, 125, 126, 140}
	var released int64
	release := func() { released++ }
	var sink uint64
	fn := func(_ *countState, r recvRecord) { sink += r.v + uint64(len(r.list)) }

	const backlog = 256
	round := func() {
		for i := 0; i < backlog; i++ {
			dq.push(recvRecord{v: graph.Vertex(i), list: list, release: release})
		}
		for drainBatch(dq, scratch, nil, fn, false) > 0 {
		}
	}
	for i := 0; i < 16; i++ {
		round() // grow the ring to the peak backlog
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	b.StopTimer()
	if released == 0 || sink == 0 {
		b.Fatal("deque processed no records; the benchmark is vacuous")
	}
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/testgraph"
)

// placementConfig is the knob set the equivalence suite runs under: a hub
// threshold of 2 drags the nomination floor down so even the tiny fixtures
// produce nomination candidates, exercising the placed ship/receive paths
// instead of short-circuiting to plc == nil.
func placementConfig(p int, placement string, overlap bool) Config {
	return Config{P: p, HubThreshold: 2, Placement: placement, Overlap: overlap}
}

// withCheapMoves prices hub moves as nearly free for the duration of the
// test: under honest cloud α/β a tiny fixture's hubs never pay the 50µs
// startup of a move, so the solver would (correctly) leave everything home
// and the placed code paths would go untested.
func withCheapMoves(t *testing.T) {
	t.Helper()
	placementTestProfile = &costmodel.Profile{Name: "test", Alpha: 1e-9, Beta: 1e-9}
	t.Cleanup(func() { placementTestProfile = nil })
}

// TestPlacementEquivalence pins the overlay's core invariant: the placement
// never changes any count. Every fixture × algorithm × P × placement ×
// overlap combination must land exactly on the fixture's known triangle
// count — the off runs double as the owner-driven control.
func TestPlacementEquivalence(t *testing.T) {
	withCheapMoves(t)
	for _, fix := range testgraph.All {
		name, g, want := fix.Name, fix.Build(), fix.Triangles
		for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
			for _, p := range []int{1, 2, 4, 8} {
				for _, placement := range []string{PlacementAuto, PlacementOff} {
					for _, overlap := range []bool{false, true} {
						t.Run(fmt.Sprintf("%s/%s/p=%d/%s/overlap=%v", algo, name, p, placement, overlap), func(t *testing.T) {
							res, err := Run(algo, g, placementConfig(p, placement, overlap))
							if err != nil {
								t.Fatal(err)
							}
							if res.Count != want {
								t.Fatalf("%s on %s p=%d placement=%s overlap=%v: count %d, want %d",
									algo, name, p, placement, overlap, res.Count, want)
							}
						})
					}
				}
			}
		}
	}
}

// TestPlacementEngages guards the suite against passing vacuously: on the
// skewed fixture with the low hub threshold, the overlay must actually move
// hubs (the place phase runs) and still match the owner-driven count.
func TestPlacementEngages(t *testing.T) {
	withCheapMoves(t)
	fix, _ := testgraph.ByName("rmat")
	g := fix.Build()
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		res, err := Run(algo, g, placementConfig(8, PlacementStatic, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != fix.Triangles {
			t.Fatalf("%s placed: %d, want %d", algo, res.Count, fix.Triangles)
		}
		if _, ok := res.Phases[PhasePlace]; !ok {
			t.Fatalf("%s: place phase never ran — the overlay was a no-op and the suite is vacuous", algo)
		}
	}
}

// TestPlacementTriangleSetsIdentical compares the actual triangle sets, not
// just the totals: an overcount that cancels against an undercount would
// slip past a count comparison but not past set equality + the duplicate
// check. (This is exactly the class of bug a surrogate double-intersecting
// a sender-local hub would introduce.)
func TestPlacementTriangleSetsIdentical(t *testing.T) {
	withCheapMoves(t)
	fix, _ := testgraph.ByName("rmat")
	g := fix.Build()
	want := make(map[[3]graph.Vertex]bool)
	SeqEnumerate(g, func(v, u, w graph.Vertex) { want[CanonTriangle(v, u, w)] = true })
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		for _, p := range []int{2, 4, 8} {
			cfg := placementConfig(p, PlacementAuto, false)
			cfg.Collect = true
			res, err := Run(algo, g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[[3]graph.Vertex]bool)
			for _, tri := range res.Triangles {
				if seen[tri] {
					t.Fatalf("%s p=%d: duplicate triangle %v under placement", algo, p, tri)
				}
				seen[tri] = true
				if !want[tri] {
					t.Fatalf("%s p=%d: spurious triangle %v under placement", algo, p, tri)
				}
			}
			if len(seen) != len(want) {
				t.Fatalf("%s p=%d: %d distinct triangles, want %d", algo, p, len(seen), len(want))
			}
		}
	}
}

// TestPlacementLCC pins the side-map path: a surrogate's triangles increment
// Δ for corners that may not even be rows there, which travel through the
// side map into the ghost-Δ exchange. Every per-vertex count must match the
// sequential oracle exactly.
func TestPlacementLCC(t *testing.T) {
	withCheapMoves(t)
	for _, name := range []string{"rmat", "web", "cliques"} {
		fix, ok := testgraph.ByName(name)
		if !ok {
			t.Fatalf("fixture %s missing", name)
		}
		g := fix.Build()
		_, wantDeltas := SeqDeltas(g)
		for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
			for _, overlap := range []bool{false, true} {
				cfg := placementConfig(4, PlacementAuto, overlap)
				cfg.LCC = true
				res, err := Run(algo, g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v, want := range wantDeltas {
					if res.Deltas[v] != want {
						t.Fatalf("%s/%s overlap=%v: Δ(%d) = %d, want %d",
							algo, name, overlap, v, res.Deltas[v], want)
					}
				}
			}
		}
	}
}

// TestPlacementHybridThreads runs the placed receive path through the
// funneled worker pool (barriered) and the chunk-stealing workers
// (overlapped), where records carry their source rank across goroutines.
func TestPlacementHybridThreads(t *testing.T) {
	withCheapMoves(t)
	g := gen.RMAT(gen.DefaultRMAT(9, 31))
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		for _, overlap := range []bool{false, true} {
			cfg := placementConfig(4, PlacementAuto, overlap)
			cfg.Threads = 4
			res, err := Run(algo, g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("%s threads=4 overlap=%v placed: %d, want %d", algo, overlap, res.Count, want)
			}
		}
	}
}

// TestPlacementIndirectVariants covers the grid-routed "2" algorithms: the
// effective destination of a redirected record must survive two-hop
// delivery unchanged.
func TestPlacementIndirectVariants(t *testing.T) {
	withCheapMoves(t)
	g := gen.RMAT(gen.DefaultRMAT(8, 11))
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric2, AlgoCetric2} {
		res, err := Run(algo, g, placementConfig(9, PlacementStatic, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("%s placed: %d, want %d", algo, res.Count, want)
		}
	}
}

// TestPlacementValidation rejects unknown policy names on both entry points.
func TestPlacementValidation(t *testing.T) {
	g := gen.Complete(8)
	if _, err := Run(AlgoDiTric, g, Config{P: 2, Placement: "sideways"}); err == nil {
		t.Fatal("Run accepted an invalid placement policy")
	}
}

// TestComputePlacementProperties exercises the LPT solver directly on a
// pathological skew: one PE owns every heavy hub. The solver must move work
// off it, never assign a surrogate equal to the owner, and be a pure
// function of its inputs.
func TestComputePlacementProperties(t *testing.T) {
	const p = 4
	base := []float64{1000, 10, 10, 10}
	var hubs []part.HubLoad
	for i := 0; i < 8; i++ {
		hubs = append(hubs, part.HubLoad{GID: uint64(100 + i), Owner: 0, Requests: 50, AListLen: 40})
	}
	pl := part.ComputePlacement(p, base, hubs, 1e-5, 1e-8, 1e-9)
	if pl.Len() == 0 {
		t.Fatal("nothing moved off the overloaded PE")
	}
	for i := 0; i < pl.Len(); i++ {
		gid, dst := pl.At(i)
		if dst == 0 {
			t.Fatalf("hub %d placed on its own overloaded owner", gid)
		}
		if dst < 0 || dst >= p {
			t.Fatalf("hub %d placed on out-of-range PE %d", gid, dst)
		}
	}
	again := part.ComputePlacement(p, base, hubs, 1e-5, 1e-8, 1e-9)
	if again.Len() != pl.Len() {
		t.Fatalf("solver is not deterministic: %d vs %d moves", again.Len(), pl.Len())
	}
	for i := 0; i < pl.Len(); i++ {
		g1, d1 := pl.At(i)
		g2, d2 := again.At(i)
		if g1 != g2 || d1 != d2 {
			t.Fatalf("solver is not deterministic at %d: (%d,%d) vs (%d,%d)", i, g1, d1, g2, d2)
		}
	}
}

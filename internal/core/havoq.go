package core

import (
	"slices"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// havoqBody reimplements the HavoqGT-style vertex-centric counter (Pearce et
// al.) from its published description: on the degree-oriented graph, every
// PE generates all open wedges (u,v,w) of its local vertices — all pairs of
// outgoing neighbors — and sends a "visitor" to the owner of the ≺-smaller
// endpoint, which checks for the closing edge. Message aggregation uses the
// same buffered queue as our algorithms (standing in for HavoqGT's
// node-level rerouting, which is topology dependent).
//
// Its communication volume is proportional to the number of *remote wedges*
// (two words per visitor), not to the cut neighborhoods — the structural
// reason it loses against DITRIC/CETRIC on wedge-rich graphs. HavoqGT's
// neighborhood partitioning of extreme hubs is not reproduced; see
// DESIGN.md §1.
func havoqBody(pe *dist.PE, pt *part.Partition, edges []graph.Edge, cfg Config, out *peOutcome) error {
	sw := newStopwatch(pe.C, out)
	sw.phase(PhaseBuild)
	lg := graph.BuildLocalPar(pt, pe.Rank, edges, cfg.Threads)
	sw.phase(PhaseDegrees)
	exchangeGhostDegrees(pe, lg, cfg.SparseDegreeExchange, cfg.Threads)
	sw.phase(PhaseOrient)
	ori := graph.OrientLocalOnlyPar(lg, cfg.Threads)
	sw.phase(PhasePreprocess) // residual: handler setup + the barrier
	state := newCountState(lg, cfg)

	// closes reports whether the oriented edge (a,b) exists, for local a.
	closes := func(a, b graph.Vertex) bool {
		_, ok := slices.BinarySearch(ori.Out(lg.Row(a)), b)
		return ok
	}
	pe.Q.Handle(chWedge, func(_ int, words []uint64) {
		for i := 0; i+1 < len(words); i += 2 {
			if closes(words[i], words[i+1]) {
				state.count++
			}
		}
	})
	pe.C.Barrier()

	sw.phase(PhaseLocal)
	// Wedge generation with per-destination mini-batches (visitors are two
	// words; batching a few of them per record keeps envelope overhead sane,
	// like HavoqGT's visitor queues do).
	const batchPairs = 64
	batches := make([][]uint64, pe.P)
	flush := func(dst int) {
		if len(batches[dst]) > 0 {
			pe.Q.Send(chWedge, dst, batches[dst])
			batches[dst] = batches[dst][:0]
		}
	}
	for r := 0; r < lg.NLocal(); r++ {
		av := ori.Out(int32(r))
		for i, u := range av {
			du := lg.Degree(lg.Row(u))
			for _, w := range av[i+1:] {
				a, b := u, w
				if !graph.Less(du, u, lg.Degree(lg.Row(w)), w) {
					a, b = w, u
				}
				if lg.IsLocal(a) {
					if closes(a, b) {
						state.count++
					}
					continue
				}
				dst := pt.Rank(a)
				batches[dst] = append(batches[dst], a, b)
				if len(batches[dst]) >= 2*batchPairs {
					flush(dst)
				}
			}
		}
	}
	for dst := range batches {
		flush(dst)
	}

	out.partialCount = state.count // coherent local-phase snapshot for degraded merges
	sw.phase(PhaseGlobal)
	pe.Q.Drain()
	sw.stop()
	state.finish(out)
	return nil
}

package core

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The two classic approximation baselines of §III-B. Both reduce the input
// and then use any exact (distributed) triangle counter as a black box,
// scaling the result back up — exactly how the paper frames them.

// SparsifyDoulion keeps each edge independently with probability q
// (Tsourakakis et al., DOULION). Each triangle survives with probability q³.
func SparsifyDoulion(g *graph.Graph, q float64, seed uint64) *graph.Graph {
	var kept []graph.Edge
	i := uint64(0)
	g.ForEachEdge(func(u, v graph.Vertex) {
		if gen.HashFloat64(seed, i) < q {
			kept = append(kept, graph.Edge{U: u, V: v})
		}
		i++
	})
	return graph.FromEdges(g.NumVertices(), kept)
}

// RunDoulion estimates the triangle count: sparsify with probability q,
// count exactly with algo, scale by 1/q³.
//
// With cfg.AllowPartial set, a run aborted by an infrastructure failure
// (lost peer, watchdog, timeout) degrades instead of failing: the estimate
// scales the partial count the survivors produced — a lower-bound estimate —
// and res.Partial carries the abort cause plus the completion fraction for
// widening the q-dependent error bound.
func RunDoulion(algo Algorithm, g *graph.Graph, cfg Config, q float64, seed uint64) (float64, *Result, error) {
	// Written as a negated conjunction so NaN is rejected too: both NaN ≤ 0
	// and NaN > 1 are false, so the direct two-clause check would accept it
	// and scale the estimate by 1/NaN³.
	if !(q > 0 && q <= 1) {
		return 0, nil, fmt.Errorf("core: DOULION probability %v out of (0,1]", q)
	}
	sparse := SparsifyDoulion(g, q, seed)
	res, err := Run(algo, sparse, cfg)
	if err != nil {
		return 0, nil, err
	}
	return float64(res.Count) / (q * q * q), res, nil
}

// SparsifyColorful colors vertices uniformly with ncolors colors and keeps
// only monochromatic edges (Pagh & Tsourakakis). Each triangle survives iff
// all three corners share a color: probability 1/ncolors².
func SparsifyColorful(g *graph.Graph, ncolors int, seed uint64) *graph.Graph {
	if ncolors < 1 {
		// Direct callers bypass RunColorful's validation; without this the
		// modulo below panics with an opaque divide-by-zero.
		panic(fmt.Sprintf("core: colorful sparsification needs at least one color, got %d", ncolors))
	}
	color := func(v graph.Vertex) uint64 { return gen.Hash64(seed, v) % uint64(ncolors) }
	var kept []graph.Edge
	g.ForEachEdge(func(u, v graph.Vertex) {
		if color(u) == color(v) {
			kept = append(kept, graph.Edge{U: u, V: v})
		}
	})
	return graph.FromEdges(g.NumVertices(), kept)
}

// RunColorful estimates the triangle count via colorful sparsification:
// count the monochromatic graph exactly, scale by ncolors². Degrades under
// cfg.AllowPartial exactly like RunDoulion: a lower-bound estimate with the
// abort annotated in res.Partial.
func RunColorful(algo Algorithm, g *graph.Graph, cfg Config, ncolors int, seed uint64) (float64, *Result, error) {
	if ncolors < 1 {
		return 0, nil, fmt.Errorf("core: need at least one color, got %d", ncolors)
	}
	mono := SparsifyColorful(g, ncolors, seed)
	res, err := Run(algo, mono, cfg)
	if err != nil {
		return 0, nil, err
	}
	n := float64(ncolors)
	return float64(res.Count) * n * n, res, nil
}

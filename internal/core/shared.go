package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Shared-memory parallel EDGE ITERATOR in the style of Shun and Tangwongsan
// (§III-A1): the per-vertex (or per-edge-chunk) intersections are
// independent, so they run lock-free over a pool of workers with dynamic
// chunk stealing (Green et al.'s edge-centric balancing without the static
// partitioning pass). This is the single-node baseline the distributed
// algorithms degenerate to at p=1, and the engine a hybrid rank uses per
// node.

// SharedConfig controls the shared-memory counter.
type SharedConfig struct {
	Threads int // worker goroutines; ≤0 uses GOMAXPROCS
	// Deltas additionally accumulates per-vertex triangle counts.
	Deltas bool
	// HubThreshold tunes the hub-bitmap index (0 picks
	// graph.DefaultHubMinDegree, negative disables it — see Config).
	HubThreshold int
}

// SharedResult reports a shared-memory run.
type SharedResult struct {
	Count  uint64
	Deltas []uint64 // nil unless requested
}

// SharedCount counts triangles with Threads parallel workers.
func SharedCount(g *graph.Graph, cfg SharedConfig) SharedResult {
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	o := graph.Orient(g)
	o.BuildHubs(resolveHubMinDegree(cfg.HubThreshold))
	n := g.NumVertices()

	var deltas []atomic.Uint64
	if cfg.Deltas {
		deltas = make([]atomic.Uint64, n)
	}

	const chunk = 256
	var next atomic.Int64
	var total atomic.Uint64
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local uint64
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for v := lo; v < hi; v++ {
					nv := o.Out(graph.Vertex(v))
					for _, u := range nv {
						if deltas == nil {
							local += o.CountListWith(nv, u)
							continue
						}
						o.ForEachCommonListWith(nv, u, func(w graph.Vertex) {
							local++
							deltas[v].Add(1)
							deltas[u].Add(1)
							deltas[w].Add(1)
						})
					}
				}
			}
			total.Add(local)
		}()
	}
	wg.Wait()

	res := SharedResult{Count: total.Load()}
	if cfg.Deltas {
		res.Deltas = make([]uint64, n)
		for v := range res.Deltas {
			res.Deltas[v] = deltas[v].Load()
		}
	}
	return res
}

// SharedLCC computes local clustering coefficients with parallel workers.
func SharedLCC(g *graph.Graph, threads int) []float64 {
	res := SharedCount(g, SharedConfig{Threads: threads, Deltas: true})
	return LCCFromDeltas(g, res.Deltas)
}

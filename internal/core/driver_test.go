package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/part"
)

func TestRunRejectsUnknownAlgorithm(t *testing.T) {
	g := gen.Complete(5)
	if _, err := Run(Algorithm("nope"), g, Config{P: 2}); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
}

func TestRunRejectsMissingP(t *testing.T) {
	g := gen.Complete(5)
	if _, err := Run(AlgoDiTric, g, Config{}); err == nil {
		t.Fatal("want error for P=0")
	}
}

func TestRunRejectsPartitionMismatch(t *testing.T) {
	g := gen.Complete(10)
	pt := part.Uniform(10, 3)
	if _, err := Run(AlgoDiTric, g, Config{P: 4, Partition: pt}); err == nil {
		t.Fatal("want error for partition P mismatch")
	}
	pt2 := part.Uniform(99, 4)
	if _, err := Run(AlgoDiTric, g, Config{P: 4, Partition: pt2}); err == nil {
		t.Fatal("want error for partition N mismatch")
	}
}

func TestRunRejectsLCCOnBaselines(t *testing.T) {
	g := gen.Complete(6)
	for _, algo := range []Algorithm{AlgoTriC, AlgoHavoq} {
		if _, err := Run(algo, g, Config{P: 2, LCC: true}); err == nil {
			t.Fatalf("%s should reject LCC", algo)
		}
	}
}

func TestAlgorithmsListStable(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 6 {
		t.Fatalf("expected 6 algorithms, got %d", len(algos))
	}
	if algos[0] != AlgoDiTric || algos[5] != AlgoTriC {
		t.Fatalf("unexpected order: %v", algos)
	}
}

func TestResultPhasesPopulated(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 91))
	res, err := Run(AlgoCetric, g, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range []string{PhasePreprocess, PhaseLocal, PhaseContraction, PhaseGlobal} {
		if _, ok := res.Phases[ph]; !ok {
			t.Fatalf("phase %q missing from result", ph)
		}
	}
	if _, ok := res.Phases[PhasePostprocess]; ok {
		t.Fatal("postprocess phase should only exist with LCC")
	}
	res2, err := Run(AlgoCetric, g, Config{P: 4, LCC: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res2.Phases[PhasePostprocess]; !ok {
		t.Fatal("postprocess phase missing with LCC")
	}
}

func TestPhaseCommAttribution(t *testing.T) {
	g := gen.GNM(400, 3200, 17)
	res, err := Run(AlgoCetric, g, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	// CETRIC communicates in preprocess (degree exchange) and in the global
	// phase; the local phase must be communication-free.
	if res.PhaseComm[PhasePreprocess].TotalPayload == 0 {
		t.Fatal("preprocess should carry the degree exchange")
	}
	if res.PhaseComm[PhaseLocal].TotalPayload != 0 {
		t.Fatalf("CETRIC local phase should be communication-free, got %d words",
			res.PhaseComm[PhaseLocal].TotalPayload)
	}
	if res.PhaseComm[PhaseGlobal].TotalPayload == 0 {
		t.Fatal("global phase should ship neighborhoods")
	}
}

func TestSinglePEHasNoCommunication(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 97))
	for _, algo := range Algorithms() {
		res, err := Run(algo, g, Config{P: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Agg.TotalPayload != 0 || res.Agg.TotalFrames != 0 {
			t.Fatalf("%s at p=1 communicated: %+v", algo, res.Agg)
		}
	}
}

func TestWallClockPopulated(t *testing.T) {
	g := gen.Complete(20)
	res, err := Run(AlgoDiTric, g, Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
}

package core

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

// BenchmarkHybridRecvSteadyState measures allocs/op of the hybrid receive
// path: the funneled dispatcher submitting received neighborhoods into the
// recvPool, workers row-translating and intersecting them, and the release
// callback returning the (stand-in) arena. Everything is pooled or private
// per worker, so the steady state must report zero allocations — this is
// the third leg of CI's allocation-regression gate, next to the queue
// flush/receive path and the adaptive intersection kernels.
func BenchmarkHybridRecvSteadyState(b *testing.B) {
	g := gen.RGG2D(1<<10, 8, 42)
	const p = 4
	pt := part.Uniform(uint64(g.NumVertices()), p)
	per := graph.ScatterEdges(pt, g.Edges())
	lg := graph.BuildLocal(pt, 1, per[1])
	for i, gid := range lg.Ghosts() {
		lg.SetGhostDegree(int32(lg.NLocal()+i), g.Degree(gid))
	}
	ori := graph.OrientLocalOnly(lg)
	ori.BuildHubs(graph.DefaultHubMinDegree)

	cfg := Config{P: p}
	pool := newRecvPool(2, lg, cfg, func() *graph.LocalOriented { return ori }, func() *placeRun { return nil })

	// Replayed shipments: (v, A(v)) records in DITRIC's wire shape, with v a
	// ghost of this PE and the list a sorted mix of local and remote IDs —
	// local rows' neighborhoods have exactly that form.
	if lg.NGhost() == 0 {
		b.Fatal("fixture has no ghosts; pick a bigger graph or more PEs")
	}
	type rec struct {
		v    graph.Vertex
		list []uint64
	}
	var recs []rec
	for r := 0; r < lg.NLocal() && len(recs) < 64; r++ {
		if row := lg.RowNeighbors(int32(r)); len(row) >= 2 {
			recs = append(recs, rec{v: lg.Ghosts()[0], list: row})
		}
	}
	if len(recs) == 0 {
		b.Fatal("no records to replay")
	}

	var done atomic.Int64
	release := func() { done.Add(1) }
	var sent int64
	round := func() {
		for _, rc := range recs {
			pool.submit(1, rc.v, rc.list, release)
		}
		sent += int64(len(recs))
		for done.Load() < sent {
			runtime.Gosched()
		}
	}
	for i := 0; i < 16; i++ {
		round() // warm the per-worker translation scratch
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	b.StopTimer()
	state := newCountState(lg, cfg)
	pool.drain(state)
	if state.count == 0 {
		b.Fatal("receive path found no triangles; the benchmark is vacuous")
	}
}

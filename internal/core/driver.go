package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/costmodel"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/transport"
)

// Run executes a distributed triangle counting algorithm on g with cfg.P
// simulated PEs and returns the merged result. The graph is scattered the
// way a distributed loader would: each PE receives exactly the edges
// incident to its contiguous vertex range.
func Run(algo Algorithm, g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.P <= 0 {
		return nil, fmt.Errorf("core: config needs P > 0")
	}
	if cfg.Profile != "" && cfg.Profile != costmodel.MeasuredName {
		if _, err := costmodel.ByName(cfg.Profile); err != nil {
			return nil, err
		}
	}
	if !validPlacement(cfg.Placement) {
		return nil, fmt.Errorf("core: unknown placement policy %q (want auto, static, or off)", cfg.Placement)
	}
	if algo == AlgoTK2D {
		// The 2D geometry has its own scatter and partition math; it shares
		// the outcome merge and phase accounting with the 1D path.
		return runTK2D(g, cfg)
	}
	pt := cfg.Partition
	if pt == nil {
		pt = part.Uniform(uint64(g.NumVertices()), cfg.P)
	} else if pt.P() != cfg.P || pt.N() != uint64(g.NumVertices()) {
		return nil, fmt.Errorf("core: partition shape (p=%d,n=%d) does not match run (p=%d,n=%d)",
			pt.P(), pt.N(), cfg.P, g.NumVertices())
	}
	if cfg.LCC {
		switch algo {
		case AlgoDiTric, AlgoDiTric2, AlgoCetric, AlgoCetric2:
		default:
			return nil, fmt.Errorf("core: LCC is only supported by DITRIC/CETRIC, not %s", algo)
		}
	}

	threshold := cfg.Threshold
	if threshold <= 0 {
		// δ ∈ O(|E_i|): memory per PE stays linear in the local input.
		threshold = DefaultThreshold(g.NumEdges(), cfg.P)
	}
	if _, err := channelCodecs(cfg.Codec); err != nil {
		return nil, err
	}
	indirect := cfg.Indirect
	body, indirectDefault, err := bodyFor(algo)
	if err != nil {
		return nil, err
	}
	indirect = indirect || indirectDefault
	if algo == AlgoNoAgg {
		threshold = 1 // flush after every record: no aggregation
	}

	// The scatter runs driver-side (the stand-in for a distributed loader),
	// so its wall is timed here and folded into the preprocess phase after
	// the merge; Result.Wall remains the cluster wall alone.
	scatterStart := time.Now()
	perEdges := graph.ScatterEdgesPar(pt, g.Edges(), cfg.Threads)
	scatterWall := time.Since(scatterStart)
	outcomes := make([]*peOutcome, cfg.P)
	start := time.Now()
	metrics, err := dist.Run(dist.Config{
		P: cfg.P, Threshold: threshold, Indirect: indirect, Network: cfg.Network,
		CommDeadline: cfg.CommDeadline, RunTimeout: cfg.RunTimeout,
	}, func(pe *dist.PE) error {
		if err := applyCodecs(pe.Q, cfg.Codec); err != nil {
			return err
		}
		out := newPEOutcome()
		outcomes[pe.Rank] = out
		return body(pe, pt, perEdges[pe.Rank], cfg, out)
	})
	var res *Result
	if err != nil {
		if res = maybePartial(err, cfg, outcomes, metrics, g); res == nil {
			return nil, err
		}
	} else {
		res = mergeOutcomes(outcomes, metrics, g, cfg)
	}
	res.Wall = time.Since(start)
	res.Phases[PhaseScatter] += scatterWall
	res.Phases[PhasePreprocess] += scatterWall
	return res, nil
}

// maybePartial turns an infrastructure abort into a degraded merge when the
// config allows it: completed PEs contribute their full totals, aborted ones
// their last phase-boundary snapshot. Returns nil when the error must
// propagate — degradation is opt-in and never hides the body's own errors.
func maybePartial(err error, cfg Config, outcomes []*peOutcome, metrics []comm.Metrics, g *graph.Graph) *Result {
	if !cfg.AllowPartial {
		return nil
	}
	var re *dist.RunError
	if !errors.As(err, &re) || re.Cause == dist.CauseBody {
		return nil
	}
	res := mergeOutcomes(outcomes, metrics, g, cfg)
	completed := 0
	for _, out := range outcomes {
		if out != nil && out.finished {
			completed++
		}
	}
	res.Partial = &PartialInfo{Err: re, Completed: completed, P: cfg.P}
	return res
}

// RunRank executes a single rank of a multi-process cluster on an existing
// transport endpoint (the other ranks run the same code in their own
// processes). Each process deterministically rebuilds the input and keeps
// only its slice, so no data distribution is needed. Returns the global
// triangle count (agreed via an allreduce) and this rank's metrics.
func RunRank(algo Algorithm, g *graph.Graph, cfg Config, ep transport.Endpoint) (uint64, comm.Metrics, error) {
	cfg = cfg.withDefaults()
	cfg.P = ep.Size()
	if !validPlacement(cfg.Placement) {
		return 0, comm.Metrics{}, fmt.Errorf("core: unknown placement policy %q (want auto, static, or off)", cfg.Placement)
	}
	if algo == AlgoTK2D {
		return runRankTK2D(g, cfg, ep)
	}
	pt := cfg.Partition
	if pt == nil {
		pt = part.Uniform(uint64(g.NumVertices()), cfg.P)
	}
	body, indirectDefault, err := bodyFor(algo)
	if err != nil {
		return 0, comm.Metrics{}, err
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold(g.NumEdges(), cfg.P)
	}
	pe := dist.Attach(ep, threshold, cfg.Indirect || indirectDefault)
	if err := applyCodecs(pe.Q, cfg.Codec); err != nil {
		return 0, comm.Metrics{}, err
	}
	// Rank-filtered scatter: every process of a TCP cluster runs this, so
	// materializing all p slices just to keep one would cost O(|E|) words
	// per process instead of O(|E_rank|).
	edges := graph.ScatterEdgesRank(pt, g.Edges(), pe.Rank, cfg.Threads)
	out := newPEOutcome()
	if err := body(pe, pt, edges, cfg, out); err != nil {
		return 0, pe.C.M, err
	}
	global := pe.C.AllreduceSum([]uint64{out.count})
	return global[0], pe.C.M, nil
}

// peBody is the SPMD body of one algorithm.
type peBody func(pe *dist.PE, pt *part.Partition, edges []graph.Edge, cfg Config, out *peOutcome) error

// bodyFor resolves an algorithm name; the second result forces indirection
// (the "2" variants).
func bodyFor(algo Algorithm) (peBody, bool, error) {
	switch algo {
	case AlgoDiTric:
		return ditricBody, false, nil
	case AlgoDiTric2:
		return ditricBody, true, nil
	case AlgoCetric:
		return cetricBody, false, nil
	case AlgoCetric2:
		return cetricBody, true, nil
	case AlgoTriC:
		return tricBody, false, nil
	case AlgoHavoq:
		return havoqBody, false, nil
	case AlgoNoAgg:
		return ditricBody, false, nil
	default:
		return nil, false, fmt.Errorf("core: unknown algorithm %q", algo)
	}
}

package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// Streaming ingestion + incremental counting (RunStream). The one-shot
// driver materializes the full edge list and a complete p-way scatter
// before any PE starts building; the streaming driver feeds scattered
// batches through per-PE channels instead, so driver memory stays
// O(|E_i| + batch). On top of the incremental build it maintains the
// triangle count under batched edge insertions: after the initial graph is
// sealed and counted once with the regular DITRIC/CETRIC machinery, each
// inserted batch Δ is delta-counted as tri(G+Δ) − tri(G) — the triangles
// with at least one Δ edge — without ever recounting G.
//
// The delta identity is the bulk-update scheme of Tangwongsan, Pavan &
// Tirthapura (arXiv:1308.2166): for each effective-new edge (v,w), with
// old(x) the pre-batch neighborhood and Δ(x) the batch's strictly-new
// neighbors of x,
//
//	n0 += |old(v) ∩ old(w)|   (triangles with exactly this one new edge)
//	n1 += |old(v) ∩ Δ(w)| + |Δ(v) ∩ old(w)|   (two new edges: seen twice)
//	n2 += |Δ(v) ∩ Δ(w)|       (three new edges: seen three times)
//
// and the batch's triangle delta is n0 + n1/2 + n2/3 — divided only after
// the global sum, since per-PE shares need not be divisible. Intersections
// run in global-ID space with the adaptive merge/gallop kernels: degree
// orientation is unstable under inserts (an insert can flip an edge's
// direction and would force re-orientation per batch), so the delta engine
// deliberately stays unoriented; double counting cannot occur because every
// new edge is processed exactly once, at the owner of its smaller endpoint,
// with cut pairs shipped over the queue exactly like the one-shot global
// phase ships cut neighborhoods.

// BatchSource yields successive edge batches of a stream. Returning nil or
// an empty batch ends the source. Batches may be any size; the driver
// scatters each batch and hands every PE its slice, so a source never needs
// to know the partition.
type BatchSource func() []graph.Edge

// SliceBatches adapts an in-memory edge list to a BatchSource yielding
// consecutive batches of at most batch edges (the whole slice at once when
// batch ≤ 0). The slice is not copied.
func SliceBatches(edges []graph.Edge, batch int) BatchSource {
	if batch <= 0 {
		batch = max(1, len(edges))
	}
	i := 0
	return func() []graph.Edge {
		if i >= len(edges) {
			return nil
		}
		j := min(i+batch, len(edges))
		b := edges[i:j]
		i = j
		return b
	}
}

// StreamResult reports a streaming run.
type StreamResult struct {
	// Initial is the triangle count of the sealed initial graph.
	Initial uint64
	// Deltas holds the triangle-count increase contributed by each inserted
	// batch, in arrival order.
	Deltas []uint64
	// Count is the final triangle count: Initial plus all Deltas.
	Count uint64
	// Res carries the merged per-PE metrics and phase breakdown (its Count
	// equals the final Count; LCC/Collect fields stay empty — unsupported
	// while streaming).
	Res *Result
}

// feedItem is one PE's slice of one scattered batch.
type feedItem struct {
	edges  []graph.Edge
	insert bool // false: initial-build batch, true: delta-counted insertion
}

// streamOutcome is the per-PE streaming state collected by the driver.
type streamOutcome struct {
	tuples [][3]uint64 // per insert batch: (n0, n1, n2) shares
}

// countBody runs one algorithm's counting phases on an already-built local
// view (the post-build halves of the one-shot bodies).
type countBody func(pe *dist.PE, pt *part.Partition, lg *graph.LocalGraph, cfg Config, out *peOutcome, sw *stopwatch) error

// countFor resolves the streaming-capable algorithms; the second result
// forces indirection (the "2" variants).
func countFor(algo Algorithm) (countBody, bool, error) {
	switch algo {
	case AlgoDiTric:
		return ditricFrom, false, nil
	case AlgoDiTric2:
		return ditricFrom, true, nil
	case AlgoCetric:
		return cetricFrom, false, nil
	case AlgoCetric2:
		return cetricFrom, true, nil
	default:
		return nil, false, fmt.Errorf("core: streaming supports the DITRIC/CETRIC variants, not %s", algo)
	}
}

// streamThreshold is DefaultThreshold's per-PE analogue for streams: the
// driver cannot derive δ from |E| up front (the stream's size is unknown),
// so each PE resolves its own δ ∈ O(|E_i|) from the sealed resident size.
func streamThreshold(localEdges int) int { return max(localEdges, 1024) }

// RunStream executes algo over a streamed graph on n vertices: the initial
// source's batches are folded into the per-PE resident adjacency and
// counted once, then each batch of the inserts source is delta-counted.
// Either source may be nil. Counts are identical to Run on the union of all
// batches — duplicate edges and self-loops are dropped exactly like
// graph.FromEdges drops them.
func RunStream(algo Algorithm, n uint64, initial, inserts BatchSource, cfg Config) (*StreamResult, error) {
	cfg = cfg.withDefaults()
	if cfg.P <= 0 {
		return nil, fmt.Errorf("core: config needs P > 0")
	}
	if cfg.LCC || cfg.Collect {
		return nil, fmt.Errorf("core: streaming does not support LCC or triangle collection")
	}
	count, indirectDefault, err := countFor(algo)
	if err != nil {
		return nil, err
	}
	pt := cfg.Partition
	if pt == nil {
		pt = part.Uniform(n, cfg.P)
	} else if pt.P() != cfg.P || pt.N() != n {
		return nil, fmt.Errorf("core: partition shape (p=%d,n=%d) does not match run (p=%d,n=%d)",
			pt.P(), pt.N(), cfg.P, n)
	}
	if _, err := channelCodecs(cfg.Codec); err != nil {
		return nil, err
	}

	// The feeder scatters one batch at a time and blocks until every PE has
	// taken its slice (channel capacity 1 ⇒ at most two batches of scatter
	// slices are live), so driver-side memory stays O(batch), not O(|E|).
	// abortCh breaks the feed loop on both sides when any PE fails: a PE
	// blocked on its feed channel sits outside the transport, where the
	// runtime's abort flag could never reach it.
	feeds := make([]chan feedItem, cfg.P)
	for i := range feeds {
		feeds[i] = make(chan feedItem, 1)
	}
	abortCh := make(chan struct{})
	var abortOnce sync.Once
	abort := func() { abortOnce.Do(func() { close(abortCh) }) }
	go func() {
		defer func() {
			for _, ch := range feeds {
				close(ch)
			}
		}()
		pump := func(src BatchSource, insert bool) bool {
			if src == nil {
				return true
			}
			for {
				batch := src()
				if len(batch) == 0 {
					return true
				}
				slices := graph.ScatterEdgesPar(pt, batch, cfg.Threads)
				for i, ch := range feeds {
					select {
					case ch <- feedItem{edges: slices[i], insert: insert}:
					case <-abortCh:
						return false
					}
				}
			}
		}
		if pump(initial, false) {
			pump(inserts, true)
		}
	}()

	outcomes := make([]*peOutcome, cfg.P)
	souts := make([]*streamOutcome, cfg.P)
	start := time.Now()
	metrics, err := dist.Run(dist.Config{
		P: cfg.P, Threshold: cfg.Threshold, Indirect: cfg.Indirect || indirectDefault, Network: cfg.Network,
	}, func(pe *dist.PE) (err error) {
		defer func() {
			if r := recover(); r != nil {
				abort()
				panic(r)
			}
			if err != nil {
				abort()
			}
		}()
		if err := applyCodecs(pe.Q, cfg.Codec); err != nil {
			return err
		}
		out := newPEOutcome()
		outcomes[pe.Rank] = out
		so := &streamOutcome{}
		souts[pe.Rank] = so
		return streamBody(pe, pt, feeds[pe.Rank], abortCh, count, cfg, out, so)
	})
	abort() // normal completion: release the feeder if it is still blocked
	if err != nil {
		return nil, err
	}

	res := mergeOutcomes(outcomes, metrics, nil, cfg)
	res.Wall = time.Since(start)
	sr := &StreamResult{Res: res, Initial: res.Count, Count: res.Count}
	nb := len(souts[0].tuples)
	for _, so := range souts {
		if len(so.tuples) != nb {
			return nil, fmt.Errorf("core: stream feed skew: %d vs %d insert batches", len(so.tuples), nb)
		}
	}
	for b := 0; b < nb; b++ {
		var n0, n1, n2 uint64
		for _, so := range souts {
			n0 += so.tuples[b][0]
			n1 += so.tuples[b][1]
			n2 += so.tuples[b][2]
		}
		if n1%2 != 0 || n2%3 != 0 {
			// Globally n1 counts every two-new-edge triangle exactly twice
			// and n2 every three-new-edge triangle exactly three times; a
			// remainder means the pairing protocol lost or duplicated a record.
			return nil, fmt.Errorf("core: stream delta invariant violated in batch %d (n1=%d, n2=%d)", b, n1, n2)
		}
		d := n0 + n1/2 + n2/3
		sr.Deltas = append(sr.Deltas, d)
		sr.Count += d
	}
	res.Count = sr.Count
	return sr, nil
}

// recvFeed receives the next batch slice, aborting cleanly when a sibling
// PE has failed (the feeder may never close the channel in that case).
func recvFeed(feed <-chan feedItem, abortCh <-chan struct{}) (feedItem, bool, error) {
	select {
	case item, ok := <-feed:
		return item, ok, nil
	case <-abortCh:
		return feedItem{}, false, fmt.Errorf("core: stream feed aborted by sibling PE failure")
	}
}

// streamBody is the SPMD body of a streaming run: fold the initial batches,
// seal, count once with the regular machinery, then stage → delta-count →
// commit each inserted batch.
func streamBody(pe *dist.PE, pt *part.Partition, feed <-chan feedItem, abortCh <-chan struct{},
	count countBody, cfg Config, out *peOutcome, so *streamOutcome) error {
	sw := newStopwatch(pe.C, out)
	sb := graph.NewStreamBuilder(pt, pe.Rank)

	sw.phase(PhaseIngest)
	var pending feedItem
	havePending, feedDone := false, false
	for {
		item, ok, err := recvFeed(feed, abortCh)
		if err != nil {
			return err
		}
		if !ok {
			feedDone = true
			break
		}
		if item.insert {
			pending, havePending = item, true
			break
		}
		sb.Fold(item.edges, cfg.Threads)
	}

	sw.phase(PhaseBuild)
	var lg *graph.LocalGraph
	if feedDone {
		// Pure-ingestion stream: the feeder has already delivered every batch
		// to every PE (batches go to all PEs in order, the channels close
		// last), so a closed feed with no insert item means no PE will ever
		// see one. The resident rows are dead weight beside the sealed CSR;
		// SealRelease frees each one as it is copied, keeping the streaming
		// loader's peak below the one-shot driver's.
		lg = sb.SealRelease(cfg.Threads)
		sb = nil
	} else {
		lg = sb.Seal(cfg.Threads)
	}
	if cfg.Threshold <= 0 {
		// δ ∈ O(|E_i|), resolved per PE now that the resident size is known
		// (the queue was built before the first batch arrived, on the 1<<16
		// backstop). Per-PE δ values may differ: δ is a local buffering
		// bound, not a protocol constant.
		pe.Q.SetThreshold(streamThreshold(lg.LocalEdges()))
	}
	if err := count(pe, pt, lg, cfg, out, sw); err != nil {
		return err
	}
	if feedDone {
		// No insert batches anywhere (see above): skip the stream handler
		// installation and its barrier entirely — every PE takes this exit,
		// so no PE waits on the barrier below.
		sw.stop()
		return nil
	}

	// The initial count is globally quiescent here (the bodies end in
	// Drain), so re-registering chNeighEdge cannot race an in-flight
	// one-shot record; the barrier below guarantees every PE has its stream
	// handler installed before any PE can send the first staged record.
	ss := &streamState{sb: sb}
	pe.Q.Handle(chNeighEdge, ss.handle)
	pe.C.Barrier()

	for {
		var item feedItem
		if havePending {
			item, havePending = pending, false
		} else {
			next, ok, err := recvFeed(feed, abortCh)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			item = next
		}
		sw.phase(PhaseStreamStage)
		sb.Stage(item.edges, cfg.Threads)
		sw.phase(PhaseStreamDelta)
		ss.countStaged(pe, pt)
		// Drain (inside countStaged) reached global data quiescence for this
		// batch; the barrier additionally orders batches: no PE can stage —
		// let alone ship — batch t+1 records before every PE has finished
		// counting batch t, and incoming records only dispatch during this
		// PE's own polls, which resume after its own t+1 staging.
		pe.C.Barrier()
		so.tuples = append(so.tuples, [3]uint64{ss.n0, ss.n1, ss.n2})
		ss.n0, ss.n1, ss.n2 = 0, 0, 0
		sw.phase(PhaseStreamCommit)
		sb.Commit(cfg.Threads)
	}
	sw.stop()
	return nil
}

// streamState is the per-PE delta-counting engine. It is single-threaded by
// design (the queue dispatches handlers only on this PE's own polls), with
// the per-batch parallelism living in Stage/Commit instead.
type streamState struct {
	sb         *graph.StreamBuilder
	n0, n1, n2 uint64
	ship       []uint64 // send scratch, reused across records
}

// pair accumulates the category intersections for one effective-new edge
// with endpoint neighborhood splits (oa=old, da=Δ) and (ob, db). Symmetric
// in the two endpoints; the four lists are sorted, duplicate-free, and
// old/Δ are disjoint per endpoint, so each closing vertex lands in exactly
// one category.
func (s *streamState) pair(oa, da, ob, db []graph.Vertex) {
	s.n0 += graph.CountIntersect(oa, ob)
	s.n1 += graph.CountIntersect(oa, db) + graph.CountIntersect(da, ob)
	s.n2 += graph.CountIntersect(da, db)
}

// handle processes one shipped record [v, w, |Δ(v)|, Δ(v)..., old(v)...]:
// the sender owns v, this PE owns w < v, and the pair is counted here.
func (s *streamState) handle(_ int, words []uint64) {
	k := int(words[2])
	dv, ov := words[3:3+k], words[3+k:]
	r := int32(words[1] - s.sb.First())
	s.pair(s.sb.Row(r), s.sb.StagedRowOf(r), ov, dv)
}

// countStaged processes every staged new edge exactly once: edge (v,w) is
// counted at the owner of min(v,w). Iterating row v's staged Δ:
//
//	w > v, w local  → count inline (all four lists are resident here)
//	w > v, w remote → skip: w's owner has (w,v) staged with v < w and ships
//	w < v, w local  → skip: counted when the loop reaches row w
//	w < v, w remote → ship [v, w, Δ(v), old(v)] to w's owner
//
// Both owners of a cut edge stage it (the scatter gives edges to both
// sides, and resident rows stay symmetric across PEs by induction), so
// every cut pair is shipped exactly once and processed exactly once. The
// closing Drain reaches global data quiescence for the batch.
func (s *streamState) countStaged(pe *dist.PE, pt *part.Partition) {
	sb := s.sb
	first, last := sb.First(), sb.Last()
	for _, r := range sb.Staged() {
		dv := sb.StagedRowOf(r)
		if len(dv) == 0 {
			continue
		}
		v := first + graph.Vertex(r)
		ov := sb.Row(r)
		for _, w := range dv {
			local := w >= first && w < last
			switch {
			case w > v && local:
				rw := int32(w - first)
				s.pair(ov, dv, sb.Row(rw), sb.StagedRowOf(rw))
			case w < v && !local:
				s.ship = append(append(s.ship[:0], v, w, uint64(len(dv))), dv...)
				s.ship = append(s.ship, ov...)
				pe.Q.Send(chNeighEdge, pt.Rank(w), s.ship)
			}
		}
	}
	pe.Q.Drain()
}

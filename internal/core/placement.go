package core

import (
	"math"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/costmodel"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// Cost-model-driven hub placement (Arifuzzaman-style surrogate
// rebalancing). The 1D partition pins every vertex's receive-side
// intersection work to its owner; on skewed graphs a handful of hub rows
// concentrate most shipped neighborhoods on whichever PEs own them. The
// placement overlay moves exactly that work: after the ghost-degree
// exchange each PE nominates its heaviest rows, rank 0 solves a greedy LPT
// over the modeled per-PE load (part.ComputePlacement, priced by the α+β
// profile — statically configured or calibrated live from measured frame
// latency), and every moved hub's neighborhood ships once to its surrogate,
// which intersects on behalf of all requesters. Each oriented cut edge is
// still resolved exactly once cluster-wide (at the effective destination
// the sender computes), so counts are provably identical to the
// owner-driven path — the equivalence suite in placement_test.go pins this
// across every fixture × algorithm × P × overlap combination.

// Placement policy names accepted by Config.Placement / Options.Placement.
const (
	PlacementOff    = "off"    // owner-driven delivery (the default)
	PlacementStatic = "static" // cost-driven, α/β from the static profile table
	PlacementAuto   = "auto"   // cost-driven, α/β calibrated from measured latency when available
)

// placementMaxHubsPerPE caps each PE's nominations so the placement
// exchange and the LPT solve stay O(p·64) regardless of graph size; the
// tail past the cap folds into the PE's base load.
const placementMaxHubsPerPE = 64

// placementMaxDeadPerPE caps the dead-row announcements (empty shipped
// list, nonzero remote in-degree) the same way; rows past the cap just
// keep receiving useless records, exactly as with placement off.
const placementMaxDeadPerPE = 256

func validPlacement(name string) bool {
	switch name {
	case "", PlacementOff, PlacementStatic, PlacementAuto:
		return true
	}
	return false
}

// placementEnabled reports whether this run computes a placement overlay.
// The no-surrogate ablation ships per-edge records a surrogate could not
// dedup-intersect, so it forces placement off.
func (c Config) placementEnabled() bool {
	return (c.Placement == PlacementStatic || c.Placement == PlacementAuto) && !c.NoSurrogate
}

// placementMinDegree is the nomination threshold: the hub-bitmap degree
// knob when it is active, the engine default otherwise (placement stays
// usable when the bitmaps are ablated away).
func (c Config) placementMinDegree() int {
	if d := c.hubMinDegree(); d > 0 {
		return d
	}
	return graph.DefaultHubMinDegree
}

// placementProfile resolves the α/β the LPT solver prices hub moves with:
// PlacementStatic uses the configured profile table (Cloud when none is
// set), PlacementAuto — or -profile=measured — prefers a live fit of the
// frames metered so far (the degree exchange and everything before it),
// falling back to the static table until calibration has enough samples.
// Only rank 0's view matters: it solves alone and broadcasts the result.
func placementProfile(cfg Config, m comm.Metrics) costmodel.Profile {
	if placementTestProfile != nil {
		return *placementTestProfile
	}
	static := costmodel.Cloud
	if cfg.Profile != "" && cfg.Profile != costmodel.MeasuredName {
		if p, err := costmodel.ByName(cfg.Profile); err == nil {
			static = p
		}
	}
	if cfg.Placement == PlacementAuto || cfg.Profile == costmodel.MeasuredName {
		if p, ok := costmodel.Calibrate(m); ok {
			return p
		}
	}
	return static
}

// placementTestProfile, when non-nil, overrides the α/β the LPT solver
// prices hub moves with. The equivalence suite pins it to a near-free
// profile so the tiny test fixtures actually move hubs (under honest cloud
// pricing a few-hundred-word hub never pays its 50µs α and the placed code
// paths would go untested). Production paths never set it.
var placementTestProfile *costmodel.Profile

// placeRun is one PE's view of the placement overlay during a counting
// run: the global moved-hub map, this PE's own redirected rows (their
// incoming intersections are skipped here — the surrogate runs them), and
// the stored neighborhoods of foreign hubs placed here.
type placeRun struct {
	pl *part.Placement

	// Local hubs redirected away from this PE, ascending by row.
	redirRows []int32
	redirGIDs []uint64
	redirDst  []int32

	// Stored-hub table: staged by the chHubShip handler, finalized (sorted
	// by hub ID, flattened) on first use after the hub-ship drain. hubOwner
	// records each hub's owning rank (the ship's source): a counting record
	// from that same rank must NOT be intersected against the hub here —
	// sender and hub were co-located, so the sender already resolved the
	// pair as a local-local wedge.
	stagedGID   []uint64
	stagedOwner []int32
	stagedAdj   [][]uint64
	once        sync.Once
	hubGID      []uint64
	hubOwner    []int32
	hubOff      []int
	hubAdj      []uint64
}

// computePlacement runs the placement exchange: nominate local hub rows,
// gather the nominations at rank 0, solve the greedy LPT there, broadcast
// the assignment, and build this PE's view. src is the structure whose
// A-lists will ship and be intersected against — the full oriented lists
// for DITRIC, the contracted cut lists for CETRIC — so the nomination
// weights model exactly the intersections the global phase will run.
// Returns nil when placement is disabled or nothing moves; the broadcast
// makes the nil-ness (and everything else) identical on every PE.
func computePlacement(pe *dist.PE, lg *graph.LocalGraph, src *graph.LocalOriented, cfg Config) *placeRun {
	if !cfg.placementEnabled() || pe.P <= 1 {
		return nil
	}
	minDeg := cfg.placementMinDegree()
	type cand struct {
		row       int32
		req, alen uint64
		w         float64
	}
	var cands []cand
	var base float64
	nLoc := int32(lg.NLocal())
	// Mean shipped-list length over this PE's shipping rows (|A(v)| ≥ 2 —
	// singleton lists cannot close a wedge and are never sent). A received
	// record costs its list length plus the endpoint's A-list in the recvWork
	// accounting, so the list term dominates for hub rows, whose own oriented
	// lists are short by construction. The local mean stands in for the
	// remote senders' — under a uniform 1D partition the two agree in
	// expectation.
	var sumA, nA float64
	for r := int32(0); r < nLoc; r++ {
		if a := src.OutDegree(r); a >= 2 {
			sumA += float64(a)
			nA++
		}
	}
	var listBar float64
	if nA > 0 {
		listBar = sumA / nA
	}
	type deadRow struct {
		gid uint64
		req uint64
	}
	var dead []deadRow
	for r := int32(0); r < nLoc; r++ {
		alen := uint64(src.OutDegree(r))
		deg := lg.Degree(r)
		v := lg.GID(r)
		// Count this row's remote in-edges under the degree orientation:
		// each is exactly one record the global phase delivers for it (the
		// surrogate dedup merges a sender row's endpoints into one record,
		// but distinct sender rows stay distinct records). The same count is
		// exact for CETRIC's cut lists — cut edges are precisely the remote
		// ones.
		adj := lg.RowNeighbors(r)
		adjR := lg.RowNeighborRows(r)
		var req uint64
		for i, ur := range adjR {
			if ur < nLoc {
				continue
			}
			if graph.Less(lg.Degree(ur), adj[i], deg, v) {
				req++
			}
		}
		if req == 0 {
			continue // attracts no shipments
		}
		if alen == 0 {
			// Dead endpoint: attracts records but its shipped list is empty,
			// so no intersection against it can ever produce a triangle —
			// the LPT cannot balance this work, but senders can skip it
			// entirely. Under the degree orientation these are precisely the
			// locally-heaviest rows, so the waste is concentrated where the
			// skew is.
			dead = append(dead, deadRow{gid: v, req: req})
			continue
		}
		w := float64(req) * (listBar + float64(alen))
		if deg >= minDeg {
			cands = append(cands, cand{row: r, req: req, alen: alen, w: w})
		} else {
			base += w
		}
	}
	// Heaviest dead rows first, bounded like the hub nominations so the
	// exchange stays O(p) regardless of graph shape.
	sort.Slice(dead, func(a, b int) bool {
		if dead[a].req != dead[b].req {
			return dead[a].req > dead[b].req
		}
		return dead[a].gid < dead[b].gid
	})
	if len(dead) > placementMaxDeadPerPE {
		dead = dead[:placementMaxDeadPerPE]
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].w != cands[b].w {
			return cands[a].w > cands[b].w
		}
		return cands[a].row < cands[b].row
	})
	if len(cands) > placementMaxHubsPerPE {
		for _, c := range cands[placementMaxHubsPerPE:] {
			base += c.w
		}
		cands = cands[:placementMaxHubsPerPE]
	}
	// The nomination vector piggybacks this rank's calibration accumulators:
	// rank 0 pools them before fitting, so the α/β pricing the solve reflects
	// the whole cluster's metered sends, not just rank 0's few frames (a
	// single rank rarely reaches MinCalibrationSamples by the time the degree
	// exchange finishes).
	m := pe.C.M
	vec := make([]uint64, 0, 8+len(dead)+4*len(cands))
	vec = append(vec, math.Float64bits(base),
		uint64(m.LatSamples), math.Float64bits(m.LatSumNs), math.Float64bits(m.LatSumBytes),
		math.Float64bits(m.LatSumNsB), math.Float64bits(m.LatSumBytes2),
		uint64(len(dead)), uint64(len(cands)))
	for _, d := range dead {
		vec = append(vec, d.gid)
	}
	for _, c := range cands {
		vec = append(vec, lg.GID(c.row), c.req, c.alen, uint64(c.w))
	}
	gathered := pe.C.Gather(vec)
	var reply []uint64
	if pe.Rank == 0 {
		bases := make([]float64, pe.P)
		var pooled comm.Metrics
		var hubs []part.HubLoad
		var deadGIDs []uint64
		for r, v := range gathered {
			bases[r] = math.Float64frombits(v[0])
			pooled.LatSamples += int64(v[1])
			pooled.LatSumNs += math.Float64frombits(v[2])
			pooled.LatSumBytes += math.Float64frombits(v[3])
			pooled.LatSumNsB += math.Float64frombits(v[4])
			pooled.LatSumBytes2 += math.Float64frombits(v[5])
			nd, n := int(v[6]), int(v[7])
			deadGIDs = append(deadGIDs, v[8:8+nd]...)
			for i := 0; i < n; i++ {
				off := 8 + nd + 4*i
				hubs = append(hubs, part.HubLoad{GID: v[off], Owner: r, Requests: v[off+1], AListLen: v[off+2], Work: v[off+3]})
			}
		}
		prof := placementProfile(cfg, pooled)
		pl := part.ComputePlacement(pe.P, bases, hubs, prof.Alpha, prof.Beta, costmodel.IntersectSecPerWord)
		// One broadcast carries both decisions, sorted by GID (moved hubs
		// and dead rows are disjoint: a dead row has an empty list and was
		// never a HubLoad). Drop travels as the out-of-range rank p.
		type entry struct {
			gid uint64
			dst uint64
		}
		entries := make([]entry, 0, pl.Len()+len(deadGIDs))
		for i := 0; i < pl.Len(); i++ {
			gid, dst := pl.At(i)
			entries = append(entries, entry{gid: gid, dst: uint64(dst)})
		}
		for _, gid := range deadGIDs {
			entries = append(entries, entry{gid: gid, dst: uint64(pe.P)})
		}
		sort.Slice(entries, func(a, b int) bool { return entries[a].gid < entries[b].gid })
		reply = make([]uint64, 1, 1+2*len(entries))
		reply[0] = uint64(len(entries))
		for _, e := range entries {
			reply = append(reply, e.gid, e.dst)
		}
	}
	reply = pe.C.Broadcast(reply)
	k := int(reply[0])
	if k == 0 {
		return nil
	}
	gids := make([]uint64, k)
	dsts := make([]int32, k)
	for i := 0; i < k; i++ {
		gids[i] = reply[1+2*i]
		dsts[i] = int32(reply[2+2*i])
		if dsts[i] == int32(pe.P) {
			dsts[i] = part.Drop
		}
	}
	pl, err := part.NewPlacement(gids, dsts)
	if err != nil {
		panic("core: invalid placement broadcast: " + err.Error())
	}
	pr := &placeRun{pl: pl}
	for i := 0; i < k; i++ {
		// Dead rows need no owner-side bookkeeping: nothing ships for them,
		// and a ride-along appearance in another endpoint's record
		// intersects against their empty list for free.
		if dsts[i] != part.Drop && lg.IsLocal(gids[i]) {
			pr.redirRows = append(pr.redirRows, int32(gids[i]-lg.First))
			pr.redirGIDs = append(pr.redirGIDs, gids[i])
			pr.redirDst = append(pr.redirDst, dsts[i])
		}
	}
	return pr
}

// ship sends every redirected local hub's neighborhood to its surrogate on
// chHubShip and drains to global quiescence. Drain's termination requires
// every PE to have entered its own hub-ship drain after flushing (probe
// replies only happen inside Drain), so when any PE proceeds past this
// point, every stored-hub table in the cluster is complete — no counting
// record can reach a surrogate before the neighborhood it must intersect
// with. Every PE with a non-nil placement must call this (the drain is
// collective), even with nothing of its own to ship.
func (pr *placeRun) ship(pe *dist.PE, src *graph.LocalOriented) {
	var buf []uint64
	for i, row := range pr.redirRows {
		av := src.Out(row)
		buf = append(append(buf[:0], pr.redirGIDs[i]), av...)
		pe.Q.Send(chHubShip, int(pr.redirDst[i]), buf)
	}
	pe.Q.Drain()
	pr.ensureTable()
}

// handleShip stages one received (hub, A(hub)...) record; the frame's
// source rank is the hub's owner (only owners ship their hubs). Handlers
// are funneled through the PE's main goroutine, so plain appends suffice.
func (pr *placeRun) handleShip(src int, words []uint64) {
	pr.stagedGID = append(pr.stagedGID, words[0])
	pr.stagedOwner = append(pr.stagedOwner, int32(src))
	pr.stagedAdj = append(pr.stagedAdj, append([]uint64(nil), words[1:]...))
}

// ensureTable finalizes the stored-hub table. Guarded by a sync.Once
// because the first consumer may be a pool worker handling a counting
// record dispatched while this PE is still inside its hub-ship drain: such
// a record can only come from a PE that already exited the collective
// drain, which implies global hub-ship quiescence (the staging is
// complete), but the build must still be mutually exclusive with the main
// goroutine's own post-drain call.
func (pr *placeRun) ensureTable() { pr.once.Do(pr.buildTable) }

func (pr *placeRun) buildTable() {
	n := len(pr.stagedGID)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pr.stagedGID[idx[a]] < pr.stagedGID[idx[b]] })
	total := 0
	for _, adj := range pr.stagedAdj {
		total += len(adj)
	}
	pr.hubGID = make([]uint64, n)
	pr.hubOwner = make([]int32, n)
	pr.hubOff = make([]int, n+1)
	pr.hubAdj = make([]uint64, 0, total)
	for k, i := range idx {
		pr.hubGID[k] = pr.stagedGID[i]
		pr.hubOwner[k] = pr.stagedOwner[i]
		pr.hubOff[k] = len(pr.hubAdj)
		pr.hubAdj = append(pr.hubAdj, pr.stagedAdj[i]...)
	}
	pr.hubOff[n] = len(pr.hubAdj)
	pr.stagedGID, pr.stagedOwner, pr.stagedAdj = nil, nil, nil
}

// redirect resolves a cut edge's effective destination: the surrogate when
// u is a moved hub, its owner otherwise.
func (pr *placeRun) redirect(owner int, u uint64) int {
	if j, ok := pr.pl.Of(u); ok {
		return j
	}
	return owner
}

// redirectedAway reports whether local row r is served by a surrogate
// elsewhere, so this PE must not intersect incoming records against it.
// Hand-rolled binary search: no closure, no allocation on the hot path.
func (pr *placeRun) redirectedAway(r int32) bool {
	lo, hi := 0, len(pr.redirRows)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pr.redirRows[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(pr.redirRows) && pr.redirRows[lo] == r
}

// recvNeighAt is recvNeigh with the placement overlay: pass 1 intersects
// for the record's local endpoints minus the hubs redirected away from this
// PE, pass 2 intersects for the foreign hubs stored here that appear in the
// list. The sender ships each record exactly once per effective
// destination, so every oriented cut edge is resolved exactly once
// cluster-wide and the counts match the owner-driven path bit for bit.
func (s *countState) recvNeighAt(src int, v graph.Vertex, list []uint64, o *graph.LocalOriented, pr *placeRun) uint64 {
	if pr == nil {
		return s.recvNeigh(v, list, o)
	}
	pr.ensureTable()
	return s.recvNeighPass1(v, list, o, pr) + s.surrogateScan(src, v, list, pr)
}

// recvNeighPass1 mirrors recvNeigh's strategy dance (drop / one global-ID
// intersection / translate once and go row-space) while skipping
// redirected-away local endpoints.
func (s *countState) recvNeighPass1(v graph.Vertex, list []uint64, o *graph.LocalOriented, pr *placeRun) uint64 {
	if len(pr.redirRows) == 0 {
		return s.recvNeigh(v, list, o)
	}
	lg := s.lg
	first := lg.First
	nLoc, kept := 0, 0
	keptFirst := int32(-1)
	for _, x := range list {
		if lg.IsLocal(x) {
			nLoc++
			r := int32(x - first)
			if pr.redirectedAway(r) {
				continue
			}
			if kept == 0 {
				keptFirst = r
			}
			kept++
		}
	}
	if kept == nLoc {
		// No redirected endpoint in this record: the plain path is exact.
		return s.recvNeigh(v, list, o)
	}
	fast := !s.lcc && !s.collect
	switch {
	case kept == 0:
		return 0
	case kept == 1 && fast:
		partner := o.Out(keptFirst)
		s.recvWork += uint64(len(list) + len(partner))
		c := graph.CountIntersect(list, partner)
		s.count += c
		return c
	}
	rows, _ := lg.TranslateRows(&s.tr, list)
	var c uint64
	if fast {
		for _, ur := range rows[:nLoc] {
			ru := int32(ur)
			if pr.redirectedAway(ru) {
				continue
			}
			s.recvWork += uint64(len(rows) + o.OutDegree(ru))
			c += o.CountRowsWith(rows, ru)
		}
		s.count += c
		return c
	}
	// v is adjacent to a kept local vertex, so it is a row (ghost) here.
	rv := lg.Row(v)
	for _, ur := range rows[:nLoc] {
		ru := int32(ur)
		if pr.redirectedAway(ru) {
			continue
		}
		s.recvWork += uint64(len(rows) + o.OutDegree(ru))
		o.ForEachCommonRowsWith(rows, ru, func(w graph.Vertex) {
			s.addRows(rv, ru, int32(w))
			c++
		})
	}
	return c
}

// surrogateScan resolves pass 2 of a placed receive: a single merge scan
// finds the stored foreign hubs appearing in the (sorted) list, and each
// gets one intersection of the list against its stored neighborhood — the
// intersection its owner would have run, relocated verbatim (both sides
// are global-ID sorted). Hubs owned by src itself are skipped: the sender
// and the hub were co-located there, so (v, hub) was a local wedge the
// sender already resolved in its local phase — intersecting it again here
// would double-count every triangle on that wedge. LCC increments for
// these triangles may name vertices that are not rows here, so they
// accumulate in the side map and join the ghost-Δ postprocess exchange.
// Also used directly by the send sweeps when a redirected hub's surrogate
// is the sender itself (src == self never matches a stored owner: a
// surrogate is never the owner).
func (s *countState) surrogateScan(src int, v graph.Vertex, list []uint64, pr *placeRun) uint64 {
	if len(pr.hubGID) == 0 {
		return 0
	}
	var c uint64
	li := 0
	for hi := 0; hi < len(pr.hubGID) && li < len(list); hi++ {
		h := pr.hubGID[hi]
		for li < len(list) && list[li] < h {
			li++
		}
		if li >= len(list) || list[li] != h {
			continue
		}
		if pr.hubOwner[hi] == int32(src) {
			li++
			continue
		}
		stored := pr.hubAdj[pr.hubOff[hi]:pr.hubOff[hi+1]]
		s.recvWork += uint64(len(list) + len(stored))
		if !s.lcc && !s.collect {
			n := graph.CountIntersect(list, stored)
			s.count += n
			c += n
		} else {
			graph.ForEachCommon(list, stored, func(w graph.Vertex) {
				s.count++
				c++
				if s.lcc {
					s.sideAdd(v)
					s.sideAdd(h)
					s.sideAdd(w)
				}
				if s.collect {
					s.triangles = append(s.triangles, CanonTriangle(v, h, w))
				}
			})
		}
		li++
	}
	return c
}

package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/testgraph"
)

// The overlapped pipeline must be observationally identical to the
// barriered path on everything the paper reports: triangle counts, type
// classification, Δ vectors, enumeration. These tests pin it cell by cell
// against the barriered oracle (the seed semantics), exactly as the
// acceptance criteria demand.

func TestOverlapMatchesBarrieredOracle(t *testing.T) {
	for _, fix := range testgraph.All {
		g := fix.Build()
		for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
			for _, p := range []int{1, 2, 4, 8} {
				oracle, err := Run(algo, g, Config{P: p})
				if err != nil {
					t.Fatalf("%s/%s p=%d barriered oracle: %v", algo, fix.Name, p, err)
				}
				if oracle.Count != fix.Triangles {
					t.Fatalf("%s/%s p=%d: barriered oracle counts %d, fixture says %d",
						algo, fix.Name, p, oracle.Count, fix.Triangles)
				}
				for _, threads := range []int{1, 4} {
					t.Run(fmt.Sprintf("%s/%s/p=%d/t=%d", algo, fix.Name, p, threads), func(t *testing.T) {
						res, err := Run(algo, g, Config{P: p, Threads: threads, Overlap: true})
						if err != nil {
							t.Fatal(err)
						}
						if res.Count != oracle.Count {
							t.Fatalf("overlapped count %d, barriered oracle %d", res.Count, oracle.Count)
						}
						if algo == AlgoCetric && res.TypeCounts != oracle.TypeCounts {
							t.Fatalf("overlapped type counts %v, barriered oracle %v",
								res.TypeCounts, oracle.TypeCounts)
						}
					})
				}
			}
		}
	}
}

func TestOverlapIndirectVariants(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 11))
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric2, AlgoCetric2} {
		for _, threads := range []int{1, 4} {
			res, err := Run(algo, g, Config{P: 9, Threads: threads, Overlap: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("%s overlapped threads=%d: %d, want %d", algo, threads, res.Count, want)
			}
		}
	}
}

func TestOverlapLCC(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 37))
	_, wantDeltas := SeqDeltas(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		for _, threads := range []int{1, 4} {
			res, err := Run(algo, g, Config{P: 4, Threads: threads, Overlap: true, LCC: true})
			if err != nil {
				t.Fatal(err)
			}
			for v, want := range wantDeltas {
				if res.Deltas[v] != want {
					t.Fatalf("%s overlapped threads=%d: Δ(%d) = %d, want %d",
						algo, threads, v, res.Deltas[v], want)
				}
			}
		}
	}
}

func TestOverlapNoSurrogate(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 67))
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		for _, threads := range []int{1, 3} {
			res, err := Run(algo, g, Config{P: 5, Threads: threads, Overlap: true, NoSurrogate: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("%s overlapped no-surrogate threads=%d: %d, want %d",
					algo, threads, res.Count, want)
			}
		}
	}
}

func TestOverlapCollectEnumerates(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(7, 3))
	want := make(map[[3]graph.Vertex]bool)
	SeqEnumerate(g, func(v, u, w graph.Vertex) { want[CanonTriangle(v, u, w)] = true })
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		res, err := Run(algo, g, Config{P: 5, Threads: 2, Overlap: true, Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Triangles) != len(want) {
			t.Fatalf("%s: %d triangles collected, want %d", algo, len(res.Triangles), len(want))
		}
		for _, tri := range res.Triangles {
			if !want[tri] {
				t.Fatalf("%s: spurious triangle %v", algo, tri)
			}
		}
	}
}

func TestOverlapTinyThreshold(t *testing.T) {
	// δ=1 forces a flush (and a poll) on every append: maximal interleaving
	// of sends and receives inside the local stage.
	g := gen.GNM(150, 900, 77)
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		res, err := Run(algo, g, Config{P: 7, Threshold: 1, Overlap: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("%s overlapped δ=1: %d, want %d", algo, res.Count, want)
		}
	}
}

func TestOverlapPhaseAttribution(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 31))
	res, err := Run(AlgoDiTric, g, Config{P: 4, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Phases[PhaseGlobalRecv]; !ok {
		t.Fatalf("overlapped run recorded no %q sub-phase: %v", PhaseGlobalRecv, res.Phases)
	}
	// The fold parent must cover its sub-phase.
	if res.Phases[PhaseGlobal] < res.Phases[PhaseGlobalRecv] {
		t.Fatalf("global (%v) < global/recv (%v): fold broken",
			res.Phases[PhaseGlobal], res.Phases[PhaseGlobalRecv])
	}
	if idle, ok := res.Phases[PhaseOverlapIdle]; ok && res.Phases[PhaseOverlap] < idle {
		t.Fatalf("overlap (%v) < overlap/idle (%v): fold broken", res.Phases[PhaseOverlap], idle)
	}
}

// Steal-deque unit coverage: ring growth, batch pops, blocking waits, and
// the closed-and-empty exit.

func TestStealDequeOrderAndGrowth(t *testing.T) {
	dq := newStealDeque()
	const total = 1000
	for i := 0; i < total; i++ {
		dq.push(recvRecord{v: graph.Vertex(i)})
	}
	scratch := make([]recvRecord, 7)
	next := 0
	for {
		k := dq.popBatch(scratch, false)
		if k == 0 {
			break
		}
		for i := 0; i < k; i++ {
			if scratch[i].v != graph.Vertex(next) {
				t.Fatalf("popped %d, want %d (FIFO broken)", scratch[i].v, next)
			}
			next++
		}
	}
	if next != total {
		t.Fatalf("popped %d records, pushed %d", next, total)
	}
}

func TestStealDequeBlockingClose(t *testing.T) {
	dq := newStealDeque()
	var wg sync.WaitGroup
	got := make([]int, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := make([]recvRecord, dequeBatch)
			for {
				k := dq.popBatch(scratch, true)
				if k == 0 {
					return // closed and empty
				}
				got[w] += k
			}
		}(w)
	}
	for i := 0; i < 500; i++ {
		dq.push(recvRecord{v: graph.Vertex(i)})
	}
	dq.close()
	wg.Wait()
	sum := 0
	for _, n := range got {
		sum += n
	}
	if sum != 500 {
		t.Fatalf("workers drained %d records, want 500", sum)
	}
}

package core

import (
	"slices"

	"repro/internal/graph"
)

// Sequential algorithms: the EDGE ITERATOR / COMPACT-FORWARD base
// (Algorithm 1) that every distributed variant builds on, and a naive
// wedge-checking counter used as an independent oracle in tests.

// SeqCount counts triangles with the sequential EDGE ITERATOR on the
// degree-oriented graph: T = Σ_{(v,u)} |N⁺(v) ∩ N⁺(u)|, every intersection
// going through the adaptive kernel engine (hub bitmaps, galloping,
// branchless merge).
func SeqCount(g *graph.Graph) uint64 {
	o := graph.Orient(g)
	o.BuildHubs(graph.DefaultHubMinDegree)
	var count uint64
	for v := 0; v < g.NumVertices(); v++ {
		nv := o.Out(graph.Vertex(v))
		for _, u := range nv {
			count += o.CountListWith(nv, u)
		}
	}
	return count
}

// SeqDeltas counts triangles and the per-vertex incidence counts Δ(v); every
// triangle increments Δ of all three corners.
func SeqDeltas(g *graph.Graph) (uint64, []uint64) {
	o := graph.Orient(g)
	o.BuildHubs(graph.DefaultHubMinDegree)
	deltas := make([]uint64, g.NumVertices())
	var count uint64
	for v := 0; v < g.NumVertices(); v++ {
		nv := o.Out(graph.Vertex(v))
		for _, u := range nv {
			o.ForEachCommonListWith(nv, u, func(w graph.Vertex) {
				count++
				deltas[v]++
				deltas[u]++
				deltas[w]++
			})
		}
	}
	return count, deltas
}

// SeqEnumerate calls fn for every triangle exactly once. The corner order
// within a call follows the degree orientation (v ≺ u ≺ w).
func SeqEnumerate(g *graph.Graph, fn func(v, u, w graph.Vertex)) {
	o := graph.Orient(g)
	o.BuildHubs(graph.DefaultHubMinDegree)
	for v := 0; v < g.NumVertices(); v++ {
		nv := o.Out(graph.Vertex(v))
		for _, u := range nv {
			o.ForEachCommonListWith(nv, u, func(w graph.Vertex) {
				fn(graph.Vertex(v), u, w)
			})
		}
	}
}

// NaiveCount counts triangles by checking the closing edge of every open
// wedge — the textbook O(Σ_v d(v)²·log d) oracle, independent of the
// orientation machinery, used to cross-validate everything else.
func NaiveCount(g *graph.Graph) uint64 {
	var count uint64
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nv := g.Neighbors(graph.Vertex(v))
		for i, u := range nv {
			for _, w := range nv[i+1:] {
				if g.HasEdge(u, w) {
					count++
				}
			}
		}
	}
	return count / 3 // every triangle seen from each of its three corners
}

// CanonTriangle orders a triangle's corners ascending by vertex ID — the
// canonical form for comparing, collecting, and enumerating triangles (also
// used by the public tricount.Enumerate).
func CanonTriangle(a, b, c graph.Vertex) [3]graph.Vertex {
	t := [3]graph.Vertex{a, b, c}
	slices.Sort(t[:])
	return t
}

package core

import (
	"testing"

	"repro/internal/gen"
)

func TestSharedCountMatchesSequential(t *testing.T) {
	for name, g := range testGraphs() {
		want := SeqCount(g)
		for _, threads := range []int{1, 2, 4, 8} {
			res := SharedCount(g, SharedConfig{Threads: threads})
			if res.Count != want {
				t.Fatalf("%s threads=%d: %d, want %d", name, threads, res.Count, want)
			}
		}
	}
}

func TestSharedDeltasMatchSequential(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 77))
	_, want := SeqDeltas(g)
	res := SharedCount(g, SharedConfig{Threads: 4, Deltas: true})
	for v, w := range want {
		if res.Deltas[v] != w {
			t.Fatalf("Δ(%d) = %d, want %d", v, res.Deltas[v], w)
		}
	}
}

func TestSharedLCCMatchesSequential(t *testing.T) {
	g := gen.WebGraph(gen.WebConfig{N: 512, HostSize: 16, IntraP: 0.4, LongFactor: 2, Seed: 3})
	want := SeqLCC(g)
	got := SharedLCC(g, 3)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("LCC(%d) = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestSharedDefaultThreads(t *testing.T) {
	g := gen.Complete(20)
	res := SharedCount(g, SharedConfig{})
	if res.Count != 1140 {
		t.Fatalf("K20: %d, want 1140", res.Count)
	}
	if res.Deltas != nil {
		t.Fatal("deltas should be nil unless requested")
	}
}

func TestSharedEmptyGraph(t *testing.T) {
	g := gen.Path(0)
	if res := SharedCount(g, SharedConfig{Threads: 4}); res.Count != 0 {
		t.Fatal("empty graph must have zero triangles")
	}
}

func TestCompressedMatchesShared(t *testing.T) {
	// Cross-check the compressed-representation counter against the
	// shared-memory counter on a skewed instance.
	g := gen.RMAT(gen.DefaultRMAT(10, 123))
	want := SharedCount(g, SharedConfig{Threads: 2}).Count
	co := compressedCount(g)
	if co != want {
		t.Fatalf("compressed count %d, want %d", co, want)
	}
}

package core

import (
	"math"

	"repro/internal/graph"
)

// Local clustering coefficients (§IV-E): LCC(v) = 2Δ(v)/(d(v)(d(v)−1)),
// where Δ(v) counts the triangles incident to v. The distributed algorithms
// produce Δ via per-row accumulation plus a ghost aggregation exchange; the
// helpers here convert, summarize and compare LCC vectors — the analysis
// layer applications like web-spam detection (Becchetti et al.) build on.

// LCCFromDeltas converts per-vertex triangle counts to local clustering
// coefficients; vertices of degree < 2 get 0.
func LCCFromDeltas(g *graph.Graph, deltas []uint64) []float64 {
	lcc := make([]float64, g.NumVertices())
	for v := range lcc {
		d := g.Degree(graph.Vertex(v))
		if d >= 2 {
			lcc[v] = 2 * float64(deltas[v]) / (float64(d) * float64(d-1))
		}
	}
	return lcc
}

// SeqLCC returns the exact local clustering coefficient of every vertex,
// computed sequentially.
func SeqLCC(g *graph.Graph) []float64 {
	_, deltas := SeqDeltas(g)
	return LCCFromDeltas(g, deltas)
}

// GlobalClusteringCoefficient returns 3·triangles/wedges (transitivity),
// with wedges counted on the undirected graph: Σ_v C(d(v),2).
func GlobalClusteringCoefficient(g *graph.Graph, triangles uint64) float64 {
	var wedges float64
	for v := 0; v < g.NumVertices(); v++ {
		d := float64(g.Degree(graph.Vertex(v)))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(triangles) / wedges
}

// AverageLCC returns the mean local clustering coefficient (the
// Watts–Strogatz clustering coefficient).
func AverageLCC(lcc []float64) float64 {
	if len(lcc) == 0 {
		return 0
	}
	var sum float64
	for _, v := range lcc {
		sum += v
	}
	return sum / float64(len(lcc))
}

// LCCHistogram buckets an LCC vector into bins equal-width bins over [0,1].
// Analyzing this distribution is the spam-detection application from the
// paper's introduction.
func LCCHistogram(lcc []float64, bins int) []int {
	h := make([]int, bins)
	for _, v := range lcc {
		b := int(v * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h[b]++
	}
	return h
}

// LCCMaxAbsError returns the largest |a[i]−b[i]| between two LCC vectors
// (used to validate approximate LCC against exact).
func LCCMaxAbsError(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// LCCMeanAbsError returns the mean |a[i]−b[i]|.
func LCCMeanAbsError(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}

package core

import (
	"fmt"

	"repro/internal/comm"
)

// Wire codec policies. The queue channels carry structurally different
// records, so the per-channel codec choice is where the paper's observation
// that neighborhoods are sorted and clustered becomes wire-level savings:
// an adjacency row of clustered vertex IDs costs ~1–2 bytes per neighbor
// delta-encoded instead of 8 raw.
//
// A policy names either one codec forced onto every channel ("raw",
// "varint", "deltavarint" — useful for ablations and the compression-ratio
// benchmarks) or the tuned per-channel assignment ("auto", the default):
//
//   - chNeigh / chNeighEdge / chDegReq ship sorted vertex-ID sequences
//     (adjacency rows, ghost-ID request lists) → DeltaVarint.
//   - chDelta / chDegRep / chWedge ship small integers (Δ counts, degrees)
//     or ID pairs without exploitable order → Varint.
//   - chAMQ / chDeltaF ship high-entropy words (Bloom filter blocks,
//     Float64bits) that varints would expand past 8 bytes → Raw.
//
// The policy only moves the record marshalling boundary: every algorithm
// produces and consumes the same []uint64 payloads under every policy, so
// the cross-validation matrix (dist_test, codec_test) proves counts are
// codec-independent.

// Codec policy names accepted by Config.Codec.
const (
	CodecAuto        = "auto" // tuned per-channel assignment (the default)
	CodecRaw         = "raw"  // seed wire format on every channel
	CodecVarint      = "varint"
	CodecDeltaVarint = "deltavarint"
)

// channelCodecs resolves a policy name to the per-channel codec table.
func channelCodecs(policy string) ([comm.MaxChannels]comm.Codec, error) {
	var table [comm.MaxChannels]comm.Codec
	switch policy {
	case "", CodecAuto:
		for ch := range table {
			table[ch] = comm.Varint
		}
		table[chNeigh] = comm.DeltaVarint
		table[chNeighEdge] = comm.DeltaVarint
		table[chDegReq] = comm.DeltaVarint
		// Hub shipments are (hub, sorted A(hub)...) — the same clustered
		// sorted-ID shape as chNeigh records.
		table[chHubShip] = comm.DeltaVarint
		table[chAMQ] = comm.Raw
		table[chDeltaF] = comm.Raw
		return table, nil
	case CodecRaw, CodecVarint, CodecDeltaVarint:
		c, err := comm.CodecByName(policy)
		if err != nil {
			return table, err
		}
		for ch := range table {
			table[ch] = c
		}
		return table, nil
	default:
		return table, fmt.Errorf("core: unknown codec policy %q (want auto, raw, varint, or deltavarint)", policy)
	}
}

// applyCodecs installs a policy's codec table on a PE's queue. Every PE of a
// run derives the table from the same Config, so senders and receivers
// always agree before the first record is in flight.
func applyCodecs(q *comm.Queue, policy string) error {
	table, err := channelCodecs(policy)
	if err != nil {
		return err
	}
	for ch, c := range table {
		q.SetCodec(ch, c)
	}
	return nil
}

// DefaultThreshold is the authoritative aggregation threshold δ ∈ O(|E_i|):
// 2|E|/p words (with a small floor), the paper's linear-memory setting.
// Every run driver uses it when Config.Threshold is unset; comm.NewQueue's
// own 1<<16 fallback only exists for direct Queue users outside these
// drivers.
func DefaultThreshold(numEdges, p int) int {
	t := 2 * numEdges / p
	if t < 1024 {
		t = 1024
	}
	return t
}

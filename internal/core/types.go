// Package core implements the paper's triangle counting algorithms: the
// sequential EDGE ITERATOR base, the distributed DITRIC and CETRIC (with and
// without grid-indirect communication), the competitor baselines TriC and a
// HavoqGT-style vertex-centric counter, the unbuffered baseline of Fig. 2,
// and the extensions of §IV-E (local clustering coefficients, triangle
// enumeration, AMQ-approximate counting) plus the classic approximation
// baselines DOULION and colorful sparsification.
package core

import (
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/transport"
)

// Algorithm names an exact distributed counting algorithm.
type Algorithm string

// The implemented algorithms. The "2" variants use grid-indirect delivery.
const (
	AlgoDiTric  Algorithm = "ditric"
	AlgoDiTric2 Algorithm = "ditric2"
	AlgoCetric  Algorithm = "cetric"
	AlgoCetric2 Algorithm = "cetric2"
	AlgoTriC    Algorithm = "tric"
	AlgoHavoq   Algorithm = "havoq"
	AlgoNoAgg   Algorithm = "noagg"
	// AlgoTK2D is the 2D grid-partitioned counter à la Tom & Karypis: the
	// oriented adjacency matrix is cut into an r×c block grid (any P ≥ 1;
	// square P gives the classic √p×√p grid) and counting proceeds in
	// lcm(r,c) broadcast rounds along grid rows and columns instead of 1D
	// cut-neighborhood shipping.
	AlgoTK2D Algorithm = "tk2d"
)

// Algorithms lists all distributed algorithms in the order used by the
// paper's figures.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoDiTric, AlgoDiTric2, AlgoCetric, AlgoCetric2, AlgoHavoq, AlgoTriC}
}

// Phase names used in Result.Phases, matching Fig. 7's breakdown.
const (
	PhasePreprocess  = "preprocess"
	PhaseLocal       = "local"
	PhaseContraction = "contraction"
	PhaseGlobal      = "global"
	PhasePostprocess = "postprocess"
	// PhaseOverlap exists only as the fold parent of PhaseOverlapIdle: its
	// total is the time a PE spent waiting with nothing to do.
	PhaseOverlap = "overlap"
)

// Preprocessing sub-phases. Each is recorded in Result.Phases under its own
// key AND folded into PhasePreprocess by the stopwatch, so the Fig. 7-style
// total stays comparable across versions while the breakdown shows where
// the pre-count time goes: scattering the edge list (driver side), building
// the local CSR view, exchanging ghost degrees, and orienting the A-lists.
const (
	PhaseScatter = PhasePreprocess + "/scatter"
	PhaseBuild   = PhasePreprocess + "/build"
	PhaseDegrees = PhasePreprocess + "/degrees"
	PhaseOrient  = PhasePreprocess + "/orient"
)

// Counting sub-phases of the overlapped pipeline. The stopwatch folds each
// "parent/sub" key into its parent, so PhaseGlobal keeps its Fig. 7 meaning
// (all global-phase work) while the breakdown separates what used to be
// miscounted: receive-side intersections that run interleaved with the
// local phase land under global/recv, and time a PE spends waiting inside
// the termination detector with nothing to process lands under
// overlap/idle (split out of whatever phase was active — see
// stopwatch.phase), not under local or global compute.
const (
	PhaseGlobalRecv  = PhaseGlobal + "/recv"
	PhaseOverlapIdle = PhaseOverlap + "/idle"
	// PhasePlace is the placement hub-shipment step (sending moved hubs'
	// neighborhoods to their surrogates and draining to quiescence). Keyed
	// under global/ because it is global-phase communication the overlay
	// front-loads; folded into PhaseGlobal by the stopwatch.
	PhasePlace = PhaseGlobal + "/place"
	// PhaseGlobalExchange is TK2D's per-round block broadcast time. Keyed
	// under global/ so the stopwatch's parent-folding lands it in
	// PhaseGlobal, keeping the 1D and 2D phase reports comparable: in both
	// geometries "global" is the communication-driven counting phase, with
	// the sub-key showing how much of it the collective exchange takes.
	PhaseGlobalExchange = PhaseGlobal + "/exchange"
)

// Streaming phases (RunStream). PhaseIngest covers folding the initial
// batches into the resident adjacency (folded into PhasePreprocess, next to
// the build that seals it); the stream/ sub-phases split the per-batch
// insert loop — staging a batch, delta-counting it, merging it into the
// resident rows — and fold into PhaseStream for the total.
const (
	PhaseIngest       = PhasePreprocess + "/ingest"
	PhaseStream       = "stream"
	PhaseStreamStage  = PhaseStream + "/stage"
	PhaseStreamDelta  = PhaseStream + "/delta"
	PhaseStreamCommit = PhaseStream + "/commit"
)

// Config controls a distributed run.
type Config struct {
	P         int  // number of PEs (required)
	Threshold int  // aggregation threshold δ in words; ≤0 chooses O(|E_i|)
	Indirect  bool // grid-based indirect delivery (the "2" variants)
	Threads   int  // >1: hybrid counting phases (DITRIC/CETRIC) + parallel preprocessing (all algorithms)

	// HubThreshold tunes the adaptive intersection engine: rows whose
	// oriented neighborhood A(v) has at least this many entries get a packed
	// hub bitmap, turning intersections against them into bit tests (and
	// hub ∩ hub into word-AND + popcount). 0 picks
	// graph.DefaultHubMinDegree; negative disables the bitmaps, leaving the
	// branchless-merge and galloping kernels. Total bitmap memory is capped
	// at the size of the A-lists themselves regardless of the threshold.
	HubThreshold int

	// Overlap replaces the barrier-separated local → global execution with
	// the overlapped, work-stealing pipeline (DITRIC/CETRIC and their
	// indirect variants; the baselines ignore it): cut-neighborhood
	// shipments are flushed eagerly as row chunks complete, received
	// records park on a per-PE steal deque, and the same chunk-stealing
	// worker pool drains that deque concurrently with the remaining
	// emission work — DITRIC's global intersections start before its local
	// phase finishes; CETRIC's interleave with its cut send sweep. Counts
	// are exactly identical to the barriered path (the default), which
	// remains selectable as the oracle.
	//
	// For TK2D the same knob pipelines the round loop: round k+1's row and
	// column broadcasts are posted split-phase (comm.Group.IBcast) before
	// round k's block-local counting drains, making the per-round critical
	// path max(comm, compute) instead of comm + compute. Counts are
	// identical to the blocking schedule.
	Overlap bool

	// Codec selects the wire codec policy for the queue channels: "auto"
	// (or empty — tuned per-channel codecs, delta-varint on adjacency
	// shipments), or "raw" / "varint" / "deltavarint" to force one codec
	// everywhere. See codec.go for the per-channel rationale. The choice
	// never changes any count — only Metrics.EncodedBytes.
	Codec string

	// Profile names a costmodel network profile ("supercomputer", "cloud",
	// "wan"; empty for none). When set, the overlapped pipeline derives its
	// eager-flush watermark from the profile's α/β break-even frame size
	// instead of the fixed default, so high-latency parameterizations flush
	// in frames large enough to be worth their α. Never changes any count.
	Profile string

	// Partition overrides the default uniform 1D partition.
	Partition *part.Partition
	// SparseDegreeExchange uses the asynchronous sparse all-to-all for the
	// ghost degree exchange instead of the dense exchange the paper defaults
	// to in its evaluation.
	SparseDegreeExchange bool

	// Placement selects the cost-model-driven hub placement overlay for
	// DITRIC/CETRIC (and their indirect variants): "off" or empty leaves
	// delivery owner-driven; "static" assigns each heavy hub a surrogate PE
	// by greedy LPT over the modeled per-PE load, pricing hub moves with the
	// configured static α+β profile; "auto" does the same but prefers α/β
	// calibrated live from this run's own frame-latency samples
	// (costmodel.Calibrate), falling back to the static table until enough
	// samples exist. Moved hubs' neighborhoods ship once to their surrogate,
	// which intersects on behalf of all requesters — counts are provably
	// identical to owner-driven delivery. Ignored under NoSurrogate (the
	// ablation ships per-edge records no surrogate could dedup).
	Placement string
	// NoSurrogate disables the surrogate dedup of Arifuzzaman et al., so a
	// neighborhood is shipped once per *cut edge* instead of once per
	// destination PE (an ablation of §IV-D "avoiding redundant messages").
	NoSurrogate bool

	// LCC additionally computes per-vertex triangle counts and local
	// clustering coefficients (DITRIC/CETRIC only).
	LCC bool
	// Collect gathers every triangle (testing aid; memory O(#triangles)).
	Collect bool

	// Network overrides the in-process transport (e.g. loopback TCP).
	Network transport.Network

	// CommDeadline arms each PE's communication watchdog and RunTimeout
	// bounds the whole cluster run; both are handed straight to the dist
	// runtime (see dist.Config). Zero disables each.
	CommDeadline time.Duration
	RunTimeout   time.Duration
	// AllowPartial degrades instead of failing when the run aborts for an
	// infrastructure cause (peer loss, watchdog, run timeout — never a body
	// error): Run returns the merged count over what the surviving PEs got
	// done, annotated in Result.Partial. The count is a lower bound on the
	// fault-free result — meant for the approximate pipelines
	// (DOULION/colorful), where a degraded run still yields a usable
	// estimate with a widened error bound.
	AllowPartial bool
}

// withDefaults fills derived defaults given the local input size estimate.
func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	return c
}

// resolveHubMinDegree maps a HubThreshold knob value to the minimum
// out-degree passed to BuildHubs (0 disables the hub index there): negative
// disables, zero picks the engine default. Shared by the distributed Config
// and SharedConfig so the two paths cannot drift.
func resolveHubMinDegree(v int) int {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return graph.DefaultHubMinDegree
	default:
		return v
	}
}

func (c Config) hubMinDegree() int { return resolveHubMinDegree(c.HubThreshold) }

// Result reports one distributed run.
type Result struct {
	Count uint64 // number of triangles in the graph

	// TypeCounts splits the count by triangle type (1: all three vertices on
	// one PE, 2: two on one PE, 3: three PEs). Filled by CETRIC; DITRIC fills
	// local (type 1+2 found locally) vs remote counts approximately and the
	// baselines leave it zero.
	TypeCounts [3]uint64

	// Deltas holds per-vertex triangle counts Δ(v) (global indexing) when
	// Config.LCC is set.
	Deltas []uint64
	// LCC holds 2Δ(v)/(d(v)(d(v)−1)) when Config.LCC is set (0 for d < 2).
	LCC []float64

	// Triangles holds every triangle {u≺v≺w by ID} when Config.Collect is
	// set.
	Triangles [][3]graph.Vertex

	// PerPE holds each PE's total communication metrics; Agg the paper-style
	// aggregation (max messages, bottleneck volume).
	PerPE []comm.Metrics
	Agg   comm.Aggregate

	// Phases holds the maximum duration over PEs per phase; PhaseComm the
	// aggregated communication per phase.
	Phases    map[string]time.Duration
	PhaseComm map[string]comm.Aggregate

	// Partial is non-nil when the run degraded under Config.AllowPartial:
	// Count then merges completed PEs' totals with the mid-run snapshots of
	// the PEs that aborted, making it a lower bound on the fault-free count.
	Partial *PartialInfo

	Wall time.Duration
}

// PartialInfo annotates a degraded run: what killed it and how much of the
// cluster finished, so estimator callers can widen their error bounds.
type PartialInfo struct {
	// Err is the abort the run survived — a *dist.RunError whose Unwrap
	// chain reaches the typed comm/transport failure.
	Err error
	// Completed counts PEs whose bodies ran to completion; Count includes
	// their full totals plus only phase-boundary snapshots from the rest.
	Completed int
	// P is the cluster size Completed is out of.
	P int
}

// Fraction is the share of PEs that ran to completion — the crudest usable
// completeness estimate for widening an estimator's error bound.
func (p *PartialInfo) Fraction() float64 {
	if p.P <= 0 {
		return 0
	}
	return float64(p.Completed) / float64(p.P)
}

// peOutcome is what each PE's body produces for the driver to merge.
type peOutcome struct {
	count      uint64
	typeCounts [3]uint64
	deltas     map[graph.Vertex]uint64 // global ID -> Δ contribution (local rows only after postprocess)
	triangles  [][3]graph.Vertex
	phases     map[string]time.Duration
	phaseComm  map[string]comm.Metrics

	// finished marks a body that ran to completion (countState.finish);
	// partialCount is the last coherent count snapshot a body published at a
	// phase boundary before aborting. The driver reads both only after
	// dist.Run has joined every PE goroutine, so plain fields suffice.
	finished     bool
	partialCount uint64
}

func newPEOutcome() *peOutcome {
	return &peOutcome{
		phases:    make(map[string]time.Duration),
		phaseComm: make(map[string]comm.Metrics),
	}
}

// stopwatch splits a PE's run into named phases, recording wall time and the
// communication delta per phase.
type stopwatch struct {
	c   *comm.Comm
	out *peOutcome
	cur string
	t0  time.Time
	m0  comm.Metrics
}

func newStopwatch(c *comm.Comm, out *peOutcome) *stopwatch {
	return &stopwatch{c: c, out: out}
}

// phase closes the current phase (if any) and starts the named one. A phase
// may be re-entered: durations and communication deltas accumulate, which is
// how the overlapped pipeline attributes interleaved local/global work by
// switching back and forth on the PE's main timeline. Two refinements keep
// the attribution honest:
//
//   - any sub-phase key "parent/sub" folds into its parent's totals, so the
//     Fig. 7 breakdown keeps its historical keys (preprocess, global) while
//     the sub-keys show where the time went;
//   - idle time recorded by the termination detector during the phase
//     (Metrics.IdleNs — waiting with no frame to process and no deque work
//     to steal) is split out into PhaseOverlapIdle instead of being
//     miscounted as local or global compute.
func (s *stopwatch) phase(name string) {
	now := time.Now()
	if s.cur != "" {
		d := now.Sub(s.t0)
		m := s.c.M.Sub(s.m0)
		if idle := time.Duration(m.IdleNs); idle > 0 && s.cur != PhaseOverlapIdle {
			if idle > d {
				idle = d // clock-resolution clamp
			}
			d -= idle
			s.out.phases[PhaseOverlapIdle] += idle
			s.out.phases[PhaseOverlap] += idle
		}
		s.out.phases[s.cur] += d
		acc := s.out.phaseComm[s.cur]
		acc.Add(m)
		s.out.phaseComm[s.cur] = acc
		if parent, _, isSub := strings.Cut(s.cur, "/"); isSub {
			s.out.phases[parent] += d
			accP := s.out.phaseComm[parent]
			accP.Add(m)
			s.out.phaseComm[parent] = accP
		}
	}
	s.cur = name
	s.t0 = now
	s.m0 = s.c.M
}

// stop closes the current phase.
func (s *stopwatch) stop() { s.phase("") }

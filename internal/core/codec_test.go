package core

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/gen"
	"repro/internal/testgraph"
)

func codecPolicies() []string {
	return []string{CodecAuto, CodecRaw, CodecVarint, CodecDeltaVarint}
}

// TestCodecPoliciesMatchSequential is the cross-validation matrix of the
// codec refactor: every algorithm on every fixture graph under every wire
// codec policy must reproduce the sequential count. Only the record
// marshalling boundary moves between policies, so any divergence is a codec
// bug by construction.
func TestCodecPoliciesMatchSequential(t *testing.T) {
	for _, fix := range testgraph.All {
		g, want := fix.Build(), fix.Triangles
		for _, policy := range codecPolicies() {
			for _, algo := range Algorithms() {
				for _, p := range []int{4, 7} {
					t.Run(fmt.Sprintf("%s/%s/%s/p=%d", policy, fix.Name, algo, p), func(t *testing.T) {
						res, err := Run(algo, g, Config{P: p, Codec: policy})
						if err != nil {
							t.Fatal(err)
						}
						if res.Count != want {
							t.Fatalf("%s on %s under %s with p=%d: count = %d, want %d",
								algo, fix.Name, policy, p, res.Count, want)
						}
					})
				}
			}
		}
	}
}

// TestCodecPolicyRejected: unknown policies fail fast, before any PE spawns.
func TestCodecPolicyRejected(t *testing.T) {
	g := gen.Complete(8)
	if _, err := Run(AlgoCetric, g, Config{P: 2, Codec: "gzip"}); err == nil {
		t.Fatal("expected error for unknown codec policy")
	}
	if _, err := RunApproxCetric(g, Config{P: 2, Codec: "gzip"}, AMQConfig{}); err == nil {
		t.Fatal("expected error for unknown codec policy in approx run")
	}
}

// TestDeltaVarintHalvesWireBytes is the headline acceptance bar: on the
// quick-start RGG2D instance, delta-varint encoding of the chNeigh
// neighborhood shipments must cut bytes-on-wire at least 2x against the raw
// wire format, while counting exactly the same triangles.
func TestDeltaVarintHalvesWireBytes(t *testing.T) {
	g := gen.RGG2D(1<<12, 16, 42) // the README quick-start instance
	want := SeqCount(g)
	encoded := make(map[string]int64)
	for _, policy := range []string{CodecRaw, CodecDeltaVarint} {
		res, err := Run(AlgoDiTric, g, Config{P: 8, Codec: policy})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("policy %s: count = %d, want %d", policy, res.Count, want)
		}
		var bytes int64
		for _, m := range res.PerPE {
			bytes += m.EncodedBytes
		}
		if bytes <= 0 {
			t.Fatalf("policy %s: no encoded bytes metered", policy)
		}
		encoded[policy] = bytes
		if agg := comm.AggregateOf(res.PerPE); agg.TotalEncodedBytes != bytes {
			t.Fatalf("policy %s: aggregate encoded bytes %d != summed %d", policy, agg.TotalEncodedBytes, bytes)
		}
	}
	ratio := float64(encoded[CodecRaw]) / float64(encoded[CodecDeltaVarint])
	if ratio < 2 {
		t.Fatalf("delta-varint reduced wire bytes only %.2fx over raw (raw=%d, delta=%d), want >= 2x",
			ratio, encoded[CodecRaw], encoded[CodecDeltaVarint])
	}
	t.Logf("RGG2D quick-start, DITRIC p=8: raw=%dB delta-varint=%dB (%.2fx)",
		encoded[CodecRaw], encoded[CodecDeltaVarint], ratio)
}

// TestWireAccountingInvariants: raw bytes are exactly 8x the word volume on
// every PE, the word-level metrics are codec-independent, and the raw policy
// never expands payload bytes on the wire.
func TestWireAccountingInvariants(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 5))
	var words []int64
	for _, policy := range codecPolicies() {
		res, err := Run(AlgoCetric, g, Config{P: 4, Codec: policy})
		if err != nil {
			t.Fatal(err)
		}
		var sentWords int64
		for rank, m := range res.PerPE {
			if m.RawBytes != 8*m.SentWords {
				t.Fatalf("policy %s rank %d: RawBytes %d != 8*SentWords %d", policy, rank, m.RawBytes, m.SentWords)
			}
			sentWords += m.SentWords
		}
		words = append(words, sentWords)
	}
	for i := 1; i < len(words); i++ {
		if words[i] != words[0] {
			t.Fatalf("SentWords must be codec-independent, got %v across policies", words)
		}
	}
}

// TestApproxCodecPolicies: the AMQ counters must not depend on the codec
// policy (Bloom words travel raw under auto, varint-wrapped when forced —
// either way they must survive the trip unchanged). The integer counters
// are exact; the float estimate is summed in message-arrival order, so it
// may differ by rounding between runs and only gets a tolerance.
func TestApproxCodecPolicies(t *testing.T) {
	g := gen.GNM(1<<10, 8<<10, 21)
	var first *ApproxResult
	for _, policy := range codecPolicies() {
		res, err := RunApproxCetric(g, Config{P: 4, Codec: policy},
			AMQConfig{BitsPerKey: 8, Truthful: true})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.Exact12 != first.Exact12 || res.Type3Raw != first.Type3Raw {
			t.Fatalf("policy %s changed the exact counters: %v/%v vs %v/%v", policy,
				res.Exact12, res.Type3Raw, first.Exact12, first.Type3Raw)
		}
		if diff := res.Estimate - first.Estimate; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("policy %s changed the estimate: %v vs %v", policy, res.Estimate, first.Estimate)
		}
	}
}

package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/costmodel"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// Overlapped phase pipeline (Config.Overlap). The barriered bodies run
// local → global strictly separated: every cut neighborhood stays buffered
// until the queue threshold overflows or the post-local Drain, and all
// receive-side intersection work serializes into the drain, so the PE with
// the heaviest incoming cut neighborhoods becomes the straggler the whole
// cluster waits for. The pipeline removes both serializations:
//
//   - the local phase flushes shipments eagerly as row chunks complete
//     (Queue.FlushIfOver at a watermark far below δ), so receivers see cut
//     neighborhoods while senders are still counting;
//   - received records park on a per-PE steal deque, and the same
//     chunk-stealing workers that process local rows drain it concurrently
//     — global-phase intersections start before the local phase finishes,
//     and a skew-loaded receive side is chewed through by every thread
//     plus the funnel instead of being serialized behind the local phase;
//   - the termination detector (Queue.DrainWith) steals deque batches
//     whenever it would otherwise idle-wait, and meters genuine idle time
//     into Metrics.IdleNs.
//
// Counts are exactly identical to the barriered path: every record is
// processed by the same recvNeigh/recvNeighEdge code against the same
// receiver structure, only earlier and on a different goroutine.

// overlapFlushWords is the eager flush watermark in words: low enough that
// shipments leave while the local phase still runs, high enough that frames
// stay worth their α cost. The aggregation threshold δ still bounds queue
// memory; this only moves flushes earlier.
const overlapFlushWords = 1 << 10

// overlapWatermark resolves the eager-flush watermark for aggregation
// threshold δ: min(profileWatermark, δ/2). The profile watermark is the
// configured costmodel profile's α/β break-even frame size
// (Profile.FlushWatermark) — frames below it cost more in startup latency
// than overlapping can hide, which is why the old fixed 1024-word constant
// lost to the barriered path on high-α (cloud/WAN) parameterizations: it
// sliced shipments into frames an order of magnitude below those profiles'
// break-even. With no profile configured the historical constant stands
// (it is within a factor of two of the supercomputer profile's break-even,
// the machine the paper measured on).
//
// The δ/2 clamp is load-bearing on both paths: DefaultThreshold floors δ
// at 1024 — exactly overlapFlushWords — so on tiny graphs (and explicit
// small -delta values) an unclamped watermark would sit at or above δ, and
// eager flushing would silently never fire before the overflow flush.
// Clamping to half of δ keeps the watermark strictly below the overflow
// boundary for every δ > 1.
func overlapWatermark(threshold int, profile string) int {
	wm := overlapFlushWords
	if profile != "" {
		if p, err := costmodel.ByName(profile); err == nil {
			wm = p.FlushWatermark()
		}
	}
	if half := threshold / 2; half < wm {
		wm = half
	}
	return max(wm, 1)
}

// dequeBatch is how many parked records a worker steals per deque lock
// acquisition.
const dequeBatch = 32

// dequeHighWater is the backpressure bound on decoded, arena-pinned
// records, enforced at the handler: past it a received record is
// intersected inline on the funnel instead of parked (the barriered
// single-threaded behavior), so the deque can never hold more than the
// high-water mark plus one frame's records — resident decoded memory stays
// O(dequeHighWater), not O(total incoming traffic), and the queue's
// linear-memory guarantee survives the overlap. The stage funnel
// additionally stops polling above the mark, preferring to leave frames
// codec-encoded in the transport and help drain. This is the overlap
// analogue of recvPool's bounded submit channel.
const dequeHighWater = 1 << 12

// recvRecord is one received global-phase record parked on the steal deque.
// list aliases a pinned decode arena; release gives it back after the
// record has been intersected.
type recvRecord struct {
	v, u    graph.Vertex // u is meaningful only for edge records
	list    []uint64
	release func()
	src     int  // sender rank (placement: skips its co-located stored hubs)
	edge    bool // chNeighEdge shipment (no-surrogate ablation)
}

// stealDeque is the per-PE queue of received records awaiting intersection,
// shared by the chunk-stealing workers, the funnel, and the termination
// detector's progress callback. It is a mutex-guarded growable ring: pushes
// come only from the funnel goroutine (inside handler dispatch), pops come
// from any worker in batches. Once the ring has grown to the peak backlog,
// steady-state push/pop allocates nothing (see
// BenchmarkStealDequeSteadyState and the CI allocation gate).
type stealDeque struct {
	mu       sync.Mutex
	nonEmpty sync.Cond
	buf      []recvRecord
	head     int
	n        int
	closed   bool
}

func newStealDeque() *stealDeque {
	dq := &stealDeque{}
	dq.nonEmpty.L = &dq.mu
	return dq
}

// push parks one record. Only the funnel goroutine pushes, from inside a
// queue handler; pushing after close is a bug in the drain ordering.
func (dq *stealDeque) push(r recvRecord) {
	dq.mu.Lock()
	if dq.closed {
		dq.mu.Unlock()
		panic("core: push on closed steal deque")
	}
	if dq.n == len(dq.buf) {
		dq.grow()
	}
	dq.buf[(dq.head+dq.n)%len(dq.buf)] = r
	dq.n++
	dq.mu.Unlock()
	dq.nonEmpty.Signal()
}

// grow doubles the ring (called with mu held).
func (dq *stealDeque) grow() {
	next := make([]recvRecord, max(64, 2*len(dq.buf)))
	for i := 0; i < dq.n; i++ {
		next[i] = dq.buf[(dq.head+i)%len(dq.buf)]
	}
	dq.buf = next
	dq.head = 0
}

// popBatch steals up to len(dst) records from the front. With wait set it
// blocks until records arrive or the deque is closed; either way a return
// of 0 with wait set means closed-and-empty, and 0 without wait just means
// empty right now. Popped ring slots are cleared so arenas don't stay
// pinned by stale references.
func (dq *stealDeque) popBatch(dst []recvRecord, wait bool) int {
	dq.mu.Lock()
	for dq.n == 0 {
		if dq.closed || !wait {
			dq.mu.Unlock()
			return 0
		}
		dq.nonEmpty.Wait()
	}
	k := min(len(dst), dq.n)
	for i := 0; i < k; i++ {
		j := (dq.head + i) % len(dq.buf)
		dst[i] = dq.buf[j]
		dq.buf[j] = recvRecord{}
	}
	dq.head = (dq.head + k) % len(dq.buf)
	dq.n -= k
	dq.mu.Unlock()
	return k
}

// size returns the current backlog (for the funnel's backpressure check).
func (dq *stealDeque) size() int {
	dq.mu.Lock()
	n := dq.n
	dq.mu.Unlock()
	return n
}

// close marks the deque complete (no further pushes) and wakes blocked
// poppers. Called after DrainWith returns, when global quiescence
// guarantees no handler can fire again.
func (dq *stealDeque) close() {
	dq.mu.Lock()
	dq.closed = true
	dq.mu.Unlock()
	dq.nonEmpty.Broadcast()
}

// globalFn intersects one parked record into ws. DITRIC intersects against
// the full oriented A-lists; CETRIC against the contracted cut graph with
// type-3 classification.
type globalFn func(ws *countState, r recvRecord)

// drainBatch steals and processes up to one batch, releasing payload pins.
// Returns the number of records processed.
func drainBatch(dq *stealDeque, scratch []recvRecord, ws *countState, fn globalFn, wait bool) int {
	k := dq.popBatch(scratch, wait)
	for i := 0; i < k; i++ {
		fn(ws, scratch[i])
		if scratch[i].release != nil {
			scratch[i].release()
		}
		scratch[i] = recvRecord{}
	}
	return k
}

// installHandlers installs the neighborhood handlers of the overlapped
// pipeline: records are parked on the deque with their decode arena pinned
// instead of being intersected inside the handler, so the funnel returns to
// polling immediately and any worker can pick the record up. Past the
// high-water mark the handler intersects inline instead (handlers only fire
// inside this pipeline's own polls, which every algorithm issues strictly
// after its receiver structure is ready, so inline processing is always
// legal), bounding the parked backlog.
func (op *overlapPipeline) installHandlers() {
	pe := op.pe
	park := func(r recvRecord) {
		if op.dq.size() >= dequeHighWater {
			op.fn(op.state, r)
			return
		}
		r.release = pe.Q.PinPayload()
		op.dq.push(r)
	}
	pe.Q.Handle(chNeigh, func(src int, words []uint64) {
		park(recvRecord{v: words[0], list: words[1:], src: src})
	})
	pe.Q.Handle(chNeighEdge, func(src int, words []uint64) {
		park(recvRecord{v: words[0], u: words[1], list: words[2:], src: src, edge: true})
	})
}

// overlapPipeline coordinates one PE's overlapped counting phases: one or
// more emission stages (chunk-stolen compute that may ship records) followed
// by finish (drain to global quiescence). With Threads > 1 it owns the
// worker pool and the funnel; with Threads == 1 everything interleaves on
// the PE's single goroutine, which keeps the attribution exact.
type overlapPipeline struct {
	pe      *dist.PE
	sw      *stopwatch
	state   *countState // funnel/main-goroutine state
	dq      *stealDeque
	fn      globalFn
	threads int

	// flushWords is the eager-flush watermark: overlapFlushWords clamped
	// below the queue's δ (overlapWatermark), resolved once per run — except
	// under -profile=measured, where maybeRecalibrate re-fits it from the
	// live α/β estimate as samples accumulate.
	flushWords int
	// measured marks a -profile=measured run; recalTick spaces the re-fits.
	measured bool
	recalTick int

	workers   []*countState  // private per-worker states (threads > 1)
	scratches [][]recvRecord // per-worker steal scratch
	fscratch  []recvRecord   // funnel/main steal scratch

	overlapNs atomic.Int64 // receive work done during emission stages (pre-drain)
}

func newOverlapPipeline(pe *dist.PE, sw *stopwatch, lg *graph.LocalGraph, cfg Config,
	state *countState, fn globalFn) *overlapPipeline {
	op := &overlapPipeline{
		pe: pe, sw: sw, state: state, dq: newStealDeque(), fn: fn,
		threads:    cfg.Threads,
		flushWords: overlapWatermark(pe.Q.Threshold(), cfg.Profile),
		measured:   cfg.Profile == costmodel.MeasuredName,
		fscratch:   make([]recvRecord, dequeBatch),
	}
	if cfg.Threads > 1 {
		op.workers = make([]*countState, cfg.Threads)
		op.scratches = make([][]recvRecord, cfg.Threads)
		for t := 0; t < cfg.Threads; t++ {
			op.workers[t] = newCountState(lg, cfg)
			op.scratches[t] = make([]recvRecord, dequeBatch)
		}
	}
	return op
}

// maybeRecalibrate re-fits the eager-flush watermark from the live α/β
// estimate under -profile=measured. The static profile tables guess the
// break-even frame size; the measured profile recovers it from this run's
// own frame-latency samples (costmodel.Calibrate over pe.C.M), so the
// watermark tracks the transport actually underneath. Called only from the
// goroutine that owns flushWords — stageSeq's single timeline or the
// stagePar funnel, which are also the only writers of pe.C.M's latency
// sums — every 64 flush checks, with the same δ/2 clamp as
// overlapWatermark.
func (op *overlapPipeline) maybeRecalibrate() {
	if !op.measured {
		return
	}
	op.recalTick++
	if op.recalTick&63 != 0 {
		return
	}
	if p, ok := costmodel.Calibrate(op.pe.C.M); ok {
		wm := p.FlushWatermark()
		if half := op.pe.Q.Threshold() / 2; half < wm {
			wm = half
		}
		op.flushWords = max(wm, 1)
	}
}

// stage runs one emission stage over rows [0, rows) under the named
// stopwatch phase. work processes one chunk into ws, shipping records
// either directly (sends == nil, single-threaded) or through the funnel.
// canSteal gates the whole receive side: a stage that cannot intersect yet
// (CETRIC's local stage runs before the contracted cut graph exists) does
// not poll either — incoming frames stay codec-encoded in the transport,
// exactly where the barriered path leaves them, so deferring costs no
// decoded-arena memory and the queue's O(δ) profile is untouched.
func (op *overlapPipeline) stage(phase string, rows int, canSteal bool,
	work func(ws *countState, lo, hi int, sends chan<- hybridSend)) {
	op.sw.phase(phase)
	if op.threads <= 1 {
		op.stageSeq(phase, rows, canSteal, work)
		return
	}
	op.stagePar(rows, canSteal, work)
}

// stageSeq interleaves compute, eager flushing, ingestion, and deque
// draining on the PE's only goroutine. The stopwatch switches between the
// emission phase and global/recv at chunk boundaries, so the per-phase walls
// are exact even though the work is interleaved.
func (op *overlapPipeline) stageSeq(phase string, rows int, canSteal bool,
	work func(ws *countState, lo, hi int, sends chan<- hybridSend)) {
	pe := op.pe
	for lo := 0; lo < rows; lo += hybridChunk {
		hi := min(lo+hybridChunk, rows)
		work(op.state, lo, hi, nil)
		if !canSteal {
			continue
		}
		pe.Q.FlushIfOver(op.flushWords)
		op.maybeRecalibrate()
		op.sw.phase(PhaseGlobalRecv)
		t0 := time.Now()
		did := pe.Q.Poll()
		for drainBatch(op.dq, op.fscratch, op.state, op.fn, false) > 0 {
			did = true
		}
		if did {
			op.overlapNs.Add(time.Since(t0).Nanoseconds())
		}
		op.sw.phase(phase)
	}
}

// stagePar fans the chunks out to the worker pool. Workers ship through the
// sends channel and opportunistically steal deque batches between chunks;
// the funnel forwards shipments, flushes eagerly, polls the network (which
// parks records on the deque), and steals itself when it would otherwise
// wait. The stage ends when every chunk is processed and every shipment has
// been handed to the queue — residual deque work is finish's job. With
// canSteal unset the funnel does not poll at all: it blocks on the workers'
// completion while incoming frames wait, still encoded, in the transport.
//
// Phase attribution is coarse here by design: receive work runs
// concurrently with emission across the pool, so it cannot be subtracted
// from the emission wall — the whole stage stays under the emission phase
// and the receive CPU time is surfaced as Metrics.OverlapNs instead
// (stageSeq, with one timeline, attributes exactly).
func (op *overlapPipeline) stagePar(rows int, canSteal bool,
	work func(ws *countState, lo, hi int, sends chan<- hybridSend)) {
	pe := op.pe
	var next atomic.Int64
	sends := make(chan hybridSend, 4*op.threads)
	var wg sync.WaitGroup
	for t := 0; t < op.threads; t++ {
		wg.Add(1)
		go func(ws *countState, scratch []recvRecord) {
			defer wg.Done()
			for {
				lo := int(next.Add(hybridChunk)) - hybridChunk
				if lo >= rows {
					return
				}
				hi := min(lo+hybridChunk, rows)
				work(ws, lo, hi, sends)
				if !canSteal {
					continue
				}
				// Between chunks, chew a bounded amount of parked global
				// work — bounded so local emission keeps flowing and the
				// deque never starves the senders.
				t0 := time.Now()
				stolen := 0
				for stolen < 4 && drainBatch(op.dq, scratch, ws, op.fn, false) > 0 {
					stolen++
				}
				if stolen > 0 {
					op.overlapNs.Add(time.Since(t0).Nanoseconds())
				}
			}
		}(op.workers[t], op.scratches[t])
	}
	go func() {
		wg.Wait()
		close(sends)
	}()
	if !canSteal {
		// Receive side deferred: just forward shipments (there are none in
		// CETRIC's local stage, but the contract allows them) and park the
		// funnel until the workers finish.
		for s := range sends {
			pe.Q.Send(s.ch, s.dst, *s.payload)
			payloadPool.Put(s.payload)
			pe.Q.FlushIfOver(op.flushWords)
			op.maybeRecalibrate()
		}
		return
	}
	for {
		select {
		case s, ok := <-sends:
			if !ok {
				return
			}
			pe.Q.Send(s.ch, s.dst, *s.payload)
			payloadPool.Put(s.payload)
			pe.Q.FlushIfOver(op.flushWords)
			op.maybeRecalibrate()
		default:
			// No shipment pending: ingest incoming frames (handlers park
			// records on the deque) unless the decoded backlog is past the
			// high-water mark — then leave frames encoded in the transport
			// and help the workers drain instead.
			if op.dq.size() < dequeHighWater && pe.Q.Poll() {
				continue
			}
			t0 := time.Now()
			if drainBatch(op.dq, op.fscratch, op.state, op.fn, false) > 0 {
				op.overlapNs.Add(time.Since(t0).Nanoseconds())
				continue
			}
			runtime.Gosched()
		}
	}
}

// finish drives the pipeline to completion: the termination detector runs
// with a progress callback that steals deque batches (so waiting for
// stragglers turns into useful work), the deque is closed once global
// quiescence is certain, residual records are drained, and worker states
// merge into the PE's. Runs under global/recv; detector wait time is
// metered as IdleNs and split into overlap/idle by the stopwatch.
func (op *overlapPipeline) finish() {
	op.sw.phase(PhaseGlobalRecv)
	pe := op.pe
	var wg sync.WaitGroup
	for t := 0; t < len(op.workers); t++ {
		wg.Add(1)
		go func(ws *countState, scratch []recvRecord) {
			defer wg.Done()
			for drainBatch(op.dq, scratch, ws, op.fn, true) > 0 {
			}
		}(op.workers[t], op.scratches[t])
	}
	pe.Q.DrainWith(func() bool {
		// Drain the whole backlog, not one batch: the detector's polls can
		// decode frames faster than a lone batch per stall would consume
		// them (with workers running this just competes benignly).
		did := false
		for drainBatch(op.dq, op.fscratch, op.state, op.fn, false) > 0 {
			did = true
		}
		return did
	})
	op.dq.close()
	wg.Wait()
	for drainBatch(op.dq, op.fscratch, op.state, op.fn, false) > 0 {
	}
	for _, ws := range op.workers {
		op.state.merge(ws)
	}
	op.workers = op.workers[:0]
	pe.C.M.OverlapNs += op.overlapNs.Load()
}

// ditricOverlap is DITRIC's combined local/global phase under the
// overlapped pipeline: one emission stage over the local rows (stealing
// enabled from the start — the receiver structure is the already-built
// oriented graph), then finish.
func ditricOverlap(pe *dist.PE, pt *part.Partition, lg *graph.LocalGraph, ori *graph.LocalOriented,
	state *countState, cfg Config, sw *stopwatch, plc *placeRun) {
	fn := func(ws *countState, r recvRecord) {
		if r.edge {
			ws.recvNeighEdge(r.v, r.u, r.list, ori)
			return
		}
		ws.recvNeighAt(r.src, r.v, r.list, ori, plc)
	}
	op := newOverlapPipeline(pe, sw, lg, cfg, state, fn)
	op.installHandlers()
	pe.Q.Handle(chDelta, state.handleDelta)
	if plc != nil {
		// Hub shipment: surrogate tables are complete cluster-wide before
		// any PE can emit counting records (the drain inside ship is
		// collective), so the placed receive path below never races it.
		pe.Q.Handle(chHubShip, plc.handleShip)
		sw.phase(PhasePlace)
		plc.ship(pe, ori)
	}
	pe.C.Barrier() // handlers are live on every PE before any eager flush
	op.stage(PhaseLocal, lg.NLocal(), true, func(ws *countState, lo, hi int, sends chan<- hybridSend) {
		ditricLocalRows(pe, pt, lg, ori, ws, lo, hi, sends, cfg.NoSurrogate, plc)
	})
	op.finish()
}

// cetricOverlap is CETRIC under the overlapped pipeline. The local stage is
// communication-free and defers the receive side entirely: other PEs reach
// their send sweeps while we count, but their cut neighborhoods cannot be
// intersected before our contraction, so they wait codec-encoded in the
// transport (the same place the barriered path leaves them) instead of
// being decoded onto the deque. The send sweep then runs as an overlapped
// stage — emission interleaved with ingestion and stealing — and finish
// drains the rest.
func cetricOverlap(pe *dist.PE, pt *part.Partition, lg *graph.LocalGraph, ori *graph.LocalOriented,
	state *countState, cfg Config, sw *stopwatch) {
	var cut *graph.LocalOriented // assigned after the local stage, before any steal
	var plc *placeRun            // assigned with cut, same ordering argument
	fn := func(ws *countState, r recvRecord) {
		if r.edge {
			ws.t3 += ws.recvNeighEdge(r.v, r.u, r.list, cut)
			return
		}
		ws.t3 += ws.recvNeighAt(r.src, r.v, r.list, cut, plc)
	}
	op := newOverlapPipeline(pe, sw, lg, cfg, state, fn)
	op.installHandlers()
	pe.Q.Handle(chDelta, state.handleDelta)
	pe.C.Barrier()
	op.stage(PhaseLocal, lg.Rows(), false, func(ws *countState, lo, hi int, _ chan<- hybridSend) {
		cetricLocalPhase(lg, ori, ws, lo, hi)
	})
	sw.phase(PhaseContraction)
	cut = ori.ContractPar(cfg.Threads)
	cut.BuildHubsPar(cfg.hubMinDegree(), cfg.Threads)
	// Placement over the *cut* graph: CETRIC's global phase ships and
	// intersects contracted A-lists, so the nomination weights and the
	// stored-hub tables must model exactly those.
	plc = computePlacement(pe, lg, cut, cfg)
	if plc != nil {
		pe.Q.Handle(chHubShip, plc.handleShip)
		sw.phase(PhasePlace)
		plc.ship(pe, cut)
	}
	op.stage(PhaseGlobal, lg.NLocal(), true, func(ws *countState, lo, hi int, sends chan<- hybridSend) {
		cetricGlobalRows(pe, pt, lg, cut, ws, lo, hi, sends, cfg.NoSurrogate, plc)
	})
	op.finish()
}

// cetricGlobalRows ships the contracted cut neighborhoods of local rows
// [lo,hi): (v, A(v)...) records with the surrogate dedup, or per-edge
// (v, u, A(v)...) records under the no-surrogate ablation. Shipments go
// through sends (funneled) or directly to the queue when sends is nil —
// the same contract as ditricLocalRows. With a placement overlay each cut
// edge resolves to its effective destination; a moved hub whose surrogate
// is this PE is intersected inline against the stored table (every u in a
// cut A-list is remote, so there is no local pass to double count).
func cetricGlobalRows(pe *dist.PE, pt *part.Partition, lg *graph.LocalGraph, cut *graph.LocalOriented,
	state *countState, lo, hi int, sends chan<- hybridSend, noSurrogate bool, plc *placeRun) {
	var hdr [2]uint64 // record header scratch
	sh := getShipper(pe, sends)
	defer sh.put()
	for r := lo; r < hi; r++ {
		v := lg.GID(int32(r))
		av := cut.Out(int32(r))
		if len(av) < 2 {
			continue
		}
		if plc != nil && !noSurrogate {
			sh.nextRow()
			for _, u := range av {
				j := plc.redirect(pt.Rank(u), u)
				if j < 0 {
					continue // dead endpoint: empty list can't complete a triangle
				}
				if !sh.firstVisit(j) {
					continue
				}
				if j == pe.Rank {
					state.t3 += state.surrogateScan(pe.Rank, v, av, plc)
					continue
				}
				hdr[0] = v
				sh.ship(chNeigh, j, hdr[:1], av)
			}
			continue
		}
		lastRank := -1
		for _, u := range av {
			if noSurrogate {
				hdr[0], hdr[1] = v, u
				sh.ship(chNeighEdge, pt.Rank(u), hdr[:2], av)
				continue
			}
			// Surrogate dedup: av is ID-sorted, ranks are contiguous.
			if j := pt.Rank(u); j != lastRank {
				hdr[0] = v
				sh.ship(chNeigh, j, hdr[:1], av)
				lastRank = j
			}
		}
	}
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/testgraph"
)

// testGraphs returns the shared fixture catalog: a diverse set of instances
// with precomputed exact triangle counts, spanning every structural regime
// the algorithms care about (see internal/testgraph).
func testGraphs() map[string]*graph.Graph {
	return testgraph.Map()
}

var testPEs = []int{1, 2, 3, 4, 7, 8}

func TestDistributedAlgorithmsMatchSequential(t *testing.T) {
	for _, fix := range testgraph.All {
		name, g, want := fix.Name, fix.Build(), fix.Triangles
		if got := SeqCount(g); got != want {
			t.Fatalf("SeqCount(%s) = %d, fixture says %d", name, got, want)
		}
		for _, algo := range Algorithms() {
			for _, p := range testPEs {
				t.Run(fmt.Sprintf("%s/%s/p=%d", algo, name, p), func(t *testing.T) {
					res, err := Run(algo, g, Config{P: p})
					if err != nil {
						t.Fatal(err)
					}
					if res.Count != want {
						t.Fatalf("%s on %s with p=%d: count = %d, want %d", algo, name, p, res.Count, want)
					}
				})
			}
		}
	}
}

func TestCetricTypeCountsSumToTotal(t *testing.T) {
	for name, g := range testGraphs() {
		want := SeqCount(g)
		for _, p := range []int{1, 3, 4, 8} {
			res, err := Run(AlgoCetric, g, Config{P: p})
			if err != nil {
				t.Fatal(err)
			}
			sum := res.TypeCounts[0] + res.TypeCounts[1] + res.TypeCounts[2]
			if sum != want {
				t.Errorf("%s p=%d: type counts %v sum to %d, want %d", name, p, res.TypeCounts, sum, want)
			}
			if p == 1 && (res.TypeCounts[1] != 0 || res.TypeCounts[2] != 0) {
				t.Errorf("%s p=1: expected only type-1 triangles, got %v", name, res.TypeCounts)
			}
		}
	}
}

func TestDistributedLCCMatchesSequential(t *testing.T) {
	for name, g := range testGraphs() {
		wantCount, wantDeltas := SeqDeltas(g)
		for _, algo := range []Algorithm{AlgoDiTric, AlgoDiTric2, AlgoCetric, AlgoCetric2} {
			for _, p := range []int{1, 3, 4, 8} {
				res, err := Run(algo, g, Config{P: p, LCC: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Count != wantCount {
					t.Fatalf("%s/%s p=%d: count %d want %d", algo, name, p, res.Count, wantCount)
				}
				for v, want := range wantDeltas {
					if res.Deltas[v] != want {
						t.Fatalf("%s/%s p=%d: Δ(%d) = %d, want %d", algo, name, p, v, res.Deltas[v], want)
					}
				}
			}
		}
	}
}

func TestDistributedEnumerationMatchesSequential(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(7, 3))
	want := make(map[[3]graph.Vertex]bool)
	SeqEnumerate(g, func(v, u, w graph.Vertex) { want[CanonTriangle(v, u, w)] = true })
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric, AlgoCetric2} {
		for _, p := range []int{2, 5} {
			res, err := Run(algo, g, Config{P: p, Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Triangles) != len(want) {
				t.Fatalf("%s p=%d: %d triangles collected, want %d", algo, p, len(res.Triangles), len(want))
			}
			seen := make(map[[3]graph.Vertex]bool)
			for _, tri := range res.Triangles {
				if seen[tri] {
					t.Fatalf("%s p=%d: duplicate triangle %v", algo, p, tri)
				}
				seen[tri] = true
				if !want[tri] {
					t.Fatalf("%s p=%d: spurious triangle %v", algo, p, tri)
				}
			}
		}
	}
}

func TestSparseDegreeExchange(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 5))
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		res, err := Run(algo, g, Config{P: 6, SparseDegreeExchange: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("%s with sparse degree exchange: %d, want %d", algo, res.Count, want)
		}
	}
}

func TestNonUniformPartitions(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 21))
	want := SeqCount(g)
	degrees := make([]int, g.NumVertices())
	for v := range degrees {
		degrees[v] = g.Degree(graph.Vertex(v))
	}
	for _, cost := range []part.CostFunc{part.CostDegree, part.CostDegreeSq, part.CostWedges} {
		pt := part.ByCost(degrees, 5, cost)
		for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric, AlgoHavoq, AlgoTriC} {
			res, err := Run(algo, g, Config{P: 5, Partition: pt})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("%s with cost partition: %d, want %d", algo, res.Count, want)
			}
		}
	}
}

func TestHybridThreadsMatchSequential(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 31))
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoDiTric2, AlgoCetric} {
		for _, threads := range []int{2, 4} {
			res, err := Run(algo, g, Config{P: 4, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want {
				t.Fatalf("%s threads=%d: %d, want %d", algo, threads, res.Count, want)
			}
		}
	}
}

func TestHybridLCC(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 37))
	_, wantDeltas := SeqDeltas(g)
	res, err := Run(AlgoCetric, g, Config{P: 3, Threads: 4, LCC: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range wantDeltas {
		if res.Deltas[v] != want {
			t.Fatalf("hybrid LCC: Δ(%d) = %d, want %d", v, res.Deltas[v], want)
		}
	}
}

func TestTinyThresholdStillCorrect(t *testing.T) {
	// Aggressive flushing (δ=1 word) must not change results, only costs.
	g := gen.GNM(150, 900, 77)
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoDiTric2, AlgoCetric2, AlgoHavoq} {
		res, err := Run(algo, g, Config{P: 7, Threshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("%s δ=1: %d, want %d", algo, res.Count, want)
		}
	}
}

func TestNoAggSendsMoreMessages(t *testing.T) {
	g := gen.GNM(300, 2400, 5)
	buffered, err := Run(AlgoDiTric, g, Config{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	unbuffered, err := Run(AlgoNoAgg, g, Config{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if unbuffered.Count != buffered.Count {
		t.Fatalf("count mismatch: %d vs %d", unbuffered.Count, buffered.Count)
	}
	if unbuffered.Agg.TotalFrames <= 2*buffered.Agg.TotalFrames {
		t.Errorf("expected unbuffered to send many more frames: %d vs %d",
			unbuffered.Agg.TotalFrames, buffered.Agg.TotalFrames)
	}
}

func TestIndirectionReducesPeers(t *testing.T) {
	// On GNM with p=16, every PE talks to every other PE directly; with the
	// grid it talks to O(√p) peers. Frame counts shift accordingly, and the
	// result must not change.
	g := gen.GNM(400, 6400, 9)
	want := SeqCount(g)
	direct, err := Run(AlgoDiTric, g, Config{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	indirect, err := Run(AlgoDiTric2, g, Config{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Count != want || indirect.Count != want {
		t.Fatalf("counts: direct %d, indirect %d, want %d", direct.Count, indirect.Count, want)
	}
	// Indirection roughly doubles total words (two hops per record).
	if indirect.Agg.TotalWords <= direct.Agg.TotalWords {
		t.Errorf("indirect routing should increase total transported words: %d vs %d",
			indirect.Agg.TotalWords, direct.Agg.TotalWords)
	}
	// On GNM every PE has traffic for every other PE, so direct routing uses
	// p-1 peers while the grid caps first-hop fan-out near 2√p.
	if direct.Agg.MaxPeers < 15 {
		t.Errorf("direct DITRIC should talk to all peers, got %d", direct.Agg.MaxPeers)
	}
	if indirect.Agg.MaxPeers > 10 {
		t.Errorf("grid routing should cap peers near 2√p = 8, got %d", indirect.Agg.MaxPeers)
	}
}

func TestNoSurrogateStillCorrectButRedundant(t *testing.T) {
	// Without Arifuzzaman's dedup each neighborhood ships once per cut edge
	// instead of once per destination PE: same count, more volume.
	g := gen.RMAT(gen.DefaultRMAT(9, 61))
	want := SeqCount(g)
	for _, algo := range []Algorithm{AlgoDiTric, AlgoCetric} {
		dedup, err := Run(algo, g, Config{P: 8})
		if err != nil {
			t.Fatal(err)
		}
		redundant, err := Run(algo, g, Config{P: 8, NoSurrogate: true})
		if err != nil {
			t.Fatal(err)
		}
		if dedup.Count != want || redundant.Count != want {
			t.Fatalf("%s: counts %d/%d, want %d", algo, dedup.Count, redundant.Count, want)
		}
		if redundant.Agg.TotalPayload <= dedup.Agg.TotalPayload {
			t.Errorf("%s: redundant sends should increase volume: %d vs %d",
				algo, redundant.Agg.TotalPayload, dedup.Agg.TotalPayload)
		}
	}
}

func TestNoSurrogateHybrid(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 67))
	want := SeqCount(g)
	res, err := Run(AlgoDiTric, g, Config{P: 4, Threads: 3, NoSurrogate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("hybrid no-surrogate: %d, want %d", res.Count, want)
	}
}

func TestNoSurrogateLCC(t *testing.T) {
	g := gen.GNM(300, 2400, 71)
	_, wantDeltas := SeqDeltas(g)
	res, err := Run(AlgoCetric, g, Config{P: 5, NoSurrogate: true, LCC: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range wantDeltas {
		if res.Deltas[v] != want {
			t.Fatalf("no-surrogate LCC: Δ(%d) = %d, want %d", v, res.Deltas[v], want)
		}
	}
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

// TestLemma1 verifies the paper's Lemma 1 directly: the triangles of the cut
// graph ∂G are exactly the type-3 triangles of G. We count ∂G's triangles
// with the (independently validated) sequential counter and compare against
// CETRIC's type-3 tally for the same partition.
func TestLemma1(t *testing.T) {
	for name, g := range testGraphs() {
		for _, p := range []int{2, 3, 5, 8} {
			t.Run(fmt.Sprintf("%s/p=%d", name, p), func(t *testing.T) {
				pt := part.Uniform(uint64(g.NumVertices()), p)
				cut := graph.CutGraph(g, pt)
				wantType3 := SeqCount(cut)
				res, err := Run(AlgoCetric, g, Config{P: p})
				if err != nil {
					t.Fatal(err)
				}
				if res.TypeCounts[2] != wantType3 {
					t.Fatalf("type-3 count %d, but ∂G has %d triangles", res.TypeCounts[2], wantType3)
				}
			})
		}
	}
}

// TestLemma1NonUniformPartition repeats the check for a skewed partition.
func TestLemma1NonUniformPartition(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 101))
	degrees := make([]int, g.NumVertices())
	for v := range degrees {
		degrees[v] = g.Degree(graph.Vertex(v))
	}
	pt := part.ByCost(degrees, 6, part.CostWedges)
	cut := graph.CutGraph(g, pt)
	wantType3 := SeqCount(cut)
	res, err := Run(AlgoCetric, g, Config{P: 6, Partition: pt})
	if err != nil {
		t.Fatal(err)
	}
	if res.TypeCounts[2] != wantType3 {
		t.Fatalf("type-3 %d, ∂G triangles %d", res.TypeCounts[2], wantType3)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := gen.Complete(10)
	sub, remap := graph.InducedSubgraph(g, []graph.Vertex{2, 5, 7, 9})
	if sub.NumVertices() != 4 || sub.NumEdges() != 6 {
		t.Fatalf("induced K4 shape %d/%d", sub.NumVertices(), sub.NumEdges())
	}
	if SeqCount(sub) != 4 {
		t.Fatalf("induced K4 should have 4 triangles")
	}
	if remap[2] == -1 || remap[0] != -1 {
		t.Fatal("remap wrong")
	}
}

func TestCutGraphSinglePEIsEmpty(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(7, 5))
	pt := part.Uniform(uint64(g.NumVertices()), 1)
	if cut := graph.CutGraph(g, pt); cut.NumEdges() != 0 {
		t.Fatal("p=1 cut graph must be empty")
	}
}

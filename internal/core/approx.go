package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/amq"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
)

// AMQ-approximate CETRIC (§IV-E): type-1 and type-2 triangles are counted
// exactly by the local phase; for type-3 triangles, instead of shipping the
// contracted neighborhood A(v), the PE ships an approximate membership query
// structure A'(v) (a Bloom filter). The receiver approximates the set
// intersection A(v) ∩ A(u) by querying every member of A(u) against A'(v).
// False positives only ever overestimate; subtracting their expectation
// yields the paper's truthful estimator.
//
// With Config.LCC set, per-vertex triangle counts are estimated as well:
// exact Δ contributions from the local phase plus corrected estimates from
// the approximate global phase — the use case the paper singles out, since
// the classic sampling baselines (DOULION, colorful) cannot estimate local
// clustering coefficients.

// AMQConfig parameterizes the approximate global phase.
type AMQConfig struct {
	BitsPerKey float64 // Bloom filter size per inserted neighbor (e.g. 8)
	Blocked    bool    // use the cache-efficient blocked filter [42]
	Truthful   bool    // subtract the expected false positives
}

// ApproxResult reports an approximate run.
type ApproxResult struct {
	Exact12       uint64  // type-1 + type-2, exact
	Type3Raw      uint64  // raw positive queries (overestimate)
	Type3Estimate float64 // corrected type-3 estimate (== raw when !Truthful)
	Estimate      float64 // Exact12 + Type3Estimate

	// DeltaEstimates and LCCEstimates are filled when Config.LCC is set:
	// per-vertex triangle-count estimates and the local clustering
	// coefficients derived from them.
	DeltaEstimates []float64
	LCCEstimates   []float64

	PerPE []comm.Metrics
	Agg   comm.Aggregate
	Wall  time.Duration
}

type approxOutcome struct {
	exact12 uint64
	raw     uint64
	est     float64
	deltas  map[graph.Vertex]float64
}

// RunApproxCetric runs the AMQ variant of CETRIC.
func RunApproxCetric(g *graph.Graph, cfg Config, acfg AMQConfig) (*ApproxResult, error) {
	cfg = cfg.withDefaults()
	if cfg.P <= 0 {
		return nil, fmt.Errorf("core: config needs P > 0")
	}
	if acfg.BitsPerKey <= 0 {
		acfg.BitsPerKey = 8
	}
	pt := cfg.Partition
	if pt == nil {
		pt = part.Uniform(uint64(g.NumVertices()), cfg.P)
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold(g.NumEdges(), cfg.P)
	}
	if _, err := channelCodecs(cfg.Codec); err != nil {
		return nil, err
	}
	perEdges := graph.ScatterEdgesPar(pt, g.Edges(), cfg.Threads)

	outcomes := make([]*approxOutcome, cfg.P)
	start := time.Now()
	metrics, err := dist.Run(dist.Config{
		P: cfg.P, Threshold: threshold, Indirect: cfg.Indirect, Network: cfg.Network,
	}, func(pe *dist.PE) error {
		if err := applyCodecs(pe.Q, cfg.Codec); err != nil {
			return err
		}
		out := &approxOutcome{}
		outcomes[pe.Rank] = out
		return approxCetricBody(pe, pt, perEdges[pe.Rank], cfg, acfg, out)
	})
	if err != nil {
		return nil, err
	}
	res := &ApproxResult{PerPE: metrics, Agg: comm.AggregateOf(metrics), Wall: time.Since(start)}
	for _, out := range outcomes {
		res.Exact12 += out.exact12
		res.Type3Raw += out.raw
		res.Type3Estimate += out.est
	}
	res.Estimate = float64(res.Exact12) + res.Type3Estimate
	if cfg.LCC {
		res.DeltaEstimates = make([]float64, g.NumVertices())
		for _, out := range outcomes {
			for gid, d := range out.deltas {
				res.DeltaEstimates[gid] = d
			}
		}
		res.LCCEstimates = make([]float64, g.NumVertices())
		for v := range res.LCCEstimates {
			d := g.Degree(graph.Vertex(v))
			if d >= 2 {
				res.LCCEstimates[v] = 2 * res.DeltaEstimates[v] / (float64(d) * float64(d-1))
			}
		}
	}
	return res, nil
}

func approxCetricBody(pe *dist.PE, pt *part.Partition, edges []graph.Edge,
	cfg Config, acfg AMQConfig, out *approxOutcome) error {

	lg := graph.BuildLocalPar(pt, pe.Rank, edges, cfg.Threads)
	exchangeGhostDegrees(pe, lg, cfg.SparseDegreeExchange, cfg.Threads)
	ori := graph.OrientLocalPar(lg, cfg.Threads)
	state := newCountState(lg, cfg)

	// Float Δ estimates per row (exact local contributions are merged in at
	// the end from state.deltaRows).
	var deltaF []float64
	if cfg.LCC {
		deltaF = make([]float64, lg.Rows())
	}

	var cut *graph.LocalOriented
	pe.Q.Handle(chAMQ, func(src int, words []uint64) {
		v := words[0]
		var filter amq.Filter
		if acfg.Blocked {
			filter = amq.BlockedFromWords(words[2:])
		} else {
			filter = amq.BloomFromWords(words[2:])
		}
		// The load-based rate is far more accurate than the asymptotic
		// formula on the small filters real neighborhoods produce, which
		// matters because the truthful correction is only as good as the
		// rate estimate. words[1] still carries |A(v)| for diagnostics.
		fpr := filter.LoadFPR()
		row, ok := lg.GhostRow(v)
		if !ok {
			return // v has no local neighbors here; nothing to check
		}
		// A(v) ∩ V_i is exactly the expanded ghost row's oriented list.
		for _, u := range ori.Out(row) {
			au := cut.Out(lg.Row(u))
			if len(au) == 0 {
				continue
			}
			pos := 0
			var posRows []int32
			for _, w := range au {
				if filter.MayContain(w) {
					pos++
					if cfg.LCC {
						posRows = append(posRows, lg.Row(w))
					}
				}
			}
			out.raw += uint64(pos)
			pairEst := float64(pos)
			if acfg.Truthful && fpr < 1 {
				pairEst = (float64(pos) - float64(len(au))*fpr) / (1 - fpr)
			}
			out.est += pairEst
			if cfg.LCC {
				// Attribute the pair estimate to the wedge endpoints and
				// spread it over the positive closing vertices.
				deltaF[row] += pairEst
				deltaF[lg.Row(u)] += pairEst
				if pos > 0 {
					share := pairEst / float64(pos)
					for _, wr := range posRows {
						deltaF[wr] += share
					}
				}
			}
		}
	})
	if cfg.LCC {
		pe.Q.Handle(chDeltaF, func(_ int, words []uint64) {
			for i := 0; i+1 < len(words); i += 2 {
				deltaF[lg.Row(words[i])] += math.Float64frombits(words[i+1])
			}
		})
	}
	pe.C.Barrier()

	// Local phase: exact type-1/2 counting (with exact Δ when LCC is on).
	cetricLocalPhase(lg, ori, state, 0, lg.Rows())
	out.exact12 = state.count

	// Contraction + approximate global phase.
	cut = ori.ContractPar(cfg.Threads)
	for r := 0; r < lg.NLocal(); r++ {
		v := lg.GID(int32(r))
		av := cut.Out(int32(r))
		if len(av) < 2 {
			continue
		}
		var filter amq.Filter
		if acfg.Blocked {
			filter = amq.NewBlocked(len(av), acfg.BitsPerKey)
		} else {
			filter = amq.NewBloom(len(av), acfg.BitsPerKey)
		}
		for _, u := range av {
			filter.Insert(u)
		}
		words := filter.Words()
		payload := make([]uint64, 0, 2+len(words))
		payload = append(payload, v, uint64(len(av)))
		payload = append(payload, words...)
		lastRank := -1
		for _, u := range av {
			if j := pt.Rank(u); j != lastRank {
				pe.Q.Send(chAMQ, j, payload)
				lastRank = j
			}
		}
	}
	pe.Q.Drain()

	if cfg.LCC {
		// Merge the exact local-phase Δ and ship ghost estimates home.
		for r := 0; r < lg.Rows(); r++ {
			deltaF[r] += float64(state.deltaRows[r])
		}
		batch := make(map[int][]uint64)
		for i, gid := range lg.Ghosts() {
			row := lg.NLocal() + i
			if d := deltaF[row]; d != 0 {
				dst := lg.Part.Rank(gid)
				batch[dst] = append(batch[dst], gid, math.Float64bits(d))
			}
		}
		for dst, words := range batch {
			pe.Q.Send(chDeltaF, dst, words)
		}
		pe.Q.Drain()
		out.deltas = make(map[graph.Vertex]float64, lg.NLocal())
		for r := 0; r < lg.NLocal(); r++ {
			out.deltas[lg.GID(int32(r))] = deltaF[r]
		}
	}
	return nil
}

// ExpectedAMQWords estimates the shipped words per neighborhood of size n at
// the given bits per key (filter payload + 2 header words), for volume
// accounting in benchmarks.
func ExpectedAMQWords(n int, bitsPerKey float64) int {
	return 2 + 2 + int(math.Ceil(float64(n)*bitsPerKey/64))
}

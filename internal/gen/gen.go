package gen

import (
	"fmt"

	"repro/internal/graph"
)

// ByFamily builds a synthetic graph from one of the paper's weak-scaling
// families by name: "gnm", "rmat", "rgg2d", "rhg". n is the number of
// vertices; edgeFactor the target m/n ratio (the paper uses 16).
func ByFamily(family string, n, edgeFactor int, seed uint64) (*graph.Graph, error) {
	switch family {
	case "gnm":
		return GNM(n, edgeFactor*n, seed), nil
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		cfg := DefaultRMAT(scale, seed)
		cfg.EdgeFactor = edgeFactor
		return RMAT(cfg), nil
	case "rgg2d":
		return RGG2D(n, edgeFactor, seed), nil
	case "rhg":
		return RHG(RHGConfig{N: n, AvgDegree: 2 * float64(edgeFactor), Gamma: 2.8, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("gen: unknown family %q (want gnm|rmat|rgg2d|rhg)", family)
	}
}

// Families lists the weak-scaling generator families in the order of Fig. 5.
func Families() []string { return []string{"rgg2d", "rhg", "gnm", "rmat"} }

package gen

import "testing"

func BenchmarkGNM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GNM(1<<12, 16<<12, uint64(i))
	}
}

func BenchmarkRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(DefaultRMAT(12, uint64(i)))
	}
}

func BenchmarkRGG2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RGG2D(1<<12, 16, uint64(i))
	}
}

func BenchmarkRHG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RHG(RHGConfig{N: 1 << 12, AvgDegree: 32, Gamma: 2.8, Seed: uint64(i)})
	}
}

func BenchmarkWebGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WebGraph(WebConfig{N: 1 << 12, HostSize: 32, IntraP: 0.4, LongFactor: 3, Seed: uint64(i)})
	}
}

func BenchmarkSplitMix64(b *testing.B) {
	rng := NewRNG(1)
	var x uint64
	for i := 0; i < b.N; i++ {
		x += rng.Next()
	}
	_ = x
}

package gen

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// RHGConfig parameterizes the random hyperbolic graph model (Krioukov et
// al.), KAGEN's RHG: n points on a hyperbolic disk of radius R, radial
// density α·sinh(αr)/(cosh(αR)−1) with α = (γ−1)/2, an edge between points
// at hyperbolic distance ≤ R. The result has a power-law degree distribution
// with exponent γ and high clustering.
type RHGConfig struct {
	N         int
	AvgDegree float64 // target average degree (paper: 32, i.e. 16·n edges)
	Gamma     float64 // power-law exponent (paper: 2.8)
	Seed      uint64
}

// RHG generates a random hyperbolic graph. Neighbor search uses radial bands
// with per-band angular windows, the standard technique of fast hyperbolic
// generators, so it runs in roughly O(n log n + m).
//
// Vertex IDs are assigned in angular order, so a contiguous 1D partition
// corresponds to a disk sector: cuts are small and CETRIC-friendly, while the
// power-law hubs still create skew — the combination the paper's RHG
// experiments probe.
func RHG(cfg RHGConfig) *graph.Graph {
	n := cfg.N
	if n == 0 {
		return graph.FromEdges(0, nil)
	}
	alpha := (cfg.Gamma - 1) / 2
	// Average degree ≈ (2/π)·ξ²·n·e^{−R/2} with ξ = α/(α−1/2) for α > 1/2
	// (Krioukov et al.). Solve for R given the target degree.
	xi := alpha / (alpha - 0.5)
	nu := cfg.AvgDegree * math.Pi / (2 * xi * xi)
	R := 2 * math.Log(float64(n)/nu)
	if R <= 0 {
		R = 1
	}

	// Sample polar coordinates deterministically per vertex.
	theta := make([]float64, n)
	rad := make([]float64, n)
	coshR := math.Cosh(R)
	for i := 0; i < n; i++ {
		theta[i] = 2 * math.Pi * HashFloat64(cfg.Seed, uint64(2*i))
		// Inverse CDF of the radial density: F(r) = (cosh(αr)−1)/(cosh(αR)−1).
		u := HashFloat64(cfg.Seed, uint64(2*i+1))
		rad[i] = math.Acosh(1+u*(math.Cosh(alpha*R)-1)) / alpha
	}
	// Relabel by angle for ID locality.
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return theta[ids[a]] < theta[ids[b]] })
	th := make([]float64, n)
	rd := make([]float64, n)
	for newID, oldID := range ids {
		th[newID] = theta[oldID]
		rd[newID] = rad[oldID]
	}

	// Radial bands: band b spans radius [b·R/B, (b+1)·R/B). Points are already
	// sorted by angle, so each band keeps a sorted angle index.
	const B = 16
	bandOf := func(r float64) int {
		b := int(r / (R / B))
		if b >= B {
			b = B - 1
		}
		return b
	}
	bandIdx := make([][]int, B) // vertex indices per band, ascending angle
	for v := 0; v < n; v++ {
		b := bandOf(rd[v])
		bandIdx[b] = append(bandIdx[b], v)
	}

	coshRad := make([]float64, n)
	sinhRad := make([]float64, n)
	for v := 0; v < n; v++ {
		coshRad[v] = math.Cosh(rd[v])
		sinhRad[v] = math.Sinh(rd[v])
	}

	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for b := 0; b < B; b++ {
			members := bandIdx[b]
			if len(members) == 0 {
				continue
			}
			bandMin := float64(b) * R / B
			// Maximum angular separation at which a point at the band's inner
			// radius could still be within hyperbolic distance R of u.
			dTheta := maxAngle(coshRad[u], sinhRad[u], bandMin, coshR)
			if dTheta <= 0 {
				continue
			}
			if dTheta >= math.Pi {
				// Whole band is in range of the angular test; check all.
				for _, v := range members {
					if v > u && hypDistLE(coshRad[u], sinhRad[u], coshRad[v], sinhRad[v], th[u], th[v], coshR) {
						edges = append(edges, graph.Edge{U: uint64(u), V: uint64(v)})
					}
				}
				continue
			}
			lo, hi := th[u]-dTheta, th[u]+dTheta
			scan := func(a, b float64) {
				start := sort.Search(len(members), func(i int) bool { return th[members[i]] >= a })
				for i := start; i < len(members) && th[members[i]] <= b; i++ {
					v := members[i]
					if v > u && hypDistLE(coshRad[u], sinhRad[u], coshRad[v], sinhRad[v], th[u], th[v], coshR) {
						edges = append(edges, graph.Edge{U: uint64(u), V: uint64(v)})
					}
				}
			}
			// Handle wraparound of the angular window.
			switch {
			case lo < 0:
				scan(0, hi)
				scan(lo+2*math.Pi, 2*math.Pi)
			case hi > 2*math.Pi:
				scan(lo, 2*math.Pi)
				scan(0, hi-2*math.Pi)
			default:
				scan(lo, hi)
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// maxAngle returns the largest Δθ at which a point with radius bandMin can be
// within hyperbolic distance R (given as cosh R) of a point with the given
// cosh/sinh radius; returns π if every angle qualifies.
func maxAngle(coshRu, sinhRu, bandMin, coshR float64) float64 {
	coshB := math.Cosh(bandMin)
	sinhB := math.Sinh(bandMin)
	if sinhRu*sinhB == 0 {
		return math.Pi
	}
	c := (coshRu*coshB - coshR) / (sinhRu * sinhB)
	if c <= -1 {
		return math.Pi
	}
	if c >= 1 {
		return 0
	}
	return math.Acos(c)
}

// hypDistLE reports whether the hyperbolic distance between two points is at
// most R, using cosh d = cosh r1 cosh r2 − sinh r1 sinh r2 cos Δθ.
func hypDistLE(c1, s1, c2, s2, t1, t2, coshR float64) bool {
	dt := math.Abs(t1 - t2)
	if dt > math.Pi {
		dt = 2*math.Pi - dt
	}
	coshD := c1*c2 - s1*s2*math.Cos(dt)
	return coshD <= coshR
}

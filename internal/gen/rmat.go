package gen

import "repro/internal/graph"

// Graph 500 R-MAT probabilities (a,b,c,d), the defaults the paper uses.
const (
	RMATDefaultA = 0.57
	RMATDefaultB = 0.19
	RMATDefaultC = 0.19
	RMATDefaultD = 0.05
)

// RMATConfig parameterizes the recursive matrix model.
type RMATConfig struct {
	Scale      int     // n = 2^Scale vertices
	EdgeFactor int     // edges generated = EdgeFactor * n (before dedup)
	A, B, C, D float64 // quadrant probabilities, summing to 1
	Seed       uint64
	Scramble   bool // permute vertex IDs to break the generator's ID locality
}

// DefaultRMAT returns the Graph 500 configuration: 16 edges per vertex,
// standard probabilities, scrambled IDs.
func DefaultRMAT(scale int, seed uint64) RMATConfig {
	return RMATConfig{
		Scale: scale, EdgeFactor: 16,
		A: RMATDefaultA, B: RMATDefaultB, C: RMATDefaultC, D: RMATDefaultD,
		Seed: seed, Scramble: true,
	}
}

// RMAT generates an R-MAT graph: each edge recursively descends the
// adjacency-matrix quadrants with the configured probabilities. The result
// has a heavily skewed (power-law-like) degree distribution; duplicate edges
// and self-loops are removed, matching the paper's input cleaning.
func RMAT(cfg RMATConfig) *graph.Graph {
	n := 1 << cfg.Scale
	m := cfg.EdgeFactor * n
	rng := NewRNG(cfg.Seed)
	edges := make([]graph.Edge, 0, m)
	ab := cfg.A + cfg.B
	abc := cfg.A + cfg.B + cfg.C
	for i := 0; i < m; i++ {
		var u, v uint64
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// upper-left: no bits set
			case r < ab:
				v |= 1 << uint(bit)
			case r < abc:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u == v {
			continue
		}
		if cfg.Scramble {
			u = scramble(u, uint64(n), cfg.Seed)
			v = scramble(v, uint64(n), cfg.Seed)
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, edges)
}

// scramble applies a seeded pseudorandom permutation of [0,n) for n a power
// of two. Each round composes an affine map (bijective mod 2^k for odd
// multipliers) with an xorshift (bijective on k-bit words), so the whole map
// is a permutation.
func scramble(x, n, seed uint64) uint64 {
	mask := n - 1
	for round := uint64(0); round < 3; round++ {
		a := Hash64(seed, 2*round)%n | 1
		b := Hash64(seed, 2*round+1) & mask
		x = (a*x + b) & mask
		x ^= x >> 3
	}
	return x & mask
}

package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/part"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(1).Next() == NewRNG(2).Next() {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUint64nUniformish(t *testing.T) {
	rng := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[rng.Uint64n(n)]++
	}
	for b, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Fatalf("bucket %d count %d too far from %d", b, c, draws/n)
		}
	}
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("hash must be deterministic")
	}
	if Hash64(1, 2) == Hash64(1, 3) || Hash64(1, 2) == Hash64(2, 2) {
		t.Fatal("hash should separate inputs")
	}
}

func TestGNMShape(t *testing.T) {
	g := GNM(500, 2000, 3)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 2000 {
		t.Fatalf("m = %d, want exactly 2000 (sampling without replacement)", g.NumEdges())
	}
}

func TestGNMCapsAtCompleteGraph(t *testing.T) {
	g := GNM(5, 100, 1)
	if g.NumEdges() != 10 {
		t.Fatalf("m = %d, want 10 = C(5,2)", g.NumEdges())
	}
}

func TestGNMDeterminism(t *testing.T) {
	a, b := GNM(100, 400, 9), GNM(100, 400, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
	for v := 0; v < 100; v++ {
		na, nb := a.Neighbors(uint64(v)), b.Neighbors(uint64(v))
		if len(na) != len(nb) {
			t.Fatal("same seed, different neighborhoods")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("same seed, different neighborhoods")
			}
		}
	}
}

func TestGNPSmall(t *testing.T) {
	if g := GNP(30, 1.0, 5); g.NumEdges() != 30*29/2 {
		t.Fatalf("GNP p=1 should be complete, got m=%d", g.NumEdges())
	}
	if g := GNP(30, 0.0, 5); g.NumEdges() != 0 {
		t.Fatal("GNP p=0 should be empty")
	}
}

func TestRMATShape(t *testing.T) {
	cfg := DefaultRMAT(10, 7)
	g := RMAT(cfg)
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d, want 1024", g.NumVertices())
	}
	// Dedup/self-loop removal shrinks m, but it must stay in a sane band.
	if g.NumEdges() < 8*1024 || g.NumEdges() > 16*1024 {
		t.Fatalf("m = %d out of expected band", g.NumEdges())
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	g := RMAT(DefaultRMAT(12, 13))
	maxDeg := g.MaxDegree()
	avg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(maxDeg) < 8*avg {
		t.Fatalf("R-MAT should be skewed: max %d vs avg %.1f", maxDeg, avg)
	}
}

func TestScrambleIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		const n = 256
		seen := make([]bool, n)
		for x := uint64(0); x < n; x++ {
			y := scramble(x, n, seed)
			if y >= n || seen[y] {
				return false
			}
			seen[y] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRGG2DEdgeCount(t *testing.T) {
	g := RGG2D(4096, 16, 21)
	m := float64(g.NumEdges())
	want := 16.0 * 4096
	if m < want/2 || m > want*2 {
		t.Fatalf("RGG edges %v, want within 2x of %v", m, want)
	}
}

func TestRGG2DLocality(t *testing.T) {
	// With cell-order IDs, a contiguous partition must cut far fewer edges
	// than a random graph of the same size would (where cut fraction is
	// (p-1)/p).
	g := RGG2D(2048, 16, 33)
	pt := part.Uniform(uint64(g.NumVertices()), 8)
	cut := 0
	g.ForEachEdge(func(u, v graph.Vertex) {
		if pt.Rank(u) != pt.Rank(v) {
			cut++
		}
	})
	frac := float64(cut) / float64(g.NumEdges())
	if frac > 0.5 {
		t.Fatalf("RGG cut fraction %.2f too high; ID locality broken", frac)
	}
}

func TestRHGShape(t *testing.T) {
	g := RHG(RHGConfig{N: 2048, AvgDegree: 16, Gamma: 2.8, Seed: 5})
	if g.NumVertices() != 2048 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	avg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if avg < 4 || avg > 64 {
		t.Fatalf("RHG avg degree %.1f too far from target 16", avg)
	}
	// Power-law: the maximum degree should dwarf the average.
	if float64(g.MaxDegree()) < 4*avg {
		t.Fatalf("RHG not skewed: max %d avg %.1f", g.MaxDegree(), avg)
	}
}

func TestRHGMatchesBruteForce(t *testing.T) {
	// The band data structure must produce exactly the same edges as the
	// O(n²) distance check.
	cfg := RHGConfig{N: 300, AvgDegree: 10, Gamma: 2.8, Seed: 77}
	g := RHG(cfg)

	// Recompute points exactly as RHG does.
	alpha := (cfg.Gamma - 1) / 2
	xi := alpha / (alpha - 0.5)
	nu := cfg.AvgDegree * math.Pi / (2 * xi * xi)
	R := 2 * math.Log(float64(cfg.N)/nu)
	theta := make([]float64, cfg.N)
	rad := make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		theta[i] = 2 * math.Pi * HashFloat64(cfg.Seed, uint64(2*i))
		u := HashFloat64(cfg.Seed, uint64(2*i+1))
		rad[i] = math.Acosh(1+u*(math.Cosh(alpha*R)-1)) / alpha
	}
	// Sort by angle like the generator (stable order by (theta, index)).
	ids := make([]int, cfg.N)
	for i := range ids {
		ids[i] = i
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && theta[ids[j]] < theta[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	th := make([]float64, cfg.N)
	rd := make([]float64, cfg.N)
	for newID, oldID := range ids {
		th[newID] = theta[oldID]
		rd[newID] = rad[oldID]
	}
	want := 0
	coshR := math.Cosh(R)
	for u := 0; u < cfg.N; u++ {
		for v := u + 1; v < cfg.N; v++ {
			if hypDistLE(math.Cosh(rd[u]), math.Sinh(rd[u]), math.Cosh(rd[v]), math.Sinh(rd[v]), th[u], th[v], coshR) {
				want++
				if !g.HasEdge(uint64(u), uint64(v)) {
					t.Fatalf("missing edge (%d,%d)", u, v)
				}
			}
		}
	}
	if g.NumEdges() != want {
		t.Fatalf("m = %d, brute force says %d", g.NumEdges(), want)
	}
}

func TestWebGraphClustering(t *testing.T) {
	g := WebGraph(WebConfig{N: 512, HostSize: 16, IntraP: 0.5, LongFactor: 2, Seed: 3})
	if g.NumVertices() != 512 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Host cliques give high triangle density per edge; verify at least one
	// triangle per 2 edges on average (web-like, unlike GNM).
	stats := graph.ComputeStats(g)
	if stats.Wedges == 0 {
		t.Fatal("web graph has no wedges")
	}
}

func TestRoadNetworkProfile(t *testing.T) {
	g := RoadNetwork(32, 32, 0.05, 9)
	avg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if avg < 3 || avg > 5 {
		t.Fatalf("road avg degree %.2f out of band", avg)
	}
	if g.MaxDegree() > 8 {
		t.Fatalf("road max degree %d too high", g.MaxDegree())
	}
}

func TestInstanceCatalog(t *testing.T) {
	for _, name := range InstanceNames() {
		g, err := ByInstance(name, -4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("instance %s degenerate", name)
		}
	}
	if _, err := ByInstance("nope", 0, 1); err == nil {
		t.Fatal("want error for unknown instance")
	}
	if len(SortedInstanceNames()) != len(InstanceNames()) {
		t.Fatal("sorted name list length mismatch")
	}
}

func TestByFamily(t *testing.T) {
	for _, fam := range Families() {
		g, err := ByFamily(fam, 256, 8, 5)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() < 256 {
			t.Fatalf("%s: n = %d, want >= 256", fam, g.NumVertices())
		}
	}
	if _, err := ByFamily("nope", 10, 1, 1); err == nil {
		t.Fatal("want error for unknown family")
	}
}

func TestDeterministicGraphShapes(t *testing.T) {
	if g := Complete(8); g.NumEdges() != 28 {
		t.Fatalf("K8 m = %d", g.NumEdges())
	}
	if g := CompleteBipartite(3, 5); g.NumEdges() != 15 {
		t.Fatalf("K(3,5) m = %d", g.NumEdges())
	}
	if g := Cycle(10); g.NumEdges() != 10 {
		t.Fatalf("C10 m = %d", g.NumEdges())
	}
	if g := Path(10); g.NumEdges() != 9 {
		t.Fatalf("P10 m = %d", g.NumEdges())
	}
	if g := Star(6); g.NumEdges() != 6 {
		t.Fatalf("S6 m = %d", g.NumEdges())
	}
	if g := Wheel(6); g.NumEdges() != 12 {
		t.Fatalf("W6 m = %d", g.NumEdges())
	}
	if g := Friendship(4); g.NumVertices() != 9 || g.NumEdges() != 12 {
		t.Fatalf("F4 shape %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g := Grid2D(4, 3); g.NumEdges() != 17 {
		t.Fatalf("grid m = %d", g.NumEdges())
	}
	if g := Petersen(); g.NumVertices() != 10 || g.NumEdges() != 15 {
		t.Fatal("Petersen shape wrong")
	}
	if g := CliqueChain(3, 4); g.NumEdges() != 3*6+2 {
		t.Fatalf("clique chain m = %d", g.NumEdges())
	}
}

// Package gen provides deterministic, seedable graph generators covering the
// families the paper evaluates: Erdős–Rényi G(n,m), R-MAT with Graph 500
// probabilities, 2D random geometric graphs, and random hyperbolic graphs
// (KAGEN's models), plus deterministic graphs with closed-form triangle
// counts for testing and a catalog of scaled-down stand-ins for the paper's
// real-world instances.
package gen

import "math"

// SplitMix64 is a tiny, fast, well-distributed PRNG. It is the standard
// seeding generator of the xoshiro family and is fully deterministic given
// its seed, which keeps every experiment reproducible.
type SplitMix64 struct {
	state uint64
}

// NewRNG returns a SplitMix64 seeded with seed.
func NewRNG(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64 random bits.
func (r *SplitMix64) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0,1) with 53 bits of precision.
func (r *SplitMix64) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Uint64n returns a uniform integer in [0,n). n must be positive.
func (r *SplitMix64) Uint64n(n uint64) uint64 {
	// Lemire's nearly-divisionless method would be overkill here; simple
	// rejection keeps the distribution exactly uniform.
	mask := ^uint64(0)
	if n&(n-1) == 0 { // power of two
		return r.Next() & (n - 1)
	}
	limit := mask - mask%n
	for {
		v := r.Next()
		if v < limit {
			return v % n
		}
	}
}

// Exp returns an exponentially distributed float with rate 1.
func (r *SplitMix64) Exp() float64 {
	return -math.Log(1 - r.Float64())
}

// Hash64 is a stateless splitmix-style hash of (seed, i); generators use it
// to derive per-vertex or per-chunk randomness without shared state, which is
// what makes communication-free distributed generation possible.
func Hash64(seed, i uint64) uint64 {
	z := seed ^ (i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HashFloat64 maps Hash64 output to [0,1).
func HashFloat64(seed, i uint64) float64 {
	return float64(Hash64(seed, i)>>11) / (1 << 53)
}

package gen

import "repro/internal/graph"

// Deterministic graphs with closed-form triangle counts, used by the test
// suite to pin absolute results.

// Complete returns K_n, which has C(n,3) triangles.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: uint64(u), V: uint64(v)})
		}
	}
	return graph.FromEdges(n, edges)
}

// CompleteBipartite returns K_{a,b}, which is triangle-free.
func CompleteBipartite(a, b int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, graph.Edge{U: uint64(u), V: uint64(a + v)})
		}
	}
	return graph.FromEdges(a+b, edges)
}

// Cycle returns the cycle C_n (one triangle iff n == 3).
func Cycle(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		edges = append(edges, graph.Edge{U: uint64(u), V: uint64((u + 1) % n)})
	}
	return graph.FromEdges(n, edges)
}

// Path returns the path P_n, triangle-free.
func Path(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u+1 < n; u++ {
		edges = append(edges, graph.Edge{U: uint64(u), V: uint64(u + 1)})
	}
	return graph.FromEdges(n, edges)
}

// Star returns the star S_n (hub 0, n leaves), triangle-free.
func Star(n int) *graph.Graph {
	var edges []graph.Edge
	for v := 1; v <= n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: uint64(v)})
	}
	return graph.FromEdges(n+1, edges)
}

// Wheel returns the wheel W_n: hub 0 plus a rim cycle of n vertices. For
// n > 3 it has exactly n triangles; for n == 3 it is K_4 with 4 triangles.
func Wheel(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint64(1 + i)})
		edges = append(edges, graph.Edge{U: uint64(1 + i), V: uint64(1 + (i+1)%n)})
	}
	return graph.FromEdges(n+1, edges)
}

// Friendship returns the friendship (windmill) graph F_k: k triangles sharing
// one hub vertex — exactly k triangles, and the hub's LCC is 1/(2k−1).
func Friendship(k int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		a := uint64(1 + 2*i)
		b := uint64(2 + 2*i)
		edges = append(edges, graph.Edge{U: 0, V: a}, graph.Edge{U: 0, V: b}, graph.Edge{U: a, V: b})
	}
	return graph.FromEdges(2*k+1, edges)
}

// Grid2D returns a w×h grid graph (triangle-free).
func Grid2D(w, h int) *graph.Graph {
	id := func(x, y int) uint64 { return uint64(y*w + x) }
	var edges []graph.Edge
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y)})
			}
			if y+1 < h {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x, y+1)})
			}
		}
	}
	return graph.FromEdges(w*h, edges)
}

// TriangularGrid returns a w×h grid with one diagonal per cell, giving
// exactly 2·(w−1)·(h−1) triangles.
func TriangularGrid(w, h int) *graph.Graph {
	g := Grid2D(w, h)
	edges := g.Edges()
	id := func(x, y int) uint64 { return uint64(y*w + x) }
	for y := 0; y+1 < h; y++ {
		for x := 0; x+1 < w; x++ {
			edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y+1)})
		}
	}
	return graph.FromEdges(w*h, edges)
}

// Petersen returns the Petersen graph (girth 5, hence triangle-free).
func Petersen() *graph.Graph {
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}, // outer 5-cycle
		{U: 5, V: 7}, {U: 7, V: 9}, {U: 9, V: 6}, {U: 6, V: 8}, {U: 8, V: 5}, // inner pentagram
		{U: 0, V: 5}, {U: 1, V: 6}, {U: 2, V: 7}, {U: 3, V: 8}, {U: 4, V: 9}, // spokes
	}
	return graph.FromEdges(10, edges)
}

// CliqueChain returns k cliques of size s, consecutive cliques joined by a
// single bridge edge: exactly k·C(s,3) triangles and high locality.
func CliqueChain(k, s int) *graph.Graph {
	var edges []graph.Edge
	for c := 0; c < k; c++ {
		base := c * s
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				edges = append(edges, graph.Edge{U: uint64(base + u), V: uint64(base + v)})
			}
		}
		if c+1 < k {
			edges = append(edges, graph.Edge{U: uint64(base + s - 1), V: uint64(base + s)})
		}
	}
	return graph.FromEdges(k*s, edges)
}

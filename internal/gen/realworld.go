package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Stand-ins for the paper's real-world instances (Table I). The original
// graphs are up to 3.3 billion edges; a single-box reproduction cannot load
// them, so each instance is replaced by a deterministic generator from the
// same structural class at a reduced scale. What the evaluation actually
// exercises — degree skew, locality/cut structure, wedge-to-edge ratio — is
// preserved by the model choice; see DESIGN.md §1.
//
//	live-journal, orkut, twitter  -> R-MAT (skewed social networks)
//	friendster                    -> RHG (milder skew, community structure)
//	uk-2007-05, webbase-2001      -> clustered web model (host cliques + R-MAT long links)
//	usa, europe                   -> road model (grid + sparse diagonals)

// Instance describes one stand-in instance.
type Instance struct {
	Name  string
	Class string // social | web | road
	Notes string
	Build func(scaleShift int, seed uint64) *graph.Graph
}

// Instances is the catalog, in Table I order. scaleShift shrinks (negative)
// or grows (positive) the default size by powers of two.
var Instances = []Instance{
	{
		Name: "live-journal", Class: "social",
		Notes: "R-MAT scale 13, edge factor 9 (LJ avg degree ≈ 17)",
		Build: func(s int, seed uint64) *graph.Graph {
			cfg := DefaultRMAT(13+s, seed)
			cfg.EdgeFactor = 9
			return RMAT(cfg)
		},
	},
	{
		Name: "orkut", Class: "social",
		Notes: "R-MAT scale 12, edge factor 38 (orkut avg degree ≈ 76)",
		Build: func(s int, seed uint64) *graph.Graph {
			cfg := DefaultRMAT(12+s, seed)
			cfg.EdgeFactor = 38
			return RMAT(cfg)
		},
	},
	{
		Name: "twitter", Class: "social",
		Notes: "R-MAT scale 14, edge factor 28, stronger skew (a=0.65)",
		Build: func(s int, seed uint64) *graph.Graph {
			cfg := DefaultRMAT(14+s, seed)
			cfg.EdgeFactor = 28
			cfg.A, cfg.B, cfg.C, cfg.D = 0.65, 0.15, 0.15, 0.05
			return RMAT(cfg)
		},
	},
	{
		Name: "friendster", Class: "social",
		Notes: "RHG γ=2.8, avg degree 26 (friendster m/n ≈ 26.6)",
		Build: func(s int, seed uint64) *graph.Graph {
			return RHG(RHGConfig{N: 1 << (14 + s), AvgDegree: 26, Gamma: 2.8, Seed: seed})
		},
	},
	{
		Name: "uk-2007-05", Class: "web",
		Notes: "clustered web model: host near-cliques + R-MAT long links, high triangle density",
		Build: func(s int, seed uint64) *graph.Graph {
			return WebGraph(WebConfig{N: 1 << (14 + s), HostSize: 48, IntraP: 0.55, LongFactor: 4, Seed: seed})
		},
	},
	{
		Name: "webbase-2001", Class: "web",
		Notes: "clustered web model, sparser (webbase m/n ≈ 7.2)",
		Build: func(s int, seed uint64) *graph.Graph {
			return WebGraph(WebConfig{N: 1 << (14 + s), HostSize: 24, IntraP: 0.35, LongFactor: 2, Seed: seed})
		},
	},
	{
		Name: "usa", Class: "road",
		Notes: "road model: 2D grid + 5% diagonals (avg degree ≈ 2.4, few triangles)",
		Build: func(s int, seed uint64) *graph.Graph {
			side := 1 << (7 + (s+1)/2) // keep roughly square growth
			return RoadNetwork(side, side, 0.05, seed)
		},
	},
	{
		Name: "europe", Class: "road",
		Notes: "road model, slightly denser diagonals",
		Build: func(s int, seed uint64) *graph.Graph {
			side := 1 << (7 + (s+1)/2)
			return RoadNetwork(side, side, 0.08, seed)
		},
	},
}

// ByInstance returns the stand-in named name.
func ByInstance(name string, scaleShift int, seed uint64) (*graph.Graph, error) {
	for _, inst := range Instances {
		if inst.Name == name {
			return inst.Build(scaleShift, seed), nil
		}
	}
	return nil, fmt.Errorf("gen: unknown instance %q", name)
}

// WebConfig parameterizes the clustered web model: vertices are grouped into
// "hosts"; pages within a host link densely (near-cliques, the source of the
// enormous triangle counts of crawl graphs), and each page gets a few
// R-MAT-skewed long-distance links.
type WebConfig struct {
	N          int
	HostSize   int
	IntraP     float64 // intra-host edge probability
	LongFactor int     // long-range edges per vertex
	Seed       uint64
}

// WebGraph builds the clustered web stand-in.
func WebGraph(cfg WebConfig) *graph.Graph {
	rng := NewRNG(cfg.Seed)
	var edges []graph.Edge
	// Host near-cliques over contiguous ID ranges (hosts are crawled
	// contiguously, which is exactly why web graphs have ID locality).
	for base := 0; base < cfg.N; base += cfg.HostSize {
		end := base + cfg.HostSize
		if end > cfg.N {
			end = cfg.N
		}
		for u := base; u < end; u++ {
			for v := u + 1; v < end; v++ {
				if rng.Float64() < cfg.IntraP {
					edges = append(edges, graph.Edge{U: uint64(u), V: uint64(v)})
				}
			}
		}
	}
	// Long links: preferential-attachment-flavored via squared-uniform target
	// sampling (biases toward low IDs, i.e. "old" popular hosts).
	for u := 0; u < cfg.N; u++ {
		for k := 0; k < cfg.LongFactor; k++ {
			t := rng.Float64()
			v := int(t * t * float64(cfg.N))
			if v >= cfg.N {
				v = cfg.N - 1
			}
			if v != u {
				edges = append(edges, graph.Edge{U: uint64(u), V: uint64(v)})
			}
		}
	}
	return graph.FromEdges(cfg.N, edges)
}

// RoadNetwork builds a w×h grid with a random diagonal added in each cell
// with probability diagP — low uniform degree and very few triangles, the
// profile of the DIMACS usa/europe road networks.
func RoadNetwork(w, h int, diagP float64, seed uint64) *graph.Graph {
	g := Grid2D(w, h)
	edges := g.Edges()
	rng := NewRNG(seed)
	id := func(x, y int) uint64 { return uint64(y*w + x) }
	for y := 0; y+1 < h; y++ {
		for x := 0; x+1 < w; x++ {
			if rng.Float64() < diagP {
				if rng.Next()&1 == 0 {
					edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y+1)})
				} else {
					edges = append(edges, graph.Edge{U: id(x+1, y), V: id(x, y+1)})
				}
			}
		}
	}
	return graph.FromEdges(w*h, edges)
}

// InstanceNames returns the catalog names in Table I order.
func InstanceNames() []string {
	names := make([]string, len(Instances))
	for i, inst := range Instances {
		names[i] = inst.Name
	}
	return names
}

// SortedInstanceNames returns the catalog names sorted alphabetically.
func SortedInstanceNames() []string {
	names := InstanceNames()
	sort.Strings(names)
	return names
}

package gen

import "repro/internal/graph"

// GNM samples a graph uniformly from the G(n,m) Erdős–Rényi model: m
// distinct undirected edges chosen uniformly at random, no self-loops. These
// graphs have no locality at all, which is the regime where the paper's
// contraction (CETRIC) does not pay off.
func GNM(n, m int, seed uint64) *graph.Graph {
	if n < 2 {
		return graph.FromEdges(n, nil)
	}
	maxEdges := uint64(n) * uint64(n-1) / 2
	if uint64(m) > maxEdges {
		m = int(maxEdges)
	}
	rng := NewRNG(seed)
	seen := make(map[uint64]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u := rng.Uint64n(uint64(n))
		v := rng.Uint64n(uint64(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := u*uint64(n) + v
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, edges)
}

// GNP samples from the G(n,p) model using geometric skips, useful for dense
// small test instances.
func GNP(n int, p float64, seed uint64) *graph.Graph {
	rng := NewRNG(seed)
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, graph.Edge{U: uint64(u), V: uint64(v)})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

package gen_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/testgraph"
)

// choose3 returns C(n,3).
func choose3(n uint64) uint64 {
	if n < 3 {
		return 0
	}
	return n * (n - 1) * (n - 2) / 6
}

// TestGeneratorGoldenCounts pins every generator in the package to an exact
// triangle count on a small instance, verified by brute-force O(n³)
// enumeration. Deterministic constructions are checked against their closed
// forms; seeded random generators against golden values recorded from the
// current implementation — a generator change that alters sampled structure
// (even at fixed seed) fails here first, before the distributed matrix.
func TestGeneratorGoldenCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		// Closed forms.
		{"Complete(10)", gen.Complete(10), choose3(10)},
		{"Complete(3)", gen.Complete(3), 1},
		{"CompleteBipartite(6,8)", gen.CompleteBipartite(6, 8), 0},
		{"Friendship(7)", gen.Friendship(7), 7},
		{"Friendship(1)", gen.Friendship(1), 1},
		{"TriangularGrid(5,4)", gen.TriangularGrid(5, 4), 2 * 4 * 3},
		{"TriangularGrid(2,2)", gen.TriangularGrid(2, 2), 2},
		{"Cycle(3)", gen.Cycle(3), 1},
		{"Cycle(8)", gen.Cycle(8), 0},
		{"Path(9)", gen.Path(9), 0},
		{"Star(12)", gen.Star(12), 0},
		{"Wheel(3)", gen.Wheel(3), 4}, // K4
		{"Wheel(9)", gen.Wheel(9), 9},
		{"Grid2D(5,5)", gen.Grid2D(5, 5), 0},
		{"Petersen", gen.Petersen(), 0}, // girth 5
		{"CliqueChain(4,5)", gen.CliqueChain(4, 5), 4 * choose3(5)},
		// Seeded random generators: golden values at these exact seeds.
		{"GNM(60,240,3)", gen.GNM(60, 240, 3), 84},
		{"GNP(50,0.15,5)", gen.GNP(50, 0.15, 5), 62},
		{"RMAT(scale=6,seed=7)", gen.RMAT(gen.DefaultRMAT(6, 7)), 1151},
		{"RGG2D(80,6,9)", gen.RGG2D(80, 6, 9), 597},
		{"RHG(80,8,2.5,11)", gen.RHG(gen.RHGConfig{N: 80, AvgDegree: 8, Gamma: 2.5, Seed: 11}), 150},
		{"RoadNetwork(8,8,0.3,13)", gen.RoadNetwork(8, 8, 0.3, 13), 30},
		{"WebGraph(96,12,0.5,3,15)", gen.WebGraph(gen.WebConfig{N: 96, HostSize: 12, IntraP: 0.5, LongFactor: 3, Seed: 15}), 438},
	}
	for _, c := range cases {
		if got := testgraph.BruteForceCount(c.g); got != c.want {
			t.Errorf("%s: brute-force count %d, want %d", c.name, got, c.want)
		}
	}
}

// TestByFamilyCoversAllFamilies cross-checks the string-keyed entry point
// against the direct constructors: same family, same seed, same triangles.
func TestByFamilyCoversAllFamilies(t *testing.T) {
	for _, fam := range gen.Families() {
		g, err := gen.ByFamily(fam, 64, 4, 21)
		if err != nil {
			t.Fatalf("ByFamily(%s): %v", fam, err)
		}
		g2, err := gen.ByFamily(fam, 64, 4, 21)
		if err != nil {
			t.Fatal(err)
		}
		a, b := testgraph.BruteForceCount(g), testgraph.BruteForceCount(g2)
		if a != b {
			t.Errorf("ByFamily(%s) not deterministic: %d vs %d triangles", fam, a, b)
		}
	}
	if _, err := gen.ByFamily("no-such-family", 64, 4, 21); err == nil {
		t.Error("ByFamily should reject unknown families")
	}
}

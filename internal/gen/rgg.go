package gen

import (
	"math"

	"repro/internal/graph"
)

// RGG2D generates a 2D random geometric graph: n points uniform in the unit
// square, an edge between points at Euclidean distance < r. The radius is
// chosen so that the expected number of edges is edgeFactor*n, matching the
// paper's weak-scaling inputs (edgeFactor 16). Neighbor search uses a grid of
// cells of side r, so generation is O(n + m) in expectation.
//
// Because vertex IDs are assigned in row-major cell order, nearby IDs are
// geometrically close: a contiguous 1D partition has small cuts. RGG is the
// paper's high-locality family, where CETRIC's contraction shines.
func RGG2D(n, edgeFactor int, seed uint64) *graph.Graph {
	if n == 0 {
		return graph.FromEdges(0, nil)
	}
	// E[m] = C(n,2) * pi r^2 (ignoring boundary effects)  =>  r.
	r := math.Sqrt(2 * float64(edgeFactor) / (math.Pi * float64(n-1)))
	if r > 1 {
		r = 1
	}
	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	cell := 1.0 / float64(cells)

	// Deterministic point per vertex index via stateless hashing.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = HashFloat64(seed, uint64(2*i))
		ys[i] = HashFloat64(seed, uint64(2*i+1))
	}
	// Sort vertices into cells; relabel IDs in cell (row-major) order so that
	// the ID space has geometric locality, as KAGEN's distributed generator
	// produces naturally.
	cellOf := func(x, y float64) int {
		cx := int(x / cell)
		cy := int(y / cell)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cy*cells + cx
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	keys := make([]int, n)
	for i := 0; i < n; i++ {
		keys[i] = cellOf(xs[i], ys[i])
	}
	sortByKey(order, keys)
	px := make([]float64, n)
	py := make([]float64, n)
	for newID, oldID := range order {
		px[newID] = xs[oldID]
		py[newID] = ys[oldID]
	}
	// Bucket boundaries per cell in the relabeled order.
	bucketStart := make([]int, cells*cells+1)
	for i := 0; i < n; i++ {
		bucketStart[cellOf(px[i], py[i])+1]++
	}
	for c := 1; c <= cells*cells; c++ {
		bucketStart[c] += bucketStart[c-1]
	}

	r2 := r * r
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		cx := int(px[u] / cell)
		cy := int(py[u] / cell)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				c := ny*cells + nx
				for v := bucketStart[c]; v < bucketStart[c+1]; v++ {
					if v <= u {
						continue
					}
					ddx := px[u] - px[v]
					ddy := py[u] - py[v]
					if ddx*ddx+ddy*ddy < r2 {
						edges = append(edges, graph.Edge{U: uint64(u), V: uint64(v)})
					}
				}
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// sortByKey stably sorts order by keys (counting sort on small key ranges,
// fallback comparison sort otherwise).
func sortByKey(order []int, keys []int) {
	maxKey := 0
	for _, k := range keys {
		if k > maxKey {
			maxKey = k
		}
	}
	cnt := make([]int, maxKey+2)
	for _, k := range keys {
		cnt[k+1]++
	}
	for i := 1; i < len(cnt); i++ {
		cnt[i] += cnt[i-1]
	}
	out := make([]int, len(order))
	for _, id := range order {
		out[cnt[keys[id]]] = id
		cnt[keys[id]]++
	}
	copy(order, out)
}

package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Options scales the whole harness. ScaleShift shifts every instance size by
// powers of two (negative = smaller/faster); MaxP caps the PE sweeps.
type Options struct {
	ScaleShift int
	MaxP       int
	Seed       uint64
}

func (o Options) withDefaults() Options {
	if o.MaxP == 0 {
		o.MaxP = 32
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func pSweep(maxP int) []int {
	var ps []int
	for p := 2; p <= maxP; p *= 2 {
		ps = append(ps, p)
	}
	return ps
}

// Table1 reproduces Table I: instance statistics (n, m, oriented wedges,
// triangles) for the real-world stand-ins.
func Table1(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	t := NewTable("Table I — real-world stand-in instances",
		"instance", "class", "n", "m", "wedges", "triangles", "maxdeg", "notes")
	for _, inst := range gen.Instances {
		g := inst.Build(opt.ScaleShift, opt.Seed)
		stats := graph.ComputeStats(g)
		tri := core.SeqCount(g)
		t.Row(inst.Name, inst.Class, humanCount(int64(stats.N)), humanCount(int64(stats.M)),
			humanCount(int64(stats.Wedges)), humanCount(int64(tri)), stats.MaxDegree, inst.Notes)
	}
	t.Write(w)
	return nil
}

// Fig2 reproduces Fig. 2: the basic distributed algorithm with and without
// message aggregation on the friendster stand-in.
func Fig2(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	g, err := gen.ByInstance("friendster", opt.ScaleShift, opt.Seed)
	if err != nil {
		return err
	}
	t := NewTable("Fig. 2 — message aggregation on friendster stand-in",
		"p", "variant", "wall", "frames(max)", "volume(max words)", "t_model(cloud)", "t_model(wan)")
	for _, p := range pSweep(opt.MaxP) {
		for _, variant := range []struct {
			name string
			algo core.Algorithm
		}{{"buffering", core.AlgoDiTric}, {"no buffering", core.AlgoNoAgg}} {
			res, err := core.Run(variant.algo, g, core.Config{P: p})
			if err != nil {
				return err
			}
			t.Row(p, variant.name, res.Wall,
				humanCount(res.Agg.MaxSentFrames), humanCount(res.Agg.MaxPayloadWords),
				costmodel.Bottleneck(res.PerPE, costmodel.Cloud),
				costmodel.Bottleneck(res.PerPE, costmodel.WAN))
		}
	}
	t.Write(w)
	return nil
}

// weakFamilies defines the Fig. 5 weak-scaling inputs: per-PE vertex counts
// (scaled down from the paper's 2^18/2^16 to laptop size).
var weakFamilies = []struct {
	Family  string
	PerPE   int
	EdgeFac int
}{
	{"rgg2d", 1 << 11, 16},
	{"rhg", 1 << 11, 16},
	{"gnm", 1 << 9, 16},
	{"rmat", 1 << 9, 16},
}

// Fig5 reproduces Fig. 5: weak scaling over the four synthetic families,
// reporting running time, the maximum number of sent messages over all PEs,
// and the bottleneck communication volume for all six algorithms.
func Fig5(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	for _, fam := range weakFamilies {
		t := NewTable(fmt.Sprintf("Fig. 5 — weak scaling on %s (%d vertices/PE, edge factor %d)",
			fam.Family, fam.PerPE, fam.EdgeFac),
			"p", "n", "algo", "wall", "msgs(max)", "volume(max)", "t_model(cloud)", "peak buffer(max)", "triangles")
		for _, p := range append([]int{1}, pSweep(opt.MaxP)...) {
			n := fam.PerPE * p
			g, err := gen.ByFamily(fam.Family, n, fam.EdgeFac, opt.Seed+uint64(p))
			if err != nil {
				return err
			}
			for _, algo := range core.Algorithms() {
				res, err := core.Run(algo, g, core.Config{P: p})
				if err != nil {
					return err
				}
				t.Row(p, humanCount(int64(g.NumVertices())), string(algo), res.Wall,
					humanCount(res.Agg.MaxSentFrames), humanCount(res.Agg.MaxPayloadWords),
					costmodel.Bottleneck(res.PerPE, costmodel.Cloud),
					humanCount(res.Agg.MaxPeakBuffered), res.Count)
			}
		}
		t.Write(w)
	}
	return nil
}

// Fig6 reproduces Fig. 6: strong scaling on the eight real-world stand-ins.
func Fig6(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	for _, inst := range gen.Instances {
		g := inst.Build(opt.ScaleShift, opt.Seed)
		t := NewTable(fmt.Sprintf("Fig. 6 — strong scaling on %s (n=%s, m=%s)",
			inst.Name, humanCount(int64(g.NumVertices())), humanCount(int64(g.NumEdges()))),
			"p", "algo", "wall", "msgs(max)", "volume(max)", "t_model(cloud)", "triangles")
		for _, p := range pSweep(opt.MaxP) {
			for _, algo := range core.Algorithms() {
				res, err := core.Run(algo, g, core.Config{P: p})
				if err != nil {
					return err
				}
				t.Row(p, string(algo), res.Wall,
					humanCount(res.Agg.MaxSentFrames), humanCount(res.Agg.MaxPayloadWords),
					costmodel.Bottleneck(res.PerPE, costmodel.Cloud), res.Count)
			}
		}
		t.Write(w)
	}
	return nil
}

// Fig7 reproduces Fig. 7: the running-time distribution over the algorithm
// phases for DITRIC vs CETRIC on selected instances.
func Fig7(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	phases := []string{core.PhasePreprocess, core.PhaseLocal, core.PhaseContraction, core.PhaseGlobal}
	for _, name := range []string{"friendster", "webbase-2001", "live-journal"} {
		g, err := gen.ByInstance(name, opt.ScaleShift, opt.Seed)
		if err != nil {
			return err
		}
		t := NewTable(fmt.Sprintf("Fig. 7 — phase breakdown on %s", name),
			"p", "algo", "preprocess", "local", "contraction", "global",
			"volume(max words)", "t_model(cloud)")
		for _, p := range pSweep(opt.MaxP) {
			for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
				res, err := core.Run(algo, g, core.Config{P: p})
				if err != nil {
					return err
				}
				cells := []any{p, string(algo)}
				for _, ph := range phases {
					cells = append(cells, res.Phases[ph])
				}
				// Whole-run communication: DITRIC enqueues its shipments
				// during the combined local/send loop, so phase-scoped volume
				// would land in "local" for DITRIC and "global" for CETRIC.
				cells = append(cells, humanCount(res.Agg.MaxPayloadWords),
					costmodel.Bottleneck(res.PerPE, costmodel.Cloud))
				t.Row(cells...)
			}
		}
		t.Write(w)
	}
	return nil
}

func modelAggregate(a comm.Aggregate, prof costmodel.Profile) time.Duration {
	s := prof.Alpha*float64(a.MaxSentFrames) + prof.Beta*float64(a.MaxSentWords)
	return time.Duration(s * float64(time.Second))
}

// Fig8 reproduces the appendix figure: the hybrid (MPI×threads) trade-off on
// the orkut stand-in with cores = ranks × threads held constant.
func Fig8(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	g, err := gen.ByInstance("orkut", opt.ScaleShift, opt.Seed)
	if err != nil {
		return err
	}
	cores := opt.MaxP
	t := NewTable(fmt.Sprintf("Fig. 8 — hybrid DITRIC2 on orkut stand-in (cores = ranks × threads = %d)", cores),
		"threads", "ranks", "local", "total wall", "volume(total words)", "msgs(total)", "triangles")
	for threads := 1; threads <= cores; threads *= 2 {
		ranks := cores / threads
		if ranks < 1 {
			break
		}
		res, err := core.Run(core.AlgoDiTric2, g, core.Config{P: ranks, Threads: threads})
		if err != nil {
			return err
		}
		t.Row(threads, ranks, res.Phases[core.PhaseLocal], res.Wall,
			humanCount(res.Agg.TotalPayload), humanCount(res.Agg.TotalFrames), res.Count)
	}
	t.Write(w)
	return nil
}

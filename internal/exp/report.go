// Package exp implements the experiment harness: one driver per table or
// figure of the paper, each producing plain-text tables (the data behind
// EXPERIMENTS.md). Sizes are scaled to a single machine; the PEs are
// simulated, so measured wall-clock is indicative while message counts and
// communication volumes are exact, and the α+β cost model translates them
// into network regimes (see DESIGN.md §1).
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table accumulates aligned rows for text output.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; values are formatted with %v, durations and floats
// compactly.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case time.Duration:
		return formatDuration(v)
	case float64:
		if v == float64(int64(v)) && v < 1e15 {
			return fmt.Sprintf("%d", int64(v))
		}
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%v", c)
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "## %s\n\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// humanCount renders large counts compactly (k/M/G).
func humanCount(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

// Ablations for the design choices DESIGN.md §4 calls out.

// AblateThreshold sweeps the aggregation threshold δ: smaller δ means more,
// smaller messages and a lower memory peak.
func AblateThreshold(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	g, err := gen.ByFamily("rmat", 1<<12, 16, opt.Seed)
	if err != nil {
		return err
	}
	p := 8
	t := NewTable("Ablation — aggregation threshold δ (DITRIC, RMAT 2^12, p=8)",
		"δ (words)", "frames(total)", "peak buffer(max)", "wall", "t_model(cloud)")
	for _, delta := range []int{64, 512, 4096, 1 << 15, 1 << 20} {
		res, err := core.Run(core.AlgoDiTric, g, core.Config{P: p, Threshold: delta})
		if err != nil {
			return err
		}
		t.Row(delta, humanCount(res.Agg.TotalFrames), humanCount(res.Agg.MaxPeakBuffered),
			res.Wall, costmodel.Bottleneck(res.PerPE, costmodel.Cloud))
	}
	t.Write(w)
	return nil
}

// AblateContraction compares CETRIC against DITRIC per family: contraction
// helps where locality exists (rgg2d, rhg, web-like) and wastes local work
// where it does not (gnm).
func AblateContraction(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	p := 8
	t := NewTable("Ablation — contraction (CETRIC) vs plain (DITRIC), p=8",
		"family", "algo", "volume(max)", "reduction", "local+contract wall", "global wall")
	for _, fam := range weakFamilies {
		g, err := gen.ByFamily(fam.Family, 1<<12, fam.EdgeFac, opt.Seed)
		if err != nil {
			return err
		}
		var base int64
		for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
			res, err := core.Run(algo, g, core.Config{P: p})
			if err != nil {
				return err
			}
			vol := res.Agg.MaxPayloadWords
			reduction := "1.00x"
			if algo == core.AlgoDiTric {
				base = vol
			} else if vol > 0 {
				reduction = fmt.Sprintf("%.2fx", float64(base)/float64(vol))
			} else {
				reduction = "inf"
			}
			t.Row(fam.Family, string(algo), humanCount(vol), reduction,
				res.Phases[core.PhaseLocal]+res.Phases[core.PhaseContraction],
				res.Phases[core.PhaseGlobal])
		}
	}
	t.Write(w)
	return nil
}

// AblateIndirection measures the indirect grid routing: fewer peers and
// frames per PE at the cost of roughly doubled transported words.
func AblateIndirection(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	t := NewTable("Ablation — grid indirection (GNM 2^13, DITRIC vs DITRIC2)",
		"p", "algo", "peers(max)", "frames(max)", "words(max transported)", "t_model(cloud)", "t_model(wan)")
	g, err := gen.ByFamily("gnm", 1<<13, 16, opt.Seed)
	if err != nil {
		return err
	}
	for _, p := range pSweep(opt.MaxP) {
		for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoDiTric2} {
			res, err := core.Run(algo, g, core.Config{P: p})
			if err != nil {
				return err
			}
			t.Row(p, string(algo), res.Agg.MaxPeers,
				humanCount(res.Agg.MaxSentFrames), humanCount(res.Agg.MaxSentWords),
				costmodel.Bottleneck(res.PerPE, costmodel.Cloud),
				costmodel.Bottleneck(res.PerPE, costmodel.WAN))
		}
	}
	t.Write(w)
	return nil
}

// AblateDegreeExchange compares the dense and sparse (NBX-style) ghost
// degree exchanges, including on a skewed instance where the paper observed
// the sparse exchange can lose.
func AblateDegreeExchange(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	t := NewTable("Ablation — ghost degree exchange: dense vs sparse all-to-all (p=16)",
		"family", "mode", "preprocess wall", "preprocess frames", "preprocess volume")
	for _, fam := range []string{"rgg2d", "rmat"} {
		g, err := gen.ByFamily(fam, 1<<12, 16, opt.Seed)
		if err != nil {
			return err
		}
		for _, sparse := range []bool{false, true} {
			res, err := core.Run(core.AlgoCetric, g, core.Config{P: 16, SparseDegreeExchange: sparse})
			if err != nil {
				return err
			}
			mode := "dense"
			if sparse {
				mode = "sparse"
			}
			pm := res.PhaseComm[core.PhasePreprocess]
			t.Row(fam, mode, res.Phases[core.PhasePreprocess],
				humanCount(pm.TotalFrames), humanCount(pm.TotalPayload))
		}
	}
	t.Write(w)
	return nil
}

// AblatePartitioners compares the degree-based cost functions of
// Arifuzzaman et al. against the uniform 1D partition.
func AblatePartitioners(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	g, err := gen.ByFamily("rmat", 1<<12, 16, opt.Seed)
	if err != nil {
		return err
	}
	degrees := make([]int, g.NumVertices())
	for v := range degrees {
		degrees[v] = g.Degree(graph.Vertex(v))
	}
	p := 8
	t := NewTable("Ablation — 1D partitioners on skewed RMAT (CETRIC, p=8)",
		"partitioner", "wall", "volume(max)", "msgs(max)", "local wall")
	parts := []struct {
		name string
		pt   *part.Partition
	}{
		{"uniform-vertex", part.Uniform(uint64(g.NumVertices()), p)},
		{"balanced-degree", part.ByCost(degrees, p, part.CostDegree)},
		{"balanced-wedges", part.ByCost(degrees, p, part.CostWedges)},
	}
	for _, pc := range parts {
		res, err := core.Run(core.AlgoCetric, g, core.Config{P: p, Partition: pc.pt})
		if err != nil {
			return err
		}
		t.Row(pc.name, res.Wall, humanCount(res.Agg.MaxPayloadWords),
			humanCount(res.Agg.MaxSentFrames), res.Phases[core.PhaseLocal])
	}
	t.Write(w)
	return nil
}

// AblateAMQ sweeps the Bloom filter budget of the approximate global phase:
// volume versus estimate accuracy (§IV-E).
func AblateAMQ(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	g, err := gen.ByFamily("gnm", 1<<12, 16, opt.Seed)
	if err != nil {
		return err
	}
	p := 8
	exact, err := core.Run(core.AlgoCetric, g, core.Config{P: p})
	if err != nil {
		return err
	}
	t := NewTable(fmt.Sprintf("Ablation — AMQ approximate type-3 counting (GNM 2^12, p=8, exact=%d)", exact.Count),
		"bits/key", "filter", "estimate", "rel err", "global payload", "vs exact payload")
	for _, blocked := range []bool{false, true} {
		kind := "bloom"
		if blocked {
			kind = "blocked"
		}
		for _, bits := range []float64{2, 4, 8, 16} {
			res, err := core.RunApproxCetric(g, core.Config{P: p},
				core.AMQConfig{BitsPerKey: bits, Blocked: blocked, Truthful: true})
			if err != nil {
				return err
			}
			rel := math.Abs(res.Estimate-float64(exact.Count)) / float64(exact.Count)
			ratio := float64(res.Agg.TotalPayload) / float64(exact.Agg.TotalPayload)
			t.Row(bits, kind, fmt.Sprintf("%.0f", res.Estimate), fmt.Sprintf("%.4f", rel),
				humanCount(res.Agg.TotalPayload), fmt.Sprintf("%.2fx", ratio))
		}
	}
	t.Write(w)
	return nil
}

// AblateApproxBaselines compares DOULION and colorful sparsification with
// the AMQ approach at similar accuracy targets.
func AblateApproxBaselines(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	g, err := gen.ByFamily("rmat", 1<<12, 16, opt.Seed)
	if err != nil {
		return err
	}
	p := 8
	truth := float64(core.SeqCount(g))
	t := NewTable(fmt.Sprintf("Ablation — approximation baselines (RMAT 2^12, p=8, exact=%.0f)", truth),
		"method", "param", "estimate", "rel err", "volume(total payload)")
	for _, q := range []float64{0.25, 0.5} {
		est, res, err := core.RunDoulion(core.AlgoCetric, g, core.Config{P: p}, q, opt.Seed)
		if err != nil {
			return err
		}
		t.Row("doulion", fmt.Sprintf("q=%.2f", q), fmt.Sprintf("%.0f", est),
			fmt.Sprintf("%.4f", math.Abs(est-truth)/truth), humanCount(res.Agg.TotalPayload))
	}
	for _, nc := range []int{2, 4} {
		est, res, err := core.RunColorful(core.AlgoCetric, g, core.Config{P: p}, nc, opt.Seed)
		if err != nil {
			return err
		}
		t.Row("colorful", fmt.Sprintf("N=%d", nc), fmt.Sprintf("%.0f", est),
			fmt.Sprintf("%.4f", math.Abs(est-truth)/truth), humanCount(res.Agg.TotalPayload))
	}
	for _, bits := range []float64{4, 8} {
		res, err := core.RunApproxCetric(g, core.Config{P: p}, core.AMQConfig{BitsPerKey: bits, Truthful: true})
		if err != nil {
			return err
		}
		t.Row("amq-cetric", fmt.Sprintf("b=%.0f", bits), fmt.Sprintf("%.0f", res.Estimate),
			fmt.Sprintf("%.4f", math.Abs(res.Estimate-truth)/truth), humanCount(res.Agg.TotalPayload))
	}
	t.Write(w)
	return nil
}

// AblateSurrogate toggles the surrogate dedup of Arifuzzaman et al.:
// without it every neighborhood ships once per cut edge instead of once per
// destination PE.
func AblateSurrogate(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	t := NewTable("Ablation — surrogate dedup (once per PE) vs per-edge shipments (p=8)",
		"family", "mode", "volume(total payload)", "frames(total)", "t_model(cloud)")
	for _, fam := range []string{"rgg2d", "rmat"} {
		g, err := gen.ByFamily(fam, 1<<12, 16, opt.Seed)
		if err != nil {
			return err
		}
		for _, noSurrogate := range []bool{false, true} {
			res, err := core.Run(core.AlgoDiTric, g, core.Config{P: 8, NoSurrogate: noSurrogate})
			if err != nil {
				return err
			}
			mode := "surrogate dedup"
			if noSurrogate {
				mode = "per-edge"
			}
			t.Row(fam, mode, humanCount(res.Agg.TotalPayload), humanCount(res.Agg.TotalFrames),
				costmodel.Bottleneck(res.PerPE, costmodel.Cloud))
		}
	}
	t.Write(w)
	return nil
}

// AblateNetworkCrossover probes the paper's prediction that CETRIC overtakes
// DITRIC on slower interconnects. On RGG2D (high locality) CETRIC cuts the
// bottleneck volume by a constant factor but pays extra local work, exactly
// as the paper measures; whether the trade pays off depends on the per-word
// network cost β. The table reports measured compute (averaged over runs),
// bottleneck volumes, modeled totals per profile, and the break-even
// bandwidth below which CETRIC wins — the quantitative version of the
// paper's "we still expect CETRIC to outperform DITRIC on a system with
// slower network interconnects".
func AblateNetworkCrossover(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	g, err := gen.ByFamily("rgg2d", 1<<13, 16, opt.Seed)
	if err != nil {
		return err
	}
	type run struct {
		algo    core.Algorithm
		compute time.Duration
		per     []comm.Metrics
		volume  int64
	}
	const repeats = 3
	runs := make([]run, 0, 2)
	for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
		var compute time.Duration
		var res *core.Result
		for i := 0; i < repeats; i++ {
			res, err = core.Run(algo, g, core.Config{P: 16})
			if err != nil {
				return err
			}
			compute += res.Phases[core.PhasePreprocess] + res.Phases[core.PhaseLocal] +
				res.Phases[core.PhaseContraction]
		}
		runs = append(runs, run{algo, compute / repeats, res.PerPE, res.Agg.MaxPayloadWords})
	}
	t := NewTable("Ablation — network regime crossover (RGG2D 2^13, p=16): compute wall + modeled comm",
		"profile", "algo", "compute", "volume(max)", "comm(model)", "total", "winner")
	for _, prof := range costmodel.Profiles() {
		totals := make([]time.Duration, len(runs))
		for i, r := range runs {
			totals[i] = r.compute + costmodel.Bottleneck(r.per, prof)
		}
		winner := runs[0].algo
		if totals[1] < totals[0] {
			winner = runs[1].algo
		}
		for i, r := range runs {
			mark := ""
			if r.algo == winner {
				mark = "◀"
			}
			t.Row(prof.Name, string(r.algo), r.compute, humanCount(r.volume),
				costmodel.Bottleneck(r.per, prof), totals[i], mark)
		}
	}
	t.Write(w)
	// Break-even per-word cost: CETRIC wins when β·(V_D − V_C) exceeds its
	// extra compute.
	dV := runs[0].volume - runs[1].volume
	dC := runs[1].compute - runs[0].compute
	if dV > 0 && dC > 0 {
		betaStar := dC.Seconds() / float64(dV) // s per 8-byte word
		bw := 64 / betaStar                    // bits/s
		fmt.Fprintf(w, "Break-even: CETRIC overtakes DITRIC below ≈ %.1f Mbit/s effective per-PE bandwidth\n"+
			"(extra compute %v vs volume saving %s words).\n\n",
			bw/1e6, dC, humanCount(dV))
	} else if dC <= 0 {
		fmt.Fprintf(w, "CETRIC is not compute-disadvantaged on this input; it wins at any bandwidth.\n\n")
	}
	return nil
}

// Ablate runs every ablation.
func Ablate(w io.Writer, opt Options) error {
	for _, fn := range []func(io.Writer, Options) error{
		AblateThreshold, AblateContraction, AblateIndirection,
		AblateDegreeExchange, AblatePartitioners, AblateSurrogate,
		AblateAMQ, AblateApproxBaselines, AblateNetworkCrossover,
	} {
		if err := fn(w, opt); err != nil {
			return err
		}
	}
	return nil
}

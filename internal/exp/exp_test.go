package exp

import (
	"strings"
	"testing"
	"time"
)

// Tiny options so the whole harness runs in seconds under `go test`.
func tinyOpts() Options { return Options{ScaleShift: -5, MaxP: 4, Seed: 7} }

func TestTableFormatting(t *testing.T) {
	tab := NewTable("demo", "a", "bb", "ccc")
	tab.Row(1, "x", 2.5)
	tab.Row(1500*time.Millisecond, 3.0, "y")
	var sb strings.Builder
	tab.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "## demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "1.50s") {
		t.Fatal("duration not formatted")
	}
	if !strings.Contains(out, "| a ") {
		t.Fatal("missing header")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, blank, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{2 * time.Second, "2.00s"},
		{1500 * time.Microsecond, "1.50ms"},
		{800 * time.Nanosecond, "800ns"},
		{15 * time.Microsecond, "15.0µs"},
	}
	for _, c := range cases {
		if got := formatDuration(c.d); got != c.want {
			t.Errorf("formatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestHumanCount(t *testing.T) {
	cases := []struct {
		v    int64
		want string
	}{
		{5, "5"}, {1500, "1.5k"}, {2500000, "2.50M"}, {3200000000, "3.20G"},
	}
	for _, c := range cases {
		if got := humanCount(c.v); got != c.want {
			t.Errorf("humanCount(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTable1Runs(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"live-journal", "usa", "friendster"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("Table 1 missing %s", name)
		}
	}
}

func TestFig2Runs(t *testing.T) {
	var sb strings.Builder
	if err := Fig2(&sb, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no buffering") {
		t.Fatal("Fig 2 missing unbuffered variant")
	}
}

func TestFig5Runs(t *testing.T) {
	var sb strings.Builder
	opt := tinyOpts()
	if err := Fig5(&sb, opt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{"rgg2d", "rhg", "gnm", "rmat"} {
		if !strings.Contains(out, fam) {
			t.Fatalf("Fig 5 missing family %s", fam)
		}
	}
	for _, algo := range []string{"ditric", "ditric2", "cetric", "cetric2", "havoq", "tric"} {
		if !strings.Contains(out, algo) {
			t.Fatalf("Fig 5 missing algorithm %s", algo)
		}
	}
}

func TestFig7Runs(t *testing.T) {
	var sb strings.Builder
	if err := Fig7(&sb, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	for _, ph := range []string{"preprocess", "local", "contraction", "global"} {
		if !strings.Contains(sb.String(), ph) {
			t.Fatalf("Fig 7 missing phase %s", ph)
		}
	}
}

func TestFig8Runs(t *testing.T) {
	var sb strings.Builder
	if err := Fig8(&sb, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "threads") {
		t.Fatal("Fig 8 missing threads column")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation sweep")
	}
	var sb strings.Builder
	if err := Ablate(&sb, tinyOpts()); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"threshold", "contraction", "indirection", "degree exchange", "partitioners", "AMQ", "baselines"} {
		if !strings.Contains(sb.String(), marker) {
			t.Fatalf("ablations missing %q section", marker)
		}
	}
}

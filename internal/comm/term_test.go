package comm

import (
	"sync/atomic"
	"testing"
)

// Termination-detection stress: handlers that trigger cascading sends,
// multi-hop chains, and forwarding proxies must all be drained before
// Drain returns anywhere.

func TestDrainWithCascadingSends(t *testing.T) {
	// Channel 0 records ping with TTL: each receipt with ttl>0 forwards to
	// the next PE. Total receipts = initial sends × (ttl+1).
	for _, indirect := range []bool{false, true} {
		for _, p := range []int{3, 5, 11, 13} {
			var received atomic.Int64
			runCluster(t, p, 32, indirect, func(rank int, c *Comm, q *Queue) {
				q.Handle(0, func(src int, words []uint64) {
					received.Add(1)
					ttl := words[0]
					if ttl > 0 {
						q.Send(0, (rank+1)%p, []uint64{ttl - 1})
					}
				})
				c.Barrier()
				// Every PE starts one chain of length p.
				q.Send(0, (rank+1)%p, []uint64{uint64(p - 1)})
				q.Drain()
			})
			want := int64(p * p)
			if received.Load() != want {
				t.Fatalf("p=%d indirect=%v: %d receipts, want %d", p, indirect, received.Load(), want)
			}
		}
	}
}

func TestDrainChainsAcrossPhases(t *testing.T) {
	// Two send/drain phases: records of phase 2 must never be processed
	// during phase 1's drain accounting in a way that breaks termination.
	const p = 6
	var phase1, phase2 atomic.Int64
	runCluster(t, p, 8, true, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(int, []uint64) { phase1.Add(1) })
		q.Handle(1, func(int, []uint64) { phase2.Add(1) })
		for dst := 0; dst < p; dst++ {
			if dst != rank {
				q.Send(0, dst, []uint64{1})
			}
		}
		q.Drain()
		for dst := 0; dst < p; dst++ {
			if dst != rank {
				q.Send(1, dst, []uint64{1})
			}
		}
		q.Drain()
	})
	if phase1.Load() != p*(p-1) || phase2.Load() != p*(p-1) {
		t.Fatalf("receipts %d/%d, want %d each", phase1.Load(), phase2.Load(), p*(p-1))
	}
}

func TestDrainHeavySkewedTraffic(t *testing.T) {
	// All PEs hammer PE 0 (the hub pattern of the indirection motivation).
	const p = 9
	var hub atomic.Int64
	ms := runCluster(t, p, 16, true, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(int, []uint64) { hub.Add(1) })
		c.Barrier()
		if rank != 0 {
			for i := 0; i < 500; i++ {
				q.Send(0, 0, []uint64{uint64(i)})
			}
		}
		q.Drain()
	})
	if hub.Load() != (p-1)*500 {
		t.Fatalf("hub got %d records, want %d", hub.Load(), (p-1)*500)
	}
	// With grid routing the hub's inbound frames arrive from its column and
	// row proxies only — fewer distinct sources than p-1 would imply.
	_ = ms
}

func TestDrainOnlyCoordinatorHasTraffic(t *testing.T) {
	// Rank 0 (the termination coordinator) is the only sender; workers must
	// still terminate.
	const p = 4
	var got atomic.Int64
	runCluster(t, p, 4, false, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(int, []uint64) { got.Add(1) })
		if rank == 0 {
			for dst := 1; dst < p; dst++ {
				q.Send(0, dst, []uint64{1, 2})
			}
		}
		q.Drain()
	})
	if got.Load() != p-1 {
		t.Fatalf("got %d, want %d", got.Load(), p-1)
	}
}

func TestDrainManySmallPhases(t *testing.T) {
	// Rapid-fire drains with sparse traffic catch stale-round bugs in the
	// probe/reply protocol.
	const p = 5
	var total atomic.Int64
	runCluster(t, p, 4, false, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(int, []uint64) { total.Add(1) })
		for round := 0; round < 20; round++ {
			if rank == round%p {
				q.Send(0, (rank+1)%p, []uint64{uint64(round)})
			}
			q.Drain()
		}
	})
	if total.Load() != 20 {
		t.Fatalf("total = %d, want 20", total.Load())
	}
}

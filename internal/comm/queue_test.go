package comm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/transport"
)

// runCluster spawns p goroutines with a Comm+Queue each and waits for all.
func runCluster(t *testing.T, p int, threshold int, indirect bool, body func(rank int, c *Comm, q *Queue)) []Metrics {
	t.Helper()
	net := transport.NewChanNetwork(p)
	defer net.Close()
	metrics := make([]Metrics, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		ep, err := net.Endpoint(rank)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(rank int, ep transport.Endpoint) {
			defer wg.Done()
			c := New(ep)
			var grid *Grid
			if indirect {
				grid = NewGrid(p)
			}
			q := NewQueue(c, threshold, grid)
			body(rank, c, q)
			metrics[rank] = c.M
		}(rank, ep)
	}
	wg.Wait()
	return metrics
}

func TestQueueDeliversAllRecordsExactlyOnce(t *testing.T) {
	for _, indirect := range []bool{false, true} {
		for _, p := range []int{2, 3, 7, 16} {
			const perPair = 20
			received := make([]map[uint64]int, p)
			runCluster(t, p, 64, indirect, func(rank int, c *Comm, q *Queue) {
				recv := make(map[uint64]int)
				received[rank] = recv
				q.Handle(0, func(src int, words []uint64) {
					for _, w := range words {
						recv[w]++
					}
				})
				c.Barrier()
				for dst := 0; dst < p; dst++ {
					if dst == rank {
						continue
					}
					for k := 0; k < perPair; k++ {
						// Unique tokens: sender, dst, k.
						token := uint64(rank)<<32 | uint64(dst)<<16 | uint64(k)
						q.Send(0, dst, []uint64{token})
					}
				}
				q.Drain()
			})
			for dst := 0; dst < p; dst++ {
				wantTotal := (p - 1) * perPair
				total := 0
				for token, cnt := range received[dst] {
					if cnt != 1 {
						t.Fatalf("p=%d indirect=%v: token %x delivered %d times", p, indirect, token, cnt)
					}
					if int(token>>16&0xffff) != dst {
						t.Fatalf("token %x delivered to wrong PE %d", token, dst)
					}
					total++
				}
				if total != wantTotal {
					t.Fatalf("p=%d indirect=%v: PE %d got %d records, want %d", p, indirect, dst, total, wantTotal)
				}
			}
		}
	}
}

func TestQueueSelfSendDispatchesInline(t *testing.T) {
	runCluster(t, 2, 0, false, func(rank int, c *Comm, q *Queue) {
		got := 0
		q.Handle(0, func(src int, words []uint64) {
			if src != rank {
				t.Errorf("self-send src = %d", src)
			}
			got += len(words)
		})
		q.Send(0, rank, []uint64{1, 2, 3})
		if got != 3 {
			t.Errorf("self send delivered %d words", got)
		}
		q.Drain()
	})
}

func TestQueueThresholdControlsFlushes(t *testing.T) {
	// A tiny threshold flushes per record; a huge one flushes only at Drain.
	counts := map[int]int64{}
	for _, threshold := range []int{1, 1 << 20} {
		ms := runCluster(t, 2, threshold, false, func(rank int, c *Comm, q *Queue) {
			q.Handle(0, func(int, []uint64) {})
			if rank == 0 {
				for i := 0; i < 100; i++ {
					q.Send(0, 1, []uint64{uint64(i)})
				}
			}
			q.Drain()
		})
		counts[threshold] = ms[0].SentFrames
	}
	if counts[1] < 100 {
		t.Fatalf("tiny threshold sent %d frames, want >= 100", counts[1])
	}
	if counts[1<<20] != 1 {
		t.Fatalf("huge threshold sent %d frames, want exactly 1", counts[1<<20])
	}
}

func TestQueuePeakBufferedRespectsThreshold(t *testing.T) {
	ms := runCluster(t, 2, 256, false, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(int, []uint64) {})
		if rank == 0 {
			for i := 0; i < 1000; i++ {
				q.Send(0, 1, []uint64{uint64(i), uint64(i), uint64(i)})
			}
		}
		q.Drain()
	})
	// Peak may exceed the threshold by at most one record (checked after
	// append), never by an unbounded amount.
	if ms[0].PeakBuffered > 256+16 {
		t.Fatalf("peak buffered %d greatly exceeds threshold", ms[0].PeakBuffered)
	}
}

func TestQueueHandlerTriggersReplies(t *testing.T) {
	// Request/reply inside a single Drain (the sparse all-to-all pattern).
	const p = 5
	replies := make([]int, p)
	runCluster(t, p, 32, false, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(src int, words []uint64) {
			q.Send(1, src, []uint64{words[0] * 2})
		})
		q.Handle(1, func(src int, words []uint64) {
			replies[rank] += int(words[0])
		})
		c.Barrier()
		for dst := 0; dst < p; dst++ {
			if dst != rank {
				q.Send(0, dst, []uint64{uint64(rank)})
			}
		}
		q.Drain()
	})
	for rank, got := range replies {
		if got != 2*rank*(p-1) {
			t.Fatalf("PE %d got reply sum %d, want %d", rank, got, 2*rank*(p-1))
		}
	}
}

func TestQueueMultipleDrains(t *testing.T) {
	const p = 4
	var sums [p]uint64
	runCluster(t, p, 16, true, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(src int, words []uint64) { sums[rank] += words[0] })
		for round := 0; round < 5; round++ {
			dst := (rank + 1 + round) % p
			if dst != rank {
				q.Send(0, dst, []uint64{1})
			}
			q.Drain()
		}
	})
	var total uint64
	for _, s := range sums {
		total += s
	}
	// 5 rounds × p senders, minus self-sends (when dst == rank).
	var want uint64
	for round := 0; round < 5; round++ {
		for rank := 0; rank < p; rank++ {
			if (rank+1+round)%p != rank {
				want++
			}
		}
	}
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestQueuePayloadConservation(t *testing.T) {
	// Total payload received must equal total payload sent, and with
	// indirection the transport words must exceed the payload words.
	const p = 9
	var recvWords [p]int64
	ms := runCluster(t, p, 128, true, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(src int, words []uint64) { recvWords[rank] += int64(len(words)) })
		c.Barrier()
		for dst := 0; dst < p; dst++ {
			if dst != rank {
				q.Send(0, dst, []uint64{1, 2, 3, 4, 5})
			}
		}
		q.Drain()
	})
	var sentPayload, gotPayload, transported int64
	for i := 0; i < p; i++ {
		sentPayload += ms[i].PayloadWords
		gotPayload += recvWords[i]
		transported += ms[i].SentWords
	}
	if sentPayload != gotPayload {
		t.Fatalf("payload conservation violated: sent %d, received %d", sentPayload, gotPayload)
	}
	if transported <= sentPayload {
		t.Fatalf("indirection should transport more words than payload: %d vs %d", transported, sentPayload)
	}
}

func TestQueueBufferReuseAcrossFlushCycles(t *testing.T) {
	// Per-destination buffers are retained (truncated to the tag word) after
	// every flush; many flush cycles with distinct payloads must still
	// deliver every record intact and exactly once.
	const p = 4
	const rounds = 50
	sums := make([]uint64, p)
	counts := make([]int, p)
	runCluster(t, p, 1, false, func(rank int, c *Comm, q *Queue) { // threshold 1: flush every record
		q.Handle(0, func(src int, words []uint64) {
			sums[rank] += words[0]
			counts[rank]++
		})
		c.Barrier()
		for r := 0; r < rounds; r++ {
			for dst := 0; dst < p; dst++ {
				if dst != rank {
					q.Send(0, dst, []uint64{uint64(rank*rounds + r)})
				}
			}
		}
		q.Drain()
	})
	for rank := 0; rank < p; rank++ {
		if counts[rank] != (p-1)*rounds {
			t.Fatalf("PE %d got %d records, want %d", rank, counts[rank], (p-1)*rounds)
		}
		var want uint64
		for src := 0; src < p; src++ {
			if src == rank {
				continue
			}
			for r := 0; r < rounds; r++ {
				want += uint64(src*rounds + r)
			}
		}
		if sums[rank] != want {
			t.Fatalf("PE %d sum = %d, want %d (buffer reuse corrupted payloads)", rank, sums[rank], want)
		}
	}
}

func TestPinPayloadKeepsArenaAlive(t *testing.T) {
	// A handler that hands its payload to another goroutine must pin the
	// decode arena; the pinned slice must stay intact while many further
	// frames are decoded (which recycles unpinned arenas), and release must
	// return the arena to the pool.
	const keep = 5
	type pinned struct {
		words   []uint64
		release func()
		want    uint64
	}
	var kept []pinned
	runCluster(t, 2, 1, false, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(src int, words []uint64) {
			if len(kept) < keep {
				kept = append(kept, pinned{words: words, release: q.PinPayload(), want: words[0]})
			}
		})
		c.Barrier()
		if rank == 0 {
			for i := 0; i < 500; i++ {
				q.Send(0, 1, []uint64{uint64(1000 + i), uint64(i)})
			}
		}
		q.Drain()
	})
	if len(kept) != keep {
		t.Fatalf("kept %d payloads, want %d", len(kept), keep)
	}
	for i, pn := range kept {
		if pn.words[0] != pn.want {
			t.Fatalf("pinned payload %d corrupted: got %d, want %d", i, pn.words[0], pn.want)
		}
		pn.release()
	}
}

func TestPinPayloadOutsideHandlerIsNoop(t *testing.T) {
	runCluster(t, 1, 0, false, func(rank int, c *Comm, q *Queue) {
		release := q.PinPayload()
		release() // must not panic or touch any arena
	})
}

func TestPinPayloadOnSelfSendIsNoop(t *testing.T) {
	// Local dispatch passes the caller's slice, not an arena; pinning must
	// hand back a no-op release.
	runCluster(t, 1, 0, false, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(src int, words []uint64) {
			release := q.PinPayload()
			release()
		})
		q.Send(0, rank, []uint64{7})
		q.Drain()
	})
}

func TestPinPayloadOnNestedSelfSendIsNoop(t *testing.T) {
	// A handler that self-sends mid-dispatch nests a local dispatch inside a
	// frame dispatch; the nested handler's PinPayload must see no arena (its
	// payload aliases the sender's slice, which an arena pin would not
	// protect), and the outer frame's arena must survive the nesting: many
	// outer records each pin, nest, and verify their payload afterwards.
	const records = 200
	got := 0
	runCluster(t, 2, 1, false, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(src int, words []uint64) {
			outer := q.PinPayload()
			q.Send(1, rank, []uint64{words[0] * 2}) // nested local dispatch
			if words[0] >= records {
				t.Errorf("outer payload corrupted after nested dispatch: %d", words[0])
			}
			outer()
		})
		q.Handle(1, func(src int, words []uint64) {
			release := q.PinPayload() // must be the no-op, not the outer arena
			release()
			release() // double release of the no-op must be harmless
			got++
		})
		c.Barrier()
		if rank == 0 {
			for i := 0; i < records; i++ {
				q.Send(0, 1, []uint64{uint64(i)})
			}
		}
		q.Drain()
	})
	if got != records {
		t.Fatalf("nested handler ran %d times, want %d", got, records)
	}
}

func TestQueueUnknownChannelPanics(t *testing.T) {
	runCluster(t, 1, 0, false, func(rank int, c *Comm, q *Queue) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for unhandled channel")
			}
		}()
		q.Send(3, 0, []uint64{1})
	})
}

func TestQueueChannelRangePanics(t *testing.T) {
	runCluster(t, 1, 0, false, func(rank int, c *Comm, q *Queue) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range channel")
			}
		}()
		q.Send(MaxChannels, 0, []uint64{1})
	})
}

func TestDrainOnEmptyQueue(t *testing.T) {
	// Draining with no traffic at all must terminate.
	for _, p := range []int{1, 2, 5} {
		runCluster(t, p, 0, false, func(rank int, c *Comm, q *Queue) {
			q.Drain()
			q.Drain()
		})
	}
}

func TestStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Heavy random traffic with forwarding, small threshold, odd PE count.
	const p = 11
	var got [p]uint64
	runCluster(t, p, 7, true, func(rank int, c *Comm, q *Queue) {
		q.Handle(0, func(src int, words []uint64) {
			for _, w := range words {
				got[rank] += w
			}
		})
		c.Barrier()
		seed := uint64(rank + 1)
		for i := 0; i < 5000; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			dst := int(seed>>33) % p
			if dst != rank {
				q.Send(0, dst, []uint64{1})
			}
		}
		q.Drain()
	})
	var total uint64
	for _, g := range got {
		total += g
	}
	if total == 0 {
		t.Fatal("no traffic delivered")
	}
}

func ExampleQueue() {
	net := transport.NewChanNetwork(2)
	defer net.Close()
	var wg sync.WaitGroup
	out := make(chan string, 1)
	for rank := 0; rank < 2; rank++ {
		ep, _ := net.Endpoint(rank)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := New(ep)
			q := NewQueue(c, 0, nil)
			q.Handle(0, func(src int, words []uint64) {
				out <- fmt.Sprintf("PE %d got %v from PE %d", c.Rank(), words, src)
			})
			if rank == 0 {
				q.Send(0, 1, []uint64{42})
			}
			q.Drain()
		}(rank)
	}
	wg.Wait()
	fmt.Println(<-out)
	// Output: PE 1 got [42] from PE 0
}

// TestQueueSetThreshold pins the δ accessors the streaming driver relies on:
// each PE retunes its own δ after the resident size is known, mid-session,
// and later drain cycles must honor the new overflow boundary.
func TestQueueSetThreshold(t *testing.T) {
	const p = 3
	runCluster(t, p, 8, false, func(rank int, c *Comm, q *Queue) {
		if got := q.Threshold(); got != 8 {
			t.Errorf("rank %d: initial threshold %d, want 8", rank, got)
		}
		q.SetThreshold(100 * (rank + 1)) // per-PE δ values may differ
		if got := q.Threshold(); got != 100*(rank+1) {
			t.Errorf("rank %d: threshold %d after set, want %d", rank, got, 100*(rank+1))
		}
		q.SetThreshold(0) // clamped: δ < 1 would flush forever
		if got := q.Threshold(); got != 1 {
			t.Errorf("rank %d: threshold %d after clamp, want 1", rank, got)
		}
		q.SetThreshold(4)

		// Repeated drain cycles with the retuned δ: the streaming driver runs
		// one Drain per inserted batch on the same queue, so records must keep
		// flowing after each quiescence point.
		var got []uint64
		q.Handle(1, func(src int, words []uint64) { got = append(got, words...) })
		c.Barrier()
		for cycle := 0; cycle < 5; cycle++ {
			got = got[:0]
			for dst := 0; dst < p; dst++ {
				if dst != rank {
					q.Send(1, dst, []uint64{uint64(cycle)<<8 | uint64(rank)})
				}
			}
			q.Drain()
			if len(got) != p-1 {
				t.Errorf("rank %d cycle %d: received %d records, want %d", rank, cycle, len(got), p-1)
			}
			for _, w := range got {
				if int(w>>8) != cycle {
					t.Errorf("rank %d cycle %d: stale record %#x", rank, cycle, w)
				}
			}
			c.Barrier()
		}
	})
}

package comm

import (
	"slices"
	"sync"
	"testing"

	"repro/internal/transport"
)

func TestGroupValidation(t *testing.T) {
	runComms(t, 4, func(rank int, c *Comm) {
		if _, err := c.NewGroup(1<<16, []int{0, 1, 2, 3}); err == nil {
			t.Error("want error for oversized gid")
		}
		if _, err := c.NewGroup(0, nil); err == nil {
			t.Error("want error for empty member list")
		}
		if _, err := c.NewGroup(0, []int{0, 2, 1, 3}); err == nil {
			t.Error("want error for unsorted members")
		}
		if _, err := c.NewGroup(0, []int{0, 1, 2, 9}); err == nil {
			t.Error("want error for out-of-range member")
		}
		others := []int{(rank + 1) % 4, (rank + 2) % 4}
		slices.Sort(others)
		if _, err := c.NewGroup(0, others); err == nil {
			t.Error("want error when the caller is not a member")
		}
		g, err := c.NewGroup(7, []int{0, 1, 2, 3})
		if err != nil {
			t.Fatalf("valid group rejected: %v", err)
		}
		if g.Size() != 4 || g.Index() != rank {
			t.Errorf("size=%d index=%d, want 4/%d", g.Size(), g.Index(), rank)
		}
	})
}

// TestGroupBcast: every root in turn, over a strict subset of the ranks, for
// both codecs; non-members stay silent.
func TestGroupBcast(t *testing.T) {
	const p = 5
	members := []int{0, 2, 4} // strict subset: ranks 1 and 3 sit out
	for _, codec := range []Codec{Raw, Varint} {
		results := make([][][]uint64, p)
		runComms(t, p, func(rank int, c *Comm) {
			if !slices.Contains(members, rank) {
				return
			}
			g, err := c.NewGroup(3, members)
			if err != nil {
				t.Error(err)
				return
			}
			results[rank] = make([][]uint64, g.Size())
			for root := 0; root < g.Size(); root++ {
				payload := []uint64{uint64(root) * 100, 7, uint64(root)}
				if g.Index() == root {
					results[rank][root] = slices.Clone(g.Bcast(root, payload, codec))
				} else {
					buf := g.Bcast(root, nil, codec)
					results[rank][root] = slices.Clone(buf)
					g.Recycle(buf)
				}
			}
		})
		for _, rank := range members {
			for root := 0; root < len(members); root++ {
				want := []uint64{uint64(root) * 100, 7, uint64(root)}
				if !slices.Equal(results[rank][root], want) {
					t.Fatalf("rank %d root %d: got %v, want %v", rank, root, results[rank][root], want)
				}
			}
		}
	}
}

// TestGroupBcastMeteredAsData: the root's traffic lands in the data
// counters (frames, payload, encoded bytes) and the receivers charge
// RecvEncodedBytes — the fields the 2D wire-volume lens reads.
func TestGroupBcastMeteredAsData(t *testing.T) {
	const p = 3
	var ms [p]Metrics
	runComms(t, p, func(rank int, c *Comm) {
		g, err := c.NewGroup(0, []int{0, 1, 2})
		if err != nil {
			t.Error(err)
			return
		}
		g.Bcast(0, []uint64{1, 2, 3, 4}, Varint)
		ms[rank] = c.M
	})
	root := ms[0]
	if root.SentFrames != 2 || root.PayloadWords != 8 || root.EncodedBytes == 0 {
		t.Fatalf("root metrics: %+v", root)
	}
	if root.SentWords != 2*(1+4) {
		t.Fatalf("root raw words %d, want %d", root.SentWords, 2*(1+4))
	}
	for rank := 1; rank < p; rank++ {
		m := ms[rank]
		if m.RecvFrames != 1 || m.RecvWords != 1+4 || m.RecvEncodedBytes == 0 {
			t.Fatalf("rank %d metrics: %+v", rank, m)
		}
		if m.RecvEncodedBytes != root.EncodedBytes/2 {
			t.Fatalf("rank %d recv encoded %d, root sent %d per dst", rank, m.RecvEncodedBytes, root.EncodedBytes/2)
		}
	}
}

func TestGroupAllgather(t *testing.T) {
	const p = 4
	results := make([][][]uint64, p)
	runComms(t, p, func(rank int, c *Comm) {
		g, err := c.NewGroup(9, []int{0, 1, 2, 3})
		if err != nil {
			t.Error(err)
			return
		}
		results[rank] = g.Allgather([]uint64{uint64(rank), uint64(rank * rank)}, Varint)
	})
	for rank := 0; rank < p; rank++ {
		for src := 0; src < p; src++ {
			want := []uint64{uint64(src), uint64(src * src)}
			if !slices.Equal(results[rank][src], want) {
				t.Fatalf("rank %d from %d: %v, want %v", rank, src, results[rank][src], want)
			}
		}
	}
}

// TestGroupRowColInterleaved runs the tk2d communication pattern on a 2×2
// grid: every PE is in one row group and one column group, and the two
// broadcast streams interleave without stealing each other's frames (the
// demultiplexing the 16-bit group ID in the tag exists for).
func TestGroupRowColInterleaved(t *testing.T) {
	const q = 2
	const p = q * q
	const rounds = 3
	type got struct{ row, col [rounds][]uint64 }
	results := make([]got, p)
	runComms(t, p, func(rank int, c *Comm) {
		r, cc := rank/q, rank%q
		rowGrp, err := c.NewGroup(uint64(r), []int{r * q, r*q + 1})
		if err != nil {
			t.Error(err)
			return
		}
		colGrp, err := c.NewGroup(uint64(q+cc), []int{cc, q + cc})
		if err != nil {
			t.Error(err)
			return
		}
		for k := 0; k < rounds; k++ {
			root := k % q
			rowPay := []uint64{uint64(1000*r + 10*k)}
			colPay := []uint64{uint64(5000*cc + 10*k)}
			var rw, cw []uint64
			if rowGrp.Index() == root {
				rw = rowGrp.Bcast(root, rowPay, Varint)
			} else {
				rw = rowGrp.Bcast(root, nil, Varint)
			}
			if colGrp.Index() == root {
				cw = colGrp.Bcast(root, colPay, Varint)
			} else {
				cw = colGrp.Bcast(root, nil, Varint)
			}
			results[rank].row[k] = slices.Clone(rw)
			results[rank].col[k] = slices.Clone(cw)
			if rowGrp.Index() != root {
				rowGrp.Recycle(rw)
			}
			if colGrp.Index() != root {
				colGrp.Recycle(cw)
			}
		}
	})
	for rank := 0; rank < p; rank++ {
		r, cc := rank/q, rank%q
		for k := 0; k < rounds; k++ {
			// Every member of row group r carries grid row r, and every member
			// of column group cc carries column cc, so the expected payloads
			// depend only on the group — any cross-group frame theft would
			// surface as the other stream's value.
			wantRow := []uint64{uint64(1000*r + 10*k)}
			wantCol := []uint64{uint64(5000*cc + 10*k)}
			if !slices.Equal(results[rank].row[k], wantRow) {
				t.Fatalf("rank %d round %d row: %v, want %v", rank, k, results[rank].row[k], wantRow)
			}
			if !slices.Equal(results[rank].col[k], wantCol) {
				t.Fatalf("rank %d round %d col: %v, want %v", rank, k, results[rank].col[k], wantCol)
			}
		}
	}
}

// TestGroupIBcastPipelinedInterleaved is the tag-safety property test for
// the split-phase exchange: on a rectangular 2×3 grid every PE keeps the
// round-(k+1) row AND column broadcasts in flight while consuming round k,
// over a network that holds data frames back for many Recv polls while
// letting control (word) frames overtake them — a Barrier runs between post
// and completion every round, so barrier traffic passes the delayed
// payloads. Any tag confusion (across rounds, across the row/col streams,
// or with the barrier) would surface as a wrong or misordered payload.
func TestGroupIBcastPipelinedInterleaved(t *testing.T) {
	const r, c = 2, 3
	const p = r * c
	const rounds = 6
	for _, delay := range []int{3, 40} {
		net := &delayNet{inner: transport.NewChanNetwork(p), delay: delay}
		type got struct{ row, col [rounds][]uint64 }
		results := make([]got, p)
		var wg sync.WaitGroup
		for rank := 0; rank < p; rank++ {
			ep, err := net.Endpoint(rank)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(rank int, ep transport.Endpoint) {
				defer wg.Done()
				cm := New(ep)
				a, b := rank/c, rank%c
				rowGrp, err := cm.NewGroup(uint64(a), []int{a * c, a*c + 1, a*c + 2})
				if err != nil {
					t.Error(err)
					return
				}
				colGrp, err := cm.NewGroup(uint64(r+b), []int{b, c + b})
				if err != nil {
					t.Error(err)
					return
				}
				post := func(k int) (BcastOp, BcastOp) {
					rowRoot, colRoot := k%c, k%r
					var rowPay, colPay []uint64
					if rowGrp.Index() == rowRoot {
						rowPay = []uint64{uint64(1000*a + k), uint64(k)}
					}
					if colGrp.Index() == colRoot {
						colPay = []uint64{uint64(5000*b + k)}
					}
					return rowGrp.IBcast(rowRoot, rowPay, Varint), colGrp.IBcast(colRoot, colPay, Varint)
				}
				rowOp, colOp := post(0)
				for k := 0; k < rounds; k++ {
					var nextRow, nextCol BcastOp
					if k+1 < rounds {
						nextRow, nextCol = post(k + 1) // round k+1 in flight behind round k
					}
					cm.Barrier() // control frames overtake the held data frames
					rw, cw := rowOp.Wait(), colOp.Wait()
					results[rank].row[k] = slices.Clone(rw)
					results[rank].col[k] = slices.Clone(cw)
					if rowGrp.Index() != k%c {
						rowGrp.Recycle(rw)
					}
					if colGrp.Index() != k%r {
						colGrp.Recycle(cw)
					}
					rowOp, colOp = nextRow, nextCol
				}
			}(rank, ep)
		}
		wg.Wait()
		net.Close()
		for rank := 0; rank < p; rank++ {
			a, b := rank/c, rank%c
			for k := 0; k < rounds; k++ {
				wantRow := []uint64{uint64(1000*a + k), uint64(k)}
				wantCol := []uint64{uint64(5000*b + k)}
				if !slices.Equal(results[rank].row[k], wantRow) {
					t.Fatalf("delay=%d rank %d round %d row: %v, want %v", delay, rank, k, results[rank].row[k], wantRow)
				}
				if !slices.Equal(results[rank].col[k], wantCol) {
					t.Fatalf("delay=%d rank %d round %d col: %v, want %v", delay, rank, k, results[rank].col[k], wantCol)
				}
			}
		}
	}
}

func TestGroupSize1(t *testing.T) {
	runComms(t, 1, func(rank int, c *Comm) {
		g, err := c.NewGroup(0, []int{0})
		if err != nil {
			t.Error(err)
			return
		}
		words := []uint64{4, 5, 6}
		if got := g.Bcast(0, words, Varint); !slices.Equal(got, words) {
			t.Errorf("size-1 bcast: %v", got)
		}
		op := g.IBcast(0, words, Varint)
		if got := op.Wait(); !slices.Equal(got, words) {
			t.Errorf("size-1 ibcast: %v", got)
		}
		all := g.Allgather(words, Varint)
		if len(all) != 1 || !slices.Equal(all[0], words) {
			t.Errorf("size-1 allgather: %v", all)
		}
		if c.M.SentFrames != 0 {
			t.Errorf("size-1 group communicated: %+v", c.M)
		}
	})
}

// BenchmarkGroupBcastSteadyState is the allocation gate for the collective
// exchange: one op is a root→member block broadcast plus a member→root ack
// broadcast on the same group (the lock-step keeps the inbox bounded). After
// warmup grows the root's encode scratch, the pooled decode buffers, and
// the frame pool, both sides must run at 0 allocs/op.
func BenchmarkGroupBcastSteadyState(b *testing.B) {
	net := transport.NewChanNetwork(2)
	defer net.Close()
	eps := make([]transport.Endpoint, 2)
	for rank := range eps {
		ep, err := net.Endpoint(rank)
		if err != nil {
			b.Fatal(err)
		}
		eps[rank] = ep
	}
	const stopWord = ^uint64(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := New(eps[1])
		g, err := c.NewGroup(1, []int{0, 1})
		if err != nil {
			panic(err)
		}
		ack := []uint64{1}
		for {
			buf := g.Bcast(0, nil, Varint)
			done := len(buf) > 0 && buf[0] == stopWord
			g.Recycle(buf)
			g.Bcast(1, ack, Varint)
			if done {
				return
			}
		}
	}()
	c := New(eps[0])
	g, err := c.NewGroup(1, []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	// A block-shaped payload: row records with gap-differenced entries, the
	// wire form AppendWire produces.
	payload := make([]uint64, 512)
	for i := range payload {
		payload[i] = uint64(i%37) + 1
	}
	round := func(words []uint64) {
		g.Bcast(0, words, Varint)
		ackBuf := g.Bcast(1, nil, Varint)
		g.Recycle(ackBuf)
	}
	for i := 0; i < 16; i++ {
		round(payload) // warmup: grow scratch, decode buffers, frame pool
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round(payload)
	}
	b.StopTimer()
	round([]uint64{stopWord})
	wg.Wait()
}

// BenchmarkIBcastSteadyState gates the split-phase path: each op posts the
// data broadcast and the reverse ack broadcast before completing either —
// two collectives in flight per iteration, value-typed handles, pooled
// decode buffers — and must run at 0 allocs/op on both sides once warm.
func BenchmarkIBcastSteadyState(b *testing.B) {
	net := transport.NewChanNetwork(2)
	defer net.Close()
	eps := make([]transport.Endpoint, 2)
	for rank := range eps {
		ep, err := net.Endpoint(rank)
		if err != nil {
			b.Fatal(err)
		}
		eps[rank] = ep
	}
	const stopWord = ^uint64(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := New(eps[1])
		g, err := c.NewGroup(1, []int{0, 1})
		if err != nil {
			panic(err)
		}
		ack := []uint64{1}
		for {
			op := g.IBcast(0, nil, Varint)
			ackOp := g.IBcast(1, ack, Varint)
			buf := op.Wait()
			done := len(buf) > 0 && buf[0] == stopWord
			g.Recycle(buf)
			ackOp.Wait()
			if done {
				return
			}
		}
	}()
	c := New(eps[0])
	g, err := c.NewGroup(1, []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]uint64, 512)
	for i := range payload {
		payload[i] = uint64(i%37) + 1
	}
	round := func(words []uint64) {
		op := g.IBcast(0, words, Varint)
		ackOp := g.IBcast(1, nil, Varint)
		op.Wait()
		ackBuf := ackOp.Wait()
		g.Recycle(ackBuf)
	}
	for i := 0; i < 16; i++ {
		round(payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round(payload)
	}
	b.StopTimer()
	round([]uint64{stopWord})
	wg.Wait()
}

// Package comm implements the paper's communication layer on top of a
// transport: the dynamically buffered message queue with per-destination
// aggregation and threshold δ (§IV-A), grid-based indirect message delivery
// (§IV-B), an asynchronous sparse all-to-all with distributed termination
// detection, dense exchanges, and basic collectives. All traffic is metered
// in messages and machine words, matching the paper's reported quantities,
// and — since data frames are codec-encoded at the flush boundary (see
// codec.go) — in raw vs encoded bytes on the wire.
package comm

// Metrics counts one PE's communication. Frames and words are transport
// level (including forwarding hops under indirection, exactly like the
// paper's measured traffic); PayloadWords is the algorithm-level record
// volume. Control traffic (termination probes, collectives) is kept in a
// separate counter so the algorithm numbers stay clean.
type Metrics struct {
	SentFrames   int64 // data frames handed to the transport
	SentWords    int64 // words in data frames (envelope headers included), pre-encoding
	PayloadWords int64 // algorithm record words (the paper's "volume")
	RawBytes     int64 // data frame bytes before codec encoding (8 × SentWords)
	EncodedBytes int64 // data frame bytes as shipped on the wire (after codec)
	RecvFrames   int64
	RecvWords    int64
	// RecvEncodedBytes is the wire size of data frames received (the receive
	// side of EncodedBytes). In the asynchronous 1D queue receives overlap
	// with compute and only the send side models time; in the 2D collective
	// exchange a PE blocks on its receives, so the cost model's 2D lens
	// (costmodel.TimeWire2D) charges both directions.
	RecvEncodedBytes int64
	Flushes          int64 // buffer flush events
	PeakBuffered     int64 // max words ever buffered at once (queue memory)
	ControlSent      int64 // control frames (probes, collective traffic)
	Peers            int64 // distinct data-frame destinations (O(√p) under grid routing)

	// RecvWorkWords is the receive-side intersection work this PE performed,
	// in words scanned: for every intersection executed on behalf of a
	// received neighborhood record, the lengths of both input lists are
	// added. Unlike wall clocks it is deterministic for a fixed input and
	// schedule-independent, which makes it the per-rank global-phase work
	// metric the placement layer balances (and cmd/placebench reports).
	RecvWorkWords int64

	// Frame-latency calibration samples (costmodel.Calibrate). Every data
	// frame send is timed around the transport call and folded in as one
	// (encoded bytes, ns) sample plus the running sums a closed-form
	// least-squares α+β fit needs. Scalars survive Add/Sub like the other
	// monotone counters, so per-phase deltas calibrate too.
	LatSamples   int64
	LatSumNs     float64 // Σ latency (ns)
	LatSumBytes  float64 // Σ frame size (bytes)
	LatSumNsB    float64 // Σ latency·size
	LatSumBytes2 float64 // Σ size²

	// IdleNs is the time (ns) this PE spent waiting inside Drain/DrainWith
	// with no frame to process and no progress work to steal — the
	// straggler-skew signal the overlapped pipeline exists to shrink.
	IdleNs int64
	// OverlapNs is CPU time (ns) this PE spent on global-phase receive work
	// while it was still emitting shipments — before it entered the final
	// drain, where the barriered path does all of that work. For DITRIC the
	// emission window is the local phase; for CETRIC it is the cut send
	// sweep (its local phase is communication-free). Summed across the
	// worker pool and the funnel, so with Threads > 1 it can legitimately
	// exceed the emission wall time; compare it with other CPU totals, not
	// with phase walls. Recorded by core's overlapped pipeline; zero on the
	// barriered path.
	OverlapNs int64
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.SentFrames += other.SentFrames
	m.SentWords += other.SentWords
	m.PayloadWords += other.PayloadWords
	m.RawBytes += other.RawBytes
	m.EncodedBytes += other.EncodedBytes
	m.RecvFrames += other.RecvFrames
	m.RecvWords += other.RecvWords
	m.RecvEncodedBytes += other.RecvEncodedBytes
	m.Flushes += other.Flushes
	m.ControlSent += other.ControlSent
	m.RecvWorkWords += other.RecvWorkWords
	m.LatSamples += other.LatSamples
	m.LatSumNs += other.LatSumNs
	m.LatSumBytes += other.LatSumBytes
	m.LatSumNsB += other.LatSumNsB
	m.LatSumBytes2 += other.LatSumBytes2
	m.IdleNs += other.IdleNs
	m.OverlapNs += other.OverlapNs
	if other.PeakBuffered > m.PeakBuffered {
		m.PeakBuffered = other.PeakBuffered
	}
	if other.Peers > m.Peers {
		m.Peers = other.Peers
	}
}

// Sub returns m - start for the monotone counters; PeakBuffered keeps m's
// value. Used for per-phase accounting.
func (m Metrics) Sub(start Metrics) Metrics {
	return Metrics{
		SentFrames:       m.SentFrames - start.SentFrames,
		SentWords:        m.SentWords - start.SentWords,
		PayloadWords:     m.PayloadWords - start.PayloadWords,
		RawBytes:         m.RawBytes - start.RawBytes,
		EncodedBytes:     m.EncodedBytes - start.EncodedBytes,
		RecvFrames:       m.RecvFrames - start.RecvFrames,
		RecvWords:        m.RecvWords - start.RecvWords,
		RecvEncodedBytes: m.RecvEncodedBytes - start.RecvEncodedBytes,
		Flushes:          m.Flushes - start.Flushes,
		PeakBuffered:     m.PeakBuffered,
		ControlSent:      m.ControlSent - start.ControlSent,
		Peers:            m.Peers,
		RecvWorkWords:    m.RecvWorkWords - start.RecvWorkWords,
		LatSamples:       m.LatSamples - start.LatSamples,
		LatSumNs:         m.LatSumNs - start.LatSumNs,
		LatSumBytes:      m.LatSumBytes - start.LatSumBytes,
		LatSumNsB:        m.LatSumNsB - start.LatSumNsB,
		LatSumBytes2:     m.LatSumBytes2 - start.LatSumBytes2,
		IdleNs:           m.IdleNs - start.IdleNs,
		OverlapNs:        m.OverlapNs - start.OverlapNs,
	}
}

// Aggregate summarizes per-PE metrics the way the paper reports them:
// maximum outgoing messages over all PEs and bottleneck (max) volume, plus
// totals.
type Aggregate struct {
	TotalFrames       int64
	TotalWords        int64
	TotalPayload      int64
	TotalRawBytes     int64 // pre-encoding data traffic in bytes
	TotalEncodedBytes int64 // on-the-wire data traffic in bytes
	MaxSentFrames     int64 // "sent messages" series of Fig. 5
	MaxSentWords      int64
	MaxPayloadWords   int64 // "bottleneck communication volume" of Fig. 5
	MaxEncodedBytes   int64 // bottleneck wire bytes over PEs
	MaxPeakBuffered   int64 // TriC's OOM indicator
	MaxPeers          int64 // max distinct destinations over PEs
	ControlSent       int64
	TotalIdleNs       int64 // summed drain-wait time over PEs
	MaxIdleNs         int64 // worst PE's drain-wait time (the skew bottleneck)
	TotalOverlapNs    int64 // summed global-phase work done before local completion
	TotalRecvWork     int64 // summed receive-side intersection work (words scanned)
	MaxRecvWork       int64 // worst PE's receive-side work — what placement balances
}

// CompressionRatio returns raw over encoded data bytes (1 when nothing was
// sent or every channel ran the Raw codec's envelope-free equivalent).
func (a Aggregate) CompressionRatio() float64 {
	if a.TotalEncodedBytes == 0 {
		return 1
	}
	return float64(a.TotalRawBytes) / float64(a.TotalEncodedBytes)
}

// AggregateOf folds per-PE metrics.
func AggregateOf(per []Metrics) Aggregate {
	var a Aggregate
	for _, m := range per {
		a.TotalFrames += m.SentFrames
		a.TotalWords += m.SentWords
		a.TotalPayload += m.PayloadWords
		a.TotalRawBytes += m.RawBytes
		a.TotalEncodedBytes += m.EncodedBytes
		a.ControlSent += m.ControlSent
		a.TotalIdleNs += m.IdleNs
		a.TotalOverlapNs += m.OverlapNs
		a.TotalRecvWork += m.RecvWorkWords
		if m.RecvWorkWords > a.MaxRecvWork {
			a.MaxRecvWork = m.RecvWorkWords
		}
		if m.IdleNs > a.MaxIdleNs {
			a.MaxIdleNs = m.IdleNs
		}
		if m.SentFrames > a.MaxSentFrames {
			a.MaxSentFrames = m.SentFrames
		}
		if m.SentWords > a.MaxSentWords {
			a.MaxSentWords = m.SentWords
		}
		if m.EncodedBytes > a.MaxEncodedBytes {
			a.MaxEncodedBytes = m.EncodedBytes
		}
		if m.PayloadWords > a.MaxPayloadWords {
			a.MaxPayloadWords = m.PayloadWords
		}
		if m.PeakBuffered > a.MaxPeakBuffered {
			a.MaxPeakBuffered = m.PeakBuffered
		}
		if m.Peers > a.MaxPeers {
			a.MaxPeers = m.Peers
		}
	}
	return a
}

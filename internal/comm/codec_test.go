package comm

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"testing"

	"repro/internal/transport"
)

func codecs() []Codec { return []Codec{Raw, Varint, DeltaVarint} }

// codecPayloadCases spans the shapes the queue channels actually ship plus
// the degenerate corners the wire format must survive.
func codecPayloadCases() map[string][]uint64 {
	sorted := make([]uint64, 300)
	for i := range sorted {
		sorted[i] = 1_000_000 + 3*uint64(i)
	}
	random := make([]uint64, 97)
	seed := uint64(12345)
	for i := range random {
		seed = seed*6364136223846793005 + 1442695040888963407
		random[i] = seed
	}
	return map[string][]uint64{
		"empty":        {},
		"single-zero":  {0},
		"single-max":   {math.MaxUint64},
		"all-max":      {math.MaxUint64, math.MaxUint64, math.MaxUint64},
		"wraparound":   {math.MaxUint64, 0, math.MaxUint64, 1},
		"descending":   {100, 50, 10, 0},
		"sorted-row":   sorted,
		"random-words": random,
		"repeats":      {7, 7, 7, 7, 7, 7},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		for name, words := range codecPayloadCases() {
			t.Run(c.Name()+"/"+name, func(t *testing.T) {
				enc := c.AppendEncoded(nil, words)
				dec, err := c.AppendDecoded(nil, enc)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if !slices.Equal(dec, words) {
					t.Fatalf("round trip mismatch: got %v, want %v", dec, words)
				}
				// Appending must not disturb a pre-filled destination.
				prefix := []uint64{42}
				dec2, err := c.AppendDecoded(prefix, enc)
				if err != nil {
					t.Fatal(err)
				}
				if dec2[0] != 42 || !slices.Equal(dec2[1:], words) {
					t.Fatalf("append decode clobbered destination: %v", dec2)
				}
			})
		}
	}
}

func TestCodecByName(t *testing.T) {
	for _, c := range codecs() {
		got, err := CodecByName(c.Name())
		if err != nil || got.Name() != c.Name() {
			t.Fatalf("CodecByName(%q) = %v, %v", c.Name(), got, err)
		}
	}
	if _, err := CodecByName("zstd"); err == nil {
		t.Fatal("expected error for unknown codec name")
	}
}

func TestDeltaVarintCompressesSortedRows(t *testing.T) {
	// A clustered sorted adjacency row must shrink well below raw and below
	// plain varint (the whole point of the codec layer).
	row := make([]uint64, 256)
	for i := range row {
		row[i] = 1 << 40 // large base: varint alone cannot win
	}
	for i := 1; i < len(row); i++ {
		row[i] = row[i-1] + uint64(1+i%7)
	}
	raw := len(Raw.AppendEncoded(nil, row))
	vi := len(Varint.AppendEncoded(nil, row))
	dv := len(DeltaVarint.AppendEncoded(nil, row))
	if dv*4 > raw {
		t.Fatalf("delta-varint %dB vs raw %dB: expected >=4x on clustered rows", dv, raw)
	}
	if dv >= vi {
		t.Fatalf("delta-varint %dB should beat plain varint %dB on sorted rows", dv, vi)
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	if _, err := Raw.AppendDecoded(nil, []byte{1, 2, 3}); err == nil {
		t.Error("raw: want error for length not a multiple of 8")
	}
	// A lone continuation byte is a truncated varint.
	if _, err := Varint.AppendDecoded(nil, []byte{0x80}); err == nil {
		t.Error("varint: want error for truncated input")
	}
	if _, err := DeltaVarint.AppendDecoded(nil, []byte{0x80}); err == nil {
		t.Error("deltavarint: want error for truncated input")
	}
	if _, err := DeltaVarint.AppendDecoded(nil, []byte{1, 0x80}); err == nil {
		t.Error("deltavarint: want error for truncated delta")
	}
}

// FuzzCodecRoundTrip feeds arbitrary byte strings reinterpreted as word
// payloads through every codec and demands exact reconstruction.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("sorted rows compress, random ones must still round trip"))
	f.Fuzz(func(t *testing.T, data []byte) {
		words := make([]uint64, 0, len(data)/8+1)
		for i := 0; i+8 <= len(data); i += 8 {
			var w uint64
			for j := 0; j < 8; j++ {
				w |= uint64(data[i+j]) << (8 * j)
			}
			words = append(words, w)
		}
		for _, c := range codecs() {
			enc := c.AppendEncoded(nil, words)
			dec, err := c.AppendDecoded(nil, enc)
			if err != nil {
				t.Fatalf("%s: decode own encoding: %v", c.Name(), err)
			}
			if !slices.Equal(dec, words) {
				t.Fatalf("%s: round trip mismatch", c.Name())
			}
		}
	})
}

// runClusterOn is runCluster over an arbitrary transport network, so the
// same queue traffic can be driven over the in-process and the TCP wire.
func runClusterOn(t *testing.T, net transport.Network, p, threshold int, indirect bool,
	setup func(q *Queue), body func(rank int, c *Comm, q *Queue)) []Metrics {
	t.Helper()
	metrics := make([]Metrics, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		ep, err := net.Endpoint(rank)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(rank int, ep transport.Endpoint) {
			defer wg.Done()
			c := New(ep)
			var grid *Grid
			if indirect {
				grid = NewGrid(p)
			}
			q := NewQueue(c, threshold, grid)
			setup(q)
			body(rank, c, q)
			metrics[rank] = c.M
		}(rank, ep)
	}
	wg.Wait()
	return metrics
}

// TestQueueCodecRoundTripOverTransports ships every payload corner case on
// per-channel codecs over both the chan and the TCP transport, with and
// without grid indirection (the proxy re-encode path), and checks exact
// delivery.
func TestQueueCodecRoundTripOverTransports(t *testing.T) {
	const p = 4
	networks := map[string]func() (transport.Network, error){
		"chan": func() (transport.Network, error) { return transport.NewChanNetwork(p), nil },
		"tcp":  func() (transport.Network, error) { return transport.NewLoopbackTCPNetwork(p) },
	}
	cases := codecPayloadCases()
	caseNames := make([]string, 0, len(cases))
	for name := range cases {
		caseNames = append(caseNames, name)
	}
	slices.Sort(caseNames)

	for netName, mk := range networks {
		for _, indirect := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/indirect=%v", netName, indirect), func(t *testing.T) {
				net, err := mk()
				if err != nil {
					t.Fatal(err)
				}
				defer net.Close()

				// One channel per codec; every payload case travels on all
				// of them between every PE pair.
				chCodecs := []Codec{Raw, Varint, DeltaVarint}
				type key struct {
					ch, src int
					cs      string
				}
				var mu sync.Mutex
				got := make(map[int]map[key][]uint64) // dst -> received

				ms := runClusterOn(t, net, p, 64, indirect, func(q *Queue) {
					for ch, c := range chCodecs {
						q.SetCodec(ch, c)
					}
				}, func(rank int, c *Comm, q *Queue) {
					mu.Lock()
					got[rank] = make(map[key][]uint64)
					mu.Unlock()
					for ch := range chCodecs {
						ch := ch
						q.Handle(ch, func(src int, words []uint64) {
							// First word names the payload case index so the
							// receiver can file it; the rest is the payload.
							cs := caseNames[words[0]]
							mu.Lock()
							got[rank][key{ch, src, cs}] = append([]uint64(nil), words[1:]...)
							mu.Unlock()
						})
					}
					c.Barrier()
					for dst := 0; dst < p; dst++ {
						if dst == rank {
							continue
						}
						for ci, cs := range caseNames {
							for ch := range chCodecs {
								payload := append([]uint64{uint64(ci)}, cases[cs]...)
								q.Send(ch, dst, payload)
							}
						}
					}
					q.Drain()
				})

				for dst := 0; dst < p; dst++ {
					for src := 0; src < p; src++ {
						if src == dst {
							continue
						}
						for _, cs := range caseNames {
							for ch := range chCodecs {
								words, ok := got[dst][key{ch, src, cs}]
								if !ok {
									t.Fatalf("dst %d missing %s from %d on ch %d", dst, cs, src, ch)
								}
								if !slices.Equal(words, cases[cs]) {
									t.Fatalf("dst %d case %s ch %d: got %v want %v", dst, cs, ch, words, cases[cs])
								}
							}
						}
					}
				}
				// Wire accounting must hold on every transport: something was
				// encoded, and raw bytes reflect the word volume exactly.
				for rank, m := range ms {
					if m.EncodedBytes <= 0 || m.RawBytes != 8*m.SentWords {
						t.Fatalf("rank %d: inconsistent wire accounting: %+v", rank, m)
					}
				}
			})
		}
	}
}

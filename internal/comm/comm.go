package comm

import (
	"encoding/binary"
	"errors"
	"runtime"
	"time"

	"repro/internal/transport"
)

// Frame tags (word 0 of every frame). The low 16 bits carry the kind, the
// high 48 bits an epoch or round number, so early arrivals from the next
// collective or probe round are stashed instead of misinterpreted.
const (
	kindData uint64 = iota + 1
	kindProbe
	kindReply
	kindTerm
	kindBarrier
	kindRelease
	kindReduce
	kindBcast
	kindGather
	kindDense
	kindGroup
)

const kindMask = 0xffff

func tag(kind, epoch uint64) uint64 { return kind | epoch<<16 }

// tagOf extracts the demultiplexing tag from either frame shape: word 0 of a
// word frame, the first 8 little-endian bytes of a byte frame.
func tagOf(f transport.Frame) uint64 {
	if f.Bytes != nil {
		return binary.LittleEndian.Uint64(f.Bytes)
	}
	return f.Words[0]
}

// Comm wraps a transport endpoint with tag-based demultiplexing and metering.
// A PE is single-threaded (or funnels communication through one goroutine,
// like MPI's funneled mode), so Comm needs no internal locking.
type Comm struct {
	ep transport.Endpoint
	// stash holds frames that arrived while the PE was waiting for a
	// different tag.
	stash map[uint64][]transport.Frame
	// epochs per collective kind keep successive collectives apart.
	epochs map[uint64]uint64
	// peers tracks distinct data-frame destinations for Metrics.Peers.
	peers map[int]struct{}
	// wordBufs is a free list of decoded-word buffers for the group
	// collectives (Group.Bcast/IBcast): receivers decode into recycled
	// capacity and hand it back via Group.Recycle, so the steady-state
	// exchange allocates nothing — the same discipline Queue keeps for its
	// flush buffers.
	wordBufs [][]uint64

	// Watchdog state (see SetDeadline): progress counts frames ever returned
	// by next; the stall bookkeeping turns a blocking primitive that sees no
	// new frames for longer than deadline into a typed panic instead of an
	// unbounded spin.
	deadline   time.Duration
	progress   int64
	stallMark  int64
	stallSince time.Time

	M Metrics
}

// New wraps an endpoint.
func New(ep transport.Endpoint) *Comm {
	return &Comm{
		ep:     ep,
		stash:  make(map[uint64][]transport.Frame),
		epochs: make(map[uint64]uint64),
		peers:  make(map[int]struct{}),
	}
}

// SetDeadline arms the communication watchdog: any blocking primitive (the
// termination detector inside Drain, every collective) that waits longer
// than d without receiving a single frame fails with a typed error — a
// *WatchdogError, or an *ErrPeerLost when the transport can name a dead peer
// — instead of spinning forever on traffic that will never arrive. d ≤ 0
// (the default) disables the deadline; transport peer-health verdicts are
// still surfaced while waiting either way.
func (c *Comm) SetDeadline(d time.Duration) { c.deadline = d }

// checkStalled is the wait-step guard shared by the termination detector and
// the collectives. Called only on iterations that found no frame, so its
// clock reads are confined to time the PE is idle anyway.
func (c *Comm) checkStalled(where string) {
	if h, ok := c.ep.(transport.HealthReporter); ok {
		if err := h.Health(); err != nil {
			var pd *transport.PeerDownError
			if errors.As(err, &pd) {
				panic(&ErrPeerLost{Rank: pd.Rank, Err: err})
			}
			panic(&ErrPeerLost{Rank: -1, Err: err})
		}
	}
	if c.deadline <= 0 {
		return
	}
	if c.progress != c.stallMark || c.stallSince.IsZero() {
		c.stallMark = c.progress
		c.stallSince = time.Now()
		return
	}
	if waited := time.Since(c.stallSince); waited > c.deadline {
		panic(&WatchdogError{Where: where, Waited: waited})
	}
}

// Rank returns this PE's rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// Size returns the number of PEs.
func (c *Comm) Size() int { return c.ep.Size() }

func (c *Comm) nextEpoch(kind uint64) uint64 {
	e := c.epochs[kind]
	c.epochs[kind] = e + 1
	return e
}

// sendData ships a word-framed data frame (dense exchanges) and meters it;
// word frames hit the wire uncompressed, so encoded equals raw bytes.
func (c *Comm) sendData(dst int, words []uint64) error {
	c.M.SentFrames++
	c.M.SentWords += int64(len(words))
	c.M.RawBytes += int64(8 * len(words))
	c.M.EncodedBytes += int64(8 * len(words))
	t0 := time.Now()
	err := c.ep.Send(dst, words)
	c.noteLatency(8*len(words), time.Since(t0))
	return err
}

// sendDataBytes ships a codec-encoded data frame. rawWords is the frame's
// pre-encoding size in machine words (tag + envelopes + payloads), which
// keeps SentWords — the paper's reported volume — codec-independent while
// EncodedBytes records what actually crossed the wire.
func (c *Comm) sendDataBytes(dst int, frame []byte, rawWords int) error {
	c.M.SentFrames++
	c.M.SentWords += int64(rawWords)
	c.M.RawBytes += int64(8 * rawWords)
	c.M.EncodedBytes += int64(len(frame))
	t0 := time.Now()
	err := c.ep.SendBytes(dst, frame)
	c.noteLatency(len(frame), time.Since(t0))
	return err
}

// noteLatency folds one timed frame send into the calibration accumulators:
// the per-frame latency the transport exposed to this PE (enqueue, framing,
// backpressure) against the frame's wire size, the raw material of
// costmodel.Calibrate's least-squares α+β fit. One sample per flush-level
// frame, so the two clock reads amortize over the δ-sized aggregation
// buffer they time.
func (c *Comm) noteLatency(bytes int, d time.Duration) {
	ns := float64(d.Nanoseconds())
	b := float64(bytes)
	c.M.LatSamples++
	c.M.LatSumNs += ns
	c.M.LatSumBytes += b
	c.M.LatSumNsB += ns * b
	c.M.LatSumBytes2 += b * b
}

// notePeer records a distinct queue-level destination. Only aggregated
// queue traffic counts: the dense collectives legitimately talk to every
// PE, while the grid-indirection claim is about the queue's fan-out.
func (c *Comm) notePeer(dst int) {
	if _, ok := c.peers[dst]; !ok {
		c.peers[dst] = struct{}{}
		c.M.Peers = int64(len(c.peers))
	}
}

// sendControl ships a control frame (probes, collectives); metered
// separately.
func (c *Comm) sendControl(dst int, words []uint64) error {
	c.M.ControlSent++
	return c.ep.Send(dst, words)
}

// next returns a pending frame whose tag satisfies match, consulting the
// stash first, then polling the transport and stashing mismatches. Returns
// ok=false when nothing matching is currently available.
func (c *Comm) next(match func(t uint64) bool) (transport.Frame, bool) {
	for t, fs := range c.stash {
		if match(t) && len(fs) > 0 {
			f := fs[0]
			if len(fs) == 1 {
				delete(c.stash, t)
			} else {
				c.stash[t] = fs[1:]
			}
			c.progress++
			return f, true
		}
	}
	for {
		f, ok := c.ep.Recv()
		if !ok {
			return transport.Frame{}, false
		}
		c.progress++
		t := tagOf(f)
		if match(t) {
			return f, true
		}
		c.stash[t] = append(c.stash[t], f)
	}
}

// wait blocks (cooperatively) until a matching frame arrives, guarded by the
// communication watchdog.
func (c *Comm) wait(match func(t uint64) bool) transport.Frame {
	for {
		if f, ok := c.next(match); ok {
			return f
		}
		c.checkStalled("collective")
		runtime.Gosched()
	}
}

// waitTag blocks until a frame with exactly tag t arrives.
func (c *Comm) waitTag(t uint64) transport.Frame {
	return c.wait(func(x uint64) bool { return x == t })
}

// waitTagIdle is waitTag with the blocked time metered into Metrics.IdleNs —
// the receive-side comm-wait the pipelined 2D exchange is built to hide. The
// fast path (frame already stashed or in the inbox) takes no clock reads.
func (c *Comm) waitTagIdle(t uint64) transport.Frame {
	if f, ok := c.next(func(x uint64) bool { return x == t }); ok {
		return f
	}
	t0 := time.Now()
	f := c.waitTag(t)
	c.M.IdleNs += time.Since(t0).Nanoseconds()
	return f
}

// getWordBuf pops a recycled decode buffer (nil when the free list is dry:
// the codec append grows it to working-set size once).
func (c *Comm) getWordBuf() []uint64 {
	if n := len(c.wordBufs); n > 0 {
		b := c.wordBufs[n-1]
		c.wordBufs = c.wordBufs[:n-1]
		return b
	}
	return nil
}

// recycleWordBuf returns a decode buffer to the free list.
func (c *Comm) recycleWordBuf(b []uint64) {
	if cap(b) > 0 {
		c.wordBufs = append(c.wordBufs, b[:0])
	}
}

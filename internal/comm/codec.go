package comm

import (
	"encoding/binary"
	"fmt"
)

// Wire codecs. A Codec turns one record payload (machine words) into wire
// bytes and back. The queue applies the codec of a record's logical channel
// at flush time — the algorithms above keep producing and consuming plain
// []uint64 payloads — so the only thing a codec changes is the number of
// bytes a frame occupies on the wire (reported as Metrics.EncodedBytes
// against Metrics.RawBytes).
//
// Sender and receiver must agree: every PE of a run has to install the same
// codec on the same channel before any record for it is in flight.
//
// Three codecs are provided:
//
//   - Raw: 8 little-endian bytes per word, the seed wire format.
//   - Varint: LEB128 per word — wins when words are small (degrees, Δ
//     counts, wedge endpoints on small graphs).
//   - DeltaVarint: first word LEB128, every further word as the
//     zigzag-encoded difference to its predecessor — wins big on sorted,
//     clustered sequences like adjacency rows, and stays correct (just not
//     smaller) on arbitrary payloads because the deltas wrap mod 2^64.
type Codec interface {
	// Name returns the codec's stable wire-policy name.
	Name() string
	// AppendEncoded appends the encoding of words to dst and returns it.
	AppendEncoded(dst []byte, words []uint64) []byte
	// AppendDecoded appends the words encoded in data to dst and returns
	// it. data must contain exactly one encoded payload.
	AppendDecoded(dst []uint64, data []byte) ([]uint64, error)
}

// The built-in codecs.
var (
	Raw         Codec = rawCodec{}
	Varint      Codec = varintCodec{}
	DeltaVarint Codec = deltaVarintCodec{}
)

// CodecByName resolves "raw", "varint", or "deltavarint".
func CodecByName(name string) (Codec, error) {
	switch name {
	case "raw":
		return Raw, nil
	case "varint":
		return Varint, nil
	case "deltavarint":
		return DeltaVarint, nil
	default:
		return nil, fmt.Errorf("comm: unknown codec %q (want raw, varint, or deltavarint)", name)
	}
}

type rawCodec struct{}

func (rawCodec) Name() string { return "raw" }

func (rawCodec) AppendEncoded(dst []byte, words []uint64) []byte {
	for _, w := range words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

func (rawCodec) AppendDecoded(dst []uint64, data []byte) ([]uint64, error) {
	if len(data)%8 != 0 {
		return dst, fmt.Errorf("comm: raw payload length %d is not a multiple of 8", len(data))
	}
	for i := 0; i < len(data); i += 8 {
		dst = append(dst, binary.LittleEndian.Uint64(data[i:]))
	}
	return dst, nil
}

type varintCodec struct{}

func (varintCodec) Name() string { return "varint" }

func (varintCodec) AppendEncoded(dst []byte, words []uint64) []byte {
	for _, w := range words {
		dst = binary.AppendUvarint(dst, w)
	}
	return dst
}

func (varintCodec) AppendDecoded(dst []uint64, data []byte) ([]uint64, error) {
	for len(data) > 0 {
		w, n := binary.Uvarint(data)
		if n <= 0 {
			return dst, fmt.Errorf("comm: truncated varint payload")
		}
		data = data[n:]
		dst = append(dst, w)
	}
	return dst, nil
}

type deltaVarintCodec struct{}

func (deltaVarintCodec) Name() string { return "deltavarint" }

// zigzag maps small signed deltas to small unsigned varints.
func zigzag(d uint64) uint64   { return (d << 1) ^ uint64(int64(d)>>63) }
func unzigzag(z uint64) uint64 { return (z >> 1) ^ -(z & 1) }

func (deltaVarintCodec) AppendEncoded(dst []byte, words []uint64) []byte {
	if len(words) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, words[0])
	prev := words[0]
	for _, w := range words[1:] {
		// The difference wraps mod 2^64, so decoding is exact for any
		// payload, including descending sequences and ^uint64(0).
		dst = binary.AppendUvarint(dst, zigzag(w-prev))
		prev = w
	}
	return dst
}

func (deltaVarintCodec) AppendDecoded(dst []uint64, data []byte) ([]uint64, error) {
	if len(data) == 0 {
		return dst, nil
	}
	first, n := binary.Uvarint(data)
	if n <= 0 {
		return dst, fmt.Errorf("comm: truncated delta-varint payload")
	}
	data = data[n:]
	dst = append(dst, first)
	prev := first
	for len(data) > 0 {
		z, n := binary.Uvarint(data)
		if n <= 0 {
			return dst, fmt.Errorf("comm: truncated delta-varint payload")
		}
		data = data[n:]
		prev += unzigzag(z)
		dst = append(dst, prev)
	}
	return dst, nil
}

package comm

import (
	"testing"
	"testing/quick"

	"repro/internal/transport"
)

// Property-based tests (testing/quick) on the routing and queue invariants.

func TestGridRoutingPropertyQuick(t *testing.T) {
	// For random (p, s, d): routes are at most two hops, land at d, and all
	// intermediate ranks are valid.
	check := func(pRaw uint8, sRaw, dRaw uint16) bool {
		p := int(pRaw%128) + 1
		s := int(sRaw) % p
		d := int(dRaw) % p
		g := NewGrid(p)
		hop1 := g.NextHop(s, d, true)
		if hop1 < 0 || hop1 >= p {
			return false
		}
		if hop1 == d {
			return true
		}
		hop2 := g.NextHop(hop1, d, false)
		return hop2 == d
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGridColumnsMonotoneQuick(t *testing.T) {
	// Grid dimensions always cover p: rows*cols >= p and (rows-1)*cols < p.
	check := func(pRaw uint16) bool {
		p := int(pRaw%4096) + 1
		g := NewGrid(p)
		return g.Rows()*g.Cols() >= p && (g.Rows()-1)*g.Cols() < p
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQueueRandomTrafficQuick(t *testing.T) {
	// For random traffic patterns (seeded), all payload words arrive exactly
	// once regardless of threshold and routing mode.
	check := func(seed uint64, thresholdRaw uint8, indirect bool) bool {
		const p = 6
		threshold := int(thresholdRaw)%64 + 1
		var sums [p]uint64
		var sent uint64
		ok := true
		runClusterQuick(p, threshold, indirect, func(rank int, c *Comm, q *Queue) {
			q.Handle(0, func(src int, words []uint64) {
				for _, w := range words {
					sums[rank] += w
				}
			})
			c.Barrier()
			s := seed ^ uint64(rank)*0x9E3779B97F4A7C15
			for i := 0; i < 50; i++ {
				s = s*6364136223846793005 + 1442695040888963407
				dst := int(s>>33) % p
				if dst == rank {
					continue
				}
				q.Send(0, dst, []uint64{1})
			}
			q.Drain()
		})
		var got uint64
		for rank := 0; rank < p; rank++ {
			got += sums[rank]
		}
		// Recompute the expected count deterministically.
		for rank := 0; rank < p; rank++ {
			s := seed ^ uint64(rank)*0x9E3779B97F4A7C15
			for i := 0; i < 50; i++ {
				s = s*6364136223846793005 + 1442695040888963407
				if int(s>>33)%p != rank {
					sent++
				}
			}
		}
		return ok && got == sent
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// runClusterQuick is runCluster without the *testing.T plumbing so it can be
// used inside quick properties.
func runClusterQuick(p, threshold int, indirect bool, body func(rank int, c *Comm, q *Queue)) {
	net := transport.NewChanNetwork(p)
	defer net.Close()
	done := make(chan struct{}, p)
	for rank := 0; rank < p; rank++ {
		ep, err := net.Endpoint(rank)
		if err != nil {
			panic(err)
		}
		go func(rank int) {
			c := New(ep)
			var grid *Grid
			if indirect {
				grid = NewGrid(p)
			}
			body(rank, c, NewQueue(c, threshold, grid))
			done <- struct{}{}
		}(rank)
	}
	for i := 0; i < p; i++ {
		<-done
	}
}

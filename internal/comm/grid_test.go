package comm

import "testing"

func TestGridShapes(t *testing.T) {
	cases := []struct {
		p, cols int
	}{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {6, 2}, {9, 3}, {12, 3}, {16, 4}, {17, 4}, {24, 5}, {64, 8},
	}
	for _, c := range cases {
		g := NewGrid(c.p)
		if g.Cols() != c.cols {
			t.Errorf("p=%d: cols=%d, want %d", c.p, g.Cols(), c.cols)
		}
	}
}

func TestProxyValidForAllPairs(t *testing.T) {
	for p := 1; p <= 70; p++ {
		g := NewGrid(p)
		for s := 0; s < p; s++ {
			for d := 0; d < p; d++ {
				proxy := g.Proxy(s, d)
				if proxy < 0 || proxy >= p {
					t.Fatalf("p=%d: proxy(%d,%d)=%d out of range", p, s, d, proxy)
				}
				if s == d && proxy != d {
					t.Fatalf("p=%d: self route via %d", p, proxy)
				}
				// Two-hop maximum: the proxy's next hop must be the target.
				if proxy != d {
					if nh := g.NextHop(proxy, d, false); nh != d {
						t.Fatalf("p=%d: path longer than 2 hops (%d->%d->%d->%d)", p, s, proxy, nh, d)
					}
				}
			}
		}
	}
}

func TestProxySharedWithinRow(t *testing.T) {
	// On a perfect square grid, all senders in one row use the same proxy
	// for a given destination — that is what enables re-aggregation.
	g := NewGrid(16)
	d := 14 // row 3, col 2
	for row := 0; row < 4; row++ {
		want := row*4 + 2
		for col := 0; col < 4; col++ {
			s := row*4 + col
			if s == d {
				continue
			}
			got := g.Proxy(s, d)
			if s == want {
				// The sender is its own proxy: direct hop.
				if got != d {
					t.Fatalf("proxy(%d,%d) = %d, want direct %d", s, d, got, d)
				}
				continue
			}
			if got != want {
				t.Fatalf("proxy(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestProxyPeerCountIsRoot(t *testing.T) {
	// Each PE should have O(√p) distinct first-hop destinations.
	for _, p := range []int{16, 36, 64} {
		g := NewGrid(p)
		for s := 0; s < p; s++ {
			peers := make(map[int]bool)
			for d := 0; d < p; d++ {
				if d != s {
					peers[g.Proxy(s, d)] = true
				}
			}
			limit := 3 * g.Cols()
			if len(peers) > limit {
				t.Fatalf("p=%d: PE %d has %d first-hop peers, want <= %d", p, s, len(peers), limit)
			}
		}
	}
}

func TestNonSquareLastRowTranspose(t *testing.T) {
	// p=7: cols=3, rows=3, last row holds only rank 6. A sender in the last
	// row with a missing proxy must still find a valid <=2 hop route.
	g := NewGrid(7)
	if g.Rows() != 3 {
		t.Fatalf("rows = %d", g.Rows())
	}
	for d := 0; d < 7; d++ {
		if d == 6 {
			continue
		}
		proxy := g.Proxy(6, d)
		if proxy < 0 || proxy >= 7 {
			t.Fatalf("invalid proxy %d", proxy)
		}
	}
}

func TestRowCol(t *testing.T) {
	g := NewGrid(12) // cols 3
	r, c := g.RowCol(7)
	if r != 2 || c != 1 {
		t.Fatalf("RowCol(7) = (%d,%d), want (2,1)", r, c)
	}
}

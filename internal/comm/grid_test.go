package comm

import "testing"

func TestGridShapes(t *testing.T) {
	cases := []struct {
		p, cols int
	}{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {6, 2}, {9, 3}, {12, 3}, {16, 4}, {17, 4}, {24, 5}, {64, 8},
	}
	for _, c := range cases {
		g := NewGrid(c.p)
		if g.Cols() != c.cols {
			t.Errorf("p=%d: cols=%d, want %d", c.p, g.Cols(), c.cols)
		}
	}
}

func TestProxyValidForAllPairs(t *testing.T) {
	for p := 1; p <= 70; p++ {
		g := NewGrid(p)
		for s := 0; s < p; s++ {
			for d := 0; d < p; d++ {
				proxy := g.Proxy(s, d)
				if proxy < 0 || proxy >= p {
					t.Fatalf("p=%d: proxy(%d,%d)=%d out of range", p, s, d, proxy)
				}
				if s == d && proxy != d {
					t.Fatalf("p=%d: self route via %d", p, proxy)
				}
				// Two-hop maximum: the proxy's next hop must be the target.
				if proxy != d {
					if nh := g.NextHop(proxy, d, false); nh != d {
						t.Fatalf("p=%d: path longer than 2 hops (%d->%d->%d->%d)", p, s, proxy, nh, d)
					}
				}
			}
		}
	}
}

func TestProxySharedWithinRow(t *testing.T) {
	// On a perfect square grid, all senders in one row use the same proxy
	// for a given destination — that is what enables re-aggregation.
	g := NewGrid(16)
	d := 14 // row 3, col 2
	for row := 0; row < 4; row++ {
		want := row*4 + 2
		for col := 0; col < 4; col++ {
			s := row*4 + col
			if s == d {
				continue
			}
			got := g.Proxy(s, d)
			if s == want {
				// The sender is its own proxy: direct hop.
				if got != d {
					t.Fatalf("proxy(%d,%d) = %d, want direct %d", s, d, got, d)
				}
				continue
			}
			if got != want {
				t.Fatalf("proxy(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestProxyPeerCountIsRoot(t *testing.T) {
	// Each PE should have O(√p) distinct first-hop destinations.
	for _, p := range []int{16, 36, 64} {
		g := NewGrid(p)
		for s := 0; s < p; s++ {
			peers := make(map[int]bool)
			for d := 0; d < p; d++ {
				if d != s {
					peers[g.Proxy(s, d)] = true
				}
			}
			limit := 3 * g.Cols()
			if len(peers) > limit {
				t.Fatalf("p=%d: PE %d has %d first-hop peers, want <= %d", p, s, len(peers), limit)
			}
		}
	}
}

func TestNonSquareLastRowTranspose(t *testing.T) {
	// p=7: cols=3, rows=3, last row holds only rank 6. A sender in the last
	// row with a missing proxy must still find a valid <=2 hop route.
	g := NewGrid(7)
	if g.Rows() != 3 {
		t.Fatalf("rows = %d", g.Rows())
	}
	for d := 0; d < 7; d++ {
		if d == 6 {
			continue
		}
		proxy := g.Proxy(6, d)
		if proxy < 0 || proxy >= 7 {
			t.Fatalf("invalid proxy %d", proxy)
		}
	}
}

// TestGridRoutingProperty simulates the actual forwarding chain for every
// grid up to p=64 and every (s,d) pair: starting at s as the origin and
// repeatedly asking NextHop where to forward, the message must reach d in at
// most two hops without ever stalling. The test also asserts that the
// non-square transpose fallback — a partial last row whose sender borrows
// its column index as a virtual row — is exercised somewhere in the sweep,
// so the ≤2-hop guarantee is not vacuous on that branch.
func TestGridRoutingProperty(t *testing.T) {
	transposeRoutes := 0
	for p := 1; p <= 64; p++ {
		g := NewGrid(p)
		for s := 0; s < p; s++ {
			for d := 0; d < p; d++ {
				cur, hops, origin := s, 0, true
				for cur != d {
					next := g.NextHop(cur, d, origin)
					origin = false
					if next == cur {
						t.Fatalf("p=%d: route %d->%d stalls at %d", p, s, d, cur)
					}
					if next < 0 || next >= p {
						t.Fatalf("p=%d: route %d->%d leaves the grid at %d", p, s, d, next)
					}
					cur = next
					hops++
					if hops > 2 {
						t.Fatalf("p=%d: route %d->%d exceeds 2 hops", p, s, d)
					}
				}
				if s == d {
					continue
				}
				// Classify the first hop: did the primary proxy (sender's row,
				// destination's column) fall off a partial last row, and did
				// the transposed proxy actually carry the message?
				sRow, sCol := g.RowCol(s)
				_, dCol := g.RowCol(d)
				if primary := sRow*g.Cols() + dCol; primary >= p {
					if tp := sCol*g.Cols() + dCol; tp < p && tp != s && tp != d &&
						g.NextHop(s, d, true) == tp {
						transposeRoutes++
					}
				}
			}
		}
	}
	if transposeRoutes == 0 {
		t.Fatal("sweep never exercised the last-row transpose fallback")
	}
}

func TestRowCol(t *testing.T) {
	g := NewGrid(12) // cols 3
	r, c := g.RowCol(7)
	if r != 2 || c != 1 {
		t.Fatalf("RowCol(7) = (%d,%d), want (2,1)", r, c)
	}
}

package comm

import "math"

// Grid implements the paper's two-dimensional logical PE grid for indirect
// message delivery (§IV-B). PEs are arranged row-major into a grid with
// ⌊√p + ½⌋ columns; a message from sender s to destination d is first sent
// along s's row to the proxy in d's column, which forwards it down the
// column. When p is not square the last row may be partial, and a proxy in
// it may not exist; the paper's fix — transpose the last row and append it
// as a column on the right, then pick the proxy along the (virtual) row — is
// implemented by indexing with the sender's column as row, falling back to a
// direct send if that PE does not exist either.
type Grid struct {
	p    int
	cols int
}

// NewGrid builds the routing grid for p PEs.
func NewGrid(p int) *Grid {
	cols := int(math.Floor(math.Sqrt(float64(p)) + 0.5))
	if cols < 1 {
		cols = 1
	}
	return &Grid{p: p, cols: cols}
}

// Cols returns the number of grid columns.
func (g *Grid) Cols() int { return g.cols }

// Rows returns the number of grid rows (the last may be partial).
func (g *Grid) Rows() int { return (g.p + g.cols - 1) / g.cols }

// RowCol returns the grid coordinates of a rank.
func (g *Grid) RowCol(rank int) (row, col int) { return rank / g.cols, rank % g.cols }

// Proxy returns the first-hop PE for a message from s to d. If it returns d
// (or s itself maps to the proxy), the message goes directly.
func (g *Grid) Proxy(s, d int) int {
	if s == d {
		return d
	}
	sRow, _ := g.RowCol(s)
	_, dCol := g.RowCol(d)
	proxy := sRow*g.cols + dCol
	if proxy < g.p {
		if proxy == s {
			return d // s is its own proxy: direct column hop
		}
		return proxy
	}
	// s lies in the partial last row and d's column has no entry there:
	// transpose the last row, i.e. use s's column index as the virtual row.
	_, sCol := g.RowCol(s)
	proxy = sCol*g.cols + dCol
	if proxy < g.p && proxy != s {
		return proxy
	}
	return d
}

// NextHop returns where PE me should forward a message ultimately destined
// for d: the proxy when me is the original sender, the destination when me
// is the proxy (or when no useful proxy exists).
func (g *Grid) NextHop(me, d int, origin bool) int {
	if !origin || me == d {
		return d
	}
	return g.Proxy(me, d)
}

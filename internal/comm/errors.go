package comm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/transport"
)

// Typed failure values. The communication layer runs inside a PE body whose
// established failure mechanism is panic (dist.Run recovers every PE
// goroutine and converts the value into a structured run error), so these
// types are raised by panic from the blocking primitives — what matters is
// that the recovered value is a typed error the runtime can attribute:
// errors.As distinguishes a lost peer from a stalled detector from a corrupt
// frame, instead of every failure collapsing into an opaque string.

// ErrPeerLost reports that a blocking communication primitive gave up
// because the transport condemned a peer: the four-counter termination
// detector or a collective was waiting on traffic from a rank that is dead.
type ErrPeerLost struct {
	Rank int   // the condemned peer
	Err  error // the transport's verdict (typically *transport.PeerDownError)
}

func (e *ErrPeerLost) Error() string {
	return fmt.Sprintf("comm: peer %d lost: %v", e.Rank, e.Err)
}

func (e *ErrPeerLost) Unwrap() error { return e.Err }

// WatchdogError reports that a blocking communication primitive exceeded the
// configured deadline with no progress and no condemned peer to blame — the
// distributed equivalent of a hang, surfaced as an error instead.
type WatchdogError struct {
	Where  string // which primitive stalled: "drain", "collective"
	Waited time.Duration
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("comm: %s made no progress for %v (deadline exceeded)", e.Where, e.Waited)
}

// CorruptFrameError reports a data frame whose envelope or payload failed
// structural validation during decode. The TCP transport's CRC trailer
// rejects wire corruption below this layer; this error covers corruption
// injected above it (or a codec mismatch between sender and receiver).
type CorruptFrameError struct {
	Src    int
	Reason string
}

func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("comm: corrupt data frame from %d: %s", e.Src, e.Reason)
}

// raiseSendErr converts a transport send failure into a typed panic: peer-
// down verdicts keep their attribution, everything else is wrapped with the
// failing operation.
func raiseSendErr(op string, dst int, err error) {
	var pd *transport.PeerDownError
	if errors.As(err, &pd) {
		panic(&ErrPeerLost{Rank: pd.Rank, Err: err})
	}
	panic(fmt.Errorf("comm: %s to %d: %w", op, dst, err))
}

package comm

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/transport"
)

func runComms(t *testing.T, p int, body func(rank int, c *Comm)) {
	t.Helper()
	net := transport.NewChanNetwork(p)
	defer net.Close()
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		ep, err := net.Endpoint(rank)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(rank int, ep transport.Endpoint) {
			defer wg.Done()
			body(rank, New(ep))
		}(rank, ep)
	}
	wg.Wait()
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 8
	var before, violated atomic.Int64
	runComms(t, p, func(rank int, c *Comm) {
		before.Add(1)
		c.Barrier()
		if before.Load() != p {
			violated.Add(1)
		}
	})
	if violated.Load() > 0 {
		t.Fatal("some PE passed the barrier before all entered")
	}
}

func TestBarrierRepeated(t *testing.T) {
	runComms(t, 5, func(rank int, c *Comm) {
		for i := 0; i < 10; i++ {
			c.Barrier()
		}
	})
}

func TestAllreduceSum(t *testing.T) {
	const p = 6
	results := make([][]uint64, p)
	runComms(t, p, func(rank int, c *Comm) {
		results[rank] = c.AllreduceSum([]uint64{uint64(rank), 1, uint64(rank * rank)})
	})
	wantA, wantC := uint64(0), uint64(0)
	for r := 0; r < p; r++ {
		wantA += uint64(r)
		wantC += uint64(r * r)
	}
	for rank, got := range results {
		if got[0] != wantA || got[1] != p || got[2] != wantC {
			t.Fatalf("PE %d: allreduce = %v, want [%d %d %d]", rank, got, wantA, p, wantC)
		}
	}
}

func TestGather(t *testing.T) {
	const p = 4
	var got [][]uint64
	runComms(t, p, func(rank int, c *Comm) {
		res := c.Gather([]uint64{uint64(rank * 10)})
		if rank == 0 {
			got = res
		} else if res != nil {
			t.Errorf("non-root PE %d got non-nil gather result", rank)
		}
	})
	for rank := 0; rank < p; rank++ {
		if len(got[rank]) != 1 || got[rank][0] != uint64(rank*10) {
			t.Fatalf("gather[%d] = %v", rank, got[rank])
		}
	}
}

func TestBroadcast(t *testing.T) {
	const p = 5
	results := make([][]uint64, p)
	runComms(t, p, func(rank int, c *Comm) {
		var in []uint64
		if rank == 0 {
			in = []uint64{7, 8, 9}
		}
		results[rank] = c.Broadcast(in)
	})
	for rank, got := range results {
		if len(got) != 3 || got[0] != 7 || got[2] != 9 {
			t.Fatalf("PE %d broadcast = %v", rank, got)
		}
	}
}

func TestDenseExchange(t *testing.T) {
	const p = 5
	results := make([][][]uint64, p)
	runComms(t, p, func(rank int, c *Comm) {
		data := make([][]uint64, p)
		for dst := 0; dst < p; dst++ {
			data[dst] = []uint64{uint64(rank), uint64(dst)}
		}
		results[rank] = c.DenseExchange(data)
	})
	for me := 0; me < p; me++ {
		for src := 0; src < p; src++ {
			got := results[me][src]
			if len(got) != 2 || got[0] != uint64(src) || got[1] != uint64(me) {
				t.Fatalf("PE %d from %d: %v", me, src, got)
			}
		}
	}
}

func TestDenseExchangeEmptySlices(t *testing.T) {
	const p = 3
	runComms(t, p, func(rank int, c *Comm) {
		res := c.DenseExchange(make([][]uint64, p))
		for src, words := range res {
			if len(words) != 0 {
				t.Errorf("PE %d: unexpected words from %d: %v", rank, src, words)
			}
		}
	})
}

func TestCollectivesInterleavedWithQueueTraffic(t *testing.T) {
	// Data records arriving during a collective must be stashed, not lost.
	const p = 4
	var got [p]atomic.Int64
	net := transport.NewChanNetwork(p)
	defer net.Close()
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		ep, _ := net.Endpoint(rank)
		wg.Add(1)
		go func(rank int, ep transport.Endpoint) {
			defer wg.Done()
			c := New(ep)
			q := NewQueue(c, 1, nil) // flush immediately: records fly early
			q.Handle(0, func(src int, words []uint64) { got[rank].Add(int64(words[0])) })
			// Send before the collective so frames arrive while peers sit in
			// the allreduce.
			for dst := 0; dst < p; dst++ {
				if dst != rank {
					q.Send(0, dst, []uint64{1})
				}
			}
			c.AllreduceSum([]uint64{1})
			q.Drain()
		}(rank, ep)
	}
	wg.Wait()
	for rank := 0; rank < p; rank++ {
		if got[rank].Load() != p-1 {
			t.Fatalf("PE %d got %d records, want %d", rank, got[rank].Load(), p-1)
		}
	}
}

func TestMetricsSubAndAdd(t *testing.T) {
	a := Metrics{SentFrames: 10, SentWords: 100, PayloadWords: 80, RecvFrames: 9, RecvWords: 90, Flushes: 3, PeakBuffered: 50, ControlSent: 2}
	b := Metrics{SentFrames: 4, SentWords: 40, PayloadWords: 30, RecvFrames: 4, RecvWords: 40, Flushes: 1, PeakBuffered: 20, ControlSent: 1}
	d := a.Sub(b)
	if d.SentFrames != 6 || d.SentWords != 60 || d.PayloadWords != 50 || d.Flushes != 2 {
		t.Fatalf("Sub wrong: %+v", d)
	}
	var acc Metrics
	acc.Add(a)
	acc.Add(b)
	if acc.SentFrames != 14 || acc.PeakBuffered != 50 {
		t.Fatalf("Add wrong: %+v", acc)
	}
}

func TestAggregateOf(t *testing.T) {
	per := []Metrics{
		{SentFrames: 5, SentWords: 50, PayloadWords: 40, PeakBuffered: 10},
		{SentFrames: 9, SentWords: 30, PayloadWords: 70, PeakBuffered: 99},
	}
	a := AggregateOf(per)
	if a.TotalFrames != 14 || a.MaxSentFrames != 9 || a.MaxPayloadWords != 70 || a.MaxPeakBuffered != 99 {
		t.Fatalf("aggregate wrong: %+v", a)
	}
}

package comm

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// MaxChannels is the number of logical message channels a Queue multiplexes.
// Algorithms use separate channels for independent message types (e.g.
// neighborhood shipments vs. degree requests vs. LCC updates).
const MaxChannels = 9

// Handler processes one received record: src is the originating PE (not the
// proxy under indirection), words the record payload.
type Handler func(src int, words []uint64)

// Queue is the paper's dynamically buffered message queue (§IV-A): one
// buffer per next-hop destination held in a hash map, a global threshold δ
// on the total buffered words, flush-all on overflow with buffer swap
// (double buffering: the full buffer is handed to the asynchronous transport
// while a fresh one fills), and continuous polling for incoming messages.
//
// With a Grid attached it performs the paper's indirect message delivery
// (§IV-B): records are first shipped to a row proxy, which re-aggregates
// them in its own queue before the column hop, so the per-PE peer count
// drops to O(√p).
//
// Drain implements the asynchronous sparse all-to-all: it flushes, keeps
// processing (and forwarding) incoming records, and detects global
// quiescence with a coordinator-based four-counter termination protocol, so
// memory stays O(δ) regardless of the total traffic — the property the
// paper needs for its linear-memory guarantee.
type Queue struct {
	c         *Comm
	grid      *Grid // nil => direct delivery
	threshold int   // δ in words

	// bufs holds one aggregation buffer per next-hop destination. Buffers
	// are retained (truncated to the tag word) across flushes — the
	// per-destination free list that makes steady-state flushing
	// allocation-free.
	bufs     map[int][]uint64
	buffered int
	handlers [MaxChannels]Handler
	codecs   [MaxChannels]Codec

	encScratch []byte // per-record encode buffer, reused across flushes

	// Decode arenas, recycled across frames. curArena is the arena of the
	// frame currently being dispatched (nil outside processData); handlers
	// that hand payload slices to other goroutines pin it via PinPayload.
	arenaMu   sync.Mutex
	arenaFree []*wordArena
	curArena  *wordArena

	// Termination counters (data frames only).
	sent int64
	recv int64

	round uint64 // coordinator probe round

	// idleAt marks the start of the current idle episode inside
	// Drain/DrainWith (zero when the PE last did useful work); episodes
	// accumulate into Metrics.IdleNs.
	idleAt time.Time
}

// wordArena is one reusable decode buffer. refs counts the frame dispatch in
// flight plus every pinned payload; the arena returns to the queue's free
// list when it drops to zero.
type wordArena struct {
	words   []uint64
	refs    atomic.Int32
	release func()
}

// maxPooledArenas caps the arena free list (a backstop; in steady state at
// most a handful are in flight).
const maxPooledArenas = 64

func (q *Queue) getArena() *wordArena {
	q.arenaMu.Lock()
	var ar *wordArena
	if k := len(q.arenaFree); k > 0 {
		ar = q.arenaFree[k-1]
		q.arenaFree = q.arenaFree[:k-1]
	}
	q.arenaMu.Unlock()
	if ar == nil {
		a := &wordArena{}
		a.release = func() {
			if a.refs.Add(-1) == 0 {
				q.arenaMu.Lock()
				if len(q.arenaFree) < maxPooledArenas {
					q.arenaFree = append(q.arenaFree, a)
				}
				q.arenaMu.Unlock()
			}
		}
		ar = a
	}
	ar.words = ar.words[:0]
	ar.refs.Store(1)
	return ar
}

var releaseNop = func() {}

// PinPayload extends the lifetime of the payload slice the current handler
// invocation received: handler payloads alias a pooled decode arena and are
// only valid during the handler call, unless pinned. It must be called from
// inside a handler; the returned release function (safe to call from any
// goroutine) gives the arena back once the payload is no longer needed.
// Payloads delivered locally (Send to self) alias the sender's buffer and
// need no pin; a no-op release is returned for them.
func (q *Queue) PinPayload() func() {
	ar := q.curArena
	if ar == nil {
		return releaseNop
	}
	ar.refs.Add(1)
	return ar.release
}

// envelope header: [finalDst, origSrc, channel, payloadLen]
const envHdr = 4

// NewQueue creates a message queue. threshold is δ in machine words; values
// ≤ 0 select a fallback of 1<<16 words — a backstop for direct Queue users
// only. The authoritative δ for algorithm runs is core's 2|E|/p (see
// core.DefaultThreshold), which keeps queue memory in O(|E_i|); every run
// driver computes it before the queue is built, so this fallback is never
// hit on the paper's code paths.
//
// Every channel starts on the Raw codec; use SetCodec to compress.
func NewQueue(c *Comm, threshold int, grid *Grid) *Queue {
	if threshold <= 0 {
		threshold = 1 << 16
	}
	q := &Queue{
		c:         c,
		grid:      grid,
		threshold: threshold,
		bufs:      make(map[int][]uint64),
	}
	for ch := range q.codecs {
		q.codecs[ch] = Raw
	}
	return q
}

// Comm returns the underlying Comm (for metrics access).
func (q *Queue) Comm() *Comm { return q.c }

// Threshold returns the current aggregation threshold δ in words.
func (q *Queue) Threshold() int { return q.threshold }

// SetThreshold replaces the aggregation threshold δ (words; values < 1
// clamp to 1). Streaming runs resolve δ per PE only once the resident
// graph size is known — the queue is built before the first batch is
// ingested — and may retune it between batches. Changing δ only moves the
// overflow-flush boundary, never any record content, so it is safe at any
// point where this PE is not mid-append.
func (q *Queue) SetThreshold(words int) {
	if words < 1 {
		words = 1
	}
	q.threshold = words
}

// Handle registers the handler for a channel. Must be set before any record
// for that channel can arrive.
func (q *Queue) Handle(ch int, h Handler) {
	q.handlers[ch] = h
}

// SetCodec installs the wire codec for a channel. Sender and receiver decode
// with their own tables, so every PE of a run must install the same codec on
// the same channel before any record for it is in flight (alongside Handle,
// before the post-preprocessing barrier).
func (q *Queue) SetCodec(ch int, codec Codec) {
	if ch < 0 || ch >= MaxChannels {
		panic(fmt.Sprintf("comm: channel %d out of range", ch))
	}
	if codec == nil {
		codec = Raw
	}
	q.codecs[ch] = codec
}

// CodecOf returns the codec installed on a channel.
func (q *Queue) CodecOf(ch int) Codec { return q.codecs[ch] }

// Send enqueues a record for dst on the given channel. Local destinations
// are delivered immediately without touching the network. The payload is
// copied into the aggregation buffer, so the caller may reuse it.
func (q *Queue) Send(ch, dst int, payload []uint64) {
	if ch < 0 || ch >= MaxChannels {
		panic(fmt.Sprintf("comm: channel %d out of range", ch))
	}
	me := q.c.Rank()
	q.c.M.PayloadWords += int64(len(payload))
	if dst == me {
		// Local dispatch passes the caller's slice, not a decode arena — if
		// this Send happens inside a handler (mid-processData), curArena must
		// not leak into the nested dispatch, or PinPayload would pin the
		// outer frame's arena without protecting this payload at all.
		prev := q.curArena
		q.curArena = nil
		q.dispatch(ch, me, payload)
		q.curArena = prev
		return
	}
	hop := dst
	if q.grid != nil {
		hop = q.grid.NextHop(me, dst, true)
	}
	q.append(hop, dst, me, ch, payload)
}

// append adds an envelope to the buffer for next hop and flushes everything
// if the threshold is exceeded.
func (q *Queue) append(hop, finalDst, origSrc, ch int, payload []uint64) {
	buf := q.bufs[hop]
	if buf == nil {
		// First record for this hop ever; the buffer is retained (truncated
		// to the tag word) across flushes from here on.
		buf = make([]uint64, 1, 1+envHdr+len(payload))
		buf[0] = tag(kindData, 0)
	}
	buf = append(buf, uint64(finalDst), uint64(origSrc), uint64(ch), uint64(len(payload)))
	buf = append(buf, payload...)
	q.bufs[hop] = buf
	q.buffered += envHdr + len(payload)
	if int64(q.buffered) > q.c.M.PeakBuffered {
		q.c.M.PeakBuffered = int64(q.buffered)
	}
	if q.buffered > q.threshold {
		q.Flush()
		// Overflow pressure: give receivers a chance to drain before we keep
		// producing, mirroring the paper's "block only if the second buffer
		// overflows" behaviour.
		q.Poll()
	}
}

// Flush encodes every non-empty buffer with the per-channel codecs and sends
// the resulting byte frame to its next hop. Word buffers are fully encoded
// into pooled byte frames before the send, so they are truncated and reused
// in place (the free-list variant of the paper's double-buffer swap: records
// keep aggregating in raw words while encoded frames travel).
func (q *Queue) Flush() {
	if q.buffered == 0 {
		return
	}
	for hop, buf := range q.bufs {
		if len(buf) <= 1 {
			continue
		}
		frame := q.encodeFrame(buf)
		q.sent++
		q.c.M.Flushes++
		q.c.notePeer(hop)
		if err := q.c.sendDataBytes(hop, frame, len(buf)); err != nil {
			raiseSendErr("flush", hop, err)
		}
		q.bufs[hop] = buf[:1] // retain tag + capacity for the next cycle
	}
	q.buffered = 0
}

// encodeFrame serializes one raw word buffer ([tag, envelopes+payloads...])
// into a wire byte frame: the 8-byte tag, then per record the envelope as
// uvarints (finalDst, origSrc, channel, encoded byte length) followed by the
// payload encoded with its channel's codec. The frame comes from the
// transport buffer pool; ownership passes on with the send.
func (q *Queue) encodeFrame(buf []uint64) []byte {
	out := transport.GetBuf(8 + 8*(len(buf)-1))[:8]
	binary.LittleEndian.PutUint64(out, buf[0])
	i := 1
	for i < len(buf) {
		finalDst, origSrc, ch := buf[i], buf[i+1], buf[i+2]
		n := int(buf[i+3])
		payload := buf[i+4 : i+4+n]
		i += envHdr + n
		enc := q.codecs[ch].AppendEncoded(q.encScratch[:0], payload)
		q.encScratch = enc[:0]
		out = binary.AppendUvarint(out, finalDst)
		out = binary.AppendUvarint(out, origSrc)
		out = binary.AppendUvarint(out, ch)
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

// FlushIfOver flushes every buffer when more than words words are buffered.
// It is the eager flush trigger of the overlapped pipeline: a watermark well
// below the aggregation threshold δ ships cut neighborhoods while the local
// phase is still producing, instead of holding them until the overflow or
// drain flush. Returns whether a flush happened.
func (q *Queue) FlushIfOver(words int) bool {
	if q.buffered <= words {
		return false
	}
	q.Flush()
	return true
}

// Poll processes all currently pending data frames; it returns true if it
// processed at least one.
func (q *Queue) Poll() bool {
	any := false
	for {
		f, ok := q.c.next(func(t uint64) bool { return t&kindMask == kindData })
		if !ok {
			return any
		}
		q.processData(f)
		any = true
	}
}

// processData decodes a byte data frame record by record, dispatching
// records for this PE and re-buffering records to forward (proxy role —
// forwarded payloads rejoin the raw buffers and are re-encoded with the same
// codec on the next flush). Decoded payloads land in a pooled per-frame
// arena: handler payload slices are valid for the duration of the handler
// call, and a handler that hands them to another goroutine must pin the
// arena with PinPayload. The frame bytes themselves return to the transport
// buffer pool once the frame is fully decoded.
func (q *Queue) processData(f transport.Frame) {
	q.recv++
	q.c.M.RecvFrames++
	b := f.Bytes
	if b == nil {
		panic("comm: data frame without byte framing")
	}
	q.c.M.RecvEncodedBytes += int64(len(b))
	me := q.c.Rank()
	rawWords := int64(1) // tag word
	ar := q.getArena()
	prev := q.curArena
	pos := 8 // skip tag bytes
	for pos < len(b) {
		// Each Uvarint is checked before its length feeds the next slice
		// offset: an overflowed varint returns a negative length, and
		// b[pos+n:] with n < 0 would crash with an untyped runtime panic
		// instead of the typed corrupt-frame verdict.
		finalDst, n1 := binary.Uvarint(b[pos:])
		if n1 <= 0 {
			panic(&CorruptFrameError{Src: f.Src, Reason: "truncated envelope"})
		}
		origSrc, n2 := binary.Uvarint(b[pos+n1:])
		if n2 <= 0 {
			panic(&CorruptFrameError{Src: f.Src, Reason: "truncated envelope"})
		}
		ch, n3 := binary.Uvarint(b[pos+n1+n2:])
		if n3 <= 0 {
			panic(&CorruptFrameError{Src: f.Src, Reason: "truncated envelope"})
		}
		encLen, n4 := binary.Uvarint(b[pos+n1+n2+n3:])
		if n4 <= 0 {
			panic(&CorruptFrameError{Src: f.Src, Reason: "truncated envelope"})
		}
		pos += n1 + n2 + n3 + n4
		if ch >= MaxChannels || int(finalDst) >= q.c.Size() || pos+int(encLen) > len(b) {
			panic(&CorruptFrameError{Src: f.Src,
				Reason: fmt.Sprintf("invalid envelope (dst=%d, ch=%d, len=%d)", finalDst, ch, encLen)})
		}
		enc := b[pos : pos+int(encLen)]
		pos += int(encLen)
		start := len(ar.words)
		var err error
		ar.words, err = q.codecs[ch].AppendDecoded(ar.words, enc)
		if err != nil {
			panic(&CorruptFrameError{Src: f.Src, Reason: fmt.Sprintf("decode channel %d: %v", ch, err)})
		}
		// Cap the slice so a handler appending to its payload cannot
		// clobber records decoded after it.
		payload := ar.words[start:len(ar.words):len(ar.words)]
		rawWords += envHdr + int64(len(payload))
		if int(finalDst) == me {
			q.curArena = ar
			q.dispatch(int(ch), int(origSrc), payload)
			q.curArena = prev
		} else {
			// Proxy hop: re-aggregate toward the final destination (copies
			// the payload into the hop's word buffer).
			q.append(int(finalDst), int(finalDst), int(origSrc), int(ch), payload)
		}
	}
	q.c.M.RecvWords += rawWords
	ar.release()
	transport.PutBuf(b)
}

func (q *Queue) dispatch(ch, src int, payload []uint64) {
	h := q.handlers[ch]
	if h == nil {
		panic(fmt.Sprintf("comm: no handler for channel %d on PE %d", ch, q.c.Rank()))
	}
	h(src, payload)
}

// Drain flushes all buffers and processes incoming traffic until global
// quiescence: no PE holds buffered records and every sent frame has been
// received and processed. Every PE of the cluster must call Drain; rank 0
// coordinates the four-counter termination protocol.
func (q *Queue) Drain() { q.DrainWith(nil) }

// DrainWith is Drain with a progress callback for overlapped pipelines.
// Whenever the termination detector would otherwise idle-wait for a frame,
// it invokes progress (if non-nil), which should perform one unit of local
// work — e.g. steal a batch of received records off the overlap deque — and
// report whether it did anything. The four-counter protocol itself is
// unchanged: it already tolerates PEs entering the drain at different times
// and frames still in flight from overlapped eager flushes, because
// termination requires the global sent/recv counters to agree and stay
// stable across two probe rounds. progress must not send new records.
//
// Time spent with neither a frame to process nor progress work to do
// accumulates into Metrics.IdleNs — the per-rank skew signal.
func (q *Queue) DrainWith(progress func() bool) {
	q.Flush()
	if q.c.Rank() == 0 {
		q.drainCoordinator(progress)
	} else {
		q.drainWorker(progress)
	}
	q.noteBusy()
}

// noteIdle opens an idle episode (no-op when one is already open);
// noteBusy closes it into Metrics.IdleNs.
func (q *Queue) noteIdle() {
	if q.idleAt.IsZero() {
		q.idleAt = time.Now()
	}
}

func (q *Queue) noteBusy() {
	if !q.idleAt.IsZero() {
		q.c.M.IdleNs += time.Since(q.idleAt).Nanoseconds()
		q.idleAt = time.Time{}
	}
}

// stall is the detector's wait step: try the progress callback, and when it
// has nothing to do either, yield and account the time as idle. The idle
// episode is closed *before* the callback runs so that stolen-work time is
// never attributed to IdleNs — only genuine waiting is. Each idle step also
// runs the communication watchdog, so a detector waiting on a dead peer
// fails with a typed error instead of spinning past the deadline.
func (q *Queue) stall(progress func() bool) {
	if progress != nil {
		q.noteBusy()
		if progress() {
			return
		}
	}
	q.noteIdle()
	q.c.checkStalled("drain")
	runtime.Gosched()
}

func (q *Queue) drainCoordinator(progress func() bool) {
	p := q.c.Size()
	var prevSent, prevRecv int64 = -1, -1
	for {
		// Make progress on data and keep our own buffers empty. Any idle
		// episode ends here, before frame processing, so processing time is
		// never misattributed to IdleNs.
		q.noteBusy()
		q.Poll()
		q.Flush()

		// Probe round: collect (sent, recv) from everyone.
		round := q.round
		q.round++
		for dst := 1; dst < p; dst++ {
			if err := q.c.sendControl(dst, []uint64{tag(kindProbe, round)}); err != nil {
				raiseSendErr("probe", dst, err)
			}
		}
		sumSent, sumRecv := q.sent, q.recv
		for got := 1; got < p; {
			f, ok := q.c.next(func(t uint64) bool {
				return t == tag(kindReply, round) || t&kindMask == kindData
			})
			if !ok {
				q.stall(progress)
				continue
			}
			q.noteBusy() // the wait ended on arrival; processing is not idle
			if tagOf(f)&kindMask == kindData {
				q.processData(f)
				q.Flush()
				continue
			}
			sumSent += int64(f.Words[1])
			sumRecv += int64(f.Words[2])
			got++
		}
		if sumSent == sumRecv && sumSent == prevSent && sumRecv == prevRecv {
			for dst := 1; dst < p; dst++ {
				if err := q.c.sendControl(dst, []uint64{tag(kindTerm, 0)}); err != nil {
					raiseSendErr("term", dst, err)
				}
			}
			return
		}
		prevSent, prevRecv = sumSent, sumRecv
	}
}

func (q *Queue) drainWorker(progress func() bool) {
	for {
		f, ok := q.c.next(func(t uint64) bool {
			k := t & kindMask
			return k == kindData || k == kindProbe || k == kindTerm
		})
		if !ok {
			q.stall(progress)
			continue
		}
		q.noteBusy() // the wait ended on arrival; processing is not idle
		switch tagOf(f) & kindMask {
		case kindData:
			q.processData(f)
		case kindProbe:
			// Flush before reporting, so buffered forwards are visible in the
			// counters (otherwise the protocol could terminate early).
			q.Flush()
			round := f.Words[0] >> 16
			reply := []uint64{tag(kindReply, round), uint64(q.sent), uint64(q.recv)}
			if err := q.c.sendControl(0, reply); err != nil {
				raiseSendErr("reply", 0, err)
			}
		case kindTerm:
			return
		}
	}
}

// Buffered returns the number of words currently buffered (for tests).
func (q *Queue) Buffered() int { return q.buffered }

package comm

import (
	"fmt"
	"runtime"
)

// MaxChannels is the number of logical message channels a Queue multiplexes.
// Algorithms use separate channels for independent message types (e.g.
// neighborhood shipments vs. degree requests vs. LCC updates).
const MaxChannels = 8

// Handler processes one received record: src is the originating PE (not the
// proxy under indirection), words the record payload.
type Handler func(src int, words []uint64)

// Queue is the paper's dynamically buffered message queue (§IV-A): one
// buffer per next-hop destination held in a hash map, a global threshold δ
// on the total buffered words, flush-all on overflow with buffer swap
// (double buffering: the full buffer is handed to the asynchronous transport
// while a fresh one fills), and continuous polling for incoming messages.
//
// With a Grid attached it performs the paper's indirect message delivery
// (§IV-B): records are first shipped to a row proxy, which re-aggregates
// them in its own queue before the column hop, so the per-PE peer count
// drops to O(√p).
//
// Drain implements the asynchronous sparse all-to-all: it flushes, keeps
// processing (and forwarding) incoming records, and detects global
// quiescence with a coordinator-based four-counter termination protocol, so
// memory stays O(δ) regardless of the total traffic — the property the
// paper needs for its linear-memory guarantee.
type Queue struct {
	c         *Comm
	grid      *Grid // nil => direct delivery
	threshold int   // δ in words

	bufs     map[int][]uint64
	buffered int
	handlers [MaxChannels]Handler

	// Termination counters (data frames only).
	sent int64
	recv int64

	round uint64 // coordinator probe round
}

// envelope header: [finalDst, origSrc, channel, payloadLen]
const envHdr = 4

// NewQueue creates a message queue. threshold is δ in machine words; values
// ≤ 0 select a default of 1<<16 words. grid may be nil for direct delivery.
func NewQueue(c *Comm, threshold int, grid *Grid) *Queue {
	if threshold <= 0 {
		threshold = 1 << 16
	}
	return &Queue{
		c:         c,
		grid:      grid,
		threshold: threshold,
		bufs:      make(map[int][]uint64),
	}
}

// Comm returns the underlying Comm (for metrics access).
func (q *Queue) Comm() *Comm { return q.c }

// Handle registers the handler for a channel. Must be set before any record
// for that channel can arrive.
func (q *Queue) Handle(ch int, h Handler) {
	q.handlers[ch] = h
}

// Send enqueues a record for dst on the given channel. Local destinations
// are delivered immediately without touching the network. The payload is
// copied into the aggregation buffer, so the caller may reuse it.
func (q *Queue) Send(ch, dst int, payload []uint64) {
	if ch < 0 || ch >= MaxChannels {
		panic(fmt.Sprintf("comm: channel %d out of range", ch))
	}
	me := q.c.Rank()
	q.c.M.PayloadWords += int64(len(payload))
	if dst == me {
		q.dispatch(ch, me, payload)
		return
	}
	hop := dst
	if q.grid != nil {
		hop = q.grid.NextHop(me, dst, true)
	}
	q.append(hop, dst, me, ch, payload)
}

// append adds an envelope to the buffer for next hop and flushes everything
// if the threshold is exceeded.
func (q *Queue) append(hop, finalDst, origSrc, ch int, payload []uint64) {
	buf := q.bufs[hop]
	if buf == nil {
		buf = make([]uint64, 1, 1+envHdr+len(payload))
		buf[0] = tag(kindData, 0)
	}
	buf = append(buf, uint64(finalDst), uint64(origSrc), uint64(ch), uint64(len(payload)))
	buf = append(buf, payload...)
	q.bufs[hop] = buf
	q.buffered += envHdr + len(payload)
	if int64(q.buffered) > q.c.M.PeakBuffered {
		q.c.M.PeakBuffered = int64(q.buffered)
	}
	if q.buffered > q.threshold {
		q.Flush()
		// Overflow pressure: give receivers a chance to drain before we keep
		// producing, mirroring the paper's "block only if the second buffer
		// overflows" behaviour.
		q.Poll()
	}
}

// Flush sends every non-empty buffer to its next hop and installs fresh
// buffers (the double-buffer swap).
func (q *Queue) Flush() {
	if q.buffered == 0 {
		return
	}
	for hop, buf := range q.bufs {
		if len(buf) <= 1 {
			continue
		}
		q.sent++
		q.c.M.Flushes++
		q.c.notePeer(hop)
		if err := q.c.sendData(hop, buf); err != nil {
			panic(fmt.Sprintf("comm: flush to %d: %v", hop, err))
		}
		delete(q.bufs, hop)
	}
	q.buffered = 0
}

// Poll processes all currently pending data frames; it returns true if it
// processed at least one.
func (q *Queue) Poll() bool {
	any := false
	for {
		f, ok := q.c.next(func(t uint64) bool { return t&kindMask == kindData })
		if !ok {
			return any
		}
		q.processData(f.Words)
		any = true
	}
}

// processData walks the envelopes of a data frame, dispatching records for
// this PE and re-buffering records to forward (proxy role).
func (q *Queue) processData(words []uint64) {
	q.recv++
	q.c.M.RecvFrames++
	q.c.M.RecvWords += int64(len(words))
	me := q.c.Rank()
	i := 1 // skip tag word
	for i < len(words) {
		finalDst := int(words[i])
		origSrc := int(words[i+1])
		ch := int(words[i+2])
		n := int(words[i+3])
		payload := words[i+4 : i+4+n]
		i += envHdr + n
		if finalDst == me {
			q.dispatch(ch, origSrc, payload)
		} else {
			// Proxy hop: re-aggregate toward the final destination.
			q.append(finalDst, finalDst, origSrc, ch, payload)
		}
	}
}

func (q *Queue) dispatch(ch, src int, payload []uint64) {
	h := q.handlers[ch]
	if h == nil {
		panic(fmt.Sprintf("comm: no handler for channel %d on PE %d", ch, q.c.Rank()))
	}
	h(src, payload)
}

// Drain flushes all buffers and processes incoming traffic until global
// quiescence: no PE holds buffered records and every sent frame has been
// received and processed. Every PE of the cluster must call Drain; rank 0
// coordinates the four-counter termination protocol.
func (q *Queue) Drain() {
	q.Flush()
	if q.c.Rank() == 0 {
		q.drainCoordinator()
	} else {
		q.drainWorker()
	}
}

func (q *Queue) drainCoordinator() {
	p := q.c.Size()
	var prevSent, prevRecv int64 = -1, -1
	for {
		// Make progress on data and keep our own buffers empty.
		q.Poll()
		q.Flush()

		// Probe round: collect (sent, recv) from everyone.
		round := q.round
		q.round++
		for dst := 1; dst < p; dst++ {
			if err := q.c.sendControl(dst, []uint64{tag(kindProbe, round)}); err != nil {
				panic(fmt.Sprintf("comm: probe to %d: %v", dst, err))
			}
		}
		sumSent, sumRecv := q.sent, q.recv
		for got := 1; got < p; {
			f, ok := q.c.next(func(t uint64) bool {
				return t == tag(kindReply, round) || t&kindMask == kindData
			})
			if !ok {
				runtime.Gosched()
				continue
			}
			if f.Words[0]&kindMask == kindData {
				q.processData(f.Words)
				q.Flush()
				continue
			}
			sumSent += int64(f.Words[1])
			sumRecv += int64(f.Words[2])
			got++
		}
		if sumSent == sumRecv && sumSent == prevSent && sumRecv == prevRecv {
			for dst := 1; dst < p; dst++ {
				if err := q.c.sendControl(dst, []uint64{tag(kindTerm, 0)}); err != nil {
					panic(fmt.Sprintf("comm: term to %d: %v", dst, err))
				}
			}
			return
		}
		prevSent, prevRecv = sumSent, sumRecv
	}
}

func (q *Queue) drainWorker() {
	for {
		f, ok := q.c.next(func(t uint64) bool {
			k := t & kindMask
			return k == kindData || k == kindProbe || k == kindTerm
		})
		if !ok {
			runtime.Gosched()
			continue
		}
		switch f.Words[0] & kindMask {
		case kindData:
			q.processData(f.Words)
		case kindProbe:
			// Flush before reporting, so buffered forwards are visible in the
			// counters (otherwise the protocol could terminate early).
			q.Flush()
			round := f.Words[0] >> 16
			reply := []uint64{tag(kindReply, round), uint64(q.sent), uint64(q.recv)}
			if err := q.c.sendControl(0, reply); err != nil {
				panic(fmt.Sprintf("comm: reply: %v", err))
			}
		case kindTerm:
			return
		}
	}
}

// Buffered returns the number of words currently buffered (for tests).
func (q *Queue) Buffered() int { return q.buffered }

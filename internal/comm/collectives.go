package comm

import "fmt"

// Collectives. Simple coordinator-rooted implementations: their cost is
// irrelevant to the measured quantities (they are metered as control
// traffic), they only need to be correct on both transports.

// Barrier blocks until every PE has entered it.
func (c *Comm) Barrier() {
	e := c.nextEpoch(kindBarrier)
	p := c.Size()
	if c.Rank() != 0 {
		c.mustControl(0, []uint64{tag(kindBarrier, e)})
		c.waitTag(tag(kindRelease, e))
		return
	}
	for got := 1; got < p; got++ {
		c.waitTag(tag(kindBarrier, e))
	}
	for dst := 1; dst < p; dst++ {
		c.mustControl(dst, []uint64{tag(kindRelease, e)})
	}
}

// AllreduceSum sums vec element-wise over all PEs; every PE receives the
// result (vec is not modified).
func (c *Comm) AllreduceSum(vec []uint64) []uint64 {
	e := c.nextEpoch(kindReduce)
	p := c.Size()
	if c.Rank() != 0 {
		msg := make([]uint64, 1+len(vec))
		msg[0] = tag(kindReduce, e)
		copy(msg[1:], vec)
		c.mustControl(0, msg)
		f := c.waitTag(tag(kindBcast, e))
		out := make([]uint64, len(f.Words)-1)
		copy(out, f.Words[1:])
		return out
	}
	acc := make([]uint64, len(vec))
	copy(acc, vec)
	for got := 1; got < p; got++ {
		f := c.waitTag(tag(kindReduce, e))
		if len(f.Words)-1 != len(acc) {
			panic(fmt.Sprintf("comm: allreduce length mismatch: %d vs %d", len(f.Words)-1, len(acc)))
		}
		for i, w := range f.Words[1:] {
			acc[i] += w
		}
	}
	msg := make([]uint64, 1+len(acc))
	msg[0] = tag(kindBcast, e)
	copy(msg[1:], acc)
	for dst := 1; dst < p; dst++ {
		c.mustControl(dst, msg)
	}
	return acc
}

// Gather collects each PE's vector at rank 0 (indexed by rank); other ranks
// receive nil.
func (c *Comm) Gather(vec []uint64) [][]uint64 {
	e := c.nextEpoch(kindGather)
	p := c.Size()
	if c.Rank() != 0 {
		msg := make([]uint64, 1+len(vec))
		msg[0] = tag(kindGather, e)
		copy(msg[1:], vec)
		c.mustControl(0, msg)
		return nil
	}
	out := make([][]uint64, p)
	out[0] = append([]uint64(nil), vec...)
	for got := 1; got < p; got++ {
		f := c.wait(func(t uint64) bool { return t == tag(kindGather, e) })
		out[f.Src] = append([]uint64(nil), f.Words[1:]...)
	}
	return out
}

// Broadcast sends vec from rank 0 to everyone and returns it (rank 0's input
// is passed through).
func (c *Comm) Broadcast(vec []uint64) []uint64 {
	e := c.nextEpoch(kindBcast)
	if c.Rank() == 0 {
		msg := make([]uint64, 1+len(vec))
		msg[0] = tag(kindBcast, e)
		copy(msg[1:], vec)
		for dst := 1; dst < c.Size(); dst++ {
			c.mustControl(dst, msg)
		}
		return vec
	}
	f := c.waitTag(tag(kindBcast, e))
	out := make([]uint64, len(f.Words)-1)
	copy(out, f.Words[1:])
	return out
}

// DenseExchange performs a dense irregular all-to-all: data[j] goes to PE j
// (may be empty or nil), and the result holds one slice per source PE. This
// is the "simple dense all-to-all" the paper uses for the ghost degree
// exchange; the traffic is metered as data.
func (c *Comm) DenseExchange(data [][]uint64) [][]uint64 {
	e := c.nextEpoch(kindDense)
	p := c.Size()
	if len(data) != p {
		panic(fmt.Sprintf("comm: DenseExchange needs %d slices, got %d", p, len(data)))
	}
	me := c.Rank()
	out := make([][]uint64, p)
	for dst := 0; dst < p; dst++ {
		if dst == me {
			out[me] = append([]uint64(nil), data[me]...)
			continue
		}
		msg := make([]uint64, 1+len(data[dst]))
		msg[0] = tag(kindDense, e)
		copy(msg[1:], data[dst])
		c.M.PayloadWords += int64(len(data[dst]))
		if err := c.sendData(dst, msg); err != nil {
			raiseSendErr("dense exchange", dst, err)
		}
	}
	for got := 1; got < p; got++ {
		f := c.wait(func(t uint64) bool { return t == tag(kindDense, e) })
		c.M.RecvFrames++
		c.M.RecvWords += int64(len(f.Words))
		out[f.Src] = f.Words[1:]
	}
	return out
}

func (c *Comm) mustControl(dst int, words []uint64) {
	if err := c.sendControl(dst, words); err != nil {
		raiseSendErr("control", dst, err)
	}
}

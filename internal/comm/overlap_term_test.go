package comm

import (
	"sync/atomic"
	"testing"

	"repro/internal/transport"
)

// The overlapped pipeline enters Drain while frames from its eager flushes
// are still in flight, and keeps doing local work (stealing parked records)
// through DrainWith's progress callback. These tests pin the termination
// detector against exactly that regime: data frames held back on the wire
// long after their send counters were reported, control frames overtaking
// them, and progress work interleaved with the stabilization rounds.

// delayNet wraps a network so every endpoint's data (byte) frames are held
// for delay Recv polls after arrival, simulating slow in-flight traffic.
// Word frames — the probe/reply/term control plane — pass through
// immediately, so the protocol sees counter reports that are ahead of the
// data they describe.
type delayNet struct {
	inner transport.Network
	delay int
}

func (n *delayNet) Endpoint(rank int) (transport.Endpoint, error) {
	ep, err := n.inner.Endpoint(rank)
	if err != nil {
		return nil, err
	}
	return &delayEndpoint{Endpoint: ep, delay: n.delay}, nil
}

func (n *delayNet) Close() error { return n.inner.Close() }

type heldFrame struct {
	f   transport.Frame
	due int
}

// delayEndpoint is used from its PE's goroutine only (the transport
// contract), so the held queue needs no locking.
type delayEndpoint struct {
	transport.Endpoint
	delay int
	tick  int
	held  []heldFrame
}

func (e *delayEndpoint) Recv() (transport.Frame, bool) {
	e.tick++
	if len(e.held) > 0 && e.held[0].due <= e.tick {
		f := e.held[0].f
		e.held = e.held[1:]
		return f, true
	}
	for {
		f, ok := e.Endpoint.Recv()
		if !ok {
			return transport.Frame{}, false
		}
		if f.Bytes != nil {
			// Data frame: park it; control frames keep flowing past it.
			e.held = append(e.held, heldFrame{f, e.tick + e.delay})
			continue
		}
		return f, true
	}
}

func TestDrainToleratesDelayedInFlightFrames(t *testing.T) {
	for _, indirect := range []bool{false, true} {
		for _, delay := range []int{3, 40} {
			const p = 5
			var received atomic.Int64
			net := &delayNet{inner: transport.NewChanNetwork(p), delay: delay}
			ms := runClusterOn(t, net, p, 16, indirect, func(q *Queue) {},
				func(rank int, c *Comm, q *Queue) {
					q.Handle(0, func(src int, words []uint64) {
						received.Add(1)
						// Cascade: handlers fire new sends mid-drain, whose
						// frames are delayed again.
						if ttl := words[0]; ttl > 0 {
							q.Send(0, (rank+1)%p, []uint64{ttl - 1})
						}
					})
					c.Barrier()
					q.Send(0, (rank+1)%p, []uint64{uint64(p - 1)})
					q.Drain()
				})
			want := int64(p * p)
			if received.Load() != want {
				t.Fatalf("indirect=%v delay=%d: %d receipts, want %d",
					indirect, delay, received.Load(), want)
			}
			var idle int64
			for _, m := range ms {
				idle += m.IdleNs
			}
			if delay >= 40 && idle == 0 {
				t.Errorf("indirect=%v delay=%d: delayed frames recorded no idle time", indirect, delay)
			}
		}
	}
}

func TestDrainWithProgressStealsWhileWaiting(t *testing.T) {
	// Each rank seeds parked local work; the progress callback chews it
	// whenever the detector would otherwise idle-wait (the overlapped
	// pipeline's steal), and the caller finishes the remainder after
	// DrainWith returns — drain termination must be unaffected.
	const p = 4
	const parked = 256
	var received, stolen, calls atomic.Int64
	net := &delayNet{inner: transport.NewChanNetwork(p), delay: 25}
	runClusterOn(t, net, p, 8, false, func(q *Queue) {},
		func(rank int, c *Comm, q *Queue) {
			q.Handle(0, func(int, []uint64) { received.Add(1) })
			c.Barrier()
			for dst := 0; dst < p; dst++ {
				if dst != rank {
					q.Send(0, dst, []uint64{uint64(rank)})
				}
			}
			left := parked
			q.DrainWith(func() bool {
				calls.Add(1)
				if left == 0 {
					return false
				}
				left--
				stolen.Add(1)
				return true
			})
			stolen.Add(int64(left)) // caller drains the rest, like the pipeline
		})
	if received.Load() != p*(p-1) {
		t.Fatalf("%d receipts, want %d", received.Load(), p*(p-1))
	}
	if stolen.Load() != p*parked {
		t.Fatalf("%d work units done, want %d", stolen.Load(), p*parked)
	}
	if calls.Load() == 0 {
		t.Errorf("progress callback never invoked despite delayed frames")
	}
}

package comm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/transport"
)

// Group is a sub-communicator over an ordered subset of ranks — the row and
// column communicators of the 2D block grid. Its collectives are metered as
// DATA (frames, words, raw vs encoded bytes), unlike the rank-0-rooted
// control collectives in collectives.go: block broadcasts ARE the 2D
// algorithm's communication volume, so they must appear in the same
// counters the 1D queue traffic does, codec-encoded the same way.
//
// Frames are tagged kindGroup with the 48-bit epoch split into a caller
// chosen 16-bit group ID and a per-group sequence number, so interleaved
// collectives on the row and the column group (or early arrivals from the
// next round) demultiplex through the ordinary stash, never across groups.
// Every member must call the same sequence of collectives on a group.
type Group struct {
	c       *Comm
	gid     uint64
	members []int
	idx     int
	seq     uint64
	scratch []byte // reusable encode buffer (root side)
}

// NewGroup builds a sub-communicator. members must be strictly ascending,
// include the caller's rank, and gid — unique per group within the run —
// must fit 16 bits.
func (c *Comm) NewGroup(gid uint64, members []int) (*Group, error) {
	if gid >= 1<<16 {
		return nil, fmt.Errorf("comm: group id %d does not fit 16 bits", gid)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("comm: group needs members")
	}
	idx := -1
	for i, r := range members {
		if i > 0 && r <= members[i-1] {
			return nil, fmt.Errorf("comm: group members not strictly ascending at %d", i)
		}
		if r < 0 || r >= c.Size() {
			return nil, fmt.Errorf("comm: group member %d outside communicator of size %d", r, c.Size())
		}
		if r == c.Rank() {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("comm: rank %d is not a member of group %d", c.Rank(), gid)
	}
	return &Group{c: c, gid: gid, members: members, idx: idx}, nil
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// Index returns the caller's position within the member list.
func (g *Group) Index() int { return g.idx }

// nextTag advances the group's collective sequence.
func (g *Group) nextTag() uint64 {
	t := tag(kindGroup, g.gid<<32|g.seq&0xffffffff)
	g.seq++
	return t
}

// memberIndex maps a global rank to its position in the member list.
func (g *Group) memberIndex(rank int) int {
	for i, r := range g.members {
		if r == rank {
			return i
		}
	}
	panic(fmt.Sprintf("comm: rank %d is not a member of group %d", rank, g.gid))
}

// BcastOp is an in-flight split-phase broadcast handle (a value: posting
// and completing allocate nothing). Obtained from IBcast, resolved by Wait.
type BcastOp struct {
	g     *Group
	t     uint64
	codec Codec
	words []uint64
	root  int
}

// IBcast posts a broadcast of words from the member at index root and
// returns immediately with a completion handle. The root's frames leave at
// post time (transport sends never block), so a later round's IBcast can be
// in flight while the current round's payload is still being consumed —
// the tag sequence disambiguates, since every member advances the group
// sequence at post in the same SPMD program order. Receivers hand the
// payload words to Wait; until then arriving frames park in the inbox or
// the stash. The payload crosses the wire codec-encoded and is metered as
// data traffic.
func (g *Group) IBcast(root int, words []uint64, codec Codec) BcastOp {
	op := BcastOp{g: g, t: g.nextTag(), codec: codec, words: words, root: root}
	if g.Size() == 1 || g.idx != root {
		return op
	}
	g.scratch = op.codec.AppendEncoded(g.scratch[:0], words)
	rawWords := 1 + len(words)
	for i, dst := range g.members {
		if i == root {
			continue
		}
		frame := transport.GetBuf(8 + len(g.scratch))
		frame = binary.LittleEndian.AppendUint64(frame, op.t)
		frame = append(frame, g.scratch...)
		g.c.M.PayloadWords += int64(len(words))
		if err := g.c.sendDataBytes(dst, frame, rawWords); err != nil {
			panic(fmt.Sprintf("comm: group bcast to %d: %v", dst, err))
		}
	}
	return op
}

// Wait completes the broadcast: the root (and a size-1 group) gets its own
// payload back unchanged; every other member blocks for the frame — the
// wait metered into Metrics.IdleNs — and returns the decoded words in a
// pooled buffer. Hand receiver-side buffers back via Recycle once consumed
// so the steady state allocates nothing; never Recycle the root's return
// (it is the caller's own payload slice).
func (op BcastOp) Wait() []uint64 {
	g := op.g
	if g.Size() == 1 || g.idx == op.root {
		return op.words
	}
	f := g.c.waitTagIdle(op.t)
	out, err := op.codec.AppendDecoded(g.c.getWordBuf()[:0], f.Bytes[8:])
	if err != nil {
		panic(fmt.Sprintf("comm: group bcast decode: %v", err))
	}
	g.c.M.RecvFrames++
	g.c.M.RecvWords += int64(1 + len(out))
	g.c.M.RecvEncodedBytes += int64(len(f.Bytes))
	transport.PutBuf(f.Bytes)
	return out
}

// Bcast is the blocking broadcast: IBcast posted and completed in place.
// Same buffer discipline as Wait.
func (g *Group) Bcast(root int, words []uint64, codec Codec) []uint64 {
	return g.IBcast(root, words, codec).Wait()
}

// Recycle returns a buffer obtained from a non-root Wait/Bcast to the
// communicator-wide free list (shared across this Comm's groups).
func (g *Group) Recycle(buf []uint64) { g.c.recycleWordBuf(buf) }

// Allgather contributes words from every member and returns one slice per
// member, indexed by member position (the caller's own entry is a copy).
// Like Bcast the traffic is codec-encoded data.
func (g *Group) Allgather(words []uint64, codec Codec) [][]uint64 {
	t := g.nextTag()
	out := make([][]uint64, g.Size())
	out[g.idx] = append([]uint64(nil), words...)
	if g.Size() == 1 {
		return out
	}
	g.scratch = codec.AppendEncoded(g.scratch[:0], words)
	rawWords := 1 + len(words)
	for i, dst := range g.members {
		if i == g.idx {
			continue
		}
		frame := transport.GetBuf(8 + len(g.scratch))
		frame = binary.LittleEndian.AppendUint64(frame, t)
		frame = append(frame, g.scratch...)
		g.c.M.PayloadWords += int64(len(words))
		if err := g.c.sendDataBytes(dst, frame, rawWords); err != nil {
			panic(fmt.Sprintf("comm: group allgather to %d: %v", dst, err))
		}
	}
	for got := 1; got < g.Size(); got++ {
		f := g.c.wait(func(x uint64) bool { return x == t })
		src := g.memberIndex(f.Src)
		dec, err := codec.AppendDecoded(nil, f.Bytes[8:])
		if err != nil {
			panic(fmt.Sprintf("comm: group allgather decode: %v", err))
		}
		g.c.M.RecvFrames++
		g.c.M.RecvWords += int64(1 + len(dec))
		g.c.M.RecvEncodedBytes += int64(len(f.Bytes))
		transport.PutBuf(f.Bytes)
		out[src] = dec
	}
	return out
}

package comm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/transport"
)

// benchCluster runs body on p goroutine PEs once per iteration.
func benchCluster(b *testing.B, p, threshold int, indirect bool, body func(rank int, c *Comm, q *Queue)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		net := transport.NewChanNetwork(p)
		var wg sync.WaitGroup
		for rank := 0; rank < p; rank++ {
			ep, err := net.Endpoint(rank)
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(rank int, ep transport.Endpoint) {
				defer wg.Done()
				c := New(ep)
				var grid *Grid
				if indirect {
					grid = NewGrid(p)
				}
				body(rank, c, NewQueue(c, threshold, grid))
			}(rank, ep)
		}
		wg.Wait()
		net.Close()
	}
}

// BenchmarkQueueAllToAll measures the aggregated all-to-all pattern of the
// global phase, direct vs grid-indirect.
func BenchmarkQueueAllToAll(b *testing.B) {
	const p = 16
	const records = 200
	for _, indirect := range []bool{false, true} {
		name := "direct"
		if indirect {
			name = "indirect"
		}
		b.Run(name, func(b *testing.B) {
			benchCluster(b, p, 1<<12, indirect, func(rank int, c *Comm, q *Queue) {
				q.Handle(0, func(int, []uint64) {})
				payload := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
				for r := 0; r < records; r++ {
					for dst := 0; dst < p; dst++ {
						if dst != rank {
							q.Send(0, dst, payload)
						}
					}
				}
				q.Drain()
			})
		})
	}
}

// BenchmarkQueueFlushSteadyState is the allocation-regression gate for the
// wire side: one op is a burst of aggregated records, a Flush, and the full
// receive path on the peer (decode into the pooled arena, dispatch, recycle
// the frame). After the warmup rounds populate the per-destination buffers
// and the frame/arena pools, the path must report 0 allocs/op.
func BenchmarkQueueFlushSteadyState(b *testing.B) {
	net := transport.NewChanNetwork(2)
	defer net.Close()
	eps := make([]transport.Endpoint, 2)
	for rank := range eps {
		ep, err := net.Endpoint(rank)
		if err != nil {
			b.Fatal(err)
		}
		eps[rank] = ep
	}
	sender := NewQueue(New(eps[0]), 1<<20, nil)
	sender.SetCodec(0, DeltaVarint)
	recvQ := NewQueue(New(eps[1]), 1<<20, nil)
	recvQ.SetCodec(0, DeltaVarint)
	var processed atomic.Int64
	recvQ.Handle(0, func(int, []uint64) { processed.Add(1) })

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			if !recvQ.Poll() {
				runtime.Gosched()
			}
		}
		recvQ.Poll()
	}()

	payload := []uint64{100, 103, 104, 110, 117, 125, 126, 140}
	const burst = 64
	var sent int64
	round := func() {
		for k := 0; k < burst; k++ {
			sender.Send(0, 1, payload)
		}
		sender.Flush()
		sent += burst
		for processed.Load() < sent {
			// Lock-step with the receiver so its inbox cannot grow.
			runtime.Gosched()
		}
	}
	for i := 0; i < 16; i++ {
		round() // warmup: grow buffers, fill pools
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	b.StopTimer()
	stop.Store(true)
	<-done
}

// BenchmarkDrainIdle measures the fixed cost of the termination protocol.
func BenchmarkDrainIdle(b *testing.B) {
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCluster(b, p, 0, false, func(rank int, c *Comm, q *Queue) {
				q.Drain()
			})
		})
	}
}

// BenchmarkBarrier measures the collective round-trip.
func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCluster(b, p, 0, false, func(rank int, c *Comm, q *Queue) {
				for i := 0; i < 10; i++ {
					c.Barrier()
				}
			})
		})
	}
}

// BenchmarkDenseExchange measures the degree-exchange primitive.
func BenchmarkDenseExchange(b *testing.B) {
	const p = 16
	benchCluster(b, p, 0, false, func(rank int, c *Comm, q *Queue) {
		data := make([][]uint64, p)
		for dst := range data {
			data[dst] = make([]uint64, 64)
		}
		c.DenseExchange(data)
	})
}

// Package benchutil is the scaffolding shared by the repo's benchmark CLIs
// (cmd/kernbench, cmd/wirebench, cmd/prepbench): the benchmark stand-in
// instance catalog, JSON report emission, a testing.Benchmark wrapper, and
// the steady-state queue allocation probe that backs the CI allocation
// gate. Keeping it in one place means the CLIs cannot drift apart on what
// "the RGG2D stand-in" or "steady state" mean.
package benchutil

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/comm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/transport"
)

// Standin is one named benchmark instance. Build constructs a fresh copy;
// Skewed marks the power-law instances whose degree distribution
// concentrates work on hub-owning PEs (the load-balancing benchmarks'
// acceptance targets).
type Standin struct {
	Name   string
	Skewed bool
	Build  func() *graph.Graph
}

// Standins returns the benchmark stand-in catalog, in the order the bench
// CLIs report them: the RGG2D and RHG fixtures the wire benchmarks use,
// plus the RMAT skew case.
func Standins() []Standin {
	return []Standin{
		{"rgg2d-2^12", false, func() *graph.Graph { return gen.RGG2D(1<<12, 16, 42) }},
		{"rhg-2^12", true, func() *graph.Graph {
			return gen.RHG(gen.RHGConfig{N: 1 << 12, AvgDegree: 16, Gamma: 2.8, Seed: 42})
		}},
		{"rmat-2^13", true, func() *graph.Graph { return gen.RMAT(gen.DefaultRMAT(13, 7)) }},
	}
}

// ByName returns the named stand-in; unknown names panic (a bench CLI
// asking for a nonexistent instance is a programming error).
func ByName(name string) Standin {
	for _, s := range Standins() {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("benchutil: unknown stand-in %q", name))
}

// WriteJSON emits v as indented JSON on stdout; failures abort the CLI.
// tool names the command for the error message.
func WriteJSON(tool string, v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}

// QueueSteadyStateAllocs measures allocs/op of the aggregated flush +
// receive path between two PEs after warmup (the same shape as
// comm.BenchmarkQueueFlushSteadyState): per-destination word buffers, byte
// frames, and decode arenas are all pooled, so the steady state must report
// zero.
func QueueSteadyStateAllocs() int64 {
	net := transport.NewChanNetwork(2)
	defer net.Close()
	ep0, _ := net.Endpoint(0)
	ep1, _ := net.Endpoint(1)
	sender := comm.NewQueue(comm.New(ep0), 1<<20, nil)
	sender.SetCodec(0, comm.DeltaVarint)
	recvQ := comm.NewQueue(comm.New(ep1), 1<<20, nil)
	recvQ.SetCodec(0, comm.DeltaVarint)
	var processed atomic.Int64
	recvQ.Handle(0, func(int, []uint64) { processed.Add(1) })

	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			if !recvQ.Poll() {
				runtime.Gosched()
			}
		}
		recvQ.Poll()
	}()

	payload := []uint64{100, 103, 104, 110, 117, 125, 126, 140}
	const burst = 64
	var sent int64
	round := func() {
		for k := 0; k < burst; k++ {
			sender.Send(0, 1, payload)
		}
		sender.Flush()
		sent += burst
		for processed.Load() < sent {
			runtime.Gosched()
		}
	}
	for i := 0; i < 16; i++ {
		round()
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			round()
		}
	})
	stop.Store(true)
	<-done
	return res.AllocsPerOp()
}

package transport

import (
	"sync"
	"testing"
	"time"
)

func testNetworkDelivery(t *testing.T, mk func(p int) (Network, func())) {
	t.Helper()
	const p = 4
	net, cleanup := mk(p)
	defer cleanup()

	eps := make([]Endpoint, p)
	for i := 0; i < p; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		if ep.Rank() != i || ep.Size() != p {
			t.Fatalf("endpoint identity wrong: %d/%d", ep.Rank(), ep.Size())
		}
	}
	// Every PE sends a tagged frame to every other PE.
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s == d {
				continue
			}
			if err := eps[s].Send(d, []uint64{uint64(s), uint64(d), 12345}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Each PE must receive exactly p-1 frames with correct content.
	for d := 0; d < p; d++ {
		got := make(map[uint64]bool)
		deadline := time.Now().Add(5 * time.Second)
		for len(got) < p-1 {
			f, ok := eps[d].Recv()
			if !ok {
				if time.Now().After(deadline) {
					t.Fatalf("PE %d: timeout, got %d frames", d, len(got))
				}
				time.Sleep(time.Millisecond)
				continue
			}
			if len(f.Words) != 3 || f.Words[1] != uint64(d) || f.Words[2] != 12345 {
				t.Fatalf("PE %d: bad frame %v", d, f.Words)
			}
			if f.Src != int(f.Words[0]) {
				t.Fatalf("PE %d: src %d does not match payload %d", d, f.Src, f.Words[0])
			}
			if got[f.Words[0]] {
				t.Fatalf("PE %d: duplicate frame from %d", d, f.Src)
			}
			got[f.Words[0]] = true
		}
	}
}

func TestChanNetworkDelivery(t *testing.T) {
	testNetworkDelivery(t, func(p int) (Network, func()) {
		n := NewChanNetwork(p)
		return n, func() { n.Close() }
	})
}

func TestTCPNetworkDelivery(t *testing.T) {
	testNetworkDelivery(t, func(p int) (Network, func()) {
		n, err := NewLoopbackTCPNetwork(p)
		if err != nil {
			t.Fatal(err)
		}
		return n, func() { n.Close() }
	})
}

func TestChanNetworkFIFOPerPair(t *testing.T) {
	n := NewChanNetwork(2)
	defer n.Close()
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	for i := 0; i < 100; i++ {
		if err := a.Send(1, []uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		f, ok := b.Recv()
		if !ok {
			t.Fatal("frame missing")
		}
		if f.Words[0] != uint64(i) {
			t.Fatalf("order violated: got %d at position %d", f.Words[0], i)
		}
	}
}

func TestTCPFIFOPerPair(t *testing.T) {
	n, err := NewLoopbackTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(1, []uint64{uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < count; {
		f, ok := b.Recv()
		if !ok {
			if time.Now().After(deadline) {
				t.Fatalf("timeout at %d", i)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if f.Words[0] != uint64(i) {
			t.Fatalf("order violated: got %d at %d", f.Words[0], i)
		}
		i++
	}
}

func TestTCPSelfSend(t *testing.T) {
	n, err := NewLoopbackTCPNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ep, _ := n.Endpoint(0)
	if err := ep.Send(0, []uint64{9}); err != nil {
		t.Fatal(err)
	}
	f, ok := ep.Recv()
	if !ok || f.Words[0] != 9 || f.Src != 0 {
		t.Fatalf("self send broken: %v %v", f, ok)
	}
}

func TestTCPLargeFrame(t *testing.T) {
	n, err := NewLoopbackTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	big := make([]uint64, 1<<17) // 1 MiB
	for i := range big {
		big[i] = uint64(i) * 2654435761
	}
	if err := a.Send(1, big); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		f, ok := b.Recv()
		if ok {
			if len(f.Words) != len(big) {
				t.Fatalf("length %d, want %d", len(f.Words), len(big))
			}
			for i := range big {
				if f.Words[i] != big[i] {
					t.Fatalf("corruption at word %d", i)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestChanSendToInvalidRank(t *testing.T) {
	n := NewChanNetwork(2)
	defer n.Close()
	ep, _ := n.Endpoint(0)
	if err := ep.Send(5, []uint64{1}); err == nil {
		t.Fatal("want error for invalid destination")
	}
	if _, err := n.Endpoint(9); err == nil {
		t.Fatal("want error for invalid endpoint rank")
	}
}

func TestChanConcurrentSenders(t *testing.T) {
	const p = 8
	const per = 1000
	n := NewChanNetwork(p)
	defer n.Close()
	dstEp, _ := n.Endpoint(0)
	var wg sync.WaitGroup
	for s := 1; s < p; s++ {
		ep, _ := n.Endpoint(s)
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send(0, []uint64{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	got := 0
	for {
		_, ok := dstEp.Recv()
		if !ok {
			break
		}
		got++
	}
	if got != (p-1)*per {
		t.Fatalf("received %d frames, want %d", got, (p-1)*per)
	}
}

func TestClosedEndpointRejectsSend(t *testing.T) {
	n := NewChanNetwork(2)
	ep0, _ := n.Endpoint(0)
	ep1, _ := n.Endpoint(1)
	if err := ep1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep0.Send(1, []uint64{1}); err == nil {
		t.Fatal("send to closed endpoint should fail")
	}
}

package transport

import "sync"

// Byte-frame buffer pool. Data frames are produced at every queue flush and
// consumed at every receive; recycling their backing arrays through one
// process-wide free list makes the steady-state flush/receive path
// allocation-free. Ownership flows with the frame: a sender that obtained
// its buffer from GetBuf hands it to SendBytes, and whoever finishes
// consuming a frame (the receiver after dispatch, or the TCP writer after
// the payload is on the wire) returns it with PutBuf.
var bufPool struct {
	mu    sync.Mutex
	bufs  [][]byte
	bytes int
}

// maxPooledBufs and maxPooledBytes cap the free list by count and by total
// capacity, so neither a burst of many frames nor a few huge ones (δ-sized
// encoded frames can reach megabytes) pins unbounded memory for the process
// lifetime.
const (
	maxPooledBufs  = 256
	maxPooledBytes = 64 << 20
)

// GetBuf returns a zero-length byte buffer with capacity at least n,
// recycled from the pool when possible. A pooled buffer too small for this
// request is left in the pool for a smaller one (large buffers get pushed
// on top as they recycle, so mixed frame sizes converge instead of draining
// the pool).
func GetBuf(n int) []byte {
	bufPool.mu.Lock()
	if k := len(bufPool.bufs); k > 0 && cap(bufPool.bufs[k-1]) >= n {
		b := bufPool.bufs[k-1]
		bufPool.bufs[k-1] = nil
		bufPool.bufs = bufPool.bufs[:k-1]
		bufPool.bytes -= cap(b)
		bufPool.mu.Unlock()
		return b[:0]
	}
	bufPool.mu.Unlock()
	return make([]byte, 0, n)
}

// PutBuf returns a buffer to the pool. The caller must not touch b after the
// call. Nil or zero-capacity buffers are ignored; buffers beyond the pool
// caps are dropped for the GC.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	bufPool.mu.Lock()
	if len(bufPool.bufs) < maxPooledBufs && bufPool.bytes+cap(b) <= maxPooledBytes {
		bufPool.bufs = append(bufPool.bufs, b[:0])
		bufPool.bytes += cap(b)
	}
	bufPool.mu.Unlock()
}

package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPEndpoint attaches one PE to a cluster over TCP. Every endpoint listens
// on its own address and lazily dials peers on first send. Wire format per
// connection: an 8-byte handshake carrying a magic constant and the dialer's
// rank (both validated by the acceptor), then frames of
// [8-byte header][payload][CRC32 trailer for byte frames]. The header's top
// bit distinguishes the two frame shapes: clear means a word frame (low bits
// = word count, payload is count × 8-byte little-endian words), set means a
// byte frame (low bits = byte count, payload shipped verbatim behind a
// CRC32-Castagnoli trailer over header+payload — this is how codec-encoded
// data frames reach the wire without re-serialization, and how corruption is
// rejected instead of mis-decoded). An all-ones header is a heartbeat: no
// payload, never queued, only refreshes the peer's liveness clock.
//
// Failure semantics: writes carry a per-write deadline and run on one writer
// goroutine per connection (senders enqueue and never block on the network,
// so a stalled peer cannot wedge other senders). A failed write triggers
// reconnect with exponential backoff; when the bounded retries are exhausted
// the peer is marked dead and every later send to it returns a typed
// *PeerDownError. With heartbeats enabled, peers silent past the timeout are
// marked dead the same way. Health() reports the first condemned peer;
// Faults() counts absorbed and surfaced failure events.
//
// Received frames land in the same unbounded inbox structure the in-process
// transport uses, so everything above the transport behaves identically.
type TCPEndpoint struct {
	rank  int
	addrs []string
	ln    net.Listener

	inMu   sync.Mutex
	queue  []Frame
	head   int
	closed bool

	outMu sync.Mutex
	conns map[int]*tcpConn

	accMu    sync.Mutex
	accepted []net.Conn
	inConns  map[int]net.Conn // inbound conns by validated handshake rank

	downMu  sync.Mutex
	down    map[int]*PeerDownError
	reasons map[int]string // last attributed close/condemn reason per peer

	hbMu      sync.Mutex
	lastHeard map[int]time.Time

	faults  faultCounters
	closing atomic.Bool
	stopHB  chan struct{}

	wg  sync.WaitGroup
	opt TCPOptions
}

// tcpConn is one outbound connection: an unbounded outbox drained by a
// dedicated writer goroutine. Senders only ever take mu long enough to
// append; all network I/O (including the initial dial, reconnects, and
// deadline-bounded writes) happens on the writer, so no send path can block
// on a stalled peer.
type tcpConn struct {
	e   *TCPEndpoint
	dst int

	mu      sync.Mutex
	cond    *sync.Cond
	outbox  [][]byte
	writing bool // a dequeued frame is on the writer, not yet on the wire
	closed  bool
	dead    *PeerDownError
	c       net.Conn // current conn; pointer guarded by mu, I/O done outside it
}

// TCPOptions tunes connection establishment and failure detection.
type TCPOptions struct {
	DialTimeout   time.Duration // total time to keep retrying a peer dial (default 30s)
	RetryInterval time.Duration // pause between dial retries and base reconnect backoff (default 20ms)

	// WriteTimeout bounds every frame write (SetWriteDeadline); a write that
	// exceeds it counts as a send failure and enters the reconnect path.
	// Default 10s; negative disables the deadline.
	WriteTimeout time.Duration
	// MaxSendRetries is how many reconnect-with-backoff attempts a failed
	// write gets before the peer is marked dead (default 3; negative means
	// no retries).
	MaxSendRetries int

	// HeartbeatInterval > 0 enables the keepalive loop: the endpoint sends a
	// heartbeat frame to every established outbound connection each interval
	// and marks peers it has heard nothing from (heartbeats or frames, on
	// inbound connections) for HeartbeatTimeout as dead.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence threshold; default 4×HeartbeatInterval.
	HeartbeatTimeout time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.RetryInterval == 0 {
		o.RetryInterval = 20 * time.Millisecond
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.MaxSendRetries == 0 {
		o.MaxSendRetries = 3
	}
	if o.HeartbeatInterval > 0 && o.HeartbeatTimeout == 0 {
		o.HeartbeatTimeout = 4 * o.HeartbeatInterval
	}
	return o
}

// ListenTCP starts the endpoint for rank over the given peer address list
// (addrs[i] is the listen address of rank i). It returns once the local
// listener is ready, so starting all ranks concurrently is safe.
func ListenTCP(rank int, addrs []string, opt TCPOptions) (*TCPEndpoint, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("transport: rank %d out of range for %d addrs", rank, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[rank], err)
	}
	return newTCPEndpoint(rank, addrs, ln, opt), nil
}

func newTCPEndpoint(rank int, addrs []string, ln net.Listener, opt TCPOptions) *TCPEndpoint {
	e := &TCPEndpoint{
		rank: rank, addrs: addrs, ln: ln,
		conns:     make(map[int]*tcpConn),
		inConns:   make(map[int]net.Conn),
		down:      make(map[int]*PeerDownError),
		reasons:   make(map[int]string),
		lastHeard: make(map[int]time.Time),
		stopHB:    make(chan struct{}),
		opt:       opt.withDefaults(),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	if e.opt.HeartbeatInterval > 0 {
		e.wg.Add(1)
		go e.heartbeatLoop()
	}
	return e
}

// Addr returns the actual listen address (useful with ":0" addresses).
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.accMu.Lock()
		e.accepted = append(e.accepted, c)
		e.accMu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

const (
	// tcpBytesFlag marks a byte frame in the length header's top bit.
	tcpBytesFlag = uint64(1) << 63
	// tcpHeartbeat is the reserved all-ones header of a heartbeat frame.
	tcpHeartbeat = ^uint64(0)
	// tcpMagic occupies the high 32 bits of the handshake word; a connection
	// whose handshake lacks it (a stray client, a corrupted stream) is
	// rejected before any frame is read.
	tcpMagic = uint64(0x7C3A94E1)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// condemnConn records an attributed reason for dropping an inbound
// connection (src < 0 when the handshake never identified one) and closes it.
func (e *TCPEndpoint) condemnConn(c net.Conn, src int, reason string) {
	if src >= 0 {
		e.downMu.Lock()
		e.reasons[src] = reason
		e.downMu.Unlock()
	}
	c.Close()
}

// markPeerDown condemns a peer: the first caller's error sticks, later sends
// to the rank fail fast with it, and Health() reports it.
func (e *TCPEndpoint) markPeerDown(rank int, reason string, err error) *PeerDownError {
	e.downMu.Lock()
	defer e.downMu.Unlock()
	if pd, ok := e.down[rank]; ok {
		return pd
	}
	pd := &PeerDownError{Rank: rank, Reason: reason, Err: err}
	e.down[rank] = pd
	e.reasons[rank] = reason
	e.faults.peersDown.Add(1)
	return pd
}

// peerDown returns the terminal error for rank, if it has one.
func (e *TCPEndpoint) peerDown(rank int) *PeerDownError {
	e.downMu.Lock()
	defer e.downMu.Unlock()
	return e.down[rank]
}

// Health reports the first condemned peer in rank order, or nil while every
// peer looks reachable. It implements HealthReporter.
func (e *TCPEndpoint) Health() error {
	e.downMu.Lock()
	defer e.downMu.Unlock()
	for r := 0; r < len(e.addrs); r++ {
		if pd, ok := e.down[r]; ok {
			return pd
		}
	}
	return nil
}

// Faults returns this endpoint's cumulative fault counters. It implements
// FaultReporter.
func (e *TCPEndpoint) Faults() FaultStats { return e.faults.snapshot() }

// FaultReason returns the last attributed failure reason recorded for a peer
// ("" if none): why its connection was dropped or why it was marked dead.
func (e *TCPEndpoint) FaultReason(rank int) string {
	e.downMu.Lock()
	defer e.downMu.Unlock()
	return e.reasons[rank]
}

func (e *TCPEndpoint) noteHeard(src int) {
	if e.opt.HeartbeatInterval <= 0 {
		return
	}
	e.hbMu.Lock()
	e.lastHeard[src] = time.Now()
	e.hbMu.Unlock()
}

func (e *TCPEndpoint) heartbeatLoop() {
	defer e.wg.Done()
	tick := time.NewTicker(e.opt.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-e.stopHB:
			return
		case <-tick.C:
		}
		// Keepalive: one heartbeat frame per established outbound connection.
		e.outMu.Lock()
		conns := make([]*tcpConn, 0, len(e.conns))
		for _, tc := range e.conns {
			conns = append(conns, tc)
		}
		e.outMu.Unlock()
		for _, tc := range conns {
			hb := GetBuf(8)[:8]
			binary.LittleEndian.PutUint64(hb, tcpHeartbeat)
			tc.enqueue(hb) // a dead conn recycles the buffer itself
		}
		// Liveness: condemn peers we have heard nothing from past the
		// timeout. Only peers that completed an inbound handshake are
		// monitored — silence from a peer that never connected means it has
		// nothing to say, not that it died.
		now := time.Now()
		var lost []int
		e.hbMu.Lock()
		for src, at := range e.lastHeard {
			if now.Sub(at) > e.opt.HeartbeatTimeout {
				lost = append(lost, src)
				delete(e.lastHeard, src)
			}
		}
		e.hbMu.Unlock()
		for _, src := range lost {
			e.faults.heartbeatLoss.Add(1)
			e.markPeerDown(src, fmt.Sprintf("heartbeat timeout (> %v silent)", e.opt.HeartbeatTimeout), nil)
			e.accMu.Lock()
			c := e.inConns[src]
			e.accMu.Unlock()
			if c != nil {
				c.Close()
			}
		}
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer c.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return
	}
	// Handshake validation: the magic keeps stray clients and desynced
	// streams out; the rank range keeps a bad peer from impersonating a
	// nonexistent (or our own) rank and corrupting Frame.Src attribution.
	hs := binary.LittleEndian.Uint64(hdr[:])
	src := int(uint32(hs))
	if hs>>32 != tcpMagic || src < 0 || src >= len(e.addrs) || src == e.rank {
		e.faults.badHandshakes.Add(1)
		e.condemnConn(c, -1, fmt.Sprintf("invalid handshake %#x from %s", hs, c.RemoteAddr()))
		return
	}
	e.accMu.Lock()
	e.inConns[src] = c
	e.accMu.Unlock()
	e.noteHeard(src)
	buf := make([]byte, 0)
	var crcTrailer [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		h := binary.LittleEndian.Uint64(hdr[:])
		if h == tcpHeartbeat {
			e.noteHeard(src)
			continue
		}
		n := h &^ tcpBytesFlag
		// Sanity cap at 8 GiB per frame for both shapes (n counts words for
		// word frames, bytes for byte frames — byte frames get the larger
		// count so an encoded frame never hits a tighter limit than its raw
		// equivalent would have).
		if h&tcpBytesFlag == 0 && n > 1<<30 || n > 8<<30 {
			e.faults.corruptFrames.Add(1)
			e.condemnConn(c, src, fmt.Sprintf("corrupt frame header %#x from rank %d", h, src))
			return
		}
		var f Frame
		if h&tcpBytesFlag != 0 {
			// Byte frame: the payload is retained by the receiver, so it
			// needs its own backing array — recycled through the frame pool,
			// which the consumer refills with PutBuf after dispatch.
			data := GetBuf(int(n))[:n]
			if _, err := io.ReadFull(c, data); err != nil {
				PutBuf(data)
				return
			}
			if _, err := io.ReadFull(c, crcTrailer[:]); err != nil {
				PutBuf(data)
				return
			}
			crc := crc32.Update(0, castagnoli, hdr[:])
			crc = crc32.Update(crc, castagnoli, data)
			if crc != binary.LittleEndian.Uint32(crcTrailer[:]) {
				// Reject corruption instead of mis-decoding it: count it,
				// attribute it, and drop the stream (frame boundaries after a
				// corrupt payload cannot be trusted).
				e.faults.corruptFrames.Add(1)
				PutBuf(data)
				e.condemnConn(c, src, fmt.Sprintf("CRC mismatch on %d-byte frame from rank %d", n, src))
				return
			}
			f = Frame{Src: src, Bytes: data}
		} else {
			if uint64(cap(buf)) < 8*n {
				buf = make([]byte, 8*n)
			}
			buf = buf[:8*n]
			if _, err := io.ReadFull(c, buf); err != nil {
				return
			}
			words := make([]uint64, n)
			for i := range words {
				words[i] = binary.LittleEndian.Uint64(buf[8*i:])
			}
			f = Frame{Src: src, Words: words}
		}
		e.noteHeard(src)
		e.inMu.Lock()
		if e.closed {
			e.inMu.Unlock()
			PutBuf(f.Bytes)
			return
		}
		e.queue = append(e.queue, f)
		e.inMu.Unlock()
	}
}

// Rank returns this PE's rank.
func (e *TCPEndpoint) Rank() int { return e.rank }

// Size returns the number of PEs.
func (e *TCPEndpoint) Size() int { return len(e.addrs) }

// Send serializes words to dst. The frame is handed to dst's writer
// goroutine and put on the wire asynchronously; a send failure there
// surfaces on a *later* Send/SendBytes to the same rank as a *PeerDownError
// once the bounded reconnect attempts are exhausted. Sending to self is
// delivered locally without touching the network.
func (e *TCPEndpoint) Send(dst int, words []uint64) error {
	if dst == e.rank {
		e.inMu.Lock()
		defer e.inMu.Unlock()
		if e.closed {
			return errors.New("transport: endpoint closed")
		}
		e.queue = append(e.queue, Frame{Src: e.rank, Words: words})
		return nil
	}
	tc, err := e.conn(dst)
	if err != nil {
		return err
	}
	buf := GetBuf(8 + 8*len(words))[:8+8*len(words)]
	binary.LittleEndian.PutUint64(buf, uint64(len(words)))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8+8*i:], w)
	}
	return tc.enqueue(buf)
}

// SendBytes ships an already-serialized byte frame; the payload bytes go on
// the wire verbatim behind the length header, with a CRC32 trailer so the
// receiver can reject corruption. Same asynchronous error contract as Send.
func (e *TCPEndpoint) SendBytes(dst int, b []byte) error {
	if dst == e.rank {
		e.inMu.Lock()
		defer e.inMu.Unlock()
		if e.closed {
			PutBuf(b) // ownership transferred; nobody will consume it
			return errors.New("transport: endpoint closed")
		}
		e.queue = append(e.queue, Frame{Src: e.rank, Bytes: b})
		return nil
	}
	tc, err := e.conn(dst)
	if err != nil {
		PutBuf(b)
		return err
	}
	buf := GetBuf(8 + len(b) + 4)[:8+len(b)]
	binary.LittleEndian.PutUint64(buf, uint64(len(b))|tcpBytesFlag)
	copy(buf[8:], b)
	crc := crc32.Checksum(buf, castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	// The caller's frame (whose ownership passed to the transport) is done
	// once it is copied into the wire buffer; the wire buffer itself is
	// recycled by the writer goroutine after the bytes are on the wire.
	PutBuf(b)
	return tc.enqueue(buf)
}

// conn returns the outbound connection state for dst, creating it (and its
// writer goroutine) on first use. It fails fast if dst is already condemned.
func (e *TCPEndpoint) conn(dst int) (*tcpConn, error) {
	if pd := e.peerDown(dst); pd != nil {
		return nil, pd
	}
	e.outMu.Lock()
	defer e.outMu.Unlock()
	if tc, ok := e.conns[dst]; ok {
		return tc, nil
	}
	tc := &tcpConn{e: e, dst: dst}
	tc.cond = sync.NewCond(&tc.mu)
	e.conns[dst] = tc
	e.wg.Add(1)
	go tc.writeLoop()
	return tc, nil
}

// dialPeer dials dst and performs the handshake, retrying until the dial
// window closes. Used for both the initial connection and reconnects.
func (e *TCPEndpoint) dialPeer(dst int, window time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(window)
	var c net.Conn
	var err error
	for {
		if e.closing.Load() {
			return nil, errors.New("transport: endpoint closing")
		}
		c, err = net.DialTimeout("tcp", e.addrs[dst], e.opt.RetryInterval*10)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial rank %d (%s): %w", dst, e.addrs[dst], err)
		}
		time.Sleep(e.opt.RetryInterval)
	}
	var hs [8]byte
	binary.LittleEndian.PutUint64(hs[:], tcpMagic<<32|uint64(uint32(e.rank)))
	if e.opt.WriteTimeout > 0 {
		c.SetWriteDeadline(time.Now().Add(e.opt.WriteTimeout))
	}
	if _, err := c.Write(hs[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake to %d: %w", dst, err)
	}
	c.SetWriteDeadline(time.Time{})
	return c, nil
}

// enqueue appends a wire buffer to the outbox (never blocking on the
// network). It fails fast when the peer is already condemned or the endpoint
// closed, recycling the buffer in that case.
func (tc *tcpConn) enqueue(buf []byte) error {
	tc.mu.Lock()
	if tc.dead != nil {
		tc.mu.Unlock()
		PutBuf(buf)
		return tc.dead
	}
	if tc.closed {
		tc.mu.Unlock()
		PutBuf(buf)
		return errors.New("transport: endpoint closed")
	}
	tc.outbox = append(tc.outbox, buf)
	tc.cond.Signal()
	tc.mu.Unlock()
	return nil
}

// writeLoop drains the outbox onto the wire: one frame at a time, each write
// bounded by the write deadline, failures absorbed by reconnect-with-backoff
// until the retry budget is spent — at which point the peer is condemned and
// the remaining outbox is dropped.
func (tc *tcpConn) writeLoop() {
	e := tc.e
	defer e.wg.Done()
	for {
		tc.mu.Lock()
		for len(tc.outbox) == 0 && !tc.closed {
			tc.cond.Wait()
		}
		if tc.closed {
			tc.drainLocked()
			tc.mu.Unlock()
			return
		}
		buf := tc.outbox[0]
		tc.outbox[0] = nil
		tc.outbox = tc.outbox[1:]
		tc.writing = true
		tc.mu.Unlock()

		if err := tc.writeFrame(buf); err != nil {
			PutBuf(buf)
			pd := e.markPeerDown(tc.dst, fmt.Sprintf("send failed after %d reconnect attempts", maxRetries(e.opt)), err)
			tc.mu.Lock()
			tc.dead = pd
			tc.writing = false
			tc.drainLocked()
			tc.mu.Unlock()
			return
		}
		tc.mu.Lock()
		tc.writing = false
		tc.mu.Unlock()
		PutBuf(buf)
	}
}

// drainLocked recycles every queued wire buffer; callers hold tc.mu.
func (tc *tcpConn) drainLocked() {
	for i, b := range tc.outbox {
		PutBuf(b)
		tc.outbox[i] = nil
	}
	tc.outbox = nil
	if tc.c != nil {
		tc.c.Close()
		tc.c = nil
	}
}

func maxRetries(opt TCPOptions) int {
	if opt.MaxSendRetries < 0 {
		return 0
	}
	return opt.MaxSendRetries
}

// writeFrame puts one frame on the wire, establishing or re-establishing the
// connection as needed. Reconnects back off exponentially from RetryInterval.
// A frame that failed mid-write is resent from the start on the fresh
// connection (the peer discards the torn tail of the old stream), so frame
// boundaries survive reconnects; a frame whose write "failed" after actual
// delivery may be duplicated, which the wire contract (unordered, at-least-
// once under reconnect) permits.
func (tc *tcpConn) writeFrame(buf []byte) error {
	e := tc.e
	backoff := e.opt.RetryInterval
	var lastErr error
	for attempt := 0; ; attempt++ {
		tc.mu.Lock()
		c, closed := tc.c, tc.closed
		tc.mu.Unlock()
		// During Close's flush phase (closing set, conns not yet torn down) an
		// established connection still completes its write — that is the whole
		// point of the flush; only dials and reconnects give up.
		if closed || (e.closing.Load() && c == nil) {
			if lastErr == nil {
				lastErr = errors.New("transport: endpoint closing")
			}
			return lastErr
		}
		if c == nil {
			// First attempt gets the full dial window (cluster startup);
			// reconnects get one backoff-scaled slice per retry.
			window := e.opt.DialTimeout
			if attempt > 0 {
				window = backoff
			}
			nc, err := e.dialPeer(tc.dst, window)
			if err != nil {
				lastErr = err
				if attempt >= maxRetries(e.opt) {
					return lastErr
				}
				time.Sleep(backoff)
				backoff *= 2
				continue
			}
			if attempt > 0 {
				e.faults.reconnects.Add(1)
			}
			tc.mu.Lock()
			if tc.closed {
				tc.mu.Unlock()
				nc.Close()
				return errors.New("transport: endpoint closing")
			}
			tc.c = nc
			c = nc
			tc.mu.Unlock()
		}
		if e.opt.WriteTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(e.opt.WriteTimeout))
		}
		_, err := c.Write(buf)
		if err == nil {
			return nil
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			e.faults.writeTimeouts.Add(1)
		}
		lastErr = fmt.Errorf("transport: send to %d: %w", tc.dst, err)
		c.Close()
		tc.mu.Lock()
		tc.c = nil
		tc.mu.Unlock()
		if attempt >= maxRetries(e.opt) {
			return lastErr
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// Recv returns the next pending frame without blocking.
func (e *TCPEndpoint) Recv() (Frame, bool) {
	e.inMu.Lock()
	defer e.inMu.Unlock()
	if e.head >= len(e.queue) {
		if e.head > 0 {
			e.queue = e.queue[:0]
			e.head = 0
		}
		return Frame{}, false
	}
	f := e.queue[e.head]
	e.queue[e.head] = Frame{}
	e.head++
	if e.head > 1024 && e.head*2 > len(e.queue) {
		n := copy(e.queue, e.queue[e.head:])
		e.queue = e.queue[:n]
		e.head = 0
	}
	return f, true
}

// closeFlushTimeout bounds how long Close waits for queued frames to reach
// the wire. Send returns once a frame is enqueued, so without this flush a
// clean shutdown right after a completed Send could strand the frame in the
// outbox — fatal in the one-process-per-rank mode, where the final allreduce
// reply must survive the sender's exit. The bound keeps Close from hanging
// on a wedged peer; condemned connections are not waited on at all.
const closeFlushTimeout = 5 * time.Second

// flushOutboxes waits (bounded) for every live connection's queued and
// in-flight frames to hit the wire.
func (e *TCPEndpoint) flushOutboxes() {
	deadline := time.Now().Add(closeFlushTimeout)
	e.outMu.Lock()
	conns := make([]*tcpConn, 0, len(e.conns))
	for _, tc := range e.conns {
		conns = append(conns, tc)
	}
	e.outMu.Unlock()
	for _, tc := range conns {
		for {
			tc.mu.Lock()
			pending := tc.dead == nil && !tc.closed && (len(tc.outbox) > 0 || tc.writing)
			tc.mu.Unlock()
			if !pending || !time.Now().Before(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// Close flushes pending sends (bounded), then shuts down the listener, the
// heartbeat loop, every writer goroutine, and all connections, and joins them.
func (e *TCPEndpoint) Close() error {
	if e.closing.Swap(true) {
		e.wg.Wait()
		return nil
	}
	e.flushOutboxes()
	close(e.stopHB)
	e.inMu.Lock()
	e.closed = true
	for _, f := range e.queue[e.head:] {
		PutBuf(f.Bytes)
	}
	e.queue, e.head = nil, 0
	e.inMu.Unlock()
	err := e.ln.Close()
	e.outMu.Lock()
	for _, tc := range e.conns {
		tc.mu.Lock()
		tc.closed = true
		if tc.c != nil {
			tc.c.Close() // unsticks a writer blocked inside Write
		}
		tc.cond.Signal()
		tc.mu.Unlock()
	}
	e.outMu.Unlock()
	e.accMu.Lock()
	for _, c := range e.accepted {
		c.Close()
	}
	e.accMu.Unlock()
	e.wg.Wait()
	return err
}

// TCPNetwork implements Network by spinning up all endpoints in one process
// on loopback — used by tests and the tcpcluster example to exercise the
// real wire path without multiple processes.
type TCPNetwork struct {
	eps []*TCPEndpoint
}

// NewLoopbackTCPNetwork creates p endpoints on 127.0.0.1 ephemeral ports
// with default options.
func NewLoopbackTCPNetwork(p int) (*TCPNetwork, error) {
	return NewLoopbackTCPNetworkOpts(p, TCPOptions{})
}

// NewLoopbackTCPNetworkOpts is NewLoopbackTCPNetwork with explicit transport
// options (heartbeats, write deadlines, retry budgets) applied to every
// endpoint.
func NewLoopbackTCPNetworkOpts(p int, opt TCPOptions) (*TCPNetwork, error) {
	// First pass: bind listeners on port 0 to learn addresses.
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close()
			}
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	net_ := &TCPNetwork{eps: make([]*TCPEndpoint, p)}
	for i := 0; i < p; i++ {
		net_.eps[i] = newTCPEndpoint(i, addrs, lns[i], opt)
	}
	return net_, nil
}

// Endpoint returns the endpoint for rank.
func (n *TCPNetwork) Endpoint(rank int) (Endpoint, error) {
	if rank < 0 || rank >= len(n.eps) {
		return nil, fmt.Errorf("transport: rank %d out of range", rank)
	}
	return n.eps[rank], nil
}

// Close closes every endpoint.
func (n *TCPNetwork) Close() error {
	var first error
	for _, e := range n.eps {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPEndpoint attaches one PE to a cluster over TCP. Every endpoint listens
// on its own address and lazily dials peers on first send. Wire format per
// connection: an 8-byte handshake carrying the dialer's rank, then frames of
// [8-byte header][payload]. The header's top bit distinguishes the two
// frame shapes: clear means a word frame (low bits = word count, payload is
// count × 8-byte little-endian words), set means a byte frame (low bits =
// byte count, payload shipped verbatim — this is how codec-encoded data
// frames reach the wire without re-serialization).
//
// Received frames land in the same unbounded inbox structure the in-process
// transport uses, so everything above the transport behaves identically.
type TCPEndpoint struct {
	rank  int
	addrs []string
	ln    net.Listener

	inMu   sync.Mutex
	queue  []Frame
	head   int
	closed bool

	outMu sync.Mutex
	conns map[int]*tcpConn

	accMu    sync.Mutex
	accepted []net.Conn

	wg      sync.WaitGroup
	dialTO  time.Duration
	retryIn time.Duration
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// TCPOptions tunes connection establishment.
type TCPOptions struct {
	DialTimeout   time.Duration // total time to keep retrying a peer dial
	RetryInterval time.Duration
}

// ListenTCP starts the endpoint for rank over the given peer address list
// (addrs[i] is the listen address of rank i). It returns once the local
// listener is ready, so starting all ranks concurrently is safe.
func ListenTCP(rank int, addrs []string, opt TCPOptions) (*TCPEndpoint, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("transport: rank %d out of range for %d addrs", rank, len(addrs))
	}
	if opt.DialTimeout == 0 {
		opt.DialTimeout = 30 * time.Second
	}
	if opt.RetryInterval == 0 {
		opt.RetryInterval = 20 * time.Millisecond
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[rank], err)
	}
	e := &TCPEndpoint{
		rank: rank, addrs: addrs, ln: ln,
		conns:  make(map[int]*tcpConn),
		dialTO: opt.DialTimeout, retryIn: opt.RetryInterval,
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the actual listen address (useful with ":0" addresses).
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.accMu.Lock()
		e.accepted = append(e.accepted, c)
		e.accMu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

// tcpBytesFlag marks a byte frame in the length header's top bit.
const tcpBytesFlag = uint64(1) << 63

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer c.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return
	}
	src := int(binary.LittleEndian.Uint64(hdr[:]))
	buf := make([]byte, 0)
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		h := binary.LittleEndian.Uint64(hdr[:])
		n := h &^ tcpBytesFlag
		// Sanity cap at 8 GiB per frame for both shapes (n counts words for
		// word frames, bytes for byte frames — byte frames get the larger
		// count so an encoded frame never hits a tighter limit than its raw
		// equivalent would have).
		if h&tcpBytesFlag == 0 && n > 1<<30 || n > 8<<30 {
			return // corrupt length; drop the connection
		}
		var f Frame
		if h&tcpBytesFlag != 0 {
			// Byte frame: the payload is retained by the receiver, so it
			// needs its own backing array — recycled through the frame pool,
			// which the consumer refills with PutBuf after dispatch.
			data := GetBuf(int(n))[:n]
			if _, err := io.ReadFull(c, data); err != nil {
				return
			}
			f = Frame{Src: src, Bytes: data}
		} else {
			if uint64(cap(buf)) < 8*n {
				buf = make([]byte, 8*n)
			}
			buf = buf[:8*n]
			if _, err := io.ReadFull(c, buf); err != nil {
				return
			}
			words := make([]uint64, n)
			for i := range words {
				words[i] = binary.LittleEndian.Uint64(buf[8*i:])
			}
			f = Frame{Src: src, Words: words}
		}
		e.inMu.Lock()
		if e.closed {
			e.inMu.Unlock()
			return
		}
		e.queue = append(e.queue, f)
		e.inMu.Unlock()
	}
}

// Rank returns this PE's rank.
func (e *TCPEndpoint) Rank() int { return e.rank }

// Size returns the number of PEs.
func (e *TCPEndpoint) Size() int { return len(e.addrs) }

// Send serializes words to dst, dialing the peer on first use. Sending to
// self is delivered locally without touching the network.
func (e *TCPEndpoint) Send(dst int, words []uint64) error {
	if dst == e.rank {
		e.inMu.Lock()
		defer e.inMu.Unlock()
		if e.closed {
			return errors.New("transport: endpoint closed")
		}
		e.queue = append(e.queue, Frame{Src: e.rank, Words: words})
		return nil
	}
	tc, err := e.conn(dst)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+8*len(words))
	binary.LittleEndian.PutUint64(buf, uint64(len(words)))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8+8*i:], w)
	}
	return e.write(tc, dst, buf)
}

// SendBytes ships an already-serialized byte frame; the payload bytes go on
// the wire verbatim behind the length header.
func (e *TCPEndpoint) SendBytes(dst int, b []byte) error {
	if dst == e.rank {
		e.inMu.Lock()
		defer e.inMu.Unlock()
		if e.closed {
			PutBuf(b) // ownership transferred; nobody will consume it
			return errors.New("transport: endpoint closed")
		}
		e.queue = append(e.queue, Frame{Src: e.rank, Bytes: b})
		return nil
	}
	tc, err := e.conn(dst)
	if err != nil {
		PutBuf(b)
		return err
	}
	buf := GetBuf(8 + len(b))[:8+len(b)]
	binary.LittleEndian.PutUint64(buf, uint64(len(b))|tcpBytesFlag)
	copy(buf[8:], b)
	err = e.write(tc, dst, buf)
	// Both the wire buffer and the caller's frame (whose ownership passed to
	// the transport) are done once the bytes are written.
	PutBuf(buf)
	PutBuf(b)
	return err
}

func (e *TCPEndpoint) write(tc *tcpConn, dst int, buf []byte) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if _, err := tc.c.Write(buf); err != nil {
		return fmt.Errorf("transport: send to %d: %w", dst, err)
	}
	return nil
}

func (e *TCPEndpoint) conn(dst int) (*tcpConn, error) {
	e.outMu.Lock()
	defer e.outMu.Unlock()
	if tc, ok := e.conns[dst]; ok {
		return tc, nil
	}
	deadline := time.Now().Add(e.dialTO)
	var c net.Conn
	var err error
	for {
		c, err = net.DialTimeout("tcp", e.addrs[dst], e.retryIn*10)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial rank %d (%s): %w", dst, e.addrs[dst], err)
		}
		time.Sleep(e.retryIn)
	}
	var hs [8]byte
	binary.LittleEndian.PutUint64(hs[:], uint64(e.rank))
	if _, err := c.Write(hs[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake to %d: %w", dst, err)
	}
	tc := &tcpConn{c: c}
	e.conns[dst] = tc
	return tc, nil
}

// Recv returns the next pending frame without blocking.
func (e *TCPEndpoint) Recv() (Frame, bool) {
	e.inMu.Lock()
	defer e.inMu.Unlock()
	if e.head >= len(e.queue) {
		if e.head > 0 {
			e.queue = e.queue[:0]
			e.head = 0
		}
		return Frame{}, false
	}
	f := e.queue[e.head]
	e.queue[e.head] = Frame{}
	e.head++
	if e.head > 1024 && e.head*2 > len(e.queue) {
		n := copy(e.queue, e.queue[e.head:])
		e.queue = e.queue[:n]
		e.head = 0
	}
	return f, true
}

// Close shuts down the listener and all connections.
func (e *TCPEndpoint) Close() error {
	e.inMu.Lock()
	e.closed = true
	e.inMu.Unlock()
	err := e.ln.Close()
	e.outMu.Lock()
	for _, tc := range e.conns {
		tc.c.Close()
	}
	e.outMu.Unlock()
	e.accMu.Lock()
	for _, c := range e.accepted {
		c.Close()
	}
	e.accMu.Unlock()
	e.wg.Wait()
	return err
}

// TCPNetwork implements Network by spinning up all endpoints in one process
// on loopback — used by tests and the tcpcluster example to exercise the
// real wire path without multiple processes.
type TCPNetwork struct {
	eps []*TCPEndpoint
}

// NewLoopbackTCPNetwork creates p endpoints on 127.0.0.1 ephemeral ports.
func NewLoopbackTCPNetwork(p int) (*TCPNetwork, error) {
	// First pass: bind listeners on port 0 to learn addresses.
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	net_ := &TCPNetwork{eps: make([]*TCPEndpoint, p)}
	for i := 0; i < p; i++ {
		e := &TCPEndpoint{
			rank: i, addrs: addrs, ln: lns[i],
			conns:  make(map[int]*tcpConn),
			dialTO: 30 * time.Second, retryIn: 20 * time.Millisecond,
		}
		e.wg.Add(1)
		go e.acceptLoop()
		net_.eps[i] = e
	}
	return net_, nil
}

// Endpoint returns the endpoint for rank.
func (n *TCPNetwork) Endpoint(rank int) (Endpoint, error) {
	if rank < 0 || rank >= len(n.eps) {
		return nil, fmt.Errorf("transport: rank %d out of range", rank)
	}
	return n.eps[rank], nil
}

// Close closes every endpoint.
func (n *TCPNetwork) Close() error {
	var first error
	for _, e := range n.eps {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

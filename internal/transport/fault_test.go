package transport

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"strings"
	"testing"
	"time"
)

// Hardened-transport failure tests: handshake validation, CRC rejection,
// reconnect-with-backoff, bounded-retry peer condemnation, and heartbeat
// death detection, each pinned with its fault counter and attributed reason.

// tcpPair builds a two-endpoint loopback cluster and tears it down.
func tcpPair(t *testing.T, opt TCPOptions) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	n, err := NewLoopbackTCPNetworkOpts(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n.eps[0], n.eps[1]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// recvFrom drains e until a frame arrives (or fails the test).
func recvFrom(t *testing.T, e *TCPEndpoint) Frame {
	t.Helper()
	var f Frame
	waitFor(t, 5*time.Second, "frame", func() bool {
		var ok bool
		f, ok = e.Recv()
		return ok
	})
	return f
}

func TestTCPHandshakeValidation(t *testing.T) {
	e0, _ := tcpPair(t, TCPOptions{})
	for _, hs := range []uint64{
		0xDEADBEEF << 32,               // wrong magic
		tcpMagic<<32 | 7,               // rank out of range for p=2
		tcpMagic<<32 | uint64(e0.rank), // impersonating the receiver itself
	} {
		c, err := net.Dial("tcp", e0.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], hs)
		c.Write(b[:])
		// The endpoint must reject and close; the read observing EOF/reset is
		// the observable half of the rejection.
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(b[:]); err == nil {
			t.Fatalf("connection with handshake %#x not closed", hs)
		}
		c.Close()
	}
	waitFor(t, 2*time.Second, "bad-handshake counter", func() bool {
		return e0.Faults().BadHandshakes == 3
	})
	if got, ok := e0.Recv(); ok {
		t.Fatalf("frame %v delivered from an unvalidated connection", got)
	}
}

func TestTCPCRCRejection(t *testing.T) {
	e0, _ := tcpPair(t, TCPOptions{})
	c, err := net.Dial("tcp", e0.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hs [8]byte
	binary.LittleEndian.PutUint64(hs[:], tcpMagic<<32|1)
	c.Write(hs[:])

	// A well-formed byte frame whose CRC trailer lies about the payload.
	payload := []byte("0123456789abcdef")
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(frame, uint64(len(payload))|tcpBytesFlag)
	copy(frame[8:], payload)
	good := crc32.Checksum(frame, castagnoli)
	frame = binary.LittleEndian.AppendUint32(frame, good^0xFFFF)
	c.Write(frame)

	waitFor(t, 2*time.Second, "corrupt-frame counter", func() bool {
		return e0.Faults().CorruptFrames == 1
	})
	if got, ok := e0.Recv(); ok {
		t.Fatalf("corrupt frame %v delivered", got)
	}
	if r := e0.FaultReason(1); !strings.Contains(r, "CRC mismatch") {
		t.Fatalf("close reason %q does not attribute the CRC failure", r)
	}
	// The stream must be condemned, not resynced: a valid frame after the
	// corrupt one must not arrive on the same connection.
	valid := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(valid, uint64(len(payload))|tcpBytesFlag)
	copy(valid[8:], payload)
	valid = binary.LittleEndian.AppendUint32(valid, good)
	c.Write(valid)
	time.Sleep(50 * time.Millisecond)
	if got, ok := e0.Recv(); ok {
		t.Fatalf("frame %v delivered on a condemned stream", got)
	}
}

func TestTCPCRCRoundTrip(t *testing.T) {
	e0, e1 := tcpPair(t, TCPOptions{})
	b := GetBuf(24)[:24]
	for i := range b {
		b[i] = byte(i * 7)
	}
	want := append([]byte(nil), b...)
	if err := e0.SendBytes(1, b); err != nil {
		t.Fatal(err)
	}
	f := recvFrom(t, e1)
	if f.Src != 0 || string(f.Bytes) != string(want) {
		t.Fatalf("frame = src %d, %v; want src 0, %v", f.Src, f.Bytes, want)
	}
	PutBuf(f.Bytes)
}

func TestTCPReconnectAfterConnDrop(t *testing.T) {
	e0, e1 := tcpPair(t, TCPOptions{RetryInterval: 5 * time.Millisecond})
	if err := e0.Send(1, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	f := recvFrom(t, e1)
	if f.Words[0] != 1 {
		t.Fatalf("frame = %v", f.Words)
	}
	// Kill the established inbound connection on the receiver: the sender's
	// next write hits a reset and must transparently reconnect.
	e1.accMu.Lock()
	in := e1.inConns[0]
	e1.accMu.Unlock()
	in.Close()
	waitFor(t, 5*time.Second, "redelivery after reconnect", func() bool {
		if err := e0.Send(1, []uint64{2}); err != nil {
			t.Fatalf("send during reconnect window: %v", err)
		}
		f, ok := e1.Recv()
		return ok && f.Words[0] == 2
	})
	if e0.Faults().Reconnects == 0 {
		t.Fatal("reconnect not counted")
	}
	if e0.Health() != nil {
		t.Fatalf("peer condemned despite successful reconnect: %v", e0.Health())
	}
}

func TestTCPPeerDownAfterRetriesExhausted(t *testing.T) {
	e0, e1 := tcpPair(t, TCPOptions{
		RetryInterval:  2 * time.Millisecond,
		DialTimeout:    50 * time.Millisecond,
		MaxSendRetries: 2,
	})
	if err := e0.Send(1, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	recvFrom(t, e1)
	// Take the peer fully offline: connection and listener both gone, so
	// every reconnect attempt fails until the retry budget is spent.
	e1.Close()
	var pd *PeerDownError
	waitFor(t, 10*time.Second, "typed PeerDownError", func() bool {
		err := e0.Send(1, []uint64{2})
		return errors.As(err, &pd)
	})
	if pd.Rank != 1 {
		t.Fatalf("PeerDownError.Rank = %d, want 1", pd.Rank)
	}
	if !strings.Contains(pd.Reason, "reconnect") {
		t.Fatalf("reason %q does not attribute the exhausted retries", pd.Reason)
	}
	var hpd *PeerDownError
	if err := e0.Health(); !errors.As(err, &hpd) || hpd.Rank != 1 {
		t.Fatalf("Health() = %v, want peer 1 down", err)
	}
	if e0.Faults().PeersDown != 1 {
		t.Fatalf("PeersDown = %d, want 1", e0.Faults().PeersDown)
	}
}

func TestTCPHeartbeatDeathDetection(t *testing.T) {
	opt := TCPOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  60 * time.Millisecond,
		RetryInterval:     2 * time.Millisecond,
		DialTimeout:       50 * time.Millisecond,
		MaxSendRetries:    1,
	}
	e0, e1 := tcpPair(t, opt)
	// One-way traffic only: e0 monitors rank 1's inbound connection but has
	// no outbound one, so the silence verdict cannot lose the race to the
	// send-failure path condemning the same peer first.
	if err := e1.Send(0, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	recvFrom(t, e0)
	// While both live, heartbeats keep the link healthy well past the timeout.
	time.Sleep(4 * opt.HeartbeatTimeout)
	if err := e0.Health(); err != nil {
		t.Fatalf("healthy peer condemned: %v", err)
	}
	// Kill peer 1 outright; its silence must condemn it within the timeout.
	e1.Close()
	var pd *PeerDownError
	waitFor(t, 5*time.Second, "heartbeat death verdict", func() bool {
		return errors.As(e0.Health(), &pd)
	})
	if pd.Rank != 1 || !strings.Contains(pd.Reason, "heartbeat") {
		t.Fatalf("verdict = %v, want heartbeat condemnation of rank 1", pd)
	}
	if e0.Faults().HeartbeatLoss != 1 {
		t.Fatalf("HeartbeatLoss = %d, want 1", e0.Faults().HeartbeatLoss)
	}
}

func TestTCPSendToCondemnedPeerFailsFast(t *testing.T) {
	e0, e1 := tcpPair(t, TCPOptions{
		RetryInterval:  2 * time.Millisecond,
		DialTimeout:    30 * time.Millisecond,
		MaxSendRetries: 1,
	})
	e0.Send(1, []uint64{1})
	recvFrom(t, e1)
	e1.Close()
	var pd *PeerDownError
	waitFor(t, 10*time.Second, "condemnation", func() bool {
		return errors.As(e0.Send(1, []uint64{2}), &pd)
	})
	// Once condemned, the failure is immediate (no dial, no backoff): the
	// fail-fast path must return the same sticky verdict.
	start := time.Now()
	err := e0.Send(1, []uint64{3})
	if took := time.Since(start); took > 50*time.Millisecond {
		t.Fatalf("send to condemned peer took %v, want fail-fast", took)
	}
	var pd2 *PeerDownError
	if !errors.As(err, &pd2) || pd2 != pd {
		t.Fatalf("err = %v, want the sticky verdict %v", err, pd)
	}
}

package transport

import (
	"fmt"
	"sync/atomic"
)

// PeerDownError reports that a peer rank is unreachable: every reconnect
// attempt failed, its heartbeat went silent past the timeout, or a fault
// injector declared it dead. It is the transport's terminal per-peer error —
// once an endpoint returns it for a rank, no later operation to that rank
// will succeed, and the layers above (comm's watchdog, dist's runtime) use it
// to attribute an aborted run to peer loss instead of a generic stall.
type PeerDownError struct {
	Rank   int
	Reason string // human-readable cause: "write failed after N reconnect attempts", "heartbeat timeout", ...
	Err    error  // underlying error, if any
}

func (e *PeerDownError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("transport: peer %d down: %s: %v", e.Rank, e.Reason, e.Err)
	}
	return fmt.Sprintf("transport: peer %d down: %s", e.Rank, e.Reason)
}

func (e *PeerDownError) Unwrap() error { return e.Err }

// HealthReporter is an optional Endpoint extension. Transports that can
// detect dead peers (TCP via failed reconnects and heartbeat timeouts, the
// chaos injector via scripted crashes and partitions) report the first known
// failure here; pollers — in particular comm's termination-detector watchdog
// — check it to turn an indefinite wait into an attributed *PeerDownError
// instead of spinning on frames that will never arrive.
type HealthReporter interface {
	// Health returns nil while all peers look reachable, or the error that
	// condemned the first peer marked dead.
	Health() error
}

// FaultStats counts transport-level failure events on one endpoint. All
// fields are cumulative; they exist so tests and operators can see faults
// that the transport absorbed (reconnects) as well as ones it surfaced.
type FaultStats struct {
	CorruptFrames int64 // frames rejected by the CRC trailer or length sanity checks
	BadHandshakes int64 // inbound connections rejected during handshake validation
	WriteTimeouts int64 // writes that hit the per-write deadline
	Reconnects    int64 // successful reconnect-with-backoff recoveries
	PeersDown     int64 // peers marked dead (terminal)
	HeartbeatLoss int64 // peers condemned specifically by heartbeat silence
}

// faultCounters is the atomic backing store for FaultStats.
type faultCounters struct {
	corruptFrames atomic.Int64
	badHandshakes atomic.Int64
	writeTimeouts atomic.Int64
	reconnects    atomic.Int64
	peersDown     atomic.Int64
	heartbeatLoss atomic.Int64
}

func (f *faultCounters) snapshot() FaultStats {
	return FaultStats{
		CorruptFrames: f.corruptFrames.Load(),
		BadHandshakes: f.badHandshakes.Load(),
		WriteTimeouts: f.writeTimeouts.Load(),
		Reconnects:    f.reconnects.Load(),
		PeersDown:     f.peersDown.Load(),
		HeartbeatLoss: f.heartbeatLoss.Load(),
	}
}

// FaultReporter is an optional Endpoint extension exposing fault counters.
type FaultReporter interface {
	Faults() FaultStats
}

package transport

import (
	"fmt"
	"sync"
)

// ChanNetwork is the in-process network: p endpoints sharing unbounded
// per-receiver inboxes. Sends never block (buffered asynchronous delivery),
// receives are non-blocking polls — the same contract the paper's message
// queue assumes from MPI nonblocking point-to-point operations.
type ChanNetwork struct {
	eps []*chanEndpoint
}

// NewChanNetwork creates an in-process network of size p.
func NewChanNetwork(p int) *ChanNetwork {
	n := &ChanNetwork{eps: make([]*chanEndpoint, p)}
	for i := range n.eps {
		n.eps[i] = &chanEndpoint{rank: i, net: n}
	}
	return n
}

// Endpoint returns the endpoint of the given rank.
func (n *ChanNetwork) Endpoint(rank int) (Endpoint, error) {
	if rank < 0 || rank >= len(n.eps) {
		return nil, fmt.Errorf("transport: rank %d out of range [0,%d)", rank, len(n.eps))
	}
	return n.eps[rank], nil
}

// Close releases all endpoints.
func (n *ChanNetwork) Close() error {
	for _, e := range n.eps {
		e.clear()
	}
	return nil
}

type chanEndpoint struct {
	rank int
	net  *ChanNetwork

	mu     sync.Mutex
	queue  []Frame
	head   int
	closed bool
}

func (e *chanEndpoint) Rank() int { return e.rank }
func (e *chanEndpoint) Size() int { return len(e.net.eps) }

func (e *chanEndpoint) Send(dst int, words []uint64) error {
	if dst < 0 || dst >= len(e.net.eps) {
		return fmt.Errorf("transport: send to rank %d out of range [0,%d)", dst, len(e.net.eps))
	}
	return e.net.eps[dst].push(Frame{Src: e.rank, Words: words})
}

func (e *chanEndpoint) SendBytes(dst int, b []byte) error {
	if dst < 0 || dst >= len(e.net.eps) {
		PutBuf(b) // ownership transferred; nobody will consume it
		return fmt.Errorf("transport: send to rank %d out of range [0,%d)", dst, len(e.net.eps))
	}
	if err := e.net.eps[dst].push(Frame{Src: e.rank, Bytes: b}); err != nil {
		PutBuf(b)
		return err
	}
	return nil
}

func (e *chanEndpoint) push(f Frame) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("transport: endpoint %d closed", e.rank)
	}
	e.queue = append(e.queue, f)
	return nil
}

func (e *chanEndpoint) Recv() (Frame, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.head >= len(e.queue) {
		if e.head > 0 {
			e.queue = e.queue[:0]
			e.head = 0
		}
		return Frame{}, false
	}
	f := e.queue[e.head]
	e.queue[e.head] = Frame{} // allow GC of delivered words
	e.head++
	// Compact occasionally so memory stays proportional to the backlog.
	if e.head > 1024 && e.head*2 > len(e.queue) {
		n := copy(e.queue, e.queue[e.head:])
		e.queue = e.queue[:n]
		e.head = 0
	}
	return f, true
}

func (e *chanEndpoint) clear() {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Recycle byte frames that were queued but never consumed.
	for _, f := range e.queue[e.head:] {
		PutBuf(f.Bytes)
	}
	e.queue, e.head, e.closed = nil, 0, true
}

func (e *chanEndpoint) Close() error {
	e.clear()
	return nil
}

// Package transport provides point-to-point message delivery between PEs.
// It replaces MPI's transport role: the algorithms above it only assume
// reliable, non-overtaking-free (unordered across sources), asynchronous
// frame delivery.
//
// Two implementations are provided behind one interface: an in-process
// network connecting goroutine PEs (the default for experiments, exact
// communication metering, zero serialization) and a TCP network (stdlib net)
// for genuine multi-process clusters.
//
// Frames are slices of machine words ([]uint64) because the paper's cost
// model and all its volume measurements are in machine words. Send transfers
// ownership of the slice to the transport; the caller must not reuse it.
package transport

// Frame is one delivered message.
type Frame struct {
	Src   int
	Words []uint64
}

// Endpoint is one PE's attachment to the network.
type Endpoint interface {
	// Rank returns this PE's rank in 0..Size()-1.
	Rank() int
	// Size returns the number of PEs.
	Size() int
	// Send queues words for delivery to dst. It does not block on the
	// receiver (asynchronous send with unbounded buffering, like a buffered
	// MPI_Isend). Ownership of words passes to the transport.
	Send(dst int, words []uint64) error
	// Recv returns the next pending frame without blocking; ok is false if
	// none is pending.
	Recv() (f Frame, ok bool)
	// Close releases resources. Frames already queued may be lost.
	Close() error
}

// Network creates the endpoints of a cluster.
type Network interface {
	Endpoint(rank int) (Endpoint, error)
	Close() error
}

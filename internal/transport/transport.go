// Package transport provides point-to-point message delivery between PEs.
// It replaces MPI's transport role: the algorithms above it only assume
// reliable, non-overtaking-free (unordered across sources), asynchronous
// frame delivery.
//
// Two implementations are provided behind one interface: an in-process
// network connecting goroutine PEs (the default for experiments, exact
// communication metering, zero serialization) and a TCP network (stdlib net)
// for genuine multi-process clusters.
//
// Two frame shapes travel the network. Word frames ([]uint64) carry control
// and collective traffic, matching the paper's cost model, which measures in
// machine words. Byte frames ([]byte) carry codec-encoded data traffic: the
// communication layer above encodes record payloads (delta/varint
// compression of adjacency rows), and the transport ships the resulting
// bytes verbatim — the TCP transport in particular puts them on the wire
// without any further conversion. Send and SendBytes transfer ownership of
// the slice to the transport; the caller must not reuse it.
package transport

// Frame is one delivered message. Exactly one of Words and Bytes is non-nil,
// depending on whether the frame was shipped with Send or SendBytes.
type Frame struct {
	Src   int
	Words []uint64
	Bytes []byte
}

// Endpoint is one PE's attachment to the network.
type Endpoint interface {
	// Rank returns this PE's rank in 0..Size()-1.
	Rank() int
	// Size returns the number of PEs.
	Size() int
	// Send queues words for delivery to dst. It does not block on the
	// receiver (asynchronous send with unbounded buffering, like a buffered
	// MPI_Isend). Ownership of words passes to the transport.
	Send(dst int, words []uint64) error
	// SendBytes queues an already-serialized byte frame for delivery to
	// dst, with the same asynchronous contract as Send. Ownership of b
	// passes to the transport.
	SendBytes(dst int, b []byte) error
	// Recv returns the next pending frame without blocking; ok is false if
	// none is pending.
	Recv() (f Frame, ok bool)
	// Close releases resources. Frames already queued may be lost.
	Close() error
}

// Network creates the endpoints of a cluster.
type Network interface {
	Endpoint(rank int) (Endpoint, error)
	Close() error
}

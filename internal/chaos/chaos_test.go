package chaos_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/leakcheck"
	"repro/internal/testgraph"
	"repro/internal/transport"
)

// The recovery contract every fault scenario must satisfy: the run ends (no
// hang — enforced by RunTimeout plus the test timeout), the error is a typed
// *dist.RunError whose cause attributes the injected fault, and no
// transport/runtime goroutine outlives the run (leakcheck).

const chaosP = 4

// chaosCfg is the hardened-run base config: watchdogs armed tight enough to
// keep the grid fast, the run timeout as the last-resort backstop.
func chaosCfg(net transport.Network) core.Config {
	return core.Config{
		P:            chaosP,
		Network:      net,
		CommDeadline: 300 * time.Millisecond,
		RunTimeout:   20 * time.Second,
	}
}

// TestFaultFreeEquivalence pins the injector's pass-through: a chaos wrapper
// with an empty plan must be invisible — every fixture counts exactly its
// known triangle total through the wrapped transport.
func TestFaultFreeEquivalence(t *testing.T) {
	leakcheck.Check(t)
	for _, fx := range testgraph.All {
		t.Run(fx.Name, func(t *testing.T) {
			net := chaos.Wrap(transport.NewChanNetwork(chaosP), chaos.Plan{Seed: 1})
			res, err := core.Run(core.AlgoCetric, fx.Build(), chaosCfg(net))
			if err != nil {
				t.Fatalf("fault-free chaos run failed: %v", err)
			}
			if res.Count != fx.Triangles {
				t.Fatalf("count = %d, want %d", res.Count, fx.Triangles)
			}
			if s := net.Stats(); s != (chaos.Stats{}) {
				t.Fatalf("empty plan injected faults: %+v", s)
			}
		})
	}
}

// TestDelayEquivalence: delayed frames are still delivered, so a delay plan
// shorter than the watchdog must change nothing but the wall clock.
func TestDelayEquivalence(t *testing.T) {
	leakcheck.Check(t)
	for _, name := range []string{"K12", "gnm", "trigrid"} {
		t.Run(name, func(t *testing.T) {
			fx, _ := testgraph.ByName(name)
			net := chaos.Wrap(transport.NewChanNetwork(chaosP), chaos.Plan{
				Seed: 7, DelayProb: 0.25, Delay: 2 * time.Millisecond,
			})
			res, err := core.Run(core.AlgoCetric, fx.Build(), chaosCfg(net))
			if err != nil {
				t.Fatalf("delayed run failed: %v", err)
			}
			if res.Count != fx.Triangles {
				t.Fatalf("count = %d, want %d", res.Count, fx.Triangles)
			}
			if net.Stats().Delayed == 0 {
				t.Fatal("plan injected no delays; the scenario tested nothing")
			}
		})
	}
}

// runChaos runs one fixture under a fault plan and returns the error, after
// asserting the run did not silently succeed.
func runChaos(t *testing.T, fixture string, plan chaos.Plan) (*chaos.Network, *dist.RunError) {
	t.Helper()
	fx, ok := testgraph.ByName(fixture)
	if !ok {
		t.Fatalf("unknown fixture %q", fixture)
	}
	net := chaos.Wrap(transport.NewChanNetwork(chaosP), plan)
	_, err := core.Run(core.AlgoCetric, fx.Build(), chaosCfg(net))
	if err == nil {
		t.Fatal("injected fault, run succeeded anyway")
	}
	var re *dist.RunError
	if !errors.As(err, &re) {
		t.Fatalf("fault surfaced as untyped error %T: %v", err, err)
	}
	return net, re
}

// TestFaultGrid drives every injected fault mode through a full distributed
// counting run and asserts it ends in a typed, correctly attributed error —
// the recovery half of the harness's contract. Scenarios share the fixture
// grid so each fault is exercised against distinct traffic shapes.
func TestFaultGrid(t *testing.T) {
	leakcheck.Check(t)
	fixtures := []string{"K12", "gnm", "rgg"}

	scenarios := []struct {
		name string
		plan chaos.Plan
		// want is the set of acceptable causes; an injected fault may
		// legitimately surface through more than one detector (e.g. a
		// duplicated control frame can corrupt a collective before the
		// termination counters diverge), but it must always land on one of
		// the typed causes below — never a hang, never an untyped error.
		want []dist.AbortCause
		// check inspects the unwrapped cause further.
		check func(t *testing.T, re *dist.RunError)
	}{
		{
			name: "drop",
			plan: chaos.Plan{Seed: 11, DropProb: 0.2},
			// A dropped data frame leaves sent>recv forever: the termination
			// detector can never equalize, so the watchdog is the detector.
			want: []dist.AbortCause{dist.CauseWatchdog},
			check: func(t *testing.T, re *dist.RunError) {
				var wd *comm.WatchdogError
				if !errors.As(re, &wd) {
					t.Fatalf("no WatchdogError in chain: %v", re)
				}
			},
		},
		{
			name: "corrupt",
			plan: chaos.Plan{Seed: 13, CorruptProb: 0.3},
			want: []dist.AbortCause{dist.CauseCorrupt},
			check: func(t *testing.T, re *dist.RunError) {
				var cf *comm.CorruptFrameError
				if !errors.As(re, &cf) {
					t.Fatalf("no CorruptFrameError in chain: %v", re)
				}
			},
		},
		{
			name: "duplicate",
			// Duplication inflates recv past sent (data) or replays control
			// tags into later epochs; either way the run must end typed.
			plan: chaos.Plan{Seed: 17, DupProb: 0.3},
			want: []dist.AbortCause{dist.CauseWatchdog, dist.CauseBody, dist.CauseCorrupt},
		},
		{
			name: "crash-panic",
			// CrashAfter is small so the crash lands mid-protocol even on the
			// fastest fixture (a K12 run makes only a few dozen transport ops
			// per rank); a trigger past the run's natural op count would
			// never fire.
			plan: chaos.Plan{Seed: 19, CrashRank: 1, CrashAfter: 5, CrashPanic: true},
			want: []dist.AbortCause{dist.CauseBody},
			check: func(t *testing.T, re *dist.RunError) {
				var ce *chaos.CrashError
				if !errors.As(re, &ce) {
					t.Fatalf("no CrashError in chain: %v", re)
				}
				if re.Rank != 1 || ce.Rank != 1 {
					t.Fatalf("crash attributed to rank %d/%d, want 1", re.Rank, ce.Rank)
				}
			},
		},
		{
			name: "crash-silent",
			plan: chaos.Plan{Seed: 23, CrashRank: 1, CrashAfter: 5,
				DetectAfter: 30 * time.Millisecond},
			want: []dist.AbortCause{dist.CausePeerLoss},
			check: func(t *testing.T, re *dist.RunError) {
				var pl *comm.ErrPeerLost
				if !errors.As(re, &pl) {
					t.Fatalf("no ErrPeerLost in chain: %v", re)
				}
				if pl.Rank != 1 {
					t.Fatalf("peer loss blamed rank %d, want 1", pl.Rank)
				}
			},
		},
		{
			name: "partition",
			plan: chaos.Plan{Seed: 29, Partition: [][]int{{0, 1}, {2, 3}},
				DetectAfter: 30 * time.Millisecond},
			want: []dist.AbortCause{dist.CausePeerLoss},
			check: func(t *testing.T, re *dist.RunError) {
				var pl *comm.ErrPeerLost
				if !errors.As(re, &pl) {
					t.Fatalf("no ErrPeerLost in chain: %v", re)
				}
				var pd *transport.PeerDownError
				if !errors.As(re, &pd) || pd.Reason != "chaos: network partition" {
					t.Fatalf("peer-down reason not attributed to the partition: %v", re)
				}
			},
		},
		{
			name: "long-delay",
			// Delay far beyond the watchdog: frames exist but arrive too
			// late, the canonical silent-stall scenario.
			plan: chaos.Plan{Seed: 31, DelayProb: 1, Delay: time.Hour},
			want: []dist.AbortCause{dist.CauseWatchdog},
		},
	}

	for _, sc := range scenarios {
		for _, fixture := range fixtures {
			t.Run(sc.name+"/"+fixture, func(t *testing.T) {
				start := time.Now()
				net, re := runChaos(t, fixture, sc.plan)
				if took := time.Since(start); took > 15*time.Second {
					t.Fatalf("recovery took %v; the deadline machinery is not bounding the run", took)
				}
				ok := false
				for _, c := range sc.want {
					if re.Cause == c {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("cause = %s, want one of %v (err: %v)", re.Cause, sc.want, re)
				}
				if sc.check != nil {
					sc.check(t, re)
				}
				_ = net
			})
		}
	}
}

// TestCrashSilentStats pins the injector's own accounting: the scripted
// crash must be counted exactly once however many ops the victim burns.
func TestCrashSilentStats(t *testing.T) {
	leakcheck.Check(t)
	net, _ := runChaos(t, "K12", chaos.Plan{
		Seed: 37, CrashRank: 2, CrashAfter: 5, DetectAfter: 20 * time.Millisecond,
	})
	if got := net.Stats().Crashes; got != 1 {
		t.Fatalf("Crashes = %d, want 1", got)
	}
}

// TestGracefulDegradation: with AllowPartial set, an approximate run that
// loses a peer returns the survivors' partial estimate annotated with the
// abort instead of failing.
func TestGracefulDegradation(t *testing.T) {
	leakcheck.Check(t)
	fx, _ := testgraph.ByName("rgg")
	net := chaos.Wrap(transport.NewChanNetwork(chaosP), chaos.Plan{
		Seed: 41, CrashRank: 3, CrashAfter: 10, DetectAfter: 30 * time.Millisecond,
	})
	cfg := chaosCfg(net)
	cfg.AllowPartial = true
	est, res, err := core.RunDoulion(core.AlgoCetric, fx.Build(), cfg, 0.8, 5)
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	if res.Partial == nil {
		t.Fatal("peer loss with AllowPartial produced no Partial annotation")
	}
	var re *dist.RunError
	if !errors.As(res.Partial.Err, &re) || re.Cause != dist.CausePeerLoss {
		t.Fatalf("Partial.Err = %v, want a peer-loss RunError", res.Partial.Err)
	}
	if f := res.Partial.Fraction(); f < 0 || f >= 1 {
		t.Fatalf("completion fraction = %v, want [0,1) for a crashed cluster", f)
	}
	if est < 0 {
		t.Fatalf("estimate = %v, want a non-negative lower bound", est)
	}
	// A fault-free run under the same config must not be annotated.
	clean := chaosCfg(chaos.Wrap(transport.NewChanNetwork(chaosP), chaos.Plan{}))
	clean.AllowPartial = true
	_, res2, err := core.RunDoulion(core.AlgoCetric, fx.Build(), clean, 0.8, 5)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if res2.Partial != nil {
		t.Fatalf("clean run annotated as partial: %+v", res2.Partial)
	}
}

// TestBodyErrorNotDegraded: AllowPartial must never swallow the body's own
// failure — only infrastructure causes degrade.
func TestBodyErrorNotDegraded(t *testing.T) {
	leakcheck.Check(t)
	_, err := dist.Run(dist.Config{P: 2}, func(pe *dist.PE) error {
		if pe.Rank == 1 {
			return errors.New("application bug")
		}
		pe.C.Barrier()
		return nil
	})
	var re *dist.RunError
	if !errors.As(err, &re) || re.Cause != dist.CauseBody {
		t.Fatalf("err = %v, want a body-cause RunError", err)
	}
}

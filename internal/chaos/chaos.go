// Package chaos is the fault-injection harness: a transport.Network wrapper
// that injects deterministic, seeded faults between the communication layer
// and any real transport, so every distributed failure mode — frame drop,
// delay, duplication, corruption, peer crash at operation N, network
// partition — is reproducible in CI from a seed instead of requiring flaky
// real-world failures.
//
// Faults are decided per frame from (seed, sender rank, sender sequence
// number): the communication layer above is single-threaded per PE, so each
// sender's frame sequence is deterministic and the same seed injects the
// same faults into the same frames on every run. A Plan with all faults
// disabled is a transparent pass-through — runs behind it are required (and
// tested) to produce results identical to the bare transport.
package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Plan scripts the faults. The zero value injects nothing.
type Plan struct {
	// Seed drives every per-frame fault decision.
	Seed uint64

	// Per-frame fault probabilities in [0,1]. Faults are decided
	// independently per frame in the order drop, duplicate, corrupt, delay;
	// a dropped frame is gone (no later fault applies).
	DropProb    float64
	DupProb     float64
	CorruptProb float64 // byte frames only: word-frame control traffic has no codec layer to mis-decode
	DelayProb   float64
	// Delay is how long a delayed frame is withheld from the receiver.
	Delay time.Duration

	// CrashRank, with CrashAfter > 0, crashes that rank's endpoint after its
	// CrashAfter-th transport operation (sends and receive polls both
	// count). CrashPanic selects the flavor: true panics a *CrashError out
	// of the operation (a process dying mid-call — exercises the runtime's
	// abort propagation); false turns the endpoint into a silent black hole
	// (sends vanish, receives return nothing — exercises the survivors'
	// peer-loss detection).
	CrashRank  int
	CrashAfter int
	CrashPanic bool

	// Partition splits the ranks into isolated groups: frames crossing a
	// group boundary are dropped silently, exactly like a switch failure.
	// Ranks not listed in any group form one extra implicit group.
	Partition [][]int

	// DetectAfter is the simulated failure-detection latency: how long after
	// a silent crash (or the first partition-dropped frame) the injector's
	// Health() starts condemning the unreachable peer, standing in for the
	// TCP transport's heartbeat timeout. 0 detects immediately; negative
	// never detects, forcing the layers above onto their watchdog deadline.
	DetectAfter time.Duration
}

// Stats counts injected faults across the whole network.
type Stats struct {
	Dropped        int64
	Duplicated     int64
	Corrupted      int64
	Delayed        int64
	PartitionDrops int64
	Crashes        int64
}

// CrashError is the panic value of a scripted CrashPanic crash.
type CrashError struct {
	Rank int
	Op   int64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("chaos: injected crash of rank %d at transport op %d", e.Rank, e.Op)
}

// Network wraps an inner transport network with the fault plan.
type Network struct {
	inner transport.Network
	plan  Plan
	group map[int]int // rank -> partition group; empty when no partition

	mu  sync.Mutex
	eps map[int]*Endpoint

	crashed     atomic.Bool
	crashedAt   atomic.Int64 // unix nanos of the silent crash
	partitionAt atomic.Int64 // unix nanos of the first partition drop

	dropped        atomic.Int64
	duplicated     atomic.Int64
	corrupted      atomic.Int64
	delayed        atomic.Int64
	partitionDrops atomic.Int64
	crashes        atomic.Int64
}

// Wrap builds the chaos network over inner.
func Wrap(inner transport.Network, plan Plan) *Network {
	n := &Network{
		inner: inner,
		plan:  plan,
		group: make(map[int]int),
		eps:   make(map[int]*Endpoint),
	}
	for g, ranks := range plan.Partition {
		for _, r := range ranks {
			n.group[r] = g
		}
	}
	return n
}

// Stats snapshots the injected-fault counters.
func (n *Network) Stats() Stats {
	return Stats{
		Dropped:        n.dropped.Load(),
		Duplicated:     n.duplicated.Load(),
		Corrupted:      n.corrupted.Load(),
		Delayed:        n.delayed.Load(),
		PartitionDrops: n.partitionDrops.Load(),
		Crashes:        n.crashes.Load(),
	}
}

// groupOf maps a rank to its partition group (unlisted ranks share the
// implicit extra group).
func (n *Network) groupOf(rank int) int {
	if g, ok := n.group[rank]; ok {
		return g
	}
	return len(n.plan.Partition)
}

// severed reports whether src→dst traffic crosses a partition boundary.
func (n *Network) severed(src, dst int) bool {
	if len(n.plan.Partition) == 0 {
		return false
	}
	return n.groupOf(src) != n.groupOf(dst)
}

// Endpoint returns (creating on first use) the chaos wrapper for rank.
func (n *Network) Endpoint(rank int) (transport.Endpoint, error) {
	return n.endpoint(rank)
}

func (n *Network) endpoint(rank int) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[rank]; ok {
		return ep, nil
	}
	inner, err := n.inner.Endpoint(rank)
	if err != nil {
		return nil, err
	}
	ep := &Endpoint{inner: inner, n: n, rank: rank}
	n.eps[rank] = ep
	return ep, nil
}

// Close closes the inner network and releases delayed frames.
func (n *Network) Close() error {
	err := n.inner.Close()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ep := range n.eps {
		ep.dmu.Lock()
		for _, d := range ep.delayed {
			transport.PutBuf(d.f.Bytes)
		}
		ep.delayed = nil
		ep.dmu.Unlock()
	}
	return err
}

// delayedFrame is a frame withheld from its receiver until due.
type delayedFrame struct {
	due time.Time
	f   transport.Frame
}

// Endpoint is one PE's fault-injecting attachment.
type Endpoint struct {
	inner transport.Endpoint
	n     *Network
	rank  int
	seq   atomic.Uint64 // frames offered for sending (deterministic per rank)
	ops   atomic.Int64  // transport operations, for the crash trigger

	dmu     sync.Mutex
	delayed []delayedFrame
}

// Rank returns this PE's rank.
func (e *Endpoint) Rank() int { return e.inner.Rank() }

// Size returns the number of PEs.
func (e *Endpoint) Size() int { return e.inner.Size() }

// splitmix64 is the per-decision hash: decorrelated streams come from
// distinct salt constants.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns a deterministic uniform [0,1) draw for this frame and salt.
func (e *Endpoint) roll(seq uint64, salt uint64) float64 {
	h := splitmix64(e.n.plan.Seed ^ uint64(e.rank)<<40 ^ seq<<8 ^ salt)
	return float64(h>>11) / float64(1<<53)
}

const (
	saltDrop = iota + 1
	saltDup
	saltCorrupt
	saltDelay
)

// crashed reports whether this endpoint is the scripted crash victim and the
// trigger has fired; it also fires the trigger.
func (e *Endpoint) crashStep() bool {
	p := &e.n.plan
	if p.CrashAfter <= 0 || e.rank != p.CrashRank {
		return false
	}
	op := e.ops.Add(1)
	if e.n.crashed.Load() {
		return true
	}
	if op < int64(p.CrashAfter) {
		return false
	}
	if e.n.crashed.CompareAndSwap(false, true) {
		e.n.crashes.Add(1)
		e.n.crashedAt.Store(time.Now().UnixNano())
		if p.CrashPanic {
			panic(&CrashError{Rank: e.rank, Op: op})
		}
	}
	return true
}

// Send applies the fault plan to a word frame.
func (e *Endpoint) Send(dst int, words []uint64) error {
	if e.crashStep() {
		return nil // silent crash: the send vanishes
	}
	if dst == e.rank {
		return e.inner.Send(dst, words)
	}
	if e.n.severed(e.rank, dst) {
		e.n.partitionDrops.Add(1)
		e.n.partitionAt.CompareAndSwap(0, time.Now().UnixNano())
		return nil
	}
	seq := e.seq.Add(1) - 1
	if e.roll(seq, saltDrop) < e.n.plan.DropProb {
		e.n.dropped.Add(1)
		return nil
	}
	if e.roll(seq, saltDup) < e.n.plan.DupProb {
		e.n.duplicated.Add(1)
		dup := append([]uint64(nil), words...)
		if err := e.deliverWords(dst, dup, seq); err != nil {
			return err
		}
	}
	return e.deliverWords(dst, words, seq)
}

func (e *Endpoint) deliverWords(dst int, words []uint64, seq uint64) error {
	if e.roll(seq, saltDelay) < e.n.plan.DelayProb {
		e.n.delayed.Add(1)
		return e.holdFrame(dst, transport.Frame{Src: e.rank, Words: words})
	}
	return e.inner.Send(dst, words)
}

// SendBytes applies the fault plan to a byte frame.
func (e *Endpoint) SendBytes(dst int, b []byte) error {
	if e.crashStep() {
		transport.PutBuf(b) // ownership transferred; the send vanishes
		return nil
	}
	if dst == e.rank {
		return e.inner.SendBytes(dst, b)
	}
	if e.n.severed(e.rank, dst) {
		e.n.partitionDrops.Add(1)
		e.n.partitionAt.CompareAndSwap(0, time.Now().UnixNano())
		transport.PutBuf(b)
		return nil
	}
	seq := e.seq.Add(1) - 1
	if e.roll(seq, saltDrop) < e.n.plan.DropProb {
		e.n.dropped.Add(1)
		transport.PutBuf(b)
		return nil
	}
	if e.roll(seq, saltCorrupt) < e.n.plan.CorruptProb && len(b) > 9 {
		// Corrupt past the 8-byte frame tag: the receiver's envelope decoder
		// hits an invalid uvarint run and rejects the frame with a typed
		// error — corruption is *detected*, never silently mis-decoded.
		e.n.corrupted.Add(1)
		end := len(b)
		if end > 8+12 {
			end = 8 + 12
		}
		for i := 8; i < end; i++ {
			b[i] = 0xFF
		}
	}
	if e.roll(seq, saltDup) < e.n.plan.DupProb {
		e.n.duplicated.Add(1)
		dup := transport.GetBuf(len(b))[:len(b)]
		copy(dup, b)
		if err := e.deliverBytes(dst, dup, seq); err != nil {
			return err
		}
	}
	return e.deliverBytes(dst, b, seq)
}

func (e *Endpoint) deliverBytes(dst int, b []byte, seq uint64) error {
	if e.roll(seq, saltDelay) < e.n.plan.DelayProb {
		e.n.delayed.Add(1)
		return e.holdFrame(dst, transport.Frame{Src: e.rank, Bytes: b})
	}
	return e.inner.SendBytes(dst, b)
}

// holdFrame parks a frame at the destination endpoint until its delay
// expires; the receiver's Recv releases due frames.
func (e *Endpoint) holdFrame(dst int, f transport.Frame) error {
	ep, err := e.n.endpoint(dst)
	if err != nil {
		transport.PutBuf(f.Bytes)
		return err
	}
	ep.dmu.Lock()
	ep.delayed = append(ep.delayed, delayedFrame{due: time.Now().Add(e.n.plan.Delay), f: f})
	ep.dmu.Unlock()
	return nil
}

// Recv returns the next pending frame: due delayed frames first (in hold
// order), then the inner transport's inbox.
func (e *Endpoint) Recv() (transport.Frame, bool) {
	if e.crashStep() {
		return transport.Frame{}, false // silent crash: hears nothing
	}
	e.dmu.Lock()
	if len(e.delayed) > 0 && time.Now().After(e.delayed[0].due) {
		f := e.delayed[0].f
		e.delayed = e.delayed[1:]
		e.dmu.Unlock()
		return f, true
	}
	e.dmu.Unlock()
	return e.inner.Recv()
}

// Health condemns peers the fault plan has made unreachable — the scripted
// silent crash and partition, each after the plan's detection latency — and
// otherwise defers to the inner transport's own health verdict. It
// implements transport.HealthReporter.
func (e *Endpoint) Health() error {
	p := &e.n.plan
	if p.DetectAfter >= 0 {
		if e.n.crashed.Load() && !p.CrashPanic && e.rank != p.CrashRank {
			if at := e.n.crashedAt.Load(); at != 0 && time.Since(time.Unix(0, at)) >= p.DetectAfter {
				return &transport.PeerDownError{Rank: p.CrashRank, Reason: "chaos: injected crash"}
			}
		}
		if at := e.n.partitionAt.Load(); at != 0 && time.Since(time.Unix(0, at)) >= p.DetectAfter {
			// Condemn the first rank across the boundary from this PE.
			for r := 0; r < e.Size(); r++ {
				if e.n.severed(e.rank, r) {
					return &transport.PeerDownError{Rank: r, Reason: "chaos: network partition"}
				}
			}
		}
	}
	if h, ok := e.inner.(transport.HealthReporter); ok {
		return h.Health()
	}
	return nil
}

// Close closes the inner endpoint.
func (e *Endpoint) Close() error { return e.inner.Close() }

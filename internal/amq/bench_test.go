package amq

import (
	"fmt"
	"testing"
)

func benchKeys(n int) []uint64 {
	keys := make([]uint64, n)
	s := uint64(0xabcdef)
	for i := range keys {
		s = s*6364136223846793005 + 1442695040888963407
		keys[i] = s
	}
	return keys
}

func BenchmarkBloomInsert(b *testing.B) {
	for _, bits := range []float64{8, 16} {
		b.Run(fmt.Sprintf("bits=%v", bits), func(b *testing.B) {
			keys := benchKeys(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := NewBloom(len(keys), bits)
				for _, k := range keys {
					f.Insert(k)
				}
			}
		})
	}
}

func BenchmarkBloomQuery(b *testing.B) {
	keys := benchKeys(1024)
	f := NewBloom(len(keys), 8)
	for _, k := range keys {
		f.Insert(k)
	}
	probes := benchKeys(4096)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for _, k := range probes {
			if f.MayContain(k) {
				hits++
			}
		}
	}
	_ = hits
}

func BenchmarkBlockedQuery(b *testing.B) {
	keys := benchKeys(1024)
	f := NewBlocked(len(keys), 8)
	for _, k := range keys {
		f.Insert(k)
	}
	probes := benchKeys(4096)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for _, k := range probes {
			if f.MayContain(k) {
				hits++
			}
		}
	}
	_ = hits
}

func BenchmarkLoadFPR(b *testing.B) {
	f := NewBloom(4096, 8)
	for _, k := range benchKeys(4096) {
		f.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.LoadFPR()
	}
}

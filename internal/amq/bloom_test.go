package amq

import (
	"testing"
	"testing/quick"
)

func insertedKeys(seed uint64, n int) []uint64 {
	keys := make([]uint64, n)
	s := seed
	for i := range keys {
		s = s*6364136223846793005 + 1442695040888963407
		keys[i] = s
	}
	return keys
}

func testNoFalseNegatives(t *testing.T, mk func(n int) Filter) {
	t.Helper()
	check := func(seed uint64) bool {
		keys := insertedKeys(seed, 200)
		f := mk(len(keys))
		for _, k := range keys {
			f.Insert(k)
		}
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	testNoFalseNegatives(t, func(n int) Filter { return NewBloom(n, 8) })
}

func TestBlockedNoFalseNegatives(t *testing.T) {
	testNoFalseNegatives(t, func(n int) Filter { return NewBlocked(n, 8) })
}

func measureFPR(f Filter, inserted map[uint64]bool, probes int) float64 {
	fp := 0
	s := uint64(0xdecafbad)
	tested := 0
	for tested < probes {
		s = s*6364136223846793005 + 1442695040888963407
		if inserted[s] {
			continue
		}
		tested++
		if f.MayContain(s) {
			fp++
		}
	}
	return float64(fp) / float64(probes)
}

func TestBloomFPRWithinBudget(t *testing.T) {
	const n = 2000
	keys := insertedKeys(99, n)
	set := make(map[uint64]bool, n)
	f := NewBloom(n, 10)
	for _, k := range keys {
		f.Insert(k)
		set[k] = true
	}
	measured := measureFPR(f, set, 200000)
	predicted := f.FPR(n)
	// 10 bits/key ⇒ predicted ≈ 0.8%. Allow generous slack, but both
	// directions must be sane and the prediction must be in the ballpark.
	if measured > 3*predicted+0.005 {
		t.Fatalf("measured FPR %.4f far above predicted %.4f", measured, predicted)
	}
	if predicted > 0.05 {
		t.Fatalf("predicted FPR %.4f unexpectedly high", predicted)
	}
}

func TestBlockedFPRReasonable(t *testing.T) {
	const n = 2000
	keys := insertedKeys(7, n)
	set := make(map[uint64]bool, n)
	f := NewBlocked(n, 10)
	for _, k := range keys {
		f.Insert(k)
		set[k] = true
	}
	measured := measureFPR(f, set, 200000)
	predicted := f.FPR(n)
	if measured > 3*predicted+0.01 {
		t.Fatalf("measured FPR %.4f far above predicted %.4f", measured, predicted)
	}
}

func TestBloomWordsRoundTrip(t *testing.T) {
	f := NewBloom(100, 8)
	keys := insertedKeys(5, 100)
	for _, k := range keys {
		f.Insert(k)
	}
	g := BloomFromWords(f.Words())
	for _, k := range keys {
		if !g.MayContain(k) {
			t.Fatal("round trip lost a key")
		}
	}
	if g.K() != f.K() || g.Bits() != f.Bits() {
		t.Fatal("round trip changed parameters")
	}
}

func TestBlockedWordsRoundTrip(t *testing.T) {
	f := NewBlocked(100, 8)
	keys := insertedKeys(6, 100)
	for _, k := range keys {
		f.Insert(k)
	}
	g := BlockedFromWords(f.Words())
	for _, k := range keys {
		if !g.MayContain(k) {
			t.Fatal("round trip lost a key")
		}
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := NewBloom(100, 8)
	for _, k := range insertedKeys(11, 1000) {
		if f.MayContain(k) {
			t.Fatal("empty bloom filter claimed membership")
		}
	}
	b := NewBlocked(100, 8)
	for _, k := range insertedKeys(12, 1000) {
		if b.MayContain(k) {
			t.Fatal("empty blocked filter claimed membership")
		}
	}
}

func TestTinyFilters(t *testing.T) {
	f := NewBloom(0, 8)
	f.Insert(1)
	if !f.MayContain(1) {
		t.Fatal("tiny filter lost its key")
	}
	b := NewBlocked(0, 8)
	b.Insert(1)
	if !b.MayContain(1) {
		t.Fatal("tiny blocked filter lost its key")
	}
}

func TestMoreBitsFewerFalsePositives(t *testing.T) {
	const n = 1000
	keys := insertedKeys(21, n)
	set := make(map[uint64]bool, n)
	for _, k := range keys {
		set[k] = true
	}
	rates := make([]float64, 0, 3)
	for _, bits := range []float64{4, 8, 16} {
		f := NewBloom(n, bits)
		for _, k := range keys {
			f.Insert(k)
		}
		rates = append(rates, measureFPR(f, set, 100000))
	}
	if !(rates[0] > rates[1] && rates[1] >= rates[2]) {
		t.Fatalf("FPR should fall with more bits: %v", rates)
	}
}

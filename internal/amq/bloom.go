// Package amq provides approximate membership query (AMQ) data structures
// for the paper's approximate triangle counting extension (§IV-E): a
// standard Bloom filter and a blocked Bloom filter in the spirit of the
// cache-efficient variants of Putze, Sanders and Singler [42]. Filters
// serialize to machine words so they can be shipped instead of neighborhood
// lists.
package amq

import (
	"math"
	"math/bits"
)

// Filter is an approximate set of uint64 keys.
type Filter interface {
	Insert(key uint64)
	// MayContain reports membership; false positives possible, false
	// negatives not.
	MayContain(key uint64) bool
	// FPR estimates the false-positive rate given the number of inserted
	// keys.
	FPR(n int) float64
	// LoadFPR derives the rate from the filter's actual bit load.
	LoadFPR() float64
	// Words returns the serialized filter.
	Words() []uint64
}

// mix64 is a strong 64-bit finalizer (splitmix64) used to derive the k
// probe positions from one key.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Bloom is a standard Bloom filter over m bits with k hash functions.
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int
}

// NewBloom creates a filter sized for n keys at bitsPerKey bits each; the
// number of hash functions is the optimum k = bitsPerKey·ln 2, at least 1.
func NewBloom(n int, bitsPerKey float64) *Bloom {
	if n < 1 {
		n = 1
	}
	m := uint64(math.Ceil(float64(n) * bitsPerKey))
	if m < 64 {
		m = 64
	}
	m = (m + 63) / 64 * 64
	k := int(math.Round(bitsPerKey * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Bloom{bits: make([]uint64, m/64), m: m, k: k}
}

// K returns the number of hash functions.
func (b *Bloom) K() int { return b.k }

// Bits returns the filter size in bits.
func (b *Bloom) Bits() uint64 { return b.m }

// probe returns the i-th probe position for key. The probes are k
// independent hashes (not the double-hashing shortcut): on the small filters
// that per-neighborhood shipping produces, double hashing's correlated
// arithmetic-progression probes bias the false-positive rate away from the
// (ones/m)^k model that the truthful estimator relies on.
func (b *Bloom) probe(key uint64, i int) uint64 {
	return mix64(key^(uint64(i)+1)*0x9E3779B97F4A7C15) % b.m
}

// Insert adds key to the filter.
func (b *Bloom) Insert(key uint64) {
	for i := 0; i < b.k; i++ {
		pos := b.probe(key, i)
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain probes the filter.
func (b *Bloom) MayContain(key uint64) bool {
	for i := 0; i < b.k; i++ {
		pos := b.probe(key, i)
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// FPR returns the classic estimate (1 − e^{−kn/m})^k.
func (b *Bloom) FPR(n int) float64 {
	return math.Pow(1-math.Exp(-float64(b.k)*float64(n)/float64(b.m)), float64(b.k))
}

// LoadFPR returns the false-positive rate implied by the actual fraction of
// set bits, (ones/m)^k. For small filters this is considerably more accurate
// than the asymptotic formula and is what the truthful estimator uses at
// query time.
func (b *Bloom) LoadFPR() float64 {
	ones := 0
	for _, w := range b.bits {
		ones += bits.OnesCount64(w)
	}
	return math.Pow(float64(ones)/float64(b.m), float64(b.k))
}

// Words serializes as [m, k, bit words...].
func (b *Bloom) Words() []uint64 {
	out := make([]uint64, 2+len(b.bits))
	out[0] = b.m
	out[1] = uint64(b.k)
	copy(out[2:], b.bits)
	return out
}

// BloomFromWords deserializes a filter produced by Words.
func BloomFromWords(words []uint64) *Bloom {
	m := words[0]
	k := int(words[1])
	bits := make([]uint64, len(words)-2)
	copy(bits, words[2:])
	return &Bloom{bits: bits, m: m, k: k}
}

// Blocked is a blocked Bloom filter: each key hashes to one 64-bit block and
// sets k bits inside it — one cache line (here: one word) per query, the
// trick of the cache-efficient Bloom filters of [42]. Slightly worse FPR per
// bit, much cheaper probes, and block-aligned serialization.
type Blocked struct {
	blocks []uint64
	k      int
}

// NewBlocked sizes the filter for n keys at bitsPerKey bits per key.
func NewBlocked(n int, bitsPerKey float64) *Blocked {
	if n < 1 {
		n = 1
	}
	nblocks := int(math.Ceil(float64(n) * bitsPerKey / 64))
	if nblocks < 1 {
		nblocks = 1
	}
	k := int(math.Round(bitsPerKey * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &Blocked{blocks: make([]uint64, nblocks), k: k}
}

func (b *Blocked) mask(key uint64) (int, uint64) {
	h := mix64(key)
	blk := int(h % uint64(len(b.blocks)))
	h = mix64(h)
	var m uint64
	for i := 0; i < b.k; i++ {
		m |= 1 << (h & 63)
		h >>= 6
	}
	return blk, m
}

// Insert adds key.
func (b *Blocked) Insert(key uint64) {
	blk, m := b.mask(key)
	b.blocks[blk] |= m
}

// MayContain probes one block.
func (b *Blocked) MayContain(key uint64) bool {
	blk, m := b.mask(key)
	return b.blocks[blk]&m == m
}

// LoadFPR averages the per-block implied rates (ones/64)^k — a query hits a
// uniformly random block, so this is the exact expectation given the loads.
func (b *Blocked) LoadFPR() float64 {
	var sum float64
	for _, blk := range b.blocks {
		sum += math.Pow(float64(bits.OnesCount64(blk))/64, float64(b.k))
	}
	return sum / float64(len(b.blocks))
}

// FPR estimates the rate via the standard blocked-filter approximation with
// per-block load n/#blocks.
func (b *Blocked) FPR(n int) float64 {
	load := float64(n) / float64(len(b.blocks))
	// Probability that a specific bit of a block is set after `load` keys of
	// k bits each: 1 − (1 − k/64)^load (bits within one key may collide; this
	// is the usual approximation).
	pBit := 1 - math.Pow(1-float64(b.k)/64, load)
	return math.Pow(pBit, float64(b.k))
}

// Words serializes as [#blocks, k, blocks...].
func (b *Blocked) Words() []uint64 {
	out := make([]uint64, 2+len(b.blocks))
	out[0] = uint64(len(b.blocks))
	out[1] = uint64(b.k)
	copy(out[2:], b.blocks)
	return out
}

// BlockedFromWords deserializes a filter produced by Words.
func BlockedFromWords(words []uint64) *Blocked {
	n := int(words[0])
	k := int(words[1])
	blocks := make([]uint64, n)
	copy(blocks, words[2:2+n])
	return &Blocked{blocks: blocks, k: k}
}

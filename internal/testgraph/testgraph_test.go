package testgraph

import "testing"

// TestFixtureCountsAreExact recomputes every fixture's triangle count by
// brute force, so the precomputed Triangles column can never drift from the
// generators that produce the graphs.
func TestFixtureCountsAreExact(t *testing.T) {
	seen := make(map[string]bool)
	for _, fix := range All {
		if seen[fix.Name] {
			t.Fatalf("duplicate fixture name %q", fix.Name)
		}
		seen[fix.Name] = true
		g := fix.Build()
		if got := BruteForceCount(g); got != fix.Triangles {
			t.Errorf("%s: brute-force count %d, fixture says %d", fix.Name, got, fix.Triangles)
		}
	}
}

// TestBuildIsDeterministic guards the fixture contract that two Builds of
// the same fixture are identical graphs (seeded generators, no global
// state).
func TestBuildIsDeterministic(t *testing.T) {
	for _, fix := range All {
		a, b := fix.Build(), fix.Build()
		if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: two builds differ in shape: (%d,%d) vs (%d,%d)",
				fix.Name, a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
		}
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: edge %d differs: %v vs %v", fix.Name, i, ea[i], eb[i])
			}
		}
	}
}

func TestByName(t *testing.T) {
	g, ok := ByName("K12")
	if !ok || g.Triangles != 220 {
		t.Fatalf("ByName(K12) = %+v, %v", g, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) should not exist")
	}
	if m := Map(); len(m) != len(All) || m["K12"].NumVertices() != 12 {
		t.Fatalf("Map() has %d entries", len(m))
	}
}

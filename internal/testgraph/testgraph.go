// Package testgraph is the shared test-fixture catalog: a set of named
// graphs spanning every structural regime the triangle counting algorithms
// care about (dense cliques, triangle-free bipartite, windmills, planar-ish
// grids, power-law R-MAT/RHG, geometric RGG, road and web stand-ins), each
// with its exact triangle count precomputed. The graph, gen, and core test
// suites all draw from this one source, so a generator change that shifts a
// fixture's structure fails loudly in exactly one place.
package testgraph

import (
	"repro/internal/gen"
	"repro/internal/graph"
)

// Graph is one named fixture instance.
type Graph struct {
	Name string
	// Triangles is the exact triangle count, precomputed by brute-force
	// enumeration (and closed forms where they exist: K12 = C(12,3),
	// cliques = 6·C(7,3), trigrid = 2·(w−1)·(h−1), friendship = k).
	Triangles uint64
	build     func() *graph.Graph
}

// Build constructs a fresh copy of the fixture graph.
func (g Graph) Build() *graph.Graph { return g.build() }

// All lists every fixture. Seeds and sizes are part of the fixture identity:
// changing them invalidates the Triangles column (the package self-test
// recomputes it by brute force).
var All = []Graph{
	{Name: "K12", Triangles: 220, build: func() *graph.Graph { return gen.Complete(12) }},
	{Name: "bipartite", Triangles: 0, build: func() *graph.Graph { return gen.CompleteBipartite(7, 9) }},
	{Name: "friendship", Triangles: 9, build: func() *graph.Graph { return gen.Friendship(9) }},
	{Name: "cliques", Triangles: 210, build: func() *graph.Graph { return gen.CliqueChain(6, 7) }},
	{Name: "trigrid", Triangles: 96, build: func() *graph.Graph { return gen.TriangularGrid(9, 7) }},
	{Name: "gnm", Triangles: 686, build: func() *graph.Graph { return gen.GNM(200, 1600, 7) }},
	{Name: "rmat", Triangles: 10200, build: func() *graph.Graph { return gen.RMAT(gen.DefaultRMAT(8, 11)) }},
	{Name: "rgg", Triangles: 6310, build: func() *graph.Graph { return gen.RGG2D(300, 8, 13) }},
	{Name: "rhg", Triangles: 4461, build: func() *graph.Graph {
		return gen.RHG(gen.RHGConfig{N: 300, AvgDegree: 12, Gamma: 2.8, Seed: 17})
	}},
	{Name: "road", Triangles: 108, build: func() *graph.Graph { return gen.RoadNetwork(16, 16, 0.2, 19) }},
	{Name: "web", Triangles: 1483, build: func() *graph.Graph {
		return gen.WebGraph(gen.WebConfig{N: 256, HostSize: 16, IntraP: 0.5, LongFactor: 3, Seed: 23})
	}},
	{Name: "sparse", Triangles: 0, build: func() *graph.Graph { return gen.GNM(100, 50, 29) }},
}

// ByName returns the named fixture, or ok=false.
func ByName(name string) (Graph, bool) {
	for _, g := range All {
		if g.Name == name {
			return g, true
		}
	}
	return Graph{}, false
}

// Map builds every fixture keyed by name (the shape the core cross-
// validation matrix iterates over).
func Map() map[string]*graph.Graph {
	m := make(map[string]*graph.Graph, len(All))
	for _, g := range All {
		m[g.Name] = g.Build()
	}
	return m
}

// BruteForceCount counts triangles by testing all C(n,3) vertex triples
// against the adjacency structure — O(n³), independent of every production
// counting path, and therefore the arbiter the fixtures and the generator
// golden tests are checked against. Only for small test instances.
func BruteForceCount(g *graph.Graph) uint64 {
	n := graph.Vertex(g.NumVertices())
	var count uint64
	for v := graph.Vertex(0); v < n; v++ {
		for u := v + 1; u < n; u++ {
			if !g.HasEdge(v, u) {
				continue
			}
			for w := u + 1; w < n; w++ {
				if g.HasEdge(v, w) && g.HasEdge(u, w) {
					count++
				}
			}
		}
	}
	return count
}

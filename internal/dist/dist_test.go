package dist

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/transport"
)

// runWithDeadline fails the test with a clear message if Run does not
// return — the failure mode these tests exist to rule out is a livelocked
// sibling PE spinning on messages that will never arrive.
func runWithDeadline(t *testing.T, cfg Config, body func(*PE) error) ([]comm.Metrics, error) {
	t.Helper()
	type outcome struct {
		m   []comm.Metrics
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		m, err := Run(cfg, body)
		done <- outcome{m, err}
	}()
	select {
	case o := <-done:
		return o.m, o.err
	case <-time.After(30 * time.Second):
		t.Fatal("dist.Run deadlocked")
		return nil, nil
	}
}

func TestRunRejectsNonPositiveP(t *testing.T) {
	for _, p := range []int{0, -3} {
		if _, err := Run(Config{P: p}, func(*PE) error { return nil }); err == nil {
			t.Errorf("P=%d: expected error", p)
		}
	}
}

func TestRunRejectsMismatchedNetworkSize(t *testing.T) {
	net := transport.NewChanNetwork(8)
	defer net.Close()
	_, err := Run(Config{P: 4, Network: net}, func(*PE) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("size-mismatched network should error immediately, got %v", err)
	}
}

func TestRunWiresPEs(t *testing.T) {
	const p = 5
	var seen [p]atomic.Bool
	metrics, err := runWithDeadline(t, Config{P: p}, func(pe *PE) error {
		if pe.P != p || pe.C == nil || pe.Q == nil {
			return fmt.Errorf("PE %d wired wrong: %+v", pe.Rank, pe)
		}
		if pe.C.Rank() != pe.Rank || pe.C.Size() != p {
			return fmt.Errorf("comm rank/size mismatch on PE %d", pe.Rank)
		}
		if seen[pe.Rank].Swap(true) {
			return fmt.Errorf("rank %d ran twice", pe.Rank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != p {
		t.Fatalf("got %d metrics, want %d", len(metrics), p)
	}
	for r := range seen {
		if !seen[r].Load() {
			t.Errorf("rank %d never ran", r)
		}
	}
}

// TestBodyErrorDoesNotDeadlockSiblings is the runtime's core failure-path
// guarantee: one PE bailing out with an error must tear down PEs that are
// blocked in communication on traffic the failed PE will never send. Rank 2
// fails immediately; everyone else enters the termination protocol, which
// needs all ranks to participate.
func TestBodyErrorDoesNotDeadlockSiblings(t *testing.T) {
	boom := errors.New("boom")
	_, err := runWithDeadline(t, Config{P: 6}, func(pe *PE) error {
		pe.Q.Handle(0, func(int, []uint64) {})
		if pe.Rank == 2 {
			return boom
		}
		pe.Q.Send(0, (pe.Rank+1)%6, []uint64{uint64(pe.Rank)})
		pe.Q.Drain() // would spin forever without the abort
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "PE 2") {
		t.Errorf("error should name the failing rank: %v", err)
	}
}

// TestBodyErrorDuringCollective covers the other blocking primitive: ranks
// stuck in an allreduce while a sibling fails.
func TestBodyErrorDuringCollective(t *testing.T) {
	boom := errors.New("collective boom")
	_, err := runWithDeadline(t, Config{P: 4}, func(pe *PE) error {
		if pe.Rank == 3 {
			return boom
		}
		pe.C.AllreduceSum([]uint64{1})
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped %v", err, boom)
	}
}

func TestFirstErrorInRankOrderWins(t *testing.T) {
	_, err := runWithDeadline(t, Config{P: 5}, func(pe *PE) error {
		if pe.Rank == 1 || pe.Rank == 4 {
			return fmt.Errorf("failure on rank %d", pe.Rank)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "failure on rank 1") {
		t.Fatalf("want rank 1's error to win, got %v", err)
	}
}

func TestBodyPanicBecomesError(t *testing.T) {
	metrics, err := runWithDeadline(t, Config{P: 3}, func(pe *PE) error {
		if pe.Rank == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not surfaced: %v", err)
	}
	if metrics != nil {
		t.Error("metrics should be nil on failure")
	}
}

// TestSinglePEMatchesSequentialProfile: with P=1 every queue Send is a
// local dispatch, so the run must exhibit the sequential baseline's
// zero-communication profile — no frames, no words, no control traffic, no
// peers — even though records flow through the queue and Drain runs the
// full termination protocol.
func TestSinglePEMatchesSequentialProfile(t *testing.T) {
	var delivered atomic.Int64
	metrics, err := runWithDeadline(t, Config{P: 1}, func(pe *PE) error {
		pe.Q.Handle(0, func(src int, words []uint64) {
			delivered.Add(int64(len(words)))
		})
		for i := 0; i < 100; i++ {
			pe.Q.Send(0, 0, []uint64{uint64(i), uint64(i * i)})
		}
		pe.Q.Drain()
		pe.C.Barrier()
		if got := pe.C.AllreduceSum([]uint64{7})[0]; got != 7 {
			return fmt.Errorf("allreduce on one PE = %d, want 7", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != 200 {
		t.Fatalf("local dispatch delivered %d words, want 200", delivered.Load())
	}
	m := metrics[0]
	want := comm.Metrics{PayloadWords: m.PayloadWords} // local payload is still metered
	if m != want {
		t.Errorf("P=1 profile has communication: %+v", m)
	}
	if m.PayloadWords != 200 {
		t.Errorf("PayloadWords = %d, want 200", m.PayloadWords)
	}
}

func TestMetricsIndexedByRank(t *testing.T) {
	metrics, err := runWithDeadline(t, Config{P: 3, Threshold: 1}, func(pe *PE) error {
		pe.Q.Handle(0, func(int, []uint64) {})
		if pe.Rank == 0 {
			pe.Q.Send(0, 1, []uint64{1, 2, 3})
		}
		pe.Q.Drain()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if metrics[0].SentFrames == 0 || metrics[0].PayloadWords != 3 {
		t.Errorf("rank 0 should have sent one frame of 3 payload words: %+v", metrics[0])
	}
	if metrics[1].RecvFrames == 0 {
		t.Errorf("rank 1 should have received: %+v", metrics[1])
	}
	if metrics[2].SentFrames != 0 || metrics[2].RecvFrames != 0 {
		t.Errorf("rank 2 should be idle: %+v", metrics[2])
	}
}

// TestIndirectRunRoutesViaGrid checks that Config.Indirect reaches the
// queue: with 9 PEs on a 3×3 grid, a corner-to-corner record takes two hops,
// so some intermediate PE both receives and re-sends traffic that is not
// addressed to it.
func TestIndirectRunRoutesViaGrid(t *testing.T) {
	const p = 9
	metrics, err := runWithDeadline(t, Config{P: p, Threshold: 1, Indirect: true}, func(pe *PE) error {
		pe.Q.Handle(0, func(src int, words []uint64) {
			if pe.Rank != p-1 {
				panic(fmt.Sprintf("record for %d delivered to %d", p-1, pe.Rank))
			}
		})
		if pe.Rank == 0 {
			pe.Q.Send(0, p-1, []uint64{42})
		}
		pe.Q.Drain()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var forwarders int
	for r := 1; r < p-1; r++ {
		if metrics[r].RecvFrames > 0 && metrics[r].SentFrames > 0 {
			forwarders++
		}
	}
	if forwarders == 0 {
		t.Errorf("no proxy forwarded the corner-to-corner record: %+v", metrics)
	}
}

func TestModeled(t *testing.T) {
	zero := Modeled([]comm.Metrics{{}})
	for name, d := range zero {
		if d != 0 {
			t.Errorf("%s: zero traffic modeled as %v", name, d)
		}
	}
	loaded := Modeled([]comm.Metrics{{SentFrames: 1000, SentWords: 1 << 20}})
	if !(loaded["supercomputer"] < loaded["cloud"] && loaded["cloud"] < loaded["wan"]) {
		t.Errorf("profiles out of order: %v", loaded)
	}
}

// Package dist is the SPMD runtime under the distributed algorithms: it
// spawns one goroutine per processing element over a transport network and
// wires each into the communication layer (metered Comm, the dynamically
// buffered message Queue with threshold δ, and grid-based indirect routing
// when requested). The algorithms in internal/core are written exactly like
// MPI programs — a single body function executed by every rank — and this
// package plays the role of mpirun plus the communicator bootstrap.
package dist

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/costmodel"
	"repro/internal/transport"
)

// Config describes one cluster run.
type Config struct {
	// P is the number of processing elements (required, ≥ 1).
	P int
	// Threshold is the message-queue aggregation threshold δ in machine
	// words; ≤ 0 selects the queue's default.
	Threshold int
	// Indirect routes queue records over the logical 2D PE grid (two hops,
	// O(√p) peers per PE) instead of directly.
	Indirect bool
	// Network overrides the in-process channel transport (e.g. loopback
	// TCP). When nil, Run creates a ChanNetwork of size P. Run closes the
	// network when the run ends either way: endpoints are per-run state.
	Network transport.Network
}

// PE is one processing element's view of the cluster: its rank, the cluster
// size, the metered point-to-point/collective communicator, and the
// aggregating message queue.
type PE struct {
	Rank int
	P    int
	C    *comm.Comm
	Q    *comm.Queue
}

// Attach wires an existing transport endpoint into a PE. This is the
// single-rank entry point used by real multi-process clusters (each process
// attaches its own endpoint); Run uses it for every goroutine PE.
func Attach(ep transport.Endpoint, threshold int, indirect bool) *PE {
	c := comm.New(ep)
	var grid *comm.Grid
	if indirect {
		grid = comm.NewGrid(ep.Size())
	}
	return &PE{
		Rank: ep.Rank(),
		P:    ep.Size(),
		C:    c,
		Q:    comm.NewQueue(c, threshold, grid),
	}
}

// errAborted tears down PEs that outlive a failed sibling. The communication
// layer polls its endpoint in a cooperative busy loop, so without this a PE
// waiting for a frame that its failed peer will never send would spin
// forever; instead the wrapped endpoint panics with this sentinel and the
// runtime absorbs it.
var errAborted = errors.New("dist: aborted: a sibling PE failed")

// abortableEndpoint checks a cluster-wide abort flag on every transport
// operation. It is the only cross-PE channel the runtime needs to guarantee
// that one failing body cannot deadlock the rest of the cluster.
type abortableEndpoint struct {
	transport.Endpoint
	aborted *atomic.Bool
}

func (e abortableEndpoint) Send(dst int, words []uint64) error {
	if e.aborted.Load() {
		panic(errAborted)
	}
	return e.Endpoint.Send(dst, words)
}

func (e abortableEndpoint) SendBytes(dst int, b []byte) error {
	if e.aborted.Load() {
		panic(errAborted)
	}
	return e.Endpoint.SendBytes(dst, b)
}

func (e abortableEndpoint) Recv() (transport.Frame, bool) {
	if e.aborted.Load() {
		panic(errAborted)
	}
	return e.Endpoint.Recv()
}

// Run executes body on P goroutine PEs connected by cfg.Network (an
// in-process channel network by default) and returns each PE's communication
// metrics, indexed by rank.
//
// Error semantics match an MPI job launcher: every PE runs to completion or
// abort, all goroutines are joined before Run returns, and the first error
// in rank order wins. A body returning an error (or panicking) aborts the
// remaining PEs — they observe the abort at their next transport operation
// instead of spinning on messages that will never arrive.
func Run(cfg Config, body func(*PE) error) ([]comm.Metrics, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("dist: config needs P > 0, got %d", cfg.P)
	}
	net := cfg.Network
	if net == nil {
		net = transport.NewChanNetwork(cfg.P)
	}
	defer net.Close()

	var aborted atomic.Bool
	pes := make([]*PE, cfg.P)
	for r := range pes {
		ep, err := net.Endpoint(r)
		if err != nil {
			return nil, fmt.Errorf("dist: endpoint %d: %w", r, err)
		}
		if ep.Size() != cfg.P {
			// A size mismatch would otherwise deadlock: PEs would wait on
			// collectives involving ranks that are never spawned.
			return nil, fmt.Errorf("dist: network size %d does not match config P %d", ep.Size(), cfg.P)
		}
		pes[r] = Attach(abortableEndpoint{Endpoint: ep, aborted: &aborted}, cfg.Threshold, cfg.Indirect)
	}

	errs := make([]error, cfg.P)
	var wg sync.WaitGroup
	for r := 0; r < cfg.P; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				aborted.Store(true)
				if err, ok := rec.(error); ok && errors.Is(err, errAborted) {
					errs[r] = errAborted
					return
				}
				errs[r] = fmt.Errorf("dist: PE %d panicked: %v\n%s", r, rec, debug.Stack())
			}()
			if err := body(pes[r]); err != nil {
				errs[r] = fmt.Errorf("dist: PE %d: %w", r, err)
				aborted.Store(true)
			}
		}(r)
	}
	wg.Wait()

	// First real error in rank order; abort echoes only matter when no PE
	// reported a cause (a body panicked with errAborted itself — still an
	// error, just a less informative one).
	var firstAbort error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errAborted) {
			if firstAbort == nil {
				firstAbort = err
			}
			continue
		}
		return nil, err
	}
	if firstAbort != nil {
		return nil, firstAbort
	}

	metrics := make([]comm.Metrics, cfg.P)
	for r, pe := range pes {
		metrics[r] = pe.C.M
	}
	return metrics, nil
}

// Modeled evaluates a run's per-PE metrics under the α+β network cost model:
// for each built-in costmodel profile it reports the bottleneck (max over
// PEs) modeled communication time. This is the paper's "what would the same
// traffic cost on a slower interconnect" lens, available directly on the
// runtime's return value.
func Modeled(per []comm.Metrics) map[string]time.Duration {
	out := make(map[string]time.Duration, len(costmodel.Profiles()))
	for _, prof := range costmodel.Profiles() {
		out[prof.Name] = costmodel.Bottleneck(per, prof)
	}
	return out
}

// RankActivity is one rank's overlapped-work vs idle-wait split: Overlap is
// CPU time the rank spent on global-phase receive work while it was still
// emitting shipments (before the final drain, where the barriered path does
// all of it; summed over the rank's workers, so it can exceed wall time),
// Idle the wall time it waited inside the termination detector with nothing
// to process — the straggler-skew signal the overlapped pipeline shrinks.
// The worst rank's idle is aggregated as comm.Aggregate.MaxIdleNs.
type RankActivity struct {
	Rank    int
	Overlap time.Duration
	Idle    time.Duration
}

// Activity reports the per-rank overlap/idle breakdown of a run's metrics,
// indexed by rank.
func Activity(per []comm.Metrics) []RankActivity {
	out := make([]RankActivity, len(per))
	for r, m := range per {
		out[r] = RankActivity{
			Rank:    r,
			Overlap: time.Duration(m.OverlapNs),
			Idle:    time.Duration(m.IdleNs),
		}
	}
	return out
}

// ModeledWire is Modeled over the codec-encoded wire bytes instead of the
// raw machine words: the α+β time the same run would take once the codec
// layer's compression is accounted for. Comparing the two maps per profile
// shows how much of the interconnect bill the wire codecs pay.
func ModeledWire(per []comm.Metrics) map[string]time.Duration {
	out := make(map[string]time.Duration, len(costmodel.Profiles()))
	for _, prof := range costmodel.Profiles() {
		out[prof.Name] = costmodel.BottleneckWire(per, prof)
	}
	return out
}

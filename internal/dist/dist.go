// Package dist is the SPMD runtime under the distributed algorithms: it
// spawns one goroutine per processing element over a transport network and
// wires each into the communication layer (metered Comm, the dynamically
// buffered message Queue with threshold δ, and grid-based indirect routing
// when requested). The algorithms in internal/core are written exactly like
// MPI programs — a single body function executed by every rank — and this
// package plays the role of mpirun plus the communicator bootstrap.
package dist

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/costmodel"
	"repro/internal/transport"
)

// Config describes one cluster run.
type Config struct {
	// P is the number of processing elements (required, ≥ 1).
	P int
	// Threshold is the message-queue aggregation threshold δ in machine
	// words; ≤ 0 selects the queue's default.
	Threshold int
	// Indirect routes queue records over the logical 2D PE grid (two hops,
	// O(√p) peers per PE) instead of directly.
	Indirect bool
	// Network overrides the in-process channel transport (e.g. loopback
	// TCP). When nil, Run creates a ChanNetwork of size P. Run closes the
	// network when the run ends either way: endpoints are per-run state.
	Network transport.Network

	// CommDeadline arms every PE's communication watchdog (comm.SetDeadline):
	// a blocking primitive — the termination detector, any collective — that
	// sees no frame for this long fails with a typed error instead of
	// spinning forever on traffic that will never arrive. 0 disables it.
	CommDeadline time.Duration
	// RunTimeout bounds the whole cluster run: when it expires, the runtime
	// raises the abort flag (every PE observes it at its next transport
	// operation and unwinds), joins the PEs, and returns a *RunError with
	// CauseTimeout. 0 disables it. A PE stuck outside any transport
	// operation cannot be preempted; RunTimeout unsticks communication
	// waits, which is where distributed runs hang.
	RunTimeout time.Duration
}

// AbortCause classifies why a run failed, so callers can distinguish their
// own body's error from a lost peer from a stalled cluster without parsing
// error strings.
type AbortCause int

const (
	// CauseBody: a body function returned an error or panicked.
	CauseBody AbortCause = iota
	// CausePeerLoss: the transport condemned a peer (reconnects exhausted,
	// heartbeat silence, injected crash) and a blocking primitive surfaced
	// it as comm.ErrPeerLost.
	CausePeerLoss
	// CauseWatchdog: a communication primitive exceeded Config.CommDeadline
	// with no progress and no condemned peer to blame.
	CauseWatchdog
	// CauseTimeout: Config.RunTimeout expired before the cluster finished.
	CauseTimeout
	// CauseCorrupt: a PE received a data frame that failed envelope or codec
	// validation (comm.CorruptFrameError) — transport integrity, not the
	// body's fault.
	CauseCorrupt
)

func (c AbortCause) String() string {
	switch c {
	case CauseBody:
		return "body error"
	case CausePeerLoss:
		return "peer loss"
	case CauseWatchdog:
		return "watchdog"
	case CauseTimeout:
		return "run timeout"
	case CauseCorrupt:
		return "corrupt frame"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// RunError is Run's structured failure report: which rank failed first (in
// rank order; -1 for whole-run causes like the timeout), why, and the
// underlying error with its full Unwrap chain intact (errors.Is/As reach the
// body's error, comm.ErrPeerLost, comm.WatchdogError, or
// transport.PeerDownError as appropriate).
type RunError struct {
	Cause AbortCause
	Rank  int
	Err   error
}

func (e *RunError) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("dist: aborted (%s): %v", e.Cause, e.Err)
	}
	return fmt.Sprintf("dist: PE %d aborted (%s): %v", e.Rank, e.Cause, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// causePriority orders causes by how much they explain: a condemned peer is
// the root cause behind any watchdog noise the other ranks produced.
func causePriority(c AbortCause) int {
	switch c {
	case CausePeerLoss:
		return 0
	case CauseCorrupt:
		return 1
	case CauseBody:
		return 2
	case CauseWatchdog:
		return 3
	default:
		return 4
	}
}

// classify maps a recovered PE error to its abort cause.
func classify(err error) AbortCause {
	var pl *comm.ErrPeerLost
	if errors.As(err, &pl) {
		return CausePeerLoss
	}
	var cf *comm.CorruptFrameError
	if errors.As(err, &cf) {
		return CauseCorrupt
	}
	var wd *comm.WatchdogError
	if errors.As(err, &wd) {
		return CauseWatchdog
	}
	return CauseBody
}

// PE is one processing element's view of the cluster: its rank, the cluster
// size, the metered point-to-point/collective communicator, and the
// aggregating message queue.
type PE struct {
	Rank int
	P    int
	C    *comm.Comm
	Q    *comm.Queue
}

// Attach wires an existing transport endpoint into a PE. This is the
// single-rank entry point used by real multi-process clusters (each process
// attaches its own endpoint); Run uses it for every goroutine PE.
func Attach(ep transport.Endpoint, threshold int, indirect bool) *PE {
	c := comm.New(ep)
	var grid *comm.Grid
	if indirect {
		grid = comm.NewGrid(ep.Size())
	}
	return &PE{
		Rank: ep.Rank(),
		P:    ep.Size(),
		C:    c,
		Q:    comm.NewQueue(c, threshold, grid),
	}
}

// errAborted tears down PEs that outlive a failed sibling. The communication
// layer polls its endpoint in a cooperative busy loop, so without this a PE
// waiting for a frame that its failed peer will never send would spin
// forever; instead the wrapped endpoint panics with this sentinel and the
// runtime absorbs it.
var errAborted = errors.New("dist: aborted: a sibling PE failed")

// abortableEndpoint checks a cluster-wide abort flag on every transport
// operation. It is the only cross-PE channel the runtime needs to guarantee
// that one failing body cannot deadlock the rest of the cluster.
type abortableEndpoint struct {
	transport.Endpoint
	aborted *atomic.Bool
}

func (e abortableEndpoint) Send(dst int, words []uint64) error {
	if e.aborted.Load() {
		panic(errAborted)
	}
	return e.Endpoint.Send(dst, words)
}

func (e abortableEndpoint) SendBytes(dst int, b []byte) error {
	if e.aborted.Load() {
		panic(errAborted)
	}
	return e.Endpoint.SendBytes(dst, b)
}

func (e abortableEndpoint) Recv() (transport.Frame, bool) {
	if e.aborted.Load() {
		panic(errAborted)
	}
	return e.Endpoint.Recv()
}

// Health forwards the inner endpoint's peer-health verdict (the embedded
// interface does not promote optional extensions), so comm's watchdog can
// attribute a stall to a condemned peer on any wrapped transport.
func (e abortableEndpoint) Health() error {
	if h, ok := e.Endpoint.(transport.HealthReporter); ok {
		return h.Health()
	}
	return nil
}

// Run executes body on P goroutine PEs connected by cfg.Network (an
// in-process channel network by default) and returns each PE's communication
// metrics, indexed by rank.
//
// Error semantics match an MPI job launcher: every PE runs to completion or
// abort, all goroutines are joined before Run returns, and the first error
// in rank order wins. A body returning an error (or panicking) aborts the
// remaining PEs — they observe the abort at their next transport operation
// instead of spinning on messages that will never arrive.
func Run(cfg Config, body func(*PE) error) ([]comm.Metrics, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("dist: config needs P > 0, got %d", cfg.P)
	}
	net := cfg.Network
	if net == nil {
		net = transport.NewChanNetwork(cfg.P)
	}
	defer net.Close()

	var aborted atomic.Bool
	pes := make([]*PE, cfg.P)
	for r := range pes {
		ep, err := net.Endpoint(r)
		if err != nil {
			return nil, fmt.Errorf("dist: endpoint %d: %w", r, err)
		}
		if ep.Size() != cfg.P {
			// A size mismatch would otherwise deadlock: PEs would wait on
			// collectives involving ranks that are never spawned.
			return nil, fmt.Errorf("dist: network size %d does not match config P %d", ep.Size(), cfg.P)
		}
		pes[r] = Attach(abortableEndpoint{Endpoint: ep, aborted: &aborted}, cfg.Threshold, cfg.Indirect)
	}

	if cfg.CommDeadline > 0 {
		for _, pe := range pes {
			pe.C.SetDeadline(cfg.CommDeadline)
		}
	}

	errs := make([]error, cfg.P)
	var wg sync.WaitGroup
	for r := 0; r < cfg.P; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				aborted.Store(true)
				if err, ok := rec.(error); ok {
					if errors.Is(err, errAborted) {
						errs[r] = errAborted
						return
					}
					// Typed panics from the communication layer (peer loss,
					// watchdog, corrupt frame) keep their identity so the
					// final RunError can attribute the abort.
					errs[r] = err
					return
				}
				errs[r] = fmt.Errorf("panic: %v\n%s", rec, debug.Stack())
			}()
			if err := body(pes[r]); err != nil {
				errs[r] = err
				aborted.Store(true)
			}
		}(r)
	}

	// Join, under the whole-run watchdog when configured: on expiry the
	// abort flag unsticks every PE blocked in a transport operation, then
	// the join completes and the timeout is reported as the cause.
	timedOut := false
	if cfg.RunTimeout > 0 {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(cfg.RunTimeout):
			timedOut = true
			aborted.Store(true)
			<-done
		}
	} else {
		wg.Wait()
	}

	// Pick the most informative error: peer loss beats a body error beats a
	// watchdog report (a condemned peer explains why everyone else's
	// watchdog fired; the reverse explains nothing), rank order breaks ties.
	// Abort echoes only matter when no PE reported a cause (a body panicked
	// with errAborted itself — still an error, just a less informative one).
	var firstAbort, best error
	bestRank := -1
	for r, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errAborted) {
			if firstAbort == nil {
				firstAbort = err
			}
			continue
		}
		if best == nil || causePriority(classify(err)) < causePriority(classify(best)) {
			best, bestRank = err, r
		}
	}
	if best != nil {
		return nil, &RunError{Cause: classify(best), Rank: bestRank, Err: best}
	}
	if timedOut {
		return nil, &RunError{Cause: CauseTimeout, Rank: -1,
			Err: fmt.Errorf("cluster did not finish within %v", cfg.RunTimeout)}
	}
	if firstAbort != nil {
		return nil, firstAbort
	}

	metrics := make([]comm.Metrics, cfg.P)
	for r, pe := range pes {
		metrics[r] = pe.C.M
	}
	return metrics, nil
}

// Modeled evaluates a run's per-PE metrics under the α+β network cost model:
// for each built-in costmodel profile it reports the bottleneck (max over
// PEs) modeled communication time. This is the paper's "what would the same
// traffic cost on a slower interconnect" lens, available directly on the
// runtime's return value.
func Modeled(per []comm.Metrics) map[string]time.Duration {
	out := make(map[string]time.Duration, len(costmodel.Profiles()))
	for _, prof := range costmodel.Profiles() {
		out[prof.Name] = costmodel.Bottleneck(per, prof)
	}
	return out
}

// RankActivity is one rank's overlapped-work vs idle-wait split: Overlap is
// CPU time the rank spent on global-phase receive work while it was still
// emitting shipments (before the final drain, where the barriered path does
// all of it; summed over the rank's workers, so it can exceed wall time),
// Idle the wall time it waited inside the termination detector with nothing
// to process — the straggler-skew signal the overlapped pipeline shrinks.
// The worst rank's idle is aggregated as comm.Aggregate.MaxIdleNs.
type RankActivity struct {
	Rank    int
	Overlap time.Duration
	Idle    time.Duration
}

// Activity reports the per-rank overlap/idle breakdown of a run's metrics,
// indexed by rank.
func Activity(per []comm.Metrics) []RankActivity {
	out := make([]RankActivity, len(per))
	for r, m := range per {
		out[r] = RankActivity{
			Rank:    r,
			Overlap: time.Duration(m.OverlapNs),
			Idle:    time.Duration(m.IdleNs),
		}
	}
	return out
}

// SkewSummary condenses a run's per-rank load imbalance into the numbers a
// placement decision needs: the busiest and the average rank's receive-side
// intersection work (comm.Metrics.RecvWorkWords — deterministic, unlike
// wall clock) and their ratio (1.0 = perfectly balanced; the max-PE
// straggler finishes Ratio× later than the average under equal throughput),
// plus the worst rank's idle wait as the wall-clock echo of the same skew.
type SkewSummary struct {
	MaxRecvWork  int64
	MeanRecvWork float64
	Ratio        float64
	MaxIdle      time.Duration
}

// ActivitySkew summarizes per-rank activity imbalance from a run's metrics.
// Ratio is 0 when no rank did any receive-side work (nothing to skew).
func ActivitySkew(per []comm.Metrics) SkewSummary {
	var s SkewSummary
	var total int64
	for _, m := range per {
		total += m.RecvWorkWords
		if m.RecvWorkWords > s.MaxRecvWork {
			s.MaxRecvWork = m.RecvWorkWords
		}
		if idle := time.Duration(m.IdleNs); idle > s.MaxIdle {
			s.MaxIdle = idle
		}
	}
	if len(per) > 0 && total > 0 {
		s.MeanRecvWork = float64(total) / float64(len(per))
		s.Ratio = float64(s.MaxRecvWork) / s.MeanRecvWork
	}
	return s
}

// ModeledWire is Modeled over the codec-encoded wire bytes instead of the
// raw machine words: the α+β time the same run would take once the codec
// layer's compression is accounted for. Comparing the two maps per profile
// shows how much of the interconnect bill the wire codecs pay.
func ModeledWire(per []comm.Metrics) map[string]time.Duration {
	out := make(map[string]time.Duration, len(costmodel.Profiles()))
	for _, prof := range costmodel.Profiles() {
		out[prof.Name] = costmodel.BottleneckWire(per, prof)
	}
	return out
}

package dist_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/leakcheck"
	"repro/internal/transport"
)

// Abort-semantics tests over real loopback TCP: the same failure taxonomy
// the in-process transport tests pin, but with actual sockets, writer
// goroutines, reconnect machinery, and heartbeats in the path.

func tcpNet(t *testing.T, p int, opt transport.TCPOptions) *transport.TCPNetwork {
	t.Helper()
	n, err := transport.NewLoopbackTCPNetworkOpts(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	// dist.Run closes the network itself; no cleanup here.
	return n
}

func TestRunTCPBodyErrorAborts(t *testing.T) {
	leakcheck.Check(t)
	net := tcpNet(t, 3, transport.TCPOptions{})
	_, err := dist.Run(dist.Config{P: 3, Network: net, RunTimeout: 30 * time.Second},
		func(pe *dist.PE) error {
			if pe.Rank == 1 {
				return fmt.Errorf("deliberate failure on rank 1")
			}
			pe.C.Barrier() // blocks on the failed rank until the abort unsticks it
			return nil
		})
	var re *dist.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Cause != dist.CauseBody || re.Rank != 1 {
		t.Fatalf("got cause %s on rank %d, want body error on rank 1", re.Cause, re.Rank)
	}
}

func TestRunTCPWatchdogAttributesStall(t *testing.T) {
	leakcheck.Check(t)
	net := tcpNet(t, 3, transport.TCPOptions{})
	_, err := dist.Run(dist.Config{
		P: 3, Network: net,
		CommDeadline: 200 * time.Millisecond,
		RunTimeout:   30 * time.Second,
	}, func(pe *dist.PE) error {
		// Rank 0 never enters the barrier: the others wait on traffic that
		// will never arrive — the canonical silent-stall the watchdog exists
		// for (no peer died, so Health stays clean).
		if pe.Rank == 0 {
			return nil
		}
		pe.C.Barrier()
		return nil
	})
	var re *dist.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Cause != dist.CauseWatchdog {
		t.Fatalf("cause = %s, want watchdog", re.Cause)
	}
	var wd *comm.WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("no WatchdogError in chain: %v", err)
	}
}

func TestRunTCPRunTimeoutBoundsTheRun(t *testing.T) {
	leakcheck.Check(t)
	net := tcpNet(t, 2, transport.TCPOptions{})
	start := time.Now()
	_, err := dist.Run(dist.Config{
		P: 2, Network: net,
		RunTimeout: 500 * time.Millisecond, // no CommDeadline: the run watchdog is the only bound
	}, func(pe *dist.PE) error {
		if pe.Rank == 0 {
			return nil
		}
		pe.C.Barrier()
		return nil
	})
	took := time.Since(start)
	var re *dist.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Cause != dist.CauseTimeout || re.Rank != -1 {
		t.Fatalf("got cause %s on rank %d, want run timeout on rank -1", re.Cause, re.Rank)
	}
	if took > 10*time.Second {
		t.Fatalf("join took %v; the timeout did not unstick the stalled PE", took)
	}
}

func TestRunTCPPeerLossWinsAttribution(t *testing.T) {
	leakcheck.Check(t)
	net := tcpNet(t, 3, transport.TCPOptions{
		RetryInterval:     2 * time.Millisecond,
		DialTimeout:       100 * time.Millisecond,
		MaxSendRetries:    1,
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatTimeout:  75 * time.Millisecond,
	})
	// The test kills rank 1's endpoint mid-run (listener and connections)
	// and has its body exit silently — a process death leaves no error
	// behind, only silence. The survivors' transports must condemn the dead
	// rank (heartbeat silence or reconnect exhaustion, whichever notices
	// first) and the runtime must attribute the abort to that peer loss.
	entered := make(chan struct{})
	killed := make(chan struct{})
	ep1, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-entered
		ep1.Close()
		close(killed)
	}()
	_, err = dist.Run(dist.Config{
		P: 3, Network: net,
		CommDeadline: 2 * time.Second,
		RunTimeout:   30 * time.Second,
	}, func(pe *dist.PE) error {
		pe.C.Barrier() // everyone connected and exchanging
		if pe.Rank == 1 {
			close(entered)
			<-killed
			return nil // dead: exits without a word, like a crashed process
		}
		pe.C.Barrier() // survivors block here until rank 1 is condemned
		return nil
	})
	var re *dist.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Cause != dist.CausePeerLoss {
		t.Fatalf("cause = %s, want peer loss (err: %v)", re.Cause, re)
	}
	var pl *comm.ErrPeerLost
	if !errors.As(err, &pl) || pl.Rank != 1 {
		t.Fatalf("peer loss blamed %v, want rank 1 (err: %v)", pl, err)
	}
	var pd *transport.PeerDownError
	if !errors.As(err, &pd) {
		t.Fatalf("no transport.PeerDownError in chain: %v", err)
	}
}

package costmodel

import "repro/internal/comm"

// MeasuredName is the profile name that selects online calibration instead
// of a static parameter table: Config.Profile / -profile accept it, and the
// consumers (flush watermark, placement cost, the Bottleneck* lenses) then
// use the α/β recovered from the run's own frame-latency samples, falling
// back to Cloud until enough samples exist.
const MeasuredName = "measured"

// MinCalibrationSamples is the smallest number of timed data frames a fit
// will accept. Below it (or without any size spread across the samples) the
// least-squares system is ill-conditioned and Calibrate reports failure so
// callers can fall back to a static profile.
const MinCalibrationSamples = 32

// BetaFloor is the smallest per-word transfer cost Calibrate reports (in
// seconds per word). A fit that collapses to the pure-latency model still
// needs a positive β so downstream α/β ratios (FlushWatermark) stay
// defined.
const BetaFloor = 1e-12

// IntersectSecPerWord is the modeled compute rate of a merge intersection:
// seconds per list word scanned (memory-bound pointer walk over sorted
// uint64 slices, ~1ns/word on current hardware). It is the exchange rate
// the placement solver uses to convert wire seconds (α+β) into the same
// currency as receive-side intersection work, so a move's shipment cost is
// comparable to the work it relocates regardless of how fast the transport
// is. Deliberately a constant, not a calibration output: intersect
// throughput varies far less across machines than network parameters do.
const IntersectSecPerWord = 1e-9

// Calibrate fits a live α+β profile to the frame-latency samples metered in
// m: each data frame send contributed one (wire bytes, ns) observation, and
// the closed-form least-squares line through them recovers the per-frame
// startup cost (α, the intercept) and the per-byte transfer cost (the
// slope, converted to Beta's per-8-byte-word convention). Returns ok=false
// only when the samples cannot identify anything: too few, or no size
// variance. A non-positive slope — the normal outcome on transports whose
// latency barely depends on frame size (in-process channels), where
// scheduling noise decides the slope's sign — degrades to the pure-latency
// model instead of failing: α is the mean frame latency and β sits at
// BetaFloor, which keeps the measured profile usable (and its α/β pricing
// stable) on fast transports. α from a genuine sloped fit is clamped
// non-negative, with a degenerate 0 floored at one nanosecond so
// FlushWatermark stays meaningful.
func Calibrate(m comm.Metrics) (Profile, bool) {
	n := float64(m.LatSamples)
	if m.LatSamples < MinCalibrationSamples {
		return Profile{}, false
	}
	// Least squares over y = α + slope·x with x in bytes, y in ns:
	//   slope = (nΣxy − ΣxΣy) / (nΣx² − (Σx)²),  α = (Σy − slope·Σx)/n.
	det := n*m.LatSumBytes2 - m.LatSumBytes*m.LatSumBytes
	if det <= 0 {
		return Profile{}, false // no size spread: slope unidentifiable
	}
	const nsPerSec = 1e9
	slope := (n*m.LatSumNsB - m.LatSumBytes*m.LatSumNs) / det
	if slope <= 0 {
		// Flat transport (or noise-dominated slope): the identifiable
		// quantity is the mean per-frame latency, so report it as α over a
		// floored β — the pure-latency model.
		alpha := m.LatSumNs / n / nsPerSec
		if alpha < 1e-9 {
			alpha = 1e-9
		}
		return Profile{Name: MeasuredName, Alpha: alpha, Beta: BetaFloor}, true
	}
	alpha := (m.LatSumNs - slope*m.LatSumBytes) / n
	if alpha < 0 {
		// Noise can push the intercept below zero; the startup cost of a
		// real transport cannot be negative, so clamp and keep the slope.
		alpha = 0
	}
	p := Profile{
		Name:  MeasuredName,
		Alpha: alpha / nsPerSec,
		Beta:  slope * 8 / nsPerSec, // per-byte slope → per-word Beta
	}
	if p.Alpha == 0 {
		p.Alpha = 1e-9 // floor: keep FlushWatermark ≥ 1 well-defined
	}
	return p, true
}

// MeasuredProfile fits one α+β profile to a whole run by pooling every
// rank's samples (comm.Metrics.Add accumulates the running sums, so the
// pooled fit weighs each frame equally). ok=false under the same conditions
// as Calibrate.
func MeasuredProfile(per []comm.Metrics) (Profile, bool) {
	var all comm.Metrics
	for _, m := range per {
		all.Add(m)
	}
	return Calibrate(all)
}

// Resolve maps a profile name to parameters usable right now: static names
// resolve from the built-in table, MeasuredName fits m's samples and falls
// back to Cloud (the conservative middle profile) when calibration cannot
// succeed yet. The boolean reports whether the result is a genuine
// measurement (always true for static names, false on the fallback).
func Resolve(name string, m comm.Metrics) (Profile, bool, error) {
	if name == MeasuredName {
		if p, ok := Calibrate(m); ok {
			return p, true, nil
		}
		return Cloud, false, nil
	}
	p, err := ByName(name)
	return p, true, err
}

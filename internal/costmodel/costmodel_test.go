package costmodel

import (
	"testing"
	"time"

	"repro/internal/comm"
)

func TestTimeLinearInTraffic(t *testing.T) {
	p := Profile{Name: "test", Alpha: 1e-3, Beta: 1e-6}
	m := comm.Metrics{SentFrames: 10, SentWords: 1000}
	want := time.Duration((1e-3*10 + 1e-6*1000) * float64(time.Second))
	if got := p.Time(m); got != want {
		t.Fatalf("Time = %v, want %v", got, want)
	}
}

func TestBottleneckPicksWorstPE(t *testing.T) {
	p := Profile{Alpha: 1, Beta: 0}
	per := []comm.Metrics{{SentFrames: 1}, {SentFrames: 5}, {SentFrames: 3}}
	if got := Bottleneck(per, p); got != 5*time.Second {
		t.Fatalf("Bottleneck = %v", got)
	}
	if got := Total(per, p); got != 9*time.Second {
		t.Fatalf("Total = %v", got)
	}
}

func TestLatencyDominatedRegimeFavorsAggregation(t *testing.T) {
	// Same volume, different message counts: on the WAN profile the
	// many-small-messages PE must be far slower, on the supercomputer
	// profile they are close. This is the Fig. 2 logic in model form.
	aggregated := comm.Metrics{SentFrames: 10, SentWords: 100000}
	unbuffered := comm.Metrics{SentFrames: 10000, SentWords: 100000}
	wanRatio := float64(WAN.Time(unbuffered)) / float64(WAN.Time(aggregated))
	hpcRatio := float64(Supercomputer.Time(unbuffered)) / float64(Supercomputer.Time(aggregated))
	if wanRatio < 10 {
		t.Fatalf("WAN should punish unbuffered sends, ratio %.1f", wanRatio)
	}
	if hpcRatio >= wanRatio {
		t.Fatalf("supercomputer ratio %.1f should be below WAN ratio %.1f", hpcRatio, wanRatio)
	}
}

func TestTimeOverlappedIsMaxOfComputeAndComm(t *testing.T) {
	p := Profile{Alpha: 1, Beta: 0}
	m := comm.Metrics{SentFrames: 4} // comm = 4s
	if got := p.TimeOverlapped(m, 10*time.Second); got != 10*time.Second {
		t.Fatalf("compute-bound: %v, want 10s", got)
	}
	if got := p.TimeOverlapped(m, time.Second); got != 4*time.Second {
		t.Fatalf("comm-bound: %v, want 4s", got)
	}
	// Overlap can never be slower than the barriered sum, and never faster
	// than the larger term.
	for _, compute := range []time.Duration{0, time.Second, 10 * time.Second} {
		ov := p.TimeOverlapped(m, compute)
		if sum := p.Time(m) + compute; ov > sum {
			t.Fatalf("overlapped %v exceeds barriered sum %v", ov, sum)
		}
	}
}

func TestBottleneckOverlappedPicksWorstPE(t *testing.T) {
	p := Profile{Alpha: 1, Beta: 0}
	per := []comm.Metrics{{SentFrames: 1}, {SentFrames: 5}, {SentFrames: 3}}
	compute := []time.Duration{8 * time.Second, time.Second} // rank 2 compute missing => 0
	if got := BottleneckOverlapped(per, compute, p); got != 8*time.Second {
		t.Fatalf("BottleneckOverlapped = %v, want 8s", got)
	}
	// Fully comm-bound ranks reduce to the plain bottleneck.
	if got := BottleneckOverlapped(per, nil, p); got != Bottleneck(per, p) {
		t.Fatalf("nil compute: %v, want %v", got, Bottleneck(per, p))
	}
}

func TestByName(t *testing.T) {
	for _, want := range Profiles() {
		got, err := ByName(want.Name)
		if err != nil || got != want {
			t.Fatalf("ByName(%q) = %+v, %v", want.Name, got, err)
		}
	}
	if _, err := ByName("dialup"); err == nil {
		t.Fatal("want error for unknown profile")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("want error for empty profile name")
	}
}

// TestFlushWatermark pins the break-even frame size ⌈α/β⌉ of every built-in
// profile — the values the overlapped pipeline derives its eager-flush
// watermark from (core.overlapWatermark's table test covers the δ clamp).
func TestFlushWatermark(t *testing.T) {
	for _, tc := range []struct {
		p    Profile
		want int
	}{
		{Supercomputer, 1563}, // 1µs / (64B/100Gbit) = 1562.5, rounded up
		{Cloud, 7813},         // 50µs / (64B/10Gbit) = 7812.5
		{WAN, 31250},          // 2ms / (64B/1Gbit) = 31250 exactly
		{Profile{Alpha: 0, Beta: 1}, 1},
		{Profile{Alpha: 1, Beta: 0}, 1},
		{Profile{Alpha: 1e-9, Beta: 1}, 1}, // sub-word break-even floors at 1
	} {
		if got := tc.p.FlushWatermark(); got != tc.want {
			t.Errorf("%s: FlushWatermark = %d, want %d", tc.p.Name, got, tc.want)
		}
	}
}

// TestTimeWire2DChargesBothDirections: the 2D lens adds receive frames and
// bytes on top of TimeWire's send side, so a PE that only receives still
// shows modeled cost, and a send-only PE matches the 1D wire lens exactly.
func TestTimeWire2DChargesBothDirections(t *testing.T) {
	p := Profile{Alpha: 1e-3, Beta: 8e-6} // β/8 = 1µs per byte
	sendOnly := comm.Metrics{SentFrames: 4, EncodedBytes: 1000}
	if got, want := p.TimeWire2D(sendOnly), p.TimeWire(sendOnly); got != want {
		t.Fatalf("send-only: TimeWire2D %v != TimeWire %v", got, want)
	}
	recvOnly := comm.Metrics{RecvFrames: 4, RecvEncodedBytes: 1000}
	if got := p.TimeWire2D(recvOnly); got != p.TimeWire(sendOnly) {
		t.Fatalf("recv-only: %v, want the symmetric %v", got, p.TimeWire(sendOnly))
	}
	both := comm.Metrics{SentFrames: 4, EncodedBytes: 1000, RecvFrames: 4, RecvEncodedBytes: 1000}
	if got := p.TimeWire2D(both); got != 2*p.TimeWire(sendOnly) {
		t.Fatalf("both directions: %v, want %v", got, 2*p.TimeWire(sendOnly))
	}
}

func TestBottleneckWire2DPicksWorstPE(t *testing.T) {
	p := Profile{Alpha: 1, Beta: 0}
	per := []comm.Metrics{
		{SentFrames: 1, RecvFrames: 1},
		{SentFrames: 2, RecvFrames: 4}, // worst: 6 blocking frames
		{SentFrames: 3},
	}
	if got := BottleneckWire2D(per, p); got != 6*time.Second {
		t.Fatalf("BottleneckWire2D = %v, want 6s", got)
	}
}

// TestTimeOverlapped2DPipelineShape pins the pipelined round model
// C + (rounds−1)·max(C, W) + W against hand-computed cases, its blocking
// upper bound, and its max(comm, compute) lower bound.
func TestTimeOverlapped2DPipelineShape(t *testing.T) {
	p := Profile{Alpha: 1, Beta: 0}
	m := comm.Metrics{SentFrames: 6, RecvFrames: 6} // TimeWire2D = 12s
	// 3 rounds, C = 4s per round.
	// Compute-bound: W = 8s/round → 4 + 2·8 + 8 = 28s.
	if got := p.TimeOverlapped2D(m, 24*time.Second, 3); got != 28*time.Second {
		t.Fatalf("compute-bound: %v, want 28s", got)
	}
	// Comm-bound: W = 1s/round → 4 + 2·4 + 1 = 13s.
	if got := p.TimeOverlapped2D(m, 3*time.Second, 3); got != 13*time.Second {
		t.Fatalf("comm-bound: %v, want 13s", got)
	}
	// One round cannot pipeline: plain sum.
	if got := p.TimeOverlapped2D(m, 5*time.Second, 1); got != 17*time.Second {
		t.Fatalf("rounds=1: %v, want 17s", got)
	}
	// Bounds: never above blocking comm+compute, never below max of either.
	for _, compute := range []time.Duration{0, 3 * time.Second, 24 * time.Second} {
		for _, rounds := range []int{1, 2, 3, 4, 6} {
			ov := p.TimeOverlapped2D(m, compute, rounds)
			if sum := p.TimeWire2D(m) + compute; ov > sum {
				t.Fatalf("rounds=%d compute=%v: pipelined %v exceeds blocking %v",
					rounds, compute, ov, sum)
			}
			if lo := max(p.TimeWire2D(m), compute); ov < lo {
				t.Fatalf("rounds=%d compute=%v: pipelined %v below floor %v",
					rounds, compute, ov, lo)
			}
		}
	}
}

func TestBottleneckOverlapped2DPicksWorstPE(t *testing.T) {
	p := Profile{Alpha: 1, Beta: 0}
	per := []comm.Metrics{
		{SentFrames: 2, RecvFrames: 2}, // C_total = 4s
		{SentFrames: 4, RecvFrames: 4}, // C_total = 8s
	}
	compute := []time.Duration{20 * time.Second} // rank 1 compute missing => 0
	// rank 0: rounds=2, C=2, W=10 → 2 + 10 + 10 = 22s; rank 1: 8s comm only.
	if got := BottleneckOverlapped2D(per, compute, 2, p); got != 22*time.Second {
		t.Fatalf("BottleneckOverlapped2D = %v, want 22s", got)
	}
	// Comm-only ranks reduce to the 2D wire bottleneck.
	if got := BottleneckOverlapped2D(per, nil, 2, p); got != BottleneckWire2D(per, p) {
		t.Fatalf("nil compute: %v, want %v", got, BottleneckWire2D(per, p))
	}
}

func TestProfilesDistinct(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("want 3 profiles, got %d", len(ps))
	}
	if !(ps[0].Alpha < ps[1].Alpha && ps[1].Alpha < ps[2].Alpha) {
		t.Fatal("profiles should have increasing latency")
	}
}

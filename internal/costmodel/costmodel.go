// Package costmodel evaluates the paper's α+βℓ communication model over
// measured per-PE traffic. The paper's machine (SuperMUC-NG) hides most
// communication behind a 100 Gbit/s OmniPath fabric; re-evaluating the same
// traffic under cloud- or WAN-like parameters shows the regimes where the
// contraction (CETRIC) and indirection (the "2" variants) pay off — the
// paper's own prediction for slower interconnects.
package costmodel

import (
	"fmt"
	"time"

	"repro/internal/comm"
)

// Profile is a network parameterization: Alpha is the per-message startup
// time, Beta the per-machine-word transfer time (both in seconds).
type Profile struct {
	Name  string
	Alpha float64
	Beta  float64
}

// Predefined profiles. Beta is derived from 8-byte words on the respective
// link bandwidth.
var (
	// Supercomputer: ~1µs MPI latency, 100 Gbit/s.
	Supercomputer = Profile{Name: "supercomputer", Alpha: 1e-6, Beta: 8 * 8 / 100e9}
	// Cloud: ~50µs kernel TCP latency, 10 Gbit/s.
	Cloud = Profile{Name: "cloud", Alpha: 50e-6, Beta: 8 * 8 / 10e9}
	// WAN: ~2ms RTT-ish latency, 1 Gbit/s.
	WAN = Profile{Name: "wan", Alpha: 2e-3, Beta: 8 * 8 / 1e9}
)

// Profiles lists the built-in profiles.
func Profiles() []Profile { return []Profile{Supercomputer, Cloud, WAN} }

// ByName resolves a built-in profile by its Name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("costmodel: unknown profile %q (want supercomputer, cloud, or wan)", name)
}

// FlushWatermark returns the profile's break-even frame size in words: the
// payload at which a frame's βℓ transfer time equals its α startup —
// ⌈α/β⌉. Frames below it are latency-dominated; an eager-flush policy that
// emits smaller frames pays more in added startups than it can hide by
// overlapping. The overlapped pipeline derives its flush watermark from
// this instead of a fixed constant when a profile is configured, which is
// what makes it competitive on high-α (cloud/WAN) parameterizations.
func (p Profile) FlushWatermark() int {
	if p.Beta <= 0 || p.Alpha <= 0 {
		return 1
	}
	w := int(p.Alpha/p.Beta + 0.999999)
	return max(w, 1)
}

// Time returns the modeled communication time of one PE's traffic:
// α·messages + β·words. Words are the pre-encoding volume, so this is the
// paper's original lens, independent of the wire codec in use.
func (p Profile) Time(m comm.Metrics) time.Duration {
	s := p.Alpha*float64(m.SentFrames) + p.Beta*float64(m.SentWords)
	return time.Duration(s * float64(time.Second))
}

// TimeWire returns the modeled communication time of the traffic that
// actually crossed the wire: α·messages + (β/8)·encoded bytes. β is
// per-word (8 bytes), so β/8 is the matching per-byte transfer time. The
// gap between Time and TimeWire is the α+β value of the codec layer's
// compression.
func (p Profile) TimeWire(m comm.Metrics) time.Duration {
	s := p.Alpha*float64(m.SentFrames) + p.Beta/8*float64(m.EncodedBytes)
	return time.Duration(s * float64(time.Second))
}

// Bottleneck returns the maximum modeled communication time over all PEs —
// the single-ported model's completion time proxy.
func Bottleneck(per []comm.Metrics, p Profile) time.Duration {
	var worst time.Duration
	for _, m := range per {
		if t := p.Time(m); t > worst {
			worst = t
		}
	}
	return worst
}

// BottleneckWire is Bottleneck under TimeWire (encoded bytes on the wire).
func BottleneckWire(per []comm.Metrics, p Profile) time.Duration {
	var worst time.Duration
	for _, m := range per {
		if t := p.TimeWire(m); t > worst {
			worst = t
		}
	}
	return worst
}

// TimeWire2D is the wire-byte lens for the 2D collective exchange. The 1D
// queue is asynchronous — receives overlap with compute, so TimeWire
// charges only the send side. A PE of the block-collective schedule instead
// blocks on every broadcast it participates in: each counting round's A-
// and B-blocks must be fully received before its wedges can close, so both
// directions sit on the critical path. The modeled time is therefore
// α·(sent + received frames) + (β/8)·(sent + received encoded bytes),
// using the same α+β parameters as the 1D lenses so the two geometries are
// directly comparable.
func (p Profile) TimeWire2D(m comm.Metrics) time.Duration {
	s := p.Alpha*float64(m.SentFrames+m.RecvFrames) +
		p.Beta/8*float64(m.EncodedBytes+m.RecvEncodedBytes)
	return time.Duration(s * float64(time.Second))
}

// BottleneckWire2D is the completion-time proxy of the collective exchange:
// the maximum TimeWire2D over PEs. Comparing it against BottleneckWire of a
// 1D run on the same graph and profile locates the crossover p beyond
// which O(√p)-collective volume beats cut-neighborhood shipping.
func BottleneckWire2D(per []comm.Metrics, p Profile) time.Duration {
	var worst time.Duration
	for _, m := range per {
		if t := p.TimeWire2D(m); t > worst {
			worst = t
		}
	}
	return worst
}

// TimeOverlapped returns the modeled completion time of one PE whose
// computation overlaps its communication: max(compute, comm) instead of the
// barriered compute + comm. compute is the PE's measured busy time (its
// phase walls minus idle waits); the communication term is the α+β time of
// its traffic. The gap between Time+compute and TimeOverlapped is the α+β
// value of the overlapped pipeline on that profile — by construction it
// grows with the profile's latency, the paper's own prediction for slower
// interconnects.
func (p Profile) TimeOverlapped(m comm.Metrics, compute time.Duration) time.Duration {
	if c := p.Time(m); c > compute {
		return c
	}
	return compute
}

// BottleneckOverlapped is the completion-time proxy of a fully overlapped
// run: the maximum over PEs of max(compute, comm). compute must be indexed
// by rank like per; missing entries model a communication-only rank.
func BottleneckOverlapped(per []comm.Metrics, compute []time.Duration, p Profile) time.Duration {
	var worst time.Duration
	for i, m := range per {
		var c time.Duration
		if i < len(compute) {
			c = compute[i]
		}
		if t := p.TimeOverlapped(m, c); t > worst {
			worst = t
		}
	}
	return worst
}

// TimeOverlapped2D models one PE of the pipelined 2D exchange: round 0's
// broadcasts cannot be hidden (nothing to compute against yet), the middle
// rounds each cost max(comm, compute) — round k+1's broadcasts are in
// flight while round k counts — and the last round's counting runs with
// nothing left to post. With per-round comm time C = TimeWire2D/rounds and
// compute time W = compute/rounds the pipeline's critical path is
// C + (rounds−1)·max(C, W) + W, against the blocking schedule's
// rounds·(C + W). Rounds is lcm(r,c) of the (possibly rectangular) grid;
// rounds ≤ 1 degenerates to the unpipelined sum.
func (p Profile) TimeOverlapped2D(m comm.Metrics, compute time.Duration, rounds int) time.Duration {
	comm2d := p.TimeWire2D(m)
	if rounds <= 1 {
		return comm2d + compute
	}
	c := comm2d / time.Duration(rounds)
	w := compute / time.Duration(rounds)
	return c + time.Duration(rounds-1)*max(c, w) + w
}

// BottleneckOverlapped2D is the completion-time proxy of the pipelined 2D
// exchange: the maximum TimeOverlapped2D over PEs. compute is indexed by
// rank like per; missing entries model a communication-only rank. Comparing
// it against BottleneckWire2D + the compute bottleneck prices what the
// split-phase pipeline buys on a given profile.
func BottleneckOverlapped2D(per []comm.Metrics, compute []time.Duration, rounds int, p Profile) time.Duration {
	var worst time.Duration
	for i, m := range per {
		var c time.Duration
		if i < len(compute) {
			c = compute[i]
		}
		if t := p.TimeOverlapped2D(m, c, rounds); t > worst {
			worst = t
		}
	}
	return worst
}

// Total returns the summed modeled time (useful for energy-style accounting
// rather than makespan).
func Total(per []comm.Metrics, p Profile) time.Duration {
	var sum time.Duration
	for _, m := range per {
		sum += p.Time(m)
	}
	return sum
}

package costmodel

import (
	"math"
	"testing"

	"repro/internal/comm"
)

// sampleMetrics folds synthetic (frame bytes, latency ns) observations into
// the accumulator form comm meters during a run.
func sampleMetrics(samples [][2]float64) comm.Metrics {
	var m comm.Metrics
	for _, s := range samples {
		bytes, ns := s[0], s[1]
		m.LatSamples++
		m.LatSumNs += ns
		m.LatSumBytes += bytes
		m.LatSumNsB += ns * bytes
		m.LatSumBytes2 += bytes * bytes
	}
	return m
}

// TestCalibrateRecoversKnownLine feeds the fitter samples generated from an
// exact α+β line and checks it recovers both parameters. With no noise the
// closed-form least squares must land on the line to float precision.
func TestCalibrateRecoversKnownLine(t *testing.T) {
	const (
		alphaNs     = 20e3 // 20µs startup
		nsPerByte   = 0.8  // 10 Gbit/s ballpark
		sampleCount = 64
	)
	var samples [][2]float64
	for i := 0; i < sampleCount; i++ {
		bytes := float64(64 * (i + 1))
		samples = append(samples, [2]float64{bytes, alphaNs + nsPerByte*bytes})
	}
	p, ok := Calibrate(sampleMetrics(samples))
	if !ok {
		t.Fatal("fit rejected clean samples")
	}
	if p.Name != MeasuredName {
		t.Fatalf("profile name %q, want %q", p.Name, MeasuredName)
	}
	wantAlpha := alphaNs / 1e9
	wantBeta := nsPerByte * 8 / 1e9
	if math.Abs(p.Alpha-wantAlpha) > 1e-6*wantAlpha {
		t.Fatalf("α = %g, want %g", p.Alpha, wantAlpha)
	}
	if math.Abs(p.Beta-wantBeta) > 1e-6*wantBeta {
		t.Fatalf("β = %g, want %g", p.Beta, wantBeta)
	}
}

// TestCalibrateRejectsIllConditioned enumerates the degenerate sample sets
// the fitter must refuse: too few observations and no size spread (slope
// unidentifiable).
func TestCalibrateRejectsIllConditioned(t *testing.T) {
	var few [][2]float64
	for i := 0; i < MinCalibrationSamples-1; i++ {
		few = append(few, [2]float64{float64(64 * (i + 1)), 1000})
	}
	if _, ok := Calibrate(sampleMetrics(few)); ok {
		t.Fatal("accepted fewer than MinCalibrationSamples samples")
	}
	var flat [][2]float64
	for i := 0; i < 2*MinCalibrationSamples; i++ {
		flat = append(flat, [2]float64{512, 1000 + float64(i)})
	}
	if _, ok := Calibrate(sampleMetrics(flat)); ok {
		t.Fatal("accepted samples with zero size spread")
	}
}

// TestCalibrateFlatSlopeDegradesToPureLatency pins the fast-transport path:
// when latency does not grow with frame size (the slope comes out ≤ 0), the
// fit must not fail — engagement decisions downstream would then flip on
// scheduling noise — but collapse to α = mean frame latency over a floored
// β, the pure-latency model.
func TestCalibrateFlatSlopeDegradesToPureLatency(t *testing.T) {
	var falling [][2]float64
	var sum float64
	for i := 0; i < 2*MinCalibrationSamples; i++ {
		bytes := float64(64 * (i + 1))
		ns := 1e6 - 10*bytes
		falling = append(falling, [2]float64{bytes, ns})
		sum += ns
	}
	p, ok := Calibrate(sampleMetrics(falling))
	if !ok {
		t.Fatal("rejected a flat-slope sample set instead of degrading")
	}
	wantAlpha := sum / float64(len(falling)) / 1e9
	if math.Abs(p.Alpha-wantAlpha) > 1e-6*wantAlpha {
		t.Fatalf("pure-latency α = %g, want the mean latency %g", p.Alpha, wantAlpha)
	}
	if p.Beta != BetaFloor {
		t.Fatalf("pure-latency β = %g, want BetaFloor", p.Beta)
	}
}

// TestCalibrateClampsNegativeIntercept keeps α physical: noise can push the
// fitted intercept below zero, which must clamp to the 1ns floor instead of
// producing a negative startup cost.
func TestCalibrateClampsNegativeIntercept(t *testing.T) {
	var samples [][2]float64
	for i := 0; i < 2*MinCalibrationSamples; i++ {
		bytes := float64(64 * (i + 1))
		// Line through a negative intercept: y = -5000 + 2·x.
		samples = append(samples, [2]float64{bytes, -5000 + 2*bytes})
	}
	p, ok := Calibrate(sampleMetrics(samples))
	if !ok {
		t.Fatal("fit rejected samples with a recoverable slope")
	}
	if p.Alpha != 1e-9 {
		t.Fatalf("clamped α = %g, want the 1ns floor", p.Alpha)
	}
}

// TestMeasuredProfilePoolsRanks checks the cluster-wide fit weighs every
// rank's samples equally: splitting one sample set across ranks must yield
// the same parameters as fitting it whole.
func TestMeasuredProfilePoolsRanks(t *testing.T) {
	var all [][2]float64
	for i := 0; i < 4*MinCalibrationSamples; i++ {
		bytes := float64(128 * (i + 1))
		all = append(all, [2]float64{bytes, 30e3 + 1.5*bytes})
	}
	whole, ok := Calibrate(sampleMetrics(all))
	if !ok {
		t.Fatal("whole-set fit failed")
	}
	quarter := len(all) / 4
	var per []comm.Metrics
	for r := 0; r < 4; r++ {
		per = append(per, sampleMetrics(all[r*quarter:(r+1)*quarter]))
	}
	pooled, ok := MeasuredProfile(per)
	if !ok {
		t.Fatal("pooled fit failed")
	}
	if math.Abs(pooled.Alpha-whole.Alpha) > 1e-12 || math.Abs(pooled.Beta-whole.Beta) > 1e-15 {
		t.Fatalf("pooled fit (%g, %g) differs from whole-set fit (%g, %g)",
			pooled.Alpha, pooled.Beta, whole.Alpha, whole.Beta)
	}
}

// TestResolveMeasuredFallsBack pins Resolve's contract for the measured
// profile name: a genuine fit when samples allow, the Cloud fallback (with
// measured=false) when they do not, and static names untouched.
func TestResolveMeasuredFallsBack(t *testing.T) {
	p, measured, err := Resolve(MeasuredName, comm.Metrics{})
	if err != nil || measured || p.Name != Cloud.Name {
		t.Fatalf("empty metrics: got (%v, %v, %v), want Cloud fallback", p.Name, measured, err)
	}
	var samples [][2]float64
	for i := 0; i < 2*MinCalibrationSamples; i++ {
		bytes := float64(64 * (i + 1))
		samples = append(samples, [2]float64{bytes, 10e3 + bytes})
	}
	p, measured, err = Resolve(MeasuredName, sampleMetrics(samples))
	if err != nil || !measured || p.Name != MeasuredName {
		t.Fatalf("clean samples: got (%v, %v, %v), want a measured fit", p.Name, measured, err)
	}
	if _, _, err := Resolve("no-such-profile", comm.Metrics{}); err == nil {
		t.Fatal("Resolve accepted an unknown static profile name")
	}
}

// Package tricount is a from-scratch Go reproduction of
//
//	Sanders, Uhl: "Engineering a Distributed-Memory Triangle Counting
//	Algorithm", IPDPS 2023 (arXiv:2302.11443).
//
// It counts the triangles of huge undirected graphs — and, optionally, the
// triangles incident to every vertex (local clustering coefficients) — on a
// cluster of processing elements with 1D-partitioned graph data. The two
// main algorithms are:
//
//   - DITRIC: distributed EDGE ITERATOR with degree orientation, dynamic
//     message aggregation with linear memory (an asynchronous sparse
//     all-to-all), and optional grid-based indirect routing (DITRIC2).
//   - CETRIC: a contraction-based two-phase variant that finds every
//     triangle with at most one remote corner locally and communicates only
//     the cut graph (CETRIC2 with indirection).
//
// The package also ships the baselines the paper compares against (TriC,
// a HavoqGT-style vertex-centric counter, an unbuffered edge iterator), the
// approximate extensions (Bloom-filter neighborhoods, DOULION, colorful
// sparsification), KAGEN-style graph generators, and an α+β network cost
// model. PEs run as goroutines over an in-process transport by default; a
// TCP transport (see internal/transport) runs real multi-process clusters.
//
// Quick start (compiles verbatim; covered by Example_quickstart):
//
//	g := tricount.GenerateRGG2D(1<<12, 16, 42)
//	res, err := tricount.Count(g, tricount.AlgoCetric, tricount.Options{PEs: 8})
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(res.Count)
//	// Output: 386649
package tricount

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

// Graph is an undirected graph in adjacency-array form.
type Graph = graph.Graph

// Vertex is a global vertex identifier.
type Vertex = graph.Vertex

// Edge is an undirected edge between two global vertex IDs.
type Edge = graph.Edge

// FromEdges builds a Graph on n vertices from an edge list, dropping
// self-loops and duplicate edges.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Algorithm selects a distributed counting algorithm.
type Algorithm = core.Algorithm

// The available algorithms. The "2" variants route messages indirectly over
// a logical 2D PE grid.
const (
	AlgoDiTric  = core.AlgoDiTric
	AlgoDiTric2 = core.AlgoDiTric2
	AlgoCetric  = core.AlgoCetric
	AlgoCetric2 = core.AlgoCetric2
	AlgoTriC    = core.AlgoTriC  // baseline: static buffers, no orientation
	AlgoHavoq   = core.AlgoHavoq // baseline: vertex-centric wedge visitors
	AlgoNoAgg   = core.AlgoNoAgg // baseline: no message aggregation (Fig. 2)
	// AlgoTK2D is the 2D grid-partitioned backend (Tom & Karypis): the
	// oriented adjacency matrix is cut into a √p×√p block grid and counted
	// in √p broadcast rounds along grid rows and columns. Requires a square
	// number of PEs; communication volume is O(|E|/√p) per PE regardless of
	// the cut structure — see the README's 2D backend section for when it
	// beats the 1D counters.
	AlgoTK2D = core.AlgoTK2D
)

// Options configures a run.
type Options struct {
	// PEs is the number of processing elements (required, ≥ 1).
	PEs int
	// Threshold is the aggregation threshold δ in machine words; ≤ 0 picks
	// O(|E_i|), the paper's linear-memory setting.
	Threshold int
	// Indirect forces grid-based indirect delivery even for the non-"2"
	// algorithm names.
	Indirect bool
	// Threads is the number of worker goroutines per PE: > 1 enables the
	// hybrid local/global counting phases (DITRIC/CETRIC) and parallelizes
	// the whole preprocessing pipeline (scatter, local CSR build,
	// orientation, contraction, hub bitmaps) for every algorithm.
	Threads int
	// Overlap runs DITRIC/CETRIC (and their indirect variants) on the
	// overlapped, work-stealing execution pipeline instead of the default
	// barrier-separated phases: cut-neighborhood shipments flush eagerly as
	// row chunks complete, received records park on a per-PE steal deque,
	// and the same chunk-stealing workers drain it concurrently with the
	// remaining emission work — global-phase intersections start while the
	// PE is still shipping and stragglers get stolen instead of
	// serialized. Counts are exactly identical to the barriered path; the
	// baselines ignore the flag. Per-rank overlap and idle time land in
	// Result.PerPE (OverlapNs/IdleNs) and the overlap/idle sub-phase.
	Overlap bool
	// LCC additionally computes per-vertex triangle counts Δ(v) and local
	// clustering coefficients (DITRIC/CETRIC only).
	LCC bool
	// Partition overrides the default uniform 1D partition.
	Partition *part.Partition
	// SparseDegreeExchange uses the asynchronous sparse all-to-all for the
	// ghost-degree exchange.
	SparseDegreeExchange bool
	// HubThreshold tunes the adaptive intersection engine: rows whose
	// oriented neighborhood A(v) has at least this many entries carry a
	// packed hub bitmap, turning intersections against them into bit tests
	// (hub ∩ hub into word-AND + popcount). 0 picks the engine default,
	// negative disables the bitmaps; total bitmap memory is always capped at
	// the size of the A-lists themselves. See the README's "hot path &
	// kernel selection" section for tuning guidance.
	HubThreshold int
	// BatchSize is the edge batch granularity of the streaming entry points
	// (Stream); ≤ 0 picks max(1024, m/8). Count ignores it.
	BatchSize int
	// Codec selects the wire codec policy for message payloads. The empty
	// string (or CodecAuto) picks tuned per-channel codecs: sorted
	// adjacency shipments travel delta+varint compressed, small-integer
	// records as varints, high-entropy Bloom/float words raw. CodecRaw
	// restores the uncompressed seed wire format; CodecVarint and
	// CodecDeltaVarint force one codec onto every channel. The policy only
	// changes bytes on the wire (Result.Agg.TotalEncodedBytes vs
	// TotalRawBytes), never any count.
	Codec string
	// Profile names a costmodel network profile ("supercomputer", "cloud",
	// "wan"), or "measured" to calibrate α/β live from the run's own
	// frame-latency samples (falling back to cloud until enough samples
	// exist). When set, the overlapped pipeline derives its eager-flush
	// watermark from the profile's α/β break-even frame size instead of the
	// fixed 1024-word constant (clamped to δ/2 either way); under "measured"
	// the watermark re-fits periodically as samples accumulate. It never
	// changes any count, only flush timing.
	Profile string
	// Placement selects the cost-model-driven hub placement overlay for
	// DITRIC/CETRIC: "off" (or empty) keeps owner-driven delivery, "static"
	// assigns heavy hub rows surrogate PEs by a greedy LPT priced with the
	// static α+β profile, "auto" prefers live-calibrated α/β. A moved hub's
	// neighborhood ships once to its surrogate, which intersects on behalf
	// of all requesters, rebalancing the max-PE global-phase work on skewed
	// graphs. Counts are identical under every setting.
	Placement string
}

// Placement policies for Options.Placement.
const (
	PlacementOff    = core.PlacementOff
	PlacementStatic = core.PlacementStatic
	PlacementAuto   = core.PlacementAuto
)

// Wire codec policies for Options.Codec.
const (
	CodecAuto        = core.CodecAuto
	CodecRaw         = core.CodecRaw
	CodecVarint      = core.CodecVarint
	CodecDeltaVarint = core.CodecDeltaVarint
)

// Result is re-exported from the core engine; see core.Result for the full
// field documentation (count, per-type counts, Δ/LCC vectors, per-PE
// communication metrics, per-phase times).
type Result = core.Result

// Partition is a contiguous 1D vertex partition (each PE owns an ID range).
// Build one with PartitionByCost and pass it via Options.Partition.
type Partition = part.Partition

// CostFunc estimates the preprocessing/counting work charged to a vertex of
// degree d; PartitionByCost balances its prefix sums across PEs.
type CostFunc = part.CostFunc

// The cost functions of Arifuzzaman et al., re-exported for PartitionByCost.
var (
	CostDegree   = part.CostDegree   // charge d: balances edges
	CostDegreeSq = part.CostDegreeSq // charge d²: proxy for hub intersection work
	CostWedges   = part.CostWedges   // charge C(d,2): open wedge count
	CostUnit     = part.CostUnit     // charge 1: reduces to the uniform partition
)

// PartitionByCost builds a cost-balanced contiguous 1D partition of g's
// vertices over pes PEs: vertex v goes to the PE whose share of the total
// cost (prefix-sum method) covers it, so ranges stay contiguous and ordered
// as the distributed algorithms require. It wraps the degree scan plus
// part.ByCost that cmd/tricount's -partition flag performs, so library
// users don't have to reimplement it.
func PartitionByCost(g *Graph, pes int, cost CostFunc) *Partition {
	degrees := make([]int, g.NumVertices())
	for v := range degrees {
		degrees[v] = g.Degree(Vertex(v))
	}
	return part.ByCost(degrees, pes, cost)
}

func (o Options) toConfig() core.Config {
	return core.Config{
		P:                    o.PEs,
		Threshold:            o.Threshold,
		Indirect:             o.Indirect,
		Threads:              o.Threads,
		Overlap:              o.Overlap,
		LCC:                  o.LCC,
		Partition:            o.Partition,
		SparseDegreeExchange: o.SparseDegreeExchange,
		HubThreshold:         o.HubThreshold,
		Codec:                o.Codec,
		Profile:              o.Profile,
		Placement:            o.Placement,
	}
}

// Count runs algo on g with opt and returns the merged result.
func Count(g *Graph, algo Algorithm, opt Options) (*Result, error) {
	return core.Run(algo, g, opt.toConfig())
}

// BatchSource yields successive edge batches of a stream; returning nil or
// an empty batch ends the source.
type BatchSource = core.BatchSource

// StreamResult reports a streaming run: the initial count, the per-batch
// triangle deltas, and the final count.
type StreamResult = core.StreamResult

// Stream counts g's triangles through the streaming driver: the first
// batches of g's edges (opt.BatchSize each) seed the incrementally built
// initial graph, the remaining batches are inserted one by one and
// delta-counted as tri(G+Δ) − tri(G) without recounting. The final count is
// identical to Count; per-PE memory stays O(|E_i| + batch) end to end.
// DITRIC/CETRIC variants only; LCC is not supported while streaming.
func Stream(g *Graph, algo Algorithm, opt Options) (*StreamResult, error) {
	edges := g.Edges()
	batch := opt.BatchSize
	if batch <= 0 {
		batch = max(1024, len(edges)/8)
	}
	split := min(batch, len(edges))
	return core.RunStream(algo, uint64(g.NumVertices()), core.SliceBatches(edges[:split], batch),
		core.SliceBatches(edges[split:], batch), opt.toConfig())
}

// StreamEdges counts triangles of a streamed edge list on n vertices:
// initial's batches build the starting graph, then each batch of inserts is
// delta-counted. Either source may be nil. Duplicate edges and self-loops
// are dropped exactly like FromEdges drops them.
func StreamEdges(n int, algo Algorithm, initial, inserts BatchSource, opt Options) (*StreamResult, error) {
	return core.RunStream(algo, uint64(n), initial, inserts, opt.toConfig())
}

// CountSeq counts triangles sequentially (EDGE ITERATOR / COMPACT-FORWARD).
func CountSeq(g *Graph) uint64 { return core.SeqCount(g) }

// LCCSeq returns the exact local clustering coefficient of every vertex,
// computed sequentially.
func LCCSeq(g *Graph) []float64 { return core.SeqLCC(g) }

// LCC computes local clustering coefficients distributedly with algo
// (DITRIC/CETRIC variants only).
func LCC(g *Graph, algo Algorithm, opt Options) ([]float64, *Result, error) {
	opt.LCC = true
	res, err := Count(g, algo, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.LCC, res, nil
}

// Enumerate calls fn once per triangle (corners ascending by vertex ID),
// using the sequential counter.
func Enumerate(g *Graph, fn func(a, b, c Vertex)) {
	core.SeqEnumerate(g, func(v, u, w Vertex) {
		t := core.CanonTriangle(v, u, w)
		fn(t[0], t[1], t[2])
	})
}

// ApproxOptions configures the Bloom-filter approximate global phase.
type ApproxOptions struct {
	BitsPerKey float64 // filter bits per neighbor (default 8)
	Blocked    bool    // cache-efficient blocked filter
	Truthful   bool    // subtract expected false positives
}

// ApproxResult is re-exported from the core engine.
type ApproxResult = core.ApproxResult

// CountApprox runs the AMQ-approximate CETRIC: exact type-1/2 counting plus
// Bloom-filter-approximated type-3 counting.
func CountApprox(g *Graph, opt Options, aopt ApproxOptions) (*ApproxResult, error) {
	return core.RunApproxCetric(g, opt.toConfig(), core.AMQConfig{
		BitsPerKey: aopt.BitsPerKey,
		Blocked:    aopt.Blocked,
		Truthful:   aopt.Truthful,
	})
}

// CountDoulion estimates the triangle count with DOULION edge sampling at
// probability q on top of algo.
func CountDoulion(g *Graph, algo Algorithm, opt Options, q float64, seed uint64) (float64, error) {
	est, _, err := core.RunDoulion(algo, g, opt.toConfig(), q, seed)
	return est, err
}

// CountColorful estimates the triangle count with colorful sparsification
// (ncolors colors) on top of algo.
func CountColorful(g *Graph, algo Algorithm, opt Options, ncolors int, seed uint64) (float64, error) {
	est, _, err := core.RunColorful(algo, g, opt.toConfig(), ncolors, seed)
	return est, err
}

// Generator conveniences (see internal/gen for the full catalog).

// GenerateGNM samples an Erdős–Rényi G(n,m) graph.
func GenerateGNM(n, m int, seed uint64) *Graph { return gen.GNM(n, m, seed) }

// GenerateRMAT samples a Graph 500 R-MAT graph with 2^scale vertices.
func GenerateRMAT(scale, edgeFactor int, seed uint64) *Graph {
	cfg := gen.DefaultRMAT(scale, seed)
	cfg.EdgeFactor = edgeFactor
	return gen.RMAT(cfg)
}

// GenerateRGG2D samples a 2D random geometric graph with ~edgeFactor·n edges.
func GenerateRGG2D(n, edgeFactor int, seed uint64) *Graph { return gen.RGG2D(n, edgeFactor, seed) }

// GenerateRHG samples a random hyperbolic graph (power-law exponent gamma).
func GenerateRHG(n int, avgDegree, gamma float64, seed uint64) *Graph {
	return gen.RHG(gen.RHGConfig{N: n, AvgDegree: avgDegree, Gamma: gamma, Seed: seed})
}

// Instance builds one of the paper's real-world stand-in instances by name
// (live-journal, orkut, twitter, friendster, uk-2007-05, webbase-2001, usa,
// europe). scaleShift shrinks (<0) or grows (>0) the default size by powers
// of two.
func Instance(name string, scaleShift int, seed uint64) (*Graph, error) {
	return gen.ByInstance(name, scaleShift, seed)
}

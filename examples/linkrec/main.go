// Triangle-based link recommendation — one of the classic applications the
// paper cites (Tsourakakis et al.): recommend the links that would close the
// most open wedges, i.e. create the most new triangles.
//
// We enumerate all triangles of a social-network stand-in distributedly (via
// the collection mode of CETRIC), derive per-pair common-neighbor counts
// from the wedge structure around a user, and print the strongest
// non-neighbors as recommendations.
package main

import (
	"fmt"
	"log"
	"sort"

	tricount "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	g := gen.RHG(gen.RHGConfig{N: 1 << 12, AvgDegree: 24, Gamma: 2.8, Seed: 99})
	fmt.Printf("social graph: %d users, %d friendships\n", g.NumVertices(), g.NumEdges())

	// Sanity: the distributed count agrees with the sequential one before we
	// trust its structure for recommendations.
	res, err := tricount.Count(g, tricount.AlgoCetric, tricount.Options{PEs: 8})
	if err != nil {
		log.Fatal(err)
	}
	if res.Count != tricount.CountSeq(g) {
		log.Fatal("distributed count mismatch")
	}
	fmt.Printf("verified %d triangles on 8 PEs in %v\n", res.Count, res.Wall.Round(1000))

	// Pick the highest-degree user as the recommendation target.
	user := graph.Vertex(0)
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > g.Degree(user) {
			user = graph.Vertex(v)
		}
	}
	fmt.Printf("recommending for user %d (degree %d)\n", user, g.Degree(user))

	// Count common neighbors between the user and every non-neighbor at
	// distance two: each common neighbor is an open wedge the new link
	// would close into a triangle.
	isFriend := make(map[graph.Vertex]bool)
	for _, u := range g.Neighbors(user) {
		isFriend[u] = true
	}
	common := make(map[graph.Vertex]int)
	for _, u := range g.Neighbors(user) {
		for _, w := range g.Neighbors(u) {
			if w != user && !isFriend[w] {
				common[w]++
			}
		}
	}
	type rec struct {
		who    graph.Vertex
		wedges int
	}
	recs := make([]rec, 0, len(common))
	for w, c := range common {
		recs = append(recs, rec{w, c})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].wedges != recs[j].wedges {
			return recs[i].wedges > recs[j].wedges
		}
		return recs[i].who < recs[j].who
	})

	fmt.Println("top recommendations (candidate, triangles the link would create):")
	for i, r := range recs {
		if i == 10 {
			break
		}
		fmt.Printf("  user %-6d +%d triangles\n", r.who, r.wedges)
	}
	if len(recs) == 0 {
		log.Fatal("no recommendations found")
	}

	// Verify the top recommendation with an actual re-count: adding the edge
	// must increase the global triangle count by exactly the wedge count.
	top := recs[0]
	edges := append(g.Edges(), graph.Edge{U: user, V: top.who})
	g2 := graph.FromEdges(g.NumVertices(), edges)
	after, err := tricount.Count(g2, tricount.AlgoCetric, tricount.Options{PEs: 8})
	if err != nil {
		log.Fatal(err)
	}
	gained := after.Count - res.Count
	fmt.Printf("adding (%d,%d): %d -> %d triangles (+%d, predicted +%d)\n",
		user, top.who, res.Count, after.Count, gained, top.wedges)
	if gained != uint64(top.wedges) {
		log.Fatal("prediction mismatch")
	}
	fmt.Println("recommendation verified ✓")
}

// Spam-farm detection via the local clustering coefficient distribution —
// the application of Becchetti et al. that motivates per-vertex triangle
// counting in the paper's introduction.
//
// We build a web-like host-clustered graph, plant a "link farm" (a dense
// clique of spam pages that all link to a boosted target page), compute
// exact LCCs distributedly with CETRIC, and flag pages whose LCC is
// anomalously high for their degree. Link-farm members sit in near-cliques,
// so their LCC stays close to 1 even at high degree — honest pages of
// comparable degree have far lower LCC.
package main

import (
	"fmt"
	"log"
	"sort"

	tricount "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

const (
	nPages   = 1 << 13
	farmSize = 60
)

func main() {
	// Honest web: host near-cliques + long links.
	base := gen.WebGraph(gen.WebConfig{N: nPages, HostSize: 24, IntraP: 0.3, LongFactor: 3, Seed: 7})
	edges := base.Edges()

	// Plant the farm: the last farmSize pages form a clique and all point at
	// a target page they try to boost.
	farm := make([]graph.Vertex, farmSize)
	for i := range farm {
		farm[i] = graph.Vertex(nPages - farmSize + i)
	}
	target := graph.Vertex(nPages - farmSize - 1)
	for i, u := range farm {
		for _, v := range farm[i+1:] {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
		edges = append(edges, graph.Edge{U: u, V: target})
	}
	g := graph.FromEdges(nPages, edges)
	fmt.Printf("web graph: %d pages, %d links (farm of %d planted)\n",
		g.NumVertices(), g.NumEdges(), farmSize)

	// Distributed exact LCC with CETRIC2 (indirect communication).
	lcc, res, err := tricount.LCC(g, tricount.AlgoCetric2, tricount.Options{PEs: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counted %d triangles on 16 PEs in %v\n", res.Count, res.Wall.Round(1000))

	// Flag: high degree AND high LCC. Honest hubs have low LCC; honest
	// near-clique members have low degree (host size 24).
	type suspect struct {
		page  graph.Vertex
		deg   int
		lcc   float64
		score float64
	}
	var suspects []suspect
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(graph.Vertex(v))
		if d >= 40 && lcc[v] > 0.5 {
			suspects = append(suspects, suspect{graph.Vertex(v), d, lcc[v], float64(d) * lcc[v]})
		}
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i].score > suspects[j].score })

	farmSet := make(map[graph.Vertex]bool, farmSize)
	for _, u := range farm {
		farmSet[u] = true
	}
	hits := 0
	for _, s := range suspects {
		if farmSet[s.page] {
			hits++
		}
	}
	fmt.Printf("flagged %d pages (degree ≥ 40, LCC > 0.5); %d/%d are actual farm members\n",
		len(suspects), hits, farmSize)
	fmt.Println("top suspects (page, degree, LCC):")
	for i, s := range suspects {
		if i == 10 {
			break
		}
		tag := ""
		if farmSet[s.page] {
			tag = "  <-- planted spam"
		}
		fmt.Printf("  %6d  deg=%3d  lcc=%.3f%s\n", s.page, s.deg, s.lcc, tag)
	}
	if hits < farmSize*9/10 {
		log.Fatalf("detector missed too many farm members: %d/%d", hits, farmSize)
	}
	fmt.Println("spam farm detected ✓")
}

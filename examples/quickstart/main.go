// Quickstart: generate a graph, count its triangles with CETRIC on eight
// simulated PEs, and compare against the sequential counter.
package main

import (
	"fmt"
	"log"

	tricount "repro"
)

func main() {
	// A random hyperbolic graph: power-law degrees, high clustering — the
	// kind of instance the paper's weak-scaling experiments use.
	g := tricount.GenerateRHG(1<<13, 32, 2.8, 42)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	res, err := tricount.Count(g, tricount.AlgoCetric, tricount.Options{PEs: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CETRIC on 8 PEs:   %d triangles in %v\n", res.Count, res.Wall.Round(1000))
	fmt.Printf("  by type: %d local, %d two-PE, %d three-PE\n",
		res.TypeCounts[0], res.TypeCounts[1], res.TypeCounts[2])
	fmt.Printf("  bottleneck communication volume: %d words, max messages: %d\n",
		res.Agg.MaxPayloadWords, res.Agg.MaxSentFrames)

	seq := tricount.CountSeq(g)
	fmt.Printf("sequential check:  %d triangles\n", seq)
	if seq != res.Count {
		log.Fatal("distributed and sequential counts disagree!")
	}
	fmt.Println("counts agree ✓")
}

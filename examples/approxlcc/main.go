// Approximate local clustering coefficients with Bloom-filter
// neighborhoods — the paper's §IV-E extension. The classic approximation
// baselines (DOULION, colorful sparsification) can only estimate the global
// triangle count; the AMQ variant of CETRIC estimates per-vertex counts
// while cutting the global-phase communication volume.
//
// This example sweeps the filter budget and reports estimate quality and
// volume savings against the exact run, plus the global-count baselines for
// context.
package main

import (
	"fmt"
	"log"
	"math"

	tricount "repro"
)

func main() {
	g := tricount.GenerateGNM(1<<13, 16<<13, 21) // no locality: many type-3 triangles
	opt := tricount.Options{PEs: 16}

	exact, err := tricount.Count(g, tricount.AlgoCetric, opt)
	if err != nil {
		log.Fatal(err)
	}
	exactLCCOpt := opt
	exactLCCOpt.LCC = true
	exactRes, err := tricount.Count(g, tricount.AlgoCetric, exactLCCOpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d, exact triangles=%d (%d type-3)\n",
		g.NumVertices(), g.NumEdges(), exact.Count, exact.TypeCounts[2])
	fmt.Printf("exact global-phase payload: %d words\n\n", exact.Agg.TotalPayload)

	fmt.Println("bits/key | count est | rel.err | LCC MAE | payload vs exact")
	for _, bits := range []float64{2, 4, 8, 16} {
		res, err := tricount.CountApprox(g, exactLCCOpt, tricount.ApproxOptions{
			BitsPerKey: bits, Truthful: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		relErr := math.Abs(res.Estimate-float64(exact.Count)) / float64(exact.Count)
		var mae float64
		for v, want := range exactRes.LCC {
			mae += math.Abs(res.LCCEstimates[v] - want)
		}
		mae /= float64(g.NumVertices())
		ratio := float64(res.Agg.TotalPayload) / float64(exact.Agg.TotalPayload)
		fmt.Printf("%8.0f | %9.0f | %6.3f%% | %7.5f | %.2fx\n",
			bits, res.Estimate, relErr*100, mae, ratio)
	}

	fmt.Println("\nglobal-count-only baselines (cannot estimate LCC):")
	for _, q := range []float64{0.3, 0.6} {
		est, err := tricount.CountDoulion(g, tricount.AlgoCetric, opt, q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  doulion q=%.1f:  est %9.0f (rel.err %.3f%%)\n",
			q, est, math.Abs(est-float64(exact.Count))/float64(exact.Count)*100)
	}
	for _, nc := range []int{2, 3} {
		est, err := tricount.CountColorful(g, tricount.AlgoCetric, opt, nc, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  colorful N=%d:   est %9.0f (rel.err %.3f%%)\n",
			nc, est, math.Abs(est-float64(exact.Count))/float64(exact.Count)*100)
	}
}

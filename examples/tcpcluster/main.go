// A real multi-process TCP cluster: this example re-executes itself once per
// rank (like mpirun would), each process generates the same deterministic
// graph, keeps its 1D slice, and the ranks count triangles together over
// loopback TCP with CETRIC. The parent waits for all ranks and checks their
// agreed global count against the sequential oracle.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/transport"
)

const (
	nRanks   = 4
	basePort = 29750
	scale    = 11 // 2^11 vertices
)

func peerList() []string {
	addrs := make([]string, nRanks)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	return addrs
}

func main() {
	if rankStr := os.Getenv("TCPCLUSTER_RANK"); rankStr != "" {
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			log.Fatal(err)
		}
		runRank(rank)
		return
	}
	// Parent: spawn one child per rank.
	g := gen.RMAT(gen.DefaultRMAT(scale, 7))
	want := core.SeqCount(g)
	fmt.Printf("parent: n=%d m=%d, expecting %d triangles; spawning %d ranks\n",
		g.NumVertices(), g.NumEdges(), want, nRanks)

	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	children := make([]*exec.Cmd, nRanks)
	outputs := make([]*strings.Builder, nRanks)
	for rank := 0; rank < nRanks; rank++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), fmt.Sprintf("TCPCLUSTER_RANK=%d", rank))
		var sb strings.Builder
		outputs[rank] = &sb
		cmd.Stdout = &sb
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		children[rank] = cmd
	}
	for rank, cmd := range children {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("rank %d failed: %v", rank, err)
		}
		fmt.Print(outputs[rank].String())
		if !strings.Contains(outputs[rank].String(), fmt.Sprintf("= %d", want)) {
			log.Fatalf("rank %d reported a wrong count (want %d)", rank, want)
		}
	}
	fmt.Println("all ranks agree with the sequential count ✓")
}

func runRank(rank int) {
	// Every rank regenerates the identical graph — deterministic generation
	// makes input distribution unnecessary (communication-free loading).
	g := gen.RMAT(gen.DefaultRMAT(scale, 7))
	ep, err := transport.ListenTCP(rank, peerList(), transport.TCPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()
	count, m, err := core.RunRank(core.AlgoCetric, g, core.Config{}, ep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank %d: global triangles = %d (sent %d frames, %d payload words)\n",
		rank, count, m.SentFrames, m.PayloadWords)
}

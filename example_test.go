package tricount_test

import (
	"fmt"
	"log"

	tricount "repro"
)

// Example_quickstart is the package documentation's quick start, verbatim:
// if the doc comment and this example drift apart, review catches it; if the
// snippet stops compiling or the count changes, this test fails.
func Example_quickstart() {
	g := tricount.GenerateRGG2D(1<<12, 16, 42)
	res, err := tricount.Count(g, tricount.AlgoCetric, tricount.Options{PEs: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Count)
	// Output: 386649
}

// Counting triangles on a generated graph with CETRIC on four PEs.
func ExampleCount() {
	g := tricount.GenerateRMAT(10, 16, 42)
	res, err := tricount.Count(g, tricount.AlgoCetric, tricount.Options{PEs: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Count == tricount.CountSeq(g))
	// Output: true
}

// Exact local clustering coefficients, computed distributedly.
func ExampleLCC() {
	g := tricount.GenerateRHG(1<<10, 16, 2.8, 7)
	lcc, _, err := tricount.LCC(g, tricount.AlgoCetric2, tricount.Options{PEs: 4})
	if err != nil {
		panic(err)
	}
	exact := tricount.LCCSeq(g)
	same := true
	for v := range lcc {
		if lcc[v] != exact[v] {
			same = false
		}
	}
	fmt.Println(same)
	// Output: true
}

// Enumerating the triangles of a small clique.
func ExampleEnumerate() {
	g := tricount.GenerateGNM(4, 6, 1) // K4
	n := 0
	tricount.Enumerate(g, func(a, b, c tricount.Vertex) { n++ })
	fmt.Println(n)
	// Output: 4
}

// Approximate counting with Bloom-filter neighborhoods.
func ExampleCountApprox() {
	g := tricount.GenerateGNM(1<<10, 16<<10, 9)
	res, err := tricount.CountApprox(g, tricount.Options{PEs: 4},
		tricount.ApproxOptions{BitsPerKey: 16, Truthful: true})
	if err != nil {
		panic(err)
	}
	exact := float64(tricount.CountSeq(g))
	rel := (res.Estimate - exact) / exact
	fmt.Println(rel < 0.05 && rel > -0.05)
	// Output: true
}

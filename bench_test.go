package tricount

// One benchmark per table and figure of the paper (plus ablation benches for
// the design choices DESIGN.md calls out). These are quick spot-checks of
// the same drivers cmd/experiments runs at full size; custom metrics expose
// the paper's reported quantities: max messages over PEs ("msgs") and
// bottleneck communication volume in machine words ("words").
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func reportComm(b *testing.B, res *core.Result) {
	b.ReportMetric(float64(res.Agg.MaxSentFrames), "msgs")
	b.ReportMetric(float64(res.Agg.MaxPayloadWords), "words")
}

func mustRun(b *testing.B, algo core.Algorithm, g *graph.Graph, cfg core.Config) *core.Result {
	b.Helper()
	res, err := core.Run(algo, g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Stats regenerates the Table I statistics (wedges and
// triangle counts) of the real-world stand-ins.
func BenchmarkTable1Stats(b *testing.B) {
	for _, name := range gen.InstanceNames() {
		b.Run(name, func(b *testing.B) {
			g, err := gen.ByInstance(name, -3, 42)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var tri uint64
			for i := 0; i < b.N; i++ {
				stats := graph.ComputeStats(g)
				tri = core.SeqCount(g)
				_ = stats
			}
			b.ReportMetric(float64(tri), "triangles")
		})
	}
}

// BenchmarkFig2Aggregation: the basic distributed algorithm with and without
// message aggregation on the friendster stand-in (Fig. 2).
func BenchmarkFig2Aggregation(b *testing.B) {
	g, err := gen.ByInstance("friendster", -3, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		algo core.Algorithm
	}{{"buffering", core.AlgoDiTric}, {"no-buffering", core.AlgoNoAgg}} {
		b.Run(v.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = mustRun(b, v.algo, g, core.Config{P: 8})
			}
			reportComm(b, res)
		})
	}
}

// BenchmarkFig5WeakScaling: weak scaling over the four synthetic families
// for all six algorithms (Fig. 5).
func BenchmarkFig5WeakScaling(b *testing.B) {
	perPE := map[string]int{"rgg2d": 1 << 10, "rhg": 1 << 10, "gnm": 1 << 8, "rmat": 1 << 8}
	for _, family := range gen.Families() {
		for _, p := range []int{1, 4, 16} {
			n := perPE[family] * p
			g, err := gen.ByFamily(family, n, 16, 42+uint64(p))
			if err != nil {
				b.Fatal(err)
			}
			for _, algo := range core.Algorithms() {
				b.Run(fmt.Sprintf("%s/p=%d/%s", family, p, algo), func(b *testing.B) {
					var res *core.Result
					for i := 0; i < b.N; i++ {
						res = mustRun(b, algo, g, core.Config{P: p})
					}
					reportComm(b, res)
				})
			}
		}
	}
}

// BenchmarkFig6StrongScaling: strong scaling on the real-world stand-ins
// (Fig. 6), lighter sweep to keep the suite fast.
func BenchmarkFig6StrongScaling(b *testing.B) {
	for _, name := range gen.InstanceNames() {
		g, err := gen.ByInstance(name, -3, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range []int{4, 16} {
			for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoDiTric2, core.AlgoCetric, core.AlgoCetric2} {
				b.Run(fmt.Sprintf("%s/p=%d/%s", name, p, algo), func(b *testing.B) {
					var res *core.Result
					for i := 0; i < b.N; i++ {
						res = mustRun(b, algo, g, core.Config{P: p})
					}
					reportComm(b, res)
				})
			}
		}
	}
}

// BenchmarkFig7Phases: the phase breakdown instances (Fig. 7); per-phase
// times are exposed as metrics (µs).
func BenchmarkFig7Phases(b *testing.B) {
	for _, name := range []string{"friendster", "webbase-2001", "live-journal"} {
		g, err := gen.ByInstance(name, -3, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, algo := range []core.Algorithm{core.AlgoDiTric, core.AlgoCetric} {
			b.Run(fmt.Sprintf("%s/%s", name, algo), func(b *testing.B) {
				var res *core.Result
				for i := 0; i < b.N; i++ {
					res = mustRun(b, algo, g, core.Config{P: 8})
				}
				for _, ph := range []string{core.PhasePreprocess, core.PhaseLocal, core.PhaseContraction, core.PhaseGlobal} {
					b.ReportMetric(float64(res.Phases[ph].Microseconds()), ph+"-µs")
				}
				reportComm(b, res)
			})
		}
	}
}

// BenchmarkFig8Hybrid: the hybrid threads-per-rank trade-off on the orkut
// stand-in with cores = ranks × threads fixed (appendix Fig. 8).
func BenchmarkFig8Hybrid(b *testing.B) {
	g, err := gen.ByInstance("orkut", -2, 42)
	if err != nil {
		b.Fatal(err)
	}
	const cores = 8
	for threads := 1; threads <= cores; threads *= 2 {
		ranks := cores / threads
		b.Run(fmt.Sprintf("threads=%d/ranks=%d", threads, ranks), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = mustRun(b, core.AlgoDiTric2, g, core.Config{P: ranks, Threads: threads})
			}
			b.ReportMetric(float64(res.Phases[core.PhaseLocal].Microseconds()), "local-µs")
			b.ReportMetric(float64(res.Agg.TotalPayload), "total-words")
		})
	}
}

// BenchmarkApproxAMQ: the §IV-E AMQ extension — volume/accuracy trade-off
// versus the Bloom filter budget.
func BenchmarkApproxAMQ(b *testing.B) {
	g := gen.GNM(1<<12, 16<<12, 21)
	for _, bits := range []float64{4, 8, 16} {
		b.Run(fmt.Sprintf("bits=%v", bits), func(b *testing.B) {
			var est float64
			var words float64
			for i := 0; i < b.N; i++ {
				res, err := core.RunApproxCetric(g, core.Config{P: 8},
					core.AMQConfig{BitsPerKey: bits, Truthful: true})
				if err != nil {
					b.Fatal(err)
				}
				est = res.Estimate
				words = float64(res.Agg.MaxPayloadWords)
			}
			b.ReportMetric(est, "estimate")
			b.ReportMetric(words, "words")
		})
	}
}

// BenchmarkAblationThreshold: the aggregation threshold δ sweep.
func BenchmarkAblationThreshold(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(11, 7))
	for _, delta := range []int{64, 4096, 1 << 18} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = mustRun(b, core.AlgoDiTric, g, core.Config{P: 8, Threshold: delta})
			}
			b.ReportMetric(float64(res.Agg.TotalFrames), "frames")
			b.ReportMetric(float64(res.Agg.MaxPeakBuffered), "peak-words")
		})
	}
}

// BenchmarkAblationDegreeExchange: dense vs sparse ghost degree exchange.
func BenchmarkAblationDegreeExchange(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(11, 9))
	for _, sparse := range []bool{false, true} {
		name := "dense"
		if sparse {
			name = "sparse"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(b, core.AlgoCetric, g, core.Config{P: 8, SparseDegreeExchange: sparse})
			}
		})
	}
}

// BenchmarkIntersect: every set-intersection kernel (plain merge, branchless
// merge, galloping, hub bitmap, and the adaptive dispatcher) across operand
// skew ratios from 1:1 to 1:1024 — the innermost loop of every algorithm.
// Run with -benchmem: all kernels are allocation-free.
func BenchmarkIntersect(b *testing.B) {
	mk := func(n int, stride uint64) []graph.Vertex {
		out := make([]graph.Vertex, n)
		for i := range out {
			out[i] = uint64(i) * stride
		}
		return out
	}
	const large = 4096
	big := mk(large, 3)
	// The bitmap kernel tests list membership against a prebuilt bitset of
	// the large side, as the hub index does for heavy A-lists.
	bits := graph.NewBitset(large*3 + 1)
	bits.SetList(big)
	kernels := []struct {
		name string
		run  func(small []graph.Vertex) uint64
	}{
		{"merge", func(s []graph.Vertex) uint64 { return graph.CountMerge(s, big) }},
		{"branchless", func(s []graph.Vertex) uint64 { return graph.CountMergeBranchless(s, big) }},
		{"gallop", func(s []graph.Vertex) uint64 { return graph.CountGallop(s, big) }},
		{"bitmap", func(s []graph.Vertex) uint64 { return bits.CountList(s) }},
		{"adaptive", func(s []graph.Vertex) uint64 { return graph.CountIntersect(s, big) }},
	}
	for _, skew := range []int{1, 4, 16, 64, 256, 1024} {
		// The small side subsamples the large side's domain so every kernel
		// (including the bitmap, whose domain is the large side's range)
		// probes in-range values.
		small := mk(large/skew, 3*uint64(skew))
		for _, k := range kernels {
			b.Run(fmt.Sprintf("%s/skew=1:%d", k.name, skew), func(b *testing.B) {
				b.ReportAllocs()
				var sink uint64
				for i := 0; i < b.N; i++ {
					sink += k.run(small)
				}
				benchSink = sink
			})
		}
	}
}

// benchSink defeats dead-code elimination of pure kernel calls.
var benchSink uint64

// BenchmarkSequential: the single-core EDGE ITERATOR baseline.
func BenchmarkSequential(b *testing.B) {
	for _, scale := range []int{10, 12} {
		g := gen.RMAT(gen.DefaultRMAT(scale, 3))
		b.Run(fmt.Sprintf("rmat-2^%d", scale), func(b *testing.B) {
			var c uint64
			for i := 0; i < b.N; i++ {
				c = core.SeqCount(g)
			}
			b.ReportMetric(float64(c), "triangles")
		})
	}
}

// BenchmarkAblationSurrogate: Arifuzzaman's surrogate dedup vs per-edge
// shipments.
func BenchmarkAblationSurrogate(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(11, 13))
	for _, noSurrogate := range []bool{false, true} {
		name := "dedup"
		if noSurrogate {
			name = "per-edge"
		}
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = mustRun(b, core.AlgoDiTric, g, core.Config{P: 8, NoSurrogate: noSurrogate})
			}
			b.ReportMetric(float64(res.Agg.TotalPayload), "payload-words")
		})
	}
}

// BenchmarkSharedMemory: the single-node parallel counter across worker
// counts (the paper's future-work direction of scaling the shared-memory
// part).
func BenchmarkSharedMemory(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(12, 17))
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SharedCount(g, core.SharedConfig{Threads: threads})
			}
		})
	}
}
